// Ablation: reward coefficients e_I / e_O (§4.5). Performance-sensitive
// users raise e_I (interruption hurts more); waste-averse users raise e_O.
// Sweeps the overlap penalty and reports the interruption/overlap trade-off
// of the trained MoE+DQN agent.
#include <cstdio>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace mirage;
  const auto cli = util::Config::from_args(argc, argv);
  util::set_log_level(util::LogLevel::kWarn);
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 42));
  const auto preset = trace::preset_by_name(cli.get_string("cluster", "a100"));

  std::printf("Ablation: overlap penalty e_O (e_I fixed at 1.0), MoE+DQN on %s\n\n",
              preset.name.c_str());
  std::printf("%-8s %18s %18s %14s\n", "e_O", "heavy int (h)", "light ovl (h)", "zero-int %");

  for (double e_o : {0.25, 0.5, 1.0, 2.0}) {
    auto cfg = core::PipelineConfig::compact(preset, 1, seed);
    cfg.episode.reward.e_overlap = e_o;
    cfg.collector.anchors = 32;
    cfg.online.episodes = 48;
    cfg.eval.episodes = 32;
    core::MiragePipeline pipe(cfg);
    pipe.prepare();
    pipe.collect_offline();
    pipe.train(core::Method::kMoeDqn);
    const auto evals = pipe.evaluate({core::Method::kMoeDqn});
    const auto& heavy = evals[0].at(core::LoadClass::kHeavy);
    const auto& light = evals[0].at(core::LoadClass::kLight);
    std::printf("%-8.2f %18.2f %18.2f %13.0f%%\n", e_o, heavy.interruption_hours.mean(),
                light.episodes ? light.overlap_hours.mean() : 0.0,
                100.0 * evals[0].overall.zero_interruption_fraction());
  }
  std::printf("\nexpected shape: larger e_O trades overlap down for more interruption risk\n");
  return 0;
}

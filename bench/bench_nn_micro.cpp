// Micro-benchmarks (google-benchmark) for the substrates' hot paths:
// GEMM, attention forward/backward, foundation forward, DQN serving and
// simulator event throughput. These back the Figure 5/6 architecture cost
// discussion and the §5.2 "low-overhead simulator" claim.
#include <benchmark/benchmark.h>

#include "nn/dual_head.hpp"
#include "rl/dqn.hpp"
#include "sim/simulator.hpp"
#include "trace/generator.hpp"

namespace {

using namespace mirage;

void BM_Matmul(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(1);
  nn::Tensor a(n, n), b(n, n), c;
  for (float& v : a.flat()) v = static_cast<float>(rng.normal());
  for (float& v : b.flat()) v = static_cast<float>(rng.normal());
  for (auto _ : state) {
    nn::matmul(a, b, c);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(2 * n * n * n));
}
BENCHMARK(BM_Matmul)->Arg(32)->Arg(64)->Arg(128);

void BM_MatmulNT(benchmark::State& state) {
  // A * B^T — the attention-score / backward-dX shape. Covers the
  // register-blocked kernel (tensor.cpp) whose results stay bitwise
  // identical to the plain dot-per-column form.
  const auto n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(1);
  nn::Tensor a(n, 32), b(n, 32), c;
  for (float& v : a.flat()) v = static_cast<float>(rng.normal());
  for (float& v : b.flat()) v = static_cast<float>(rng.normal());
  for (auto _ : state) {
    nn::matmul_nt(a, b, c, false);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(2 * n * n * 32));
}
BENCHMARK(BM_MatmulNT)->Arg(48)->Arg(144)->Arg(512);

nn::FoundationConfig bench_net(std::size_t k) {
  nn::FoundationConfig cfg;
  cfg.history_len = k;
  cfg.state_dim = 41;
  cfg.d_model = 32;
  cfg.num_heads = 2;
  cfg.num_layers = 2;
  cfg.ffn_hidden = 64;
  cfg.moe_experts = 4;
  return cfg;
}

void BM_AttentionForward(benchmark::State& state) {
  const auto seq = static_cast<std::size_t>(state.range(0));
  util::Rng rng(2);
  nn::MultiHeadSelfAttention attn(seq, 32, 2, rng);
  nn::Tensor x(seq * 4, 32);  // batch of 4
  for (float& v : x.flat()) v = static_cast<float>(rng.normal());
  for (auto _ : state) {
    auto y = attn.forward(x, false);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_AttentionForward)->Arg(16)->Arg(48)->Arg(144);

void BM_FoundationForwardBackward(benchmark::State& state) {
  const auto cfg = bench_net(static_cast<std::size_t>(state.range(0)));
  nn::TransformerFoundation f(cfg, 3);
  util::Rng rng(3);
  nn::Tensor x(8, cfg.input_dim());
  for (float& v : x.flat()) v = static_cast<float>(rng.normal());
  for (auto _ : state) {
    auto y = f.forward(x, true);
    auto dx = f.backward(y);
    benchmark::DoNotOptimize(dx.data());
  }
}
BENCHMARK(BM_FoundationForwardBackward)->Arg(16)->Arg(48);

void BM_MoEForward(benchmark::State& state) {
  auto cfg = bench_net(16);
  cfg.moe_experts = static_cast<std::size_t>(state.range(0));
  nn::MoEFoundation f(cfg, 4);
  util::Rng rng(4);
  nn::Tensor x(4, cfg.input_dim());
  for (float& v : x.flat()) v = static_cast<float>(rng.normal());
  for (auto _ : state) {
    auto y = f.forward(x, false);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_MoEForward)->Arg(2)->Arg(4)->Arg(10);

void BM_DqnServingDecision(benchmark::State& state) {
  rl::DqnConfig cfg;
  cfg.net = bench_net(static_cast<std::size_t>(state.range(0)));
  rl::DqnAgent agent(cfg, 5);
  std::vector<float> obs(cfg.net.input_dim(), 0.1f);
  for (auto _ : state) {
    benchmark::DoNotOptimize(agent.act_greedy(obs));
  }
}
BENCHMARK(BM_DqnServingDecision)->Arg(16)->Arg(144);

void BM_SimulatorMonthReplay(benchmark::State& state) {
  trace::GeneratorOptions opt;
  opt.seed = 6;
  const auto preset = trace::a100_preset();
  trace::SyntheticTraceGenerator gen(preset, opt);
  const auto month = gen.generate_months(2, 3);  // the heavy month
  for (auto _ : state) {
    auto sched = sim::replay_trace(month, preset.node_count);
    benchmark::DoNotOptimize(sched.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(month.size()));
}
BENCHMARK(BM_SimulatorMonthReplay)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();

// Micro-benchmarks for the substrates' hot paths: GEMM, attention
// forward/backward, foundation forward, DQN serving and simulator event
// throughput. These back the Figure 5/6 architecture cost discussion and
// the §5.2 "low-overhead simulator" claim.
//
// Run with no arguments (CI mode) for the parallel-GEMM scaling harness:
// matmul GFLOP/s at T=1,2,4,8,hw with a bitwise parallel-vs-serial audit
// (nonzero exit on any byte difference — the determinism contract is a
// gate, not a hope), written to BENCH_nn_micro.json for the bench_compare
// regression gate (key=gemm_gflops_tmax). Pass any --benchmark* flag to
// run the google-benchmark suite instead.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "nn/dual_head.hpp"
#include "nn/parallel.hpp"
#include "rl/dqn.hpp"
#include "sim/simulator.hpp"
#include "trace/generator.hpp"
#include "util/time_utils.hpp"

namespace {

using namespace mirage;

void BM_Matmul(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(1);
  nn::Tensor a(n, n), b(n, n), c;
  for (float& v : a.flat()) v = static_cast<float>(rng.normal());
  for (float& v : b.flat()) v = static_cast<float>(rng.normal());
  for (auto _ : state) {
    nn::matmul(a, b, c);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(2 * n * n * n));
}
BENCHMARK(BM_Matmul)->Arg(32)->Arg(64)->Arg(128);

void BM_MatmulThreads(benchmark::State& state) {
  // The tiled parallel kernel across thread counts: same bits for every
  // row of this benchmark, different wall time. range(0) = n, range(1) = T.
  const auto n = static_cast<std::size_t>(state.range(0));
  nn::ScopedNumThreads threads(static_cast<std::size_t>(state.range(1)));
  util::Rng rng(1);
  nn::Tensor a(n, n), b(n, n), c;
  for (float& v : a.flat()) v = static_cast<float>(rng.normal());
  for (float& v : b.flat()) v = static_cast<float>(rng.normal());
  for (auto _ : state) {
    nn::matmul(a, b, c);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(2 * n * n * n));
}
BENCHMARK(BM_MatmulThreads)->ArgsProduct({{128, 256}, {1, 2, 4, 8}});

void BM_MatmulNT(benchmark::State& state) {
  // A * B^T — the attention-score / backward-dX shape. Covers the
  // register-blocked kernel (tensor.cpp) whose results stay bitwise
  // identical to the plain dot-per-column form.
  const auto n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(1);
  nn::Tensor a(n, 32), b(n, 32), c;
  for (float& v : a.flat()) v = static_cast<float>(rng.normal());
  for (float& v : b.flat()) v = static_cast<float>(rng.normal());
  for (auto _ : state) {
    nn::matmul_nt(a, b, c, false);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(2 * n * n * 32));
}
BENCHMARK(BM_MatmulNT)->Arg(48)->Arg(144)->Arg(512);

nn::FoundationConfig bench_net(std::size_t k) {
  nn::FoundationConfig cfg;
  cfg.history_len = k;
  cfg.state_dim = 41;
  cfg.d_model = 32;
  cfg.num_heads = 2;
  cfg.num_layers = 2;
  cfg.ffn_hidden = 64;
  cfg.moe_experts = 4;
  return cfg;
}

void BM_AttentionForward(benchmark::State& state) {
  const auto seq = static_cast<std::size_t>(state.range(0));
  util::Rng rng(2);
  nn::MultiHeadSelfAttention attn(seq, 32, 2, rng);
  nn::Tensor x(seq * 4, 32);  // batch of 4
  for (float& v : x.flat()) v = static_cast<float>(rng.normal());
  for (auto _ : state) {
    auto y = attn.forward(x, false);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_AttentionForward)->Arg(16)->Arg(48)->Arg(144);

void BM_FoundationForwardBackward(benchmark::State& state) {
  const auto cfg = bench_net(static_cast<std::size_t>(state.range(0)));
  nn::TransformerFoundation f(cfg, 3);
  util::Rng rng(3);
  nn::Tensor x(8, cfg.input_dim());
  for (float& v : x.flat()) v = static_cast<float>(rng.normal());
  for (auto _ : state) {
    auto y = f.forward(x, true);
    auto dx = f.backward(y);
    benchmark::DoNotOptimize(dx.data());
  }
}
BENCHMARK(BM_FoundationForwardBackward)->Arg(16)->Arg(48);

void BM_MoEForward(benchmark::State& state) {
  auto cfg = bench_net(16);
  cfg.moe_experts = static_cast<std::size_t>(state.range(0));
  nn::MoEFoundation f(cfg, 4);
  util::Rng rng(4);
  nn::Tensor x(4, cfg.input_dim());
  for (float& v : x.flat()) v = static_cast<float>(rng.normal());
  for (auto _ : state) {
    auto y = f.forward(x, false);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_MoEForward)->Arg(2)->Arg(4)->Arg(10);

void BM_DqnServingDecision(benchmark::State& state) {
  rl::DqnConfig cfg;
  cfg.net = bench_net(static_cast<std::size_t>(state.range(0)));
  rl::DqnAgent agent(cfg, 5);
  std::vector<float> obs(cfg.net.input_dim(), 0.1f);
  for (auto _ : state) {
    benchmark::DoNotOptimize(agent.act_greedy(obs));
  }
}
BENCHMARK(BM_DqnServingDecision)->Arg(16)->Arg(144);

void BM_SimulatorMonthReplay(benchmark::State& state) {
  trace::GeneratorOptions opt;
  opt.seed = 6;
  const auto preset = trace::a100_preset();
  trace::SyntheticTraceGenerator gen(preset, opt);
  const auto month = gen.generate_months(2, 3);  // the heavy month
  for (auto _ : state) {
    auto sched = sim::replay_trace(month, preset.node_count);
    benchmark::DoNotOptimize(sched.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(month.size()));
}
BENCHMARK(BM_SimulatorMonthReplay)->Unit(benchmark::kMillisecond);

// ------------------------------------------------- GEMM scaling harness

struct GemmCase {
  std::size_t m, k, n;
  nn::Tensor a, b;
};

/// Best-of-reps seconds for one full pass over the cases at thread count
/// T; fills `outs` with the last pass's results (for the bitwise audit).
double time_gemm_pass(const std::vector<GemmCase>& cases, std::size_t threads, int reps,
                      std::vector<nn::Tensor>& outs) {
  nn::ScopedNumThreads scope(threads);
  outs.resize(cases.size());
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const double t0 = util::wall_seconds();
    for (std::size_t i = 0; i < cases.size(); ++i) {
      nn::matmul(cases[i].a, cases[i].b, outs[i]);
    }
    best = std::min(best, util::wall_seconds() - t0);
  }
  return best;
}

/// CI mode: measure matmul GFLOP/s across thread counts, audit that every
/// thread count reproduces the serial bytes, emit BENCH_nn_micro.json.
/// Returns the process exit code (nonzero = determinism violation).
int run_gemm_scaling(int argc, char** argv) {
  const auto cli = util::Config::from_args(argc, argv);
  const int reps = static_cast<int>(cli.get_int("reps", 7));
  const std::size_t hw = std::max<std::size_t>(1, std::thread::hardware_concurrency());

  // Square sizes past the serial cutoff, plus one ragged shape so tile
  // remainders are always part of the audited surface.
  std::vector<GemmCase> cases;
  util::Rng rng(42);
  for (const std::size_t n : {128, 192, 256}) {
    GemmCase c{n, n, n, nn::Tensor(n, n), nn::Tensor(n, n)};
    for (float& v : c.a.flat()) v = rng.uniform() < 0.1 ? 0.0f : static_cast<float>(rng.normal());
    for (float& v : c.b.flat()) v = rng.uniform() < 0.1 ? 0.0f : static_cast<float>(rng.normal());
    cases.push_back(std::move(c));
  }
  {
    GemmCase c{90, 170, 310, nn::Tensor(90, 170), nn::Tensor(170, 310)};
    for (float& v : c.a.flat()) v = rng.uniform() < 0.1 ? 0.0f : static_cast<float>(rng.normal());
    for (float& v : c.b.flat()) v = rng.uniform() < 0.1 ? 0.0f : static_cast<float>(rng.normal());
    cases.push_back(std::move(c));
  }
  double total_flops = 0.0;
  for (const auto& c : cases) total_flops += 2.0 * double(c.m) * double(c.k) * double(c.n);

  std::vector<std::size_t> thread_counts{1, 2, 4, 8};
  if (std::find(thread_counts.begin(), thread_counts.end(), hw) == thread_counts.end()) {
    thread_counts.push_back(hw);
  }

  std::vector<nn::Tensor> serial_outs;
  const double serial_best = time_gemm_pass(cases, 1, reps, serial_outs);
  const double gflops_t1 = total_flops / serial_best / 1e9;

  std::printf("parallel deterministic GEMM scaling (%zu shapes, best of %d, hw=%zu)\n",
              cases.size(), reps, hw);
  std::printf("%8s %12s %12s %10s %9s\n", "threads", "seconds", "GFLOP/s", "speedup", "bitwise");
  std::printf("%8zu %12.6f %12.2f %10.2f %9s\n", std::size_t{1}, serial_best, gflops_t1, 1.0,
              "ref");

  bool bitwise_ok = true;
  double gflops_tmax = gflops_t1;
  std::size_t tmax = 1;
  for (const std::size_t t : thread_counts) {
    if (t == 1) continue;
    std::vector<nn::Tensor> outs;
    const double best = time_gemm_pass(cases, t, reps, outs);
    bool same = true;
    for (std::size_t i = 0; i < cases.size(); ++i) {
      same = same && std::memcmp(outs[i].data(), serial_outs[i].data(),
                                 serial_outs[i].size() * sizeof(float)) == 0;
    }
    bitwise_ok = bitwise_ok && same;
    const double gflops = total_flops / best / 1e9;
    std::printf("%8zu %12.6f %12.2f %10.2f %9s\n", t, best, gflops, serial_best / best,
                same ? "ok" : "DIFF");
    if (t >= tmax) {  // report the highest audited thread count
      tmax = t;
      gflops_tmax = gflops;
    }
  }
  if (!bitwise_ok) {
    std::fprintf(stderr,
                 "FAIL: parallel GEMM diverged from the serial bytes — the "
                 "determinism contract is broken\n");
  }

  bench::BenchJson json("nn_micro");
  json.add("params",
           "sizes=128,192,256,90x170x310 reps=" + std::to_string(reps) +
               " tmax=" + std::to_string(tmax))
      .add("hardware_threads", static_cast<std::int64_t>(hw))
      .add("gemm_gflops_t1", gflops_t1)
      .add("gemm_gflops_tmax", gflops_tmax)
      .add("gemm_speedup_tmax", gflops_tmax / gflops_t1)
      .add("bitwise_identical", static_cast<std::int64_t>(bitwise_ok ? 1 : 0))
      .add_resource_fields()
      .write();
  return bitwise_ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--benchmark", 11) == 0) {
      benchmark::Initialize(&argc, argv);
      benchmark::RunSpecifiedBenchmarks();
      benchmark::Shutdown();
      return 0;
    }
  }
  return run_gemm_scaling(argc, argv);
}

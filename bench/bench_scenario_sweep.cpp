// Scenario sweep scaling bench: run the same scenario matrix at several
// thread-pool sizes and report wall time + speedup vs 1 thread. Cells are
// pure functions of their specs with pre-assigned seeds, so the sweep is
// embarrassingly parallel — on an 8-core machine the 8-thread run should
// clear 4x over 1 thread (the acceptance bar); results are asserted
// bitwise identical across all thread counts.
//
// The observability satellite adds two gates on top of the scaling runs:
// the steady-state allocation audit executes with metrics, spans and a
// trace ring all enabled (the zero-alloc contract must hold with
// instrumentation ON), and a tracing-off vs tracing-on pair at the best
// thread count must agree bitwise while costing < obs_overhead_max
// (default 3%) in cells/sec.
//
//   ./bench_scenario_sweep [threads=1,2,4,8] [cells=16] [months=3] [scale=0.4]
//                          [obs_overhead_max=0.03] [obs_reps=3]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "scenario/scenario.hpp"
#include "scenario/sweep.hpp"
#include "sim/simulator.hpp"
#include "util/config.hpp"
#include "util/rng.hpp"
#include "util/time_utils.hpp"

namespace {

/// Steady-state allocation audit: replay one cell's simulation, warm up to
/// the midpoint of its horizon (every hot container has reached its high-
/// water capacity by then), and count heap allocations per scheduler pass
/// over the remainder. The incremental scheduling kernel's contract is
/// that this is exactly zero — machine-checked here via the counting
/// operator new in bench/alloc_hooks.cpp, not asserted in a comment.
/// Returns false (and the bench exits nonzero) when the contract is
/// broken, so an allocation regression fails CI rather than landing as a
/// silently changed JSON field. The tolerance of 0.01 allocations/pass
/// separates a genuine per-pass allocation (>= 1.0) from stray amortized
/// container growth.
bool audit_steady_state_allocs(const mirage::scenario::ScenarioSpec& spec,
                               mirage::bench::BenchJson& json) {
  using namespace mirage;
  // The contract must hold with instrumentation ON: spans recording into
  // registry histograms and a fixed-capacity trace ring attached. Both are
  // pre-allocated (ring at construction, span sites during warmup), so the
  // steady-state count stays zero with metrics enabled.
  obs::set_enabled(true);
  obs::TraceRing ring(1 << 16);
  auto workload = scenario::build_workload(spec);
  sim::Simulator sim(scenario::to_cluster_model(spec.resolved_preset()), spec.scheduler);
  sim.set_trace(&ring);
  sim.load_workload(std::move(workload));
  for (const auto& ev : scenario::capacity_events(spec)) sim.schedule_cluster_event(ev);
  sim.run_until(static_cast<util::SimTime>(spec.months_end) * util::kMonth / 2);
  const std::uint64_t allocs_before = bench::allocation_count();
  const std::uint64_t passes_before = sim.scheduler_passes();
  sim.run_to_completion();
  const std::uint64_t allocs = bench::allocation_count() - allocs_before;
  const std::uint64_t passes = sim.scheduler_passes() - passes_before;
  const double per_pass = passes ? static_cast<double>(allocs) / static_cast<double>(passes) : 0.0;
  std::printf("steady state (metrics on): %llu heap allocations over %llu scheduler passes "
              "(%.4f/pass), %llu trace events\n",
              static_cast<unsigned long long>(allocs), static_cast<unsigned long long>(passes),
              per_pass, static_cast<unsigned long long>(ring.recorded()));
  json.add("steady_allocs", static_cast<std::int64_t>(allocs));
  json.add("steady_passes", static_cast<std::int64_t>(passes));
  json.add("steady_allocs_per_pass", per_pass);
  json.add("steady_trace_events", static_cast<std::int64_t>(ring.recorded()));
  return per_pass <= 0.01;
}

/// Best (max) cells/sec over `reps` sweep runs at a fixed thread count —
/// min-time repetition damps scheduler noise around the <3% overhead gate.
/// Every run's combined hash is checked against `expect_hash`, so this
/// doubles as the tracing-on == tracing-off bitwise determinism check.
double measure_cells_per_sec(const std::vector<mirage::scenario::ScenarioSpec>& cells,
                             std::size_t threads, int reps, std::uint64_t expect_hash,
                             mirage::scenario::SweepTrace* trace, bool* hashes_ok) {
  using namespace mirage;
  // Ring allocation is one-time setup, not steady-state tracing cost —
  // keep it outside the timed region so the overhead gate measures the
  // per-event price, not a 25 MB calloc amortized over the first rep.
  if (trace != nullptr) trace->prepare(cells);
  double best = 0.0;
  for (int r = 0; r < reps; ++r) {
    const double t0 = util::wall_seconds();
    const auto report = scenario::SweepRunner(threads).run(cells, trace);
    const double seconds = util::wall_seconds() - t0;
    std::uint64_t combined = util::kFnv1a64Basis;
    for (const auto& c : report.cells) combined ^= c.schedule_hash;
    if (combined != expect_hash) *hashes_ok = false;
    best = std::max(best, static_cast<double>(cells.size()) / seconds);
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mirage;
  using scenario::ScenarioEventKind;

  const auto cli = util::Config::from_args(argc, argv);

  scenario::SweepMatrix matrix;
  matrix.base.cluster = cli.get_string("cluster", "a100");
  matrix.base.months_begin = 0;
  matrix.base.months_end = static_cast<std::int32_t>(cli.get_int("months", 3));
  matrix.base.seed = static_cast<std::uint64_t>(cli.get_int("seed", 42));
  matrix.base.job_count_scale = cli.get_double("scale", 0.4);

  const std::int32_t half = matrix.base.resolved_preset().node_count / 2;
  matrix.reservation_depths = {1, 8};
  matrix.event_profiles = {
      {"none", {}},
      {"outage",
       {{ScenarioEventKind::kNodeDown, 20 * util::kDay, half, 0, 0, 0, 600},
        {ScenarioEventKind::kNodeRestore, 23 * util::kDay, half, 0, 0, 0, 600}}},
  };
  // Scale the utilization axis until the matrix reaches the requested size.
  const auto target_cells = static_cast<std::size_t>(cli.get_int("cells", 16));
  for (double u = 0.85; matrix.cell_count() < target_cells; u += 0.07) {
    matrix.utilization_scales.push_back(u);
  }

  const auto cells = matrix.expand();
  std::printf("bench_scenario_sweep: %zu cells, months=%d, scale=%.2f\n", cells.size(),
              matrix.base.months_end, matrix.base.job_count_scale);

  std::vector<std::size_t> thread_counts;
  {
    const std::string arg = cli.get_string("threads", "1,2,4,8");
    std::size_t pos = 0;
    while (pos <= arg.size()) {
      auto comma = arg.find(',', pos);
      if (comma == std::string::npos) comma = arg.size();
      if (comma > pos) {
        thread_counts.push_back(
            static_cast<std::size_t>(std::atoll(arg.substr(pos, comma - pos).c_str())));
      }
      pos = comma + 1;
    }
  }

  // The thread-scaling loop is the instrumentation-off baseline; the
  // overhead pair below re-enables obs explicitly.
  obs::set_enabled(false);
  double base_seconds = 0.0;
  std::uint64_t base_hash = 0;
  bench::BenchJson json("scenario_sweep");
  // Workload fingerprint: bench_compare only gates cells_per_sec between
  // runs whose parameters match (a resized preset resets the baseline).
  json.add("params", "cells=" + std::to_string(cells.size()) +
                         ",months=" + std::to_string(matrix.base.months_end) +
                         ",scale=" + std::to_string(matrix.base.job_count_scale) +
                         ",cluster=" + matrix.base.cluster);
  json.add("cells", static_cast<std::int64_t>(cells.size()));
  double best_cells_per_sec = 0.0;
  std::size_t best_threads = 0;
  for (const std::size_t threads : thread_counts) {
    const double t0 = util::wall_seconds();
    const auto report = scenario::SweepRunner(threads).run(cells);
    const double seconds = util::wall_seconds() - t0;

    std::uint64_t combined = util::kFnv1a64Basis;
    for (const auto& c : report.cells) combined ^= c.schedule_hash;
    if (base_seconds == 0.0) {
      base_seconds = seconds;
      base_hash = combined;
    }
    const bool identical = combined == base_hash;
    const double cells_per_sec = static_cast<double>(cells.size()) / seconds;
    std::printf("  threads=%2zu  %7.2fs  speedup %5.2fx  cells/s %6.2f  identical=%s\n", threads,
                seconds, base_seconds / seconds, cells_per_sec, identical ? "yes" : "NO");
    json.add("wall_seconds_t" + std::to_string(threads), seconds);
    json.add("cells_per_sec_t" + std::to_string(threads), cells_per_sec);
    if (cells_per_sec > best_cells_per_sec) {
      best_cells_per_sec = cells_per_sec;
      best_threads = threads;
    }
    if (!identical) {
      std::printf("ERROR: results diverged at threads=%zu\n", threads);
      return 1;
    }
  }
  json.add("threads", static_cast<std::int64_t>(best_threads));
  json.add("cells_per_sec", best_cells_per_sec);

  // ---- observability overhead gate: tracing off vs on at best_threads ----
  // Same cells, same thread count; the only difference is obs::enabled()
  // plus a per-cell trace ring. Results must stay bitwise identical and
  // the throughput cost must stay under obs_overhead_max.
  const double overhead_max = cli.get_double("obs_overhead_max", 0.03);
  const int reps = static_cast<int>(cli.get_int("obs_reps", 3));
  bool hashes_ok = true;
  obs::set_enabled(false);
  const double off_cps = measure_cells_per_sec(cells, best_threads, reps, base_hash, nullptr,
                                               &hashes_ok);
  obs::set_enabled(true);
  scenario::SweepTrace trace;
  const double on_cps = measure_cells_per_sec(cells, best_threads, reps, base_hash, &trace,
                                              &hashes_ok);
  const double overhead = off_cps > 0.0 ? std::max(0.0, (off_cps - on_cps) / off_cps) : 0.0;
  std::printf("obs overhead: off %6.2f cells/s, on %6.2f cells/s (%.2f%%, max %.0f%%), "
              "%llu trace events, identical=%s\n",
              off_cps, on_cps, 100.0 * overhead, 100.0 * overhead_max,
              static_cast<unsigned long long>(trace.total_events()), hashes_ok ? "yes" : "NO");
  json.add("cells_per_sec_obs_off", off_cps);
  json.add("cells_per_sec_obs_on", on_cps);
  json.add("obs_overhead_frac", overhead);
  json.add("obs_trace_events", static_cast<std::int64_t>(trace.total_events()));

  // Audit the heaviest expanded cell (last in expansion order: highest
  // utilization axis value, eventful profile) for steady-state allocations
  // — with instrumentation enabled.
  const bool zero_alloc = audit_steady_state_allocs(cells.back(), json);
  json.add_resource_fields();
  json.write();
  if (!hashes_ok) {
    std::printf("ERROR: sweep results diverged between tracing off and on\n");
    return 1;
  }
  if (overhead > overhead_max) {
    std::printf("ERROR: observability overhead %.2f%% exceeds the %.0f%% budget\n",
                100.0 * overhead, 100.0 * overhead_max);
    return 1;
  }
  if (!zero_alloc) {
    std::printf("ERROR: steady-state scheduler passes allocated on the heap with metrics "
                "enabled (zero-allocation contract broken)\n");
    return 1;
  }
  return 0;
}

// Scenario sweep scaling bench: run the same scenario matrix at several
// thread-pool sizes and report wall time + speedup vs 1 thread. Cells are
// pure functions of their specs with pre-assigned seeds, so the sweep is
// embarrassingly parallel — on an 8-core machine the 8-thread run should
// clear 4x over 1 thread (the acceptance bar); results are asserted
// bitwise identical across all thread counts.
//
//   ./bench_scenario_sweep [threads=1,2,4,8] [cells=16] [months=3] [scale=0.4]
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "scenario/scenario.hpp"
#include "scenario/sweep.hpp"
#include "sim/simulator.hpp"
#include "util/config.hpp"
#include "util/rng.hpp"
#include "util/time_utils.hpp"

namespace {

/// Steady-state allocation audit: replay one cell's simulation, warm up to
/// the midpoint of its horizon (every hot container has reached its high-
/// water capacity by then), and count heap allocations per scheduler pass
/// over the remainder. The incremental scheduling kernel's contract is
/// that this is exactly zero — machine-checked here via the counting
/// operator new in bench/alloc_hooks.cpp, not asserted in a comment.
/// Returns false (and the bench exits nonzero) when the contract is
/// broken, so an allocation regression fails CI rather than landing as a
/// silently changed JSON field. The tolerance of 0.01 allocations/pass
/// separates a genuine per-pass allocation (>= 1.0) from stray amortized
/// container growth.
bool audit_steady_state_allocs(const mirage::scenario::ScenarioSpec& spec,
                               mirage::bench::BenchJson& json) {
  using namespace mirage;
  auto workload = scenario::build_workload(spec);
  sim::Simulator sim(scenario::to_cluster_model(spec.resolved_preset()), spec.scheduler);
  sim.load_workload(std::move(workload));
  for (const auto& ev : scenario::capacity_events(spec)) sim.schedule_cluster_event(ev);
  sim.run_until(static_cast<util::SimTime>(spec.months_end) * util::kMonth / 2);
  const std::uint64_t allocs_before = bench::allocation_count();
  const std::uint64_t passes_before = sim.scheduler_passes();
  sim.run_to_completion();
  const std::uint64_t allocs = bench::allocation_count() - allocs_before;
  const std::uint64_t passes = sim.scheduler_passes() - passes_before;
  const double per_pass = passes ? static_cast<double>(allocs) / static_cast<double>(passes) : 0.0;
  std::printf("steady state: %llu heap allocations over %llu scheduler passes (%.4f/pass)\n",
              static_cast<unsigned long long>(allocs), static_cast<unsigned long long>(passes),
              per_pass);
  json.add("steady_allocs", static_cast<std::int64_t>(allocs));
  json.add("steady_passes", static_cast<std::int64_t>(passes));
  json.add("steady_allocs_per_pass", per_pass);
  return per_pass <= 0.01;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mirage;
  using scenario::ScenarioEventKind;

  const auto cli = util::Config::from_args(argc, argv);

  scenario::SweepMatrix matrix;
  matrix.base.cluster = cli.get_string("cluster", "a100");
  matrix.base.months_begin = 0;
  matrix.base.months_end = static_cast<std::int32_t>(cli.get_int("months", 3));
  matrix.base.seed = static_cast<std::uint64_t>(cli.get_int("seed", 42));
  matrix.base.job_count_scale = cli.get_double("scale", 0.4);

  const std::int32_t half = matrix.base.resolved_preset().node_count / 2;
  matrix.reservation_depths = {1, 8};
  matrix.event_profiles = {
      {"none", {}},
      {"outage",
       {{ScenarioEventKind::kNodeDown, 20 * util::kDay, half, 0, 0, 0, 600},
        {ScenarioEventKind::kNodeRestore, 23 * util::kDay, half, 0, 0, 0, 600}}},
  };
  // Scale the utilization axis until the matrix reaches the requested size.
  const auto target_cells = static_cast<std::size_t>(cli.get_int("cells", 16));
  for (double u = 0.85; matrix.cell_count() < target_cells; u += 0.07) {
    matrix.utilization_scales.push_back(u);
  }

  const auto cells = matrix.expand();
  std::printf("bench_scenario_sweep: %zu cells, months=%d, scale=%.2f\n", cells.size(),
              matrix.base.months_end, matrix.base.job_count_scale);

  std::vector<std::size_t> thread_counts;
  {
    const std::string arg = cli.get_string("threads", "1,2,4,8");
    std::size_t pos = 0;
    while (pos <= arg.size()) {
      auto comma = arg.find(',', pos);
      if (comma == std::string::npos) comma = arg.size();
      if (comma > pos) {
        thread_counts.push_back(
            static_cast<std::size_t>(std::atoll(arg.substr(pos, comma - pos).c_str())));
      }
      pos = comma + 1;
    }
  }

  double base_seconds = 0.0;
  std::uint64_t base_hash = 0;
  bench::BenchJson json("scenario_sweep");
  // Workload fingerprint: bench_compare only gates cells_per_sec between
  // runs whose parameters match (a resized preset resets the baseline).
  json.add("params", "cells=" + std::to_string(cells.size()) +
                         ",months=" + std::to_string(matrix.base.months_end) +
                         ",scale=" + std::to_string(matrix.base.job_count_scale) +
                         ",cluster=" + matrix.base.cluster);
  json.add("cells", static_cast<std::int64_t>(cells.size()));
  double best_cells_per_sec = 0.0;
  std::size_t best_threads = 0;
  for (const std::size_t threads : thread_counts) {
    const double t0 = util::wall_seconds();
    const auto report = scenario::SweepRunner(threads).run(cells);
    const double seconds = util::wall_seconds() - t0;

    std::uint64_t combined = util::kFnv1a64Basis;
    for (const auto& c : report.cells) combined ^= c.schedule_hash;
    if (base_seconds == 0.0) {
      base_seconds = seconds;
      base_hash = combined;
    }
    const bool identical = combined == base_hash;
    const double cells_per_sec = static_cast<double>(cells.size()) / seconds;
    std::printf("  threads=%2zu  %7.2fs  speedup %5.2fx  cells/s %6.2f  identical=%s\n", threads,
                seconds, base_seconds / seconds, cells_per_sec, identical ? "yes" : "NO");
    json.add("wall_seconds_t" + std::to_string(threads), seconds);
    json.add("cells_per_sec_t" + std::to_string(threads), cells_per_sec);
    if (cells_per_sec > best_cells_per_sec) {
      best_cells_per_sec = cells_per_sec;
      best_threads = threads;
    }
    if (!identical) {
      std::printf("ERROR: results diverged at threads=%zu\n", threads);
      return 1;
    }
  }
  json.add("threads", static_cast<std::int64_t>(best_threads));
  json.add("cells_per_sec", best_cells_per_sec);
  // Audit the heaviest expanded cell (last in expansion order: highest
  // utilization axis value, eventful profile) for steady-state allocations.
  const bool zero_alloc = audit_steady_state_allocs(cells.back(), json);
  json.add_resource_fields();
  json.write();
  if (!zero_alloc) {
    std::printf("ERROR: steady-state scheduler passes allocated on the heap "
                "(zero-allocation contract broken)\n");
    return 1;
  }
  return 0;
}

// Scenario sweep scaling bench: run the same scenario matrix at several
// thread-pool sizes and report wall time + speedup vs 1 thread. Cells are
// pure functions of their specs with pre-assigned seeds, so the sweep is
// embarrassingly parallel — on an 8-core machine the 8-thread run should
// clear 4x over 1 thread (the acceptance bar); results are asserted
// bitwise identical across all thread counts.
//
//   ./bench_scenario_sweep [threads=1,2,4,8] [cells=16] [months=3] [scale=0.4]
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "scenario/scenario.hpp"
#include "scenario/sweep.hpp"
#include "util/config.hpp"
#include "util/rng.hpp"
#include "util/time_utils.hpp"

int main(int argc, char** argv) {
  using namespace mirage;
  using scenario::ScenarioEventKind;

  const auto cli = util::Config::from_args(argc, argv);

  scenario::SweepMatrix matrix;
  matrix.base.cluster = cli.get_string("cluster", "a100");
  matrix.base.months_begin = 0;
  matrix.base.months_end = static_cast<std::int32_t>(cli.get_int("months", 3));
  matrix.base.seed = static_cast<std::uint64_t>(cli.get_int("seed", 42));
  matrix.base.job_count_scale = cli.get_double("scale", 0.4);

  const std::int32_t half = matrix.base.resolved_preset().node_count / 2;
  matrix.reservation_depths = {1, 8};
  matrix.event_profiles = {
      {"none", {}},
      {"outage",
       {{ScenarioEventKind::kNodeDown, 20 * util::kDay, half, 0, 0, 0, 600},
        {ScenarioEventKind::kNodeRestore, 23 * util::kDay, half, 0, 0, 0, 600}}},
  };
  // Scale the utilization axis until the matrix reaches the requested size.
  const auto target_cells = static_cast<std::size_t>(cli.get_int("cells", 16));
  for (double u = 0.85; matrix.cell_count() < target_cells; u += 0.07) {
    matrix.utilization_scales.push_back(u);
  }

  const auto cells = matrix.expand();
  std::printf("bench_scenario_sweep: %zu cells, months=%d, scale=%.2f\n", cells.size(),
              matrix.base.months_end, matrix.base.job_count_scale);

  std::vector<std::size_t> thread_counts;
  {
    const std::string arg = cli.get_string("threads", "1,2,4,8");
    std::size_t pos = 0;
    while (pos <= arg.size()) {
      auto comma = arg.find(',', pos);
      if (comma == std::string::npos) comma = arg.size();
      if (comma > pos) {
        thread_counts.push_back(
            static_cast<std::size_t>(std::atoll(arg.substr(pos, comma - pos).c_str())));
      }
      pos = comma + 1;
    }
  }

  double base_seconds = 0.0;
  std::uint64_t base_hash = 0;
  bench::BenchJson json("scenario_sweep");
  json.add("cells", static_cast<std::int64_t>(cells.size()));
  double best_cells_per_sec = 0.0;
  std::size_t best_threads = 0;
  for (const std::size_t threads : thread_counts) {
    const double t0 = util::wall_seconds();
    const auto report = scenario::SweepRunner(threads).run(cells);
    const double seconds = util::wall_seconds() - t0;

    std::uint64_t combined = util::kFnv1a64Basis;
    for (const auto& c : report.cells) combined ^= c.schedule_hash;
    if (base_seconds == 0.0) {
      base_seconds = seconds;
      base_hash = combined;
    }
    const bool identical = combined == base_hash;
    const double cells_per_sec = static_cast<double>(cells.size()) / seconds;
    std::printf("  threads=%2zu  %7.2fs  speedup %5.2fx  cells/s %6.2f  identical=%s\n", threads,
                seconds, base_seconds / seconds, cells_per_sec, identical ? "yes" : "NO");
    json.add("wall_seconds_t" + std::to_string(threads), seconds);
    json.add("cells_per_sec_t" + std::to_string(threads), cells_per_sec);
    if (cells_per_sec > best_cells_per_sec) {
      best_cells_per_sec = cells_per_sec;
      best_threads = threads;
    }
    if (!identical) {
      std::printf("ERROR: results diverged at threads=%zu\n", threads);
      return 1;
    }
  }
  json.add("threads", static_cast<std::int64_t>(best_threads));
  json.add("cells_per_sec", best_cells_per_sec);
  json.write();
  return 0;
}

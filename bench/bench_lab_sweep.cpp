// Lab sweep bench + acceptance harness: train 2 learned methods (plus the
// avg heuristic baseline) across an 8-cell scenario matrix (6 cells
// event-bearing: recurring maintenance drains and recurring flash-crowd
// bursts), then assert the lab's two determinism contracts end to end:
//
//   1. parallel == serial — the leaderboard from a LabRunner(threads) run
//      is bitwise identical to LabRunner::run_serial on the same plan;
//   2. resume == uninterrupted — after truncating the artifact dir (every
//      other job's manifest + checkpoint deleted, simulating a killed
//      run), a resumed run reproduces the serial leaderboard bitwise.
//
//   ./bench_lab_sweep [threads=2] [cells=8] [months=1] [scale=0.45]
//                     [nodes=20] [keep=0]
//
// Exits non-zero on any contract violation (CI runs this as a smoke).
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "lab/artifact_store.hpp"
#include "lab/experiment.hpp"
#include "lab/runner.hpp"
#include "util/config.hpp"
#include "util/time_utils.hpp"

int main(int argc, char** argv) {
  using namespace mirage;
  using scenario::ScenarioEvent;
  using scenario::ScenarioEventKind;
  namespace fs = std::filesystem;

  const auto cli = util::Config::from_args(argc, argv);

  lab::ExperimentPlan plan;
  plan.name = "bench";
  plan.methods = {core::Method::kAvg, core::Method::kRandomForest, core::Method::kMoeDqn};

  auto& base = plan.matrix.base;
  base.cluster = cli.get_string("cluster", "a100");
  base.nodes_override = static_cast<std::int32_t>(cli.get_int("nodes", 20));
  base.months_begin = 0;
  base.months_end = static_cast<std::int32_t>(cli.get_int("months", 1));
  base.seed = static_cast<std::uint64_t>(cli.get_int("seed", 42));
  base.job_count_scale = cli.get_double("scale", 0.45);

  const std::int32_t quarter = base.resolved_preset().node_count / 4;
  plan.matrix.event_profiles = {
      {"none", {}},
      // Weekly maintenance calendar, 4 occurrences (recurring expansion).
      {"maintenance",
       {{ScenarioEventKind::kDrain, 5 * util::kDay, quarter, 0, 0, 0, 600, util::kWeek, 4},
        {ScenarioEventKind::kNodeRestore, 5 * util::kDay + 6 * util::kHour, quarter, 0, 0, 0,
         600, util::kWeek, 4}}},
      // Weekly flash crowd: 30 two-node jobs inside an hour, 4 occurrences.
      {"flash-crowd",
       {{ScenarioEventKind::kBurst, 5 * util::kDay, 2, 30, 2 * util::kHour, 4 * util::kHour,
         util::kHour, util::kWeek, 4}}},
      {"mixed",
       {{ScenarioEventKind::kDrain, 9 * util::kDay, quarter, 0, 0, 0, 600, util::kWeek, 3},
        {ScenarioEventKind::kNodeRestore, 9 * util::kDay + 6 * util::kHour, quarter, 0, 0, 0,
         600, util::kWeek, 3},
        {ScenarioEventKind::kBurst, 6 * util::kDay, 2, 20, 2 * util::kHour, 4 * util::kHour,
         util::kHour, util::kWeek, 3}}},
  };
  // Grow the utilization axis to the requested cell count (profiles x u).
  const auto target_cells = static_cast<std::size_t>(cli.get_int("cells", 8));
  for (double u = 1.0; plan.matrix.cell_count() < target_cells; u += 0.25) {
    plan.matrix.utilization_scales.push_back(u);
  }

  const auto cells = plan.matrix.expand();
  std::size_t eventful = 0;
  for (const auto& c : cells) eventful += c.has_events();
  std::printf("bench_lab_sweep: %zu cells (%zu event-bearing) x %zu methods, months=%d, "
              "scale=%.2f, nodes=%d\n",
              cells.size(), eventful, plan.methods.size(), base.months_end,
              base.job_count_scale, base.nodes_override);

  const fs::path root = fs::temp_directory_path() / "mirage_bench_lab_sweep";
  fs::remove_all(root);
  const auto store_at = [&](const char* tag) {
    return lab::ArtifactStore((root / tag).string());
  };

  // Serial reference.
  auto serial_store = store_at("serial");
  const double t0 = util::wall_seconds();
  const auto serial = lab::LabRunner::run_serial(plan, serial_store);
  const double serial_s = util::wall_seconds() - t0;

  // Parallel run into a fresh store.
  const auto threads = static_cast<std::size_t>(cli.get_int("threads", 2));
  auto parallel_store = store_at("parallel");
  const double t1 = util::wall_seconds();
  const auto parallel = lab::LabRunner(threads).run(plan, parallel_store);
  const double parallel_s = util::wall_seconds() - t1;

  std::printf("\n%s\n", parallel.leaderboard.format_table().c_str());
  const bool parallel_ok = parallel.leaderboard == serial.leaderboard;
  std::printf("serial %.1fs | parallel(%zu) %.1fs (speedup %.2fx) | bitwise identical: %s\n",
              serial_s, threads, parallel_s, parallel_s > 0 ? serial_s / parallel_s : 0.0,
              parallel_ok ? "yes" : "NO");

  // Kill/resume: truncate the parallel store (drop every other job's
  // artifacts — a run killed mid-flight) and resume into it.
  std::size_t dropped = 0;
  const auto jobs = lab::expand_jobs(plan);
  for (std::size_t i = 0; i < jobs.size(); i += 2) {
    dropped += fs::remove(parallel_store.manifest_path(plan, jobs[i]));
    fs::remove(parallel_store.checkpoint_path(plan, jobs[i]));
  }
  const double t2 = util::wall_seconds();
  const auto resumed = lab::LabRunner(threads).run(plan, parallel_store);
  const double resumed_s = util::wall_seconds() - t2;
  const bool resume_ok =
      resumed.leaderboard == serial.leaderboard && resumed.jobs_run == dropped;
  std::printf("resume after truncation: %zu dropped, %zu recomputed, %zu resumed in %.1fs | "
              "bitwise identical: %s\n",
              dropped, resumed.jobs_run, resumed.jobs_resumed, resumed_s,
              resume_ok ? "yes" : "NO");

  bench::BenchJson json("lab_sweep");
  // Workload fingerprint for bench_compare (parameter changes reset the
  // cells_per_sec baseline instead of tripping the gate).
  json.add("params", "cells=" + std::to_string(cells.size()) +
                         ",methods=" + std::to_string(plan.methods.size()) +
                         ",months=" + std::to_string(base.months_end) +
                         ",scale=" + std::to_string(base.job_count_scale) +
                         ",nodes=" + std::to_string(base.nodes_override) +
                         ",threads=" + std::to_string(threads));
  json.add("cells", static_cast<std::int64_t>(cells.size()))
      .add("jobs", static_cast<std::int64_t>(parallel.jobs_total))
      .add("threads", static_cast<std::int64_t>(threads))
      .add("wall_seconds_serial", serial_s)
      .add("wall_seconds", parallel_s)
      .add("cells_per_sec", parallel_s > 0 ? static_cast<double>(cells.size()) / parallel_s : 0.0)
      .add("jobs_per_sec",
           parallel_s > 0 ? static_cast<double>(parallel.jobs_total) / parallel_s : 0.0)
      .add("resume_wall_seconds", resumed_s);
  json.add_resource_fields();
  json.write();

  if (!static_cast<bool>(cli.get_int("keep", 0))) fs::remove_all(root);
  if (!parallel_ok || !resume_ok) {
    std::printf("ERROR: lab determinism contract violated\n");
    return 1;
  }
  return 0;
}

// Ablation: MoE design choices called out in DESIGN.md —
//   (a) expert count E (paper default 10, §4.7),
//   (b) Top-1 sparse gating vs dense weighted-average gating (the paper
//       implements both and reports that Top-1 is inferior, §4.7).
// Measures offline pre-training regression loss and heavy-load evaluation.
#include <cstdio>

#include "bench_common.hpp"
#include "rl/trainer.hpp"

int main(int argc, char** argv) {
  using namespace mirage;
  const auto cli = util::Config::from_args(argc, argv);
  util::set_log_level(util::LogLevel::kWarn);
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 42));

  auto cfg = core::PipelineConfig::compact(trace::preset_by_name(cli.get_string("cluster", "a100")),
                                           1, seed);
  core::MiragePipeline pipe(cfg);
  pipe.prepare();
  pipe.collect_offline();
  const auto& samples = pipe.offline_dataset().nn_samples;
  std::printf("Ablation: MoE gating and expert count (%zu offline samples)\n\n", samples.size());
  std::printf("%-28s %14s %14s\n", "variant", "initial loss", "final loss");

  auto pretrain_variant = [&](const std::string& name, std::size_t experts, bool top1) {
    rl::DqnConfig dc;
    dc.foundation = nn::FoundationType::kMoE;
    dc.net = cfg.net;
    dc.net.moe_experts = experts;
    dc.net.moe_top1 = top1;
    rl::DqnAgent agent(dc, seed ^ experts);
    rl::PretrainConfig pc = cfg.pretrain;
    const auto losses = rl::pretrain_foundation(agent, samples, pc);
    std::printf("%-28s %14.3f %14.3f\n", name.c_str(), losses.front(), losses.back());
  };

  for (std::size_t e : {1, 2, 4, 8}) {
    pretrain_variant("dense, E=" + std::to_string(e), e, false);
  }
  pretrain_variant("top-1 sparse, E=4", 4, true);

  std::printf("\npaper §4.7: Top-1 gating showed inferior provisioning performance versus the "
              "dense weighted-average MoE\n");
  return 0;
}

// Table 1: statistics of the (synthetic) V100, RTX and A100 job traces —
// node count, time span, filtered job count — plus the §3.1 workload
// characteristics (jobs/month, mean nodes/job, short-job count).
#include <cstdio>

#include "trace/analysis.hpp"
#include "trace/cleaning.hpp"
#include "trace/generator.hpp"
#include "util/config.hpp"

int main(int argc, char** argv) {
  using namespace mirage;
  const auto cli = util::Config::from_args(argc, argv);
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 42));

  std::printf("Table 1: Stats of the Job Traces (paper targets: V100 65,017 / RTX 175,090 / "
              "A100 24,779 filtered jobs)\n\n");
  std::printf("%-8s %6s %8s %10s %14s %12s %11s\n", "cluster", "nodes", "months", "jobs",
              "jobs/month", "nodes/job", "short(<30s)");

  for (const auto& preset : trace::all_presets()) {
    trace::GeneratorOptions opt;
    opt.seed = seed;
    opt.inject_cleanable_rows = true;  // exercise the §3.2 cleaning path
    trace::SyntheticTraceGenerator gen(preset, opt);
    trace::CleaningReport report;
    const auto cleaned = trace::clean_trace(gen.generate(), preset.node_count, &report);
    const auto stats = trace::compute_stats(cleaned, preset.name, preset.node_count);
    std::printf("%-8s %6d %8d %10zu %8.0f±%-5.0f %12.2f %11zu\n", preset.name.c_str(),
                preset.node_count, preset.months, stats.job_count, stats.jobs_per_month_mean,
                stats.jobs_per_month_std, stats.mean_nodes_per_job, stats.short_job_count);
    std::printf("         cleaning: %zu raw rows, %zu oversize dropped, %zu sub-jobs merged\n",
                report.input_jobs, report.oversize_dropped, report.subjobs_merged);
  }
  std::printf("\npaper §3.1 reference: jobs/month 2,955±1,289 / 8,378 / 4,377±659; "
              "nodes/job 2.5 / 1.3 / 1.6; RTX short jobs 96,780\n");
  return 0;
}

// Figure 2: job arrival distribution per month on the three clusters.
#include <cstdio>

#include "trace/analysis.hpp"
#include "trace/generator.hpp"
#include "util/config.hpp"
#include "util/stats.hpp"

int main(int argc, char** argv) {
  using namespace mirage;
  const auto cli = util::Config::from_args(argc, argv);
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 42));

  std::printf("Figure 2: Job Arrival Distribution (jobs per month)\n\n");
  for (const auto& preset : trace::all_presets()) {
    trace::GeneratorOptions opt;
    opt.seed = seed;
    trace::SyntheticTraceGenerator gen(preset, opt);
    const auto counts = trace::monthly_job_counts(gen.generate());
    util::RunningStats s;
    std::printf("%-5s:", preset.name.c_str());
    for (auto c : counts) {
      std::printf(" %6zu", c);
      s.add(static_cast<double>(c));
    }
    std::printf("\n       mean %.0f ± %.0f per month\n", s.mean(), s.stddev());
  }
  std::printf("\npaper §3.1 reference: 2,955±1,289 / 8,378 / 4,377±659 jobs per month\n");
  return 0;
}

// Bench regression gate: diff the current run's BENCH_*.json artifacts
// against the previous run's and fail (exit 1) when a throughput metric
// regressed by more than the threshold. CI downloads the prior run's
// bench-json artifact and invokes:
//
//   bench_compare <baseline dir-or-file> <current dir-or-file>
//                 [threshold=0.15] [key=cells_per_sec]
//
// A missing/empty baseline passes with a note (first run, expired
// artifacts); a bench present only on one side is reported but does not
// gate. `bench_compare --self-test` verifies the gate's fail/pass logic
// against synthetic artifacts (CI runs it so "the gate would catch a
// regression" is itself tested every run).
#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

namespace fs = std::filesystem;

namespace {

struct BenchRecord {
  std::string name;
  std::map<std::string, std::string> strings;  ///< includes "params" when emitted
  std::map<std::string, double> numbers;
};

/// Parse the flat {"key": "string" | number, ...} JSON the benches emit.
/// Returns nullopt on malformed input (diagnosed by the caller).
std::optional<BenchRecord> parse_flat_json(const std::string& text) {
  BenchRecord rec;
  std::size_t i = 0;
  const auto skip_ws = [&] {
    while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i]))) ++i;
  };
  const auto parse_string = [&](std::string& out) -> bool {
    if (i >= text.size() || text[i] != '"') return false;
    ++i;
    out.clear();
    while (i < text.size() && text[i] != '"') {
      if (text[i] == '\\' && i + 1 < text.size()) ++i;
      out += text[i++];
    }
    if (i >= text.size()) return false;
    ++i;  // closing quote
    return true;
  };
  skip_ws();
  if (i >= text.size() || text[i] != '{') return std::nullopt;
  ++i;
  while (true) {
    skip_ws();
    if (i < text.size() && text[i] == '}') break;
    std::string key;
    if (!parse_string(key)) return std::nullopt;
    skip_ws();
    if (i >= text.size() || text[i] != ':') return std::nullopt;
    ++i;
    skip_ws();
    if (i < text.size() && text[i] == '"') {
      std::string value;
      if (!parse_string(value)) return std::nullopt;
      if (key == "bench") rec.name = value;
      rec.strings[key] = value;
    } else {
      std::size_t end = i;
      while (end < text.size() && text[end] != ',' && text[end] != '}') ++end;
      try {
        rec.numbers[key] = std::stod(text.substr(i, end - i));
      } catch (const std::exception&) {
        return std::nullopt;
      }
      i = end;
    }
    skip_ws();
    if (i < text.size() && text[i] == ',') {
      ++i;
      continue;
    }
    if (i < text.size() && text[i] == '}') break;
    return std::nullopt;
  }
  return rec;
}

std::vector<fs::path> collect_bench_files(const fs::path& where) {
  std::vector<fs::path> out;
  std::error_code ec;
  if (fs::is_regular_file(where, ec)) {
    out.push_back(where);
  } else if (fs::is_directory(where, ec)) {
    for (const auto& entry : fs::directory_iterator(where, ec)) {
      const std::string name = entry.path().filename().string();
      if (name.rfind("BENCH_", 0) == 0 && name.size() > 5 &&
          name.substr(name.size() - 5) == ".json") {
        out.push_back(entry.path());
      }
    }
    std::sort(out.begin(), out.end());
  }
  return out;
}

std::map<std::string, BenchRecord> load_records(const fs::path& where) {
  std::map<std::string, BenchRecord> out;
  for (const auto& path : collect_bench_files(where)) {
    std::ifstream in(path);
    std::stringstream buffer;
    buffer << in.rdbuf();
    auto rec = parse_flat_json(buffer.str());
    if (!rec || rec->name.empty()) {
      std::fprintf(stderr, "warning: could not parse %s; ignoring\n", path.string().c_str());
      continue;
    }
    out[rec->name] = std::move(*rec);
  }
  return out;
}

/// Core gate: returns the number of regressions (0 = pass).
int compare(const fs::path& baseline_path, const fs::path& current_path, double threshold,
            const std::string& key) {
  const auto baseline = load_records(baseline_path);
  const auto current = load_records(current_path);
  if (baseline.empty()) {
    std::printf("bench_compare: no baseline artifacts under %s — first run, gate passes\n",
                baseline_path.string().c_str());
    return 0;
  }
  if (current.empty()) {
    std::fprintf(stderr, "bench_compare: no current BENCH_*.json under %s\n",
                 current_path.string().c_str());
    return 1;
  }
  int regressions = 0;
  std::printf("bench_compare: gating '%s' at -%.0f%% against %zu baseline bench(es)\n",
              key.c_str(), threshold * 100.0, baseline.size());
  for (const auto& [name, cur] : current) {
    const auto base_rec = baseline.find(name);
    const auto cur_it = cur.numbers.find(key);
    if (cur_it == cur.numbers.end()) {
      // No gated metric in the current record. If the baseline HAD the
      // metric under identical parameters, the bench silently stopped
      // emitting it — that would disable the gate forever, so fail loudly
      // instead of skipping.
      if (base_rec != baseline.end() && base_rec->second.numbers.count(key)) {
        std::printf("  %-24s baseline has '%s' but the current record dropped it — "
                    "gate would be silently disabled: REGRESSION\n",
                    name.c_str(), key.c_str());
        ++regressions;
      }
      continue;
    }
    if (base_rec == baseline.end()) {
      std::printf("  %-24s %12.2f   (new bench, no baseline)\n", name.c_str(), cur_it->second);
      continue;
    }
    // Throughput is only comparable when the workload is: both sides
    // record their bench parameters, and a parameter change (e.g. this
    // commit resizing the CI preset) resets the baseline rather than
    // producing a guaranteed spurious verdict in either direction.
    const auto base_params = base_rec->second.strings.find("params");
    const auto cur_params = cur.strings.find("params");
    const bool base_has = base_params != base_rec->second.strings.end();
    const bool cur_has = cur_params != cur.strings.end();
    if (base_has != cur_has || (base_has && base_params->second != cur_params->second)) {
      std::printf("  %-24s %12.2f   (bench parameters changed — baseline not "
                  "comparable, not gated)\n",
                  name.c_str(), cur_it->second);
      continue;
    }
    const auto base_it = base_rec->second.numbers.find(key);
    if (base_it == base_rec->second.numbers.end()) {
      std::printf("  %-24s %12.2f   (baseline lacks '%s')\n", name.c_str(), cur_it->second,
                  key.c_str());
      continue;
    }
    const double base = base_it->second, now = cur_it->second;
    const double change = base > 0 ? (now - base) / base : 0.0;
    const bool regressed = base > 0 && now < base * (1.0 - threshold);
    std::printf("  %-24s %12.2f -> %12.2f   %+6.1f%%  %s\n", name.c_str(), base, now,
                change * 100.0, regressed ? "REGRESSION" : "ok");
    if (regressed) ++regressions;
  }
  for (const auto& [name, base_rec] : baseline) {
    if (current.find(name) == current.end() && base_rec.numbers.count(key)) {
      std::printf("  %-24s (present in baseline only — not gated)\n", name.c_str());
    }
  }
  return regressions;
}

void write_file(const fs::path& path, const std::string& text) {
  std::ofstream out(path);
  out << text;
}

/// Verify the gate fails on an injected synthetic regression and passes on
/// a within-threshold change. Exercised by CI on every run.
int self_test() {
  const fs::path root = fs::temp_directory_path() / "bench_compare_selftest";
  std::error_code ec;
  fs::remove_all(root, ec);
  for (const char* dir : {"base", "bad", "good", "resized", "keyless"}) {
    fs::create_directories(root / dir);
  }
  write_file(root / "base" / "BENCH_selftest.json",
             "{\"bench\": \"selftest\", \"params\": \"cells=16\", \"cells_per_sec\": 100.0}\n");
  write_file(root / "bad" / "BENCH_selftest.json",
             "{\"bench\": \"selftest\", \"params\": \"cells=16\", \"cells_per_sec\": 50.0}\n");
  write_file(root / "good" / "BENCH_selftest.json",
             "{\"bench\": \"selftest\", \"params\": \"cells=16\", \"cells_per_sec\": 95.0}\n");
  // Same bench, different workload parameters: numbers are incomparable
  // and must reset the baseline instead of flagging.
  write_file(root / "resized" / "BENCH_selftest.json",
             "{\"bench\": \"selftest\", \"params\": \"cells=32\", \"cells_per_sec\": 20.0}\n");
  // Same bench, gated metric silently dropped: must FAIL, or the gate
  // could be disabled forever by a rename.
  write_file(root / "keyless" / "BENCH_selftest.json",
             "{\"bench\": \"selftest\", \"params\": \"cells=16\"}\n");
  const int on_regression = compare(root / "base", root / "bad", 0.15, "cells_per_sec");
  const int on_parity = compare(root / "base", root / "good", 0.15, "cells_per_sec");
  const int on_no_baseline = compare(root / "missing", root / "good", 0.15, "cells_per_sec");
  const int on_resize = compare(root / "base", root / "resized", 0.15, "cells_per_sec");
  const int on_dropped_key = compare(root / "base", root / "keyless", 0.15, "cells_per_sec");
  fs::remove_all(root, ec);
  if (on_regression <= 0) {
    std::fprintf(stderr, "self-test FAILED: 50%% regression was not flagged\n");
    return 1;
  }
  if (on_parity != 0 || on_no_baseline != 0) {
    std::fprintf(stderr, "self-test FAILED: gate flagged a non-regression\n");
    return 1;
  }
  if (on_resize != 0) {
    std::fprintf(stderr, "self-test FAILED: parameter change was gated as a regression\n");
    return 1;
  }
  if (on_dropped_key <= 0) {
    std::fprintf(stderr, "self-test FAILED: silently dropped gate metric not flagged\n");
    return 1;
  }
  std::printf("bench_compare self-test: PASS (regression + dropped-metric flagged; parity, "
              "missing-baseline, and parameter-change pass)\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  double threshold = 0.15;
  std::string key = "cells_per_sec";
  std::vector<std::string> paths;
  for (const auto& arg : args) {
    if (arg == "--self-test") return self_test();
    if (arg.rfind("threshold=", 0) == 0) {
      threshold = std::stod(arg.substr(10));
    } else if (arg.rfind("key=", 0) == 0) {
      key = arg.substr(4);
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.size() != 2) {
    std::fprintf(stderr,
                 "usage: bench_compare <baseline dir|file> <current dir|file> "
                 "[threshold=0.15] [key=cells_per_sec] | --self-test\n");
    return 2;
  }
  const int regressions = compare(paths[0], paths[1], threshold, key);
  if (regressions > 0) {
    std::fprintf(stderr, "bench_compare: %d metric(s) regressed more than %.0f%%\n",
                 regressions, threshold * 100.0);
    return 1;
  }
  std::printf("bench_compare: gate passed\n");
  return 0;
}

// Million-session serve soak (ISSUE 7 tentpole gate): drive the sharded
// ProvisioningService through every steady-state contract at once and
// fail loudly when any regresses:
//
//   1. scale     — open `sessions` (default 100k) live sessions across the
//                  sharded table and seed each history ring;
//   2. zero-alloc— closed-loop blocking decides over a hot session set,
//                  audited by the counting allocator: the steady-state
//                  decide path must perform ZERO heap allocations
//                  (observation buffers, ring slots and latency reservoir
//                  are all preallocated / circulating). This is the gated
//                  decisions_per_sec measurement;
//   3. latency   — a paced async phase feeds the latency reservoir, then
//                  p50/p99/p99.9 come from the engine snapshot with the
//                  p99 bounded by `p99_limit_ms`;
//   4. TTL       — the cold sessions (everything outside the hot set) sit
//                  idle past `ttl` and must be reaped by the lazy check +
//                  one-shard-per-tick background sweeper (+ a final
//                  explicit sweep), evictions >= sessions - hot;
//   5. backpressure — a deliberately slow model behind a tiny bounded
//                  queue must reject a burst with BackpressureRejected,
//                  never grow the queue without bound.
//
// ISSUE 8 additions: the soak now runs with the SLO engine EVALUATING and
// request-journey tracing ON during the audited window — the zero-alloc
// and throughput gates hold with the judgement layer live:
//
//   2b. overhead — the steady phase runs in alternating tracing-off /
//                  tracing-on reps; best-of tracing-on throughput must be
//                  within 3% of best-of tracing-off, and the tracing-on
//                  rep is the one audited for zero allocations;
//   6. breach    — a deliberately unmeetable latency SLO over a slow stub
//                  must transition pending->firing and auto-dump a
//                  flight-recorder bundle that passes validate_bundle
//                  (Chrome-trace + Prometheus-lint checks inside).
//
// ISSUE 10 additions: the durability and pooled-token layers must not
// disturb the steady-state contracts (both run on dedicated TTL-free
// services after the main fleet drains, so sweeper evictions cannot
// pollute the allocation audit):
//
//   4b. pooled   — a windowed decide_async_pooled loop over recycled
//                  completion tokens is audited for ZERO allocations (the
//                  token pool must recirculate, never grow, once warm);
//   4c. journal  — a second service runs the same steady window with
//                  session-state WAL journaling ON (sync=none, the serving
//                  configuration); throughput must stay within 5% of the
//                  un-journaled tracing-on baseline, the audited window
//                  must stay allocation-free, and the journal must never
//                  enter the failed state.
//
// The service is measured around an allocation-free stub model so the
// audit isolates the serving layers (shards, engine ring, waiter pool)
// from NN-forward internals; bench_serve_throughput covers the real
// model. Emits BENCH_serve_soak.json (decisions_per_sec is the
// bench_compare-gated key).
//
//   ./bench_serve_soak [sessions=100000] [hot=1024] [steady=40000]
//                      [clients=4] [qps=4000] [qps_seconds=2] [ttl=8]
//                      [shards=16] [k=4] [p99_limit_ms=250] [pooled=8192]
#include <array>
#include <atomic>
#include <cstdio>
#include <filesystem>
#include <future>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "serve/service.hpp"
#include "util/config.hpp"
#include "util/time_utils.hpp"

using namespace mirage;

namespace {

/// Allocation-free decision stub: the serving layers see a real
/// ServableModel (virtual infer_into) whose forward touches no heap.
struct StubModel : serve::ServableModel {
  static core::CheckpointInfo stub_info(std::size_t k) {
    core::CheckpointInfo info;
    info.history_len = k;
    info.state_dim = rl::kFrameDim;
    return info;
  }
  explicit StubModel(std::size_t k)
      : ServableModel({"soak", "stub", "none"}, stub_info(k), "<stub>", 1, nullptr, nullptr) {}
  void infer_into(const std::vector<std::vector<float>>& observations,
                  std::vector<serve::Decision>& out) const override {
    out.resize(observations.size());
    for (std::size_t i = 0; i < observations.size(); ++i) {
      float acc = 0.0f;
      for (const float v : observations[i]) acc += v;
      out[i].action = acc > 0.0f ? 1 : 0;
      out[i].score_submit = acc;
      out[i].score_wait = -acc;
      out[i].model_version = version();
    }
  }
};

/// Slow variant for the backpressure phase: each tick stalls long enough
/// for a submission burst to overflow the bounded queue.
struct SlowStubModel : StubModel {
  SlowStubModel(std::size_t k, std::chrono::microseconds stall)
      : StubModel(k), stall_(stall) {}
  void infer_into(const std::vector<std::vector<float>>& observations,
                  std::vector<serve::Decision>& out) const override {
    std::this_thread::sleep_for(stall_);
    StubModel::infer_into(observations, out);
  }
  std::chrono::microseconds stall_;
};

sim::StateSample soak_sample(std::uint64_t step) {
  sim::StateSample s;
  s.now = static_cast<util::SimTime>(step) * 600;
  s.total_nodes = 88;
  s.free_nodes = static_cast<std::int32_t>(step % 89);
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  const auto cli = util::Config::from_args(argc, argv);
  const auto sessions = static_cast<std::size_t>(cli.get_int("sessions", 100000));
  const auto hot = std::min(sessions, static_cast<std::size_t>(cli.get_int("hot", 1024)));
  const auto steady = static_cast<std::size_t>(cli.get_int("steady", 40000));
  const auto clients = static_cast<std::size_t>(cli.get_int("clients", 4));
  const auto qps = static_cast<std::size_t>(cli.get_int("qps", 4000));
  const double qps_seconds = cli.get_double("qps_seconds", 2.0);
  const double ttl = cli.get_double("ttl", 8.0);
  const auto shards = static_cast<std::size_t>(cli.get_int("shards", 16));
  const auto k = static_cast<std::size_t>(cli.get_int("k", 4));
  const double p99_limit_ms = cli.get_double("p99_limit_ms", 250.0);

  serve::ServiceConfig cfg;
  cfg.history_len = k;
  cfg.shards = shards;
  cfg.session_ttl_seconds = ttl;
  cfg.sweep_interval_seconds = cli.get_double("sweep_interval", 0.01);
  cfg.engine.max_batch = static_cast<std::size_t>(cli.get_int("max_batch", 256));
  cfg.engine.coalesce_wait = std::chrono::microseconds(cli.get_int("coalesce_us", 100));
  cfg.engine.max_queue = static_cast<std::size_t>(cli.get_int("max_queue", 8192));
  // The audited window must not ride the shared pool: pool submission
  // allocates a task per tick. The engine thread runs the stub inline.
  cfg.engine.use_thread_pool = false;
  // SLO evaluation live during the audit: generous objectives that a
  // healthy soak never breaches, so the sweeper ticks the full evaluate
  // path every interval without state transitions (the allocation-free
  // steady case). The deliberate breach runs against its own service.
  cfg.slo.enabled = true;
  cfg.slo.latency_target_seconds = 30.0;
  cfg.slo.latency_quantile = 99.0;
  cfg.slo.reject_budget = 0.5;
  cfg.slo.short_window_seconds = 2.0;
  cfg.slo.long_window_seconds = 10.0;
  cfg.slo.dump_on_fire = false;

  auto model = std::make_shared<const StubModel>(k);
  serve::ProvisioningService service(serve::ModelSnapshot(model), cfg);
  service.start();
  std::printf("serve soak: %zu sessions, %zu shards, hot set %zu, ttl %.1fs\n\n",
              sessions, shards, hot, ttl);

  // ---- phase 1: open the fleet -------------------------------------------
  double t0 = util::wall_seconds();
  std::vector<serve::SessionId> ids;
  ids.reserve(sessions);
  const rl::JobPairContext ctx;
  for (std::size_t i = 0; i < sessions; ++i) {
    const auto id = service.open_session();
    service.observe(id, soak_sample(i), ctx);
    ids.push_back(id);
  }
  const double open_seconds = util::wall_seconds() - t0;
  const double open_end = util::wall_seconds();
  const std::size_t open_sessions_peak = service.session_count();
  std::printf("open        %zu sessions in %.2f s (%.0f opens/s), table holds %zu\n",
              sessions, open_seconds, static_cast<double>(sessions) / open_seconds,
              open_sessions_peak);

  // ---- phase 2: zero-alloc closed-loop steady state + tracing overhead ---
  // Warmup grows every thread_local buffer, ring-slot capacity and the
  // latency reservoir to steady size; then the measured window must not
  // allocate at all. The phase runs in alternating tracing-off/tracing-on
  // reps (obs::set_enabled gates journey events, spans and exemplars);
  // the 3% overhead gate compares best-of each mode and the allocation
  // audit covers a TRACING-ON rep — the full judgement layer (journey
  // trace + SLO evaluate on the sweeper) inside the audited window.
  struct SteadyRep {
    double decisions_per_sec = 0.0;
    std::uint64_t alloc_delta = 0;
    std::uint64_t served = 0;
  };
  const std::size_t per_client =
      std::max<std::size_t>(1, steady / std::max<std::size_t>(1, clients));
  const auto run_steady = [&](serve::ProvisioningService& svc,
                              const std::vector<serve::SessionId>& sids, bool tracing_on) {
    obs::set_enabled(tracing_on);
    std::atomic<std::size_t> ready{0};
    std::atomic<bool> go{false};
    std::atomic<std::uint64_t> steady_served{0};
    std::vector<std::thread> workers;
    for (std::size_t c = 0; c < clients; ++c) {
      workers.emplace_back([&, c] {
        serve::Decision d;
        // Warmup must cycle the ENTIRE engine ring: every slot's
        // observation buffer starts empty and allocates once when it
        // first circulates back to a caller, so the audited window only
        // starts after each of the max_queue slots has carried at least
        // one request. Fresh client threads each rep also need their
        // thread_local observation buffers and waiter slots grown.
        const std::size_t warm = cfg.engine.max_queue / clients + 1024;
        const std::size_t pool = std::min(hot, sids.size());
        for (std::size_t i = 0; i < warm; ++i) {
          svc.try_decide(sids[(c * 7919 + i) % pool], d);
        }
        ready.fetch_add(1);
        while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
        std::uint64_t served = 0;
        for (std::size_t i = 0; i < per_client; ++i) {
          if (svc.try_decide(sids[(c * 104729 + i) % pool], d) ==
              serve::BatchedInferenceEngine::SubmitResult::kOk) {
            ++served;
          }
        }
        steady_served.fetch_add(served);
      });
    }
    while (ready.load() < clients) std::this_thread::sleep_for(std::chrono::milliseconds(1));
    std::this_thread::sleep_for(std::chrono::milliseconds(50));  // engine settles
    const std::uint64_t alloc0 = bench::allocation_count();
    const double rep_t0 = util::wall_seconds();
    go.store(true, std::memory_order_release);
    for (auto& t : workers) t.join();
    SteadyRep rep;
    const double rep_seconds = util::wall_seconds() - rep_t0;
    rep.alloc_delta = bench::allocation_count() - alloc0;
    rep.served = steady_served.load();
    rep.decisions_per_sec = static_cast<double>(rep.served) / rep_seconds;
    obs::set_enabled(true);
    return rep;
  };

  SteadyRep best_off, best_on;
  std::uint64_t traced_allocs = 0, traced_served = 0;
  const auto reps = static_cast<std::size_t>(cli.get_int("steady_reps", 2));
  for (std::size_t r = 0; r < reps; ++r) {
    const SteadyRep off = run_steady(service, ids, /*tracing_on=*/false);
    const SteadyRep on = run_steady(service, ids, /*tracing_on=*/true);
    if (off.decisions_per_sec > best_off.decisions_per_sec) best_off = off;
    if (on.decisions_per_sec > best_on.decisions_per_sec) best_on = on;
    traced_allocs += on.alloc_delta;
    traced_served += on.served;
    std::printf("steady rep  off %.0f/s (%llu allocs)   on %.0f/s (%llu allocs)\n",
                off.decisions_per_sec, static_cast<unsigned long long>(off.alloc_delta),
                on.decisions_per_sec, static_cast<unsigned long long>(on.alloc_delta));
  }
  const double decisions_per_sec = best_on.decisions_per_sec;
  const std::uint64_t alloc_delta = traced_allocs;
  const double allocs_per_decide =
      traced_served ? static_cast<double>(traced_allocs) / static_cast<double>(traced_served)
                    : static_cast<double>(traced_allocs);
  const double tracing_overhead_pct =
      best_off.decisions_per_sec > 0.0
          ? (1.0 - best_on.decisions_per_sec / best_off.decisions_per_sec) * 100.0
          : 0.0;
  std::printf(
      "steady      tracing-on %.0f/s vs tracing-off %.0f/s (overhead %.2f%%), "
      "%llu traced allocs (%.4f/decide)\n",
      best_on.decisions_per_sec, best_off.decisions_per_sec, tracing_overhead_pct,
      static_cast<unsigned long long>(alloc_delta), allocs_per_decide);

  // ---- phase 3: paced async latency --------------------------------------
  const std::size_t burst = std::max<std::size_t>(1, qps / 1000);
  std::vector<std::future<serve::Decision>> in_flight;
  in_flight.reserve(2048);
  std::size_t paced = 0;
  const double pace_end = util::wall_seconds() + qps_seconds;
  while (util::wall_seconds() < pace_end) {
    for (std::size_t b = 0; b < burst; ++b) {
      in_flight.push_back(service.decide_async(ids[paced++ % hot]));
    }
    if (in_flight.size() >= 1024) {
      for (auto& f : in_flight) f.get();
      in_flight.clear();
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  for (auto& f : in_flight) f.get();
  auto report = service.report();
  std::printf("latency     p50 %.3f ms  p99 %.3f ms  p99.9 %.3f ms  (%zu samples, %zu paced)\n",
              report.engine.latency.p50_ms, report.engine.latency.p99_ms,
              report.engine.latency.p999_ms, report.engine.latency.count, paced);

  // ---- phase 4: TTL eviction of the cold fleet ---------------------------
  // Cold sessions were last touched when opened; once the TTL has passed,
  // the lazy check + background sweeper + one explicit sweep must reap
  // them all. (The hot set may expire too once the pacing stops — the
  // gate is on the cold majority.)
  const double ttl_deadline = open_end + ttl + 0.5;
  while (util::wall_seconds() < ttl_deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  service.evict_expired();
  const auto evict_wait_deadline = util::wall_seconds() + 10.0;
  while (service.session_count() > hot && util::wall_seconds() < evict_wait_deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    service.evict_expired();
  }
  report = service.report();
  std::printf("ttl         %llu evictions, %zu sessions remain\n",
              static_cast<unsigned long long>(report.evictions), report.open_sessions);
  service.drain_and_stop();

  // The durability/pooled audits below run on dedicated TTL-free services
  // AFTER the main service drained: a background sweeper reaping the cold
  // fleet mid-window would charge its eviction bookkeeping to the global
  // allocation counter and fail the zero-alloc gates spuriously.

  // ---- phase 4b: pooled-token async audit ---------------------------------
  // decide_async_pooled recycles completion tokens from a pool instead of
  // allocating a promise/future pair per request. A windowed loop keeps
  // kPooledWindow handles in flight; after the warmup has grown the pool
  // to window depth, the audited window must not allocate at all — the
  // same tokens circulate for every request.
  double pooled_decisions_per_sec = 0.0;
  std::uint64_t pooled_allocs = 0;
  {
    serve::ServiceConfig pcfg = cfg;
    pcfg.session_ttl_seconds = 0.0;
    serve::ProvisioningService pooled_service(serve::ModelSnapshot(model), pcfg);
    pooled_service.start();
    std::vector<serve::SessionId> pids;
    pids.reserve(hot);
    for (std::size_t i = 0; i < hot; ++i) {
      const auto id = pooled_service.open_session();
      pooled_service.observe(id, soak_sample(i), ctx);
      pids.push_back(id);
    }
    constexpr std::size_t kPooledWindow = 8;
    const auto pooled_n = static_cast<std::size_t>(cli.get_int("pooled", 8192));
    std::array<serve::AsyncDecision, kPooledWindow> window;
    const auto pump = [&](std::size_t count, std::size_t phase) {
      for (std::size_t i = 0; i < count; ++i) {
        auto& slot = window[i % kPooledWindow];
        if (slot.valid()) (void)slot.get();
        slot = pooled_service.decide_async_pooled(pids[(phase * 524287 + i) % hot]);
      }
      for (auto& slot : window) {
        if (slot.valid()) (void)slot.get();
      }
    };
    // Warm the token pool AND the full engine ring: every max_queue slot
    // allocates its observation buffer the first time it circulates, so
    // the audited window must start after each slot has carried at least
    // one request (same sizing rule as the steady phase's warmup).
    pump(cfg.engine.max_queue + 1024, 0);
    const std::uint64_t alloc0 = bench::allocation_count();
    const double pooled_t0 = util::wall_seconds();
    pump(pooled_n, 1);
    pooled_decisions_per_sec =
        static_cast<double>(pooled_n) / (util::wall_seconds() - pooled_t0);
    pooled_allocs = bench::allocation_count() - alloc0;
    pooled_service.drain_and_stop();
    std::printf("pooled      %.0f decides/s over a %zu-deep token window (%llu allocs)\n",
                pooled_decisions_per_sec, kPooledWindow,
                static_cast<unsigned long long>(pooled_allocs));
  }

  // ---- phase 4c: steady state with session journaling ON ------------------
  // A second service over the same stub runs the identical steady window
  // with a WAL journal at sync=none (the serving configuration: append on
  // the decide path, group commit on the sweeper tick). The segment size
  // is large enough that no roll lands inside the audited window, so the
  // journaled decide path must also be allocation-free, and throughput
  // must hold within 5% of the un-journaled tracing-on baseline.
  SteadyRep best_journal;
  std::uint64_t journal_allocs = 0;
  bool journal_failed = true;
  const std::filesystem::path wal_dir =
      std::filesystem::temp_directory_path() / "mirage_soak_wal";
  std::filesystem::remove_all(wal_dir);
  {
    serve::ServiceConfig jcfg = cfg;
    jcfg.session_ttl_seconds = 0.0;
    jcfg.wal.dir = wal_dir.string();
    jcfg.wal.wal.sync = util::wal::SyncLevel::kNone;
    jcfg.wal.wal.segment_bytes = 256u << 20;
    jcfg.wal.restore = false;
    serve::ProvisioningService journal_service(serve::ModelSnapshot(model), jcfg);
    journal_service.start();
    std::vector<serve::SessionId> jids;
    jids.reserve(hot);
    for (std::size_t i = 0; i < hot; ++i) {
      const auto id = journal_service.open_session();
      journal_service.observe(id, soak_sample(i), ctx);
      jids.push_back(id);
    }
    for (std::size_t r = 0; r < reps; ++r) {
      const SteadyRep rep = run_steady(journal_service, jids, /*tracing_on=*/true);
      if (rep.decisions_per_sec > best_journal.decisions_per_sec) best_journal = rep;
      journal_allocs += rep.alloc_delta;
      std::printf("journal rep %.0f/s (%llu allocs)\n", rep.decisions_per_sec,
                  static_cast<unsigned long long>(rep.alloc_delta));
    }
    journal_failed = journal_service.wal_failed();
    journal_service.drain_and_stop();
  }
  std::filesystem::remove_all(wal_dir);
  const double journal_overhead_pct =
      best_on.decisions_per_sec > 0.0
          ? (1.0 - best_journal.decisions_per_sec / best_on.decisions_per_sec) * 100.0
          : 0.0;
  std::printf("journal     %.0f/s journaled vs %.0f/s baseline (overhead %.2f%%)\n",
              best_journal.decisions_per_sec, best_on.decisions_per_sec,
              journal_overhead_pct);

  // ---- phase 5: backpressure under a saturated engine --------------------
  serve::ServiceConfig bp_cfg;
  bp_cfg.history_len = k;
  bp_cfg.shards = 1;
  bp_cfg.engine.max_batch = 1;
  bp_cfg.engine.max_queue = static_cast<std::size_t>(cli.get_int("bp_queue", 8));
  bp_cfg.engine.coalesce_wait = std::chrono::microseconds(0);
  bp_cfg.engine.use_thread_pool = false;
  auto slow = std::make_shared<const SlowStubModel>(
      k, std::chrono::microseconds(cli.get_int("bp_stall_us", 2000)));
  serve::ProvisioningService bp_service(serve::ModelSnapshot(slow), bp_cfg);
  bp_service.start();
  const auto bp_id = bp_service.open_session();
  bp_service.observe(bp_id, soak_sample(0), ctx);
  std::vector<std::future<serve::Decision>> bp_futures;
  const auto bp_burst = static_cast<std::size_t>(cli.get_int("bp_burst", 64));
  for (std::size_t i = 0; i < bp_burst; ++i) {
    bp_futures.push_back(bp_service.decide_async(bp_id));
  }
  std::size_t bp_rejected = 0;
  for (auto& f : bp_futures) {
    try {
      f.get();
    } catch (const serve::BackpressureRejected&) {
      ++bp_rejected;
    }
  }
  bp_service.drain_and_stop();
  const auto bp_report = bp_service.report();
  std::printf("backpressure %zu of %zu burst requests rejected (engine counted %llu)\n\n",
              bp_rejected, bp_burst, static_cast<unsigned long long>(bp_report.engine.rejected));

  // ---- phase 6: forced SLO breach -> firing alert -> flight bundle -------
  // An unmeetable latency objective (sub-microsecond target) over a slow
  // stub must burn both windows, transition pending->firing, and the fire
  // hook must dump a flight-recorder bundle that validates. The global
  // trace ring's recording gate is CLOSED before breach traffic starts so
  // the fire-time dump snapshots a frozen ring (the bundle still carries
  // the steady phase's journey events).
  const std::string flight_dir = cli.get_string("flight_dir", "flight_soak");
  {
    obs::FlightRecorderConfig frc;
    frc.directory = flight_dir;
    frc.max_events = 2048;
    obs::flight_recorder().configure(frc);
  }
  obs::global_trace().set_recording(false);
  std::uint64_t slo_fires = 0;
  bool bundle_valid = false;
  std::string bundle_error = "no bundle dumped";
  {
    serve::ServiceConfig breach_cfg;
    breach_cfg.history_len = k;
    breach_cfg.shards = 1;
    breach_cfg.engine.max_batch = 8;
    breach_cfg.engine.coalesce_wait = std::chrono::microseconds(0);
    breach_cfg.engine.use_thread_pool = false;
    breach_cfg.sweep_interval_seconds = 0.02;
    breach_cfg.slo.enabled = true;
    breach_cfg.slo.latency_target_seconds = 1e-6;  // unmeetable on purpose
    breach_cfg.slo.latency_quantile = 50.0;
    breach_cfg.slo.short_window_seconds = 0.2;
    breach_cfg.slo.long_window_seconds = 0.5;
    breach_cfg.slo.pending_seconds = 0.0;
    breach_cfg.slo.resolve_seconds = 60.0;
    breach_cfg.slo.dump_on_fire = true;
    auto breach_slow = std::make_shared<const SlowStubModel>(
        k, std::chrono::microseconds(cli.get_int("breach_stall_us", 500)));
    serve::ProvisioningService breach_service(serve::ModelSnapshot(breach_slow), breach_cfg);
    breach_service.start();
    const auto breach_id = breach_service.open_session();
    breach_service.observe(breach_id, soak_sample(0), ctx);
    serve::Decision d;
    const double breach_deadline = util::wall_seconds() + 5.0;
    while (util::wall_seconds() < breach_deadline) {
      breach_service.try_decide(breach_id, d);
      slo_fires = 0;
      for (const auto& status : breach_service.slo_statuses()) {
        slo_fires += status.fires;
      }
      if (slo_fires > 0) break;
    }
    breach_service.drain_and_stop();
  }
  // Find the newest bundle and validate it (Chrome trace + Prometheus
  // lint + manifest checks).
  std::string newest_bundle;
  {
    std::error_code ec;
    for (const auto& entry : std::filesystem::directory_iterator(flight_dir, ec)) {
      const std::string name = entry.path().filename().string();
      if (entry.is_directory(ec) && name.rfind("bundle_", 0) == 0 &&
          entry.path().string() > newest_bundle) {
        newest_bundle = entry.path().string();
      }
    }
  }
  if (!newest_bundle.empty()) {
    bundle_valid = obs::FlightRecorder::validate_bundle(newest_bundle, &bundle_error);
  }
  obs::global_trace().set_recording(true);
  std::printf("breach      %llu fire(s), bundle %s (%s)\n\n",
              static_cast<unsigned long long>(slo_fires),
              bundle_valid ? "valid" : "INVALID",
              bundle_valid ? newest_bundle.c_str() : bundle_error.c_str());

  // ---- gates --------------------------------------------------------------
  bool ok = true;
  const auto gate = [&](bool pass, const char* what) {
    std::printf("  [%s] %s\n", pass ? "PASS" : "FAIL", what);
    ok = ok && pass;
  };
  gate(open_sessions_peak == sessions, "all sessions opened and held concurrently");
  gate(alloc_delta == 0,
       "zero steady-state heap allocations per decide (tracing + SLO eval on)");
  gate(tracing_overhead_pct <= 3.0, "journey tracing overhead within 3%");
  gate(pooled_allocs == 0, "pooled-token async window allocation-free once warm");
  gate(journal_allocs == 0,
       "zero steady-state heap allocations with session journaling on");
  gate(journal_overhead_pct <= 5.0, "session journaling overhead within 5% at sync=none");
  gate(!journal_failed, "session journal stayed healthy through the soak");
  gate(report.engine.latency.p99_ms <= p99_limit_ms, "p99 latency within bound");
  gate(report.evictions >= sessions - hot, "TTL reaped the cold fleet");
  gate(bp_rejected > 0 && bp_report.engine.rejected >= bp_rejected,
       "bounded queue rejected the burst with backpressure");
  gate(slo_fires > 0, "forced latency breach transitioned the SLO to firing");
  gate(bundle_valid, "fire-time flight-recorder bundle validates");

  bench::BenchJson json("serve_soak");
  json.add("params", "sessions=" + std::to_string(sessions) + ",hot=" + std::to_string(hot) +
                         ",steady=" + std::to_string(steady) + ",clients=" +
                         std::to_string(clients) + ",shards=" + std::to_string(shards) +
                         ",k=" + std::to_string(k) + ",slo=on")
      .add("sessions", static_cast<std::int64_t>(sessions))
      .add("shards", static_cast<std::int64_t>(shards))
      .add("open_sessions_peak", static_cast<std::int64_t>(open_sessions_peak))
      .add("opens_per_sec", static_cast<double>(sessions) / open_seconds)
      .add("decisions_per_sec", decisions_per_sec)
      .add("decisions_per_sec_tracing_off", best_off.decisions_per_sec)
      .add("tracing_overhead_pct", tracing_overhead_pct)
      .add("steady_allocs_per_decide", allocs_per_decide)
      .add("pooled_decisions_per_sec", pooled_decisions_per_sec)
      .add("pooled_allocs", static_cast<std::int64_t>(pooled_allocs))
      .add("decisions_per_sec_journaled", best_journal.decisions_per_sec)
      .add("journal_overhead_pct", journal_overhead_pct)
      .add("journal_allocs", static_cast<std::int64_t>(journal_allocs))
      .add("slo_fires", static_cast<std::int64_t>(slo_fires))
      .add("bundle_valid", static_cast<std::int64_t>(bundle_valid ? 1 : 0))
      .add("latency_p50_ms", report.engine.latency.p50_ms)
      .add("latency_p99_ms", report.engine.latency.p99_ms)
      .add("latency_p999_ms", report.engine.latency.p999_ms)
      .add("evictions", static_cast<std::int64_t>(report.evictions))
      .add("rejected", static_cast<std::int64_t>(bp_report.engine.rejected))
      .add("target_met", static_cast<std::int64_t>(ok ? 1 : 0));
  json.add_resource_fields();
  json.write();

  std::printf("\nserve soak: %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 2;
}

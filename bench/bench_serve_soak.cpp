// Million-session serve soak (ISSUE 7 tentpole gate): drive the sharded
// ProvisioningService through every steady-state contract at once and
// fail loudly when any regresses:
//
//   1. scale     — open `sessions` (default 100k) live sessions across the
//                  sharded table and seed each history ring;
//   2. zero-alloc— closed-loop blocking decides over a hot session set,
//                  audited by the counting allocator: the steady-state
//                  decide path must perform ZERO heap allocations
//                  (observation buffers, ring slots and latency reservoir
//                  are all preallocated / circulating). This is the gated
//                  decisions_per_sec measurement;
//   3. latency   — a paced async phase feeds the latency reservoir, then
//                  p50/p99/p99.9 come from the engine snapshot with the
//                  p99 bounded by `p99_limit_ms`;
//   4. TTL       — the cold sessions (everything outside the hot set) sit
//                  idle past `ttl` and must be reaped by the lazy check +
//                  one-shard-per-tick background sweeper (+ a final
//                  explicit sweep), evictions >= sessions - hot;
//   5. backpressure — a deliberately slow model behind a tiny bounded
//                  queue must reject a burst with BackpressureRejected,
//                  never grow the queue without bound.
//
// The service is measured around an allocation-free stub model so the
// audit isolates the serving layers (shards, engine ring, waiter pool)
// from NN-forward internals; bench_serve_throughput covers the real
// model. Emits BENCH_serve_soak.json (decisions_per_sec is the
// bench_compare-gated key).
//
//   ./bench_serve_soak [sessions=100000] [hot=1024] [steady=40000]
//                      [clients=4] [qps=4000] [qps_seconds=2] [ttl=8]
//                      [shards=16] [k=4] [p99_limit_ms=250]
#include <atomic>
#include <cstdio>
#include <future>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "serve/service.hpp"
#include "util/config.hpp"
#include "util/time_utils.hpp"

using namespace mirage;

namespace {

/// Allocation-free decision stub: the serving layers see a real
/// ServableModel (virtual infer_into) whose forward touches no heap.
struct StubModel : serve::ServableModel {
  static core::CheckpointInfo stub_info(std::size_t k) {
    core::CheckpointInfo info;
    info.history_len = k;
    info.state_dim = rl::kFrameDim;
    return info;
  }
  explicit StubModel(std::size_t k)
      : ServableModel({"soak", "stub", "none"}, stub_info(k), "<stub>", 1, nullptr, nullptr) {}
  void infer_into(const std::vector<std::vector<float>>& observations,
                  std::vector<serve::Decision>& out) const override {
    out.resize(observations.size());
    for (std::size_t i = 0; i < observations.size(); ++i) {
      float acc = 0.0f;
      for (const float v : observations[i]) acc += v;
      out[i].action = acc > 0.0f ? 1 : 0;
      out[i].score_submit = acc;
      out[i].score_wait = -acc;
      out[i].model_version = version();
    }
  }
};

/// Slow variant for the backpressure phase: each tick stalls long enough
/// for a submission burst to overflow the bounded queue.
struct SlowStubModel : StubModel {
  SlowStubModel(std::size_t k, std::chrono::microseconds stall)
      : StubModel(k), stall_(stall) {}
  void infer_into(const std::vector<std::vector<float>>& observations,
                  std::vector<serve::Decision>& out) const override {
    std::this_thread::sleep_for(stall_);
    StubModel::infer_into(observations, out);
  }
  std::chrono::microseconds stall_;
};

sim::StateSample soak_sample(std::uint64_t step) {
  sim::StateSample s;
  s.now = static_cast<util::SimTime>(step) * 600;
  s.total_nodes = 88;
  s.free_nodes = static_cast<std::int32_t>(step % 89);
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  const auto cli = util::Config::from_args(argc, argv);
  const auto sessions = static_cast<std::size_t>(cli.get_int("sessions", 100000));
  const auto hot = std::min(sessions, static_cast<std::size_t>(cli.get_int("hot", 1024)));
  const auto steady = static_cast<std::size_t>(cli.get_int("steady", 40000));
  const auto clients = static_cast<std::size_t>(cli.get_int("clients", 4));
  const auto qps = static_cast<std::size_t>(cli.get_int("qps", 4000));
  const double qps_seconds = cli.get_double("qps_seconds", 2.0);
  const double ttl = cli.get_double("ttl", 8.0);
  const auto shards = static_cast<std::size_t>(cli.get_int("shards", 16));
  const auto k = static_cast<std::size_t>(cli.get_int("k", 4));
  const double p99_limit_ms = cli.get_double("p99_limit_ms", 250.0);

  serve::ServiceConfig cfg;
  cfg.history_len = k;
  cfg.shards = shards;
  cfg.session_ttl_seconds = ttl;
  cfg.sweep_interval_seconds = cli.get_double("sweep_interval", 0.01);
  cfg.engine.max_batch = static_cast<std::size_t>(cli.get_int("max_batch", 256));
  cfg.engine.coalesce_wait = std::chrono::microseconds(cli.get_int("coalesce_us", 100));
  cfg.engine.max_queue = static_cast<std::size_t>(cli.get_int("max_queue", 8192));
  // The audited window must not ride the shared pool: pool submission
  // allocates a task per tick. The engine thread runs the stub inline.
  cfg.engine.use_thread_pool = false;

  auto model = std::make_shared<const StubModel>(k);
  serve::ProvisioningService service(serve::ModelSnapshot(model), cfg);
  service.start();
  std::printf("serve soak: %zu sessions, %zu shards, hot set %zu, ttl %.1fs\n\n",
              sessions, shards, hot, ttl);

  // ---- phase 1: open the fleet -------------------------------------------
  double t0 = util::wall_seconds();
  std::vector<serve::SessionId> ids;
  ids.reserve(sessions);
  const rl::JobPairContext ctx;
  for (std::size_t i = 0; i < sessions; ++i) {
    const auto id = service.open_session();
    service.observe(id, soak_sample(i), ctx);
    ids.push_back(id);
  }
  const double open_seconds = util::wall_seconds() - t0;
  const double open_end = util::wall_seconds();
  const std::size_t open_sessions_peak = service.session_count();
  std::printf("open        %zu sessions in %.2f s (%.0f opens/s), table holds %zu\n",
              sessions, open_seconds, static_cast<double>(sessions) / open_seconds,
              open_sessions_peak);

  // ---- phase 2: zero-alloc closed-loop steady state ----------------------
  // Warmup grows every thread_local buffer, ring-slot capacity and the
  // latency reservoir to steady size; then the measured window must not
  // allocate at all.
  const std::size_t per_client = std::max<std::size_t>(1, steady / std::max<std::size_t>(1, clients));
  std::atomic<std::size_t> ready{0};
  std::atomic<bool> go{false};
  std::atomic<std::uint64_t> steady_served{0};
  std::vector<std::thread> workers;
  for (std::size_t c = 0; c < clients; ++c) {
    workers.emplace_back([&, c] {
      serve::Decision d;
      // Warmup must cycle the ENTIRE engine ring: every slot's observation
      // buffer starts empty and allocates once when it first circulates
      // back to a caller, so the audited window only starts after each of
      // the max_queue slots has carried at least one request.
      const std::size_t warm = cfg.engine.max_queue / clients + 1024;
      for (std::size_t i = 0; i < warm; ++i) {
        service.try_decide(ids[(c * 7919 + i) % hot], d);
      }
      ready.fetch_add(1);
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      std::uint64_t served = 0;
      for (std::size_t i = 0; i < per_client; ++i) {
        if (service.try_decide(ids[(c * 104729 + i) % hot], d) ==
            serve::BatchedInferenceEngine::SubmitResult::kOk) {
          ++served;
        }
      }
      steady_served.fetch_add(served);
    });
  }
  while (ready.load() < clients) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  std::this_thread::sleep_for(std::chrono::milliseconds(50));  // engine settles
  const std::uint64_t alloc0 = bench::allocation_count();
  t0 = util::wall_seconds();
  go.store(true, std::memory_order_release);
  for (auto& t : workers) t.join();
  const double steady_seconds = util::wall_seconds() - t0;
  const std::uint64_t alloc_delta = bench::allocation_count() - alloc0;
  const double decisions_per_sec = static_cast<double>(steady_served.load()) / steady_seconds;
  const double allocs_per_decide =
      steady_served.load() ? static_cast<double>(alloc_delta) / static_cast<double>(steady_served.load())
                           : static_cast<double>(alloc_delta);
  std::printf("steady      %llu decides in %.2f s -> %.0f decisions/s, %llu allocs (%.4f/decide)\n",
              static_cast<unsigned long long>(steady_served.load()), steady_seconds,
              decisions_per_sec, static_cast<unsigned long long>(alloc_delta), allocs_per_decide);

  // ---- phase 3: paced async latency --------------------------------------
  const std::size_t burst = std::max<std::size_t>(1, qps / 1000);
  std::vector<std::future<serve::Decision>> in_flight;
  in_flight.reserve(2048);
  std::size_t paced = 0;
  const double pace_end = util::wall_seconds() + qps_seconds;
  while (util::wall_seconds() < pace_end) {
    for (std::size_t b = 0; b < burst; ++b) {
      in_flight.push_back(service.decide_async(ids[paced++ % hot]));
    }
    if (in_flight.size() >= 1024) {
      for (auto& f : in_flight) f.get();
      in_flight.clear();
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  for (auto& f : in_flight) f.get();
  auto report = service.report();
  std::printf("latency     p50 %.3f ms  p99 %.3f ms  p99.9 %.3f ms  (%zu samples, %zu paced)\n",
              report.engine.latency.p50_ms, report.engine.latency.p99_ms,
              report.engine.latency.p999_ms, report.engine.latency.count, paced);

  // ---- phase 4: TTL eviction of the cold fleet ---------------------------
  // Cold sessions were last touched when opened; once the TTL has passed,
  // the lazy check + background sweeper + one explicit sweep must reap
  // them all. (The hot set may expire too once the pacing stops — the
  // gate is on the cold majority.)
  const double ttl_deadline = open_end + ttl + 0.5;
  while (util::wall_seconds() < ttl_deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  service.evict_expired();
  const auto evict_wait_deadline = util::wall_seconds() + 10.0;
  while (service.session_count() > hot && util::wall_seconds() < evict_wait_deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    service.evict_expired();
  }
  report = service.report();
  std::printf("ttl         %llu evictions, %zu sessions remain\n",
              static_cast<unsigned long long>(report.evictions), report.open_sessions);
  service.drain_and_stop();

  // ---- phase 5: backpressure under a saturated engine --------------------
  serve::ServiceConfig bp_cfg;
  bp_cfg.history_len = k;
  bp_cfg.shards = 1;
  bp_cfg.engine.max_batch = 1;
  bp_cfg.engine.max_queue = static_cast<std::size_t>(cli.get_int("bp_queue", 8));
  bp_cfg.engine.coalesce_wait = std::chrono::microseconds(0);
  bp_cfg.engine.use_thread_pool = false;
  auto slow = std::make_shared<const SlowStubModel>(
      k, std::chrono::microseconds(cli.get_int("bp_stall_us", 2000)));
  serve::ProvisioningService bp_service(serve::ModelSnapshot(slow), bp_cfg);
  bp_service.start();
  const auto bp_id = bp_service.open_session();
  bp_service.observe(bp_id, soak_sample(0), ctx);
  std::vector<std::future<serve::Decision>> bp_futures;
  const auto bp_burst = static_cast<std::size_t>(cli.get_int("bp_burst", 64));
  for (std::size_t i = 0; i < bp_burst; ++i) {
    bp_futures.push_back(bp_service.decide_async(bp_id));
  }
  std::size_t bp_rejected = 0;
  for (auto& f : bp_futures) {
    try {
      f.get();
    } catch (const serve::BackpressureRejected&) {
      ++bp_rejected;
    }
  }
  bp_service.drain_and_stop();
  const auto bp_report = bp_service.report();
  std::printf("backpressure %zu of %zu burst requests rejected (engine counted %llu)\n\n",
              bp_rejected, bp_burst, static_cast<unsigned long long>(bp_report.engine.rejected));

  // ---- gates --------------------------------------------------------------
  bool ok = true;
  const auto gate = [&](bool pass, const char* what) {
    std::printf("  [%s] %s\n", pass ? "PASS" : "FAIL", what);
    ok = ok && pass;
  };
  gate(open_sessions_peak == sessions, "all sessions opened and held concurrently");
  gate(alloc_delta == 0, "zero steady-state heap allocations per decide");
  gate(report.engine.latency.p99_ms <= p99_limit_ms, "p99 latency within bound");
  gate(report.evictions >= sessions - hot, "TTL reaped the cold fleet");
  gate(bp_rejected > 0 && bp_report.engine.rejected >= bp_rejected,
       "bounded queue rejected the burst with backpressure");

  bench::BenchJson json("serve_soak");
  json.add("params", "sessions=" + std::to_string(sessions) + ",hot=" + std::to_string(hot) +
                         ",steady=" + std::to_string(steady) + ",clients=" +
                         std::to_string(clients) + ",shards=" + std::to_string(shards) +
                         ",k=" + std::to_string(k))
      .add("sessions", static_cast<std::int64_t>(sessions))
      .add("shards", static_cast<std::int64_t>(shards))
      .add("open_sessions_peak", static_cast<std::int64_t>(open_sessions_peak))
      .add("opens_per_sec", static_cast<double>(sessions) / open_seconds)
      .add("decisions_per_sec", decisions_per_sec)
      .add("steady_allocs_per_decide", allocs_per_decide)
      .add("latency_p50_ms", report.engine.latency.p50_ms)
      .add("latency_p99_ms", report.engine.latency.p99_ms)
      .add("latency_p999_ms", report.engine.latency.p999_ms)
      .add("evictions", static_cast<std::int64_t>(report.evictions))
      .add("rejected", static_cast<std::int64_t>(bp_report.engine.rejected))
      .add("target_met", static_cast<std::int64_t>(ok ? 1 : 0));
  json.add_resource_fields();
  json.write();

  std::printf("\nserve soak: %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 2;
}

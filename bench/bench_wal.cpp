// WAL segment-store microbench (ISSUE 10 satellite): append throughput at
// every sync level, recovery replay rate, and a zero-allocation audit of
// the steady-state append path (append+commit inside one segment must not
// touch the heap — the serve journal rides this path on every decide).
//
// Emits BENCH_wal.json; wal_appends_per_sec (sync=none, batched group
// commit — the serve journal's configuration) is the bench_compare-gated
// key.
//
//   ./bench_wal [records=200000] [payload=96] [batch=16] [segment_kb=1024]
//               [recover_reps=3]
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "util/config.hpp"
#include "util/time_utils.hpp"
#include "util/wal.hpp"

using namespace mirage;

namespace {

struct AppendRun {
  double appends_per_sec = 0.0;
  double mb_per_sec = 0.0;
  std::uint64_t records = 0;
};

AppendRun run_appends(const std::string& dir, util::wal::SyncLevel sync,
                      std::size_t segment_bytes, std::uint64_t records,
                      std::size_t payload_size, std::uint64_t batch) {
  util::wal::WalOptions options;
  options.sync = sync;
  options.segment_bytes = segment_bytes;
  util::wal::Writer writer;
  if (!writer.open(dir, options)) {
    std::fprintf(stderr, "bench_wal: cannot open %s\n", dir.c_str());
    std::exit(2);
  }
  std::vector<std::uint8_t> payload(payload_size);
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<std::uint8_t>(i * 131 + 7);
  }
  const double t0 = util::wall_seconds();
  for (std::uint64_t i = 0; i < records; ++i) {
    if (!writer.append(payload.data(), payload.size())) std::exit(2);
    if (i % batch == batch - 1 && !writer.commit()) std::exit(2);
  }
  if (!writer.commit()) std::exit(2);
  const double seconds = util::wall_seconds() - t0;
  writer.close();
  AppendRun run;
  run.records = records;
  run.appends_per_sec = static_cast<double>(records) / seconds;
  run.mb_per_sec = static_cast<double>(records) * static_cast<double>(payload_size) /
                   (seconds * 1024.0 * 1024.0);
  return run;
}

}  // namespace

int main(int argc, char** argv) {
  const auto cli = util::Config::from_args(argc, argv);
  const auto records = static_cast<std::uint64_t>(cli.get_int("records", 200000));
  const auto payload = static_cast<std::size_t>(cli.get_int("payload", 96));
  const auto batch = static_cast<std::uint64_t>(cli.get_int("batch", 16));
  const auto segment_bytes = static_cast<std::size_t>(cli.get_int("segment_kb", 1024)) * 1024;
  const auto recover_reps = static_cast<std::size_t>(cli.get_int("recover_reps", 3));

  namespace fs = std::filesystem;
  const fs::path root = fs::temp_directory_path() / "mirage_bench_wal";
  fs::remove_all(root);
  fs::create_directories(root);
  std::printf("wal bench: %llu records x %zu B, commit every %llu, %zu KiB segments\n\n",
              static_cast<unsigned long long>(records), payload,
              static_cast<unsigned long long>(batch), segment_bytes / 1024);

  // ---- append throughput per sync level ----------------------------------
  // kNone is the serving configuration (group commit on the sweeper tick);
  // kOnCommit fsyncs every batch, so it runs a trimmed record count.
  const auto none =
      run_appends((root / "none").string(), util::wal::SyncLevel::kNone, segment_bytes,
                  records, payload, batch);
  std::printf("sync=none    %10.0f appends/s  (%.1f MiB/s payload)\n", none.appends_per_sec,
              none.mb_per_sec);
  const auto roll =
      run_appends((root / "roll").string(), util::wal::SyncLevel::kOnRoll, segment_bytes,
                  records / 2, payload, batch);
  std::printf("sync=roll    %10.0f appends/s  (%.1f MiB/s payload)\n", roll.appends_per_sec,
              roll.mb_per_sec);
  const auto commit =
      run_appends((root / "commit").string(), util::wal::SyncLevel::kOnCommit, segment_bytes,
                  std::max<std::uint64_t>(records / 50, 2000), payload, batch);
  std::printf("sync=commit  %10.0f appends/s  (%.1f MiB/s payload, fsync/batch)\n",
              commit.appends_per_sec, commit.mb_per_sec);

  // ---- zero-allocation audit ---------------------------------------------
  // Within one segment (no roll, which legitimately builds a path string)
  // append+commit must be allocation-free: stack headers into the writer's
  // preallocated buffer, plain write(2) on flush.
  std::uint64_t steady_allocs = 0;
  {
    util::wal::WalOptions options;
    options.sync = util::wal::SyncLevel::kNone;
    options.segment_bytes = 64u << 20;  // the audit window stays in segment 0
    util::wal::Writer writer;
    if (!writer.open((root / "audit").string(), options)) std::exit(2);
    std::vector<std::uint8_t> bytes(payload, 0x5A);
    for (int i = 0; i < 1024; ++i) {  // warmup
      (void)writer.append(bytes.data(), bytes.size());
    }
    (void)writer.commit();
    const std::uint64_t alloc0 = bench::allocation_count();
    for (int i = 0; i < 10000; ++i) {
      if (!writer.append(bytes.data(), bytes.size())) std::exit(2);
      if (i % 16 == 15 && !writer.commit()) std::exit(2);
    }
    if (!writer.commit()) std::exit(2);
    steady_allocs = bench::allocation_count() - alloc0;
  }
  std::printf("steady-state %llu heap allocations across 10000 audited appends\n",
              static_cast<unsigned long long>(steady_allocs));

  // ---- recovery replay rate ----------------------------------------------
  double recover_records_per_sec = 0.0;
  std::uint64_t recovered = 0;
  for (std::size_t rep = 0; rep < recover_reps; ++rep) {
    std::uint64_t count = 0, bytes = 0;
    const double t0 = util::wall_seconds();
    std::string error;
    const bool ok = util::wal::recover(
        (root / "none").string(),
        [&count, &bytes](const void*, std::size_t size) {
          ++count;
          bytes += size;
        },
        nullptr, &error);
    const double seconds = util::wall_seconds() - t0;
    if (!ok) {
      std::fprintf(stderr, "bench_wal: recovery failed: %s\n", error.c_str());
      std::exit(2);
    }
    recovered = count;
    recover_records_per_sec = std::max(recover_records_per_sec,
                                       static_cast<double>(count) / seconds);
  }
  std::printf("recovery     %10.0f records/s (best of %zu reps over %llu records)\n\n",
              recover_records_per_sec, recover_reps,
              static_cast<unsigned long long>(recovered));

  const bool ok = steady_allocs == 0 && recovered == none.records;
  std::printf("  [%s] zero steady-state allocations on the append path\n",
              steady_allocs == 0 ? "PASS" : "FAIL");
  std::printf("  [%s] recovery replays every committed record\n",
              recovered == none.records ? "PASS" : "FAIL");

  bench::BenchJson json("wal");
  json.add("params", "records=" + std::to_string(records) + ",payload=" +
                         std::to_string(payload) + ",batch=" + std::to_string(batch) +
                         ",segment_kb=" + std::to_string(segment_bytes / 1024))
      .add("wal_appends_per_sec", none.appends_per_sec)
      .add("wal_appends_per_sec_roll", roll.appends_per_sec)
      .add("wal_appends_per_sec_commit", commit.appends_per_sec)
      .add("wal_payload_mb_per_sec", none.mb_per_sec)
      .add("wal_recover_records_per_sec", recover_records_per_sec)
      .add("wal_recovered_records", static_cast<std::int64_t>(recovered))
      .add("steady_allocs", static_cast<std::int64_t>(steady_allocs))
      .add("target_met", static_cast<std::int64_t>(ok ? 1 : 0));
  json.add_resource_fields();
  json.write();

  fs::remove_all(root);
  std::printf("\nwal bench: %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 2;
}

// Counting operator new/delete, linked into every bench executable (see
// the bench loop in CMakeLists.txt). The benches report total heap
// allocations and peak RSS in their BENCH_*.json so the simulator's
// zero-allocation steady-state claim is machine-checked per run instead
// of asserted in a comment. A relaxed atomic keeps the overhead to one
// uncontended increment per allocation.
#include <sys/resource.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>

namespace mirage::bench {

namespace detail {
std::atomic<std::uint64_t> g_allocation_count{0};
}  // namespace detail

std::uint64_t allocation_count() {
  return detail::g_allocation_count.load(std::memory_order_relaxed);
}

long peak_rss_kb() {
  struct rusage usage {};
  getrusage(RUSAGE_SELF, &usage);
  return usage.ru_maxrss;  // KiB on Linux
}

}  // namespace mirage::bench

namespace {

void* counted_alloc(std::size_t size) noexcept {
  mirage::bench::detail::g_allocation_count.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size ? size : 1);
}

void* counted_aligned_alloc(std::size_t size, std::size_t alignment) noexcept {
  mirage::bench::detail::g_allocation_count.fetch_add(1, std::memory_order_relaxed);
  if (alignment < sizeof(void*)) alignment = sizeof(void*);
  void* p = nullptr;
  if (posix_memalign(&p, alignment, size ? size : 1) != 0) return nullptr;
  return p;
}

}  // namespace

void* operator new(std::size_t size) {
  if (void* p = counted_alloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) {
  if (void* p = counted_alloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return counted_alloc(size);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return counted_alloc(size);
}
void* operator new(std::size_t size, std::align_val_t alignment) {
  if (void* p = counted_aligned_alloc(size, static_cast<std::size_t>(alignment))) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size, std::align_val_t alignment) {
  if (void* p = counted_aligned_alloc(size, static_cast<std::size_t>(alignment))) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }

// Shared driver for the figure-reproduction benches: trains all eight
// methods on a cluster preset and prints the per-load interruption /
// overlap rows behind the paper's Figures 8-10.
//
// Every bench accepts "key=value" CLI overrides (seed=, episodes=,
// anchors=, online_episodes=, clusters=v100,rtx,a100) so the compact
// defaults can be scaled up toward paper-scale runs.
#pragma once

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/pipeline.hpp"
#include "util/config.hpp"
#include "util/logging.hpp"
#include "util/strconv.hpp"

namespace mirage::bench {

/// Total heap allocations so far. Every bench executable links
/// bench/alloc_hooks.cpp, whose counting operator new feeds this — the
/// instrument behind the simulator's zero-allocation steady-state gate.
std::uint64_t allocation_count();
/// Peak resident set size in KiB (getrusage).
long peak_rss_kb();

/// Machine-readable bench result: written as BENCH_<name>.json next to
/// the stdout tables so CI can archive the perf trajectory across PRs.
/// Values are flat string/double pairs; doubles are emitted with %.17g so
/// the JSON round-trips exactly.
class BenchJson {
 public:
  explicit BenchJson(std::string name) : name_(std::move(name)) {
    add("bench", name_);
  }

  BenchJson& add(const std::string& key, const std::string& value) {
    std::string escaped;
    for (const char c : value) {
      if (c == '"' || c == '\\') escaped += '\\';
      escaped += c;
    }
    fields_.push_back("\"" + key + "\": \"" + escaped + "\"");
    return *this;
  }
  BenchJson& add(const std::string& key, double value) {
    fields_.push_back("\"" + key + "\": " + util::format_double_exact(value));
    return *this;
  }
  BenchJson& add(const std::string& key, std::int64_t value) {
    fields_.push_back("\"" + key + "\": " + std::to_string(value));
    return *this;
  }

  std::string to_json() const {
    std::ostringstream out;
    out << "{";
    for (std::size_t i = 0; i < fields_.size(); ++i) {
      out << (i ? ", " : "") << fields_[i];
    }
    out << "}\n";
    return out.str();
  }

  /// Record the process-wide resource footprint (total heap allocations,
  /// peak RSS). Call once, just before write().
  BenchJson& add_resource_fields() {
    add("alloc_total", static_cast<std::int64_t>(allocation_count()));
    add("peak_rss_kb", static_cast<std::int64_t>(peak_rss_kb()));
    return *this;
  }

  /// Write BENCH_<name>.json into the working directory (CI uploads the
  /// glob). Returns false — and prints a warning — when unwritable.
  bool write() const {
    const std::string path = "BENCH_" + name_ + ".json";
    std::ofstream out(path);
    if (out) out << to_json();
    if (!out) {
      std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
      return false;
    }
    std::printf("bench json: %s\n", path.c_str());
    return true;
  }

 private:
  std::string name_;
  std::vector<std::string> fields_;
};

struct FigureRun {
  trace::ClusterPreset preset;
  std::vector<core::MethodEval> evals;
  double train_seconds = 0.0;
  double eval_seconds = 0.0;
};

inline core::PipelineConfig configure(const trace::ClusterPreset& preset, std::int32_t job_nodes,
                                      const util::Config& cli) {
  auto cfg = core::PipelineConfig::compact(
      preset, job_nodes, static_cast<std::uint64_t>(cli.get_int("seed", 42)));
  cfg.eval.episodes = static_cast<std::size_t>(cli.get_int("episodes", 48));
  cfg.collector.anchors = static_cast<std::size_t>(cli.get_int("anchors", 48));
  cfg.online.episodes = static_cast<std::size_t>(cli.get_int("online_episodes", 64));
  return cfg;
}

inline std::vector<std::string> cluster_list(const util::Config& cli) {
  const std::string arg = cli.get_string("clusters", "v100,rtx,a100");
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (pos <= arg.size()) {
    auto comma = arg.find(',', pos);
    if (comma == std::string::npos) comma = arg.size();
    if (comma > pos) out.push_back(arg.substr(pos, comma - pos));
    pos = comma + 1;
  }
  return out;
}

/// Train all methods and evaluate on the validation range.
inline FigureRun run_all_methods(const std::string& cluster, std::int32_t job_nodes,
                                 const util::Config& cli) {
  FigureRun run;
  run.preset = trace::preset_by_name(cluster);
  auto cfg = configure(run.preset, job_nodes, cli);
  core::MiragePipeline pipe(cfg);
  const double t0 = util::wall_seconds();
  pipe.prepare();
  pipe.collect_offline();
  pipe.train_all(core::all_methods());
  run.train_seconds = util::wall_seconds() - t0;
  const double t1 = util::wall_seconds();
  run.evals = pipe.evaluate(core::all_methods());
  run.eval_seconds = util::wall_seconds() - t1;
  return run;
}

inline const core::LoadAggregate& agg_of(const FigureRun& run, const std::string& method,
                                         core::LoadClass load) {
  for (const auto& e : run.evals) {
    if (e.method == method) return e.at(load);
  }
  static const core::LoadAggregate empty;
  return empty;
}

/// Print one figure panel: per-method mean interruption (or overlap) under
/// one load class, with the reduction vs the reactive baseline.
inline void print_panel(const FigureRun& run, core::LoadClass load, bool overlap_metric) {
  const char* metric = overlap_metric ? "overlap" : "interruption";
  std::printf("-- %s cluster, %s load: avg %s (h) over %zu episodes --\n",
              run.preset.name.c_str(), core::load_class_name(load),
              metric, agg_of(run, "reactive", load).episodes);
  const double baseline = overlap_metric
                              ? agg_of(run, "reactive", load).overlap_hours.mean()
                              : agg_of(run, "reactive", load).interruption_hours.mean();
  for (const auto& e : run.evals) {
    const auto& agg = e.at(load);
    if (agg.episodes == 0) {
      std::printf("  %-16s      (no episodes in this load class)\n", e.method.c_str());
      continue;
    }
    const double value =
        overlap_metric ? agg.overlap_hours.mean() : agg.interruption_hours.mean();
    if (!overlap_metric && baseline > 0) {
      std::printf("  %-16s %8.2f   zero-int %3.0f%%   reduction vs reactive %6.1f%%\n",
                  e.method.c_str(), value, 100.0 * agg.zero_interruption_fraction(),
                  100.0 * (1.0 - value / baseline));
    } else {
      std::printf("  %-16s %8.2f   zero-int %3.0f%%\n", e.method.c_str(), value,
                  100.0 * agg.zero_interruption_fraction());
    }
  }
}

}  // namespace mirage::bench

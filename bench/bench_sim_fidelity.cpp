// §5.2 simulator fidelity study: replay 5 randomly sampled weeks through
// the fast (EASY-backfill) simulator and the reference (conservative-
// backfill) simulator; report makespan difference, JCT geometric-mean
// difference, and the relative overhead — the paper reports <2.5%, <15%
// and 3-26x respectively, plus "one month simulated within one minute".
#include <cstdio>

#include "bench_common.hpp"
#include "sim/fidelity.hpp"
#include "sim/reference_simulator.hpp"
#include "sim/simulator.hpp"
#include "trace/generator.hpp"
#include "util/config.hpp"
#include "util/rng.hpp"

int main(int argc, char** argv) {
  using namespace mirage;
  const auto cli = util::Config::from_args(argc, argv);
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 42));
  const int weeks = static_cast<int>(cli.get_int("weeks", 5));

  const auto preset = trace::preset_by_name(cli.get_string("cluster", "v100"));
  trace::GeneratorOptions opt;
  opt.seed = seed;
  trace::SyntheticTraceGenerator gen(preset, opt);
  const auto full = gen.generate();

  util::Rng rng(seed ^ 0xf1de);
  std::vector<trace::Trace> samples;
  for (int w = 0; w < weeks; ++w) {
    const auto start = static_cast<util::SimTime>(
        rng.uniform(0.0, static_cast<double>(preset.months) * util::kMonth - util::kWeek));
    trace::Trace week;
    for (const auto& j : full) {
      if (j.submit_time >= start && j.submit_time < start + util::kWeek) week.push_back(j);
    }
    samples.push_back(std::move(week));
  }

  std::printf("Simulator fidelity (%d sampled weeks, %s cluster) vs the reference\n"
              "conservative-backfill simulator, across reservation depths\n"
              "(depth 1 = classic EASY; the pipeline default is 8; 16 is the\n"
              "fidelity-oriented configuration)\n\n",
              weeks, preset.name.c_str());
  std::printf("%-8s %14s %14s %10s %12s %16s\n", "depth", "worst mkspanΔ", "worst JCT-gm",
              "fast(s)", "ref/fast", "months/minute");

  bench::BenchJson json("sim_fidelity");
  json.add("weeks", static_cast<std::int64_t>(weeks)).add("threads", std::int64_t{1});
  for (int depth : {1, 4, 8, 16}) {
    sim::SchedulerConfig cfg;
    cfg.reservation_depth = depth;
    double worst_makespan = 0.0, worst_jct = 1.0, total_fast = 0.0, total_ref = 0.0;
    double simulated_seconds = 0.0;
    for (const auto& week : samples) {
      const double t0 = util::wall_seconds();
      const auto fast = sim::replay_trace(week, preset.node_count, cfg);
      const double t1 = util::wall_seconds();
      const auto ref = sim::reference_replay(week, preset.node_count);
      const double t2 = util::wall_seconds();
      const auto rep = sim::compare_schedules(fast, ref);
      worst_makespan = std::max(worst_makespan, rep.makespan_rel_diff);
      worst_jct = std::max(worst_jct, rep.jct_geomean_ratio);
      total_fast += (t1 - t0);
      total_ref += (t2 - t1);
      simulated_seconds += rep.makespan_a;
    }
    const double months_per_minute =
        simulated_seconds / static_cast<double>(util::kMonth) / (total_fast / 60.0);
    std::printf("%-8d %13.2f%% %14.3f %10.3f %11.1fx %16.0f\n", depth, 100.0 * worst_makespan,
                worst_jct, total_fast, total_ref / std::max(total_fast, 1e-9),
                months_per_minute);
    json.add("wall_seconds_d" + std::to_string(depth), total_fast);
    json.add("months_per_minute_d" + std::to_string(depth), months_per_minute);
  }
  json.add_resource_fields();
  json.write();

  std::printf("\npaper §5.2 reference: makespan diff < 2.5%%, JCT geomean diff < 15%%, 3-26x\n"
              "lower overhead than the standard Slurm simulator, ~1 simulated month per\n"
              "minute. (Our reference simulator is itself lightweight C++, so the overhead\n"
              "ratio is structurally smaller than against the ubccr simulator, which runs\n"
              "real Slurm code.)\n");
  return 0;
}

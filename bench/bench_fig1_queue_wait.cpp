// Figure 1: average queue wait time per month on the V100 and RTX clusters
// (schedule assigned by replaying the workload through the fast simulator).
#include <cstdio>

#include "sim/simulator.hpp"
#include "trace/analysis.hpp"
#include "trace/generator.hpp"
#include "util/config.hpp"

int main(int argc, char** argv) {
  using namespace mirage;
  const auto cli = util::Config::from_args(argc, argv);
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 42));

  std::printf("Figure 1: Average Queue Wait Time per month (hours)\n");
  std::printf("paper reference peaks: up to ~40 h on V100 (2021-02), double-digit on RTX\n\n");

  for (const auto* name : {"v100", "rtx"}) {
    const auto preset = trace::preset_by_name(name);
    trace::GeneratorOptions opt;
    opt.seed = seed;
    trace::SyntheticTraceGenerator gen(preset, opt);
    const auto sched = sim::replay_trace(gen.generate(), preset.node_count);
    const auto waits = trace::monthly_average_wait_hours(sched);
    std::printf("%-5s:", preset.name.c_str());
    for (double w : waits) std::printf(" %5.1f", w);
    std::printf("\n");
  }
  return 0;
}

// Figure 3: distribution of node-hour consumption by job node count.
// The paper's headline: multi-node jobs are a small share of job count but
// dominate node-hours (e.g. 23.4% of jobs / 76.9% of node-hours on V100).
#include <cstdio>

#include "trace/analysis.hpp"
#include "trace/generator.hpp"
#include "util/config.hpp"

int main(int argc, char** argv) {
  using namespace mirage;
  const auto cli = util::Config::from_args(argc, argv);
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 42));

  std::printf("Figure 3: Node-hour share by node-count bucket\n\n");
  std::printf("%-5s |", "");
  for (const auto* b : trace::NodeHourBreakdown::kBucketNames) std::printf(" %8s", b);
  std::printf("\n");

  for (const auto& preset : trace::all_presets()) {
    trace::GeneratorOptions opt;
    opt.seed = seed;
    trace::SyntheticTraceGenerator gen(preset, opt);
    const auto t = gen.generate();
    const auto b = trace::node_hour_breakdown(t);
    std::printf("%-5s |", preset.name.c_str());
    for (double f : b.node_hour_fraction) std::printf(" %7.1f%%", 100.0 * f);
    std::printf("   (node-hours)\n%-5s |", "");
    for (double f : b.job_fraction) std::printf(" %7.1f%%", 100.0 * f);
    std::printf("   (job count)\n");
    const auto stats = trace::compute_stats(t, preset.name, preset.node_count);
    std::printf("      multi-node: %.1f%% of jobs, %.1f%% of node-hours\n\n",
                100.0 * stats.multi_node_job_fraction,
                100.0 * stats.multi_node_node_hour_fraction);
  }
  std::printf("paper reference (V100 2021-02): 23.4%% of jobs multi-node, 76.9%% of node-hours\n");
  return 0;
}

// Figure 9: average interruption of a pair of 48-hour EIGHT-NODE jobs on
// the three clusters under heavy and medium load (the multi-node
// evaluation of §6.2).
#include <cstdio>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace mirage;
  const auto cli = util::Config::from_args(argc, argv);
  util::set_log_level(util::LogLevel::kWarn);

  std::printf("Figure 9: Average Interruption, pair of 48-hour EIGHT-NODE jobs\n\n");
  for (const auto& cluster : bench::cluster_list(cli)) {
    const auto run = bench::run_all_methods(cluster, /*job_nodes=*/8, cli);
    std::printf("(a) heavy load\n");
    bench::print_panel(run, core::LoadClass::kHeavy, /*overlap_metric=*/false);
    std::printf("(b) medium load\n");
    bench::print_panel(run, core::LoadClass::kMedium, /*overlap_metric=*/false);
    std::printf("[timing] train %.1fs, eval %.1fs\n\n", run.train_seconds, run.eval_seconds);
  }
  std::printf("paper reference (heavy, 8-node): XGBoost/RF reduce interruption 37.5/40.0/82.5%%; "
              "MoE+DQN 32.2/28.2/77.5%%; transformer+PG 43.9/34.9/90.1%% on V100/RTX/A100\n");
  return 0;
}

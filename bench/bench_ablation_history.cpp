// Ablation: history window length k (paper default 144 frames = 24 h at a
// 10-minute cadence; the compact config uses 16 frames at 30 minutes).
// Longer histories give the attention stack more context at higher cost.
#include <cstdio>

#include "bench_common.hpp"
#include "rl/trainer.hpp"

int main(int argc, char** argv) {
  using namespace mirage;
  const auto cli = util::Config::from_args(argc, argv);
  util::set_log_level(util::LogLevel::kWarn);
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 42));
  const auto preset = trace::preset_by_name(cli.get_string("cluster", "a100"));

  std::printf("Ablation: history window length k (offline regression loss + timing)\n\n");
  std::printf("%-8s %12s %12s %14s %12s\n", "k", "samples", "final loss", "pretrain(s)",
              "decide(ms)");

  for (std::size_t k : {4, 8, 16, 32}) {
    auto cfg = core::PipelineConfig::compact(preset, 1, seed);
    cfg.episode.history_len = k;
    cfg.net.history_len = k;
    cfg.collector.anchors = 24;
    core::MiragePipeline pipe(cfg);
    pipe.prepare();
    pipe.collect_offline();
    const auto& samples = pipe.offline_dataset().nn_samples;

    rl::DqnConfig dc;
    dc.foundation = nn::FoundationType::kMoE;
    dc.net = cfg.net;
    rl::DqnAgent agent(dc, seed);
    const double t0 = util::wall_seconds();
    const auto losses = rl::pretrain_foundation(agent, samples, cfg.pretrain);
    const double pretrain_s = util::wall_seconds() - t0;

    std::vector<float> obs(cfg.net.input_dim(), 0.1f);
    const double t1 = util::wall_seconds();
    int decisions = 0;
    for (int i = 0; i < 50; ++i) decisions += agent.act_greedy(obs);
    const double decide_ms = (util::wall_seconds() - t1) * 1000.0 / 50.0;
    (void)decisions;

    std::printf("%-8zu %12zu %12.3f %14.2f %12.3f\n", k, samples.size(), losses.back(),
                pretrain_s, decide_ms);
  }
  std::printf("\npaper default: k=144 (24 h of 10-minute snapshots)\n");
  return 0;
}

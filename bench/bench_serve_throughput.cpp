// Serving-throughput bench behind the serve subsystem's headline claim:
// batched serving beats the status-quo B=1 loop by >=4x decisions/sec on
// the same checkpoint.
//
// The B=1 baseline is exactly what every caller does today
// (rl::DqnAgent::q_pair -> dense forward over ALL MoE experts, two rows
// at a time). The batched path is ServableModel::infer: requests
// coalesce into one [B, k*(m+1)] tensor and, for Top-1 MoE checkpoints,
// the gate routes rows into per-expert sub-batches so each expert runs
// once over only its rows — the sparse-routing saving the paper left on
// the table, which only stays GEMM-friendly when serving is batched.
//
// Three measurements on the same checkpoint (loaded through the real
// ModelRegistry path):
//   1. sequential B=1 serving (status quo);
//   2. direct batched inference at several batch sizes;
//   3. end-to-end engine serving (client threads -> coalescing queue ->
//      batched tick), with p50/p95/p99 request latency.
//
//   ./bench_serve_throughput [n=4096] [batches=16,64,256] [clients=16]
//                            [k=24] [d_model=32] [experts=8] [top1=true]
//                            [kind=dqn]
#include <cstdio>
#include <filesystem>
#include <future>
#include <thread>

#include "bench_common.hpp"
#include "core/checkpoint.hpp"
#include "rl/state_encoder.hpp"
#include "serve/inference_engine.hpp"
#include "serve/model_registry.hpp"
#include "util/config.hpp"
#include "util/rng.hpp"
#include "util/time_utils.hpp"

using namespace mirage;

namespace {

std::vector<std::size_t> parse_batches(const std::string& arg) {
  std::vector<std::size_t> out;
  std::size_t pos = 0;
  while (pos <= arg.size()) {
    auto comma = arg.find(',', pos);
    if (comma == std::string::npos) comma = arg.size();
    if (comma > pos) {
      const auto b = static_cast<std::size_t>(std::stoul(arg.substr(pos, comma - pos)));
      if (b > 0) out.push_back(b);  // B=0 would make the chunk loop spin forever
    }
    pos = comma + 1;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const auto cli = util::Config::from_args(argc, argv);
  const auto n = static_cast<std::size_t>(cli.get_int("n", 4096));
  const auto batches = parse_batches(cli.get_string("batches", "16,64,256"));
  const auto clients = static_cast<std::size_t>(cli.get_int("clients", 16));
  const std::string kind = cli.get_string("kind", "dqn");

  nn::FoundationConfig net;
  net.history_len = static_cast<std::size_t>(cli.get_int("k", 24));
  net.state_dim = rl::kFrameDim;
  net.d_model = static_cast<std::size_t>(cli.get_int("d_model", 32));
  net.moe_experts = static_cast<std::size_t>(cli.get_int("experts", 8));
  net.moe_top1 = cli.get_bool("top1", true);  ///< Top-1 routing is the serving-efficient mode

  // A freshly initialized agent: forward cost is independent of training,
  // and the checkpoint round-trip exercises the production load path.
  const auto dir = std::filesystem::temp_directory_path() / "mirage_bench_serve";
  std::filesystem::create_directories(dir);
  const std::string ckpt = (dir / ("bench__" + kind + ".ckpt")).string();
  if (kind == "pg") {
    rl::PgConfig cfg;
    cfg.foundation = nn::FoundationType::kMoE;
    cfg.net = net;
    rl::PgAgent agent(cfg, 7);
    if (!core::save_agent(agent, ckpt)) return 1;
  } else {
    rl::DqnConfig cfg;
    cfg.foundation = nn::FoundationType::kMoE;
    cfg.net = net;
    rl::DqnAgent agent(cfg, 7);
    if (!core::save_agent(agent, ckpt)) return 1;
  }

  serve::RegistryConfig reg_cfg;
  reg_cfg.net_defaults = net;
  serve::ModelRegistry registry(reg_cfg);
  const auto load = registry.load_file(ckpt, "bench");
  if (!load.ok) {
    std::fprintf(stderr, "registry load failed: %s\n", load.error.c_str());
    return 1;
  }
  const auto model = registry.lookup(load.key);
  std::printf("model %s  k=%zu state_dim=%zu d_model=%zu experts=%zu  (%zu decisions)\n\n",
              load.key.to_string().c_str(), net.history_len, net.state_dim, net.d_model,
              net.moe_experts, n);

  util::Rng rng(123);
  std::vector<std::vector<float>> observations(n);
  for (auto& obs : observations) {
    obs.resize(model->observation_dim());
    for (auto& v : obs) v = static_cast<float>(rng.normal());
  }

  // Warm up allocators and caches.
  model->infer({observations[0], observations[1]});

  // ---- 1. sequential B=1 (status quo: q_pair, dense forward) -------------
  // Reload the same checkpoint into a plain agent: this is precisely the
  // serving path the offline pipeline (DqnProvisioner -> act_greedy)
  // uses today.
  rl::DqnConfig base_cfg;
  base_cfg.foundation = nn::FoundationType::kMoE;
  base_cfg.net = net;
  rl::DqnAgent baseline(base_cfg, 1);
  rl::PgConfig base_pg_cfg;
  base_pg_cfg.foundation = nn::FoundationType::kMoE;
  base_pg_cfg.net = net;
  rl::PgAgent baseline_pg(base_pg_cfg, 1);
  if (kind == "pg" ? !core::load_agent(baseline_pg, ckpt) : !core::load_agent(baseline, ckpt)) {
    std::fprintf(stderr, "baseline agent reload failed\n");
    return 1;
  }

  double t0 = util::wall_seconds();
  std::size_t submit_count = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (kind == "pg") {
      submit_count += baseline_pg.act_greedy(observations[i]);
    } else {
      submit_count += baseline.act_greedy(observations[i]);
    }
  }
  const double seq_seconds = util::wall_seconds() - t0;
  const double seq_dps = static_cast<double>(n) / seq_seconds;
  std::printf("%-28s %10.0f decisions/s   (%.2f s, %zu submits)\n",
              "sequential B=1 (status quo)", seq_dps, seq_seconds, submit_count);

  // ---- 2. direct batched inference ---------------------------------------
  bool target_met = false;
  for (const std::size_t b : batches) {
    t0 = util::wall_seconds();
    std::vector<std::vector<float>> chunk;
    chunk.reserve(b);
    for (std::size_t i = 0; i < n;) {
      chunk.clear();
      for (; chunk.size() < b && i < n; ++i) chunk.push_back(observations[i]);
      model->infer(chunk);
    }
    const double seconds = util::wall_seconds() - t0;
    const double dps = static_cast<double>(n) / seconds;
    const double speedup = dps / seq_dps;
    if (b >= 16 && speedup >= 4.0) target_met = true;
    std::printf("%-28s %10.0f decisions/s   %5.1fx vs B=1\n",
                ("batched B=" + std::to_string(b)).c_str(), dps, speedup);
  }

  // ---- 3. end-to-end engine (coalescing queue, client threads) -----------
  serve::EngineConfig engine_cfg;
  engine_cfg.max_batch = static_cast<std::size_t>(cli.get_int("max_batch", 256));
  engine_cfg.coalesce_wait = std::chrono::microseconds(cli.get_int("coalesce_us", 200));
  serve::BatchedInferenceEngine engine(registry, load.key, engine_cfg);
  engine.start();
  t0 = util::wall_seconds();
  {
    std::vector<std::thread> threads;
    for (std::size_t c = 0; c < clients; ++c) {
      threads.emplace_back([&, c] {
        std::vector<std::future<serve::Decision>> futs;
        for (std::size_t i = c; i < n; i += clients) futs.push_back(engine.submit(observations[i]));
        for (auto& f : futs) f.get();
      });
    }
    for (auto& t : threads) t.join();
  }
  const double engine_seconds = util::wall_seconds() - t0;
  engine.drain();
  const auto stats = engine.stats();
  const double engine_dps = static_cast<double>(n) / engine_seconds;
  std::printf("%-28s %10.0f decisions/s   %5.1fx vs B=1   (%zu clients)\n",
              "engine end-to-end", engine_dps, engine_dps / seq_dps, clients);
  std::printf("  ticks %llu  mean batch %.1f  max batch %zu\n",
              static_cast<unsigned long long>(stats.ticks), stats.mean_batch, stats.max_batch);
  std::printf("  request latency p50 %.2f ms  p95 %.2f ms  p99 %.2f ms  max %.2f ms\n",
              stats.latency.p50_ms, stats.latency.p95_ms, stats.latency.p99_ms,
              stats.latency.max_ms);

  std::printf("\nbatched >=4x target (B>=16): %s\n", target_met ? "PASS" : "FAIL");

  bench::BenchJson json("serve_throughput");
  json.add("decisions", static_cast<std::int64_t>(n))
      .add("threads", static_cast<std::int64_t>(clients))
      .add("wall_seconds", engine_seconds)
      .add("sequential_decisions_per_sec", seq_dps)
      .add("engine_decisions_per_sec", engine_dps)
      .add("latency_p99_ms", stats.latency.p99_ms)
      .add("target_met", static_cast<std::int64_t>(target_met ? 1 : 0));
  json.add_resource_fields();
  json.write();

  std::filesystem::remove(ckpt);
  return target_met ? 0 : 2;
}

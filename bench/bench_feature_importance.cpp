// Analysis bench: which state features actually predict the successor's
// queue wait? Gain-based importance of the Random Forest / XGBoost
// baselines over the §4.1 summary features — an interpretability
// counterpart to the attention-based foundation model's implicit feature
// selection (§4.6).
#include <cstdio>

#include "core/pipeline.hpp"
#include "util/config.hpp"
#include "util/logging.hpp"

namespace {
const char* kFeatureNames[] = {
    "queue_len",       "q_size_mean",     "q_size_p50",     "q_size_max",    "q_age_mean",
    "q_age_max",       "q_limit_mean",    "queued_backlog", "running_count", "free_nodes",
    "run_size_mean",   "run_elapsed_mean", "committed_work", "run_limit_mean", "pred_nodes",
    "pred_limit",      "pred_wait",       "pred_elapsed",   "pred_remaining", "succ_nodes",
    "succ_limit"};
}

int main(int argc, char** argv) {
  using namespace mirage;
  const auto cli = util::Config::from_args(argc, argv);
  util::set_log_level(util::LogLevel::kWarn);
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 42));
  const auto preset = trace::preset_by_name(cli.get_string("cluster", "v100"));

  auto cfg = core::PipelineConfig::compact(preset, 1, seed);
  core::MiragePipeline pipe(cfg);
  pipe.prepare();
  pipe.collect_offline();

  const auto& data = pipe.offline_dataset().tabular;
  std::printf("Feature importance for wait prediction on %s (%zu samples)\n\n",
              preset.name.c_str(), data.size());

  ml::RandomForest forest;
  forest.fit(data, cfg.forest);
  ml::Gbdt gbdt;
  gbdt.fit(data, cfg.gbdt);
  const auto rf_imp = forest.feature_importance(data.num_features());
  const auto gb_imp = gbdt.feature_importance(data.num_features());

  std::printf("%-18s %14s %14s\n", "feature", "RF gain %", "XGB gain %");
  for (std::size_t f = 0; f < data.num_features(); ++f) {
    std::printf("%-18s %13.1f%% %13.1f%%\n",
                f < std::size(kFeatureNames) ? kFeatureNames[f] : "?", 100.0 * rf_imp[f],
                100.0 * gb_imp[f]);
  }
  std::printf("\nexpected shape: queue pressure (backlog, queue length, ages) and committed\n"
              "running work dominate; static job attributes contribute little\n");
  return 0;
}

// Figure 8: average interruption of a pair of 48-hour single-node jobs on
// the V100, RTX and A100 clusters under (a) heavy and (b) medium load, for
// all eight methods. Also prints the §6 summary statistics (interruption
// reduction vs reactive, zero-interruption job fraction).
#include <cstdio>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace mirage;
  const auto cli = util::Config::from_args(argc, argv);
  util::set_log_level(util::LogLevel::kWarn);

  std::printf("Figure 8: Average Interruption, pair of 48-hour SINGLE-NODE jobs\n\n");
  for (const auto& cluster : bench::cluster_list(cli)) {
    const auto run = bench::run_all_methods(cluster, /*job_nodes=*/1, cli);
    std::printf("(a) heavy load\n");
    bench::print_panel(run, core::LoadClass::kHeavy, /*overlap_metric=*/false);
    std::printf("(b) medium load\n");
    bench::print_panel(run, core::LoadClass::kMedium, /*overlap_metric=*/false);
    std::printf("[timing] train %.1fs, eval %.1fs\n\n", run.train_seconds, run.eval_seconds);
  }
  std::printf("paper reference: learned methods cut heavy-load interruption by 44.1%% / 33.7%% / "
              "84.7%% on V100/RTX/A100 vs reactive; Mirage safeguards 23-76%% of jobs with zero "
              "interruption\n");
  return 0;
}

// Figure 10: average overlap under LIGHT load for 1-node and 8-node job
// pairs across the three clusters — the cost the proactive methods pay
// when the machine is idle enough that waiting would have been free.
#include <cstdio>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace mirage;
  const auto cli = util::Config::from_args(argc, argv);
  util::set_log_level(util::LogLevel::kWarn);

  std::printf("Figure 10: Average Overlap with Light Load (hours)\n\n");
  for (int nodes : {1, 8}) {
    std::printf("===== (%d) %s jobs =====\n", nodes, nodes == 1 ? "one-node" : "eight-node");
    for (const auto& cluster : bench::cluster_list(cli)) {
      const auto run = bench::run_all_methods(cluster, nodes, cli);
      bench::print_panel(run, core::LoadClass::kLight, /*overlap_metric=*/true);
      std::printf("\n");
    }
  }
  std::printf("paper reference: ensembles and transformer+PG pay ~2x the overlap of MoE+DQN at "
              "light load, which is why Mirage defaults to MoE+DQN\n");
  return 0;
}

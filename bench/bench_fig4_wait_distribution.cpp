// Figure 4: per-month distribution of queue wait time over the paper's
// buckets {<2h, 2-12h, 12-24h, 24-36h, >36h}.
#include <cstdio>

#include "sim/simulator.hpp"
#include "trace/analysis.hpp"
#include "trace/generator.hpp"
#include "util/config.hpp"

int main(int argc, char** argv) {
  using namespace mirage;
  const auto cli = util::Config::from_args(argc, argv);
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 42));

  std::printf("Figure 4: Distribution of Queue Wait Time (fraction of jobs per bucket)\n\n");
  for (const auto& preset : trace::all_presets()) {
    trace::GeneratorOptions opt;
    opt.seed = seed;
    trace::SyntheticTraceGenerator gen(preset, opt);
    const auto sched = sim::replay_trace(gen.generate(), preset.node_count);
    const auto dist = trace::wait_distribution(sched);
    std::printf("%s  (rows: months; cols:", preset.name.c_str());
    for (const auto* b : trace::WaitDistribution::kBucketNames) std::printf(" %s", b);
    std::printf(")\n");
    for (std::size_t m = 0; m < dist.monthly_fractions.size(); ++m) {
      std::printf("  m%02zu:", m);
      for (double f : dist.monthly_fractions[m]) std::printf(" %5.1f%%", 100.0 * f);
      std::printf("\n");
    }
    std::printf("\n");
  }
  std::printf("paper reference: V100 2020-10/2021-02 have ~30-41%% of jobs waiting >24 h;\n"
              "A100 92-98%% of jobs wait <12 h except the heavy month\n");
  return 0;
}

#include "rl/chain.hpp"

namespace mirage::rl {

using util::SimTime;

SimTime ChainResult::total_interruption() const {
  SimTime total = 0;
  for (const auto& l : links) total += l.outcome.interruption;
  return total;
}

SimTime ChainResult::total_overlap() const {
  SimTime total = 0;
  for (const auto& l : links) total += l.outcome.overlap;
  return total;
}

std::size_t ChainResult::zero_interruption_links() const {
  std::size_t n = 0;
  for (const auto& l : links) n += l.outcome.zero_interruption();
  return n;
}

double ChainResult::downtime_fraction(SimTime sub_job_runtime) const {
  if (links.empty() || sub_job_runtime <= 0) return 0.0;
  const double ideal = static_cast<double>(sub_job_runtime) * static_cast<double>(links.size());
  return static_cast<double>(total_interruption()) / (ideal + static_cast<double>(total_interruption()));
}

ChainResult run_chain(const trace::Trace& background_full, std::int32_t cluster_nodes,
                      const EpisodeConfig& episode_config, SimTime t0, std::size_t links,
                      const ChainPolicy& policy) {
  ChainResult result;
  result.links.reserve(links);
  SimTime anchor = t0;
  for (std::size_t i = 0; i < links; ++i) {
    const trace::Trace window = slice_for_episode(background_full, anchor, episode_config);
    ProvisionEnv env(window, cluster_nodes, episode_config, anchor);
    for (;;) {
      const int action = policy(env);
      if (action == 1) {
        env.step(1);
        break;
      }
      if (!env.step(0)) break;
    }
    if (!env.done()) env.finish();

    ChainLinkResult link;
    link.outcome = env.outcome();
    link.reward = env.reward();
    link.submit_offset = env.submit_offset();
    link.successor_wait = env.successor_wait();
    result.links.push_back(link);

    // The successor becomes the next predecessor: the service resumes one
    // sub-job lifetime later, delayed by whatever interruption occurred.
    anchor += episode_config.job_runtime + link.outcome.interruption;
  }
  return result;
}

}  // namespace mirage::rl

#include "rl/state_encoder.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "util/stats.hpp"

namespace mirage::rl {

namespace {
constexpr float kLimitScale = 48.0f * 3600.0f;  ///< normalize times by 48 h

float norm_time(double seconds) { return static_cast<float>(seconds / kLimitScale); }
float norm_count(double n) { return static_cast<float>(std::log1p(n) / 8.0); }

void push_summary(std::vector<float>& out, const std::vector<double>& values, bool time_scale) {
  const auto s = util::five_number_summary(values);
  for (double v : s) out.push_back(time_scale ? norm_time(v) : static_cast<float>(v));
}
}  // namespace

std::vector<float> encode_frame(const sim::StateSample& sample, const JobPairContext& ctx) {
  std::vector<float> f;
  f.reserve(frame_vars(sample.partition_count()));
  const float inv_nodes = 1.0f / static_cast<float>(std::max(1, sample.total_nodes));

  // --- Queue state (16 vars) ---
  f.push_back(norm_count(static_cast<double>(sample.queue_length())));         // var 1
  {
    std::vector<float> sizes;                                                  // var 2-6
    const auto s = util::five_number_summary(sample.queued_sizes);
    for (double v : s) sizes.push_back(static_cast<float>(v) * inv_nodes);
    f.insert(f.end(), sizes.begin(), sizes.end());
  }
  push_summary(f, sample.queued_ages, /*time_scale=*/true);                    // var 7-11
  push_summary(f, sample.queued_limits, /*time_scale=*/true);                  // var 12-16

  // --- Server state (18 vars) ---
  f.push_back(norm_count(static_cast<double>(sample.running_count())));        // var 17
  {
    // var 18-24: five-number + mean + total of running sizes (7 stats).
    const auto s = util::five_number_summary(sample.running_sizes);
    for (double v : s) f.push_back(static_cast<float>(v) * inv_nodes);
    f.push_back(static_cast<float>(util::mean(sample.running_sizes)) * inv_nodes);
    double total = 0.0;
    for (double v : sample.running_sizes) total += v;
    f.push_back(static_cast<float>(total) * inv_nodes);  // == busy fraction
  }
  push_summary(f, sample.running_elapsed, /*time_scale=*/true);                // var 25-29
  push_summary(f, sample.running_limits, /*time_scale=*/true);                 // var 30-34

  // --- Predecessor (4 vars) + successor (2 vars) ---
  f.push_back(static_cast<float>(ctx.pred_nodes) * inv_nodes);                 // var 35
  f.push_back(norm_time(static_cast<double>(ctx.pred_limit)));                 // var 36
  f.push_back(norm_time(static_cast<double>(ctx.pred_wait)));                  // var 37
  f.push_back(norm_time(static_cast<double>(ctx.pred_elapsed)));               // var 38
  f.push_back(static_cast<float>(ctx.succ_nodes) * inv_nodes);                 // var 39
  f.push_back(norm_time(static_cast<double>(ctx.succ_limit)));                 // var 40

  // --- Per-partition free-capacity fractions (multi-partition only) ---
  // Single-partition frames stay exactly kStateVars wide so pre-partition
  // model inputs (and checkpoints) remain bitwise valid.
  if (sample.partition_count() > 1) {
    for (std::size_t p = 0; p < sample.partition_count(); ++p) {
      const std::int32_t total = sample.partition_total[p];
      f.push_back(total > 0 ? static_cast<float>(sample.partition_free[p]) /
                                  static_cast<float>(total)
                            : 0.0f);
    }
  }

  return f;
}

std::vector<float> summary_features(const sim::StateSample& sample, const JobPairContext& ctx) {
  std::vector<float> f;
  f.reserve(summary_feature_count());
  const float inv_nodes = 1.0f / static_cast<float>(std::max(1, sample.total_nodes));

  f.push_back(norm_count(static_cast<double>(sample.queue_length())));
  f.push_back(static_cast<float>(util::mean(sample.queued_sizes)) * inv_nodes);
  f.push_back(static_cast<float>(util::percentile(sample.queued_sizes, 50.0)) * inv_nodes);
  f.push_back(static_cast<float>(util::percentile(sample.queued_sizes, 100.0)) * inv_nodes);
  f.push_back(norm_time(util::mean(sample.queued_ages)));
  f.push_back(norm_time(util::percentile(sample.queued_ages, 100.0)));
  f.push_back(norm_time(util::mean(sample.queued_limits)));
  // Queued backlog: node-seconds of demand sitting in the queue.
  double backlog = 0.0;
  for (std::size_t i = 0; i < sample.queued_sizes.size(); ++i) {
    backlog += sample.queued_sizes[i] * sample.queued_limits[i];
  }
  f.push_back(norm_time(backlog * inv_nodes));

  f.push_back(norm_count(static_cast<double>(sample.running_count())));
  f.push_back(static_cast<float>(sample.free_nodes) * inv_nodes);
  f.push_back(static_cast<float>(util::mean(sample.running_sizes)) * inv_nodes);
  f.push_back(norm_time(util::mean(sample.running_elapsed)));
  // Remaining committed node-seconds of running jobs (by limit).
  double committed = 0.0;
  for (std::size_t i = 0; i < sample.running_sizes.size(); ++i) {
    committed += sample.running_sizes[i] *
                 std::max(0.0, sample.running_limits[i] - sample.running_elapsed[i]);
  }
  f.push_back(norm_time(committed * inv_nodes));
  f.push_back(norm_time(util::mean(sample.running_limits)));

  f.push_back(static_cast<float>(ctx.pred_nodes) * inv_nodes);
  f.push_back(norm_time(static_cast<double>(ctx.pred_limit)));
  f.push_back(norm_time(static_cast<double>(ctx.pred_wait)));
  f.push_back(norm_time(static_cast<double>(ctx.pred_elapsed)));
  f.push_back(norm_time(static_cast<double>(std::max<util::SimTime>(
      0, ctx.pred_limit - ctx.pred_elapsed))));  // remaining predecessor time
  f.push_back(static_cast<float>(ctx.succ_nodes) * inv_nodes);
  f.push_back(norm_time(static_cast<double>(ctx.succ_limit)));

  return f;
}

std::size_t summary_feature_count() { return 21; }

StateEncoder::StateEncoder(std::size_t history_len, std::size_t partition_count)
    : k_(history_len), frame_vars_(frame_vars(partition_count)) {}

void StateEncoder::reset() {
  frames_.clear();
  frames_seen_ = 0;
}

void StateEncoder::push(const sim::StateSample& sample, const JobPairContext& ctx) {
  auto frame = encode_frame(sample, ctx);
  // A width mismatch must fail loudly in every build: flatten() copies
  // frames at the configured stride, so an oversized frame would write out
  // of bounds. The serving path feeds samples from external sessions,
  // where this is a real (mis)configuration, not a programming error.
  if (frame.size() != frame_vars_) {
    throw std::invalid_argument(
        "StateEncoder: frame width " + std::to_string(frame.size()) +
        " (sample covers " + std::to_string(sample.partition_count()) +
        " partitions) != configured width " + std::to_string(frame_vars_));
  }
  frames_.push_back(std::move(frame));
  ++frames_seen_;
  while (frames_.size() > k_) frames_.pop_front();
}

std::vector<float> StateEncoder::flatten(float action_value) const {
  const std::size_t stride = frame_dim();
  std::vector<float> out(k_ * stride, 0.0f);
  // Right-align history: the newest frame occupies the last slot; missing
  // history at the start of an episode stays zero.
  const std::size_t have = frames_.size();
  const std::size_t offset = k_ - have;
  for (std::size_t i = 0; i < have; ++i) {
    float* dst = out.data() + (offset + i) * stride;
    const auto& frame = frames_[i];
    std::copy(frame.begin(), frame.end(), dst);
    dst[frame_vars_] = action_value;
  }
  // Action channel also set on padding frames so the Q-head sees the query
  // action even before history fills.
  for (std::size_t i = 0; i < offset; ++i) {
    out[i * stride + frame_vars_] = action_value;
  }
  return out;
}

}  // namespace mirage::rl

#include "rl/state_encoder.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "util/stats.hpp"

namespace mirage::rl {

namespace {
constexpr float kLimitScale = 48.0f * 3600.0f;  ///< normalize times by 48 h

float norm_time(double seconds) { return static_cast<float>(seconds / kLimitScale); }
float norm_count(double n) { return static_cast<float>(std::log1p(n) / 8.0); }

void push_summary(std::vector<float>& out, const std::vector<double>& values, bool time_scale) {
  const auto s = util::five_number_summary(values);
  for (double v : s) out.push_back(time_scale ? norm_time(v) : static_cast<float>(v));
}
}  // namespace

std::vector<float> encode_frame(const sim::StateSample& sample, const JobPairContext& ctx) {
  std::vector<float> f;
  encode_frame_into(f, sample, ctx);
  return f;
}

void encode_frame_into(std::vector<float>& f, const sim::StateSample& sample,
                       const JobPairContext& ctx) {
  f.clear();
  f.reserve(frame_vars(sample.partition_count()));
  const float inv_nodes = 1.0f / static_cast<float>(std::max(1, sample.total_nodes));

  // --- Queue state (16 vars) ---
  f.push_back(norm_count(static_cast<double>(sample.queue_length())));         // var 1
  {
    const auto s = util::five_number_summary(sample.queued_sizes);             // var 2-6
    for (double v : s) f.push_back(static_cast<float>(v) * inv_nodes);
  }
  push_summary(f, sample.queued_ages, /*time_scale=*/true);                    // var 7-11
  push_summary(f, sample.queued_limits, /*time_scale=*/true);                  // var 12-16

  // --- Server state (18 vars) ---
  f.push_back(norm_count(static_cast<double>(sample.running_count())));        // var 17
  {
    // var 18-24: five-number + mean + total of running sizes (7 stats).
    const auto s = util::five_number_summary(sample.running_sizes);
    for (double v : s) f.push_back(static_cast<float>(v) * inv_nodes);
    f.push_back(static_cast<float>(util::mean(sample.running_sizes)) * inv_nodes);
    double total = 0.0;
    for (double v : sample.running_sizes) total += v;
    f.push_back(static_cast<float>(total) * inv_nodes);  // == busy fraction
  }
  push_summary(f, sample.running_elapsed, /*time_scale=*/true);                // var 25-29
  push_summary(f, sample.running_limits, /*time_scale=*/true);                 // var 30-34

  // --- Predecessor (4 vars) + successor (2 vars) ---
  f.push_back(static_cast<float>(ctx.pred_nodes) * inv_nodes);                 // var 35
  f.push_back(norm_time(static_cast<double>(ctx.pred_limit)));                 // var 36
  f.push_back(norm_time(static_cast<double>(ctx.pred_wait)));                  // var 37
  f.push_back(norm_time(static_cast<double>(ctx.pred_elapsed)));               // var 38
  f.push_back(static_cast<float>(ctx.succ_nodes) * inv_nodes);                 // var 39
  f.push_back(norm_time(static_cast<double>(ctx.succ_limit)));                 // var 40

  // --- Per-partition free-capacity fractions (multi-partition only) ---
  // Single-partition frames stay exactly kStateVars wide so pre-partition
  // model inputs (and checkpoints) remain bitwise valid.
  if (sample.partition_count() > 1) {
    for (std::size_t p = 0; p < sample.partition_count(); ++p) {
      const std::int32_t total = sample.partition_total[p];
      f.push_back(total > 0 ? static_cast<float>(sample.partition_free[p]) /
                                  static_cast<float>(total)
                            : 0.0f);
    }
  }
}

std::vector<float> summary_features(const sim::StateSample& sample, const JobPairContext& ctx) {
  std::vector<float> f;
  f.reserve(summary_feature_count());
  const float inv_nodes = 1.0f / static_cast<float>(std::max(1, sample.total_nodes));

  f.push_back(norm_count(static_cast<double>(sample.queue_length())));
  f.push_back(static_cast<float>(util::mean(sample.queued_sizes)) * inv_nodes);
  f.push_back(static_cast<float>(util::percentile(sample.queued_sizes, 50.0)) * inv_nodes);
  f.push_back(static_cast<float>(util::percentile(sample.queued_sizes, 100.0)) * inv_nodes);
  f.push_back(norm_time(util::mean(sample.queued_ages)));
  f.push_back(norm_time(util::percentile(sample.queued_ages, 100.0)));
  f.push_back(norm_time(util::mean(sample.queued_limits)));
  // Queued backlog: node-seconds of demand sitting in the queue.
  double backlog = 0.0;
  for (std::size_t i = 0; i < sample.queued_sizes.size(); ++i) {
    backlog += sample.queued_sizes[i] * sample.queued_limits[i];
  }
  f.push_back(norm_time(backlog * inv_nodes));

  f.push_back(norm_count(static_cast<double>(sample.running_count())));
  f.push_back(static_cast<float>(sample.free_nodes) * inv_nodes);
  f.push_back(static_cast<float>(util::mean(sample.running_sizes)) * inv_nodes);
  f.push_back(norm_time(util::mean(sample.running_elapsed)));
  // Remaining committed node-seconds of running jobs (by limit).
  double committed = 0.0;
  for (std::size_t i = 0; i < sample.running_sizes.size(); ++i) {
    committed += sample.running_sizes[i] *
                 std::max(0.0, sample.running_limits[i] - sample.running_elapsed[i]);
  }
  f.push_back(norm_time(committed * inv_nodes));
  f.push_back(norm_time(util::mean(sample.running_limits)));

  f.push_back(static_cast<float>(ctx.pred_nodes) * inv_nodes);
  f.push_back(norm_time(static_cast<double>(ctx.pred_limit)));
  f.push_back(norm_time(static_cast<double>(ctx.pred_wait)));
  f.push_back(norm_time(static_cast<double>(ctx.pred_elapsed)));
  f.push_back(norm_time(static_cast<double>(std::max<util::SimTime>(
      0, ctx.pred_limit - ctx.pred_elapsed))));  // remaining predecessor time
  f.push_back(static_cast<float>(ctx.succ_nodes) * inv_nodes);
  f.push_back(norm_time(static_cast<double>(ctx.succ_limit)));

  return f;
}

std::size_t summary_feature_count() { return 21; }

StateEncoder::StateEncoder(std::size_t history_len, std::size_t partition_count)
    : k_(history_len), frame_vars_(mirage::rl::frame_vars(partition_count)) {
  ring_.resize(k_ * frame_vars_, 0.0f);
  scratch_.reserve(frame_vars_);
}

void StateEncoder::reset() {
  frames_seen_ = 0;
  count_ = 0;
  next_ = 0;
}

void StateEncoder::push(const sim::StateSample& sample, const JobPairContext& ctx) {
  encode_frame_into(scratch_, sample, ctx);
  // A width mismatch must fail loudly in every build: flatten() copies
  // frames at the configured stride, so an oversized frame would write out
  // of bounds. The serving path feeds samples from external sessions,
  // where this is a real (mis)configuration, not a programming error.
  if (scratch_.size() != frame_vars_) {
    throw std::invalid_argument(
        "StateEncoder: frame width " + std::to_string(scratch_.size()) +
        " (sample covers " + std::to_string(sample.partition_count()) +
        " partitions) != configured width " + std::to_string(frame_vars_));
  }
  store_frame(scratch_.data());
}

void StateEncoder::push_encoded(const float* frame, std::size_t size) {
  if (size != frame_vars_) {
    throw std::invalid_argument("StateEncoder: encoded frame width " + std::to_string(size) +
                                " != configured width " + std::to_string(frame_vars_));
  }
  store_frame(frame);
}

void StateEncoder::store_frame(const float* frame) {
  ++frames_seen_;
  if (k_ == 0) return;  // zero-history encoder: frames are counted, not kept
  std::copy(frame, frame + frame_vars_, ring_.begin() + next_ * frame_vars_);
  next_ = (next_ + 1) % k_;
  if (count_ < k_) ++count_;
}

std::vector<float> StateEncoder::flatten(float action_value) const {
  std::vector<float> out;
  flatten_into(out, action_value);
  return out;
}

void StateEncoder::flatten_into(std::vector<float>& out, float action_value) const {
  const std::size_t stride = frame_dim();
  out.assign(k_ * stride, 0.0f);
  if (k_ == 0) return;
  // Right-align history: the newest frame occupies the last slot; missing
  // history at the start of an episode stays zero.
  const std::size_t offset = k_ - count_;
  const std::size_t oldest = (next_ + k_ - count_) % k_;
  for (std::size_t i = 0; i < count_; ++i) {
    float* dst = out.data() + (offset + i) * stride;
    const float* frame = ring_.data() + ((oldest + i) % k_) * frame_vars_;
    std::copy(frame, frame + frame_vars_, dst);
    dst[frame_vars_] = action_value;
  }
  // Action channel also set on padding frames so the Q-head sees the query
  // action even before history fills.
  for (std::size_t i = 0; i < offset; ++i) {
    out[i * stride + frame_vars_] = action_value;
  }
}

}  // namespace mirage::rl

// Reward shaping (paper §4.5, Eq. 8). Rewards are negative penalties:
// zero is the best outcome; an interruption of r_I hours costs e_I * r_I
// and an overlap of r_O hours costs e_O * r_O. Every action in the episode
// receives the episode's terminal reward (the paper credits the whole
// decision sequence for the outcome).
#pragma once

#include "util/time_utils.hpp"

namespace mirage::rl {

struct RewardConfig {
  /// Interruption penalty per hour (performance-sensitive users raise it).
  double e_interrupt = 1.0;
  /// Overlap penalty per hour (resource-waste-averse users raise it).
  double e_overlap = 0.5;
};

struct EpisodeOutcome {
  util::SimTime interruption = 0;  ///< max(0, succ_start - pred_end)
  util::SimTime overlap = 0;       ///< max(0, pred_end - succ_start)

  bool zero_interruption() const { return interruption <= 0; }
};

/// Eq. 8: reward of an outcome (<= 0; 0 is perfect).
double shaped_reward(const EpisodeOutcome& outcome, const RewardConfig& config);

/// Derive the outcome from the two timestamps; exactly one of
/// interruption/overlap is nonzero. Overlap is capped at the successor's
/// runtime (it cannot overlap longer than it exists).
EpisodeOutcome make_outcome(util::SimTime pred_end, util::SimTime succ_start,
                            util::SimTime succ_runtime);

}  // namespace mirage::rl

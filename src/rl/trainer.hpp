// Two-phase training (paper §4.9): offline foundation pre-training on
// collected samples, then online on-policy training against the simulator.
// Online rollouts fan out over the thread pool with per-worker policy
// snapshots; gradient updates happen on the caller's thread.
#pragma once

#include <span>

#include "rl/dqn.hpp"
#include "rl/offline_collector.hpp"
#include "rl/policy_gradient.hpp"

namespace mirage::rl {

struct PretrainConfig {
  std::size_t epochs = 8;
  std::size_t batch_size = 32;
  std::uint64_t seed = 11;
};

/// Supervised pre-training of the foundation + V-head: regress Q(s, a)
/// onto the observed Eq.-8 reward (§4.9.1b). Works for both agents — the
/// PG agent's P-head is trained online on top of the pre-trained
/// foundation. Returns per-epoch mean losses.
std::vector<float> pretrain_foundation(DqnAgent& agent, std::span<const Experience> samples,
                                       const PretrainConfig& config);

struct OnlineTrainConfig {
  std::size_t episodes = 96;
  /// Rollouts per update round (PG batch size; DQN rollout fan-out).
  std::size_t episodes_per_round = 8;
  /// DQN gradient steps per round.
  std::size_t train_steps_per_round = 16;
  std::size_t replay_capacity = 8192;
  /// Per-episode cap on stored no-submit experiences (DQN).
  std::size_t max_no_submit_per_episode = 16;
  std::uint64_t seed = 13;
  bool parallel = true;
};

struct OnlineTrainReport {
  std::size_t episodes = 0;
  double mean_reward_first_quarter = 0.0;
  double mean_reward_last_quarter = 0.0;
  std::vector<float> losses;  ///< one entry per update round
};

/// Online epsilon-greedy DQN training (§4.9.2a). `seed_samples` (typically
/// the offline dataset) pre-populates the replay memory.
OnlineTrainReport train_dqn_online(DqnAgent& agent, const trace::Trace& full,
                                   std::int32_t cluster_nodes, const EpisodeConfig& episode_config,
                                   util::SimTime range_begin, util::SimTime range_end,
                                   const OnlineTrainConfig& config,
                                   std::span<const Experience> seed_samples = {});

/// Online REINFORCE training (§4.9.2b).
OnlineTrainReport train_pg_online(PgAgent& agent, const trace::Trace& full,
                                  std::int32_t cluster_nodes, const EpisodeConfig& episode_config,
                                  util::SimTime range_begin, util::SimTime range_end,
                                  const OnlineTrainConfig& config);

}  // namespace mirage::rl

// Policy-gradient (REINFORCE) agent (paper §2.3, §4.9). The P-head outputs
// submit/no-submit probabilities from the state-only input (action channel
// = 0); serving samples from that distribution (§4.4, non-deterministic
// policy). Training uses the Monte-Carlo policy-gradient estimator of
// Eq. 6 with a running-mean baseline to cut variance and a small entropy
// bonus to delay premature determinism.
#pragma once

#include <memory>

#include "nn/dual_head.hpp"
#include "nn/optimizer.hpp"
#include "util/rng.hpp"

namespace mirage::rl {

struct PgConfig {
  nn::FoundationType foundation = nn::FoundationType::kTransformer;
  nn::FoundationConfig net;
  float lr = 2e-3f;
  float grad_clip = 5.0f;
  float entropy_bonus = 0.02f;
  /// EMA factor for the reward baseline.
  float baseline_decay = 0.9f;
  /// Cap on decision steps trained per episode (uniform subsample when an
  /// episode is longer) — bounds the cost of pathological episodes.
  std::size_t max_steps_per_episode = 128;
  /// Initial submit-logit bias: exp(bias) odds of submitting per step. A
  /// value around -3 makes a fresh policy submit ~5% of the time per
  /// decision, so rollouts spread over the episode instead of all ending
  /// at the first step.
  float initial_submit_bias = -3.0f;
};

/// One rollout's training payload.
struct PgEpisode {
  std::vector<std::vector<float>> observations;  ///< action channel zeroed
  std::vector<int> actions;
  float reward = 0.0f;  ///< terminal shaped reward (credited to all steps)
};

class PgAgent {
 public:
  PgAgent(PgConfig config, std::uint64_t seed);

  /// P(submit) for an observation.
  float submit_probability(std::vector<float> observation);
  /// Sample an action from the policy.
  int act_sample(std::vector<float> observation, util::Rng& rng);
  /// Mode of the policy (used when serving deterministically).
  int act_greedy(std::vector<float> observation);

  /// One optimizer step over a batch of episodes; returns the surrogate
  /// loss. Updates the reward baseline.
  float update(const std::vector<PgEpisode>& episodes);

  nn::DualHeadModel& model() { return model_; }
  const PgConfig& config() const { return config_; }
  float baseline() const { return baseline_; }

 private:
  PgConfig config_;
  nn::DualHeadModel model_;
  std::unique_ptr<nn::Adam> optimizer_;
  float baseline_ = 0.0f;
  bool baseline_init_ = false;
};

}  // namespace mirage::rl

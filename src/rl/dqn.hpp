// Deep Q-Network agent (paper §2.2, §4.9). The Q function is the dual-head
// model's V-head over a transformer or MoE foundation; the action ordinal
// (+1 submit / -1 no-submit) is part of the input, so serving evaluates
// both actions with a 2-row batch and picks the argmax (§4.4, deterministic
// policy). Training regresses Q(s, a) onto the Eq.-8 terminal reward
// (Monte-Carlo targets — the paper credits every action in the episode with
// the observed outcome, so no next-state bootstrap/target network is
// needed). Exploration is epsilon-greedy (§4.9.2), which also guarantees
// episodes terminate.
#pragma once

#include <memory>

#include "nn/dual_head.hpp"
#include "nn/optimizer.hpp"
#include "rl/replay_buffer.hpp"

namespace mirage::rl {

struct DqnConfig {
  nn::FoundationType foundation = nn::FoundationType::kMoE;  ///< Mirage default (§6.3)
  nn::FoundationConfig net;
  float lr = 2e-3f;
  std::size_t batch_size = 32;
  float grad_clip = 5.0f;
  float huber_delta = 5.0f;
  // Epsilon-greedy schedule (linear decay per episode).
  float eps_start = 0.5f;
  float eps_end = 0.05f;
  std::size_t eps_decay_episodes = 100;
};

class DqnAgent {
 public:
  DqnAgent(DqnConfig config, std::uint64_t seed);

  /// Greedy action for the flattened observation (action channel ignored /
  /// overwritten): 1 iff Q(s, submit) > Q(s, no-submit).
  int act_greedy(std::vector<float> observation);

  /// Epsilon-greedy action using the schedule at `episode_index`.
  int act_epsilon_greedy(std::vector<float> observation, std::size_t episode_index,
                         util::Rng& rng);

  /// Q-values {q_no_submit, q_submit} for an observation.
  std::pair<float, float> q_pair(std::vector<float> observation);

  /// One optimizer step on a replay mini-batch; returns the Huber loss.
  float train_batch(const ReplayBuffer& buffer, util::Rng& rng);

  /// Supervised pre-training step on (obs, action, reward) samples
  /// (offline phase, §4.9.1); returns the loss.
  float pretrain_batch(const std::vector<const Experience*>& batch);

  nn::DualHeadModel& model() { return model_; }
  const DqnConfig& config() const { return config_; }
  float epsilon(std::size_t episode_index) const;

 private:
  float train_on(const std::vector<const Experience*>& batch);

  DqnConfig config_;
  nn::DualHeadModel model_;
  std::unique_ptr<nn::Adam> optimizer_;
};

}  // namespace mirage::rl

// Experience replay (paper §4.8): a shuffled cross-episode memory pool of
// (state, action, terminal reward) samples. Terminal-reward credit
// assignment follows Eq. 8 — every action in an episode is labeled with
// the episode's outcome reward — so samples are self-contained and no
// next-state bootstrap is required.
#pragma once

#include <cstddef>
#include <vector>

#include "util/rng.hpp"

namespace mirage::rl {

struct Experience {
  /// Flattened k*(m+1) observation with the action channel zeroed; the
  /// trainer writes the action ordinal in before the forward pass.
  std::vector<float> observation;
  int action = 0;      ///< 0 = no-submit, 1 = submit
  float reward = 0.0f; ///< shaped episode reward (Eq. 8)
};

class ReplayBuffer {
 public:
  explicit ReplayBuffer(std::size_t capacity) : capacity_(capacity) {}

  void add(Experience e);
  std::size_t size() const { return items_.size(); }
  std::size_t capacity() const { return capacity_; }
  bool empty() const { return items_.empty(); }

  /// Uniform random mini-batch (with replacement when n > size).
  std::vector<const Experience*> sample(std::size_t n, util::Rng& rng) const;

  const Experience& at(std::size_t i) const { return items_[i]; }

 private:
  std::size_t capacity_;
  std::size_t next_ = 0;  ///< ring cursor once full
  std::vector<Experience> items_;
};

/// Write the action-channel value into a flattened observation in place
/// (every frame's last slot).
void set_action_channel(std::vector<float>& observation, std::size_t history_len, float value);

}  // namespace mirage::rl

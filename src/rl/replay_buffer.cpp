#include "rl/replay_buffer.hpp"

#include <cassert>

#include "rl/state_encoder.hpp"

namespace mirage::rl {

void ReplayBuffer::add(Experience e) {
  if (items_.size() < capacity_) {
    items_.push_back(std::move(e));
  } else {
    items_[next_] = std::move(e);
    next_ = (next_ + 1) % capacity_;
  }
}

std::vector<const Experience*> ReplayBuffer::sample(std::size_t n, util::Rng& rng) const {
  assert(!items_.empty());
  std::vector<const Experience*> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto idx =
        static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(items_.size()) - 1));
    out.push_back(&items_[idx]);
  }
  return out;
}

void set_action_channel(std::vector<float>& observation, std::size_t history_len, float value) {
  // The frame width varies with the cluster's partition count; the action
  // channel is always the last slot of each frame.
  const std::size_t stride = observation.size() / history_len;
  assert(stride * history_len == observation.size() && stride >= kFrameDim);
  for (std::size_t i = 0; i < history_len; ++i) {
    observation[i * stride + (stride - 1)] = value;
  }
}

}  // namespace mirage::rl

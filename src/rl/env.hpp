// Provisioning episode environment (paper §5.1): wraps the Slurm simulator
// in the agent-facing sample()/step()/submit() loop for one
// predecessor/successor pair.
//
// Timeline of an episode anchored at trace time t0:
//   [t0 - warmup, t0)   background-only warm-up; state frames are recorded
//                       every decision interval so the history window is
//                       populated before the first decision;
//   t0                  the predecessor sub-job is submitted;
//   t0 + i*interval     decision instants: the agent chooses submit /
//                       no-submit for the successor;
//   pred end            if the successor was never submitted it is
//                       submitted now (reactive fallback), ending the
//                       decision phase;
//   succ start          outcome (interruption or overlap) is revealed.
#pragma once

#include <cstdint>
#include <optional>

#include "rl/reward.hpp"
#include "rl/state_encoder.hpp"
#include "sim/simulator.hpp"

namespace mirage::rl {

struct EpisodeConfig {
  /// Sub-job shape: the paper evaluates 48 h x {1, 8} node pairs.
  util::SimTime job_runtime = 48 * util::kHour;
  util::SimTime job_limit = 48 * util::kHour;
  std::int32_t job_nodes = 1;

  util::SimTime decision_interval = 10 * util::kMinute;  ///< paper default
  util::SimTime warmup = 2 * util::kDay;                 ///< paper §4.9.1
  std::size_t history_len = 24;                          ///< k frames

  RewardConfig reward;

  /// Safety valve: force-submit this long after the predecessor ends if an
  /// agent somehow still hasn't (episodes always terminate).
  util::SimTime max_horizon = 14 * util::kDay;

  /// Cluster partition layout for the episode simulator; empty = one
  /// partition of the env's cluster_nodes (the pre-partition behavior).
  /// Pipelines fill this from the preset so partition identity reaches
  /// training episodes end to end.
  std::vector<sim::Partition> partitions;

  /// Timed capacity events (outages, preemption bursts, drains, restores,
  /// correlated failures) replayed inside every episode simulator, so
  /// capacity incidents shape the training/evaluation episodes themselves
  /// — not just the background cell metrics. Times are absolute trace
  /// times, like the background workload's.
  std::vector<sim::ClusterEvent> cluster_events;
};

/// One provisioning episode over a trace window.
class ProvisionEnv {
 public:
  /// `background` must cover [t0 - warmup - history, t0 + horizon]; jobs
  /// outside the window are fine (they are simply replayed too) but cost
  /// simulation time — callers should pre-slice long traces. Taken by
  /// value: pass a freshly sliced window with std::move to skip the copy,
  /// or an lvalue to keep it (the collector reuses one window per anchor).
  ProvisionEnv(trace::Trace background, std::int32_t cluster_nodes,
               const EpisodeConfig& config, util::SimTime t0,
               sim::SchedulerConfig sched = {});

  /// True once the successor has been submitted (no more decisions).
  bool decision_phase_over() const { return successor_submitted_; }
  /// True once the outcome is known.
  bool done() const { return done_; }

  /// Current flattened model input with the given action-channel value.
  /// Returns an owned vector on purpose: every consumer (replay buffers,
  /// the batched engine) moves it into longer-lived storage.
  std::vector<float> observation(float action_value) const {
    return encoder_.flatten(action_value);
  }
  /// Compact features for the tree-based provisioners.
  std::vector<float> features() const;

  /// Apply one decision: action 1 = submit the successor now, 0 = wait one
  /// interval. Returns true while more decisions are pending.
  bool step(int action);

  /// Run the remainder of the episode (after submission) to the outcome.
  void finish();

  /// Number of decisions taken so far.
  std::size_t decisions() const { return decisions_; }
  /// Simulated time now.
  util::SimTime now() const { return sim_.now(); }
  /// Predecessor end time (known once it started: start + runtime).
  util::SimTime predecessor_end_estimate() const;
  /// Remaining predecessor runtime from now (by its limit; >=0).
  util::SimTime predecessor_remaining() const;
  /// Average wait of recently started jobs (for the "avg" heuristic).
  double recent_average_wait(util::SimTime window = util::kDay) const {
    return sim_.recent_average_wait(window);
  }

  /// Outcome and reward; valid after done().
  const EpisodeOutcome& outcome() const { return outcome_; }
  double reward() const { return reward_; }
  /// Successor queue wait (succ start - succ submit); valid after done().
  util::SimTime successor_wait() const { return successor_wait_; }
  /// When the successor was submitted, relative to t0.
  util::SimTime submit_offset() const { return submit_offset_; }

  const EpisodeConfig& config() const { return config_; }

 private:
  void record_frame();
  JobPairContext context() const;
  void submit_successor();

  EpisodeConfig config_;
  sim::Simulator sim_;
  StateEncoder encoder_;
  util::SimTime t0_;
  sim::JobId pred_id_ = -1;
  sim::JobId succ_id_ = -1;
  bool successor_submitted_ = false;
  bool done_ = false;
  std::size_t decisions_ = 0;
  EpisodeOutcome outcome_;
  double reward_ = 0.0;
  util::SimTime successor_wait_ = 0;
  util::SimTime submit_offset_ = 0;
  sim::StateSample sample_scratch_;  ///< reused by record_frame every tick
};

/// Slice `full` to the window an episode at t0 needs (plus margin for jobs
/// submitted earlier that still run into the window).
trace::Trace slice_for_episode(const trace::Trace& full, util::SimTime t0,
                               const EpisodeConfig& config);

}  // namespace mirage::rl

// Chained sub-job execution (§4.1): a user job J partitioned into n
// sub-jobs J1..Jn forms a rolling predecessor/successor chain — when J2 is
// submitted per the model's decision it becomes the predecessor and J3 the
// successor, and so on. This walks a whole chain under one provisioning
// policy and accumulates the service-level outcome.
//
// Each link runs as an independent episode window anchored where the
// previous link left the service (anchor advances by the sub-job runtime
// plus any interruption). This window-per-link approximation keeps links
// O(window) instead of simulating the full multi-week span, and is exact
// whenever consecutive windows overlap the same background backlog.
#pragma once

#include <functional>
#include <vector>

#include "rl/env.hpp"

namespace mirage::rl {

/// Decision callback: given the env at a decision instant, return 1 to
/// submit the successor now. (core::Provisioner adapts onto this.)
using ChainPolicy = std::function<int(const ProvisionEnv&)>;

struct ChainLinkResult {
  EpisodeOutcome outcome;
  double reward = 0.0;
  util::SimTime submit_offset = 0;   ///< successor submit time - link anchor
  util::SimTime successor_wait = 0;
};

struct ChainResult {
  std::vector<ChainLinkResult> links;

  util::SimTime total_interruption() const;
  util::SimTime total_overlap() const;
  std::size_t zero_interruption_links() const;
  /// Fraction of the chain's ideal span lost to interruptions.
  double downtime_fraction(util::SimTime sub_job_runtime) const;
};

/// Walk a chain of `links` sub-jobs starting at `t0`.
ChainResult run_chain(const trace::Trace& background_full, std::int32_t cluster_nodes,
                      const EpisodeConfig& episode_config, util::SimTime t0, std::size_t links,
                      const ChainPolicy& policy);

}  // namespace mirage::rl

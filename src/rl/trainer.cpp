#include "rl/trainer.hpp"

#include <algorithm>
#include <numeric>

#include "util/stats.hpp"
#include "util/thread_pool.hpp"

namespace mirage::rl {

using util::SimTime;

std::vector<float> pretrain_foundation(DqnAgent& agent, std::span<const Experience> samples,
                                       const PretrainConfig& config) {
  std::vector<float> epoch_losses;
  if (samples.empty()) return epoch_losses;
  util::Rng rng(config.seed);
  std::vector<std::size_t> order(samples.size());
  std::iota(order.begin(), order.end(), 0);

  for (std::size_t epoch = 0; epoch < config.epochs; ++epoch) {
    rng.shuffle(order);
    util::RunningStats loss_stats;
    for (std::size_t begin = 0; begin < order.size(); begin += config.batch_size) {
      const std::size_t end = std::min(begin + config.batch_size, order.size());
      std::vector<const Experience*> batch;
      batch.reserve(end - begin);
      for (std::size_t i = begin; i < end; ++i) batch.push_back(&samples[order[i]]);
      loss_stats.add(agent.pretrain_batch(batch));
    }
    epoch_losses.push_back(static_cast<float>(loss_stats.mean()));
  }
  return epoch_losses;
}

namespace {

/// Uniform anchor times away from the range edges (an episode needs warmup
/// before t0 and horizon after).
SimTime sample_anchor(util::Rng& rng, SimTime begin, SimTime end, const EpisodeConfig& ec) {
  const SimTime lo = begin + ec.warmup;
  const SimTime hi = std::max(lo + 1, end - ec.max_horizon);
  return lo + static_cast<SimTime>(rng.uniform() * static_cast<double>(hi - lo));
}

struct Rollout {
  std::vector<Experience> experiences;  ///< DQN: subsampled steps
  PgEpisode pg;                         ///< PG: full payload
  float reward = 0.0f;
};

/// Roll one DQN episode with epsilon-greedy actions from `policy`.
Rollout rollout_dqn(DqnAgent& policy, const trace::Trace& full, std::int32_t nodes,
                    const EpisodeConfig& ec, SimTime t0, std::size_t episode_index,
                    std::size_t max_no_submit, util::Rng rng) {
  Rollout r;
  trace::Trace window = slice_for_episode(full, t0, ec);
  ProvisionEnv env(std::move(window), nodes, ec, t0);
  std::vector<Experience> no_submit;
  for (;;) {
    std::vector<float> obs = env.observation(0.0f);
    const int action = policy.act_epsilon_greedy(obs, episode_index, rng);
    if (action == 1) {
      r.experiences.push_back(Experience{std::move(obs), 1, 0.0f});
      env.step(1);
      break;
    }
    no_submit.push_back(Experience{std::move(obs), 0, 0.0f});
    if (!env.step(0)) break;  // reactive fallback fired
  }
  if (!env.done()) env.finish();
  r.reward = static_cast<float>(env.reward());

  rng.shuffle(no_submit);
  const std::size_t take = std::min(no_submit.size(), max_no_submit);
  for (std::size_t i = 0; i < take; ++i) r.experiences.push_back(std::move(no_submit[i]));
  for (auto& e : r.experiences) e.reward = r.reward;
  return r;
}

/// Roll one PG episode, sampling actions from `policy`.
Rollout rollout_pg(PgAgent& policy, const trace::Trace& full, std::int32_t nodes,
                   const EpisodeConfig& ec, SimTime t0, util::Rng rng) {
  Rollout r;
  trace::Trace window = slice_for_episode(full, t0, ec);
  ProvisionEnv env(std::move(window), nodes, ec, t0);
  for (;;) {
    std::vector<float> obs = env.observation(0.0f);
    const int action = policy.act_sample(obs, rng);
    r.pg.observations.push_back(std::move(obs));
    r.pg.actions.push_back(action);
    if (action == 1) {
      env.step(1);
      break;
    }
    if (!env.step(0)) break;
  }
  if (!env.done()) env.finish();
  r.reward = static_cast<float>(env.reward());
  r.pg.reward = r.reward;
  return r;
}

void fill_report(OnlineTrainReport& report, const std::vector<float>& rewards) {
  report.episodes = rewards.size();
  if (rewards.empty()) return;
  const std::size_t q = std::max<std::size_t>(1, rewards.size() / 4);
  double first = 0.0, last = 0.0;
  for (std::size_t i = 0; i < q; ++i) first += rewards[i];
  for (std::size_t i = rewards.size() - q; i < rewards.size(); ++i) last += rewards[i];
  report.mean_reward_first_quarter = first / static_cast<double>(q);
  report.mean_reward_last_quarter = last / static_cast<double>(q);
}

}  // namespace

OnlineTrainReport train_dqn_online(DqnAgent& agent, const trace::Trace& full,
                                   std::int32_t cluster_nodes, const EpisodeConfig& episode_config,
                                   SimTime range_begin, SimTime range_end,
                                   const OnlineTrainConfig& config,
                                   std::span<const Experience> seed_samples) {
  OnlineTrainReport report;
  ReplayBuffer buffer(config.replay_capacity);
  for (const auto& e : seed_samples) buffer.add(e);

  util::Rng rng(config.seed);
  std::vector<float> rewards;
  std::size_t episode_index = 0;

  while (episode_index < config.episodes) {
    const std::size_t n = std::min(config.episodes_per_round, config.episodes - episode_index);
    // Snapshot the policy once per round; workers explore independently.
    std::vector<Rollout> rollouts(n);
    std::vector<SimTime> anchors(n);
    std::vector<util::Rng> rngs;
    rngs.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      anchors[i] = sample_anchor(rng, range_begin, range_end, episode_config);
      rngs.push_back(rng.split());
    }
    DqnAgent snapshot(agent.config(), /*seed=*/1);
    snapshot.model().copy_params_from(agent.model());

    auto run_one = [&](std::size_t i) {
      // Each worker needs its own model instance (forward caches are not
      // thread-safe): clone from the snapshot.
      DqnAgent worker(snapshot.config(), /*seed=*/1);
      worker.model().copy_params_from(snapshot.model());
      rollouts[i] = rollout_dqn(worker, full, cluster_nodes, episode_config, anchors[i],
                                episode_index + i, config.max_no_submit_per_episode, rngs[i]);
    };
    if (config.parallel) {
      util::ThreadPool::global().parallel_for(n, run_one);
    } else {
      for (std::size_t i = 0; i < n; ++i) run_one(i);
    }

    for (auto& r : rollouts) {
      rewards.push_back(r.reward);
      for (auto& e : r.experiences) buffer.add(std::move(e));
    }
    episode_index += n;

    util::RunningStats round_loss;
    for (std::size_t s = 0; s < config.train_steps_per_round && !buffer.empty(); ++s) {
      round_loss.add(agent.train_batch(buffer, rng));
    }
    report.losses.push_back(static_cast<float>(round_loss.mean()));
  }
  fill_report(report, rewards);
  return report;
}

OnlineTrainReport train_pg_online(PgAgent& agent, const trace::Trace& full,
                                  std::int32_t cluster_nodes, const EpisodeConfig& episode_config,
                                  SimTime range_begin, SimTime range_end,
                                  const OnlineTrainConfig& config) {
  OnlineTrainReport report;
  util::Rng rng(config.seed);
  std::vector<float> rewards;
  std::size_t episode_index = 0;

  while (episode_index < config.episodes) {
    const std::size_t n = std::min(config.episodes_per_round, config.episodes - episode_index);
    std::vector<Rollout> rollouts(n);
    std::vector<SimTime> anchors(n);
    std::vector<util::Rng> rngs;
    rngs.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      anchors[i] = sample_anchor(rng, range_begin, range_end, episode_config);
      rngs.push_back(rng.split());
    }
    PgAgent snapshot(agent.config(), /*seed=*/1);
    snapshot.model().copy_params_from(agent.model());

    auto run_one = [&](std::size_t i) {
      PgAgent worker(snapshot.config(), /*seed=*/1);
      worker.model().copy_params_from(snapshot.model());
      rollouts[i] =
          rollout_pg(worker, full, cluster_nodes, episode_config, anchors[i], rngs[i]);
    };
    if (config.parallel) {
      util::ThreadPool::global().parallel_for(n, run_one);
    } else {
      for (std::size_t i = 0; i < n; ++i) run_one(i);
    }

    std::vector<PgEpisode> batch;
    batch.reserve(n);
    for (auto& r : rollouts) {
      rewards.push_back(r.reward);
      batch.push_back(std::move(r.pg));
    }
    episode_index += n;
    report.losses.push_back(agent.update(batch));
  }
  fill_report(report, rewards);
  return report;
}

}  // namespace mirage::rl

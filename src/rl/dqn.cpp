#include "rl/dqn.hpp"

#include <algorithm>

#include "nn/loss.hpp"

namespace mirage::rl {

namespace {
constexpr float kSubmitOrdinal = 1.0f;
constexpr float kNoSubmitOrdinal = -1.0f;

float ordinal(int action) { return action == 1 ? kSubmitOrdinal : kNoSubmitOrdinal; }
}  // namespace

DqnAgent::DqnAgent(DqnConfig config, std::uint64_t seed)
    : config_(config), model_(config.foundation, config.net, seed) {
  optimizer_ = std::make_unique<nn::Adam>(model_.q_parameters(), config_.lr);
}

std::pair<float, float> DqnAgent::q_pair(std::vector<float> observation) {
  const std::size_t k = config_.net.history_len;
  nn::Tensor x(2, observation.size());
  set_action_channel(observation, k, kNoSubmitOrdinal);
  std::copy(observation.begin(), observation.end(), x.row(0));
  set_action_channel(observation, k, kSubmitOrdinal);
  std::copy(observation.begin(), observation.end(), x.row(1));
  nn::Tensor q = model_.forward_q(x, /*train=*/false);
  return {q.at(0, 0), q.at(1, 0)};
}

int DqnAgent::act_greedy(std::vector<float> observation) {
  const auto [q_wait, q_submit] = q_pair(std::move(observation));
  return q_submit > q_wait ? 1 : 0;
}

float DqnAgent::epsilon(std::size_t episode_index) const {
  if (config_.eps_decay_episodes == 0) return config_.eps_end;
  const float frac = std::min(
      1.0f, static_cast<float>(episode_index) / static_cast<float>(config_.eps_decay_episodes));
  return config_.eps_start + frac * (config_.eps_end - config_.eps_start);
}

int DqnAgent::act_epsilon_greedy(std::vector<float> observation, std::size_t episode_index,
                                 util::Rng& rng) {
  if (rng.uniform() < epsilon(episode_index)) {
    // Biased random exploration: submitting ends the decision phase, so a
    // fair coin would make exploratory episodes submit almost immediately;
    // a small submit probability explores the length of the episode.
    return rng.bernoulli(0.05) ? 1 : 0;
  }
  return act_greedy(std::move(observation));
}

float DqnAgent::train_on(const std::vector<const Experience*>& batch) {
  const std::size_t k = config_.net.history_len;
  nn::Tensor x(batch.size(), batch.front()->observation.size());
  nn::Tensor target(batch.size(), 1);
  std::vector<float> obs;
  for (std::size_t b = 0; b < batch.size(); ++b) {
    obs = batch[b]->observation;
    set_action_channel(obs, k, ordinal(batch[b]->action));
    std::copy(obs.begin(), obs.end(), x.row(b));
    target.at(b, 0) = batch[b]->reward;
  }
  optimizer_->zero_grad();
  nn::Tensor pred = model_.forward_q(x, /*train=*/true);
  auto [loss, grad] = nn::huber_loss(pred, target, config_.huber_delta);
  model_.backward_q(grad);
  nn::clip_grad_norm(optimizer_->params(), config_.grad_clip);
  optimizer_->step();
  return loss;
}

float DqnAgent::train_batch(const ReplayBuffer& buffer, util::Rng& rng) {
  if (buffer.empty()) return 0.0f;
  return train_on(buffer.sample(config_.batch_size, rng));
}

float DqnAgent::pretrain_batch(const std::vector<const Experience*>& batch) {
  if (batch.empty()) return 0.0f;
  return train_on(batch);
}

}  // namespace mirage::rl

#include "rl/offline_collector.hpp"

#include <algorithm>
#include <mutex>

#include "util/thread_pool.hpp"

namespace mirage::rl {

using util::SimTime;

OfflineCollector::OfflineCollector(const trace::Trace& full, std::int32_t cluster_nodes,
                                   EpisodeConfig episode_config, CollectorConfig collector_config)
    : full_(full), nodes_(cluster_nodes), episode_config_(episode_config),
      config_(collector_config) {}

OfflineCollector::AnchorResult OfflineCollector::collect_anchor(SimTime t0, util::Rng rng) const {
  AnchorResult result;
  const trace::Trace window = slice_for_episode(full_, t0, episode_config_);

  // Reactive probe first: reveals the predecessor's end (and hence the
  // probe offsets) for this anchor.
  SimTime pred_span;
  {
    ProvisionEnv env(window, nodes_, episode_config_, t0);
    while (env.step(0)) {
    }
    env.finish();
    pred_span = std::max<SimTime>(env.config().decision_interval,
                                  env.predecessor_end_estimate() - t0);
    // The reactive probe itself is a (submit at pred end) sample.
    Experience e;
    e.observation = env.observation(0.0f);
    e.action = 1;
    e.reward = static_cast<float>(env.reward());
    result.nn.push_back(std::move(e));
    result.tabular.emplace_back(env.features(), static_cast<float>(util::to_hours(env.successor_wait())));
  }

  for (std::size_t p = 0; p + 1 < config_.probes; ++p) {
    // Fractions (p+1)/probes of the predecessor span; the reactive probe
    // above covers fraction 1.
    const double frac = static_cast<double>(p + 1) / static_cast<double>(config_.probes);
    const SimTime target = t0 + static_cast<SimTime>(frac * static_cast<double>(pred_span));

    ProvisionEnv env(window, nodes_, episode_config_, t0);
    std::vector<std::pair<std::vector<float>, std::vector<float>>> no_submit_states;
    while (!env.decision_phase_over() && env.now() < target) {
      // Reservoir-free subsample of intermediate states.
      if (rng.bernoulli(0.15) && no_submit_states.size() < config_.no_submit_samples * 3) {
        no_submit_states.emplace_back(env.observation(0.0f), env.features());
      }
      if (!env.step(0)) break;
    }
    std::vector<float> submit_obs;
    std::vector<float> submit_features;
    if (!env.decision_phase_over()) {
      submit_obs = env.observation(0.0f);
      submit_features = env.features();
      env.step(1);
    }
    if (!env.done()) env.finish();
    const auto reward = static_cast<float>(env.reward());

    if (!submit_obs.empty()) {
      result.nn.push_back(Experience{std::move(submit_obs), 1, reward});
      result.tabular.emplace_back(std::move(submit_features),
                                  static_cast<float>(util::to_hours(env.successor_wait())));
    }
    rng.shuffle(no_submit_states);
    const std::size_t take = std::min(no_submit_states.size(), config_.no_submit_samples);
    for (std::size_t i = 0; i < take; ++i) {
      result.nn.push_back(Experience{std::move(no_submit_states[i].first), 0, reward});
    }
  }
  return result;
}

OfflineDataset OfflineCollector::collect(SimTime range_begin, SimTime range_end) const {
  OfflineDataset dataset;
  util::Rng seeder(config_.seed);
  std::vector<SimTime> anchors(config_.anchors);
  std::vector<util::Rng> rngs;
  rngs.reserve(config_.anchors);
  for (auto& t0 : anchors) {
    t0 = range_begin +
         static_cast<SimTime>(seeder.uniform() * static_cast<double>(range_end - range_begin));
    rngs.push_back(seeder.split());
  }

  std::vector<AnchorResult> results(anchors.size());
  auto run_one = [&](std::size_t i) { results[i] = collect_anchor(anchors[i], rngs[i]); };
  if (config_.parallel) {
    util::ThreadPool::global().parallel_for(anchors.size(), run_one);
  } else {
    for (std::size_t i = 0; i < anchors.size(); ++i) run_one(i);
  }

  for (auto& r : results) {
    for (auto& e : r.nn) dataset.nn_samples.push_back(std::move(e));
    for (auto& [features, wait] : r.tabular) dataset.tabular.add_row(features, wait);
  }
  return dataset;
}

}  // namespace mirage::rl

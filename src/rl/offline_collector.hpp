// Offline sample collection (paper §4.9.1): for each sampled anchor time
// t0 an experimentation episode submits the predecessor at t0 and probes
// successor submission at evenly split points between t0 and the
// predecessor's end; each probe yields
//   * (state-at-submit, submit, reward)      NN samples,
//   * (state-at-step, no-submit, reward)     NN samples at a few
//     intermediate decision instants (Eq. 8 credits the whole sequence),
//   * (summary-features-at-submit, observed successor wait)  tabular
//     samples for the Random Forest / XGBoost baselines.
// Anchors are processed in parallel; each probe runs its own simulator.
#pragma once

#include "ml/dataset.hpp"
#include "rl/env.hpp"
#include "rl/replay_buffer.hpp"

namespace mirage::rl {

struct CollectorConfig {
  std::size_t anchors = 40;
  std::size_t probes = 7;                 ///< paper: 7 split points
  std::size_t no_submit_samples = 3;      ///< intermediate samples per probe
  std::uint64_t seed = 7;
  bool parallel = true;
};

struct OfflineDataset {
  std::vector<Experience> nn_samples;
  ml::Dataset tabular{summary_feature_count()};  ///< target: wait in hours
};

class OfflineCollector {
 public:
  OfflineCollector(const trace::Trace& full, std::int32_t cluster_nodes,
                   EpisodeConfig episode_config, CollectorConfig collector_config);

  /// Collect from anchors uniform in [range_begin, range_end).
  OfflineDataset collect(util::SimTime range_begin, util::SimTime range_end) const;

 private:
  struct AnchorResult {
    std::vector<Experience> nn;
    std::vector<std::pair<std::vector<float>, float>> tabular;
  };
  AnchorResult collect_anchor(util::SimTime t0, util::Rng rng) const;

  const trace::Trace& full_;
  std::int32_t nodes_;
  EpisodeConfig episode_config_;
  CollectorConfig config_;
};

}  // namespace mirage::rl

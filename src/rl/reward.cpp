#include "rl/reward.hpp"

#include <algorithm>

namespace mirage::rl {

double shaped_reward(const EpisodeOutcome& outcome, const RewardConfig& config) {
  if (outcome.interruption > 0) {
    return -config.e_interrupt * util::to_hours(outcome.interruption);
  }
  return -config.e_overlap * util::to_hours(outcome.overlap);
}

EpisodeOutcome make_outcome(util::SimTime pred_end, util::SimTime succ_start,
                            util::SimTime succ_runtime) {
  EpisodeOutcome o;
  if (succ_start >= pred_end) {
    o.interruption = succ_start - pred_end;
  } else {
    o.overlap = std::min(pred_end - succ_start, succ_runtime);
  }
  return o;
}

}  // namespace mirage::rl

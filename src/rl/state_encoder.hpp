// State encoding (paper §4.1-4.3).
//
// Each 10-minute snapshot is a 40-variable frame:
//   queue state   (var 1-16): count + five-number summaries of queued
//                  sizes, ages and runtime limits;
//   server state  (var 17-34): running count + 7-stat summary of sizes
//                  (five-number + mean + total) and five-number summaries
//                  of elapsed runtime and limits;
//   predecessor   (var 35-38): size, limit, queue wait, elapsed runtime;
//   successor     (var 39-40): size, limit.
// On multi-partition clusters each frame additionally carries one
// free-capacity fraction per partition (free/total, index order), so
// capacity events — outages, drains, preemption bursts — are visible to
// the agent per pool. Single-partition frames stay exactly 40 variables,
// keeping every pre-partition model input (and checkpoint) bitwise valid.
//
// A history of k frames plus a per-frame ordinal action channel (+1
// submit / -1 no-submit for the Q-head, 0 for the P-head) flattens to the
// k*(40 [+ partitions] + 1) model input.
//
// All variables are normalized to O(1): node counts by cluster size, times
// by the 48 h wall limit, counts by log1p/8.
#pragma once

#include <vector>

#include "sim/simulator.hpp"

namespace mirage::rl {

inline constexpr std::size_t kStateVars = 40;
inline constexpr std::size_t kFrameDim = kStateVars + 1;  ///< + action channel

/// Frame variables for a cluster with `partition_count` partitions: the 40
/// base variables plus one free-fraction per partition when there is more
/// than one.
inline std::size_t frame_vars(std::size_t partition_count) {
  return kStateVars + (partition_count > 1 ? partition_count : 0);
}
/// Flattened per-frame width including the action channel.
inline std::size_t frame_dim(std::size_t partition_count) {
  return frame_vars(partition_count) + 1;
}

/// Predecessor/successor job context for a provisioning episode (§4.1 c,d).
struct JobPairContext {
  std::int32_t pred_nodes = 1;
  util::SimTime pred_limit = 48 * util::kHour;
  util::SimTime pred_wait = 0;      ///< queue wait so far (or final)
  util::SimTime pred_elapsed = 0;   ///< elapsed runtime (0 while pending)
  std::int32_t succ_nodes = 1;
  util::SimTime succ_limit = 48 * util::kHour;
};

/// Compute one normalized frame: kStateVars base variables, plus the
/// per-partition free fractions when the sample covers >1 partition.
std::vector<float> encode_frame(const sim::StateSample& sample, const JobPairContext& ctx);
/// In-place variant (clear + refill, reusing `out`'s storage) — the
/// allocation-free form the episode loop calls every decision tick.
void encode_frame_into(std::vector<float>& out, const sim::StateSample& sample,
                       const JobPairContext& ctx);

/// Compact summary features for the tree-based baselines (~22 dims):
/// the decision-relevant aggregates of the same state.
std::vector<float> summary_features(const sim::StateSample& sample, const JobPairContext& ctx);
std::size_t summary_feature_count();

/// Ring buffer of the last k frames; zero-padded until k frames are seen.
/// Frames live in one flat [k * frame_vars] buffer sized at construction,
/// so a steady-state push performs zero heap allocations.
class StateEncoder {
 public:
  explicit StateEncoder(std::size_t history_len, std::size_t partition_count = 1);

  void reset();
  void push(const sim::StateSample& sample, const JobPairContext& ctx);
  /// Store one already-encoded frame (must be frame_vars() wide). This is
  /// the WAL-replay path: re-pushing the journaled frame bytes reproduces
  /// the ring — count, slot position and float bits — exactly.
  void push_encoded(const float* frame, std::size_t size);

  std::size_t history_len() const { return k_; }
  std::size_t frames_seen() const { return frames_seen_; }
  /// Per-frame width excluding the action channel.
  std::size_t frame_vars() const { return frame_vars_; }
  /// Per-frame width including the action channel.
  std::size_t frame_dim() const { return frame_vars_ + 1; }
  /// The most recently pushed frame's encoded variables (the assembly
  /// scratch; valid until the next push). Journaling hook: lets a client
  /// log the exact bits the ring stored without re-encoding.
  const std::vector<float>& last_frame() const { return scratch_; }

  /// Flatten to [k * frame_dim()] with the given action channel value
  /// written into every frame (oldest frame first). The in-place variant
  /// reuses `out`'s storage for callers that hold a reusable buffer.
  std::vector<float> flatten(float action_value) const;
  void flatten_into(std::vector<float>& out, float action_value) const;

 private:
  void store_frame(const float* frame);

  std::size_t k_;
  std::size_t frame_vars_;
  std::size_t frames_seen_ = 0;
  std::size_t count_ = 0;          ///< frames held, <= k
  std::size_t next_ = 0;           ///< ring slot the next push writes
  std::vector<float> ring_;        ///< k_ * frame_vars_, slot-major
  std::vector<float> scratch_;     ///< per-push frame assembly buffer
};

}  // namespace mirage::rl

#include "rl/env.hpp"

#include <algorithm>
#include <cassert>

namespace mirage::rl {

using util::SimTime;

trace::Trace slice_for_episode(const trace::Trace& full, SimTime t0, const EpisodeConfig& config) {
  // Jobs submitted well before the window can still be queued or running at
  // t0; a 7-day lookback covers the 48 h limit plus heavy-month queue waits.
  const SimTime lookback = config.warmup + 7 * util::kDay;
  const SimTime begin = t0 - lookback;
  const SimTime end = t0 + config.max_horizon + config.job_limit;
  trace::Trace out;
  for (const auto& j : full) {
    if (j.submit_time >= begin && j.submit_time <= end) {
      trace::JobRecord copy = j;
      copy.start_time = trace::kUnsetTime;  // replay reassigns
      copy.end_time = trace::kUnsetTime;
      out.push_back(std::move(copy));
    }
  }
  return out;
}

namespace {
sim::ClusterModel episode_cluster(const EpisodeConfig& config, std::int32_t cluster_nodes) {
  if (config.partitions.empty()) return sim::ClusterModel(cluster_nodes);
  return sim::ClusterModel(config.partitions);
}
}  // namespace

ProvisionEnv::ProvisionEnv(trace::Trace background, std::int32_t cluster_nodes,
                           const EpisodeConfig& config, SimTime t0, sim::SchedulerConfig sched)
    : config_(config),
      sim_(episode_cluster(config, cluster_nodes), sched),
      encoder_(config.history_len, std::max<std::size_t>(1, config.partitions.size())),
      t0_(t0) {
  sim_.load_workload(std::move(background));
  for (const auto& ev : config_.cluster_events) sim_.schedule_cluster_event(ev);

  // Warm up the cluster, then record exactly k frames of pre-episode
  // history at the decision cadence.
  const SimTime history_span =
      static_cast<SimTime>(config_.history_len) * config_.decision_interval;
  sim_.run_until(t0 - history_span);
  while (sim_.now() < t0) {
    sim_.step(config_.decision_interval);
    record_frame();
  }

  trace::JobRecord pred;
  pred.job_id = -1;
  pred.job_name = "mirage_predecessor";
  pred.user_id = -1;
  pred.num_nodes = config_.job_nodes;
  pred.actual_runtime = config_.job_runtime;
  pred.time_limit = config_.job_limit;
  pred_id_ = sim_.submit(pred);
  record_frame();
}

JobPairContext ProvisionEnv::context() const {
  JobPairContext ctx;
  ctx.succ_nodes = config_.job_nodes;
  ctx.succ_limit = config_.job_limit;
  if (pred_id_ < 0) return ctx;  // pre-episode frames: successor info only
  ctx.pred_nodes = config_.job_nodes;
  ctx.pred_limit = config_.job_limit;
  const auto status = sim_.status(pred_id_);
  const auto& pred = sim_.job(pred_id_);
  if (status == sim::JobStatus::kPending || status == sim::JobStatus::kPreempted) {
    ctx.pred_wait = sim_.now() - pred.submit_time;
  } else if (status != sim::JobStatus::kFuture) {
    ctx.pred_wait = sim_.start_time(pred_id_) - pred.submit_time;
    ctx.pred_elapsed = std::min(sim_.now(), sim_.start_time(pred_id_) + config_.job_runtime) -
                       sim_.start_time(pred_id_);
  }
  return ctx;
}

void ProvisionEnv::record_frame() {
  sim_.sample_into(sample_scratch_);  // reuses the scratch's vector storage
  encoder_.push(sample_scratch_, context());
}

std::vector<float> ProvisionEnv::features() const {
  return summary_features(sim_.sample(), context());
}

SimTime ProvisionEnv::predecessor_end_estimate() const {
  if (pred_id_ < 0) return t0_ + config_.job_limit;
  const auto status = sim_.status(pred_id_);
  if (status == sim::JobStatus::kCompleted || status == sim::JobStatus::kKilled) {
    return sim_.end_time(pred_id_);
  }
  if (status == sim::JobStatus::kRunning) {
    return sim_.start_time(pred_id_) + std::min(config_.job_runtime, config_.job_limit);
  }
  return trace::kUnsetTime;  // still queued (or awaiting requeue): unknown
}

SimTime ProvisionEnv::predecessor_remaining() const {
  const SimTime end = predecessor_end_estimate();
  if (end == trace::kUnsetTime) return config_.job_limit;  // not started: full job ahead
  return std::max<SimTime>(0, end - sim_.now());
}

void ProvisionEnv::submit_successor() {
  assert(!successor_submitted_);
  trace::JobRecord succ;
  succ.job_id = -2;
  succ.job_name = "mirage_successor";
  succ.user_id = -1;
  succ.num_nodes = config_.job_nodes;
  succ.actual_runtime = config_.job_runtime;
  succ.time_limit = config_.job_limit;
  succ_id_ = sim_.submit(succ);
  successor_submitted_ = true;
  submit_offset_ = sim_.now() - t0_;
}

bool ProvisionEnv::step(int action) {
  if (done_) return false;
  ++decisions_;

  if (action == 1 && !successor_submitted_) {
    submit_successor();
    finish();
    return false;
  }

  // Reactive fallback: if the predecessor finishes within the next
  // interval, submit the successor exactly at the completion instant.
  const SimTime pred_end = predecessor_end_estimate();
  if (pred_end != trace::kUnsetTime && pred_end <= sim_.now() + config_.decision_interval) {
    sim_.run_until(pred_end);
    if (!successor_submitted_) submit_successor();
    finish();
    return false;
  }
  // Safety valve against runaway episodes.
  if (sim_.now() - t0_ > config_.max_horizon) {
    if (!successor_submitted_) submit_successor();
    finish();
    return false;
  }

  sim_.step(config_.decision_interval);
  record_frame();
  return true;
}

void ProvisionEnv::finish() {
  assert(successor_submitted_);
  if (done_) return;
  sim_.run_until_started(succ_id_);
  sim_.run_until_complete(pred_id_);
  // Capacity events can strand a sub-job (e.g. an outage that never
  // restores kills the predecessor or leaves the successor queued when the
  // event stream runs dry). Fall back to the final simulator instant so
  // the episode still yields a well-defined (worst-case) outcome.
  SimTime pred_end = sim_.end_time(pred_id_);
  SimTime succ_start = sim_.start_time(succ_id_);
  if (pred_end == trace::kUnsetTime) pred_end = sim_.now();
  if (succ_start == trace::kUnsetTime) succ_start = sim_.now();
  successor_wait_ = succ_start - sim_.job(succ_id_).submit_time;
  outcome_ = make_outcome(pred_end, succ_start, config_.job_runtime);
  reward_ = shaped_reward(outcome_, config_.reward);
  done_ = true;
}

}  // namespace mirage::rl

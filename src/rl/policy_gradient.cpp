#include "rl/policy_gradient.hpp"

#include <algorithm>
#include <cmath>

#include "nn/loss.hpp"
#include "rl/replay_buffer.hpp"
#include "rl/state_encoder.hpp"

namespace mirage::rl {

PgAgent::PgAgent(PgConfig config, std::uint64_t seed)
    : config_(config), model_(config.foundation, config.net, seed) {
  model_.policy_head().bias().value.at(0, 1) = config_.initial_submit_bias;
  optimizer_ = std::make_unique<nn::Adam>(model_.policy_parameters(), config_.lr);
}

float PgAgent::submit_probability(std::vector<float> observation) {
  set_action_channel(observation, config_.net.history_len, 0.0f);
  nn::Tensor x(1, observation.size());
  std::copy(observation.begin(), observation.end(), x.row(0));
  nn::Tensor probs = model_.forward_policy(x, /*train=*/false);
  return probs.at(0, 1);
}

int PgAgent::act_sample(std::vector<float> observation, util::Rng& rng) {
  return rng.uniform() < submit_probability(std::move(observation)) ? 1 : 0;
}

int PgAgent::act_greedy(std::vector<float> observation) {
  return submit_probability(std::move(observation)) > 0.5f ? 1 : 0;
}

float PgAgent::update(const std::vector<PgEpisode>& episodes) {
  if (episodes.empty()) return 0.0f;

  // Gather (possibly subsampled) steps from all episodes into one batch.
  struct Step {
    const std::vector<float>* obs;
    int action;
    float advantage;
  };
  std::vector<Step> steps;
  float batch_reward_mean = 0.0f;
  for (const auto& ep : episodes) batch_reward_mean += ep.reward;
  batch_reward_mean /= static_cast<float>(episodes.size());

  if (!baseline_init_) {
    baseline_ = batch_reward_mean;
    baseline_init_ = true;
  }

  for (const auto& ep : episodes) {
    const float adv = ep.reward - baseline_;
    const std::size_t n = ep.observations.size();
    if (n == 0) continue;
    const std::size_t stride =
        std::max<std::size_t>(1, n / config_.max_steps_per_episode + (n % config_.max_steps_per_episode ? 1 : 0));
    for (std::size_t i = 0; i < n; i += stride) {
      steps.push_back({&ep.observations[i], ep.actions[i], adv});
    }
  }
  if (steps.empty()) return 0.0f;

  const std::size_t dim = steps.front().obs->size();
  nn::Tensor x(steps.size(), dim);
  std::vector<int> actions(steps.size());
  std::vector<float> advantages(steps.size());
  for (std::size_t i = 0; i < steps.size(); ++i) {
    std::copy(steps[i].obs->begin(), steps[i].obs->end(), x.row(i));
    actions[i] = steps[i].action;
    advantages[i] = steps[i].advantage;
  }

  optimizer_->zero_grad();
  nn::Tensor probs = model_.forward_policy(x, /*train=*/true);
  auto [loss, grad] = nn::policy_gradient_loss(probs, actions, advantages);

  // Entropy bonus: dH/dlogit_c = -p_c * (log p_c + H); subtracting
  // beta*dH/dlogit from the loss gradient encourages exploration.
  if (config_.entropy_bonus > 0.0f) {
    const float beta = config_.entropy_bonus / static_cast<float>(steps.size());
    for (std::size_t b = 0; b < probs.rows(); ++b) {
      float entropy = 0.0f;
      for (std::size_t c = 0; c < probs.cols(); ++c) {
        const float p = std::max(probs.at(b, c), 1e-12f);
        entropy -= p * std::log(p);
      }
      for (std::size_t c = 0; c < probs.cols(); ++c) {
        const float p = std::max(probs.at(b, c), 1e-12f);
        grad.at(b, c) += beta * p * (std::log(p) + entropy);
      }
    }
  }

  model_.backward_policy_logits(grad);
  nn::clip_grad_norm(optimizer_->params(), config_.grad_clip);
  optimizer_->step();

  baseline_ = config_.baseline_decay * baseline_ +
              (1.0f - config_.baseline_decay) * batch_reward_mean;
  return loss;
}

}  // namespace mirage::rl

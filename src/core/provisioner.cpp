#include "core/provisioner.hpp"

namespace mirage::core {

int AvgWaitProvisioner::decide(const rl::ProvisionEnv& env, util::Rng&) {
  const double t_avg = env.recent_average_wait(window_);
  return static_cast<double>(env.predecessor_remaining()) <= t_avg ? 1 : 0;
}

int WaitPredictionProvisioner::decide(const rl::ProvisionEnv& env, util::Rng&) {
  const auto features = env.features();
  const double predicted_wait_seconds =
      std::max(0.0, static_cast<double>(predictor_(features))) * 3600.0;
  return static_cast<double>(env.predecessor_remaining()) <= predicted_wait_seconds ? 1 : 0;
}

void drive_episode(Provisioner& provisioner, rl::ProvisionEnv& env, util::Rng& rng) {
  provisioner.reset();
  for (;;) {
    const int action = provisioner.decide(env, rng);
    if (action == 1) {
      env.step(1);
      break;
    }
    if (!env.step(0)) break;
  }
  if (!env.done()) env.finish();
}

}  // namespace mirage::core

#include "core/tuner.hpp"

#include <algorithm>
#include <numeric>

#include "nn/loss.hpp"

namespace mirage::core {

namespace {
/// Mean Huber loss of the agent's Q predictions on a sample set.
float evaluate_loss(rl::DqnAgent& agent, std::span<const rl::Experience*> samples) {
  if (samples.empty()) return 0.0f;
  const std::size_t k = agent.config().net.history_len;
  nn::Tensor x(samples.size(), samples.front()->observation.size());
  nn::Tensor target(samples.size(), 1);
  std::vector<float> obs;
  for (std::size_t i = 0; i < samples.size(); ++i) {
    obs = samples[i]->observation;
    rl::set_action_channel(obs, k, samples[i]->action == 1 ? 1.0f : -1.0f);
    std::copy(obs.begin(), obs.end(), x.row(i));
    target.at(i, 0) = samples[i]->reward;
  }
  auto pred = agent.model().forward_q(x, /*train=*/false);
  return nn::huber_loss(pred, target, agent.config().huber_delta).first;
}
}  // namespace

std::vector<TunerResult> grid_search(std::span<const rl::Experience> samples,
                                     const std::vector<TunerCandidate>& candidates,
                                     const TunerOptions& options) {
  std::vector<TunerResult> results;
  if (samples.empty()) return results;

  // Deterministic shuffled split shared by every candidate.
  util::Rng rng(options.seed);
  std::vector<std::size_t> order(samples.size());
  std::iota(order.begin(), order.end(), 0);
  rng.shuffle(order);
  const auto holdout =
      static_cast<std::size_t>(options.holdout_fraction * static_cast<double>(samples.size()));
  std::vector<rl::Experience> train_set;
  std::vector<const rl::Experience*> val_set;
  for (std::size_t i = 0; i < order.size(); ++i) {
    if (i < holdout) {
      val_set.push_back(&samples[order[i]]);
    } else {
      train_set.push_back(samples[order[i]]);
    }
  }

  for (const auto& candidate : candidates) {
    rl::DqnConfig dc;
    dc.foundation = candidate.type;
    dc.net = candidate.net;
    rl::DqnAgent agent(dc, options.seed ^ 0x717e);
    const auto losses = rl::pretrain_foundation(agent, train_set, options.pretrain);
    TunerResult r;
    r.candidate = candidate;
    r.train_loss = losses.empty() ? 0.0f : losses.back();
    std::vector<const rl::Experience*> train_ptrs;
    r.validation_loss = evaluate_loss(agent, val_set);
    results.push_back(std::move(r));
  }
  std::sort(results.begin(), results.end(), [](const TunerResult& a, const TunerResult& b) {
    return a.validation_loss < b.validation_loss;
  });
  return results;
}

std::vector<TunerCandidate> default_grid(const nn::FoundationConfig& base) {
  std::vector<TunerCandidate> out;
  for (std::size_t d_model : {8u, 16u, 32u}) {
    for (std::size_t layers : {1u, 2u}) {
      TunerCandidate c;
      c.net = base;
      c.net.d_model = d_model;
      c.net.num_layers = layers;
      c.net.ffn_hidden = 2 * d_model;
      c.type = nn::FoundationType::kTransformer;
      c.label = "tf d" + std::to_string(d_model) + " L" + std::to_string(layers);
      out.push_back(c);
    }
  }
  for (std::size_t experts : {2u, 4u}) {
    TunerCandidate c;
    c.net = base;
    c.net.moe_experts = experts;
    c.type = nn::FoundationType::kMoE;
    c.label = "moe E" + std::to_string(experts);
    out.push_back(c);
  }
  return out;
}

}  // namespace mirage::core

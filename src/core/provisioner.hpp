// Provisioner interface and the two heuristic baselines (paper §6):
//   reactive — submit the successor when the predecessor completes (the
//              common practice the paper improves upon);
//   avg      — monitor the average queue wait T_avg and submit T_avg
//              before the predecessor finishes.
#pragma once

#include <functional>
#include <memory>
#include <span>
#include <string>

#include "rl/env.hpp"
#include "util/rng.hpp"

namespace mirage::core {

/// A provisioning policy: one decision per 10-minute instant.
class Provisioner {
 public:
  virtual ~Provisioner() = default;
  virtual std::string name() const = 0;
  /// Called once per episode before the first decision.
  virtual void reset() {}
  /// 1 = submit the successor now, 0 = wait one interval.
  virtual int decide(const rl::ProvisionEnv& env, util::Rng& rng) = 0;
};

/// Factory so evaluation workers can build thread-local instances.
using ProvisionerFactory = std::function<std::unique_ptr<Provisioner>()>;

class ReactiveProvisioner : public Provisioner {
 public:
  std::string name() const override { return "reactive"; }
  int decide(const rl::ProvisionEnv&, util::Rng&) override { return 0; }
};

class AvgWaitProvisioner : public Provisioner {
 public:
  /// `window` is the look-back over which T_avg is measured.
  explicit AvgWaitProvisioner(util::SimTime window = util::kDay) : window_(window) {}
  std::string name() const override { return "avg"; }
  int decide(const rl::ProvisionEnv& env, util::Rng&) override;

 private:
  util::SimTime window_;
};

/// Generic wait-prediction provisioner: submit once the predicted successor
/// queue wait is at least the predecessor's remaining runtime. The Random
/// Forest / XGBoost baselines plug in as predictors.
class WaitPredictionProvisioner : public Provisioner {
 public:
  using Predictor = std::function<float(std::span<const float>)>;  ///< features -> wait hours

  WaitPredictionProvisioner(std::string name, Predictor predictor)
      : name_(std::move(name)), predictor_(std::move(predictor)) {}
  std::string name() const override { return name_; }
  int decide(const rl::ProvisionEnv& env, util::Rng&) override;

 private:
  std::string name_;
  Predictor predictor_;
};

/// Run one full episode under a provisioner. The env must be freshly
/// constructed; returns when the outcome is known.
void drive_episode(Provisioner& provisioner, rl::ProvisionEnv& env, util::Rng& rng);

}  // namespace mirage::core

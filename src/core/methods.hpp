// The eight methods the paper compares (§6): two heuristics, two ensemble
// learners, and the four {transformer, MoE} x {DQN, PG} RL combinations.
#pragma once

#include <string>
#include <vector>

namespace mirage::core {

enum class Method {
  kReactive,
  kAvg,
  kRandomForest,
  kXgboost,
  kTransformerDqn,
  kTransformerPg,
  kMoeDqn,   ///< Mirage's default model (§6.3)
  kMoePg,
};

std::string method_name(Method m);
/// All eight methods in the paper's presentation order.
std::vector<Method> all_methods();
bool is_rl_method(Method m);
bool is_statistical_method(Method m);

}  // namespace mirage::core

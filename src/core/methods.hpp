// The eight methods the paper compares (§6): two heuristics, two ensemble
// learners, and the four {transformer, MoE} x {DQN, PG} RL combinations.
#pragma once

#include <optional>
#include <string>
#include <vector>

namespace mirage::core {

enum class Method {
  kReactive,
  kAvg,
  kRandomForest,
  kXgboost,
  kTransformerDqn,
  kTransformerPg,
  kMoeDqn,   ///< Mirage's default model (§6.3)
  kMoePg,
};

std::string method_name(Method m);
/// Filename-safe lowercase identifier ("moe_dqn"), used for artifact
/// filenames and plan files where "MoE+DQN" would be hostile.
std::string method_file_name(Method m);
/// Inverse of both method_name and method_file_name; nullopt for unknown
/// names so plan parsers can fail loudly.
std::optional<Method> method_from_name(const std::string& name);
/// All eight methods in the paper's presentation order.
std::vector<Method> all_methods();
bool is_rl_method(Method m);
bool is_statistical_method(Method m);
/// Methods that produce a loadable checkpoint artifact (core::save_agent).
bool is_checkpointable_method(Method m);

}  // namespace mirage::core

#include "core/rl_provisioners.hpp"

namespace mirage::core {

ProvisionerFactory make_dqn_factory(std::string name, const rl::DqnAgent& trained) {
  return [name, &trained]() -> std::unique_ptr<Provisioner> {
    auto agent = std::make_unique<rl::DqnAgent>(trained.config(), /*seed=*/1);
    agent->model().copy_params_from(const_cast<rl::DqnAgent&>(trained).model());
    return std::make_unique<DqnProvisioner>(name, std::move(agent));
  };
}

ProvisionerFactory make_pg_factory(std::string name, const rl::PgAgent& trained) {
  return [name, &trained]() -> std::unique_ptr<Provisioner> {
    auto agent = std::make_unique<rl::PgAgent>(trained.config(), /*seed=*/1);
    agent->model().copy_params_from(const_cast<rl::PgAgent&>(trained).model());
    return std::make_unique<PgProvisioner>(name, std::move(agent));
  };
}

}  // namespace mirage::core

// Agent checkpointing: persist a trained DQN or PG agent together with
// enough architecture metadata that loading into a mismatched
// configuration fails loudly instead of silently mis-predicting. (The
// paper ships trained per-cluster models; §1 stresses models are
// cluster-specific.)
#pragma once

#include <optional>
#include <string>

#include "rl/dqn.hpp"
#include "rl/policy_gradient.hpp"

namespace mirage::core {

/// Serialized header fields checked on load.
struct CheckpointInfo {
  std::string kind;        ///< "dqn" | "pg"
  std::string foundation;  ///< "transformer" | "moe"
  std::size_t history_len = 0;
  std::size_t state_dim = 0;
  std::size_t d_model = 0;
  std::size_t moe_experts = 0;
  /// Top-1 routing changes serving semantics (select vs blend), so the
  /// serving tier must be able to recover it from the artifact alone.
  bool moe_top1 = false;
};

bool save_agent(rl::DqnAgent& agent, const std::string& path);
bool save_agent(rl::PgAgent& agent, const std::string& path);

/// Load into a pre-constructed agent; returns false (agent untouched) on
/// header/architecture mismatch or IO error.
bool load_agent(rl::DqnAgent& agent, const std::string& path);
bool load_agent(rl::PgAgent& agent, const std::string& path);

/// Peek at a checkpoint's header without constructing an agent.
std::optional<CheckpointInfo> read_checkpoint_info(const std::string& path);

}  // namespace mirage::core

#include "core/evaluator.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "util/thread_pool.hpp"

namespace mirage::core {

using util::SimTime;

LoadClass classify_load(SimTime reactive_wait) {
  if (reactive_wait > 12 * util::kHour) return LoadClass::kHeavy;
  if (reactive_wait >= 2 * util::kHour) return LoadClass::kMedium;
  return LoadClass::kLight;
}

namespace {
void accumulate(LoadAggregate& agg, const rl::EpisodeOutcome& outcome) {
  agg.interruption_hours.add(util::to_hours(outcome.interruption));
  agg.overlap_hours.add(util::to_hours(outcome.overlap));
  if (outcome.zero_interruption()) ++agg.zero_interruption;
  ++agg.episodes;
}
}  // namespace

Evaluator::Evaluator(const trace::Trace& full, std::int32_t cluster_nodes,
                     rl::EpisodeConfig episode_config, EvalConfig eval_config)
    : full_(full), nodes_(cluster_nodes), episode_config_(episode_config), config_(eval_config) {}

void Evaluator::prepare(SimTime range_begin, SimTime range_end) {
  anchors_.clear();
  reactive_eval_ = MethodEval{};
  reactive_eval_.method = "reactive";

  util::Rng rng(config_.seed);
  const SimTime lo = range_begin + episode_config_.warmup;
  const SimTime hi = std::max(lo + 1, range_end - episode_config_.max_horizon);
  anchors_.resize(config_.episodes);
  for (auto& a : anchors_) {
    a.t0 = lo + static_cast<SimTime>(rng.uniform() * static_cast<double>(hi - lo));
  }

  std::vector<rl::EpisodeOutcome> outcomes(anchors_.size());
  auto run_one = [&](std::size_t i) {
    trace::Trace window = slice_for_episode(full_, anchors_[i].t0, episode_config_);
    rl::ProvisionEnv env(std::move(window), nodes_, episode_config_, anchors_[i].t0);
    ReactiveProvisioner reactive;
    util::Rng episode_rng(config_.seed ^ (0x517cc1b7ull * (i + 1)));
    drive_episode(reactive, env, episode_rng);
    anchors_[i].reactive_wait = env.successor_wait();
    anchors_[i].load = classify_load(env.successor_wait());
    outcomes[i] = env.outcome();
  };
  if (config_.parallel) {
    util::ThreadPool::global().parallel_for(anchors_.size(), run_one);
  } else {
    for (std::size_t i = 0; i < anchors_.size(); ++i) run_one(i);
  }
  for (std::size_t i = 0; i < anchors_.size(); ++i) {
    accumulate(reactive_eval_.by_load[static_cast<std::size_t>(anchors_[i].load)], outcomes[i]);
    accumulate(reactive_eval_.overall, outcomes[i]);
  }
}

MethodEval Evaluator::evaluate(const std::string& name, const ProvisionerFactory& factory) const {
  MethodEval eval;
  eval.method = name;
  if (name == "reactive") return reactive_eval_;

  std::vector<rl::EpisodeOutcome> outcomes(anchors_.size());
  auto run_one = [&](std::size_t i) {
    trace::Trace window = slice_for_episode(full_, anchors_[i].t0, episode_config_);
    rl::ProvisionEnv env(std::move(window), nodes_, episode_config_, anchors_[i].t0);
    auto provisioner = factory();
    util::Rng episode_rng(config_.seed ^ (0x2545f491ull * (i + 1)));
    drive_episode(*provisioner, env, episode_rng);
    outcomes[i] = env.outcome();
  };
  if (config_.parallel) {
    util::ThreadPool::global().parallel_for(anchors_.size(), run_one);
  } else {
    for (std::size_t i = 0; i < anchors_.size(); ++i) run_one(i);
  }
  for (std::size_t i = 0; i < anchors_.size(); ++i) {
    accumulate(eval.by_load[static_cast<std::size_t>(anchors_[i].load)], outcomes[i]);
    accumulate(eval.overall, outcomes[i]);
  }
  return eval;
}

std::array<std::size_t, 3> Evaluator::load_histogram() const {
  std::array<std::size_t, 3> h{};
  for (const auto& a : anchors_) ++h[static_cast<std::size_t>(a.load)];
  return h;
}

std::string format_eval_table(const std::vector<MethodEval>& evals) {
  std::ostringstream out;
  char line[256];
  std::snprintf(line, sizeof(line), "%-18s %28s %28s %28s\n", "method",
                "heavy (int/ovl h, zero%)", "medium (int/ovl h, zero%)",
                "light (int/ovl h, zero%)");
  out << line;
  for (const auto& e : evals) {
    std::string cells[3];
    for (std::size_t c = 0; c < 3; ++c) {
      const auto& agg = e.by_load[c];
      char cell[64];
      if (agg.episodes == 0) {
        std::snprintf(cell, sizeof(cell), "-");
      } else {
        std::snprintf(cell, sizeof(cell), "%6.2f /%6.2f  %3.0f%% (n=%zu)",
                      agg.interruption_hours.mean(), agg.overlap_hours.mean(),
                      100.0 * agg.zero_interruption_fraction(), agg.episodes);
      }
      cells[c] = cell;
    }
    std::snprintf(line, sizeof(line), "%-18s %28s %28s %28s\n", e.method.c_str(),
                  cells[0].c_str(), cells[1].c_str(), cells[2].c_str());
    out << line;
  }
  return out.str();
}

}  // namespace mirage::core

// End-to-end Mirage pipeline (paper §5-§6): generate (or load) a cluster
// trace, split 80:20 into training and validation ranges, collect offline
// samples, train all requested methods on the training range, and evaluate
// them on the validation range. This is the entry point the benches and
// examples drive.
#pragma once

#include <map>
#include <memory>
#include <optional>

#include "core/evaluator.hpp"
#include "core/methods.hpp"
#include "core/rl_provisioners.hpp"
#include "ml/gbdt.hpp"
#include "ml/random_forest.hpp"
#include "rl/trainer.hpp"
#include "trace/generator.hpp"

namespace mirage::core {

struct PipelineConfig {
  trace::ClusterPreset preset = trace::v100_preset();
  trace::GeneratorOptions generator;

  rl::EpisodeConfig episode;          ///< job shape + decision cadence
  rl::CollectorConfig collector;      ///< offline sampling
  rl::PretrainConfig pretrain;
  rl::OnlineTrainConfig online;
  nn::FoundationConfig net;           ///< shared by all four RL variants
  ml::ForestParams forest;
  ml::GbdtParams gbdt;
  EvalConfig eval;

  double train_fraction = 0.8;        ///< paper's 80:20 split
  std::uint64_t seed = 1;

  /// Convenience: a compact configuration that trains in seconds per
  /// method on a laptop-class CPU while preserving the paper's structure
  /// (history window, dual heads, MoE, two-phase training). The paper-
  /// scale settings (k=144, 10-min cadence, 10 experts) remain reachable
  /// by overriding fields.
  static PipelineConfig compact(const trace::ClusterPreset& preset, std::int32_t job_nodes,
                                std::uint64_t seed);
};

class MiragePipeline {
 public:
  explicit MiragePipeline(PipelineConfig config);

  /// Generate the synthetic trace and compute the train/validation split.
  void prepare();

  /// Use an externally built workload instead of generating one — e.g. a
  /// scenario engine trace with burst jobs (scenario::build_workload). The
  /// train/validation split covers the workload's actual time span.
  void prepare(trace::Trace workload);

  /// Collect the offline dataset on the training range (§4.9.1a).
  void collect_offline();

  /// Train one method (no-op for heuristics). Requires collect_offline()
  /// for the statistical and RL methods.
  void train(Method method);
  /// Train every method in the list.
  void train_all(const std::vector<Method>& methods);

  /// Evaluate methods on the validation range; includes classification of
  /// anchors by the reactive baseline.
  std::vector<MethodEval> evaluate(const std::vector<Method>& methods);

  /// Provisioner factory for a trained (or heuristic) method.
  ProvisionerFactory factory(Method method) const;

  /// Persist a trained RL agent as a core::checkpoint artifact. Returns
  /// false when the method has no trained agent (heuristics, statistical
  /// methods, or train() not called) or the file cannot be written.
  bool save_checkpoint(Method method, const std::string& path);

  const trace::Trace& workload() const { return workload_; }
  util::SimTime train_begin() const { return train_begin_; }
  util::SimTime train_end() const { return train_end_; }
  util::SimTime validation_end() const { return validation_end_; }
  const rl::OfflineDataset& offline_dataset() const { return offline_; }
  const PipelineConfig& config() const { return config_; }

  /// Trained agents (nullptr before train()); exposed for ablations.
  const rl::DqnAgent* dqn_agent(Method m) const;
  const rl::PgAgent* pg_agent(Method m) const;

 private:
  void split_workload(util::SimTime span);

  PipelineConfig config_;
  trace::Trace workload_;
  util::SimTime train_begin_ = 0;
  util::SimTime train_end_ = 0;
  util::SimTime validation_end_ = 0;
  bool offline_collected_ = false;

  rl::OfflineDataset offline_;
  ml::RandomForest forest_;
  ml::Gbdt gbdt_;
  std::map<Method, std::unique_ptr<rl::DqnAgent>> dqn_agents_;
  std::map<Method, std::unique_ptr<rl::PgAgent>> pg_agents_;
};

}  // namespace mirage::core

// Provisioner adapters for the trained RL agents (§4.4 policy serving):
// DQN serves deterministically (argmax Q); PG serves stochastically
// (samples the output distribution).
#pragma once

#include <memory>

#include "core/provisioner.hpp"
#include "rl/dqn.hpp"
#include "rl/policy_gradient.hpp"

namespace mirage::core {

class DqnProvisioner : public Provisioner {
 public:
  DqnProvisioner(std::string name, std::unique_ptr<rl::DqnAgent> agent)
      : name_(std::move(name)), agent_(std::move(agent)) {}
  std::string name() const override { return name_; }
  int decide(const rl::ProvisionEnv& env, util::Rng&) override {
    return agent_->act_greedy(env.observation(0.0f));
  }

 private:
  std::string name_;
  std::unique_ptr<rl::DqnAgent> agent_;
};

class PgProvisioner : public Provisioner {
 public:
  PgProvisioner(std::string name, std::unique_ptr<rl::PgAgent> agent)
      : name_(std::move(name)), agent_(std::move(agent)) {}
  std::string name() const override { return name_; }
  int decide(const rl::ProvisionEnv& env, util::Rng& rng) override {
    return agent_->act_sample(env.observation(0.0f), rng);
  }

 private:
  std::string name_;
  std::unique_ptr<rl::PgAgent> agent_;
};

/// Factory that clones a trained DQN agent per evaluation worker.
ProvisionerFactory make_dqn_factory(std::string name, const rl::DqnAgent& trained);
/// Factory that clones a trained PG agent per evaluation worker.
ProvisionerFactory make_pg_factory(std::string name, const rl::PgAgent& trained);

}  // namespace mirage::core

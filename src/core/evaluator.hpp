// Evaluation harness (paper §6): sample anchor times in a validation
// range, classify each anchor's load level by the *reactive* baseline's
// queue wait (heavy > 12 h, medium 2-12 h, light < 2 h), then run every
// method on the same anchors and aggregate interruption / overlap /
// zero-interruption statistics per load class.
#pragma once

#include <array>
#include <string>
#include <vector>

#include "core/provisioner.hpp"
#include "util/stats.hpp"

namespace mirage::core {

enum class LoadClass : std::size_t { kHeavy = 0, kMedium = 1, kLight = 2 };

inline const char* load_class_name(LoadClass c) {
  switch (c) {
    case LoadClass::kHeavy: return "heavy";
    case LoadClass::kMedium: return "medium";
    case LoadClass::kLight: return "light";
  }
  return "?";
}

/// Paper's busyness categories from the reactive queue wait.
LoadClass classify_load(util::SimTime reactive_wait);

struct LoadAggregate {
  util::RunningStats interruption_hours;
  util::RunningStats overlap_hours;
  std::size_t zero_interruption = 0;
  std::size_t episodes = 0;

  double zero_interruption_fraction() const {
    return episodes ? static_cast<double>(zero_interruption) / static_cast<double>(episodes) : 0.0;
  }
};

struct MethodEval {
  std::string method;
  std::array<LoadAggregate, 3> by_load;  ///< indexed by LoadClass
  LoadAggregate overall;

  const LoadAggregate& at(LoadClass c) const { return by_load[static_cast<std::size_t>(c)]; }
};

struct EvalConfig {
  std::size_t episodes = 48;  ///< anchors sampled in the range
  std::uint64_t seed = 97;
  bool parallel = true;
};

class Evaluator {
 public:
  Evaluator(const trace::Trace& full, std::int32_t cluster_nodes,
            rl::EpisodeConfig episode_config, EvalConfig eval_config);

  /// Sample anchors in [begin, end) and run the reactive baseline on each
  /// (also produces the load classification reused by evaluate()).
  void prepare(util::SimTime range_begin, util::SimTime range_end);

  /// Evaluate one method on the prepared anchors.
  MethodEval evaluate(const std::string& name, const ProvisionerFactory& factory) const;

  /// The reactive baseline's own evaluation (from prepare()).
  const MethodEval& reactive() const { return reactive_eval_; }
  /// Number of anchors per load class.
  std::array<std::size_t, 3> load_histogram() const;

 private:
  struct Anchor {
    util::SimTime t0 = 0;
    util::SimTime reactive_wait = 0;
    LoadClass load = LoadClass::kLight;
  };

  const trace::Trace& full_;
  std::int32_t nodes_;
  rl::EpisodeConfig episode_config_;
  EvalConfig config_;
  std::vector<Anchor> anchors_;
  MethodEval reactive_eval_;
};

/// Render a set of method evaluations as an aligned text table (one row
/// per method), reporting avg interruption and overlap per load class —
/// the quantities behind the paper's Figures 8-10.
std::string format_eval_table(const std::vector<MethodEval>& evals);

}  // namespace mirage::core

#include "core/pipeline.hpp"

#include <cassert>
#include <stdexcept>

#include "core/checkpoint.hpp"
#include "util/logging.hpp"

namespace mirage::core {

using util::SimTime;

PipelineConfig PipelineConfig::compact(const trace::ClusterPreset& preset, std::int32_t job_nodes,
                                       std::uint64_t seed) {
  PipelineConfig cfg;
  cfg.preset = preset;
  cfg.seed = seed;
  cfg.generator.seed = seed;

  cfg.episode.job_nodes = job_nodes;
  cfg.episode.decision_interval = 30 * util::kMinute;  // 10 min at paper scale
  cfg.episode.history_len = 16;                        // 144 at paper scale

  // Thread the preset's partition layout into every episode simulator and
  // size the model input for the per-partition capacity features (exactly
  // rl::kFrameDim on single-partition presets).
  std::size_t partition_count = 1;
  if (!preset.partitions.empty()) {
    partition_count = preset.partitions.size();
    cfg.episode.partitions.reserve(partition_count);
    for (const auto& p : preset.partitions) {
      cfg.episode.partitions.push_back(sim::Partition{p.name, p.node_count});
    }
  }

  cfg.net.history_len = cfg.episode.history_len;
  cfg.net.state_dim = rl::frame_dim(partition_count);
  cfg.net.d_model = 16;
  cfg.net.num_heads = 2;
  cfg.net.num_layers = 1;
  cfg.net.ffn_hidden = 32;
  cfg.net.moe_experts = 3;

  cfg.collector.anchors = 64;
  cfg.collector.probes = 7;
  cfg.collector.no_submit_samples = 4;
  cfg.collector.seed = seed ^ 0xc0111ec7;

  cfg.pretrain.epochs = 24;
  cfg.pretrain.seed = seed ^ 0x97e77a17;

  cfg.online.episodes = 96;
  cfg.online.episodes_per_round = 8;
  cfg.online.seed = seed ^ 0x0711e0a1;

  cfg.forest.num_trees = 48;
  cfg.forest.seed = seed ^ 0xf07e57;
  cfg.gbdt.num_rounds = 120;
  cfg.gbdt.seed = seed ^ 0x9bd7;

  cfg.eval.episodes = 48;
  cfg.eval.seed = seed ^ 0xe5a1;
  return cfg;
}

MiragePipeline::MiragePipeline(PipelineConfig config) : config_(std::move(config)) {}

void MiragePipeline::prepare() {
  trace::SyntheticTraceGenerator generator(config_.preset, config_.generator);
  workload_ = generator.generate();
  split_workload(static_cast<SimTime>(config_.preset.months) * util::kMonth);
}

void MiragePipeline::prepare(trace::Trace workload) {
  workload_ = std::move(workload);
  trace::sort_by_submit_time(workload_);
  split_workload(trace::trace_end(workload_) - trace::trace_begin(workload_));
}

void MiragePipeline::split_workload(SimTime span) {
  train_begin_ = trace::trace_begin(workload_);
  train_end_ = train_begin_ + static_cast<SimTime>(config_.train_fraction *
                                                   static_cast<double>(span));
  validation_end_ = train_begin_ + span;
  util::log_info("pipeline[", config_.preset.name, "]: ", workload_.size(), " jobs, train ",
                 util::format_duration(train_end_ - train_begin_), ", validation ",
                 util::format_duration(validation_end_ - train_end_));
}

void MiragePipeline::collect_offline() {
  assert(!workload_.empty() && "call prepare() first");
  rl::OfflineCollector collector(workload_, config_.preset.node_count, config_.episode,
                                 config_.collector);
  offline_ = collector.collect(train_begin_ + config_.episode.warmup,
                               train_end_ - config_.episode.max_horizon);
  offline_collected_ = true;
  util::log_info("offline dataset: ", offline_.nn_samples.size(), " NN samples, ",
                 offline_.tabular.size(), " tabular samples");
}

void MiragePipeline::train(Method method) {
  if (method == Method::kReactive || method == Method::kAvg) return;
  if (!offline_collected_) {
    throw std::logic_error("collect_offline() must run before training " + method_name(method));
  }

  switch (method) {
    case Method::kRandomForest:
      forest_.fit(offline_.tabular, config_.forest);
      return;
    case Method::kXgboost:
      gbdt_.fit(offline_.tabular, config_.gbdt);
      return;
    case Method::kTransformerDqn:
    case Method::kMoeDqn: {
      rl::DqnConfig dc;
      dc.foundation = (method == Method::kMoeDqn) ? nn::FoundationType::kMoE
                                                  : nn::FoundationType::kTransformer;
      dc.net = config_.net;
      auto agent = std::make_unique<rl::DqnAgent>(dc, config_.seed ^ 0xd92);
      pretrain_foundation(*agent, offline_.nn_samples, config_.pretrain);
      train_dqn_online(*agent, workload_, config_.preset.node_count, config_.episode,
                       train_begin_, train_end_, config_.online, offline_.nn_samples);
      dqn_agents_[method] = std::move(agent);
      return;
    }
    case Method::kTransformerPg:
    case Method::kMoePg: {
      rl::PgConfig pc;
      pc.foundation = (method == Method::kMoePg) ? nn::FoundationType::kMoE
                                                 : nn::FoundationType::kTransformer;
      pc.net = config_.net;
      auto agent = std::make_unique<rl::PgAgent>(pc, config_.seed ^ 0x99);
      // Pre-train the shared foundation through a throwaway DQN wrapper
      // (the V-head regression of §4.9.1b), then copy the foundation in.
      {
        rl::DqnConfig warm;
        warm.foundation = pc.foundation;
        warm.net = pc.net;
        rl::DqnAgent warm_agent(warm, config_.seed ^ 0x99);
        pretrain_foundation(warm_agent, offline_.nn_samples, config_.pretrain);
        agent->model().copy_params_from(warm_agent.model());
      }
      train_pg_online(*agent, workload_, config_.preset.node_count, config_.episode, train_begin_,
                      train_end_, config_.online);
      pg_agents_[method] = std::move(agent);
      return;
    }
    default:
      return;
  }
}

void MiragePipeline::train_all(const std::vector<Method>& methods) {
  for (Method m : methods) {
    util::log_info("training ", method_name(m));
    train(m);
  }
}

ProvisionerFactory MiragePipeline::factory(Method method) const {
  switch (method) {
    case Method::kReactive:
      return [] { return std::make_unique<ReactiveProvisioner>(); };
    case Method::kAvg:
      return [] { return std::make_unique<AvgWaitProvisioner>(); };
    case Method::kRandomForest: {
      const ml::RandomForest* model = &forest_;
      if (!model->trained()) throw std::logic_error("random_forest is not trained");
      return [model] {
        return std::make_unique<WaitPredictionProvisioner>(
            "random_forest", [model](std::span<const float> f) { return model->predict(f); });
      };
    }
    case Method::kXgboost: {
      const ml::Gbdt* model = &gbdt_;
      if (!model->trained()) throw std::logic_error("xgboost is not trained");
      return [model] {
        return std::make_unique<WaitPredictionProvisioner>(
            "xgboost", [model](std::span<const float> f) { return model->predict(f); });
      };
    }
    case Method::kTransformerDqn:
    case Method::kMoeDqn: {
      const auto it = dqn_agents_.find(method);
      if (it == dqn_agents_.end()) throw std::logic_error(method_name(method) + " is not trained");
      return make_dqn_factory(method_name(method), *it->second);
    }
    case Method::kTransformerPg:
    case Method::kMoePg: {
      const auto it = pg_agents_.find(method);
      if (it == pg_agents_.end()) throw std::logic_error(method_name(method) + " is not trained");
      return make_pg_factory(method_name(method), *it->second);
    }
  }
  throw std::logic_error("unknown method");
}

bool MiragePipeline::save_checkpoint(Method method, const std::string& path) {
  if (const auto it = dqn_agents_.find(method); it != dqn_agents_.end()) {
    return save_agent(*it->second, path);
  }
  if (const auto it = pg_agents_.find(method); it != pg_agents_.end()) {
    return save_agent(*it->second, path);
  }
  return false;
}

std::vector<MethodEval> MiragePipeline::evaluate(const std::vector<Method>& methods) {
  Evaluator evaluator(workload_, config_.preset.node_count, config_.episode, config_.eval);
  evaluator.prepare(train_end_, validation_end_);
  const auto hist = evaluator.load_histogram();
  util::log_info("validation anchors by load: heavy=", hist[0], " medium=", hist[1],
                 " light=", hist[2]);
  std::vector<MethodEval> out;
  out.reserve(methods.size());
  for (Method m : methods) {
    out.push_back(evaluator.evaluate(method_name(m), factory(m)));
  }
  return out;
}

const rl::DqnAgent* MiragePipeline::dqn_agent(Method m) const {
  const auto it = dqn_agents_.find(m);
  return it == dqn_agents_.end() ? nullptr : it->second.get();
}

const rl::PgAgent* MiragePipeline::pg_agent(Method m) const {
  const auto it = pg_agents_.find(m);
  return it == pg_agents_.end() ? nullptr : it->second.get();
}

}  // namespace mirage::core

// Hyper-parameter grid search — the offline stand-in for the paper's
// RayTune usage (§4.6 "Hyperparameter tuning"). Candidates are scored by
// held-out regression loss of the pre-trained foundation on the offline
// dataset (a cheap, well-correlated proxy for provisioning quality that
// avoids a full online-RL run per candidate).
#pragma once

#include <span>
#include <string>
#include <vector>

#include "rl/trainer.hpp"

namespace mirage::core {

struct TunerCandidate {
  nn::FoundationConfig net;
  nn::FoundationType type = nn::FoundationType::kMoE;
  std::string label;
};

struct TunerResult {
  TunerCandidate candidate;
  float train_loss = 0.0f;
  float validation_loss = 0.0f;
};

struct TunerOptions {
  rl::PretrainConfig pretrain;
  double holdout_fraction = 0.25;
  std::uint64_t seed = 31;
};

/// Evaluate all candidates on the offline samples; results are sorted by
/// validation loss (best first).
std::vector<TunerResult> grid_search(std::span<const rl::Experience> samples,
                                     const std::vector<TunerCandidate>& candidates,
                                     const TunerOptions& options);

/// The default grid: d_model x layers x heads x experts around the compact
/// configuration.
std::vector<TunerCandidate> default_grid(const nn::FoundationConfig& base);

}  // namespace mirage::core

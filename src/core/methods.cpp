#include "core/methods.hpp"

namespace mirage::core {

std::string method_name(Method m) {
  switch (m) {
    case Method::kReactive: return "reactive";
    case Method::kAvg: return "avg";
    case Method::kRandomForest: return "random_forest";
    case Method::kXgboost: return "xgboost";
    case Method::kTransformerDqn: return "transformer+DQN";
    case Method::kTransformerPg: return "transformer+PG";
    case Method::kMoeDqn: return "MoE+DQN";
    case Method::kMoePg: return "MoE+PG";
  }
  return "?";
}

std::vector<Method> all_methods() {
  return {Method::kReactive,       Method::kAvg,           Method::kRandomForest,
          Method::kXgboost,        Method::kTransformerDqn, Method::kTransformerPg,
          Method::kMoeDqn,         Method::kMoePg};
}

bool is_rl_method(Method m) {
  return m == Method::kTransformerDqn || m == Method::kTransformerPg || m == Method::kMoeDqn ||
         m == Method::kMoePg;
}

bool is_statistical_method(Method m) {
  return m == Method::kRandomForest || m == Method::kXgboost;
}

}  // namespace mirage::core

#include "core/methods.hpp"

namespace mirage::core {

std::string method_name(Method m) {
  switch (m) {
    case Method::kReactive: return "reactive";
    case Method::kAvg: return "avg";
    case Method::kRandomForest: return "random_forest";
    case Method::kXgboost: return "xgboost";
    case Method::kTransformerDqn: return "transformer+DQN";
    case Method::kTransformerPg: return "transformer+PG";
    case Method::kMoeDqn: return "MoE+DQN";
    case Method::kMoePg: return "MoE+PG";
  }
  return "?";
}

std::string method_file_name(Method m) {
  switch (m) {
    case Method::kReactive: return "reactive";
    case Method::kAvg: return "avg";
    case Method::kRandomForest: return "random_forest";
    case Method::kXgboost: return "xgboost";
    case Method::kTransformerDqn: return "transformer_dqn";
    case Method::kTransformerPg: return "transformer_pg";
    case Method::kMoeDqn: return "moe_dqn";
    case Method::kMoePg: return "moe_pg";
  }
  return "?";
}

std::optional<Method> method_from_name(const std::string& name) {
  for (Method m : all_methods()) {
    if (name == method_name(m) || name == method_file_name(m)) return m;
  }
  return std::nullopt;
}

std::vector<Method> all_methods() {
  return {Method::kReactive,       Method::kAvg,           Method::kRandomForest,
          Method::kXgboost,        Method::kTransformerDqn, Method::kTransformerPg,
          Method::kMoeDqn,         Method::kMoePg};
}

bool is_rl_method(Method m) {
  return m == Method::kTransformerDqn || m == Method::kTransformerPg || m == Method::kMoeDqn ||
         m == Method::kMoePg;
}

bool is_statistical_method(Method m) {
  return m == Method::kRandomForest || m == Method::kXgboost;
}

bool is_checkpointable_method(Method m) { return is_rl_method(m); }

}  // namespace mirage::core

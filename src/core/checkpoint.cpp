#include "core/checkpoint.hpp"

#include <fstream>
#include <sstream>

#include "nn/serialize.hpp"

namespace mirage::core {

namespace {
// v2 appends the moe_top1 flag: the serving registry needs it to rebuild
// the gate's select-vs-blend semantics from the artifact alone.
constexpr char kHeaderMagic[] = "MIRAGE-CKPT-2";

std::string foundation_name(nn::FoundationType t) {
  return t == nn::FoundationType::kMoE ? "moe" : "transformer";
}

std::string header_line(const std::string& kind, nn::FoundationType type,
                        const nn::FoundationConfig& net) {
  std::ostringstream out;
  out << kHeaderMagic << ' ' << kind << ' ' << foundation_name(type) << ' ' << net.history_len
      << ' ' << net.state_dim << ' ' << net.d_model << ' ' << net.moe_experts << ' '
      << (net.moe_top1 ? 1 : 0);
  return out.str();
}

bool save_impl(nn::DualHeadModel& model, const std::string& kind, nn::FoundationType type,
               const nn::FoundationConfig& net, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  out << header_line(kind, type, net) << '\n';
  const auto params = model.parameters();
  const auto bytes = nn::serialize_params(params);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  return static_cast<bool>(out);
}

bool load_impl(nn::DualHeadModel& model, const std::string& kind, nn::FoundationType type,
               const nn::FoundationConfig& net, const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::string header;
  if (!std::getline(in, header)) return false;
  if (header != header_line(kind, type, net)) return false;
  std::vector<char> bytes((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  return nn::deserialize_params(bytes, model.parameters());
}
}  // namespace

bool save_agent(rl::DqnAgent& agent, const std::string& path) {
  return save_impl(agent.model(), "dqn", agent.config().foundation, agent.config().net, path);
}

bool save_agent(rl::PgAgent& agent, const std::string& path) {
  return save_impl(agent.model(), "pg", agent.config().foundation, agent.config().net, path);
}

bool load_agent(rl::DqnAgent& agent, const std::string& path) {
  return load_impl(agent.model(), "dqn", agent.config().foundation, agent.config().net, path);
}

bool load_agent(rl::PgAgent& agent, const std::string& path) {
  return load_impl(agent.model(), "pg", agent.config().foundation, agent.config().net, path);
}

std::optional<CheckpointInfo> read_checkpoint_info(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::string magic;
  CheckpointInfo info;
  int top1 = 0;
  in >> magic >> info.kind >> info.foundation >> info.history_len >> info.state_dim >>
      info.d_model >> info.moe_experts >> top1;
  if (!in || magic != kHeaderMagic) return std::nullopt;
  info.moe_top1 = top1 != 0;
  return info;
}

}  // namespace mirage::core

#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace mirage::util {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double percentile(std::span<const double> values, double q) {
  if (values.empty()) return 0.0;
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  return percentile_sorted(sorted, q);
}

double percentile_sorted(std::span<const double> sorted, double q) {
  if (sorted.empty()) return 0.0;
  q = std::clamp(q, 0.0, 100.0);
  const double pos = q / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

std::array<double, 5> five_number_summary(std::span<const double> values) {
  if (values.empty()) return {0.0, 0.0, 0.0, 0.0, 0.0};
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  return {sorted.front(), percentile_sorted(sorted, 25.0), percentile_sorted(sorted, 50.0),
          percentile_sorted(sorted, 75.0), sorted.back()};
}

double geometric_mean(std::span<const double> values, double floor) {
  if (values.empty()) return 0.0;
  double log_sum = 0.0;
  for (double v : values) log_sum += std::log(std::max(v, floor));
  return std::exp(log_sum / static_cast<double>(values.size()));
}

double mean(std::span<const double> values) {
  if (values.empty()) return 0.0;
  double s = 0.0;
  for (double v : values) s += v;
  return s / static_cast<double>(values.size());
}

Histogram::Histogram(std::vector<double> upper_bounds) : bounds_(std::move(upper_bounds)) {
  std::sort(bounds_.begin(), bounds_.end());
  counts_.assign(bounds_.size() + 1, 0);  // +1 overflow bucket
}

void Histogram::add(double x) {
  // Bucket i holds values <= bounds_[i] (first matching bound).
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), x);
  ++counts_[static_cast<std::size_t>(it - bounds_.begin())];
  ++total_;
}

double Histogram::fraction(std::size_t i) const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(counts_[i]) / static_cast<double>(total_);
}

double Histogram::upper_bound(std::size_t i) const {
  if (i < bounds_.size()) return bounds_[i];
  return std::numeric_limits<double>::infinity();
}

}  // namespace mirage::util

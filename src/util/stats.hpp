// Streaming and batch summary statistics used across trace analysis, the
// state encoder (§4.1 five-number summaries) and the evaluation harness.
#pragma once

#include <array>
#include <cstddef>
#include <span>
#include <vector>

namespace mirage::util {

/// Welford online mean/variance accumulator.
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return n_ ? mean_ * static_cast<double>(n_) : 0.0; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Linear-interpolated percentile of an unsorted sample (copies + sorts).
/// q in [0,100]. Returns 0 for an empty sample.
double percentile(std::span<const double> values, double q);

/// Percentile of an already-sorted sample (no copy).
double percentile_sorted(std::span<const double> sorted, double q);

/// Five-number summary {min, p25, median, p75, max}; zeros when empty.
/// This is exactly the summary the paper's state encoder uses (vars 2-16).
std::array<double, 5> five_number_summary(std::span<const double> values);

/// Geometric mean of strictly-positive values (0 if empty); non-positive
/// entries are clamped to `floor` to keep the statistic defined on noisy
/// JCT deltas.
double geometric_mean(std::span<const double> values, double floor = 1e-9);

/// Arithmetic mean; 0 if empty.
double mean(std::span<const double> values);

/// Histogram with explicit bucket upper bounds (last bucket is overflow).
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_bounds);

  void add(double x);
  std::size_t total() const { return total_; }
  /// Fraction of samples in bucket i (0 when empty).
  double fraction(std::size_t i) const;
  std::size_t bucket_count() const { return counts_.size(); }
  std::size_t count(std::size_t i) const { return counts_[i]; }
  double upper_bound(std::size_t i) const;

 private:
  std::vector<double> bounds_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace mirage::util

// Fixed-size thread pool with a blocking parallel_for. Used to fan out
// episode rollouts, forest training and evaluation sweeps across cores.
//
// Fork-safe: fork() copies the pool object but not its worker threads,
// so in a forked child every dispatch would block forever on workers
// that do not exist. The pool records its owning pid and, when called
// from a different process, runs the work inline on the caller — the
// crash-injection harness and serve_demo's kill -9 act fork children
// that keep serving (results are unchanged: the deterministic GEMM
// partition is bitwise-identical at any thread count, including 1).
#pragma once

#include <sys/types.h>

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace mirage::util {

class ThreadPool {
 public:
  /// 0 threads means hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueue an arbitrary task; returns a future for its completion.
  std::future<void> submit(std::function<void()> task);

  /// Run fn(i) for i in [0, n), blocking until all complete. Work is
  /// chunked so each worker grabs contiguous index ranges (cache-friendly
  /// and low contention). fn must be safe to call concurrently.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// Run fn(w) exactly once for every w in [0, count), blocking until all
  /// complete: a STATIC dispatch where each index is one pre-assigned
  /// share of work (no chunk stealing, no dynamic rebalancing). The caller
  /// runs slot 0 itself; slots 1..count-1 are submitted to the pool, so
  /// `count` may exceed size() — excess slots queue and never block on
  /// each other. This is the dispatch under the deterministic parallel
  /// GEMM partition (nn/tensor.cpp): which thread executes a slot is
  /// irrelevant to results because slots own disjoint output tiles.
  /// The first exception thrown by any slot is rethrown after all return.
  void run_static(std::size_t count, const std::function<void(std::size_t)>& fn);

  /// Global shared pool sized to the machine (lazy-initialized).
  static ThreadPool& global();

 private:
  void worker_loop();
  /// True in a process that inherited this pool via fork(): the worker
  /// threads live only in the creating process.
  bool orphaned_by_fork() const;

  std::vector<std::thread> workers_;
  std::queue<std::packaged_task<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
  pid_t owner_pid_ = 0;
};

}  // namespace mirage::util

#include "util/thread_pool.hpp"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <exception>

namespace mirage::util {

ThreadPool::ThreadPool(std::size_t num_threads) : owner_pid_(::getpid()) {
  if (num_threads == 0) {
    num_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  if (orphaned_by_fork()) {
    // The workers (and possibly a lock holder) exist only in the parent;
    // touching the mutex or joining here could block forever. The thread
    // handles are stale ids in this process — detach and let the object
    // go.
    for (auto& w : workers_) w.detach();
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

bool ThreadPool::orphaned_by_fork() const { return ::getpid() != owner_pid_; }

std::future<void> ThreadPool::submit(std::function<void()> task) {
  std::packaged_task<void()> pt(std::move(task));
  auto fut = pt.get_future();
  if (orphaned_by_fork()) {
    pt();  // no workers in this process — run on the caller
    return fut;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    tasks_.push(std::move(pt));
  }
  cv_.notify_one();
  return fut;
}

void ThreadPool::parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  const std::size_t workers = size();
  if (n == 1 || workers == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  // Dynamic chunking: ~4 chunks per worker balances load without a
  // per-index dispatch cost.
  const std::size_t chunk = std::max<std::size_t>(1, n / (workers * 4));
  std::atomic<std::size_t> next{0};
  // An exception from fn must not escape body() while sibling workers are
  // still iterating over these stack locals: record the first one, stop
  // handing out chunks, and rethrow only after every participant returned.
  std::exception_ptr error;
  std::mutex error_mutex;
  auto body = [&] {
    try {
      for (;;) {
        const std::size_t begin = next.fetch_add(chunk, std::memory_order_relaxed);
        if (begin >= n) return;
        const std::size_t end = std::min(begin + chunk, n);
        for (std::size_t i = begin; i < end; ++i) fn(i);
      }
    } catch (...) {
      std::lock_guard<std::mutex> lock(error_mutex);
      if (!error) error = std::current_exception();
      next.store(n, std::memory_order_relaxed);  // stop remaining chunks
    }
  };
  std::vector<std::future<void>> futs;
  futs.reserve(workers - 1);
  for (std::size_t w = 0; w + 1 < workers; ++w) futs.push_back(submit(body));
  body();  // caller participates
  for (auto& f : futs) f.get();
  if (error) std::rethrow_exception(error);
}

void ThreadPool::run_static(std::size_t count, const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  if (count == 1) {
    fn(0);
    return;
  }
  std::vector<std::future<void>> futs;
  futs.reserve(count - 1);
  for (std::size_t w = 1; w < count; ++w) {
    futs.push_back(submit([&fn, w] { fn(w); }));
  }
  // Every slot must finish before fn (and anything it captures) leaves
  // scope, so collect the first error and rethrow only after the joins.
  std::exception_ptr error;
  try {
    fn(0);
  } catch (...) {
    error = std::current_exception();
  }
  for (auto& f : futs) {
    try {
      f.get();
    } catch (...) {
      if (!error) error = std::current_exception();
    }
  }
  if (error) std::rethrow_exception(error);
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

}  // namespace mirage::util

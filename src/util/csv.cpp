#include "util/csv.hpp"

#include <fstream>
#include <sstream>

namespace mirage::util {

std::vector<std::string> parse_csv_line(std::string_view line) {
  std::vector<std::string> fields;
  std::string cur;
  bool in_quotes = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cur.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        cur.push_back(c);
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      fields.push_back(std::move(cur));
      cur.clear();
    } else if (c == '\r') {
      // tolerate CRLF
    } else {
      cur.push_back(c);
    }
  }
  fields.push_back(std::move(cur));
  return fields;
}

std::string csv_escape(std::string_view field) {
  // '\r' must be quoted too: the reader strips bare CRs (CRLF tolerance),
  // so an unquoted carriage return would not survive a round trip.
  if (field.find_first_of(",\"\n\r") == std::string_view::npos) {
    return std::string(field);
  }
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out += "\"";
  return out;
}

void CsvWriter::write_row(const std::vector<std::string>& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i) out_ << ',';
    out_ << csv_escape(fields[i]);
  }
  out_ << '\n';
}

CsvTable CsvTable::parse(std::string_view text, bool has_header) {
  CsvTable table;
  std::size_t pos = 0;
  bool first = true;
  while (pos <= text.size()) {
    // Record boundary: the next newline *outside quotes* (quoted fields
    // may legally contain newlines and must not split the record).
    std::size_t eol = pos;
    bool in_quotes = false;
    while (eol < text.size() && (in_quotes || text[eol] != '\n')) {
      if (text[eol] == '"') in_quotes = !in_quotes;
      ++eol;
    }
    const std::string_view line = text.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty() && pos > text.size()) break;
    if (line.empty()) continue;
    auto fields = parse_csv_line(line);
    if (first && has_header) {
      table.header_ = std::move(fields);
    } else {
      table.rows_.push_back(std::move(fields));
    }
    first = false;
  }
  return table;
}

std::optional<CsvTable> CsvTable::load(const std::string& path, bool has_header) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  std::stringstream buf;
  buf << in.rdbuf();
  return parse(buf.str(), has_header);
}

int CsvTable::column(std::string_view name) const {
  for (std::size_t i = 0; i < header_.size(); ++i) {
    if (header_[i] == name) return static_cast<int>(i);
  }
  return -1;
}

}  // namespace mirage::util

// Tiny leveled logger. Not thread-safe per message interleaving beyond the
// atomicity of a single ostream << chain; good enough for progress output.
#pragma once

#include <iostream>
#include <sstream>
#include <string>

namespace mirage::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global minimum level; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

namespace detail {
void emit(LogLevel level, const std::string& msg);
}

template <typename... Args>
void log(LogLevel level, Args&&... args) {
  if (level < log_level()) return;
  std::ostringstream oss;
  (oss << ... << std::forward<Args>(args));
  detail::emit(level, oss.str());
}

template <typename... Args>
void log_debug(Args&&... args) { log(LogLevel::kDebug, std::forward<Args>(args)...); }
template <typename... Args>
void log_info(Args&&... args) { log(LogLevel::kInfo, std::forward<Args>(args)...); }
template <typename... Args>
void log_warn(Args&&... args) { log(LogLevel::kWarn, std::forward<Args>(args)...); }
template <typename... Args>
void log_error(Args&&... args) { log(LogLevel::kError, std::forward<Args>(args)...); }

}  // namespace mirage::util

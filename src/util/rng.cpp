#include "util/rng.hpp"

#include <algorithm>
#include <cassert>
#include <numbers>

namespace mirage::util {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  // xoshiro state must not be all-zero; SplitMix64 seeding guarantees that
  // with overwhelming probability and decorrelates nearby seeds.
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0,1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  const auto range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<std::int64_t>(next_u64());  // full range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % range);
  std::uint64_t r;
  do {
    r = next_u64();
  } while (r >= limit);
  return lo + static_cast<std::int64_t>(r % range);
}

double Rng::normal() {
  if (has_spare_) {
    has_spare_ = false;
    return spare_normal_;
  }
  double u1, u2;
  do {
    u1 = uniform();
  } while (u1 <= 1e-300);
  u2 = uniform();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  spare_normal_ = mag * std::sin(2.0 * std::numbers::pi * u2);
  has_spare_ = true;
  return mag * std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::normal(double mean, double stddev) { return mean + stddev * normal(); }

double Rng::lognormal(double mu, double sigma) { return std::exp(normal(mu, sigma)); }

double Rng::exponential(double rate) {
  assert(rate > 0.0);
  double u;
  do {
    u = uniform();
  } while (u <= 1e-300);
  return -std::log(u) / rate;
}

std::int64_t Rng::poisson(double mean) {
  assert(mean >= 0.0);
  if (mean <= 0.0) return 0;
  if (mean < 30.0) {
    // Knuth: multiply uniforms until below exp(-mean).
    const double l = std::exp(-mean);
    std::int64_t k = 0;
    double p = 1.0;
    do {
      ++k;
      p *= uniform();
    } while (p > l);
    return k - 1;
  }
  // Normal approximation with continuity correction is adequate for the
  // coarse arrival counts used by the workload generator.
  const double x = normal(mean, std::sqrt(mean));
  return std::max<std::int64_t>(0, static_cast<std::int64_t>(std::llround(x)));
}

bool Rng::bernoulli(double p) { return uniform() < p; }

std::size_t Rng::categorical(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) total += std::max(0.0, w);
  if (total <= 0.0) return 0;
  double r = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    r -= std::max(0.0, weights[i]);
    if (r <= 0.0) return i;
  }
  return weights.size() - 1;
}

std::int64_t Rng::zipf(std::int64_t n, double s) {
  assert(n >= 1);
  // Inverse-CDF on the harmonic weights. The weights (and their sum) are
  // a pure function of (n, s), so they are cached per thread instead of
  // recomputed with O(n) std::pow calls per draw — the workload generator
  // draws one user id per job from the same pool. The cached terms are
  // the identical doubles accumulated in the identical order, so every
  // draw (and the golden trace hashes downstream) is bitwise unchanged.
  struct HarmonicTable {
    std::int64_t n = -1;
    double s = 0.0;
    double total = 0.0;
    std::vector<double> terms;
  };
  thread_local HarmonicTable cache;
  if (cache.n != n || cache.s != s) {
    cache.terms.clear();
    cache.terms.reserve(static_cast<std::size_t>(n));
    double h = 0.0;
    for (std::int64_t k = 1; k <= n; ++k) {
      const double term = 1.0 / std::pow(static_cast<double>(k), s);
      cache.terms.push_back(term);
      h += term;
    }
    cache.n = n;
    cache.s = s;
    cache.total = h;
  }
  double r = uniform() * cache.total;
  for (std::int64_t k = 1; k <= n; ++k) {
    r -= cache.terms[static_cast<std::size_t>(k - 1)];
    if (r <= 0.0) return k;
  }
  return n;
}

Rng Rng::split() {
  // Use two draws to construct a decorrelated child seed.
  std::uint64_t seed = next_u64() ^ rotl(next_u64(), 31);
  return Rng(seed);
}

}  // namespace mirage::util

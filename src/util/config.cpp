#include "util/config.hpp"

#include <algorithm>
#include <cstdlib>
#include <sstream>

namespace mirage::util {

namespace {
std::string trim(const std::string& s) {
  const auto b = s.find_first_not_of(" \t\r\n");
  if (b == std::string::npos) return "";
  const auto e = s.find_last_not_of(" \t\r\n");
  return s.substr(b, e - b + 1);
}
}  // namespace

Config Config::from_args(int argc, const char* const* argv) {
  Config cfg;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto eq = arg.find('=');
    if (eq == std::string::npos) continue;
    cfg.set(trim(arg.substr(0, eq)), trim(arg.substr(eq + 1)));
  }
  return cfg;
}

Config Config::from_text(const std::string& text) {
  Config cfg;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    const auto hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    const auto eq = line.find('=');
    if (eq == std::string::npos) continue;
    cfg.set(trim(line.substr(0, eq)), trim(line.substr(eq + 1)));
  }
  return cfg;
}

std::optional<std::string> first_malformed_line(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    const auto hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    if (line.find('=') == std::string::npos) return line;
  }
  return std::nullopt;
}

void Config::set(const std::string& key, const std::string& value) { values_[key] = value; }

bool Config::has(const std::string& key) const { return values_.count(key) > 0; }

std::string Config::get_string(const std::string& key, const std::string& def) const {
  const auto it = values_.find(key);
  return it == values_.end() ? def : it->second;
}

std::int64_t Config::get_int(const std::string& key, std::int64_t def) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return def;
  char* end = nullptr;
  const long long v = std::strtoll(it->second.c_str(), &end, 10);
  return (end && *end == '\0') ? v : def;
}

double Config::get_double(const std::string& key, double def) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return def;
  char* end = nullptr;
  const double v = std::strtod(it->second.c_str(), &end);
  return (end && *end == '\0') ? v : def;
}

bool Config::get_bool(const std::string& key, bool def) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return def;
  std::string v = it->second;
  std::transform(v.begin(), v.end(), v.begin(), ::tolower);
  if (v == "1" || v == "true" || v == "yes" || v == "on") return true;
  if (v == "0" || v == "false" || v == "no" || v == "off") return false;
  return def;
}

std::vector<std::string> Config::keys() const {
  std::vector<std::string> out;
  out.reserve(values_.size());
  for (const auto& [k, _] : values_) out.push_back(k);
  return out;
}

}  // namespace mirage::util

// Simulation time helpers. All simulator timestamps are seconds since the
// trace epoch stored in std::int64_t (signed so "before epoch" warm-up
// offsets are representable).
#pragma once

#include <cstdint>
#include <string>

namespace mirage::util {

using SimTime = std::int64_t;  // seconds since trace epoch

inline constexpr SimTime kSecond = 1;
inline constexpr SimTime kMinute = 60;
inline constexpr SimTime kHour = 3600;
inline constexpr SimTime kDay = 86400;
inline constexpr SimTime kWeek = 7 * kDay;
/// Civil month used for bucketing monthly statistics (30 days).
inline constexpr SimTime kMonth = 30 * kDay;

constexpr double to_hours(SimTime t) { return static_cast<double>(t) / kHour; }
constexpr SimTime from_hours(double h) { return static_cast<SimTime>(h * kHour); }

/// "3d 04:05:06"-style human duration for reports.
std::string format_duration(SimTime seconds);

/// Monotonic wall-clock now (seconds, double) for overhead measurements.
double wall_seconds();

}  // namespace mirage::util

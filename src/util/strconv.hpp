// Strict string<->number conversions shared by the text-format parsers
// (scenario specs, experiment plans, artifact manifests). Parsers accept a
// value only when the whole token converts; format_double_exact emits
// "%.17g", which round-trips IEEE doubles bitwise — a load-bearing
// property for the lab's resume-equals-uninterrupted contract.
#pragma once

#include <cstdint>
#include <string>

namespace mirage::util {

/// "%.17g": shortest width guaranteed to reload bitwise via parse_f64.
std::string format_double_exact(double v);

bool parse_i64(const std::string& s, std::int64_t& out);
/// parse_i64 plus an int32 range check.
bool parse_i32(const std::string& s, std::int32_t& out);
bool parse_u64(const std::string& s, std::uint64_t& out);
bool parse_f64(const std::string& s, double& out);
/// "true"/"1" and "false"/"0" only.
bool parse_bool(const std::string& s, bool& out);

}  // namespace mirage::util

// Crash-safe append-only WAL segment store (snkv's journaling discipline
// applied to this codebase: WAL mode, explicit sync levels, crash safety
// as a test-enforced contract rather than a hope).
//
// On-disk layout: a directory of monotonically numbered segment files
// (wal-<index>.seg), each starting with an 8-byte magic followed by
// records. A record is
//
//   u32le payload_size | u32le crc32c(size_le_bytes + payload) | payload
//
// so a torn header, torn payload or flipped byte fails the checksum and
// recovery TRUNCATES the log at that exact offset (and deletes every
// later segment) — replay always yields a prefix of what was appended,
// never garbage. Records never span segments: rotation happens at commit
// boundaries once a segment crosses WalOptions::segment_bytes, so a
// record may legally exceed the segment size.
//
// Durability levels mirror snkv's sync levels:
//   kNone     — no fsync anywhere. Survives process death for everything
//               the writer flushed (write(2) completed); buffered bytes
//               since the last commit() are lost with the process.
//   kOnCommit — fsync the segment on every commit(). Survives power loss
//               up to the last commit.
//   kOnRoll   — fsync only when a segment is finished (rotation) plus the
//               directory when a segment is created. Survives power loss
//               up to the last completed segment.
//
// The writer appends into one preallocated buffer and flushes with plain
// write(2), so steady-state append()+commit() performs ZERO heap
// allocations — serve journals decisions from its zero-alloc decide path.
//
// Every low-level durable operation (write, fsync, segment create,
// rename) consults wal::testing's fault injector, so the crash-injection
// harness can kill or error the writer at any of hundreds of randomized
// write/fsync/roll/rename boundaries and assert that recovery is
// prefix-consistent every time.
#pragma once

#include <cstdint>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

namespace mirage::util::wal {

/// Castagnoli CRC (iSCSI polynomial). Chains: crc32c(crc32c(0,a),b) ==
/// crc32c(0, a||b).
std::uint32_t crc32c(std::uint32_t seed, const void* data, std::size_t size);

enum class SyncLevel { kNone, kOnCommit, kOnRoll };
const char* sync_level_name(SyncLevel level);

struct WalOptions {
  SyncLevel sync = SyncLevel::kOnCommit;
  /// Rotate to a fresh segment once the current one crosses this many
  /// bytes (checked at commit boundaries; records never span segments).
  std::size_t segment_bytes = 1u << 20;
  /// Preallocated append buffer; records larger than it bypass the
  /// buffer and stream straight to the file.
  std::size_t buffer_bytes = 64u << 10;
};

/// One piece of a record assembled from multiple client buffers (header +
/// payload) without an intermediate allocation.
struct Chunk {
  const void* data;
  std::size_t size;
};

// ---- little-endian field helpers shared by WAL clients -------------------
inline void store_u32_le(std::uint8_t* out, std::uint32_t v) {
  out[0] = static_cast<std::uint8_t>(v);
  out[1] = static_cast<std::uint8_t>(v >> 8);
  out[2] = static_cast<std::uint8_t>(v >> 16);
  out[3] = static_cast<std::uint8_t>(v >> 24);
}
inline void store_u64_le(std::uint8_t* out, std::uint64_t v) {
  store_u32_le(out, static_cast<std::uint32_t>(v));
  store_u32_le(out + 4, static_cast<std::uint32_t>(v >> 32));
}
inline std::uint32_t load_u32_le(const std::uint8_t* in) {
  return static_cast<std::uint32_t>(in[0]) | (static_cast<std::uint32_t>(in[1]) << 8) |
         (static_cast<std::uint32_t>(in[2]) << 16) | (static_cast<std::uint32_t>(in[3]) << 24);
}
inline std::uint64_t load_u64_le(const std::uint8_t* in) {
  return static_cast<std::uint64_t>(load_u32_le(in)) |
         (static_cast<std::uint64_t>(load_u32_le(in + 4)) << 32);
}

/// Bounds-checked sequential reader over one recovered record's payload.
/// Any over-read clears `ok` and returns zeros instead of touching memory
/// past the record — a truncated or foreign record parses to a rejected
/// record, never UB.
struct RecordReader {
  const std::uint8_t* p;
  std::size_t remaining;
  bool ok = true;

  RecordReader(const void* data, std::size_t size)
      : p(static_cast<const std::uint8_t*>(data)), remaining(size) {}

  bool take(void* out, std::size_t n) {
    if (!ok || remaining < n) {
      ok = false;
      return false;
    }
    std::memcpy(out, p, n);
    p += n;
    remaining -= n;
    return true;
  }
  std::uint8_t u8() {
    std::uint8_t v = 0;
    take(&v, 1);
    return v;
  }
  std::uint32_t u32() {
    std::uint8_t b[4] = {};
    return take(b, 4) ? load_u32_le(b) : 0;
  }
  std::uint64_t u64() {
    std::uint8_t b[8] = {};
    return take(b, 8) ? load_u64_le(b) : 0;
  }
  std::string str(std::size_t n) {
    if (!ok || remaining < n) {
      ok = false;
      return {};
    }
    std::string s(reinterpret_cast<const char*>(p), n);
    p += n;
    remaining -= n;
    return s;
  }
};

struct RecoveryInfo {
  std::uint64_t records = 0;          ///< valid records replayed
  std::uint64_t segments = 0;         ///< segment files surviving recovery
  std::uint64_t truncated_bytes = 0;  ///< torn/corrupt tail bytes removed
  bool torn_tail = false;             ///< any truncation happened
};

/// Replay every record in segment order. On the first bad length or
/// checksum the log is physically truncated there (the segment is
/// shortened; every later segment is deleted) and replay stops — the
/// store is prefix-consistent after every recovery, and recovering an
/// already-recovered log is a bitwise no-op (idempotent). A missing
/// directory recovers as an empty log. Returns false only on IO errors.
bool recover(const std::string& dir, const std::function<void(const void*, std::size_t)>& fn,
             RecoveryInfo* info = nullptr, std::string* error = nullptr);

/// Append-only writer. open() runs the same torn-tail truncation as
/// recover() and then positions at the end of the last valid record, so
/// a writer reopened over a crashed log continues the prefix.
class Writer {
 public:
  Writer() = default;
  ~Writer();
  Writer(const Writer&) = delete;
  Writer& operator=(const Writer&) = delete;

  bool open(const std::string& dir, const WalOptions& options, std::string* error = nullptr);
  bool is_open() const { return fd_ >= 0; }

  /// Buffer one record (flushed to the OS by commit(), or earlier when
  /// the buffer fills). Zero heap allocations on success.
  bool append(const void* data, std::size_t size, std::string* error = nullptr);
  bool append(const Chunk* chunks, std::size_t count, std::string* error = nullptr);
  /// Flush buffered records to the segment; fsync at kOnCommit; rotate
  /// the segment once it crosses segment_bytes.
  bool commit(std::string* error = nullptr);
  bool append_commit(const void* data, std::size_t size, std::string* error = nullptr);
  /// Flush + fsync regardless of the configured sync level.
  bool sync(std::string* error = nullptr);
  /// Commit and close (also run by the destructor).
  void close();

  std::uint64_t records_appended() const { return records_; }
  std::uint64_t segment_index() const { return segment_index_; }
  const std::string& dir() const { return dir_; }

 private:
  bool flush_buffer(std::string* error);
  bool roll_if_needed(std::string* error);
  bool open_segment(std::uint64_t index, std::string* error);

  std::string dir_;
  WalOptions options_;
  std::vector<std::uint8_t> buffer_;  ///< preallocated append buffer
  std::size_t buffered_ = 0;
  int fd_ = -1;
  int dir_fd_ = -1;
  std::uint64_t segment_index_ = 0;
  std::uint64_t segment_size_ = 0;  ///< bytes in the current segment (incl. buffered)
  std::uint64_t records_ = 0;
};

// ---- durable filesystem helpers ------------------------------------------
// The tmp-then-rename hardening the ArtifactStore satellite needs: fsync
// the temp file BEFORE the rename and the parent directory AFTER it, so a
// committed manifest survives power loss, not just process death. All
// three route through the fault-injectable low-level ops.
bool fsync_path(const std::string& path, std::string* error = nullptr);
bool fsync_dir(const std::string& dir, std::string* error = nullptr);
/// rename(2) + fsync of the destination's parent directory.
bool rename_durable(const std::string& from, const std::string& to, std::string* error = nullptr);

// ---- crash-injection hooks (tests only) ----------------------------------
namespace testing {

/// The low-level durable operations a fault can land on.
enum class FaultPoint { kWrite, kFsync, kSegmentOpen, kRename };

enum class FaultMode {
  kNone,             ///< count ops without faulting (calibration pass)
  kKill,             ///< SIGKILL the process at the op boundary
  kError,            ///< the op fails with an injected-EIO error
  kShortWriteKill,   ///< write a prefix of the buffer, then SIGKILL
  kShortWriteError,  ///< write a prefix, then fail with injected-EIO
};

/// Arm the process-wide injector: the trigger_op-th durable op from now
/// (1-based, counted across all fault points) performs `mode`;
/// trigger_op == 0 counts without firing. `short_write_fraction` in
/// [0, 1) picks how much of a kWrite completes for the short-write modes
/// (non-write points degrade short-write modes to kKill / kError).
/// Deterministic: the same (workload, trigger_op, mode, fraction) always
/// faults at the same boundary.
void arm_fault(std::uint64_t trigger_op, FaultMode mode, double short_write_fraction = 0.0);
void disarm_fault();
/// Durable ops counted since the last arm_fault/disarm_fault.
std::uint64_t fault_ops_seen();

}  // namespace testing

}  // namespace mirage::util::wal

#include "util/logging.hpp"

#include <atomic>
#include <mutex>

namespace mirage::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kInfo};
std::mutex g_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    default: return "?????";
  }
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }
LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

namespace detail {
void emit(LogLevel level, const std::string& msg) {
  std::lock_guard<std::mutex> lock(g_mutex);
  std::ostream& out = (level >= LogLevel::kWarn) ? std::cerr : std::clog;
  out << "[" << level_name(level) << "] " << msg << '\n';
}
}  // namespace detail

}  // namespace mirage::util

#include "util/time_utils.hpp"

#include <chrono>
#include <cstdio>

namespace mirage::util {

std::string format_duration(SimTime seconds) {
  const bool neg = seconds < 0;
  if (neg) seconds = -seconds;
  const SimTime days = seconds / kDay;
  const SimTime h = (seconds % kDay) / kHour;
  const SimTime m = (seconds % kHour) / kMinute;
  const SimTime s = seconds % kMinute;
  char buf[64];
  if (days > 0) {
    std::snprintf(buf, sizeof(buf), "%s%lldd %02lld:%02lld:%02lld", neg ? "-" : "",
                  static_cast<long long>(days), static_cast<long long>(h),
                  static_cast<long long>(m), static_cast<long long>(s));
  } else {
    std::snprintf(buf, sizeof(buf), "%s%02lld:%02lld:%02lld", neg ? "-" : "",
                  static_cast<long long>(h), static_cast<long long>(m),
                  static_cast<long long>(s));
  }
  return buf;
}

double wall_seconds() {
  using clock = std::chrono::steady_clock;
  return std::chrono::duration<double>(clock::now().time_since_epoch()).count();
}

}  // namespace mirage::util

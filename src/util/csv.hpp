// Minimal CSV reader/writer for job traces and experiment outputs.
// Handles quoted fields with embedded commas/quotes, which is all the
// Slurm accounting exports we model ever need.
#pragma once

#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace mirage::util {

/// Split one CSV line into fields (RFC-4180-ish: double quotes escape).
std::vector<std::string> parse_csv_line(std::string_view line);

/// Quote a field iff it contains a comma, quote, newline, or carriage
/// return (all of which would otherwise not round-trip through
/// parse_csv_line).
std::string csv_escape(std::string_view field);

/// Streaming CSV writer.
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& out) : out_(out) {}
  void write_row(const std::vector<std::string>& fields);

 private:
  std::ostream& out_;
};

/// Whole-file CSV table with optional header row. Record boundaries are
/// quote-aware (a quoted field may span newlines, RFC-4180); the flip side
/// is that an *unbalanced* quote in hand-edited input consumes the rest of
/// the text as one record — writers in this repo always emit balanced
/// quotes via csv_escape.
class CsvTable {
 public:
  /// Parse from a string (e.g., file contents). If `has_header`, the first
  /// row becomes the header and is queryable via column().
  static CsvTable parse(std::string_view text, bool has_header);
  /// Load from disk; returns nullopt if the file cannot be opened.
  static std::optional<CsvTable> load(const std::string& path, bool has_header);

  const std::vector<std::string>& header() const { return header_; }
  std::size_t row_count() const { return rows_.size(); }
  const std::vector<std::string>& row(std::size_t i) const { return rows_[i]; }
  /// Column index for a header name, or -1 when absent.
  int column(std::string_view name) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace mirage::util

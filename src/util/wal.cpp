#include "util/wal.hpp"

#include <fcntl.h>
#include <signal.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <filesystem>

namespace mirage::util::wal {

namespace fs = std::filesystem;

namespace {

constexpr char kMagic[8] = {'M', 'W', 'A', 'L', 'S', 'E', 'G', '1'};
constexpr std::size_t kMagicSize = sizeof(kMagic);
constexpr std::size_t kHeaderSize = 8;  // u32 size + u32 crc

void set_error(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
}

std::string errno_message(const char* what, const std::string& path) {
  return std::string(what) + " failed for " + path + ": " + std::strerror(errno);
}

}  // namespace

std::uint32_t crc32c(std::uint32_t seed, const void* data, std::size_t size) {
  // Software table for the reflected Castagnoli polynomial 0x82F63B78;
  // portable, no SSE4.2 requirement, and fast enough that record CRCs are
  // noise next to the write(2) they guard.
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) c = (c & 1u) ? (0x82F63B78u ^ (c >> 1)) : (c >> 1);
      t[i] = c;
    }
    return t;
  }();
  const auto* p = static_cast<const std::uint8_t*>(data);
  std::uint32_t crc = ~seed;
  for (std::size_t i = 0; i < size; ++i) crc = table[(crc ^ p[i]) & 0xFFu] ^ (crc >> 8);
  return ~crc;
}

const char* sync_level_name(SyncLevel level) {
  switch (level) {
    case SyncLevel::kNone: return "none";
    case SyncLevel::kOnCommit: return "on_commit";
    case SyncLevel::kOnRoll: return "on_roll";
  }
  return "?";
}

// ---- fault injector -------------------------------------------------------

namespace testing {
namespace {
// One process-wide injector. The armed flag is the only thing the hot
// path reads when tests aren't running; everything else is written under
// arm_fault/disarm_fault (tests are single-threaded around arming).
std::atomic<bool> g_armed{false};
std::atomic<std::uint64_t> g_ops{0};
std::uint64_t g_trigger = 0;
FaultMode g_mode = FaultMode::kNone;
double g_fraction = 0.0;
}  // namespace

void arm_fault(std::uint64_t trigger_op, FaultMode mode, double short_write_fraction) {
  g_ops.store(0, std::memory_order_relaxed);
  g_trigger = trigger_op;
  g_mode = mode;
  g_fraction = std::clamp(short_write_fraction, 0.0, 1.0);
  g_armed.store(true, std::memory_order_release);
}

void disarm_fault() {
  g_armed.store(false, std::memory_order_release);
  g_ops.store(0, std::memory_order_relaxed);
}

std::uint64_t fault_ops_seen() { return g_ops.load(std::memory_order_relaxed); }

}  // namespace testing

namespace {

struct FaultAction {
  bool fire = false;
  testing::FaultMode mode = testing::FaultMode::kNone;
  double fraction = 0.0;
};

FaultAction consult_fault() {
  FaultAction action;
  if (!testing::g_armed.load(std::memory_order_acquire)) return action;
  const std::uint64_t op = testing::g_ops.fetch_add(1, std::memory_order_relaxed) + 1;
  if (testing::g_trigger != 0 && op == testing::g_trigger &&
      testing::g_mode != testing::FaultMode::kNone) {
    action.fire = true;
    action.mode = testing::g_mode;
    action.fraction = testing::g_fraction;
  }
  return action;
}

[[noreturn]] void fault_kill() {
  ::raise(SIGKILL);
  ::_exit(137);  // unreachable unless SIGKILL is somehow blocked
}

bool write_all(int fd, const std::uint8_t* p, std::size_t n) {
  while (n > 0) {
    const ssize_t w = ::write(fd, p, n);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += static_cast<std::size_t>(w);
    n -= static_cast<std::size_t>(w);
  }
  return true;
}

// The four durable primitives every WAL client funnels through. Each is
// one countable fault boundary: the injector can kill the process here,
// make the op fail with EIO, or (for writes) complete only a prefix.
bool fault_write(int fd, const void* data, std::size_t size, const std::string& path,
                 std::string* error) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  const FaultAction fault = consult_fault();
  if (fault.fire) {
    const std::size_t prefix = static_cast<std::size_t>(static_cast<double>(size) * fault.fraction);
    switch (fault.mode) {
      case testing::FaultMode::kKill:
        fault_kill();
      case testing::FaultMode::kShortWriteKill:
        write_all(fd, p, prefix);
        fault_kill();
      case testing::FaultMode::kShortWriteError:
        write_all(fd, p, prefix);
        [[fallthrough]];
      case testing::FaultMode::kError:
        set_error(error, "injected EIO writing " + path);
        return false;
      case testing::FaultMode::kNone:
        break;
    }
  }
  if (!write_all(fd, p, size)) {
    set_error(error, errno_message("write", path));
    return false;
  }
  return true;
}

bool fault_fsync(int fd, const std::string& path, std::string* error) {
  const FaultAction fault = consult_fault();
  if (fault.fire) {
    switch (fault.mode) {
      case testing::FaultMode::kKill:
      case testing::FaultMode::kShortWriteKill:
        fault_kill();
      case testing::FaultMode::kError:
      case testing::FaultMode::kShortWriteError:
        set_error(error, "injected EIO syncing " + path);
        return false;
      case testing::FaultMode::kNone:
        break;
    }
  }
  if (::fsync(fd) != 0) {
    set_error(error, errno_message("fsync", path));
    return false;
  }
  return true;
}

int fault_open_create(const std::string& path, std::string* error) {
  const FaultAction fault = consult_fault();
  if (fault.fire) {
    switch (fault.mode) {
      case testing::FaultMode::kKill:
      case testing::FaultMode::kShortWriteKill:
        fault_kill();
      case testing::FaultMode::kError:
      case testing::FaultMode::kShortWriteError:
        set_error(error, "injected EIO creating " + path);
        return -1;
      case testing::FaultMode::kNone:
        break;
    }
  }
  const int fd = ::open(path.c_str(), O_CREAT | O_WRONLY | O_TRUNC, 0644);
  if (fd < 0) set_error(error, errno_message("open", path));
  return fd;
}

bool fault_rename(const std::string& from, const std::string& to, std::string* error) {
  const FaultAction fault = consult_fault();
  if (fault.fire) {
    switch (fault.mode) {
      case testing::FaultMode::kKill:
      case testing::FaultMode::kShortWriteKill:
        fault_kill();
      case testing::FaultMode::kError:
      case testing::FaultMode::kShortWriteError:
        set_error(error, "injected EIO renaming " + from);
        return false;
      case testing::FaultMode::kNone:
        break;
    }
  }
  if (::rename(from.c_str(), to.c_str()) != 0) {
    set_error(error, errno_message("rename", from + " -> " + to));
    return false;
  }
  return true;
}

// ---- segment scanning / torn-tail truncation ------------------------------

struct SegmentFile {
  std::uint64_t index;
  std::string path;
};

std::string segment_path(const std::string& dir, std::uint64_t index) {
  char name[32];
  std::snprintf(name, sizeof(name), "wal-%08" PRIu64 ".seg", index);
  return dir + "/" + name;
}

std::vector<SegmentFile> list_segments(const std::string& dir) {
  std::vector<SegmentFile> segments;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    if (name.size() != 16 || name.rfind("wal-", 0) != 0 || name.substr(12) != ".seg") continue;
    char* end = nullptr;
    const std::uint64_t index = std::strtoull(name.c_str() + 4, &end, 10);
    if (end != name.c_str() + 12) continue;
    segments.push_back({index, entry.path().string()});
  }
  std::sort(segments.begin(), segments.end(),
            [](const SegmentFile& a, const SegmentFile& b) { return a.index < b.index; });
  return segments;
}

/// The shared recovery core: walk segments in index order, replay valid
/// records into `fn` (when given), and on the first torn/corrupt byte
/// truncate that segment there and DELETE every later segment — whatever
/// was appended after a lost byte is not a prefix and must not survive.
/// Also treats a gap in segment numbering as a torn point for the same
/// reason. Returns the list of surviving segments.
bool scan_and_truncate(const std::string& dir,
                       const std::function<void(const void*, std::size_t)>* fn, RecoveryInfo* info,
                       std::vector<SegmentFile>* surviving, std::string* error) {
  std::vector<SegmentFile> segments = list_segments(dir);
  bool torn = false;
  std::uint64_t prev_index = 0;
  bool have_prev = false;
  std::vector<std::uint8_t> bytes;  // recovery path; allocation is fine here
  std::vector<SegmentFile> keep;

  for (const SegmentFile& segment : segments) {
    std::error_code ec;
    const std::uint64_t file_size = fs::file_size(segment.path, ec);
    if (ec) {
      set_error(error, "stat failed for " + segment.path + ": " + ec.message());
      return false;
    }
    if (torn || (have_prev && segment.index != prev_index + 1)) {
      // Everything past a torn tail (or numbering gap) is unreachable
      // history — delete it so recovery is idempotent and the writer
      // never resurrects it.
      torn = true;
      if (info != nullptr) {
        info->truncated_bytes += file_size;
        info->torn_tail = true;
      }
      fs::remove(segment.path, ec);
      continue;
    }
    prev_index = segment.index;
    have_prev = true;

    bytes.resize(file_size);
    if (file_size > 0) {
      FILE* f = std::fopen(segment.path.c_str(), "rb");
      if (f == nullptr) {
        set_error(error, errno_message("open", segment.path));
        return false;
      }
      const std::size_t got = std::fread(bytes.data(), 1, bytes.size(), f);
      std::fclose(f);
      if (got != bytes.size()) {
        set_error(error, "short read from " + segment.path);
        return false;
      }
    }

    // A zero-length segment is a valid empty one (created, magic not yet
    // durable); anything shorter than the magic or with a wrong magic is
    // torn at offset 0.
    std::size_t off = 0;
    if (file_size > 0) {
      if (file_size >= kMagicSize && std::memcmp(bytes.data(), kMagic, kMagicSize) == 0) {
        off = kMagicSize;
        while (off + kHeaderSize <= file_size) {
          const std::uint32_t payload_size = load_u32_le(bytes.data() + off);
          const std::uint32_t stored_crc = load_u32_le(bytes.data() + off + 4);
          if (payload_size > file_size - off - kHeaderSize) break;  // torn length/payload
          std::uint32_t crc = crc32c(0, bytes.data() + off, 4);
          crc = crc32c(crc, bytes.data() + off + kHeaderSize, payload_size);
          if (crc != stored_crc) break;  // torn or corrupt record
          if (fn != nullptr && *fn) (*fn)(bytes.data() + off + kHeaderSize, payload_size);
          if (info != nullptr) ++info->records;
          off += kHeaderSize + payload_size;
        }
      }
      if (off < file_size) {
        torn = true;
        if (info != nullptr) {
          info->truncated_bytes += file_size - off;
          info->torn_tail = true;
        }
        std::error_code trunc_ec;
        fs::resize_file(segment.path, off, trunc_ec);
        if (trunc_ec) {
          set_error(error, "truncate failed for " + segment.path + ": " + trunc_ec.message());
          return false;
        }
      }
    }
    keep.push_back(segment);
    if (info != nullptr) ++info->segments;
  }

  if (surviving != nullptr) *surviving = std::move(keep);
  return true;
}

}  // namespace

bool recover(const std::string& dir, const std::function<void(const void*, std::size_t)>& fn,
             RecoveryInfo* info, std::string* error) {
  if (info != nullptr) *info = RecoveryInfo{};
  std::error_code ec;
  if (!fs::exists(dir, ec)) return true;  // nothing journaled yet — empty log
  return scan_and_truncate(dir, &fn, info, nullptr, error);
}

// ---- Writer ---------------------------------------------------------------

Writer::~Writer() { close(); }

bool Writer::open(const std::string& dir, const WalOptions& options, std::string* error) {
  close();
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    set_error(error, "create_directories failed for " + dir + ": " + ec.message());
    return false;
  }

  dir_ = dir;
  options_ = options;
  options_.segment_bytes = std::max<std::size_t>(options_.segment_bytes, kMagicSize + kHeaderSize);
  buffer_.assign(std::max<std::size_t>(options_.buffer_bytes, 4096), 0);
  buffered_ = 0;
  records_ = 0;

  // Reopening over a crashed log: run the same truncation recover() does,
  // then continue appending after the last valid record.
  std::vector<SegmentFile> segments;
  if (!scan_and_truncate(dir, nullptr, nullptr, &segments, error)) return false;

  dir_fd_ = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dir_fd_ < 0) {
    set_error(error, errno_message("open(dir)", dir));
    return false;
  }

  if (segments.empty()) return open_segment(0, error);

  const SegmentFile& last = segments.back();
  fd_ = ::open(last.path.c_str(), O_WRONLY | O_APPEND);
  if (fd_ < 0) {
    set_error(error, errno_message("open", last.path));
    close();
    return false;
  }
  segment_index_ = last.index;
  std::error_code size_ec;
  segment_size_ = fs::file_size(last.path, size_ec);
  if (size_ec) {
    set_error(error, "stat failed for " + last.path + ": " + size_ec.message());
    close();
    return false;
  }
  if (segment_size_ == 0) {
    // Recovery truncated a torn magic back to zero — restore the header
    // before the first new record.
    if (!fault_write(fd_, kMagic, kMagicSize, last.path, error)) {
      close();
      return false;
    }
    segment_size_ = kMagicSize;
  }
  return true;
}

bool Writer::open_segment(std::uint64_t index, std::string* error) {
  const std::string path = segment_path(dir_, index);
  const int fd = fault_open_create(path, error);
  if (fd < 0) return false;
  if (!fault_write(fd, kMagic, kMagicSize, path, error)) {
    ::close(fd);
    return false;
  }
  if (options_.sync != SyncLevel::kNone) {
    // Make the segment's directory entry durable so a power loss can't
    // orphan records written into a file the directory forgot.
    if (!fault_fsync(dir_fd_, dir_, error)) {
      ::close(fd);
      return false;
    }
  }
  fd_ = fd;
  segment_index_ = index;
  segment_size_ = kMagicSize;
  return true;
}

bool Writer::append(const void* data, std::size_t size, std::string* error) {
  const Chunk chunk{data, size};
  return append(&chunk, 1, error);
}

bool Writer::append(const Chunk* chunks, std::size_t count, std::string* error) {
  if (fd_ < 0) {
    set_error(error, "wal writer is not open");
    return false;
  }
  std::size_t payload_size = 0;
  for (std::size_t i = 0; i < count; ++i) payload_size += chunks[i].size;
  if (payload_size > UINT32_MAX) {
    set_error(error, "wal record exceeds 4 GiB");
    return false;
  }

  std::uint8_t header[kHeaderSize];
  store_u32_le(header, static_cast<std::uint32_t>(payload_size));
  std::uint32_t crc = crc32c(0, header, 4);
  for (std::size_t i = 0; i < count; ++i) crc = crc32c(crc, chunks[i].data, chunks[i].size);
  store_u32_le(header + 4, crc);

  const std::size_t record_size = kHeaderSize + payload_size;
  if (buffered_ + record_size > buffer_.size() && buffered_ > 0) {
    if (!flush_buffer(error)) return false;
  }
  if (record_size > buffer_.size()) {
    // Oversized record: stream straight to the file, keeping append
    // allocation-free regardless of record size.
    if (!fault_write(fd_, header, kHeaderSize, dir_, error)) return false;
    for (std::size_t i = 0; i < count; ++i) {
      if (!fault_write(fd_, chunks[i].data, chunks[i].size, dir_, error)) return false;
    }
  } else {
    std::memcpy(buffer_.data() + buffered_, header, kHeaderSize);
    std::size_t at = buffered_ + kHeaderSize;
    for (std::size_t i = 0; i < count; ++i) {
      std::memcpy(buffer_.data() + at, chunks[i].data, chunks[i].size);
      at += chunks[i].size;
    }
    buffered_ += record_size;
  }
  segment_size_ += record_size;
  ++records_;
  return true;
}

bool Writer::flush_buffer(std::string* error) {
  if (buffered_ == 0) return true;
  if (!fault_write(fd_, buffer_.data(), buffered_, dir_, error)) return false;
  buffered_ = 0;
  return true;
}

bool Writer::roll_if_needed(std::string* error) {
  if (segment_size_ < options_.segment_bytes) return true;
  if (options_.sync == SyncLevel::kOnRoll) {
    // The finished segment is the durability unit at this level.
    if (!fault_fsync(fd_, dir_, error)) return false;
  }
  ::close(fd_);
  fd_ = -1;
  return open_segment(segment_index_ + 1, error);
}

bool Writer::commit(std::string* error) {
  if (fd_ < 0) {
    set_error(error, "wal writer is not open");
    return false;
  }
  if (!flush_buffer(error)) return false;
  if (options_.sync == SyncLevel::kOnCommit) {
    if (!fault_fsync(fd_, dir_, error)) return false;
  }
  return roll_if_needed(error);
}

bool Writer::append_commit(const void* data, std::size_t size, std::string* error) {
  return append(data, size, error) && commit(error);
}

bool Writer::sync(std::string* error) {
  if (fd_ < 0) {
    set_error(error, "wal writer is not open");
    return false;
  }
  if (!flush_buffer(error)) return false;
  return fault_fsync(fd_, dir_, error);
}

void Writer::close() {
  if (fd_ >= 0) {
    std::string ignored;
    commit(&ignored);  // best effort: don't lose buffered records on close
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }
  if (dir_fd_ >= 0) {
    ::close(dir_fd_);
    dir_fd_ = -1;
  }
  buffered_ = 0;
}

// ---- durable filesystem helpers ------------------------------------------

bool fsync_path(const std::string& path, std::string* error) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    set_error(error, errno_message("open", path));
    return false;
  }
  const bool ok = fault_fsync(fd, path, error);
  ::close(fd);
  return ok;
}

bool fsync_dir(const std::string& dir, std::string* error) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) {
    set_error(error, errno_message("open(dir)", dir));
    return false;
  }
  const bool ok = fault_fsync(fd, dir, error);
  ::close(fd);
  return ok;
}

bool rename_durable(const std::string& from, const std::string& to, std::string* error) {
  if (!fault_rename(from, to, error)) return false;
  const std::string parent = fs::path(to).parent_path().string();
  return fsync_dir(parent.empty() ? "." : parent, error);
}

}  // namespace mirage::util::wal

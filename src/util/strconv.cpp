#include "util/strconv.hpp"

#include <charconv>
#include <cstdio>
#include <limits>

namespace mirage::util {

std::string format_double_exact(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

bool parse_i64(const std::string& s, std::int64_t& out) {
  const auto [p, ec] = std::from_chars(s.data(), s.data() + s.size(), out);
  return ec == std::errc{} && p == s.data() + s.size();
}

bool parse_i32(const std::string& s, std::int32_t& out) {
  std::int64_t v = 0;
  if (!parse_i64(s, v) || v < std::numeric_limits<std::int32_t>::min() ||
      v > std::numeric_limits<std::int32_t>::max()) {
    return false;
  }
  out = static_cast<std::int32_t>(v);
  return true;
}

bool parse_u64(const std::string& s, std::uint64_t& out) {
  const auto [p, ec] = std::from_chars(s.data(), s.data() + s.size(), out);
  return ec == std::errc{} && p == s.data() + s.size();
}

bool parse_f64(const std::string& s, double& out) {
  const auto [p, ec] = std::from_chars(s.data(), s.data() + s.size(), out);
  return ec == std::errc{} && p == s.data() + s.size();
}

bool parse_bool(const std::string& s, bool& out) {
  if (s == "true" || s == "1") return out = true, true;
  if (s == "false" || s == "0") return out = false, true;
  return false;
}

}  // namespace mirage::util

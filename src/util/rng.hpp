// Deterministic pseudo-random number generation for simulation and training.
//
// Every stochastic component in Mirage (workload generators, exploration,
// replay sampling, weight init) owns its own Rng instance seeded from the
// experiment config, so runs are reproducible and components can be
// re-seeded independently. The generator is xoshiro256** seeded via
// SplitMix64, which is fast, has a 2^256-1 period and passes BigCrush.
#pragma once

#include <cstdint>
#include <cmath>
#include <vector>

namespace mirage::util {

/// SplitMix64 step: used for seeding and as a cheap stateless hash.
std::uint64_t splitmix64(std::uint64_t& state);

/// FNV-1a 64-bit offset basis.
inline constexpr std::uint64_t kFnv1a64Basis = 0xcbf29ce484222325ull;

/// FNV-1a step folding the 8 bytes of x into h — the stateless content
/// hash behind the golden-trace tests and scenario schedule hashes.
inline std::uint64_t fnv1a64(std::uint64_t h, std::uint64_t x) {
  for (int i = 0; i < 8; ++i) {
    h ^= (x >> (8 * i)) & 0xff;
    h *= 0x100000001b3ull;
  }
  return h;
}

/// xoshiro256** PRNG with convenience distributions.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

  /// Raw 64 random bits.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] (inclusive).
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Standard normal via Box-Muller (cached spare deviate).
  double normal();

  /// Normal with the given mean / standard deviation.
  double normal(double mean, double stddev);

  /// Log-normal: exp(N(mu, sigma)). mu/sigma are in log space.
  double lognormal(double mu, double sigma);

  /// Exponential with the given rate (lambda).
  double exponential(double rate);

  /// Poisson count with the given mean (Knuth for small, PTRS-like
  /// normal approximation for large means).
  std::int64_t poisson(double mean);

  /// Bernoulli trial with probability p of true.
  bool bernoulli(double p);

  /// Sample an index from unnormalized non-negative weights.
  std::size_t categorical(const std::vector<double>& weights);

  /// Zipf-distributed integer in [1, n] with exponent s (rank sampling).
  std::int64_t zipf(std::int64_t n, double s);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(i) - 1));
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Derive an independent child generator (for per-thread streams).
  Rng split();

 private:
  std::uint64_t s_[4];
  double spare_normal_ = 0.0;
  bool has_spare_ = false;
};

}  // namespace mirage::util

// Key=value configuration store with typed getters and defaulting.
// Used by examples and benches for CLI overrides ("key=value" args) and by
// the tuner for hyper-parameter grids.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace mirage::util {

class Config {
 public:
  Config() = default;

  /// Parse "key=value" tokens (e.g., from argv); unknown tokens without '='
  /// are ignored so positional args can coexist.
  static Config from_args(int argc, const char* const* argv);
  /// Parse newline-separated key=value text ('#' comments allowed).
  static Config from_text(const std::string& text);

  void set(const std::string& key, const std::string& value);
  bool has(const std::string& key) const;

  std::string get_string(const std::string& key, const std::string& def) const;
  std::int64_t get_int(const std::string& key, std::int64_t def) const;
  double get_double(const std::string& key, double def) const;
  bool get_bool(const std::string& key, bool def) const;

  std::vector<std::string> keys() const;

 private:
  std::map<std::string, std::string> values_;
};

/// Structural pre-scan for key=value file formats (scenario specs, lab
/// plans): returns the first non-comment, non-blank line lacking '=', or
/// nullopt when the whole text is well-formed. Lets parsers reject junk
/// files loudly instead of silently reading them as all-defaults.
std::optional<std::string> first_malformed_line(const std::string& text);

}  // namespace mirage::util

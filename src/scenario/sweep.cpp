#include "scenario/sweep.hpp"

#include <cstdio>
#include <sstream>

#include "obs/metrics.hpp"
#include "util/csv.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace mirage::scenario {

std::size_t SweepMatrix::cell_count() const {
  const std::size_t c = clusters.empty() ? 1 : clusters.size();
  const std::size_t u = utilization_scales.empty() ? 1 : utilization_scales.size();
  const std::size_t d = reservation_depths.empty() ? 1 : reservation_depths.size();
  const std::size_t e = event_profiles.empty() ? 1 : event_profiles.size();
  const std::size_t p = partition_layouts.empty() ? 1 : partition_layouts.size();
  return c * u * d * e * p;
}

std::vector<ScenarioSpec> SweepMatrix::expand() const {
  const std::vector<std::string> cs = clusters.empty() ? std::vector<std::string>{base.cluster}
                                                       : clusters;
  const std::vector<double> us = utilization_scales.empty()
                                     ? std::vector<double>{base.utilization_scale}
                                     : utilization_scales;
  const std::vector<std::int32_t> ds =
      reservation_depths.empty() ? std::vector<std::int32_t>{base.scheduler.reservation_depth}
                                 : reservation_depths;
  std::vector<EventProfile> es = event_profiles;
  if (es.empty()) es.push_back(EventProfile{"base", base.events});
  // The partition axis is optional; without it, cells inherit the base
  // layout and cell names keep their pre-partition shape (so existing
  // artifact ids and seed assignments stay stable).
  std::vector<PartitionLayout> ps = partition_layouts;
  const bool partition_axis = !ps.empty();
  if (!partition_axis) ps.push_back(PartitionLayout{"base", base.partitions});

  // Per-cell child seeds come from one deterministic stream, assigned in
  // expansion order — execution order (and thread count) cannot change
  // which seed a cell gets.
  util::Rng seeder(base.seed);

  std::vector<ScenarioSpec> cells;
  cells.reserve(cs.size() * us.size() * ds.size() * es.size() * ps.size());
  char buf[192];
  for (const auto& c : cs) {
    for (const double u : us) {
      for (const std::int32_t d : ds) {
        for (const auto& e : es) {
          for (const auto& p : ps) {
            ScenarioSpec cell = base;
            cell.cluster = c;
            cell.utilization_scale = u;
            cell.scheduler.reservation_depth = d;
            cell.events = e.events;
            cell.partitions = p.partitions;
            cell.seed = seeder.next_u64();
            if (partition_axis) {
              std::snprintf(buf, sizeof(buf), "%s/u%.2f/d%d/%s/%s", c.c_str(), u, d,
                            e.name.c_str(), p.name.c_str());
            } else {
              std::snprintf(buf, sizeof(buf), "%s/u%.2f/d%d/%s", c.c_str(), u, d,
                            e.name.c_str());
            }
            cell.name = buf;
            cells.push_back(std::move(cell));
          }
        }
      }
    }
  }
  return cells;
}

void finalize_report(SweepReport& report) {
  report.mean_wait_hours = 0.0;
  report.worst_p95_wait_hours = 0.0;
  report.mean_utilization = 0.0;
  report.total_killed = 0;
  report.total_preempted = 0;
  report.total_unscheduled = 0;
  report.heavy_cells = 0;
  if (report.cells.empty()) return;
  for (const auto& cell : report.cells) {
    report.mean_wait_hours += cell.metrics.mean_wait_hours;
    report.worst_p95_wait_hours = std::max(report.worst_p95_wait_hours,
                                           cell.metrics.p95_wait_hours);
    report.mean_utilization += cell.metrics.average_utilization;
    report.total_killed += cell.killed_jobs;
    report.total_preempted += cell.preempted_jobs;
    report.total_unscheduled += cell.unscheduled;
    report.heavy_cells += cell.load == core::LoadClass::kHeavy;
  }
  const auto n = static_cast<double>(report.cells.size());
  report.mean_wait_hours /= n;
  report.mean_utilization /= n;
}

void SweepTrace::prepare(const std::vector<ScenarioSpec>& specs, std::size_t ring_capacity) {
  rings_.clear();
  labels_.clear();
  rings_.reserve(specs.size());
  labels_.reserve(specs.size());
  for (const auto& spec : specs) {
    rings_.push_back(std::make_unique<obs::TraceRing>(ring_capacity));
    labels_.push_back(spec.name);
  }
}

std::vector<obs::TraceTrack> SweepTrace::tracks() const {
  std::vector<obs::TraceTrack> out;
  out.reserve(rings_.size());
  for (std::size_t i = 0; i < rings_.size(); ++i) {
    out.push_back(obs::TraceTrack{labels_[i], static_cast<std::uint32_t>(i), rings_[i].get()});
  }
  return out;
}

std::uint64_t SweepTrace::total_events() const {
  std::uint64_t n = 0;
  for (const auto& ring : rings_) n += ring->recorded();
  return n;
}

namespace {

/// Run one cell, bracketed by deterministic sim-time lifecycle events in
/// its ring: kCellStart at t=0 and a kCellFinish slice spanning the cell's
/// makespan (arg0 = cell index, arg1 = jobs).
ScenarioResult run_traced_cell(const ScenarioSpec& spec, std::size_t index,
                               obs::TraceRing* ring) {
  if (ring == nullptr || !obs::enabled()) return run_scenario(spec);
  {
    obs::TraceEvent ev;
    ev.kind = obs::TraceEventKind::kCellStart;
    ev.name = "cell_start";
    ev.arg0 = static_cast<std::int64_t>(index);
    ring->record(ev);
  }
  ScenarioResult result = run_scenario(spec, ring);
  {
    obs::TraceEvent ev;
    ev.kind = obs::TraceEventKind::kCellFinish;
    ev.name = "cell";
    ev.dur = static_cast<std::int64_t>(result.metrics.makespan_hours * 3600.0);
    ev.arg0 = static_cast<std::int64_t>(index);
    ev.arg1 = static_cast<std::int64_t>(result.jobs);
    ring->record(ev);
  }
  return result;
}

}  // namespace

SweepReport SweepRunner::run(const std::vector<ScenarioSpec>& specs, SweepTrace* trace) const {
  if (trace != nullptr && trace->cell_count() != specs.size()) trace->prepare(specs);
  SweepReport report;
  report.cells.resize(specs.size());
  util::ThreadPool pool(threads_);
  pool.parallel_for(specs.size(), [&](std::size_t i) {
    report.cells[i] = run_traced_cell(specs[i], i, trace ? trace->ring(i) : nullptr);
  });
  finalize_report(report);
  return report;
}

SweepReport SweepRunner::run_serial(const std::vector<ScenarioSpec>& specs, SweepTrace* trace) {
  if (trace != nullptr && trace->cell_count() != specs.size()) trace->prepare(specs);
  SweepReport report;
  report.cells.reserve(specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    report.cells.push_back(run_traced_cell(specs[i], i, trace ? trace->ring(i) : nullptr));
  }
  finalize_report(report);
  return report;
}

std::string SweepReport::to_csv() const {
  std::ostringstream out;
  util::CsvWriter writer(out);
  writer.write_row({"scenario", "nodes", "jobs", "unscheduled", "killed", "preempted",
                    "partition_counts", "load", "mean_wait_h", "p95_wait_h", "utilization",
                    "makespan_h", "passes", "schedule_hash"});
  char num[48];
  for (const auto& c : cells) {
    std::vector<std::string> row;
    row.push_back(c.name);
    row.push_back(std::to_string(c.total_nodes));
    row.push_back(std::to_string(c.jobs));
    row.push_back(std::to_string(c.unscheduled));
    row.push_back(std::to_string(c.killed_jobs));
    row.push_back(std::to_string(c.preempted_jobs));
    row.push_back(c.partition_counts_text());
    row.push_back(core::load_class_name(c.load));
    std::snprintf(num, sizeof(num), "%.6f", c.metrics.mean_wait_hours);
    row.push_back(num);
    std::snprintf(num, sizeof(num), "%.6f", c.metrics.p95_wait_hours);
    row.push_back(num);
    std::snprintf(num, sizeof(num), "%.6f", c.metrics.average_utilization);
    row.push_back(num);
    std::snprintf(num, sizeof(num), "%.6f", c.metrics.makespan_hours);
    row.push_back(num);
    row.push_back(std::to_string(c.scheduler_passes));
    std::snprintf(num, sizeof(num), "%016llx",
                  static_cast<unsigned long long>(c.schedule_hash));
    row.push_back(num);
    writer.write_row(row);
  }
  return out.str();
}

std::string SweepReport::format_table() const {
  std::ostringstream out;
  char line[256];
  std::snprintf(line, sizeof(line), "%-34s %6s %6s %5s %5s %6s  %-6s %10s %10s %6s\n",
                "scenario", "jobs", "unsch", "kill", "pree", "util", "load", "mean_w(h)",
                "p95_w(h)", "passes");
  out << line;
  for (const auto& c : cells) {
    std::snprintf(line, sizeof(line),
                  "%-34s %6zu %6zu %5zu %5zu %5.1f%%  %-6s %10.2f %10.2f %6llu\n",
                  c.name.c_str(), c.jobs, c.unscheduled, c.killed_jobs, c.preempted_jobs,
                  100.0 * c.metrics.average_utilization, core::load_class_name(c.load),
                  c.metrics.mean_wait_hours, c.metrics.p95_wait_hours,
                  static_cast<unsigned long long>(c.scheduler_passes));
    out << line;
  }
  std::snprintf(line, sizeof(line),
                "cells %zu | mean wait %.2f h | worst p95 %.2f h | mean util %.1f%% | "
                "killed %zu | preempted %zu | unscheduled %zu | heavy cells %zu\n",
                cells.size(), mean_wait_hours, worst_p95_wait_hours, 100.0 * mean_utilization,
                total_killed, total_preempted, total_unscheduled, heavy_cells);
  out << line;
  return out.str();
}

}  // namespace mirage::scenario

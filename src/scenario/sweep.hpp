// Parallel sweep harness: expand a scenario matrix (cluster x load scale x
// scheduler depth x event profile) into concrete cells and run every cell
// on a util::ThreadPool. Each cell carries its own pre-assigned seed drawn
// from a util::Rng stream during expansion, and run_scenario() is a pure
// function of the spec, so parallel results are bitwise identical to a
// single-threaded run of the same cells — the determinism contract the
// sweep tests and the scenario_sweep example verify.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "obs/trace.hpp"
#include "scenario/scenario.hpp"

namespace mirage::scenario {

/// Named event profile, one axis value of the matrix ("none", "outage",
/// "maintenance", "flash-crowd", ...).
struct EventProfile {
  std::string name = "none";
  std::vector<ScenarioEvent> events;
};

/// Named partition layout, one axis value of the matrix ("single",
/// "3-pool", ...). An empty partition list means "keep the preset's
/// layout" (single pool for the paper presets).
struct PartitionLayout {
  std::string name = "single";
  std::vector<trace::ClusterPartition> partitions;
};

/// Cross-product scenario matrix. Empty axes inherit the base spec's
/// value, so any subset of axes can vary.
struct SweepMatrix {
  ScenarioSpec base;
  std::vector<std::string> clusters;            ///< empty = {base.cluster}
  std::vector<double> utilization_scales;       ///< empty = {base.utilization_scale}
  std::vector<std::int32_t> reservation_depths; ///< empty = {base.scheduler.reservation_depth}
  std::vector<EventProfile> event_profiles;     ///< empty = {base.events as "base"}
  std::vector<PartitionLayout> partition_layouts;  ///< empty = {base.partitions}, no name suffix

  /// Expand to concrete cells in a fixed axis order (cluster-major). Cell
  /// names encode their coordinates; per-cell seeds are drawn in
  /// expansion order from util::Rng(base.seed), so the expansion itself
  /// is deterministic and independent of how cells later execute.
  std::vector<ScenarioSpec> expand() const;

  std::size_t cell_count() const;
};

struct SweepReport {
  std::vector<ScenarioResult> cells;  ///< expansion order

  /// Cross-cell aggregates (consumed by evaluation tooling).
  double mean_wait_hours = 0.0;       ///< mean of per-cell mean waits
  double worst_p95_wait_hours = 0.0;
  double mean_utilization = 0.0;
  std::size_t total_killed = 0;
  std::size_t total_preempted = 0;
  std::size_t total_unscheduled = 0;
  std::size_t heavy_cells = 0;        ///< cells classified LoadClass::kHeavy

  std::string to_csv() const;
  std::string format_table() const;
};

/// Compute the aggregate fields of a report from its cells.
void finalize_report(SweepReport& report);

/// Per-cell sim-time trace capture for one sweep run. One fixed-capacity
/// obs::TraceRing per cell, allocated up front (prepare), written by the
/// cell's simulator during the run, and exported afterwards in expansion
/// order (pid = cell index, tid = partition id). Because every ring holds
/// only deterministic sim-time events and tracks are merged in expansion
/// order, the exported bytes are identical whether the sweep ran serial
/// or parallel — the contract the obs determinism test pins.
class SweepTrace {
 public:
  /// Allocate one ring per cell (labels come from the specs). Re-entrant:
  /// re-preparing resets the capture.
  void prepare(const std::vector<ScenarioSpec>& specs, std::size_t ring_capacity = 1 << 16);

  std::size_t cell_count() const { return rings_.size(); }
  obs::TraceRing* ring(std::size_t i) { return rings_[i].get(); }
  const obs::TraceRing* ring(std::size_t i) const { return rings_[i].get(); }

  /// Export tracks in expansion order. The rings stay owned by this object.
  std::vector<obs::TraceTrack> tracks() const;
  std::string to_chrome_json() const { return obs::to_chrome_json(tracks()); }
  std::string to_csv() const { return obs::to_trace_csv(tracks()); }

  /// Total events recorded across all cells (incl. overwritten ones).
  std::uint64_t total_events() const;

 private:
  std::vector<std::unique_ptr<obs::TraceRing>> rings_;
  std::vector<std::string> labels_;
};

class SweepRunner {
 public:
  /// threads == 0 means hardware concurrency.
  explicit SweepRunner(std::size_t threads = 0) : threads_(threads) {}

  /// Run every cell on the thread pool; cells[i] of the report corresponds
  /// to specs[i] regardless of completion order. When `trace` is non-null
  /// each cell records sim-time events into its own ring (the trace is
  /// prepared automatically if its cell count does not match).
  SweepReport run(const std::vector<ScenarioSpec>& specs, SweepTrace* trace = nullptr) const;

  /// Single-threaded reference run (same per-cell computation).
  static SweepReport run_serial(const std::vector<ScenarioSpec>& specs,
                                SweepTrace* trace = nullptr);

 private:
  std::size_t threads_;
};

}  // namespace mirage::scenario

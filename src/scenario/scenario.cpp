#include "scenario/scenario.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "sim/reference_simulator.hpp"
#include "sim/simulator.hpp"
#include "trace/generator.hpp"
#include "util/config.hpp"
#include "util/csv.hpp"
#include "util/rng.hpp"
#include "util/strconv.hpp"

namespace mirage::scenario {

using util::SimTime;

const char* scenario_event_name(ScenarioEventKind k) {
  switch (k) {
    case ScenarioEventKind::kNodeDown: return "down";
    case ScenarioEventKind::kDrain: return "drain";
    case ScenarioEventKind::kNodeRestore: return "restore";
    case ScenarioEventKind::kBurst: return "burst";
    case ScenarioEventKind::kPreempt: return "preempt";
    case ScenarioEventKind::kCorrelatedDown: return "correlated_down";
  }
  return "?";
}

trace::ClusterPreset ScenarioSpec::resolved_preset() const {
  auto preset = trace::preset_by_name(cluster);
  if (nodes_override > 0) {
    preset.node_count = nodes_override;
    preset.partitions.clear();  // an explicit scalar override means one pool
  }
  if (!partitions.empty()) {
    preset.partitions = partitions;
    std::int32_t total = 0;
    for (const auto& p : partitions) total += p.node_count;
    preset.node_count = total;
  }
  return preset;
}

sim::ClusterModel to_cluster_model(const trace::ClusterPreset& preset) {
  std::vector<sim::Partition> parts;
  for (const auto& p : preset.partitions_or_default()) {
    parts.push_back(sim::Partition{p.name, p.node_count});
  }
  return sim::ClusterModel(parts);
}

// ------------------------------------------------------------- serialization

namespace {

using util::format_double_exact;
using util::parse_bool;
using util::parse_f64;
using util::parse_i32;
using util::parse_i64;
using util::parse_u64;

bool fail(std::string* error, const std::string& message) {
  if (error) *error = message;
  return false;
}

/// Trailing "key=value" fields of an event row (recurrence keys). The
/// positional prefix never contains '=', so the split is unambiguous.
bool parse_event_keywords(const std::vector<std::string>& fields, std::size_t first_kw,
                          ScenarioEvent& ev, const std::string& value, std::string* error) {
  for (std::size_t i = first_kw; i < fields.size(); ++i) {
    const auto eq = fields[i].find('=');
    if (eq == std::string::npos) {
      return fail(error, "positional event field after keyword field: " + value);
    }
    const std::string key = fields[i].substr(0, eq);
    const std::string val = fields[i].substr(eq + 1);
    // Shared keyword grammar (partition/requeue_delay/rack_size/seed)
    // lives in sim/cluster_event.hpp; only recurrence is scenario-level.
    bool handled = false;
    if (!sim::parse_shared_event_keyword(key, val, ev, handled, value, error)) return false;
    if (handled) continue;
    if (key == "repeat_every") {
      std::int64_t every = 0;
      if (!parse_i64(val, every) || every <= 0) {
        return fail(error, "bad repeat_every: " + value);
      }
      ev.repeat_every = every;
    } else if (key == "repeat_count") {
      std::int32_t count = 0;
      if (!parse_i32(val, count) || count < 1) {
        return fail(error, "bad repeat_count: " + value);
      }
      ev.repeat_count = count;
    } else {
      return fail(error, "unknown event keyword: " + key);
    }
  }
  if (ev.repeat_count > 1 && ev.repeat_every <= 0) {
    return fail(error, "repeat_count needs repeat_every: " + value);
  }
  // A lone repeat_every would silently mean "once" (and to_text would drop
  // the key) — almost certainly a forgotten repeat_count. Reject it.
  if (ev.repeat_every > 0 && ev.repeat_count <= 1) {
    return fail(error, "repeat_every needs repeat_count: " + value);
  }
  return true;
}

bool parse_event(const std::string& value, ScenarioEvent& ev, std::string* error) {
  auto fields = util::parse_csv_line(value);
  // Split off trailing keyword fields; what remains is positional.
  std::size_t positional = 0;
  while (positional < fields.size() && fields[positional].find('=') == std::string::npos) {
    ++positional;
  }
  if (!parse_event_keywords(fields, positional, ev, value, error)) return false;
  fields.resize(positional);
  if (fields.size() < 3) return fail(error, "event needs at least type,time,nodes: " + value);
  const std::string& type = fields[0];
  if (type == "burst") {
    ev.kind = ScenarioEventKind::kBurst;
  } else {
    // Capacity kinds share the simulator's name table, so the scenario
    // parser can never drift from what the event kernel understands.
    sim::ClusterEventType ct;
    if (!sim::parse_cluster_event_type(type, ct, nullptr)) {
      return fail(error, "unknown event type: " + type);
    }
    switch (ct) {
      case sim::ClusterEventType::kNodeDown: ev.kind = ScenarioEventKind::kNodeDown; break;
      case sim::ClusterEventType::kDrain: ev.kind = ScenarioEventKind::kDrain; break;
      case sim::ClusterEventType::kNodeRestore: ev.kind = ScenarioEventKind::kNodeRestore; break;
      case sim::ClusterEventType::kPreempt: ev.kind = ScenarioEventKind::kPreempt; break;
      case sim::ClusterEventType::kCorrelatedDown:
        ev.kind = ScenarioEventKind::kCorrelatedDown;
        break;
    }
  }
  std::int64_t time = 0;
  std::int32_t nodes = 0;
  if (!parse_i64(fields[1], time) || time < 0) return fail(error, "bad event time: " + value);
  if (!parse_i32(fields[2], nodes) || nodes <= 0) return fail(error, "bad event nodes: " + value);
  ev.time = time;
  ev.nodes = nodes;
  if (ev.kind != ScenarioEventKind::kBurst) {
    if (fields.size() != 3) return fail(error, "capacity event takes type,time,nodes: " + value);
    return true;
  }
  if (fields.size() < 6 || fields.size() > 7) {
    return fail(error, "burst takes burst,time,nodes,count,runtime,limit[,window]: " + value);
  }
  std::int32_t count = 0;
  std::int64_t runtime = 0, limit = 0, window = 600;
  if (!parse_i32(fields[3], count) || count <= 0) return fail(error, "bad burst count: " + value);
  if (!parse_i64(fields[4], runtime) || runtime <= 0) {
    return fail(error, "bad burst runtime: " + value);
  }
  if (!parse_i64(fields[5], limit) || limit < 0) return fail(error, "bad burst limit: " + value);
  if (fields.size() == 7 && (!parse_i64(fields[6], window) || window < 0)) {
    return fail(error, "bad burst window: " + value);
  }
  ev.count = count;
  ev.runtime = runtime;
  ev.limit = limit ? limit : runtime;
  ev.window = window;
  return true;
}

}  // namespace

std::string event_to_csv(const ScenarioEvent& ev) {
  std::ostringstream out;
  out << scenario_event_name(ev.kind) << ',' << ev.time << ',' << ev.nodes;
  if (ev.kind == ScenarioEventKind::kBurst) {
    out << ',' << ev.count << ',' << ev.runtime << ',' << ev.limit << ',' << ev.window;
  }
  if (!ev.partition.empty()) out << ",partition=" << ev.partition;
  if (ev.requeue_delay > 0) out << ",requeue_delay=" << ev.requeue_delay;
  if (ev.rack_size > 0) out << ",rack_size=" << ev.rack_size;
  if (ev.seed != 0) out << ",seed=" << ev.seed;
  if (ev.is_recurring()) {
    out << ",repeat_every=" << ev.repeat_every << ",repeat_count=" << ev.repeat_count;
  }
  return out.str();
}

bool parse_event_csv(const std::string& value, ScenarioEvent& ev, std::string* error) {
  return parse_event(value, ev, error);
}

bool parse_partition_csv(const std::string& value, trace::ClusterPartition& out,
                         std::string* error) {
  const auto fields = util::parse_csv_line(value);
  trace::ClusterPartition part;
  if (fields.size() != 2 || fields[0].empty() || !parse_i32(fields[1], part.node_count) ||
      part.node_count <= 0) {
    return fail(error, "partition takes name,nodes: " + value);
  }
  part.name = fields[0];
  out = part;
  return true;
}

std::vector<ScenarioEvent> expand_events(const std::vector<ScenarioEvent>& events) {
  std::vector<ScenarioEvent> out;
  out.reserve(events.size());
  for (const auto& ev : events) {
    ScenarioEvent occurrence = ev;
    occurrence.repeat_every = 0;
    occurrence.repeat_count = 1;
    for (std::int32_t i = 0; i < ev.repeat_count; ++i) {
      occurrence.time = ev.time + static_cast<SimTime>(i) * ev.repeat_every;
      out.push_back(occurrence);
    }
  }
  return out;
}

std::string ScenarioSpec::to_text() const {
  std::ostringstream out;
  out << "# mirage scenario spec\n";
  out << "name=" << name << '\n';
  out << "cluster=" << cluster << '\n';
  out << "nodes=" << nodes_override << '\n';
  for (std::size_t i = 0; i < partitions.size(); ++i) {
    out << "partition." << i << '=' << partitions[i].name << ',' << partitions[i].node_count
        << '\n';
  }
  out << "months_begin=" << months_begin << '\n';
  out << "months_end=" << months_end << '\n';
  out << "seed=" << seed << '\n';
  out << "utilization_scale=" << format_double_exact(utilization_scale) << '\n';
  out << "job_count_scale=" << format_double_exact(job_count_scale) << '\n';
  out << "age_weight=" << format_double_exact(scheduler.age_weight) << '\n';
  out << "age_cap=" << scheduler.age_cap << '\n';
  out << "size_weight=" << format_double_exact(scheduler.size_weight) << '\n';
  out << "backfill=" << (scheduler.backfill ? "true" : "false") << '\n';
  out << "reservation_depth=" << scheduler.reservation_depth << '\n';
  out << "max_backfill_candidates=" << scheduler.max_backfill_candidates << '\n';
  for (std::size_t i = 0; i < events.size(); ++i) {
    out << "event." << i << '=' << event_to_csv(events[i]) << '\n';
  }
  return out.str();
}

bool validate_spec(const ScenarioSpec& spec, std::string* error) {
  try {
    (void)trace::preset_by_name(spec.cluster);
  } catch (const std::invalid_argument&) {
    return fail(error, "unknown cluster: " + spec.cluster);
  }
  if (spec.months_end <= spec.months_begin) {
    return fail(error, "months_end must be > months_begin");
  }
  for (std::size_t i = 0; i < spec.partitions.size(); ++i) {
    const auto& p = spec.partitions[i];
    if (p.name.empty()) return fail(error, "partition name must not be empty");
    if (p.node_count <= 0) {
      return fail(error, "partition '" + p.name + "' needs a positive node count");
    }
    for (std::size_t j = 0; j < i; ++j) {
      if (spec.partitions[j].name == p.name) {
        return fail(error, "duplicate partition name: " + p.name);
      }
    }
  }
  const auto preset = spec.resolved_preset();
  const auto layout = preset.partitions_or_default();
  const auto partition_nodes = [&](const std::string& name) -> std::int32_t {
    for (const auto& p : layout) {
      if (p.name == name) return p.node_count;
    }
    return -1;  // unknown
  };
  const SimTime horizon = static_cast<SimTime>(spec.months_end) * util::kMonth;
  for (const auto& ev : spec.events) {
    if (ev.repeat_count < 1 || (ev.repeat_count > 1 && ev.repeat_every <= 0)) {
      return fail(error, "bad recurrence: " + event_to_csv(ev));
    }
    if (!ev.partition.empty() && partition_nodes(ev.partition) < 0) {
      return fail(error, "event targets unknown partition '" + ev.partition +
                             "': " + event_to_csv(ev));
    }
    if (ev.kind == ScenarioEventKind::kBurst) {
      // Unpinned burst jobs may roam, so the ceiling is the largest
      // partition (== node_count on single-partition clusters).
      std::int32_t ceiling = 0;
      if (ev.partition.empty()) {
        for (const auto& p : layout) ceiling = std::max(ceiling, p.node_count);
      } else {
        ceiling = partition_nodes(ev.partition);
      }
      if (ev.nodes > ceiling) {
        return fail(error, "burst jobs request more nodes than their partition has");
      }
    }
    // One-shot events past the horizon are harmless no-ops (kept for
    // compatibility), but a recurring expansion that runs off the end of
    // the scenario is a calendar bug — reject it loudly.
    if (ev.is_recurring() && ev.last_occurrence() >= horizon) {
      return fail(error, "recurring event expansion exceeds scenario horizon: " +
                             event_to_csv(ev) + " (last occurrence at " +
                             std::to_string(ev.last_occurrence()) + " >= horizon " +
                             std::to_string(horizon) + ")");
    }
  }
  return true;
}

std::optional<ScenarioSpec> parse_scenario(const std::string& text, std::string* error) {
  // Structural scan first: every non-comment, non-blank line must be
  // key=value, so junk files fail loudly instead of parsing as defaults.
  if (const auto bad = util::first_malformed_line(text)) {
    fail(error, "malformed line (expected key=value): " + *bad);
    return std::nullopt;
  }

  const auto cfg = util::Config::from_text(text);
  ScenarioSpec spec;
  std::vector<std::pair<std::size_t, ScenarioEvent>> events;
  std::vector<std::pair<std::size_t, trace::ClusterPartition>> partitions;

  for (const auto& key : cfg.keys()) {
    const std::string value = cfg.get_string(key, "");
    std::int64_t i = 0;
    std::int32_t i32 = 0;
    std::uint64_t u = 0;
    double d = 0;
    bool ok = true;
    if (key == "name") {
      spec.name = value;
    } else if (key == "cluster") {
      spec.cluster = value;
    } else if (key == "nodes") {
      ok = parse_i32(value, i32) && i32 >= 0;
      spec.nodes_override = i32;
    } else if (key == "months_begin") {
      ok = parse_i32(value, i32) && i32 >= 0;
      spec.months_begin = i32;
    } else if (key == "months_end") {
      ok = parse_i32(value, i32) && i32 >= 0;
      spec.months_end = i32;
    } else if (key == "seed") {
      ok = parse_u64(value, u);
      spec.seed = u;
    } else if (key == "utilization_scale") {
      ok = parse_f64(value, d) && d > 0;
      spec.utilization_scale = d;
    } else if (key == "job_count_scale") {
      ok = parse_f64(value, d) && d > 0;
      spec.job_count_scale = d;
    } else if (key == "age_weight") {
      ok = parse_f64(value, d);
      spec.scheduler.age_weight = d;
    } else if (key == "age_cap") {
      ok = parse_i64(value, i) && i > 0;
      spec.scheduler.age_cap = i;
    } else if (key == "size_weight") {
      ok = parse_f64(value, d);
      spec.scheduler.size_weight = d;
    } else if (key == "backfill") {
      ok = parse_bool(value, spec.scheduler.backfill);
    } else if (key == "reservation_depth") {
      ok = parse_i32(value, i32) && i32 >= 0;
      spec.scheduler.reservation_depth = i32;
    } else if (key == "max_backfill_candidates") {
      ok = parse_i32(value, i32) && i32 >= 0;
      spec.scheduler.max_backfill_candidates = i32;
    } else if (key.rfind("event.", 0) == 0) {
      std::int64_t index = 0;
      if (!parse_i64(key.substr(6), index) || index < 0) {
        fail(error, "bad event key: " + key);
        return std::nullopt;
      }
      ScenarioEvent ev;
      if (!parse_event(value, ev, error)) return std::nullopt;
      events.emplace_back(static_cast<std::size_t>(index), ev);
    } else if (key.rfind("partition.", 0) == 0) {
      std::int64_t index = 0;
      if (!parse_i64(key.substr(10), index) || index < 0) {
        fail(error, "bad partition key: " + key);
        return std::nullopt;
      }
      trace::ClusterPartition part;
      if (!parse_partition_csv(value, part, error)) return std::nullopt;
      partitions.emplace_back(static_cast<std::size_t>(index), part);
    } else {
      fail(error, "unknown key: " + key);
      return std::nullopt;
    }
    if (!ok) {
      fail(error, "bad value for " + key + ": " + value);
      return std::nullopt;
    }
  }

  std::sort(events.begin(), events.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  for (auto& [idx, ev] : events) spec.events.push_back(ev);
  std::sort(partitions.begin(), partitions.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  for (auto& [idx, part] : partitions) spec.partitions.push_back(part);

  if (!validate_spec(spec, error)) return std::nullopt;
  return spec;
}

std::optional<ScenarioSpec> load_scenario_file(const std::string& path, std::string* error) {
  std::ifstream in(path);
  if (!in) {
    fail(error, "cannot open scenario file: " + path);
    return std::nullopt;
  }
  std::ostringstream text;
  text << in.rdbuf();
  return parse_scenario(text.str(), error);
}

bool save_scenario_file(const ScenarioSpec& spec, const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  out << spec.to_text();
  return static_cast<bool>(out);
}

// ------------------------------------------------------------------ running

std::vector<sim::ClusterEvent> capacity_events(const ScenarioSpec& spec) {
  std::vector<sim::ClusterEvent> out;
  for (const auto& ev : expand_events(spec.events)) {
    if (!ev.is_capacity_event()) continue;
    sim::ClusterEvent ce;
    ce.time = ev.time;
    ce.nodes = ev.nodes;
    ce.partition = ev.partition;
    ce.requeue_delay = ev.requeue_delay;
    ce.rack_size = ev.rack_size;
    // A correlated burst with an unset seed still has to expand
    // deterministically *per occurrence*; mix the occurrence time in so a
    // recurring calendar does not repeat the same draw.
    ce.seed = ev.seed ^ (spec.seed + static_cast<std::uint64_t>(ev.time));
    switch (ev.kind) {
      case ScenarioEventKind::kNodeDown: ce.type = sim::ClusterEventType::kNodeDown; break;
      case ScenarioEventKind::kDrain: ce.type = sim::ClusterEventType::kDrain; break;
      case ScenarioEventKind::kNodeRestore: ce.type = sim::ClusterEventType::kNodeRestore; break;
      case ScenarioEventKind::kPreempt: ce.type = sim::ClusterEventType::kPreempt; break;
      case ScenarioEventKind::kCorrelatedDown:
        ce.type = sim::ClusterEventType::kCorrelatedDown;
        break;
      case ScenarioEventKind::kBurst: break;  // unreachable
    }
    out.push_back(ce);
  }
  return out;
}

trace::Trace build_workload(const ScenarioSpec& spec) {
  const auto preset = spec.resolved_preset();
  trace::GeneratorOptions opt;
  opt.seed = spec.seed;
  opt.utilization_scale = spec.utilization_scale;
  opt.job_count_scale = spec.job_count_scale;
  trace::SyntheticTraceGenerator gen(preset, opt);
  auto workload = gen.generate_months(spec.months_begin, spec.months_end);

  // Lower bursts onto ordinary arrivals. Each burst occurrence draws its
  // jitter from a child stream split off the spec seed (one split per
  // occurrence, in expansion order), so the workload is a pure function of
  // the spec — and one-shot bursts split exactly as they did before
  // recurrence existed.
  util::Rng master(spec.seed ^ 0xb5b5'7a11'f00d'cafeull);
  std::int64_t next_id = 9'000'000;
  const auto layout = preset.partitions_or_default();
  for (const auto& ev : expand_events(spec.events)) {
    if (ev.kind != ScenarioEventKind::kBurst) continue;
    // Same ceiling validate_spec enforces: pinned bursts clamp to their
    // partition, roaming bursts to the largest partition (the simulators
    // reject roaming jobs above max_partition_nominal, so clamping to the
    // cluster-wide total would throw mid-run on multi-partition layouts).
    std::int32_t ceiling = 0;
    if (ev.partition.empty()) {
      for (const auto& p : layout) ceiling = std::max(ceiling, p.node_count);
    } else {
      ceiling = preset.node_count;
      for (const auto& p : layout) {
        if (p.name == ev.partition) ceiling = p.node_count;
      }
    }
    util::Rng rng = master.split();
    for (std::int32_t i = 0; i < ev.count; ++i) {
      trace::JobRecord j;
      j.job_id = next_id++;
      j.job_name = "burst";
      j.user_id = 9000 + static_cast<std::int32_t>(rng.uniform_int(0, 31));
      j.submit_time = ev.time + (ev.window > 1 ? rng.uniform_int(0, ev.window - 1) : 0);
      j.num_nodes = std::min(ev.nodes, ceiling);
      j.partition = ev.partition;  // empty = roam
      j.actual_runtime = ev.runtime;
      j.time_limit = std::max(ev.limit, ev.runtime);
      workload.push_back(std::move(j));
    }
  }
  trace::sort_by_submit_time(workload);
  return workload;
}

namespace {

ScenarioResult assemble_result(const ScenarioSpec& spec, const trace::Trace& schedule,
                               const trace::ClusterPreset& preset, std::size_t killed,
                               std::size_t preempted, std::uint64_t passes,
                               const std::vector<std::size_t>& killed_by_partition,
                               const std::vector<std::size_t>& preempted_by_partition) {
  const std::int32_t nominal_nodes = preset.node_count;
  ScenarioResult r;
  r.name = spec.name;
  r.total_nodes = nominal_nodes;
  r.jobs = schedule.size();
  r.killed_jobs = killed;
  r.preempted_jobs = preempted;
  const auto layout = preset.partitions_or_default();
  r.partition_counts.reserve(layout.size());
  for (std::size_t p = 0; p < layout.size(); ++p) {
    PartitionCounts pc;
    pc.partition = layout[p].name;
    pc.killed = p < killed_by_partition.size() ? killed_by_partition[p] : 0;
    pc.preempted = p < preempted_by_partition.size() ? preempted_by_partition[p] : 0;
    r.partition_counts.push_back(std::move(pc));
  }
  r.scheduler_passes = passes;
  std::uint64_t h = util::kFnv1a64Basis;
  for (const auto& j : schedule) {
    if (!j.scheduled()) ++r.unscheduled;
    h = util::fnv1a64(h, static_cast<std::uint64_t>(j.start_time));
    h = util::fnv1a64(h, static_cast<std::uint64_t>(j.end_time));
  }
  r.schedule_hash = h;
  r.metrics = sim::compute_schedule_metrics(schedule, nominal_nodes);
  r.load = core::classify_load(util::from_hours(r.metrics.mean_wait_hours));
  return r;
}

}  // namespace

bool ScenarioResult::operator==(const ScenarioResult& o) const {
  return name == o.name && total_nodes == o.total_nodes && jobs == o.jobs &&
         unscheduled == o.unscheduled && killed_jobs == o.killed_jobs &&
         preempted_jobs == o.preempted_jobs && partition_counts == o.partition_counts &&
         scheduler_passes == o.scheduler_passes && schedule_hash == o.schedule_hash &&
         metrics.mean_wait_hours == o.metrics.mean_wait_hours &&
         metrics.p95_wait_hours == o.metrics.p95_wait_hours &&
         metrics.average_utilization == o.metrics.average_utilization &&
         metrics.makespan_hours == o.metrics.makespan_hours && load == o.load;
}

std::string ScenarioResult::partition_counts_text() const {
  std::string out;
  for (const auto& pc : partition_counts) {
    if (!out.empty()) out += ';';
    out += pc.partition;
    out += ':';
    out += std::to_string(pc.killed);
    out += ':';
    out += std::to_string(pc.preempted);
  }
  return out;
}

ScenarioResult run_scenario(const ScenarioSpec& spec) { return run_scenario(spec, nullptr); }

ScenarioResult run_scenario(const ScenarioSpec& spec, obs::TraceRing* trace) {
  OBS_SPAN("scenario_cell");
  const auto preset = spec.resolved_preset();
  auto workload = build_workload(spec);
  sim::Simulator sim(to_cluster_model(preset), spec.scheduler);
  sim.set_trace(trace);
  sim.load_workload(std::move(workload));  // cells own their workloads; skip the copy
  for (const auto& ev : capacity_events(spec)) sim.schedule_cluster_event(ev);
  sim.run_to_completion();
  auto result = assemble_result(spec, sim.export_schedule(), preset, sim.killed_jobs(),
                                sim.preempted_jobs(), sim.scheduler_passes(),
                                sim.killed_by_partition(), sim.preempted_by_partition());
  if (obs::enabled()) {
    auto& reg = obs::registry();
    static obs::Counter* cells =
        reg.counter("mirage_scenario_cells_total", "scenario cells completed");
    static obs::Counter* jobs =
        reg.counter("mirage_scenario_jobs_total", "jobs scheduled across scenario cells");
    static obs::Counter* killed =
        reg.counter("mirage_scenario_killed_total", "jobs killed by outage events");
    static obs::Counter* preempted =
        reg.counter("mirage_scenario_preempted_total", "jobs preempted by capacity events");
    cells->add(1);
    jobs->add(result.jobs);
    killed->add(result.killed_jobs);
    preempted->add(result.preempted_jobs);
  }
  return result;
}

ScenarioResult run_scenario_reference(const ScenarioSpec& spec) {
  const auto preset = spec.resolved_preset();
  const auto workload = build_workload(spec);
  std::uint64_t passes = 0;
  std::size_t killed = 0;
  std::size_t preempted = 0;
  std::vector<std::size_t> killed_by;
  std::vector<std::size_t> preempted_by;
  const auto schedule =
      reference_replay(workload, to_cluster_model(preset), capacity_events(spec),
                       spec.scheduler, &passes, &killed, &preempted, &killed_by, &preempted_by);
  return assemble_result(spec, schedule, preset, killed, preempted, passes, killed_by,
                         preempted_by);
}

core::PipelineConfig to_pipeline_config(const ScenarioSpec& spec, std::int32_t job_nodes) {
  auto cfg = core::PipelineConfig::compact(spec.resolved_preset(), job_nodes, spec.seed);
  cfg.generator.seed = spec.seed;
  cfg.generator.utilization_scale = spec.utilization_scale;
  cfg.generator.job_count_scale = spec.job_count_scale;
  return cfg;
}

}  // namespace mirage::scenario

// Declarative evaluation scenarios (ROADMAP: "as many scenarios as you can
// imagine"). A ScenarioSpec is one fully-specified simulation cell:
//
//   cluster preset x load scaling x scheduler config x timed event list
//
// Events cover the operational situations the paper's fixed configurations
// cannot express: abrupt node outages (down), maintenance windows (drain +
// restore), and flash-crowd submit bursts. Specs round-trip through a
// key=value text format (util/config.hpp) with CSV-encoded event rows
// (util/csv.hpp), so scenario suites live in plain files.
//
// run_scenario() is a *pure function* of the spec — same spec, same
// ScenarioResult, bitwise, regardless of what else runs on other threads.
// That is the contract the parallel sweep harness (sweep.hpp) builds on.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/evaluator.hpp"
#include "core/pipeline.hpp"
#include "obs/trace.hpp"
#include "sim/cluster.hpp"
#include "sim/cluster_event.hpp"
#include "sim/metrics.hpp"
#include "sim/scheduler_config.hpp"
#include "trace/cluster_presets.hpp"
#include "trace/job.hpp"

namespace mirage::scenario {

enum class ScenarioEventKind : std::uint8_t {
  kNodeDown,
  kDrain,
  kNodeRestore,
  kBurst,
  kPreempt,          ///< checkpoint/requeue victims instead of killing
  kCorrelatedDown,   ///< rack-sized failure burst from one RNG draw
};

/// One timed event. Capacity kinds map 1:1 onto sim::ClusterEvent; kBurst
/// is lowered onto ordinary arrival events by build_workload(), so both
/// simulators see bursts through the same scheduling path.
///
/// Recurring events (maintenance calendars): repeat_count occurrences at
/// time, time + repeat_every, ... — cron-style expansion performed by
/// expand_events(). The parser rejects expansions whose last occurrence
/// falls outside the scenario horizon (months_end).
struct ScenarioEvent {
  ScenarioEventKind kind = ScenarioEventKind::kNodeDown;
  util::SimTime time = 0;
  std::int32_t nodes = 0;        ///< nodes affected, or nodes per burst job
  // Burst-only fields.
  std::int32_t count = 0;        ///< jobs in the burst
  util::SimTime runtime = 0;     ///< per-job runtime (seconds)
  util::SimTime limit = 0;       ///< per-job limit (0 = runtime)
  util::SimTime window = 600;    ///< burst arrivals spread over [time, time+window)
  // Recurrence (all events; 1 = one-shot).
  util::SimTime repeat_every = 0;
  std::int32_t repeat_count = 1;
  // Partition targeting (all events; empty = cluster-wide, or any-partition
  // burst jobs). Keyword field `partition=` in the CSV form.
  std::string partition;
  // Preempt-only: victims re-enter the queue after this delay (seconds).
  util::SimTime requeue_delay = 0;
  // Correlated-down-only: rack granularity (0 = nodes) and expansion seed.
  std::int32_t rack_size = 0;
  std::uint64_t seed = 0;

  ScenarioEvent() = default;
  /// Positional form matching the CSV prefix (burst fields default to the
  /// capacity-event shape); partition/preempt/correlated knobs are set by
  /// field after construction or via the CSV keywords.
  ScenarioEvent(ScenarioEventKind k, util::SimTime t, std::int32_t n, std::int32_t burst_count = 0,
                util::SimTime burst_runtime = 0, util::SimTime burst_limit = 0,
                util::SimTime burst_window = 600, util::SimTime every = 0,
                std::int32_t occurrences = 1)
      : kind(k), time(t), nodes(n), count(burst_count), runtime(burst_runtime),
        limit(burst_limit), window(burst_window), repeat_every(every),
        repeat_count(occurrences) {}

  bool is_capacity_event() const { return kind != ScenarioEventKind::kBurst; }
  bool is_recurring() const { return repeat_count > 1; }
  /// Submit time of the final occurrence.
  util::SimTime last_occurrence() const {
    return time + static_cast<util::SimTime>(repeat_count - 1) * repeat_every;
  }
};

/// Flatten recurring events into one-shot occurrences (repeat_count=1),
/// per-event in occurrence-time order. One-shot events pass through.
std::vector<ScenarioEvent> expand_events(const std::vector<ScenarioEvent>& events);

/// CSV row for one event: "type,time,nodes[,count,runtime,limit,window]
/// [,repeat_every=..,repeat_count=..]" — the format used by event.N= lines
/// in scenario files and profile.N.event.M= lines in lab plan files.
std::string event_to_csv(const ScenarioEvent& ev);

/// Parse one event CSV row (never throws); false + diagnostic on junk.
bool parse_event_csv(const std::string& value, ScenarioEvent& ev, std::string* error = nullptr);

/// Parse one "name,nodes" partition row — the format of `partition.N=`
/// lines in scenario files and `layout.N.partition.M=` lines in lab plan
/// files. Never throws; false + diagnostic on junk.
bool parse_partition_csv(const std::string& value, trace::ClusterPartition& out,
                         std::string* error = nullptr);

const char* scenario_event_name(ScenarioEventKind k);

struct ScenarioSpec {
  std::string name = "default";
  std::string cluster = "a100";        ///< preset name (v100 | rtx | a100 | hetero)
  std::int32_t nodes_override = 0;     ///< 0 = preset node count
  /// Partition layout override (partition.N=name,nodes lines). Empty keeps
  /// the preset's layout; when set it replaces it and node_count becomes
  /// the sum, so single-partition specs stay bitwise-stable.
  std::vector<trace::ClusterPartition> partitions;
  std::int32_t months_begin = 0;
  std::int32_t months_end = 1;
  std::uint64_t seed = 42;
  double utilization_scale = 1.0;
  double job_count_scale = 1.0;
  sim::SchedulerConfig scheduler;
  std::vector<ScenarioEvent> events;

  bool has_events() const { return !events.empty(); }
  /// Cluster preset with overrides applied.
  trace::ClusterPreset resolved_preset() const;

  /// Serialize to the key=value + event.N=CSV text format.
  std::string to_text() const;
};

/// Semantic validation (unknown cluster, inverted month range, oversize
/// bursts, recurring expansions past the horizon). parse_scenario applies
/// it; callers assembling specs or event profiles programmatically (e.g.
/// the lab's plan parser) can apply it themselves. Never throws; false
/// with a diagnostic in *error.
bool validate_spec(const ScenarioSpec& spec, std::string* error = nullptr);

/// Parse a spec from text. Returns nullopt (never crashes, never throws)
/// on malformed input — unknown keys, bad numbers, junk lines, unknown
/// clusters or event types, inverted month ranges — with a diagnostic in
/// *error when provided.
std::optional<ScenarioSpec> parse_scenario(const std::string& text, std::string* error = nullptr);

/// Load and parse a spec file; nullopt (with diagnostic) when the file is
/// unreadable or malformed.
std::optional<ScenarioSpec> load_scenario_file(const std::string& path,
                                               std::string* error = nullptr);

/// Write spec.to_text() to a file; false when the file cannot be written.
bool save_scenario_file(const ScenarioSpec& spec, const std::string& path);

/// Per-partition victim counts of one cell (indexed in partition layout
/// order). Sums over partitions equal ScenarioResult::killed_jobs /
/// preempted_jobs by construction — the split comes straight from
/// sim::EventKernel, which drains one partition at a time.
struct PartitionCounts {
  std::string partition;
  std::size_t killed = 0;
  std::size_t preempted = 0;

  bool operator==(const PartitionCounts& o) const {
    return partition == o.partition && killed == o.killed && preempted == o.preempted;
  }
};

/// Aggregated outcome of one scenario cell.
struct ScenarioResult {
  std::string name;
  std::int32_t total_nodes = 0;        ///< nominal (pre-event) capacity
  std::size_t jobs = 0;                ///< workload size incl. burst jobs
  std::size_t unscheduled = 0;         ///< jobs never started (capacity lost)
  std::size_t killed_jobs = 0;         ///< killed by outage events
  std::size_t preempted_jobs = 0;      ///< checkpointed/requeued by preempt events
  /// Per-partition split of killed/preempted (partition layout order).
  std::vector<PartitionCounts> partition_counts;
  std::uint64_t scheduler_passes = 0;
  sim::ScheduleMetrics metrics;        ///< waits, utilization, makespan
  core::LoadClass load = core::LoadClass::kLight;  ///< paper §6 class of the mean wait
  std::uint64_t schedule_hash = 0;     ///< FNV-1a over (start, end) pairs

  /// "name:killed:preempted" per partition, ';'-joined — the encoding used
  /// in sweep/leaderboard CSV columns and artifact manifests.
  std::string partition_counts_text() const;

  bool operator==(const ScenarioResult& o) const;
};

/// Deterministic workload for a spec: synthetic trace for the month range
/// plus burst jobs, submit-ordered. Burst job parameters draw from child
/// streams split off util::Rng(spec.seed), so workloads are a pure
/// function of the spec.
trace::Trace build_workload(const ScenarioSpec& spec);

/// Capacity events of the spec in sim::ClusterEvent form.
std::vector<sim::ClusterEvent> capacity_events(const ScenarioSpec& spec);

/// Simulator-form partition layout of a preset (single "default" partition
/// for the paper's per-cluster presets).
sim::ClusterModel to_cluster_model(const trace::ClusterPreset& preset);

/// Run one cell through the fast simulator (pure function of the spec).
ScenarioResult run_scenario(const ScenarioSpec& spec);

/// As above, recording sim-time trace events (job runs/kills/preemptions/
/// requeues, cluster events) into `trace` when non-null. The ring is a
/// write-only side channel: the returned result is bitwise identical to
/// run_scenario(spec) whether or not a ring is attached — the contract the
/// tracing-on == tracing-off sweep determinism test pins.
ScenarioResult run_scenario(const ScenarioSpec& spec, obs::TraceRing* trace);

/// Run one cell through the reference (conservative backfill) simulator —
/// the fidelity cross-check for event-bearing scenarios.
ScenarioResult run_scenario_reference(const ScenarioSpec& spec);

/// Map a scenario cell onto the training/evaluation pipeline: preset,
/// generator options and seeds come from the spec, the rest from
/// PipelineConfig::compact. Feed event-bearing workloads explicitly via
/// MiragePipeline::prepare(build_workload(spec)).
core::PipelineConfig to_pipeline_config(const ScenarioSpec& spec, std::int32_t job_nodes);

}  // namespace mirage::scenario

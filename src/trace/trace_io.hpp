// CSV (de)serialization of job traces in the accounting-export layout the
// paper collects. Header:
//   JobID,JobName,UserID,SubmitTime,StartTime,EndTime,Timelimit,NumNodes,ActualRuntime
// Times are integer seconds since the trace epoch; unset start/end are -1.
#pragma once

#include <optional>
#include <string>

#include "trace/job.hpp"

namespace mirage::trace {

/// Serialize a trace to CSV text (with header).
std::string to_csv(const Trace& trace);

/// Parse a trace from CSV text. Rows with unparsable numeric fields are
/// skipped; returns nullopt only when the header is missing/invalid.
std::optional<Trace> from_csv(const std::string& text);

/// Convenience file wrappers.
bool save_csv(const Trace& trace, const std::string& path);
std::optional<Trace> load_csv(const std::string& path);

}  // namespace mirage::trace

// Per-cluster workload models calibrated to every statistic the paper
// reports for the three production GPU clusters (Table 1, Figures 1-4):
//
//   V100 (TACC Longhorn):   88 nodes, 21 months, ~65k filtered jobs,
//                           2.5 nodes/job avg, months with >12 h waits.
//   RTX  (TACC Frontera):   84 nodes, 20 months, ~175k jobs of which
//                           ~96.8k are <30 s "noise" jobs, 1.3 nodes/job.
//   A100 (TACC Lonestar6):  76 nodes, 5 months, ~24.8k jobs, 1.6 nodes/job,
//                           light except one heavy month (2023-02).
//
// The generator is parameterized by monthly *offered utilization* (offered
// node-hours / capacity); months above ~0.95 produce the heavy queueing
// regimes the paper evaluates under.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/time_utils.hpp"

namespace mirage::trace {

struct NodeCountBucket {
  std::int32_t nodes = 1;
  double weight = 1.0;
};

/// One named partition of a cluster (e.g. the V100 pool of a mixed
/// cluster). Mirrors sim::Partition without depending on the sim layer.
struct ClusterPartition {
  std::string name;
  std::int32_t node_count = 0;
};

struct ClusterPreset {
  std::string name;
  std::int32_t node_count = 0;
  std::int32_t months = 0;

  /// Offered utilization per month (fraction of capacity); length == months.
  std::vector<double> monthly_utilization;

  /// Categorical distribution of requested node counts.
  std::vector<NodeCountBucket> node_distribution;

  /// Log-normal runtime parameters (log-space, runtime in seconds) for
  /// "real" jobs; samples are truncated to [min_runtime, wall_limit].
  double runtime_log_mu = 0.0;
  double runtime_log_sigma = 1.0;
  util::SimTime min_runtime = 60;
  util::SimTime wall_limit = 48 * util::kHour;

  /// Expected count of <30 s noise jobs per month (0 for clean clusters).
  double noise_jobs_per_month = 0.0;

  /// Size of the user pool; activity is Zipf(1.1)-distributed.
  std::int32_t user_pool = 200;

  /// Diurnal modulation amplitude in [0,1) and weekend rate multiplier.
  double diurnal_amplitude = 0.45;
  double weekend_factor = 0.65;

  /// Named partitions; empty = one homogeneous pool of node_count (the
  /// paper's per-cluster presets). When set, node counts must sum to
  /// node_count and the generator pins every job to a partition.
  std::vector<ClusterPartition> partitions;

  /// Partition list with the single-pool default applied ("default" /
  /// node_count when partitions is empty) — the layout the simulators use.
  std::vector<ClusterPartition> partitions_or_default() const;

  /// Mean requested nodes implied by node_distribution.
  double mean_nodes() const;
  /// Mean runtime (seconds) of the truncated log-normal, via sampling-free
  /// closed form on the untruncated distribution (adequate for sizing).
  double mean_runtime_seconds() const;
  /// Capacity in node-hours for one 30-day month.
  double monthly_capacity_node_hours() const;
};

/// The three paper clusters.
ClusterPreset v100_preset();
ClusterPreset rtx_preset();
ClusterPreset a100_preset();

/// Heterogeneous pool: the paper's three node kinds as partitions of one
/// cluster (v100/rtx/a100, 248 nodes total). The default multi-partition
/// workload model.
ClusterPreset hetero_preset();

/// Lookup by case-insensitive name ("v100" | "rtx" | "a100" | "hetero");
/// throws std::invalid_argument for unknown names.
ClusterPreset preset_by_name(const std::string& name);

/// The three paper presets in paper order (hetero is name-addressable but
/// deliberately not part of the figure-reproduction sweep set).
std::vector<ClusterPreset> all_presets();

}  // namespace mirage::trace

#include "trace/cluster_presets.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <numbers>
#include <stdexcept>

namespace mirage::trace {

double ClusterPreset::mean_nodes() const {
  double total_w = 0.0, total = 0.0;
  for (const auto& b : node_distribution) {
    total_w += b.weight;
    total += b.weight * b.nodes;
  }
  return total_w > 0 ? total / total_w : 1.0;
}

namespace {
// Standard normal CDF.
double phi(double x) { return 0.5 * std::erfc(-x / std::numbers::sqrt2); }
}  // namespace

double ClusterPreset::mean_runtime_seconds() const {
  // The generator clamps lognormal draws to the wall limit, so the correct
  // sizing quantity is E[min(X, L)] for X ~ LogNormal(mu, sigma):
  //   E[min(X,L)] = e^{mu+s^2/2} * Phi((ln L - mu - s^2)/s) + L * (1 - Phi((ln L - mu)/s)).
  // (The min_runtime clamp adds negligible mass and is ignored.)
  const double s = runtime_log_sigma;
  const double mu = runtime_log_mu;
  const double log_l = std::log(static_cast<double>(wall_limit));
  const double body = std::exp(mu + s * s / 2.0) * phi((log_l - mu - s * s) / s);
  const double cap = static_cast<double>(wall_limit) * (1.0 - phi((log_l - mu) / s));
  return body + cap;
}

double ClusterPreset::monthly_capacity_node_hours() const {
  return static_cast<double>(node_count) * util::to_hours(util::kMonth);
}

std::vector<ClusterPartition> ClusterPreset::partitions_or_default() const {
  if (!partitions.empty()) return partitions;
  return {{"default", node_count}};
}

ClusterPreset v100_preset() {
  ClusterPreset p;
  p.name = "V100";
  p.node_count = 88;
  p.months = 21;
  // Wave between light and overloaded; months 12, 15, 19 model the
  // 2020-10 / 2021-02 congestion the paper highlights (30-41% of jobs
  // waiting >24 h).
  p.monthly_utilization = {0.58, 0.66, 0.72, 0.80, 0.86, 0.76, 0.84,
                           0.92, 0.97, 0.90, 0.84, 1.02, 0.95, 0.88,
                           1.03, 0.92, 0.85, 0.96, 1.00, 0.90, 0.78};
  // Mean ~2.5 nodes/job with a multi-node tail carrying ~77-82% of
  // node-hours (Fig 3a).
  p.node_distribution = {{1, 0.58}, {2, 0.18}, {3, 0.06}, {4, 0.08},
                         {8, 0.06}, {16, 0.03}, {32, 0.01}};
  // Median ~2.4 h, mean ~6.5 h after the sigma^2/2 lift: DL training-style
  // long jobs.
  p.runtime_log_mu = std::log(2.4 * 3600.0);
  p.runtime_log_sigma = 1.40;
  p.user_pool = 260;
  return p;
}

ClusterPreset rtx_preset() {
  ClusterPreset p;
  p.name = "RTX";
  p.node_count = 84;
  p.months = 20;
  p.monthly_utilization = {0.55, 0.62, 0.70, 0.78, 0.85, 0.92, 0.80,
                           0.88, 1.01, 0.92, 0.82, 1.03, 0.96, 0.86,
                           0.98, 1.02, 0.88, 0.80, 0.72, 0.64};
  // Mostly single-node (mean ~1.3, Fig 3b).
  p.node_distribution = {{1, 0.85}, {2, 0.09}, {4, 0.04}, {8, 0.02}};
  // RTX "real" jobs are fewer but longer: ~78k of them (plus ~97k noise
  // jobs, totalling ~175k) fill 20 months at the Fig 1 load levels.
  p.runtime_log_mu = std::log(4.0 * 3600.0);
  p.runtime_log_sigma = 1.40;
  // ~96,780 <30 s jobs over 20 months (§3.1) — kept, as in the paper.
  p.noise_jobs_per_month = 4839.0;
  p.user_pool = 420;
  return p;
}

ClusterPreset a100_preset() {
  ClusterPreset p;
  p.name = "A100";
  p.node_count = 76;
  p.months = 5;
  // One heavy month inside the training range (month 3, mirroring 2023-02
  // where 26% of jobs waited >12 h) and a loaded validation month so both
  // splits see heavy regimes.
  p.monthly_utilization = {0.55, 0.68, 1.02, 0.80, 0.98};
  p.node_distribution = {{1, 0.78}, {2, 0.10}, {4, 0.08}, {8, 0.03}, {16, 0.01}};
  p.runtime_log_mu = std::log(2.0 * 3600.0);
  p.runtime_log_sigma = 1.30;
  p.user_pool = 150;
  return p;
}

ClusterPreset hetero_preset() {
  // The motivation example of the partition refactor: the paper's three
  // node kinds operated as one cluster with three partitions. Workload
  // statistics blend the per-cluster models; jobs are pinned to partitions
  // by the generator (weighted by partition size among the partitions that
  // can hold them).
  ClusterPreset p;
  p.name = "HETERO";
  p.node_count = 88 + 84 + 76;
  p.months = 6;
  p.monthly_utilization = {0.60, 0.74, 0.88, 1.01, 0.84, 0.96};
  p.node_distribution = {{1, 0.70}, {2, 0.12}, {4, 0.09}, {8, 0.05}, {16, 0.03}, {32, 0.01}};
  p.runtime_log_mu = std::log(3.0 * 3600.0);
  p.runtime_log_sigma = 1.35;
  p.user_pool = 500;
  p.partitions = {{"v100", 88}, {"rtx", 84}, {"a100", 76}};
  return p;
}

ClusterPreset preset_by_name(const std::string& name) {
  std::string lower = name;
  std::transform(lower.begin(), lower.end(), lower.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  if (lower == "v100") return v100_preset();
  if (lower == "rtx") return rtx_preset();
  if (lower == "a100") return a100_preset();
  if (lower == "hetero") return hetero_preset();
  throw std::invalid_argument("unknown cluster preset: " + name);
}

std::vector<ClusterPreset> all_presets() { return {v100_preset(), rtx_preset(), a100_preset()}; }

}  // namespace mirage::trace

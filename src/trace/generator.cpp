#include "trace/generator.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

namespace mirage::trace {

using util::kDay;
using util::kHour;
using util::kMonth;
using util::Rng;
using util::SimTime;

SyntheticTraceGenerator::SyntheticTraceGenerator(ClusterPreset preset, GeneratorOptions options)
    : preset_(std::move(preset)), options_(options) {
  node_weights_.reserve(preset_.node_distribution.size());
  for (const auto& b : preset_.node_distribution) node_weights_.push_back(b.weight);
}

Trace SyntheticTraceGenerator::generate() { return generate_months(0, preset_.months); }

double SyntheticTraceGenerator::rate_modulation(SimTime t) const {
  // Diurnal peak mid-afternoon (hour 15 of the day).
  const double hour = static_cast<double>(t % kDay) / kHour;
  const double diurnal =
      1.0 + preset_.diurnal_amplitude * std::sin(2.0 * std::numbers::pi * (hour - 9.0) / 24.0);
  // Days 5,6 of each week are the weekend (epoch starts on a Monday).
  const std::int64_t day_of_week = (t / kDay) % 7;
  const double weekly = (day_of_week >= 5) ? preset_.weekend_factor : 1.0;
  return diurnal * weekly;
}

SimTime SyntheticTraceGenerator::sample_runtime(Rng& rng) const {
  const double r = rng.lognormal(preset_.runtime_log_mu, preset_.runtime_log_sigma);
  const auto runtime = static_cast<SimTime>(r);
  return std::clamp<SimTime>(runtime, preset_.min_runtime, preset_.wall_limit);
}

std::int32_t SyntheticTraceGenerator::sample_nodes(Rng& rng) const {
  const std::size_t i = rng.categorical(node_weights_);
  return preset_.node_distribution[i].nodes;
}

void SyntheticTraceGenerator::assign_partition(JobRecord& job, Rng& rng) const {
  if (preset_.partitions.empty()) return;
  std::vector<double> weights;
  weights.reserve(preset_.partitions.size());
  std::size_t largest = 0;
  for (std::size_t i = 0; i < preset_.partitions.size(); ++i) {
    const auto& p = preset_.partitions[i];
    weights.push_back(p.node_count >= job.num_nodes ? static_cast<double>(p.node_count) : 0.0);
    if (p.node_count > preset_.partitions[largest].node_count) largest = i;
  }
  double total = 0.0;
  for (const double w : weights) total += w;
  if (total <= 0.0) {
    // No partition can hold the draw: pin to the largest and clamp.
    job.partition = preset_.partitions[largest].name;
    job.num_nodes = preset_.partitions[largest].node_count;
    return;
  }
  job.partition = preset_.partitions[rng.categorical(weights)].name;
}

SimTime SyntheticTraceGenerator::round_up_limit(SimTime runtime, Rng& rng) const {
  // Users over-request: runtime * U[1.1, 2.2] rounded up to a queue limit.
  static constexpr SimTime kLimits[] = {2 * kHour,  4 * kHour,  8 * kHour,
                                        12 * kHour, 24 * kHour, 48 * kHour};
  const auto padded = static_cast<SimTime>(static_cast<double>(runtime) * rng.uniform(1.1, 2.2));
  for (SimTime l : kLimits) {
    if (padded <= l) return std::min(l, preset_.wall_limit);
  }
  return preset_.wall_limit;
}

Trace SyntheticTraceGenerator::generate_months(std::int32_t first_month, std::int32_t last_month) {
  first_month = std::clamp(first_month, 0, preset_.months);
  last_month = std::clamp(last_month, first_month, preset_.months);

  Rng rng(options_.seed ^ (static_cast<std::uint64_t>(first_month) << 32) ^
          static_cast<std::uint64_t>(last_month));
  Trace trace;
  std::int64_t next_id = 1;

  const double mean_node_hours_per_job =
      preset_.mean_nodes() * preset_.mean_runtime_seconds() / 3600.0;

  for (std::int32_t m = first_month; m < last_month; ++m) {
    const SimTime month_begin = static_cast<SimTime>(m) * kMonth;
    const double util =
        preset_.monthly_utilization[static_cast<std::size_t>(m)] * options_.utilization_scale;
    const double offered_node_hours = util * preset_.monthly_capacity_node_hours();
    // job_count_scale > 1 trades per-job size for count at fixed load.
    const double expected_jobs =
        offered_node_hours / mean_node_hours_per_job * options_.job_count_scale;
    const auto n_real = static_cast<std::size_t>(std::max<std::int64_t>(
        0, rng.poisson(expected_jobs)));

    // Arrival times by thinning against the modulation envelope.
    const double max_mod = (1.0 + preset_.diurnal_amplitude);
    for (std::size_t i = 0; i < n_real; ++i) {
      SimTime t;
      do {
        t = month_begin + static_cast<SimTime>(rng.uniform() * static_cast<double>(kMonth));
      } while (rng.uniform() * max_mod > rate_modulation(t));

      JobRecord j;
      j.job_id = next_id++;
      j.user_id = static_cast<std::int32_t>(rng.zipf(preset_.user_pool, 1.1));
      j.job_name = "job_u" + std::to_string(j.user_id);
      j.submit_time = t;
      j.num_nodes = sample_nodes(rng);
      assign_partition(j, rng);
      // job_count_scale trades per-job size for count at fixed offered
      // load; the result is still clamped to the physical wall limit.
      j.actual_runtime =
          static_cast<SimTime>(static_cast<double>(sample_runtime(rng)) / options_.job_count_scale);
      j.actual_runtime =
          std::clamp<SimTime>(j.actual_runtime, preset_.min_runtime, preset_.wall_limit);
      j.time_limit = round_up_limit(j.actual_runtime, rng);
      trace.push_back(std::move(j));
    }

    // Noise stream: <30 s jobs (RTX). Uniform over the month; single node.
    const auto n_noise = static_cast<std::size_t>(std::max<std::int64_t>(
        0, rng.poisson(preset_.noise_jobs_per_month * options_.job_count_scale)));
    for (std::size_t i = 0; i < n_noise; ++i) {
      JobRecord j;
      j.job_id = next_id++;
      j.user_id = static_cast<std::int32_t>(rng.zipf(preset_.user_pool, 1.1));
      j.job_name = "noise_u" + std::to_string(j.user_id);
      j.submit_time =
          month_begin + static_cast<SimTime>(rng.uniform() * static_cast<double>(kMonth));
      j.num_nodes = 1;
      assign_partition(j, rng);
      j.actual_runtime = rng.uniform_int(5, 29);
      j.time_limit = 2 * kHour;  // users still request hours for 30 s jobs
      trace.push_back(std::move(j));
    }

    if (options_.inject_cleanable_rows) {
      // A handful of oversize requests and sub-job fragments per month so
      // the §3.2 cleaning pipeline has real work to do.
      for (int i = 0; i < 3; ++i) {
        JobRecord j;
        j.job_id = next_id++;
        j.user_id = 9000 + i;
        j.job_name = "oversize";
        j.submit_time =
            month_begin + static_cast<SimTime>(rng.uniform() * static_cast<double>(kMonth));
        j.num_nodes = preset_.node_count + 1 + static_cast<std::int32_t>(rng.uniform_int(0, 64));
        j.actual_runtime = kHour;
        j.time_limit = 2 * kHour;
        trace.push_back(std::move(j));
      }
      const SimTime base =
          month_begin + static_cast<SimTime>(rng.uniform() * static_cast<double>(kMonth) / 2);
      for (int k = 0; k < 4; ++k) {
        JobRecord j;
        j.job_id = next_id++;
        j.user_id = 9100;
        j.job_name = "frag_m" + std::to_string(m) + ".sub" + std::to_string(k);
        j.submit_time = base + k * kHour;
        j.num_nodes = 1;
        j.actual_runtime = kHour / 2;
        j.time_limit = kHour;
        trace.push_back(std::move(j));
      }
    }
  }

  sort_by_submit_time(trace);
  return trace;
}

}  // namespace mirage::trace

#include "trace/cleaning.hpp"

#include <algorithm>
#include <cstdlib>
#include <map>

namespace mirage::trace {

bool parse_subjob_suffix(std::string_view name, std::string& prefix, std::int64_t& index) {
  const auto pos = name.rfind(".sub");
  if (pos == std::string_view::npos) return false;
  const std::string_view digits = name.substr(pos + 4);
  if (digits.empty()) return false;
  for (char c : digits) {
    if (c < '0' || c > '9') return false;
  }
  prefix = std::string(name.substr(0, pos));
  index = std::strtoll(std::string(digits).c_str(), nullptr, 10);
  return true;
}

Trace clean_trace(const Trace& input, std::int32_t cluster_nodes, CleaningReport* report) {
  CleaningReport local;
  local.input_jobs = input.size();

  // Key sub-job groups by (user, name prefix): the paper merges rows that
  // share an identical prefix followed by the sub-job id.
  struct MergedGroup {
    JobRecord combined;
    bool initialized = false;
  };
  std::map<std::pair<std::int32_t, std::string>, MergedGroup> groups;
  Trace out;
  out.reserve(input.size());

  for (const auto& j : input) {
    if (j.num_nodes > cluster_nodes) {
      ++local.oversize_dropped;
      continue;
    }
    std::string prefix;
    std::int64_t sub_index = 0;
    if (parse_subjob_suffix(j.job_name, prefix, sub_index)) {
      auto& g = groups[{j.user_id, prefix}];
      if (!g.initialized) {
        g.combined = j;
        g.combined.job_name = prefix;
        g.initialized = true;
      } else {
        ++local.subjobs_merged;
        auto& c = g.combined;
        c.submit_time = std::min(c.submit_time, j.submit_time);
        if (j.start_time != kUnsetTime) {
          c.start_time = (c.start_time == kUnsetTime) ? j.start_time
                                                      : std::min(c.start_time, j.start_time);
        }
        if (j.end_time != kUnsetTime) {
          c.end_time = (c.end_time == kUnsetTime) ? j.end_time : std::max(c.end_time, j.end_time);
        }
        c.num_nodes = std::max(c.num_nodes, j.num_nodes);
        c.time_limit = std::max(c.time_limit, j.time_limit);
      }
      continue;
    }
    out.push_back(j);
  }

  for (auto& [_, g] : groups) {
    if (!g.initialized) continue;
    // Recompute the merged duration from the recorded span so replay uses
    // the combined footprint.
    if (g.combined.start_time != kUnsetTime && g.combined.end_time != kUnsetTime) {
      g.combined.actual_runtime = g.combined.end_time - g.combined.start_time;
    }
    out.push_back(g.combined);
  }

  sort_by_submit_time(out);
  local.output_jobs = out.size();
  if (report) *report = local;
  return out;
}

}  // namespace mirage::trace

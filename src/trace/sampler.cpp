#include "trace/sampler.hpp"

#include <algorithm>

namespace mirage::trace {

using util::SimTime;

Trace window(const Trace& full, SimTime begin, SimTime end, bool rebase) {
  Trace out;
  for (const auto& j : full) {
    if (j.submit_time < begin || j.submit_time >= end) continue;
    JobRecord copy = j;
    copy.start_time = kUnsetTime;
    copy.end_time = kUnsetTime;
    if (rebase) copy.submit_time -= begin;
    out.push_back(std::move(copy));
  }
  return out;
}

Trace random_window(const Trace& full, SimTime length, util::Rng& rng, bool rebase) {
  if (full.empty()) return {};
  const SimTime begin = trace_begin(full);
  const SimTime end = trace_end(full);
  if (end - begin <= length) return {};
  const SimTime start =
      begin + static_cast<SimTime>(rng.uniform(0.0, static_cast<double>(end - begin - length)));
  return window(full, start, start + length, rebase);
}

Trace bootstrap(const Trace& full, std::size_t n, util::Rng& rng) {
  Trace out;
  if (full.empty()) return out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto idx =
        static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(full.size()) - 1));
    JobRecord copy = full[idx];
    copy.job_id = static_cast<std::int64_t>(i + 1);
    copy.start_time = kUnsetTime;
    copy.end_time = kUnsetTime;
    out.push_back(std::move(copy));
  }
  sort_by_submit_time(out);
  return out;
}

Trace scale_load(const Trace& full, double keep, util::Rng& rng, SimTime jitter) {
  Trace out;
  std::int64_t next_id = 1;
  for (const auto& j : full) {
    double remaining = keep;
    bool is_duplicate = false;
    while (remaining > 0.0) {
      const bool take = remaining >= 1.0 || rng.bernoulli(remaining);
      remaining -= 1.0;
      if (!take) continue;
      JobRecord copy = j;
      copy.job_id = next_id++;
      copy.start_time = kUnsetTime;
      copy.end_time = kUnsetTime;
      // Duplicates (load amplification) get jittered arrivals so they do
      // not stack at the exact same instant.
      if (is_duplicate) {
        copy.submit_time += static_cast<SimTime>(rng.uniform(0.0, static_cast<double>(jitter)));
      }
      is_duplicate = true;
      out.push_back(std::move(copy));
    }
  }
  sort_by_submit_time(out);
  return out;
}

}  // namespace mirage::trace

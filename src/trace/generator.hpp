// Synthetic workload generator. Produces a submit-time-ordered Trace whose
// queueing process matches the published characteristics of the paper's
// three clusters (see cluster_presets.hpp). Start/end times are left unset;
// a scheduler replay (sim::replay_trace) assigns them.
//
// Model:
//  * per month, the expected "real" job count is offered-node-hours /
//    mean-node-hours-per-job; arrivals follow a non-homogeneous Poisson
//    process with diurnal + weekend modulation (thinning);
//  * node counts and runtimes are drawn from the preset distributions;
//    time limits are the runtime rounded up to a common queue limit with
//    user over-estimation slack;
//  * an optional independent stream of <30 s noise jobs (RTX);
//  * user ids are Zipf-distributed over the preset's user pool.
#pragma once

#include <cstdint>

#include "trace/cluster_presets.hpp"
#include "trace/job.hpp"
#include "util/rng.hpp"

namespace mirage::trace {

struct GeneratorOptions {
  std::uint64_t seed = 42;
  /// Scale all monthly offered utilizations (sensitivity experiments).
  double utilization_scale = 1.0;
  /// Scale job count (and shrink per-job node-hours to keep load fixed) —
  /// used by tests to build small but statistically similar traces.
  double job_count_scale = 1.0;
  /// When true, also emit rows the cleaner should remove/merge (oversize
  /// requests and ".sub<k>" fragments) to exercise the §3.2 pipeline.
  bool inject_cleanable_rows = false;
};

class SyntheticTraceGenerator {
 public:
  SyntheticTraceGenerator(ClusterPreset preset, GeneratorOptions options);

  /// Generate the full multi-month workload (submit-ordered, start/end
  /// unset). Deterministic for a fixed (preset, options).
  Trace generate();

  /// Generate only months [first_month, last_month) — e.g. a train or
  /// validation slice.
  Trace generate_months(std::int32_t first_month, std::int32_t last_month);

  const ClusterPreset& preset() const { return preset_; }

 private:
  /// Instantaneous arrival-rate multiplier (diurnal * weekend), mean ~1.
  double rate_modulation(util::SimTime t) const;
  util::SimTime sample_runtime(util::Rng& rng) const;
  std::int32_t sample_nodes(util::Rng& rng) const;
  util::SimTime round_up_limit(util::SimTime runtime, util::Rng& rng) const;
  /// Pin a job to a partition on partitioned presets (weighted by size
  /// among the partitions that can hold it); no-op — and no RNG draw, so
  /// single-pool streams are unchanged — otherwise.
  void assign_partition(JobRecord& job, util::Rng& rng) const;

  ClusterPreset preset_;
  GeneratorOptions options_;
  std::vector<double> node_weights_;
};

}  // namespace mirage::trace

// Trace analytics backing Table 1 and Figures 1-4 of the paper.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "trace/job.hpp"

namespace mirage::trace {

/// Table 1 row: headline trace statistics.
struct TraceStats {
  std::string cluster;
  std::int32_t node_count = 0;
  std::size_t job_count = 0;
  util::SimTime span = 0;                 ///< last end - first submit
  double jobs_per_month_mean = 0.0;       ///< Fig 2 summary
  double jobs_per_month_std = 0.0;
  double mean_nodes_per_job = 0.0;        ///< §3.1
  std::size_t short_job_count = 0;        ///< jobs < 30 s (RTX noise)
  double multi_node_job_fraction = 0.0;
  double multi_node_node_hour_fraction = 0.0;  ///< Fig 3 summary
};

TraceStats compute_stats(const Trace& trace, const std::string& cluster_name,
                         std::int32_t node_count);

/// Fig 2: job count per 30-day month (index 0 = first month of the trace).
std::vector<std::size_t> monthly_job_counts(const Trace& trace);

/// Fig 1: average queue wait (hours) per month; requires a scheduled trace
/// (start times set). Unscheduled jobs are ignored.
std::vector<double> monthly_average_wait_hours(const Trace& trace);

/// Fig 3: node-hour share by node-count bucket {1, 2, 3-4, 5-8, >8}.
struct NodeHourBreakdown {
  static constexpr std::array<const char*, 5> kBucketNames = {"1", "2", "3-4", "5-8", ">8"};
  std::array<double, 5> node_hour_fraction{};  ///< sums to 1 (0 when empty)
  std::array<double, 5> job_fraction{};
};
NodeHourBreakdown node_hour_breakdown(const Trace& trace);

/// Fig 4: per-month queue-wait distribution over the paper's buckets
/// {<2 h, 2-12 h, 12-24 h, 24-36 h, >36 h} as fractions per month.
struct WaitDistribution {
  static constexpr std::array<const char*, 5> kBucketNames = {"<2h", "2-12h", "12-24h", "24-36h",
                                                              ">36h"};
  std::vector<std::array<double, 5>> monthly_fractions;
};
WaitDistribution wait_distribution(const Trace& trace);

}  // namespace mirage::trace

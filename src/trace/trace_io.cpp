#include "trace/trace_io.hpp"

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "util/csv.hpp"

namespace mirage::trace {

namespace {
const char* kHeader =
    "JobID,JobName,UserID,SubmitTime,StartTime,EndTime,Timelimit,NumNodes,ActualRuntime,"
    "Partition";

bool parse_i64(const std::string& s, std::int64_t& out) {
  char* end = nullptr;
  const long long v = std::strtoll(s.c_str(), &end, 10);
  if (!end || *end != '\0' || end == s.c_str()) return false;
  out = v;
  return true;
}
}  // namespace

std::string to_csv(const Trace& trace) {
  std::ostringstream out;
  out << kHeader << '\n';
  util::CsvWriter writer(out);
  for (const auto& j : trace) {
    writer.write_row({std::to_string(j.job_id), j.job_name, std::to_string(j.user_id),
                      std::to_string(j.submit_time), std::to_string(j.start_time),
                      std::to_string(j.end_time), std::to_string(j.time_limit),
                      std::to_string(j.num_nodes), std::to_string(j.actual_runtime),
                      j.partition});
  }
  return out.str();
}

std::optional<Trace> from_csv(const std::string& text) {
  const auto table = util::CsvTable::parse(text, /*has_header=*/true);
  const int c_id = table.column("JobID");
  const int c_name = table.column("JobName");
  const int c_user = table.column("UserID");
  const int c_submit = table.column("SubmitTime");
  const int c_start = table.column("StartTime");
  const int c_end = table.column("EndTime");
  const int c_limit = table.column("Timelimit");
  const int c_nodes = table.column("NumNodes");
  const int c_runtime = table.column("ActualRuntime");  // optional column
  const int c_partition = table.column("Partition");    // optional column
  if (c_id < 0 || c_submit < 0 || c_nodes < 0 || c_limit < 0) return std::nullopt;

  Trace trace;
  trace.reserve(table.row_count());
  for (std::size_t r = 0; r < table.row_count(); ++r) {
    const auto& row = table.row(r);
    const auto field = [&](int c) -> std::string {
      return (c >= 0 && static_cast<std::size_t>(c) < row.size()) ? row[static_cast<std::size_t>(c)]
                                                                  : std::string();
    };
    JobRecord j;
    std::int64_t v = 0;
    if (!parse_i64(field(c_id), j.job_id)) continue;
    j.job_name = field(c_name);
    if (parse_i64(field(c_user), v)) j.user_id = static_cast<std::int32_t>(v);
    if (!parse_i64(field(c_submit), j.submit_time)) continue;
    if (parse_i64(field(c_start), v)) j.start_time = v;
    if (parse_i64(field(c_end), v)) j.end_time = v;
    if (!parse_i64(field(c_limit), j.time_limit)) continue;
    if (parse_i64(field(c_nodes), v)) j.num_nodes = static_cast<std::int32_t>(v);
    if (c_runtime >= 0 && parse_i64(field(c_runtime), v)) {
      j.actual_runtime = v;
    } else if (j.start_time != kUnsetTime && j.end_time != kUnsetTime) {
      j.actual_runtime = j.end_time - j.start_time;
    }
    j.partition = field(c_partition);
    trace.push_back(std::move(j));
  }
  return trace;
}

bool save_csv(const Trace& trace, const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  out << to_csv(trace);
  return static_cast<bool>(out);
}

std::optional<Trace> load_csv(const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  std::stringstream buf;
  buf << in.rdbuf();
  return from_csv(buf.str());
}

}  // namespace mirage::trace

// Job trace data model. Field set mirrors the Slurm accounting fields the
// paper collects (§3): JobID, JobName, UserID, SubmitTime, StartTime,
// EndTime, Timelimit, NumNodes. `actual_runtime` carries the job's true
// duration so a scheduler replay can decide completion independently of
// the recorded start/end (which the replay overwrites).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/time_utils.hpp"

namespace mirage::trace {

using util::SimTime;

inline constexpr SimTime kUnsetTime = -1;

struct JobRecord {
  std::int64_t job_id = 0;
  std::string job_name;
  std::int32_t user_id = 0;
  SimTime submit_time = kUnsetTime;
  SimTime start_time = kUnsetTime;   ///< kUnsetTime until scheduled
  SimTime end_time = kUnsetTime;     ///< kUnsetTime until completed
  SimTime time_limit = 48 * util::kHour;
  SimTime actual_runtime = 0;        ///< true duration (<= time_limit)
  std::int32_t num_nodes = 1;
  /// Optional partition constraint (Slurm --partition). Empty = the job
  /// may run on any partition; on single-partition clusters both spellings
  /// are equivalent.
  std::string partition;

  /// Queue wait: start - submit; 0 when either side is unset.
  SimTime wait_time() const {
    if (submit_time == kUnsetTime || start_time == kUnsetTime) return 0;
    return start_time - submit_time;
  }
  /// Recorded runtime: end - start; 0 when unscheduled.
  SimTime runtime() const {
    if (start_time == kUnsetTime || end_time == kUnsetTime) return 0;
    return end_time - start_time;
  }
  /// Node-seconds consumed as recorded.
  double node_seconds() const {
    return static_cast<double>(runtime()) * static_cast<double>(num_nodes);
  }
  bool scheduled() const { return start_time != kUnsetTime; }
};

using Trace = std::vector<JobRecord>;

/// Sort in place by submit time (stable so equal-time order is kept).
void sort_by_submit_time(Trace& trace);

/// Earliest submit time in the trace (0 when empty).
SimTime trace_begin(const Trace& trace);
/// Latest end (or submit, when unscheduled) time in the trace (0 when empty).
SimTime trace_end(const Trace& trace);

}  // namespace mirage::trace

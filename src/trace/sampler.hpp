// Trace sampling and replay utilities — the paper lists "job trace
// sampling and replaying with low overhead" as a simulator contribution.
// These build sub-workloads for training (random windows), fidelity
// studies (sampled weeks) and sensitivity sweeps (load-scaled resamples).
#pragma once

#include "trace/job.hpp"
#include "util/rng.hpp"

namespace mirage::trace {

/// Jobs submitted in [begin, end), re-based so the window starts at 0 when
/// `rebase` is set. Start/end times are cleared for replay.
Trace window(const Trace& full, util::SimTime begin, util::SimTime end, bool rebase = false);

/// A uniformly random window of the given length. Returns an empty trace
/// when the trace is shorter than the window.
Trace random_window(const Trace& full, util::SimTime length, util::Rng& rng, bool rebase = false);

/// Bootstrap resample of n jobs (submit order preserved by re-sorting);
/// job ids are renumbered to stay unique.
Trace bootstrap(const Trace& full, std::size_t n, util::Rng& rng);

/// Thin or amplify load: keep each job with probability `keep`, and when
/// keep > 1 duplicate jobs (with jittered submit times) to raise offered
/// load — a cheap sensitivity knob the §6 load-level study uses.
Trace scale_load(const Trace& full, double keep, util::Rng& rng,
                 util::SimTime jitter = util::kHour);

}  // namespace mirage::trace

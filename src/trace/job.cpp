#include "trace/job.hpp"

#include <algorithm>

namespace mirage::trace {

void sort_by_submit_time(Trace& trace) {
  std::stable_sort(trace.begin(), trace.end(), [](const JobRecord& a, const JobRecord& b) {
    return a.submit_time < b.submit_time;
  });
}

SimTime trace_begin(const Trace& trace) {
  SimTime t = 0;
  bool first = true;
  for (const auto& j : trace) {
    if (first || j.submit_time < t) t = j.submit_time;
    first = false;
  }
  return t;
}

SimTime trace_end(const Trace& trace) {
  SimTime t = 0;
  for (const auto& j : trace) {
    const SimTime e = (j.end_time != kUnsetTime) ? j.end_time : j.submit_time;
    t = std::max(t, e);
  }
  return t;
}

}  // namespace mirage::trace

// Trace cleaning per paper §3.2:
//   1. drop jobs requesting more nodes than the partition has;
//   2. merge "sub-jobs" recorded inside one Slurm job (identical name
//      prefix + ".sub<k>" suffix) into a single job spanning first start
//      to last end;
//   3. jobs with dependencies are kept as independent submissions (the
//      trace does not record the dependency edge), i.e. a documented no-op;
//   4. machine downtime appears as blank ranges and is likewise kept as-is.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>

#include "trace/job.hpp"

namespace mirage::trace {

struct CleaningReport {
  std::size_t input_jobs = 0;
  std::size_t oversize_dropped = 0;
  std::size_t subjobs_merged = 0;   ///< rows folded into an existing job
  std::size_t output_jobs = 0;
};

/// Split "train.sub3" into {"train", 3}; returns false when the name has no
/// ".sub<k>" suffix.
bool parse_subjob_suffix(std::string_view name, std::string& prefix, std::int64_t& index);

/// Apply all cleaning rules. `cluster_nodes` is the partition size used by
/// the oversize filter. Output is sorted by submit time.
Trace clean_trace(const Trace& input, std::int32_t cluster_nodes, CleaningReport* report = nullptr);

}  // namespace mirage::trace

#include "trace/analysis.hpp"

#include <algorithm>
#include <cmath>

#include "util/stats.hpp"

namespace mirage::trace {

using util::kHour;
using util::kMonth;
using util::SimTime;

namespace {
std::size_t month_index(SimTime t, SimTime origin) {
  if (t < origin) return 0;
  return static_cast<std::size_t>((t - origin) / kMonth);
}

std::size_t node_bucket(std::int32_t nodes) {
  if (nodes <= 1) return 0;
  if (nodes == 2) return 1;
  if (nodes <= 4) return 2;
  if (nodes <= 8) return 3;
  return 4;
}

std::size_t wait_bucket(SimTime wait) {
  if (wait < 2 * kHour) return 0;
  if (wait < 12 * kHour) return 1;
  if (wait < 24 * kHour) return 2;
  if (wait < 36 * kHour) return 3;
  return 4;
}
}  // namespace

TraceStats compute_stats(const Trace& trace, const std::string& cluster_name,
                         std::int32_t node_count) {
  TraceStats s;
  s.cluster = cluster_name;
  s.node_count = node_count;
  s.job_count = trace.size();
  if (trace.empty()) return s;

  s.span = trace_end(trace) - trace_begin(trace);

  const auto counts = monthly_job_counts(trace);
  util::RunningStats month_stats;
  for (auto c : counts) month_stats.add(static_cast<double>(c));
  s.jobs_per_month_mean = month_stats.mean();
  s.jobs_per_month_std = month_stats.stddev();

  double node_sum = 0.0;
  double total_node_seconds = 0.0;
  double multi_node_seconds = 0.0;
  std::size_t multi_jobs = 0;
  for (const auto& j : trace) {
    node_sum += j.num_nodes;
    if (j.actual_runtime < 30) ++s.short_job_count;
    // Use actual_runtime (always known) rather than recorded runtime so the
    // breakdown works on unscheduled workloads too.
    const double ns = static_cast<double>(j.actual_runtime) * j.num_nodes;
    total_node_seconds += ns;
    if (j.num_nodes > 1) {
      multi_node_seconds += ns;
      ++multi_jobs;
    }
  }
  s.mean_nodes_per_job = node_sum / static_cast<double>(trace.size());
  s.multi_node_job_fraction = static_cast<double>(multi_jobs) / static_cast<double>(trace.size());
  s.multi_node_node_hour_fraction =
      total_node_seconds > 0 ? multi_node_seconds / total_node_seconds : 0.0;
  return s;
}

std::vector<std::size_t> monthly_job_counts(const Trace& trace) {
  if (trace.empty()) return {};
  const SimTime origin = trace_begin(trace);
  std::vector<std::size_t> counts;
  for (const auto& j : trace) {
    const std::size_t m = month_index(j.submit_time, origin);
    if (m >= counts.size()) counts.resize(m + 1, 0);
    ++counts[m];
  }
  return counts;
}

std::vector<double> monthly_average_wait_hours(const Trace& trace) {
  if (trace.empty()) return {};
  const SimTime origin = trace_begin(trace);
  std::vector<util::RunningStats> acc;
  for (const auto& j : trace) {
    if (!j.scheduled()) continue;
    const std::size_t m = month_index(j.submit_time, origin);
    if (m >= acc.size()) acc.resize(m + 1);
    acc[m].add(util::to_hours(j.wait_time()));
  }
  std::vector<double> out(acc.size(), 0.0);
  for (std::size_t i = 0; i < acc.size(); ++i) out[i] = acc[i].mean();
  return out;
}

NodeHourBreakdown node_hour_breakdown(const Trace& trace) {
  NodeHourBreakdown b;
  double total_ns = 0.0;
  std::array<double, 5> ns{};
  std::array<double, 5> count{};
  for (const auto& j : trace) {
    const std::size_t bucket = node_bucket(j.num_nodes);
    const double s = static_cast<double>(j.actual_runtime) * j.num_nodes;
    ns[bucket] += s;
    count[bucket] += 1.0;
    total_ns += s;
  }
  const double total_jobs = static_cast<double>(trace.size());
  for (std::size_t i = 0; i < 5; ++i) {
    b.node_hour_fraction[i] = total_ns > 0 ? ns[i] / total_ns : 0.0;
    b.job_fraction[i] = total_jobs > 0 ? count[i] / total_jobs : 0.0;
  }
  return b;
}

WaitDistribution wait_distribution(const Trace& trace) {
  WaitDistribution d;
  if (trace.empty()) return d;
  const SimTime origin = trace_begin(trace);
  std::vector<std::array<std::size_t, 5>> counts;
  std::vector<std::size_t> totals;
  for (const auto& j : trace) {
    if (!j.scheduled()) continue;
    const std::size_t m = month_index(j.submit_time, origin);
    if (m >= counts.size()) {
      counts.resize(m + 1, std::array<std::size_t, 5>{});
      totals.resize(m + 1, 0);
    }
    ++counts[m][wait_bucket(j.wait_time())];
    ++totals[m];
  }
  d.monthly_fractions.resize(counts.size());
  for (std::size_t m = 0; m < counts.size(); ++m) {
    for (std::size_t b = 0; b < 5; ++b) {
      d.monthly_fractions[m][b] =
          totals[m] ? static_cast<double>(counts[m][b]) / static_cast<double>(totals[m]) : 0.0;
    }
  }
  return d;
}

}  // namespace mirage::trace

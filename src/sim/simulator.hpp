// Fast discrete-event Slurm simulator (paper §5.2).
//
// Scheduling policy: multifactor priority (age + size) with capped-depth
// reservation backfill. The first `reservation_depth` blocked jobs (by
// priority) pin forward reservations on a limit-based availability
// profile; a lower-priority job may start now only if doing so delays no
// reservation. depth=1 is classic EASY backfill; large depths approach
// the reference simulator's full conservative backfill, mirroring Slurm's
// bf_max_job_test knob.
//
// Clusters are partition-aware (sim/cluster.hpp): each partition schedules
// over its own availability profile with its own reservation/candidate
// budgets, and jobs either pin a partition (JobRecord::partition) or roam
// to the partition with the earliest fit. Single-partition clusters
// reproduce the pre-partition scheduler bitwise.
//
// The scheduling hot path is incremental: per-partition base availability
// profiles are maintained in O(Δ) on job start/finish (from-scratch
// rebuilds happen only after kills/preemptions/capacity events), every
// per-pass buffer is a reused member (steady-state passes perform zero
// heap allocations), and a partition with no freed capacity, no new
// pending candidates, and an unchanged priority order is skipped outright
// — all bitwise-identical to the from-scratch scheduler by construction
// (and cross-checked every pass in debug / validate_profiles runs).
//
// The agent-facing API matches the paper: submit() injects a job at the
// current instant, step(dt) advances simulated time, sample() snapshots the
// queue/server state for the RL state encoder.
//
// Timed cluster events (schedule_cluster_event) vary capacity mid-run
// through the shared EventKernel: outages kill the most recently started
// jobs when nodes aren't free, preemptions checkpoint/requeue them
// instead, drains withhold nodes as jobs release them, restores return
// nodes, and correlated failures expand into rack-sized down bursts. The
// scenario engine (src/scenario/) builds outage / maintenance /
// flash-crowd scenarios on top of this.
#pragma once

#include <cstdint>
#include <vector>

#include "obs/trace.hpp"
#include "sim/availability_profile.hpp"
#include "sim/cluster.hpp"
#include "sim/cluster_event.hpp"
#include "sim/event_kernel.hpp"
#include "sim/scheduler_config.hpp"
#include "trace/job.hpp"
#include "util/time_utils.hpp"

namespace mirage::sim {

using trace::JobRecord;
using trace::Trace;
using util::SimTime;

using JobId = std::int64_t;  ///< index into the simulator's job table

enum class JobStatus : std::uint8_t {
  kFuture,
  kPending,
  kRunning,
  kCompleted,
  kKilled,
  kPreempted,  ///< checkpointed by a kPreempt event, awaiting requeue
};

/// Snapshot of queue + server state at an instant (§4.1 raw inputs; the
/// state encoder computes the five-number summaries from these vectors).
struct StateSample {
  SimTime now = 0;
  std::int32_t total_nodes = 0;
  std::int32_t free_nodes = 0;
  // Per-partition capacity (index order; one entry on classic clusters).
  std::vector<std::int32_t> partition_total;
  std::vector<std::int32_t> partition_free;
  // Queued (pending) jobs.
  std::vector<double> queued_sizes;
  std::vector<double> queued_ages;      ///< seconds since submission
  std::vector<double> queued_limits;    ///< seconds
  // Running jobs.
  std::vector<double> running_sizes;
  std::vector<double> running_elapsed;  ///< seconds since start
  std::vector<double> running_limits;   ///< seconds

  std::size_t queue_length() const { return queued_sizes.size(); }
  std::size_t running_count() const { return running_sizes.size(); }
  std::size_t partition_count() const { return partition_total.size(); }
};

class Simulator : private EventKernel::Host {
 public:
  /// `cluster` is implicitly constructible from a plain node count, so
  /// Simulator(76) keeps meaning a single-partition 76-node cluster.
  Simulator(ClusterModel cluster, SchedulerConfig config = {});

  /// Register a background workload before (or while) running. Jobs whose
  /// submit_time is in the past are enqueued immediately. The rvalue
  /// overload moves the records in (scenario cells and episode loops build
  /// throwaway traces; moving skips one string-heavy copy per job).
  void load_workload(const Trace& workload);
  void load_workload(Trace&& workload);

  /// Inject one job at the current instant (the agent's submit()). Returns
  /// its JobId for status queries.
  JobId submit(const JobRecord& job);

  /// Schedule a timed capacity event (outage, preemption burst, drain,
  /// restore, correlated failure). Events in the past fire at the current
  /// instant; events naming an unknown partition throw immediately.
  /// Requests beyond the current capacity are clamped.
  void schedule_cluster_event(const ClusterEvent& event);

  /// Advance simulated time by dt (the agent's step()).
  void step(SimTime dt) { run_until(now_ + dt); }
  /// Advance to absolute time t (no-op when t <= now).
  void run_until(SimTime t);
  /// Drain every event (all jobs complete).
  void run_to_completion();
  /// Advance until the given job completes (or events are exhausted).
  void run_until_complete(JobId id);
  /// Advance until the given job starts (or events are exhausted).
  void run_until_started(JobId id);

  SimTime now() const { return now_; }
  StateSample sample() const;
  /// Fill `out` in place (clear + refill, reusing its vector storage) —
  /// the allocation-free variant episode loops call every decision tick.
  void sample_into(StateSample& out) const;

  JobStatus status(JobId id) const;
  SimTime start_time(JobId id) const;
  SimTime end_time(JobId id) const;
  const JobRecord& job(JobId id) const { return jobs_[static_cast<std::size_t>(id)].record; }
  std::size_t job_count() const { return jobs_.size(); }

  const ClusterModel& cluster() const { return kernel_.cluster(); }
  std::int32_t total_nodes() const { return kernel_.cluster().total_nodes(); }
  std::int32_t free_nodes() const { return kernel_.cluster().free_nodes(); }
  std::int32_t total_nodes(PartitionId p) const { return kernel_.cluster().total_nodes(p); }
  std::int32_t free_nodes(PartitionId p) const { return kernel_.cluster().free_nodes(p); }
  std::int32_t partition_count() const { return kernel_.cluster().partition_count(); }
  std::size_t queue_length() const { return pending_.size(); }
  std::size_t running_count() const { return running_.size(); }

  /// Number of scheduler passes executed (overhead accounting).
  std::uint64_t scheduler_passes() const { return scheduler_passes_; }

  /// Jobs killed by kNodeDown / kCorrelatedDown events so far.
  std::size_t killed_jobs() const { return kernel_.killed_jobs(); }
  /// Jobs checkpointed/requeued by kPreempt events so far.
  std::size_t preempted_jobs() const { return kernel_.preempted_jobs(); }
  /// Per-partition victim counts (sums equal the totals by construction).
  std::size_t killed_jobs(PartitionId p) const { return kernel_.killed_jobs(p); }
  std::size_t preempted_jobs(PartitionId p) const { return kernel_.preempted_jobs(p); }
  const std::vector<std::size_t>& killed_by_partition() const {
    return kernel_.killed_by_partition();
  }
  const std::vector<std::size_t>& preempted_by_partition() const {
    return kernel_.preempted_by_partition();
  }

  /// Attach a sim-time trace ring (obs/trace.hpp). Job lifecycle and
  /// cluster events are recorded with deterministic simulated-seconds
  /// timestamps; the ring is a write-only side channel, so attaching one
  /// cannot change scheduling results. Pass nullptr to detach. The ring
  /// must outlive the simulator (or the next set_trace call).
  void set_trace(obs::TraceRing* ring) { trace_ = ring; }
  obs::TraceRing* trace() const { return trace_; }
  /// Drain debt: nodes that will be withheld as running jobs release them.
  std::int32_t drain_pending() const { return kernel_.drain_pending(); }
  std::int32_t drain_pending(PartitionId p) const { return kernel_.drain_pending(p); }

  /// Average queue wait (seconds) of jobs that *started* within the last
  /// `window` of simulated time — the signal the paper's "avg" heuristic
  /// monitors. Returns 0 when no job started in the window.
  double recent_average_wait(SimTime window) const;

  /// Export all jobs with their assigned start/end times.
  Trace export_schedule() const;

 private:
  struct SimJob {
    JobRecord record;
    JobStatus status = JobStatus::kFuture;
    SimTime start = trace::kUnsetTime;
    SimTime end = trace::kUnsetTime;
    PartitionId constraint = kAnyPartition;  ///< from record.partition
    PartitionId placed = 0;                  ///< partition of the current run
    /// Duration the job will actually occupy nodes: min(actual, limit).
    /// Preemption rewrites actual_runtime to the checkpointed remainder.
    SimTime duration() const {
      return std::min(record.actual_runtime, record.time_limit);
    }
  };

  enum class EventType : std::uint8_t { kArrival, kFinish, kCluster, kRequeue };
  struct Event {
    SimTime time;
    std::uint64_t seq;  ///< FIFO tie-break for determinism
    EventType type;
    JobId job;
    bool operator>(const Event& other) const {
      if (time != other.time) return time > other.time;
      return seq > other.seq;
    }
  };

  /// Per-pass sort key; caching the priority once per job replaces the
  /// O(n log n) recomputation the in-comparator form paid per pass.
  struct SortKey {
    double priority;
    SimTime submit;
    JobId id;
  };

  // EventKernel::Host — LIFO victim bookkeeping against the job table.
  std::int32_t kill_one(PartitionId p) override;
  std::int32_t preempt_one(PartitionId p, SimTime requeue_delay) override;
  /// LIFO victim in partition p: latest start, then highest id; -1 if none.
  JobId pick_victim(PartitionId p) const;

  void push_event(SimTime t, EventType type, JobId job);
  void process_event(const Event& e);
  void validate_record(const JobRecord& record, PartitionId constraint) const;
  PartitionId resolve_constraint(const JobRecord& record) const;
  JobId enqueue_record(JobRecord&& record);
  /// Priority+backfill pass; starts every job the policy admits now.
  void schedule_pass();
  void schedule_pass_no_backfill();
  void start_job(JobId id, PartitionId p);
  /// `total_nodes_denom` = max(cluster total, 1), hoisted per pass.
  double priority(const SimJob& j, double total_nodes_denom) const;

  /// A new pending candidate appeared: its partition (or every partition,
  /// for a roaming job) must be rescanned on the next pass.
  void mark_candidate(PartitionId constraint);
  /// Sort pending_ by priority (cached keys; bitwise-identical order to
  /// the in-comparator form). Returns true if any pending job roams.
  bool sort_pending();
  /// Rebuild / advance partition p's incremental base profile for a pass
  /// at now_, cross-checking against a from-scratch build when validated.
  void sync_profile(PartitionId p);
  void rebuild_profile_into(AvailabilityProfile& out, PartitionId p) const;

  /// Record a sim-time trace event into the attached ring (no-op when
  /// detached or obs is globally disabled).
  void trace_job_event(obs::TraceEventKind kind, const SimJob& j, JobId id) const;

  EventKernel kernel_;
  SchedulerConfig config_;
  obs::TraceRing* trace_ = nullptr;
  SimTime now_ = 0;
  std::uint64_t event_seq_ = 0;
  std::uint64_t scheduler_passes_ = 0;
  bool needs_schedule_ = false;
  bool validate_profiles_ = false;

  std::vector<ClusterEvent> cluster_events_;  ///< indexed by Event::job

  std::vector<SimJob> jobs_;
  std::vector<JobId> pending_;  ///< queued job ids (sorted order after a pass)
  std::vector<JobId> running_;  ///< running job ids
  std::vector<std::pair<SimTime, SimTime>> start_log_;  ///< (start, wait) per started job
  std::vector<Event> events_;   ///< min-heap (std::push_heap/pop_heap, operator>)

  // ----- incremental scheduling state (sized once per partition) -----
  // Base availability profiles mirror running jobs' limit-based releases
  // and are updated in O(Δ) on start/finish; pass_profiles_ receive the
  // per-pass copy that reservations scribble on. profile_stale_ forces a
  // from-scratch rebuild after events the simulator cannot mirror (kills,
  // preemptions, capacity edits — the latter detected via the cluster's
  // capacity_epoch). scan_dirty_ marks partitions whose pending set gained
  // candidates or whose capacity was freed; a clean partition whose queue
  // subsequence is unchanged is provably a no-op and is skipped.
  std::vector<AvailabilityProfile> base_profiles_;
  std::vector<AvailabilityProfile> pass_profiles_;
  std::vector<std::uint64_t> profile_epoch_;
  std::vector<char> profile_stale_;
  std::vector<char> scan_dirty_;
  std::vector<char> scan_now_;
  std::vector<std::vector<JobId>> part_queue_;  ///< this pass's pinned subsequences
  std::vector<std::vector<JobId>> last_queue_;  ///< post-scan subsequences
  std::vector<JobId> last_full_order_;          ///< post-scan pending order
  // Per-pass scratch, hoisted so steady-state passes allocate nothing.
  std::vector<SortKey> sort_keys_;
  std::vector<JobId> still_pending_;
  std::vector<char> blocked_;
  std::vector<std::int32_t> reservations_;
  std::vector<std::int32_t> scanned_past_blocked_;
  AvailabilityProfile check_profile_{0, 0};  ///< validated-mode oracle scratch
};

/// Replay a workload through the fast simulator and return a copy of the
/// trace with start/end times assigned by the scheduler.
Trace replay_trace(const Trace& workload, ClusterModel cluster, SchedulerConfig config = {});

}  // namespace mirage::sim

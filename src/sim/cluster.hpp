// Partition-aware cluster model. The paper's clusters are heterogeneous
// pools (4x V100 / 4x RTX / 3x A100 GPUs per node); a ClusterModel holds
// one or more named partitions, each a homogeneous whole-node pool with
// its own total/free counters. Jobs carry an optional partition
// constraint; unconstrained jobs may run on any partition. Topology below
// the partition level is out of scope for queueing behavior.
//
// Capacity is variable at runtime (outages, drains, restores, preemption
// bursts) — the event kernel adjusts it through add_capacity /
// remove_capacity, which keep 0 <= busy <= total per partition as an
// invariant. `nominal` records the construction-time capacity and is the
// yardstick for "can this job ever fit" validation, so a transient outage
// does not spuriously reject submissions.
//
// A ClusterModel constructed from a plain node count has exactly one
// partition named "default"; every cluster-wide accessor then reduces to
// the pre-partition scalar behavior bitwise.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace mirage::sim {

/// One named partition of a cluster layout (construction input).
struct Partition {
  std::string name = "default";
  std::int32_t nodes = 0;
};

using PartitionId = std::int32_t;

/// Sentinel for "no partition constraint" (job may run anywhere).
inline constexpr PartitionId kAnyPartition = -1;

class ClusterModel {
 public:
  /// Single-partition cluster (intentionally implicit: every pre-partition
  /// call site passing a node count keeps compiling and behaves bitwise
  /// identically).
  ClusterModel(std::int32_t total_nodes)  // NOLINT(google-explicit-constructor)
      : ClusterModel(std::vector<Partition>{{"default", total_nodes}}) {}

  explicit ClusterModel(const std::vector<Partition>& partitions) {
    if (partitions.empty()) throw std::invalid_argument("cluster needs at least one partition");
    parts_.reserve(partitions.size());
    for (const auto& p : partitions) {
      if (p.nodes <= 0) {
        throw std::invalid_argument("partition '" + p.name + "' needs a positive node count");
      }
      if (p.name.empty()) throw std::invalid_argument("partition name must not be empty");
      if (index_of(p.name) != kAnyPartition) {
        throw std::invalid_argument("duplicate partition name: " + p.name);
      }
      parts_.push_back(Part{p.name, p.nodes, p.nodes, p.nodes});
    }
  }

  // ------------------------------------------------------------- identity
  std::int32_t partition_count() const { return static_cast<std::int32_t>(parts_.size()); }
  const std::string& partition_name(PartitionId p) const { return part(p).name; }

  /// Index of a named partition; kAnyPartition when the name is unknown
  /// (or empty — the "no constraint" spelling).
  PartitionId index_of(const std::string& name) const {
    for (std::size_t i = 0; i < parts_.size(); ++i) {
      if (parts_[i].name == name) return static_cast<PartitionId>(i);
    }
    return kAnyPartition;
  }

  // ------------------------------------------------------- cluster totals
  std::int32_t total_nodes() const {
    std::int32_t n = 0;
    for (const auto& p : parts_) n += p.total;
    return n;
  }
  std::int32_t free_nodes() const {
    std::int32_t n = 0;
    for (const auto& p : parts_) n += p.free;
    return n;
  }
  std::int32_t busy_nodes() const { return total_nodes() - free_nodes(); }
  double utilization() const {
    const std::int32_t t = total_nodes();
    return t ? static_cast<double>(busy_nodes()) / t : 0.0;
  }
  /// Construction-time capacity (events do not change it).
  std::int32_t nominal_total() const {
    std::int32_t n = 0;
    for (const auto& p : parts_) n += p.nominal;
    return n;
  }
  /// Largest single-partition nominal capacity — the ceiling for jobs
  /// without a partition constraint.
  std::int32_t max_partition_nominal() const {
    std::int32_t n = 0;
    for (const auto& p : parts_) n = std::max(n, p.nominal);
    return n;
  }

  // --------------------------------------------------------- per partition
  std::int32_t total_nodes(PartitionId p) const { return part(p).total; }
  std::int32_t free_nodes(PartitionId p) const { return part(p).free; }
  std::int32_t busy_nodes(PartitionId p) const { return part(p).total - part(p).free; }
  std::int32_t nominal_nodes(PartitionId p) const { return part(p).nominal; }

  /// Monotone counter bumped on every capacity change (add_capacity /
  /// remove_capacity) of partition p. The fast simulator snapshots it to
  /// detect event-kernel capacity edits — the changes it cannot mirror
  /// incrementally into its availability profiles — without the kernel
  /// having to call back per partition. allocate/release (the simulator's
  /// own job starts/finishes) intentionally do NOT bump it.
  std::uint64_t capacity_epoch(PartitionId p) const { return part(p).epoch; }

  bool can_allocate(PartitionId p, std::int32_t nodes) const { return nodes <= part(p).free; }

  void allocate(PartitionId p, std::int32_t nodes) {
    assert(can_allocate(p, nodes));
    part(p).free -= nodes;
  }

  void release(PartitionId p, std::int32_t nodes) {
    part(p).free += nodes;
    assert(part(p).free <= part(p).total);
  }

  /// Nodes return to service (restore / expansion); may exceed nominal.
  void add_capacity(PartitionId p, std::int32_t nodes) {
    assert(nodes >= 0);
    if (nodes == 0) return;
    part(p).total += nodes;
    part(p).free += nodes;
    ++part(p).epoch;
  }

  /// Nodes leave service. Only *free* nodes can be removed — the caller
  /// kills, preempts, or drains running jobs first to free them.
  void remove_capacity(PartitionId p, std::int32_t nodes) {
    assert(nodes >= 0 && nodes <= part(p).free);
    if (nodes == 0) return;
    part(p).total -= nodes;
    part(p).free -= nodes;
    ++part(p).epoch;
  }

 private:
  struct Part {
    std::string name;
    std::int32_t total;
    std::int32_t free;
    std::int32_t nominal;
    std::uint64_t epoch = 0;
  };

  Part& part(PartitionId p) {
    assert(p >= 0 && p < partition_count());
    return parts_[static_cast<std::size_t>(p)];
  }
  const Part& part(PartitionId p) const {
    assert(p >= 0 && p < partition_count());
    return parts_[static_cast<std::size_t>(p)];
  }

  std::vector<Part> parts_;
};

}  // namespace mirage::sim

// Homogeneous-node cluster abstraction. The paper's clusters allocate whole
// nodes to jobs (4x V100 / 4x RTX / 3x A100 GPUs per node), so capacity is
// a single node counter; topology is out of scope for queueing behavior.
#pragma once

#include <cassert>
#include <cstdint>

namespace mirage::sim {

class Cluster {
 public:
  explicit Cluster(std::int32_t total_nodes) : total_(total_nodes), free_(total_nodes) {
    assert(total_nodes > 0);
  }

  std::int32_t total_nodes() const { return total_; }
  std::int32_t free_nodes() const { return free_; }
  std::int32_t busy_nodes() const { return total_ - free_; }
  double utilization() const { return static_cast<double>(busy_nodes()) / total_; }

  bool can_allocate(std::int32_t nodes) const { return nodes <= free_; }

  void allocate(std::int32_t nodes) {
    assert(can_allocate(nodes));
    free_ -= nodes;
  }

  void release(std::int32_t nodes) {
    free_ += nodes;
    assert(free_ <= total_);
  }

 private:
  std::int32_t total_;
  std::int32_t free_;
};

}  // namespace mirage::sim

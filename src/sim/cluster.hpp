// Homogeneous-node cluster abstraction. The paper's clusters allocate whole
// nodes to jobs (4x V100 / 4x RTX / 3x A100 GPUs per node), so capacity is
// a single node counter; topology is out of scope for queueing behavior.
// Capacity is variable at runtime (outages, drains, restores) — the
// simulator adjusts it through add_capacity/remove_capacity, which keep
// 0 <= busy <= total as an invariant.
#pragma once

#include <cassert>
#include <cstdint>

namespace mirage::sim {

class Cluster {
 public:
  explicit Cluster(std::int32_t total_nodes) : total_(total_nodes), free_(total_nodes) {
    assert(total_nodes > 0);
  }

  std::int32_t total_nodes() const { return total_; }
  std::int32_t free_nodes() const { return free_; }
  std::int32_t busy_nodes() const { return total_ - free_; }
  double utilization() const {
    return total_ ? static_cast<double>(busy_nodes()) / total_ : 0.0;
  }

  bool can_allocate(std::int32_t nodes) const { return nodes <= free_; }

  void allocate(std::int32_t nodes) {
    assert(can_allocate(nodes));
    free_ -= nodes;
  }

  void release(std::int32_t nodes) {
    free_ += nodes;
    assert(free_ <= total_);
  }

  /// Nodes return to service (restore / expansion).
  void add_capacity(std::int32_t nodes) {
    assert(nodes >= 0);
    total_ += nodes;
    free_ += nodes;
  }

  /// Nodes leave service. Only *free* nodes can be removed — the caller
  /// kills or drains running jobs first to free them.
  void remove_capacity(std::int32_t nodes) {
    assert(nodes >= 0 && nodes <= free_);
    total_ -= nodes;
    free_ -= nodes;
  }

 private:
  std::int32_t total_;
  std::int32_t free_;
};

}  // namespace mirage::sim

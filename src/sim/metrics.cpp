#include "sim/metrics.hpp"

#include <algorithm>

#include "util/stats.hpp"

namespace mirage::sim {

using util::SimTime;

ScheduleMetrics compute_schedule_metrics(const trace::Trace& schedule, std::int32_t total_nodes) {
  ScheduleMetrics m;
  if (schedule.empty() || total_nodes <= 0) return m;

  SimTime begin = 0, end = 0;
  bool first = true;
  double busy_node_seconds = 0.0;
  std::vector<double> waits;
  waits.reserve(schedule.size());
  for (const auto& j : schedule) {
    if (!j.scheduled()) continue;
    if (first) {
      begin = j.submit_time;
      end = j.end_time;
      first = false;
    } else {
      begin = std::min(begin, j.submit_time);
      end = std::max(end, j.end_time);
    }
    busy_node_seconds += static_cast<double>(j.runtime()) * j.num_nodes;
    waits.push_back(util::to_hours(j.wait_time()));
    ++m.scheduled_jobs;
  }
  if (m.scheduled_jobs == 0) return m;

  const double makespan_seconds = static_cast<double>(end - begin);
  m.makespan_hours = makespan_seconds / 3600.0;
  if (makespan_seconds > 0) {
    m.average_utilization = busy_node_seconds / (makespan_seconds * total_nodes);
    m.jobs_per_day =
        static_cast<double>(m.scheduled_jobs) / (makespan_seconds / util::kDay);
  }
  m.mean_wait_hours = util::mean(waits);
  m.p95_wait_hours = util::percentile(waits, 95.0);
  m.max_wait_hours = util::percentile(waits, 100.0);
  return m;
}

std::vector<double> monthly_utilization(const trace::Trace& schedule, std::int32_t total_nodes) {
  if (schedule.empty() || total_nodes <= 0) return {};
  const SimTime origin = trace::trace_begin(schedule);
  std::vector<double> busy;  // node-seconds per month
  for (const auto& j : schedule) {
    if (!j.scheduled()) continue;
    // Spread the job's node-seconds over the months it spans.
    SimTime t = j.start_time;
    while (t < j.end_time) {
      const auto month = static_cast<std::size_t>(std::max<SimTime>(0, t - origin) / util::kMonth);
      const SimTime month_end = origin + static_cast<SimTime>(month + 1) * util::kMonth;
      const SimTime chunk_end = std::min(j.end_time, month_end);
      if (month >= busy.size()) busy.resize(month + 1, 0.0);
      busy[month] += static_cast<double>(chunk_end - t) * j.num_nodes;
      t = chunk_end;
    }
  }
  const double capacity = static_cast<double>(total_nodes) * util::kMonth;
  std::vector<double> out(busy.size());
  for (std::size_t i = 0; i < busy.size(); ++i) out[i] = busy[i] / capacity;
  return out;
}

}  // namespace mirage::sim

// Shared cluster-event state machine. Both simulators used to reimplement
// the down/drain/restore semantics against their own capacity scalars and
// had to be kept bitwise-consistent by hand; the EventKernel owns that
// logic once — partition-aware capacity accounting, drain debt, preemption
// and correlated-failure expansion — and the simulators supply only the
// victim bookkeeping they genuinely differ on (their job tables) through
// the Host interface. The fast==reference bitwise contract for event
// handling is therefore guaranteed by construction.
//
// Semantics (single-partition behavior is bitwise identical to the
// pre-kernel simulators):
//
//   down       free nodes leave first; then the host kills LIFO victims in
//              the target partition until the deficit is met; clamped to
//              the partition's (or cluster's) current capacity.
//   drain      adds to the target partition's drain debt, clamped so debt
//              never exceeds capacity; free nodes are withheld immediately
//              and as running jobs release them.
//   restore    adds capacity to the target partition; cluster-wide
//              restores refill partitions below their nominal capacity in
//              index order (the pools that lost nodes) with any surplus
//              expanding partition 0. Outstanding drain debt absorbs
//              restored nodes first.
//   preempt    down, with host.preempt_one instead of host.kill_one —
//              victims checkpoint and requeue rather than die.
//   correlated_down
//              one SplitMix64 draw of the event seed expands into
//              1..(nodes/rack_size) racks; each rack is a down of
//              rack_size nodes, assigned round-robin across partitions
//              starting at a drawn index (or all to the target partition).
//
// Cluster-wide (partition-less) down/drain walk partitions in index order,
// which reduces to the scalar behavior on single-partition clusters.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/cluster.hpp"
#include "sim/cluster_event.hpp"

namespace mirage::sim {

class EventKernel {
 public:
  /// Victim operations the driving simulator implements against its own
  /// job table. Both callbacks must release the victim's nodes back into
  /// the kernel's ClusterModel and return the victim's node count (0 when
  /// no job is running in the partition).
  struct Host {
    virtual ~Host() = default;
    /// Kill the most recently started running job in partition p
    /// (deterministic LIFO: latest start, then highest job id).
    virtual std::int32_t kill_one(PartitionId p) = 0;
    /// Checkpoint/requeue the same LIFO victim: remaining runtime is
    /// preserved and the job re-enters the queue after `requeue_delay`.
    virtual std::int32_t preempt_one(PartitionId p, util::SimTime requeue_delay) = 0;
  };

  explicit EventKernel(ClusterModel model)
      : model_(std::move(model)),
        drain_debt_(static_cast<std::size_t>(model_.partition_count()), 0),
        killed_by_partition_(static_cast<std::size_t>(model_.partition_count()), 0),
        preempted_by_partition_(static_cast<std::size_t>(model_.partition_count()), 0) {}

  ClusterModel& cluster() { return model_; }
  const ClusterModel& cluster() const { return model_; }

  /// Validate an event against the model (unknown partition names). False
  /// with a diagnostic instead of failing mid-run.
  bool validate(const ClusterEvent& ev, std::string* error = nullptr) const;

  /// Apply one event now. The host is called back for kills/preemptions.
  void apply(const ClusterEvent& ev, Host& host);

  /// Withhold free nodes of partition p against its outstanding drain
  /// debt. Call after any release of nodes into p.
  void absorb_drain(PartitionId p);

  std::int32_t drain_pending() const {
    std::int32_t n = 0;
    for (const std::int32_t d : drain_debt_) n += d;
    return n;
  }
  std::int32_t drain_pending(PartitionId p) const {
    return drain_debt_[static_cast<std::size_t>(p)];
  }
  std::size_t killed_jobs() const { return killed_; }
  std::size_t preempted_jobs() const { return preempted_; }
  /// Per-partition victim counts (indexed by PartitionId). take_down knows
  /// the partition it is draining, so the split is exact — the sums equal
  /// killed_jobs()/preempted_jobs() by construction.
  std::size_t killed_jobs(PartitionId p) const {
    return killed_by_partition_[static_cast<std::size_t>(p)];
  }
  std::size_t preempted_jobs(PartitionId p) const {
    return preempted_by_partition_[static_cast<std::size_t>(p)];
  }
  const std::vector<std::size_t>& killed_by_partition() const { return killed_by_partition_; }
  const std::vector<std::size_t>& preempted_by_partition() const {
    return preempted_by_partition_;
  }

 private:
  /// Remove up to `deficit` nodes from partition p, killing or preempting
  /// LIFO victims once free nodes run out. Returns nodes actually removed.
  std::int32_t take_down(PartitionId p, std::int32_t deficit, Host& host, bool preempt,
                         util::SimTime requeue_delay);
  void apply_down(const ClusterEvent& ev, Host& host, bool preempt);
  void apply_correlated(const ClusterEvent& ev, Host& host);

  ClusterModel model_;
  std::vector<std::int32_t> drain_debt_;
  std::size_t killed_ = 0;
  std::size_t preempted_ = 0;
  std::vector<std::size_t> killed_by_partition_;
  std::vector<std::size_t> preempted_by_partition_;
};

}  // namespace mirage::sim

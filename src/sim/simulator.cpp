#include "sim/simulator.hpp"

#include <algorithm>
#include <cassert>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/span.hpp"

namespace mirage::sim {

Simulator::Simulator(ClusterModel cluster, SchedulerConfig config)
    : kernel_(std::move(cluster)), config_(config) {
  const auto nparts = static_cast<std::size_t>(kernel_.cluster().partition_count());
  base_profiles_.assign(nparts, AvailabilityProfile(0, 0));
  pass_profiles_.assign(nparts, AvailabilityProfile(0, 0));
  for (std::size_t p = 0; p < nparts; ++p) {
    // Steps are bounded by distinct release times (<= running jobs, itself
    // <= partition nodes) plus reservation boundaries; pre-size so even
    // the warm-up passes stay allocation-free on typical clusters.
    const auto cap = static_cast<std::size_t>(
        kernel_.cluster().nominal_nodes(static_cast<PartitionId>(p)) + 64);
    base_profiles_[p].reserve_steps(cap);
    pass_profiles_[p].reserve_steps(cap);
    check_profile_.reserve_steps(cap);
  }
  profile_epoch_.assign(nparts, 0);
  profile_stale_.assign(nparts, 1);  // first pass builds from scratch
  scan_dirty_.assign(nparts, 1);
  scan_now_.assign(nparts, 0);
  part_queue_.resize(nparts);
  last_queue_.resize(nparts);
  blocked_.assign(nparts, 0);
  reservations_.assign(nparts, 0);
  scanned_past_blocked_.assign(nparts, 0);
  validate_profiles_ = config_.validate_profiles;
#ifndef NDEBUG
  validate_profiles_ = true;  // debug builds always cross-check
#endif
}

PartitionId Simulator::resolve_constraint(const JobRecord& record) const {
  if (record.partition.empty()) return kAnyPartition;
  const PartitionId p = kernel_.cluster().index_of(record.partition);
  if (p == kAnyPartition) {
    throw std::invalid_argument("job requests unknown partition: " + record.partition);
  }
  return p;
}

void Simulator::validate_record(const JobRecord& record, PartitionId constraint) const {
  // Validate against nominal capacity so a transient outage does not
  // reject a job that fits the cluster as built.
  const auto& model = kernel_.cluster();
  const std::int32_t ceiling = constraint == kAnyPartition
                                   ? model.max_partition_nominal()
                                   : model.nominal_nodes(constraint);
  if (record.num_nodes > ceiling) {
    throw std::invalid_argument("job requests more nodes than its partition has");
  }
}

JobId Simulator::enqueue_record(JobRecord&& record) {
  const JobId id = static_cast<JobId>(jobs_.size());
  SimJob j;
  j.record = std::move(record);
  j.constraint = resolve_constraint(j.record);
  validate_record(j.record, j.constraint);
  jobs_.push_back(std::move(j));
  push_event(std::max(jobs_.back().record.submit_time, now_), EventType::kArrival, id);
  return id;
}

void Simulator::load_workload(const Trace& workload) {
  Trace copy = workload;
  load_workload(std::move(copy));
}

void Simulator::load_workload(Trace&& workload) {
  const std::size_t n = jobs_.size() + workload.size();
  jobs_.reserve(n);
  // Pre-size every hot container so a steady-state run never reallocates:
  // at most one arrival + one finish event per job (requeues from preempt
  // bursts amortize into the slack), and the queue/run/log vectors are
  // bounded by the job count.
  events_.reserve(2 * n + 64);
  pending_.reserve(n);
  still_pending_.reserve(n);
  sort_keys_.reserve(n);
  running_.reserve(n);
  start_log_.reserve(n);
  last_full_order_.reserve(n);
  for (auto& r : workload) enqueue_record(std::move(r));
  workload.clear();
}

void Simulator::schedule_cluster_event(const ClusterEvent& event) {
  std::string error;
  if (!kernel_.validate(event, &error)) throw std::invalid_argument(error);
  const JobId index = static_cast<JobId>(cluster_events_.size());
  cluster_events_.push_back(event);
  push_event(std::max(event.time, now_), EventType::kCluster, index);
}

JobId Simulator::submit(const JobRecord& job) {
  const PartitionId constraint = resolve_constraint(job);
  validate_record(job, constraint);
  const JobId id = static_cast<JobId>(jobs_.size());
  SimJob j;
  j.record = job;
  j.record.submit_time = now_;  // injected at the current instant
  j.status = JobStatus::kPending;
  j.constraint = constraint;
  jobs_.push_back(std::move(j));
  pending_.push_back(id);
  mark_candidate(constraint);
  needs_schedule_ = true;
  schedule_pass();
  return id;
}

void Simulator::push_event(SimTime t, EventType type, JobId job) {
  events_.push_back(Event{t, event_seq_++, type, job});
  std::push_heap(events_.begin(), events_.end(), std::greater<Event>{});
}

void Simulator::run_until(SimTime t) {
  while (!events_.empty() && events_.front().time <= t) {
    // Drain all events at the next timestamp, then run one scheduler pass —
    // this batches simultaneous arrivals/finishes like Slurm's event loop.
    const SimTime batch_time = events_.front().time;
    now_ = batch_time;
    while (!events_.empty() && events_.front().time == batch_time) {
      const Event e = events_.front();
      std::pop_heap(events_.begin(), events_.end(), std::greater<Event>{});
      events_.pop_back();
      process_event(e);
    }
    if (needs_schedule_) schedule_pass();
  }
  now_ = std::max(now_, t);
}

void Simulator::run_to_completion() {
  // Drain event by event so now() ends at the last event time rather than
  // warping to an arbitrary horizon.
  while (!events_.empty()) run_until(events_.front().time);
}

void Simulator::run_until_complete(JobId id) {
  while (status(id) != JobStatus::kCompleted && !events_.empty()) {
    run_until(events_.front().time);
  }
}

void Simulator::run_until_started(JobId id) {
  while (status(id) == JobStatus::kPending || status(id) == JobStatus::kFuture ||
         status(id) == JobStatus::kPreempted) {
    if (events_.empty()) return;
    run_until(events_.front().time);
  }
}

void Simulator::mark_candidate(PartitionId constraint) {
  if (constraint == kAnyPartition) {
    std::fill(scan_dirty_.begin(), scan_dirty_.end(), char{1});
  } else {
    scan_dirty_[static_cast<std::size_t>(constraint)] = 1;
  }
}

void Simulator::process_event(const Event& e) {
  // For kCluster events e.job indexes cluster_events_, not jobs_ — do not
  // form a job reference before dispatching.
  if (e.type == EventType::kCluster) {
    const ClusterEvent& cev = cluster_events_[static_cast<std::size_t>(e.job)];
    if (trace_ != nullptr && obs::enabled()) {
      obs::TraceEvent ev;
      ev.kind = obs::TraceEventKind::kClusterEvent;
      ev.name = cluster_event_name(cev.type);
      ev.ts = now_;
      ev.arg0 = static_cast<std::int64_t>(cev.type);
      ev.arg1 = cev.nodes;
      const PartitionId p =
          cev.partition.empty() ? kAnyPartition : kernel_.cluster().index_of(cev.partition);
      ev.tid = p == kAnyPartition ? 0 : static_cast<std::uint32_t>(p);
      trace_->record(ev);
    }
    kernel_.apply(cev, *this);
    // Capacity edits surface through the cluster's capacity_epoch (checked
    // per partition at the next pass); kills/preemptions mark their
    // partitions stale in the host callbacks below.
    needs_schedule_ = true;
    return;
  }
  auto& j = jobs_[static_cast<std::size_t>(e.job)];
  switch (e.type) {
    case EventType::kArrival:
      if (j.status != JobStatus::kFuture) return;  // already injected
      j.status = JobStatus::kPending;
      pending_.push_back(e.job);
      mark_candidate(j.constraint);
      needs_schedule_ = true;
      break;
    case EventType::kFinish: {
      // A kNodeDown event may have killed the job already; its original
      // finish event is then stale and must be ignored. A preempted-and-
      // restarted job is running again, but only the finish event matching
      // the current run's end instant may complete it.
      if (j.status != JobStatus::kRunning) return;
      if (now_ != j.start + j.duration()) return;  // stale pre-preemption finish
      j.status = JobStatus::kCompleted;
      j.end = now_;
      j.record.end_time = now_;
      trace_job_event(obs::TraceEventKind::kJobRun, j, e.job);
      const PartitionId p = j.placed;
      kernel_.cluster().release(p, j.record.num_nodes);
      if (config_.backfill && !profile_stale_[static_cast<std::size_t>(p)]) {
        // O(Δ) profile update: the limit-based release moves up to now.
        base_profiles_[static_cast<std::size_t>(p)].release_early(
            now_, j.start + j.record.time_limit, j.record.num_nodes);
      }
      running_.erase(std::find(running_.begin(), running_.end(), e.job));
      kernel_.absorb_drain(p);  // capacity edits bump the epoch -> rebuild
      scan_dirty_[static_cast<std::size_t>(p)] = 1;  // freed capacity
      needs_schedule_ = true;
      break;
    }
    case EventType::kRequeue:
      if (j.status != JobStatus::kPreempted) return;
      j.status = JobStatus::kPending;
      pending_.push_back(e.job);
      trace_job_event(obs::TraceEventKind::kJobRequeue, j, e.job);
      mark_candidate(j.constraint);
      needs_schedule_ = true;
      break;
    case EventType::kCluster:
      break;  // handled above
  }
}

void Simulator::trace_job_event(obs::TraceEventKind kind, const SimJob& j, JobId id) const {
  if (trace_ == nullptr || !obs::enabled()) return;
  obs::TraceEvent ev;
  ev.kind = kind;
  ev.arg0 = id;
  ev.arg1 = j.record.num_nodes;
  ev.tid = static_cast<std::uint32_t>(j.placed);
  if (kind == obs::TraceEventKind::kJobRun) {
    // Complete slice for one (possibly truncated) run of the job. Callers
    // record it before start is reset, so [start, now] is always valid.
    ev.name = "job_run";
    ev.ts = j.start;
    ev.dur = now_ - j.start;
  } else {
    ev.ts = now_;
  }
  trace_->record(ev);
}

JobId Simulator::pick_victim(PartitionId p) const {
  JobId victim = -1;
  for (const JobId id : running_) {
    if (jobs_[static_cast<std::size_t>(id)].placed != p) continue;
    if (victim < 0) {
      victim = id;
      continue;
    }
    const auto& jv = jobs_[static_cast<std::size_t>(victim)];
    const auto& jc = jobs_[static_cast<std::size_t>(id)];
    // Deterministic LIFO victim selection: latest start, then highest id.
    if (jc.start > jv.start || (jc.start == jv.start && id > victim)) victim = id;
  }
  return victim;
}

std::int32_t Simulator::kill_one(PartitionId p) {
  const JobId id = pick_victim(p);
  if (id < 0) return 0;
  auto& j = jobs_[static_cast<std::size_t>(id)];
  j.status = JobStatus::kKilled;
  j.end = now_;
  j.record.end_time = now_;
  trace_job_event(obs::TraceEventKind::kJobRun, j, id);  // the truncated run
  trace_job_event(obs::TraceEventKind::kJobKill, j, id);
  kernel_.cluster().release(j.placed, j.record.num_nodes);
  running_.erase(std::find(running_.begin(), running_.end(), id));
  profile_stale_[static_cast<std::size_t>(p)] = 1;
  scan_dirty_[static_cast<std::size_t>(p)] = 1;
  return j.record.num_nodes;
}

std::int32_t Simulator::preempt_one(PartitionId p, SimTime requeue_delay) {
  const JobId id = pick_victim(p);
  if (id < 0) return 0;
  auto& j = jobs_[static_cast<std::size_t>(id)];
  trace_job_event(obs::TraceEventKind::kJobRun, j, id);  // run up to the checkpoint
  trace_job_event(obs::TraceEventKind::kJobPreempt, j, id);
  // Checkpoint: the remaining runtime survives; the limit is unchanged
  // (Slurm requeue semantics). start/end are reassigned on restart.
  j.record.actual_runtime = std::max<SimTime>(0, j.duration() - (now_ - j.start));
  j.status = JobStatus::kPreempted;
  j.start = trace::kUnsetTime;
  j.end = trace::kUnsetTime;
  j.record.start_time = trace::kUnsetTime;
  j.record.end_time = trace::kUnsetTime;
  kernel_.cluster().release(j.placed, j.record.num_nodes);
  running_.erase(std::find(running_.begin(), running_.end(), id));
  profile_stale_[static_cast<std::size_t>(p)] = 1;
  scan_dirty_[static_cast<std::size_t>(p)] = 1;
  push_event(now_ + std::max<SimTime>(0, requeue_delay), EventType::kRequeue, id);
  return j.record.num_nodes;
}

double Simulator::priority(const SimJob& j, double total_nodes_denom) const {
  const SimTime age = std::min(now_ - j.record.submit_time, config_.age_cap);
  const double age_part =
      config_.age_weight * static_cast<double>(age) / static_cast<double>(config_.age_cap);
  const double size_part =
      config_.size_weight * static_cast<double>(j.record.num_nodes) / total_nodes_denom;
  return age_part + size_part;
}

void Simulator::start_job(JobId id, PartitionId p) {
  auto& j = jobs_[static_cast<std::size_t>(id)];
  kernel_.cluster().allocate(p, j.record.num_nodes);
  if (config_.backfill) {
    // O(Δ) profile update: free drops until the limit-based release.
    base_profiles_[static_cast<std::size_t>(p)].occupy(now_, j.record.time_limit,
                                                       j.record.num_nodes);
  }
  j.status = JobStatus::kRunning;
  j.placed = p;
  j.start = now_;
  j.record.start_time = now_;
  running_.push_back(id);
  start_log_.emplace_back(now_, now_ - j.record.submit_time);
  push_event(now_ + j.duration(), EventType::kFinish, id);
}

double Simulator::recent_average_wait(SimTime window) const {
  // start_log_ is append-ordered by start time; scan the recent suffix.
  double sum = 0.0;
  std::size_t n = 0;
  for (auto it = start_log_.rbegin(); it != start_log_.rend(); ++it) {
    if (it->first < now_ - window) break;
    sum += static_cast<double>(it->second);
    ++n;
  }
  return n ? sum / static_cast<double>(n) : 0.0;
}

bool Simulator::sort_pending() {
  // Highest priority first; FIFO (earlier submit, then lower id) tie-break.
  // The size-factor denominator is hoisted out of the comparator (capacity
  // cannot change mid-sort; summing partitions per comparison would not),
  // and the priority itself is cached per job — same doubles, same order,
  // computed once instead of once per comparison.
  const auto& model = kernel_.cluster();
  const double total_denom = static_cast<double>(std::max(model.total_nodes(), 1));
  sort_keys_.clear();
  bool has_roaming = false;
  for (const JobId id : pending_) {
    const auto& j = jobs_[static_cast<std::size_t>(id)];
    if (j.constraint == kAnyPartition) has_roaming = true;
    sort_keys_.push_back(SortKey{priority(j, total_denom), j.record.submit_time, id});
  }
  const auto by_priority = [](const SortKey& a, const SortKey& b) {
    if (a.priority != b.priority) return a.priority > b.priority;
    if (a.submit != b.submit) return a.submit < b.submit;
    return a.id < b.id;
  };
  // The comparator is a strict total order (ids break every tie), so the
  // sorted permutation is unique — when the previous pass's order is still
  // sorted under today's priorities (the common case: ages grow in
  // lockstep until the age cap), the O(n log n) sort is a provable no-op.
  if (!std::is_sorted(sort_keys_.begin(), sort_keys_.end(), by_priority)) {
    std::sort(sort_keys_.begin(), sort_keys_.end(), by_priority);
    for (std::size_t i = 0; i < pending_.size(); ++i) pending_[i] = sort_keys_[i].id;
  }
  return has_roaming;
}

void Simulator::rebuild_profile_into(AvailabilityProfile& out, PartitionId p) const {
  out.reset(now_, kernel_.cluster().free_nodes(p));
  for (const JobId rid : running_) {
    const auto& rj = jobs_[static_cast<std::size_t>(rid)];
    if (rj.placed != p) continue;
    out.add_release(rj.start + rj.record.time_limit, rj.record.num_nodes);
  }
}

void Simulator::sync_profile(PartitionId p) {
  const auto pi = static_cast<std::size_t>(p);
  const auto& model = kernel_.cluster();
  const bool stale = profile_stale_[pi] || profile_epoch_[pi] != model.capacity_epoch(p);
  if (stale) {
    rebuild_profile_into(base_profiles_[pi], p);
  } else {
    base_profiles_[pi].advance_to(now_, model.free_nodes(p));
    if (validate_profiles_) {
      rebuild_profile_into(check_profile_, p);
      if (!(base_profiles_[pi] == check_profile_)) {
        std::ostringstream msg;
        msg << "incremental availability profile diverged from the from-scratch "
               "construction (partition "
            << p << ", t=" << now_ << ", " << base_profiles_[pi].step_count()
            << " vs " << check_profile_.step_count() << " steps)";
        throw std::logic_error(msg.str());
      }
    }
  }
  profile_stale_[pi] = 0;
  profile_epoch_[pi] = model.capacity_epoch(p);
}

void Simulator::schedule_pass_no_backfill() {
  // Pure priority scheduling: per partition, start strictly in order
  // until one job does not fit; everything behind it (in that partition)
  // waits. A roaming job takes the lowest-index open partition that
  // fits, and blocks every open partition when none does.
  const auto& model = kernel_.cluster();
  const std::int32_t nparts = model.partition_count();
  std::fill(blocked_.begin(), blocked_.end(), char{0});
  still_pending_.clear();
  for (const JobId id : pending_) {
    const auto& j = jobs_[static_cast<std::size_t>(id)];
    PartitionId chosen = kAnyPartition;
    if (j.constraint != kAnyPartition) {
      if (!blocked_[static_cast<std::size_t>(j.constraint)] &&
          model.can_allocate(j.constraint, j.record.num_nodes)) {
        chosen = j.constraint;
      }
    } else {
      for (PartitionId p = 0; p < nparts; ++p) {
        if (!blocked_[static_cast<std::size_t>(p)] &&
            model.can_allocate(p, j.record.num_nodes)) {
          chosen = p;
          break;
        }
      }
    }
    if (chosen != kAnyPartition) {
      start_job(id, chosen);
      continue;
    }
    if (j.constraint != kAnyPartition) {
      blocked_[static_cast<std::size_t>(j.constraint)] = 1;
    } else {
      std::fill(blocked_.begin(), blocked_.end(), char{1});
    }
    still_pending_.push_back(id);
  }
  pending_.swap(still_pending_);
}

void Simulator::schedule_pass() {
  // Sampled: a pass runs in ~1 µs, so timing every one costs ~10% of the
  // pass itself; 1-in-16 keeps the histogram representative at <1% cost.
  OBS_SPAN_SAMPLED("sim_schedule_pass", 4);
  needs_schedule_ = false;
  ++scheduler_passes_;
  if (pending_.empty()) return;

  const auto& model = kernel_.cluster();
  const std::int32_t nparts = model.partition_count();
  const bool has_roaming = sort_pending();

  if (!config_.backfill) {
    schedule_pass_no_backfill();
    return;
  }

  // ---- decide which partitions actually need a scan this pass ----
  // A partition is dirty when capacity was freed or edited (finish /
  // kill / preempt / any kernel capacity change, the latter via the
  // capacity epoch) or a new pending candidate targets it.
  bool any_dirty = false;
  for (PartitionId p = 0; p < nparts; ++p) {
    const auto pi = static_cast<std::size_t>(p);
    const bool dirty = scan_dirty_[pi] != 0 || profile_stale_[pi] != 0 ||
                       profile_epoch_[pi] != model.capacity_epoch(p);
    scan_now_[pi] = dirty ? 1 : 0;
    any_dirty |= dirty;
  }

  if (has_roaming) {
    // A roaming job consults every partition's profile, entangling them:
    // either the whole pass is provably a no-op (nothing dirty anywhere
    // and the priority order is unchanged, so every job re-derives its
    // previous blocked verdict) or everything is scanned.
    if (!any_dirty && std::equal(pending_.begin(), pending_.end(), last_full_order_.begin(),
                                 last_full_order_.end())) {
      return;
    }
    std::fill(scan_now_.begin(), scan_now_.end(), char{1});
  } else {
    // Pinned-only queues decouple the partitions: partition p's scan is a
    // pure function of its ordered pending subsequence and its profile.
    // With neither changed, rescanning provably starts nothing (free
    // capacity only rises at release steps, and none passed — the
    // partition would be dirty) — skip it.
    bool all_skippable = true;
    for (auto& q : part_queue_) q.clear();
    for (const JobId id : pending_) {
      const auto& j = jobs_[static_cast<std::size_t>(id)];
      part_queue_[static_cast<std::size_t>(j.constraint)].push_back(id);
    }
    for (PartitionId p = 0; p < nparts; ++p) {
      const auto pi = static_cast<std::size_t>(p);
      if (!scan_now_[pi] && part_queue_[pi] != last_queue_[pi]) scan_now_[pi] = 1;
      if (scan_now_[pi] && !part_queue_[pi].empty()) all_skippable = false;
      if (scan_now_[pi] && part_queue_[pi].empty()) {
        // Dirty but queue-less: nothing to scan; just note the fresh
        // capacity state so the dirt does not linger.
        scan_now_[pi] = 0;
        scan_dirty_[pi] = 0;
        profile_stale_[pi] = 1;  // resync lazily when a candidate appears
      }
    }
    if (all_skippable) return;
  }

  // ---- sync profiles and reset per-partition budgets for scanned parts ----
  for (PartitionId p = 0; p < nparts; ++p) {
    const auto pi = static_cast<std::size_t>(p);
    if (!scan_now_[pi]) continue;
    sync_profile(p);
    pass_profiles_[pi].assign(base_profiles_[pi]);
    reservations_[pi] = 0;
    scanned_past_blocked_[pi] = 0;
    blocked_[pi] = 0;
  }

  // ---- backfill with capped-depth reservations (Slurm bf_max_job_test
  // style): walk the queue in priority order over per-partition limit-
  // based availability profiles. A job starts iff it fits *now* without
  // delaying any higher-priority reservation in its partition; per
  // partition, the first `reservation_depth` blocked jobs pin forward
  // reservations that later candidates must respect. Roaming jobs use the
  // partition with the earliest fit (ties to the lowest index). ----
  still_pending_.clear();
  for (const JobId id : pending_) {
    const auto& j = jobs_[static_cast<std::size_t>(id)];
    if (j.constraint != kAnyPartition && !scan_now_[static_cast<std::size_t>(j.constraint)]) {
      still_pending_.push_back(id);  // skipped partition: verdict unchanged
      continue;
    }
    // When the job's partition is known before any profile query (pinned,
    // or a roamer on a single-partition cluster), apply the candidate
    // budget first: a pruned job's earliest_fit is never consulted, so
    // skipping its computation is free — on backlogged passes that is
    // most of the queue. The counter trajectory is identical either way.
    PartitionId pre = j.constraint != kAnyPartition ? j.constraint
                      : nparts == 1                 ? PartitionId{0}
                                                    : kAnyPartition;
    if (pre != kAnyPartition) {
      const auto pb = static_cast<std::size_t>(pre);
      if (blocked_[pb] && ++scanned_past_blocked_[pb] > config_.max_backfill_candidates) {
        still_pending_.push_back(id);
        continue;
      }
    }
    PartitionId best = pre != kAnyPartition ? pre : 0;
    SimTime best_start = pass_profiles_[static_cast<std::size_t>(best)].earliest_fit(
        now_, j.record.num_nodes, j.record.time_limit);
    if (j.constraint == kAnyPartition) {
      for (PartitionId p = 1; p < nparts; ++p) {
        const SimTime s = pass_profiles_[static_cast<std::size_t>(p)].earliest_fit(
            now_, j.record.num_nodes, j.record.time_limit);
        if (s < best_start) {
          best_start = s;
          best = p;
        }
      }
    }
    const auto bi = static_cast<std::size_t>(best);
    if (pre == kAnyPartition && blocked_[bi] &&
        ++scanned_past_blocked_[bi] > config_.max_backfill_candidates) {
      still_pending_.push_back(id);
      continue;
    }
    if (best_start == now_) {
      start_job(id, best);
      pass_profiles_[bi].reserve(now_, j.record.time_limit, j.record.num_nodes);
      continue;
    }
    blocked_[bi] = 1;
    if (reservations_[bi] < config_.reservation_depth) {
      pass_profiles_[bi].reserve(best_start, j.record.time_limit, j.record.num_nodes);
      ++reservations_[bi];
    }
    still_pending_.push_back(id);
  }
  pending_.swap(still_pending_);

  // ---- post-pass bookkeeping: scanned partitions are now clean, and the
  // recorded orders are what the skip checks compare against next pass ----
  for (PartitionId p = 0; p < nparts; ++p) {
    const auto pi = static_cast<std::size_t>(p);
    if (scan_now_[pi]) scan_dirty_[pi] = 0;
  }
  last_full_order_.assign(pending_.begin(), pending_.end());
  for (auto& q : last_queue_) q.clear();
  for (const JobId id : pending_) {
    const auto& j = jobs_[static_cast<std::size_t>(id)];
    if (j.constraint != kAnyPartition) {
      last_queue_[static_cast<std::size_t>(j.constraint)].push_back(id);
    }
  }
}

StateSample Simulator::sample() const {
  StateSample s;
  sample_into(s);
  return s;
}

void Simulator::sample_into(StateSample& s) const {
  s.now = now_;
  const auto& model = kernel_.cluster();
  s.total_nodes = model.total_nodes();
  s.free_nodes = model.free_nodes();
  const std::int32_t nparts = model.partition_count();
  s.partition_total.clear();
  s.partition_free.clear();
  s.partition_total.reserve(static_cast<std::size_t>(nparts));
  s.partition_free.reserve(static_cast<std::size_t>(nparts));
  for (PartitionId p = 0; p < nparts; ++p) {
    s.partition_total.push_back(model.total_nodes(p));
    s.partition_free.push_back(model.free_nodes(p));
  }
  s.queued_sizes.clear();
  s.queued_ages.clear();
  s.queued_limits.clear();
  s.queued_sizes.reserve(pending_.size());
  s.queued_ages.reserve(pending_.size());
  s.queued_limits.reserve(pending_.size());
  for (JobId id : pending_) {
    const auto& j = jobs_[static_cast<std::size_t>(id)];
    s.queued_sizes.push_back(static_cast<double>(j.record.num_nodes));
    s.queued_ages.push_back(static_cast<double>(now_ - j.record.submit_time));
    s.queued_limits.push_back(static_cast<double>(j.record.time_limit));
  }
  s.running_sizes.clear();
  s.running_elapsed.clear();
  s.running_limits.clear();
  s.running_sizes.reserve(running_.size());
  s.running_elapsed.reserve(running_.size());
  s.running_limits.reserve(running_.size());
  for (JobId id : running_) {
    const auto& j = jobs_[static_cast<std::size_t>(id)];
    s.running_sizes.push_back(static_cast<double>(j.record.num_nodes));
    s.running_elapsed.push_back(static_cast<double>(now_ - j.start));
    s.running_limits.push_back(static_cast<double>(j.record.time_limit));
  }
}

JobStatus Simulator::status(JobId id) const {
  return jobs_.at(static_cast<std::size_t>(id)).status;
}

SimTime Simulator::start_time(JobId id) const {
  return jobs_.at(static_cast<std::size_t>(id)).start;
}

SimTime Simulator::end_time(JobId id) const { return jobs_.at(static_cast<std::size_t>(id)).end; }

Trace Simulator::export_schedule() const {
  Trace out;
  out.reserve(jobs_.size());
  for (const auto& j : jobs_) out.push_back(j.record);
  return out;
}

Trace replay_trace(const Trace& workload, ClusterModel cluster, SchedulerConfig config) {
  Simulator sim(std::move(cluster), config);
  sim.load_workload(workload);
  sim.run_to_completion();
  return sim.export_schedule();
}

}  // namespace mirage::sim

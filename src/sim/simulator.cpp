#include "sim/simulator.hpp"

#include <algorithm>
#include <cassert>
#include <limits>
#include <stdexcept>

namespace mirage::sim {

Simulator::Simulator(ClusterModel cluster, SchedulerConfig config)
    : kernel_(std::move(cluster)), config_(config) {}

PartitionId Simulator::resolve_constraint(const JobRecord& record) const {
  if (record.partition.empty()) return kAnyPartition;
  const PartitionId p = kernel_.cluster().index_of(record.partition);
  if (p == kAnyPartition) {
    throw std::invalid_argument("job requests unknown partition: " + record.partition);
  }
  return p;
}

void Simulator::validate_record(const JobRecord& record, PartitionId constraint) const {
  // Validate against nominal capacity so a transient outage does not
  // reject a job that fits the cluster as built.
  const auto& model = kernel_.cluster();
  const std::int32_t ceiling = constraint == kAnyPartition
                                   ? model.max_partition_nominal()
                                   : model.nominal_nodes(constraint);
  if (record.num_nodes > ceiling) {
    throw std::invalid_argument("job requests more nodes than its partition has");
  }
}

void Simulator::load_workload(const Trace& workload) {
  jobs_.reserve(jobs_.size() + workload.size());
  for (const auto& r : workload) {
    const JobId id = static_cast<JobId>(jobs_.size());
    SimJob j;
    j.record = r;
    j.constraint = resolve_constraint(r);
    validate_record(r, j.constraint);
    jobs_.push_back(std::move(j));
    push_event(std::max(r.submit_time, now_), EventType::kArrival, id);
  }
}

void Simulator::schedule_cluster_event(const ClusterEvent& event) {
  std::string error;
  if (!kernel_.validate(event, &error)) throw std::invalid_argument(error);
  const JobId index = static_cast<JobId>(cluster_events_.size());
  cluster_events_.push_back(event);
  push_event(std::max(event.time, now_), EventType::kCluster, index);
}

JobId Simulator::submit(const JobRecord& job) {
  const PartitionId constraint = resolve_constraint(job);
  validate_record(job, constraint);
  const JobId id = static_cast<JobId>(jobs_.size());
  SimJob j;
  j.record = job;
  j.record.submit_time = now_;  // injected at the current instant
  j.status = JobStatus::kPending;
  j.constraint = constraint;
  jobs_.push_back(std::move(j));
  pending_.push_back(id);
  needs_schedule_ = true;
  schedule_pass();
  return id;
}

void Simulator::push_event(SimTime t, EventType type, JobId job) {
  events_.push(Event{t, event_seq_++, type, job});
}

void Simulator::run_until(SimTime t) {
  while (!events_.empty() && events_.top().time <= t) {
    // Drain all events at the next timestamp, then run one scheduler pass —
    // this batches simultaneous arrivals/finishes like Slurm's event loop.
    const SimTime batch_time = events_.top().time;
    now_ = batch_time;
    while (!events_.empty() && events_.top().time == batch_time) {
      const Event e = events_.top();
      events_.pop();
      process_event(e);
    }
    if (needs_schedule_) schedule_pass();
  }
  now_ = std::max(now_, t);
}

void Simulator::run_to_completion() {
  // Drain event by event so now() ends at the last event time rather than
  // warping to an arbitrary horizon.
  while (!events_.empty()) run_until(events_.top().time);
}

void Simulator::run_until_complete(JobId id) {
  while (status(id) != JobStatus::kCompleted && !events_.empty()) {
    run_until(events_.top().time);
  }
}

void Simulator::run_until_started(JobId id) {
  while (status(id) == JobStatus::kPending || status(id) == JobStatus::kFuture ||
         status(id) == JobStatus::kPreempted) {
    if (events_.empty()) return;
    run_until(events_.top().time);
  }
}

void Simulator::process_event(const Event& e) {
  // For kCluster events e.job indexes cluster_events_, not jobs_ — do not
  // form a job reference before dispatching.
  if (e.type == EventType::kCluster) {
    kernel_.apply(cluster_events_[static_cast<std::size_t>(e.job)], *this);
    needs_schedule_ = true;
    return;
  }
  auto& j = jobs_[static_cast<std::size_t>(e.job)];
  switch (e.type) {
    case EventType::kArrival:
      if (j.status != JobStatus::kFuture) return;  // already injected
      j.status = JobStatus::kPending;
      pending_.push_back(e.job);
      needs_schedule_ = true;
      break;
    case EventType::kFinish:
      // A kNodeDown event may have killed the job already; its original
      // finish event is then stale and must be ignored. A preempted-and-
      // restarted job is running again, but only the finish event matching
      // the current run's end instant may complete it.
      if (j.status != JobStatus::kRunning) return;
      if (now_ != j.start + j.duration()) return;  // stale pre-preemption finish
      j.status = JobStatus::kCompleted;
      j.end = now_;
      j.record.end_time = now_;
      kernel_.cluster().release(j.placed, j.record.num_nodes);
      running_.erase(std::find(running_.begin(), running_.end(), e.job));
      kernel_.absorb_drain(j.placed);
      needs_schedule_ = true;
      break;
    case EventType::kRequeue:
      if (j.status != JobStatus::kPreempted) return;
      j.status = JobStatus::kPending;
      pending_.push_back(e.job);
      needs_schedule_ = true;
      break;
    case EventType::kCluster:
      break;  // handled above
  }
}

JobId Simulator::pick_victim(PartitionId p) const {
  JobId victim = -1;
  for (const JobId id : running_) {
    if (jobs_[static_cast<std::size_t>(id)].placed != p) continue;
    if (victim < 0) {
      victim = id;
      continue;
    }
    const auto& jv = jobs_[static_cast<std::size_t>(victim)];
    const auto& jc = jobs_[static_cast<std::size_t>(id)];
    // Deterministic LIFO victim selection: latest start, then highest id.
    if (jc.start > jv.start || (jc.start == jv.start && id > victim)) victim = id;
  }
  return victim;
}

std::int32_t Simulator::kill_one(PartitionId p) {
  const JobId id = pick_victim(p);
  if (id < 0) return 0;
  auto& j = jobs_[static_cast<std::size_t>(id)];
  j.status = JobStatus::kKilled;
  j.end = now_;
  j.record.end_time = now_;
  kernel_.cluster().release(j.placed, j.record.num_nodes);
  running_.erase(std::find(running_.begin(), running_.end(), id));
  return j.record.num_nodes;
}

std::int32_t Simulator::preempt_one(PartitionId p, SimTime requeue_delay) {
  const JobId id = pick_victim(p);
  if (id < 0) return 0;
  auto& j = jobs_[static_cast<std::size_t>(id)];
  // Checkpoint: the remaining runtime survives; the limit is unchanged
  // (Slurm requeue semantics). start/end are reassigned on restart.
  j.record.actual_runtime = std::max<SimTime>(0, j.duration() - (now_ - j.start));
  j.status = JobStatus::kPreempted;
  j.start = trace::kUnsetTime;
  j.end = trace::kUnsetTime;
  j.record.start_time = trace::kUnsetTime;
  j.record.end_time = trace::kUnsetTime;
  kernel_.cluster().release(j.placed, j.record.num_nodes);
  running_.erase(std::find(running_.begin(), running_.end(), id));
  push_event(now_ + std::max<SimTime>(0, requeue_delay), EventType::kRequeue, id);
  return j.record.num_nodes;
}

double Simulator::priority(const SimJob& j, double total_nodes_denom) const {
  const SimTime age = std::min(now_ - j.record.submit_time, config_.age_cap);
  const double age_part =
      config_.age_weight * static_cast<double>(age) / static_cast<double>(config_.age_cap);
  const double size_part =
      config_.size_weight * static_cast<double>(j.record.num_nodes) / total_nodes_denom;
  return age_part + size_part;
}

void Simulator::start_job(JobId id, PartitionId p) {
  auto& j = jobs_[static_cast<std::size_t>(id)];
  kernel_.cluster().allocate(p, j.record.num_nodes);
  j.status = JobStatus::kRunning;
  j.placed = p;
  j.start = now_;
  j.record.start_time = now_;
  running_.push_back(id);
  start_log_.emplace_back(now_, now_ - j.record.submit_time);
  push_event(now_ + j.duration(), EventType::kFinish, id);
}

double Simulator::recent_average_wait(SimTime window) const {
  // start_log_ is append-ordered by start time; scan the recent suffix.
  double sum = 0.0;
  std::size_t n = 0;
  for (auto it = start_log_.rbegin(); it != start_log_.rend(); ++it) {
    if (it->first < now_ - window) break;
    sum += static_cast<double>(it->second);
    ++n;
  }
  return n ? sum / static_cast<double>(n) : 0.0;
}

void Simulator::schedule_pass() {
  needs_schedule_ = false;
  ++scheduler_passes_;
  if (pending_.empty()) return;

  const auto& model = kernel_.cluster();
  const std::int32_t nparts = model.partition_count();

  // Highest priority first; FIFO (earlier submit, then lower id) tie-break.
  // The size-factor denominator is hoisted out of the comparator (capacity
  // cannot change mid-sort; summing partitions per comparison would not).
  const double total_denom = static_cast<double>(std::max(model.total_nodes(), 1));
  std::sort(pending_.begin(), pending_.end(), [this, total_denom](JobId a, JobId b) {
    const auto& ja = jobs_[static_cast<std::size_t>(a)];
    const auto& jb = jobs_[static_cast<std::size_t>(b)];
    const double pa = priority(ja, total_denom), pb = priority(jb, total_denom);
    if (pa != pb) return pa > pb;
    if (ja.record.submit_time != jb.record.submit_time) {
      return ja.record.submit_time < jb.record.submit_time;
    }
    return a < b;
  });

  std::vector<JobId> still_pending;
  still_pending.reserve(pending_.size());

  if (!config_.backfill) {
    // Pure priority scheduling: per partition, start strictly in order
    // until one job does not fit; everything behind it (in that partition)
    // waits. A roaming job takes the lowest-index open partition that
    // fits, and blocks every open partition when none does.
    std::vector<char> blocked(static_cast<std::size_t>(nparts), 0);
    for (const JobId id : pending_) {
      const auto& j = jobs_[static_cast<std::size_t>(id)];
      PartitionId chosen = kAnyPartition;
      if (j.constraint != kAnyPartition) {
        if (!blocked[static_cast<std::size_t>(j.constraint)] &&
            model.can_allocate(j.constraint, j.record.num_nodes)) {
          chosen = j.constraint;
        }
      } else {
        for (PartitionId p = 0; p < nparts; ++p) {
          if (!blocked[static_cast<std::size_t>(p)] &&
              model.can_allocate(p, j.record.num_nodes)) {
            chosen = p;
            break;
          }
        }
      }
      if (chosen != kAnyPartition) {
        start_job(id, chosen);
        continue;
      }
      if (j.constraint != kAnyPartition) {
        blocked[static_cast<std::size_t>(j.constraint)] = 1;
      } else {
        std::fill(blocked.begin(), blocked.end(), 1);
      }
      still_pending.push_back(id);
    }
    pending_ = std::move(still_pending);
    return;
  }

  // Backfill with capped-depth reservations (Slurm bf_max_job_test style):
  // walk the queue in priority order over per-partition limit-based
  // availability profiles. A job starts iff it fits *now* without delaying
  // any higher-priority reservation in its partition; per partition, the
  // first `reservation_depth` blocked jobs pin forward reservations that
  // later candidates must respect. Roaming jobs use the partition with the
  // earliest fit (ties to the lowest index).
  std::vector<AvailabilityProfile> profiles;
  profiles.reserve(static_cast<std::size_t>(nparts));
  for (PartitionId p = 0; p < nparts; ++p) profiles.emplace_back(now_, model.free_nodes(p));
  for (JobId rid : running_) {
    const auto& rj = jobs_[static_cast<std::size_t>(rid)];
    profiles[static_cast<std::size_t>(rj.placed)].add_release(
        rj.start + rj.record.time_limit, rj.record.num_nodes);
  }

  std::vector<std::int32_t> reservations(static_cast<std::size_t>(nparts), 0);
  std::vector<std::int32_t> scanned_past_blocked(static_cast<std::size_t>(nparts), 0);
  std::vector<char> blocked(static_cast<std::size_t>(nparts), 0);
  for (std::size_t k = 0; k < pending_.size(); ++k) {
    const JobId id = pending_[k];
    const auto& j = jobs_[static_cast<std::size_t>(id)];
    PartitionId best = j.constraint != kAnyPartition ? j.constraint : 0;
    SimTime best_start =
        profiles[static_cast<std::size_t>(best)].earliest_fit(now_, j.record.num_nodes,
                                                              j.record.time_limit);
    if (j.constraint == kAnyPartition) {
      for (PartitionId p = 1; p < nparts; ++p) {
        const SimTime s = profiles[static_cast<std::size_t>(p)].earliest_fit(
            now_, j.record.num_nodes, j.record.time_limit);
        if (s < best_start) {
          best_start = s;
          best = p;
        }
      }
    }
    const auto bi = static_cast<std::size_t>(best);
    if (blocked[bi] && ++scanned_past_blocked[bi] > config_.max_backfill_candidates) {
      still_pending.push_back(id);
      continue;
    }
    if (best_start == now_) {
      start_job(id, best);
      profiles[bi].reserve(now_, j.record.time_limit, j.record.num_nodes);
      continue;
    }
    blocked[bi] = 1;
    if (reservations[bi] < config_.reservation_depth) {
      profiles[bi].reserve(best_start, j.record.time_limit, j.record.num_nodes);
      ++reservations[bi];
    }
    still_pending.push_back(id);
  }
  pending_ = std::move(still_pending);
}

StateSample Simulator::sample() const {
  StateSample s;
  s.now = now_;
  const auto& model = kernel_.cluster();
  s.total_nodes = model.total_nodes();
  s.free_nodes = model.free_nodes();
  const std::int32_t nparts = model.partition_count();
  s.partition_total.reserve(static_cast<std::size_t>(nparts));
  s.partition_free.reserve(static_cast<std::size_t>(nparts));
  for (PartitionId p = 0; p < nparts; ++p) {
    s.partition_total.push_back(model.total_nodes(p));
    s.partition_free.push_back(model.free_nodes(p));
  }
  s.queued_sizes.reserve(pending_.size());
  s.queued_ages.reserve(pending_.size());
  s.queued_limits.reserve(pending_.size());
  for (JobId id : pending_) {
    const auto& j = jobs_[static_cast<std::size_t>(id)];
    s.queued_sizes.push_back(static_cast<double>(j.record.num_nodes));
    s.queued_ages.push_back(static_cast<double>(now_ - j.record.submit_time));
    s.queued_limits.push_back(static_cast<double>(j.record.time_limit));
  }
  s.running_sizes.reserve(running_.size());
  s.running_elapsed.reserve(running_.size());
  s.running_limits.reserve(running_.size());
  for (JobId id : running_) {
    const auto& j = jobs_[static_cast<std::size_t>(id)];
    s.running_sizes.push_back(static_cast<double>(j.record.num_nodes));
    s.running_elapsed.push_back(static_cast<double>(now_ - j.start));
    s.running_limits.push_back(static_cast<double>(j.record.time_limit));
  }
  return s;
}

JobStatus Simulator::status(JobId id) const {
  return jobs_.at(static_cast<std::size_t>(id)).status;
}

SimTime Simulator::start_time(JobId id) const {
  return jobs_.at(static_cast<std::size_t>(id)).start;
}

SimTime Simulator::end_time(JobId id) const { return jobs_.at(static_cast<std::size_t>(id)).end; }

Trace Simulator::export_schedule() const {
  Trace out;
  out.reserve(jobs_.size());
  for (const auto& j : jobs_) out.push_back(j.record);
  return out;
}

Trace replay_trace(const Trace& workload, ClusterModel cluster, SchedulerConfig config) {
  Simulator sim(std::move(cluster), config);
  sim.load_workload(workload);
  sim.run_to_completion();
  return sim.export_schedule();
}

}  // namespace mirage::sim

#include "sim/simulator.hpp"

#include <algorithm>
#include <cassert>
#include <limits>
#include <stdexcept>

namespace mirage::sim {

Simulator::Simulator(std::int32_t total_nodes, SchedulerConfig config)
    : cluster_(total_nodes), config_(config) {}

void Simulator::load_workload(const Trace& workload) {
  jobs_.reserve(jobs_.size() + workload.size());
  for (const auto& r : workload) {
    const JobId id = static_cast<JobId>(jobs_.size());
    SimJob j;
    j.record = r;
    if (r.num_nodes > cluster_.total_nodes()) {
      throw std::invalid_argument("job requests more nodes than the cluster has");
    }
    jobs_.push_back(std::move(j));
    push_event(std::max(r.submit_time, now_), EventType::kArrival, id);
  }
}

void Simulator::schedule_cluster_event(const ClusterEvent& event) {
  const JobId index = static_cast<JobId>(cluster_events_.size());
  cluster_events_.push_back(event);
  push_event(std::max(event.time, now_), EventType::kCluster, index);
}

JobId Simulator::submit(const JobRecord& job) {
  if (job.num_nodes > cluster_.total_nodes()) {
    throw std::invalid_argument("job requests more nodes than the cluster has");
  }
  const JobId id = static_cast<JobId>(jobs_.size());
  SimJob j;
  j.record = job;
  j.record.submit_time = now_;  // injected at the current instant
  j.status = JobStatus::kPending;
  jobs_.push_back(std::move(j));
  pending_.push_back(id);
  needs_schedule_ = true;
  schedule_pass();
  return id;
}

void Simulator::push_event(SimTime t, EventType type, JobId job) {
  events_.push(Event{t, event_seq_++, type, job});
}

void Simulator::run_until(SimTime t) {
  while (!events_.empty() && events_.top().time <= t) {
    // Drain all events at the next timestamp, then run one scheduler pass —
    // this batches simultaneous arrivals/finishes like Slurm's event loop.
    const SimTime batch_time = events_.top().time;
    now_ = batch_time;
    while (!events_.empty() && events_.top().time == batch_time) {
      const Event e = events_.top();
      events_.pop();
      process_event(e);
    }
    if (needs_schedule_) schedule_pass();
  }
  now_ = std::max(now_, t);
}

void Simulator::run_to_completion() {
  // Drain event by event so now() ends at the last event time rather than
  // warping to an arbitrary horizon.
  while (!events_.empty()) run_until(events_.top().time);
}

void Simulator::run_until_complete(JobId id) {
  while (status(id) != JobStatus::kCompleted && !events_.empty()) {
    run_until(events_.top().time);
  }
}

void Simulator::run_until_started(JobId id) {
  while (status(id) == JobStatus::kPending || status(id) == JobStatus::kFuture) {
    if (events_.empty()) return;
    run_until(events_.top().time);
  }
}

void Simulator::process_event(const Event& e) {
  // For kCluster events e.job indexes cluster_events_, not jobs_ — do not
  // form a job reference before dispatching.
  if (e.type == EventType::kCluster) {
    apply_cluster_event(cluster_events_[static_cast<std::size_t>(e.job)]);
    return;
  }
  auto& j = jobs_[static_cast<std::size_t>(e.job)];
  switch (e.type) {
    case EventType::kArrival:
      if (j.status != JobStatus::kFuture) return;  // already injected
      j.status = JobStatus::kPending;
      pending_.push_back(e.job);
      needs_schedule_ = true;
      break;
    case EventType::kFinish:
      // A kNodeDown event may have killed the job already; its original
      // finish event is then stale and must be ignored.
      if (j.status != JobStatus::kRunning) return;
      j.status = JobStatus::kCompleted;
      j.end = now_;
      j.record.end_time = now_;
      cluster_.release(j.record.num_nodes);
      running_.erase(std::find(running_.begin(), running_.end(), e.job));
      absorb_drain();
      needs_schedule_ = true;
      break;
    case EventType::kCluster:
      break;  // handled above
  }
}

void Simulator::apply_cluster_event(const ClusterEvent& ev) {
  switch (ev.type) {
    case ClusterEventType::kNodeDown: {
      std::int32_t deficit = std::min(ev.nodes, cluster_.total_nodes());
      const std::int32_t from_free = std::min(cluster_.free_nodes(), deficit);
      cluster_.remove_capacity(from_free);
      deficit -= from_free;
      if (deficit > 0) kill_for_capacity(deficit);
      break;
    }
    case ClusterEventType::kDrain:
      drain_debt_ += std::clamp(cluster_.total_nodes() - drain_debt_, 0, ev.nodes);
      absorb_drain();
      break;
    case ClusterEventType::kNodeRestore:
      cluster_.add_capacity(ev.nodes);
      absorb_drain();  // outstanding drains absorb restored nodes first
      break;
  }
  needs_schedule_ = true;
}

void Simulator::kill_for_capacity(std::int32_t deficit) {
  while (deficit > 0 && !running_.empty()) {
    // Deterministic LIFO victim selection: latest start, then highest id.
    const auto it = std::max_element(
        running_.begin(), running_.end(), [this](JobId a, JobId b) {
          const auto& ja = jobs_[static_cast<std::size_t>(a)];
          const auto& jb = jobs_[static_cast<std::size_t>(b)];
          if (ja.start != jb.start) return ja.start < jb.start;
          return a < b;
        });
    const JobId id = *it;
    auto& j = jobs_[static_cast<std::size_t>(id)];
    j.status = JobStatus::kKilled;
    j.end = now_;
    j.record.end_time = now_;
    cluster_.release(j.record.num_nodes);
    running_.erase(it);
    ++killed_jobs_;
    const std::int32_t take = std::min(cluster_.free_nodes(), deficit);
    cluster_.remove_capacity(take);
    deficit -= take;
  }
  // Nothing left to kill: clamp to whatever capacity remains.
  if (deficit > 0) cluster_.remove_capacity(std::min(cluster_.free_nodes(), deficit));
}

void Simulator::absorb_drain() {
  const std::int32_t take = std::min(cluster_.free_nodes(), drain_debt_);
  if (take > 0) {
    cluster_.remove_capacity(take);
    drain_debt_ -= take;
  }
}

double Simulator::priority(const SimJob& j) const {
  const SimTime age = std::min(now_ - j.record.submit_time, config_.age_cap);
  const double age_part =
      config_.age_weight * static_cast<double>(age) / static_cast<double>(config_.age_cap);
  const double size_part = config_.size_weight * static_cast<double>(j.record.num_nodes) /
                           static_cast<double>(std::max(cluster_.total_nodes(), 1));
  return age_part + size_part;
}

void Simulator::start_job(JobId id) {
  auto& j = jobs_[static_cast<std::size_t>(id)];
  cluster_.allocate(j.record.num_nodes);
  j.status = JobStatus::kRunning;
  j.start = now_;
  j.record.start_time = now_;
  running_.push_back(id);
  start_log_.emplace_back(now_, now_ - j.record.submit_time);
  push_event(now_ + j.duration(), EventType::kFinish, id);
}

double Simulator::recent_average_wait(SimTime window) const {
  // start_log_ is append-ordered by start time; scan the recent suffix.
  double sum = 0.0;
  std::size_t n = 0;
  for (auto it = start_log_.rbegin(); it != start_log_.rend(); ++it) {
    if (it->first < now_ - window) break;
    sum += static_cast<double>(it->second);
    ++n;
  }
  return n ? sum / static_cast<double>(n) : 0.0;
}

void Simulator::schedule_pass() {
  needs_schedule_ = false;
  ++scheduler_passes_;
  if (pending_.empty()) return;

  // Highest priority first; FIFO (earlier submit, then lower id) tie-break.
  std::sort(pending_.begin(), pending_.end(), [this](JobId a, JobId b) {
    const auto& ja = jobs_[static_cast<std::size_t>(a)];
    const auto& jb = jobs_[static_cast<std::size_t>(b)];
    const double pa = priority(ja), pb = priority(jb);
    if (pa != pb) return pa > pb;
    if (ja.record.submit_time != jb.record.submit_time) {
      return ja.record.submit_time < jb.record.submit_time;
    }
    return a < b;
  });

  std::vector<JobId> still_pending;
  still_pending.reserve(pending_.size());

  if (!config_.backfill) {
    // Pure priority scheduling: start strictly in order until one job does
    // not fit; everything after it waits.
    std::size_t i = 0;
    for (; i < pending_.size(); ++i) {
      const JobId id = pending_[i];
      const auto& j = jobs_[static_cast<std::size_t>(id)];
      if (!cluster_.can_allocate(j.record.num_nodes)) break;
      start_job(id);
    }
    still_pending.assign(pending_.begin() + static_cast<std::ptrdiff_t>(i), pending_.end());
    pending_ = std::move(still_pending);
    return;
  }

  // Backfill with capped-depth reservations (Slurm bf_max_job_test style):
  // walk the queue in priority order over a limit-based availability
  // profile. A job starts iff it fits *now* without delaying any
  // higher-priority reservation; the first `reservation_depth` blocked
  // jobs pin forward reservations that later candidates must respect.
  AvailabilityProfile profile(now_, cluster_.free_nodes());
  for (JobId rid : running_) {
    const auto& rj = jobs_[static_cast<std::size_t>(rid)];
    profile.add_release(rj.start + rj.record.time_limit, rj.record.num_nodes);
  }

  std::int32_t reservations = 0;
  std::int32_t scanned_past_blocked = 0;
  bool any_blocked = false;
  for (std::size_t k = 0; k < pending_.size(); ++k) {
    const JobId id = pending_[k];
    const auto& j = jobs_[static_cast<std::size_t>(id)];
    if (any_blocked && ++scanned_past_blocked > config_.max_backfill_candidates) {
      still_pending.push_back(id);
      continue;
    }
    const SimTime start = profile.earliest_fit(now_, j.record.num_nodes, j.record.time_limit);
    if (start == now_) {
      start_job(id);
      profile.reserve(now_, j.record.time_limit, j.record.num_nodes);
      continue;
    }
    any_blocked = true;
    if (reservations < config_.reservation_depth) {
      profile.reserve(start, j.record.time_limit, j.record.num_nodes);
      ++reservations;
    }
    still_pending.push_back(id);
  }
  pending_ = std::move(still_pending);
}

StateSample Simulator::sample() const {
  StateSample s;
  s.now = now_;
  s.total_nodes = cluster_.total_nodes();
  s.free_nodes = cluster_.free_nodes();
  s.queued_sizes.reserve(pending_.size());
  s.queued_ages.reserve(pending_.size());
  s.queued_limits.reserve(pending_.size());
  for (JobId id : pending_) {
    const auto& j = jobs_[static_cast<std::size_t>(id)];
    s.queued_sizes.push_back(static_cast<double>(j.record.num_nodes));
    s.queued_ages.push_back(static_cast<double>(now_ - j.record.submit_time));
    s.queued_limits.push_back(static_cast<double>(j.record.time_limit));
  }
  s.running_sizes.reserve(running_.size());
  s.running_elapsed.reserve(running_.size());
  s.running_limits.reserve(running_.size());
  for (JobId id : running_) {
    const auto& j = jobs_[static_cast<std::size_t>(id)];
    s.running_sizes.push_back(static_cast<double>(j.record.num_nodes));
    s.running_elapsed.push_back(static_cast<double>(now_ - j.start));
    s.running_limits.push_back(static_cast<double>(j.record.time_limit));
  }
  return s;
}

JobStatus Simulator::status(JobId id) const {
  return jobs_.at(static_cast<std::size_t>(id)).status;
}

SimTime Simulator::start_time(JobId id) const {
  return jobs_.at(static_cast<std::size_t>(id)).start;
}

SimTime Simulator::end_time(JobId id) const { return jobs_.at(static_cast<std::size_t>(id)).end; }

Trace Simulator::export_schedule() const {
  Trace out;
  out.reserve(jobs_.size());
  for (const auto& j : jobs_) out.push_back(j.record);
  return out;
}

Trace replay_trace(const Trace& workload, std::int32_t total_nodes, SchedulerConfig config) {
  Simulator sim(total_nodes, config);
  sim.load_workload(workload);
  sim.run_to_completion();
  return sim.export_schedule();
}

}  // namespace mirage::sim

// Stepwise node-availability profile over [now, +inf) — the planning
// structure behind backfill scheduling. Shared by the fast simulator
// (capped-depth reservations) and the reference simulator (a reservation
// for every queued job, i.e. textbook conservative backfill).
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "util/time_utils.hpp"

namespace mirage::sim {

class AvailabilityProfile {
 public:
  static constexpr util::SimTime kFar = std::numeric_limits<util::SimTime>::max() / 4;

  AvailabilityProfile(util::SimTime now, std::int32_t free_now) {
    steps_.push_back({now, free_now});
  }

  /// `nodes` become free at time t (a running job's limit-based release).
  void add_release(util::SimTime t, std::int32_t nodes) { adjust(t, kFar, nodes); }

  /// Earliest start >= `from` such that free >= req over [start, start+len).
  util::SimTime earliest_fit(util::SimTime from, std::int32_t req, util::SimTime len) const {
    for (std::size_t i = 0; i < steps_.size(); ++i) {
      const util::SimTime candidate = std::max(from, steps_[i].time);
      if (i + 1 < steps_.size() && candidate >= steps_[i + 1].time) continue;
      if (window_fits(candidate, req, len)) return candidate;
    }
    return kFar;  // unreachable for requests within cluster capacity
  }

  /// Subtract req nodes over [start, start+len) (a reservation or a start).
  void reserve(util::SimTime start, util::SimTime len, std::int32_t req) {
    adjust(start, len >= kFar ? kFar : start + len, -req);
  }

 private:
  struct Step {
    util::SimTime time;
    std::int32_t free;
  };

  bool window_fits(util::SimTime start, std::int32_t req, util::SimTime len) const {
    const util::SimTime end = (len >= kFar) ? kFar : start + len;
    if (free_at(start) < req) return false;
    for (const auto& s : steps_) {
      if (s.time <= start) continue;
      if (s.time >= end) break;
      if (s.free < req) return false;
    }
    return true;
  }

  std::int32_t free_at(util::SimTime t) const {
    std::int32_t free = steps_.front().free;
    for (const auto& s : steps_) {
      if (s.time > t) break;
      free = s.free;
    }
    return free;
  }

  void adjust(util::SimTime from, util::SimTime to, std::int32_t delta) {
    ensure_step(from);
    if (to < kFar) ensure_step(to);
    for (auto& s : steps_) {
      if (s.time >= from && s.time < to) s.free += delta;
    }
  }

  void ensure_step(util::SimTime t) {
    for (std::size_t i = 0; i < steps_.size(); ++i) {
      if (steps_[i].time == t) return;
      if (steps_[i].time > t) {
        const std::int32_t inherited = (i == 0) ? steps_[0].free : steps_[i - 1].free;
        steps_.insert(steps_.begin() + static_cast<std::ptrdiff_t>(i), {t, inherited});
        return;
      }
    }
    steps_.push_back({t, steps_.back().free});
  }

  std::vector<Step> steps_;
};

}  // namespace mirage::sim

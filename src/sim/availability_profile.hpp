// Stepwise node-availability profile over [now, +inf) — the planning
// structure behind backfill scheduling. Shared by the fast simulator
// (capped-depth reservations) and the reference simulator (a reservation
// for every queued job, i.e. textbook conservative backfill).
//
// The fast simulator maintains one *base* profile per partition
// incrementally — O(Δ) updates on job start/finish instead of a from-
// scratch rebuild over every running job on every scheduler pass:
//
//   job starts    occupy(now, limit, nodes): free drops over
//                 [now, now+limit) and returns at the limit-based release;
//   job finishes  release_early(now, start+limit, nodes): the nodes that
//                 were scheduled to return at the limit return now;
//   time passes   advance_to(now, free_now): steps at or before `now`
//                 collapse into the head and redundant steps (left behind
//                 by early releases) are compacted away.
//
// The canonical form — a head step at `now` followed by strictly
// increasing release steps — is exactly what the from-scratch
// construction (head + add_release per running job) produces, so an
// incrementally maintained profile is bitwise interchangeable with a
// rebuilt one (operator== makes that checkable; the simulator cross-
// checks it in debug / validated runs).
#pragma once

#include <cassert>
#include <cstdint>
#include <limits>
#include <vector>

#include "util/time_utils.hpp"

namespace mirage::sim {

class AvailabilityProfile {
 public:
  static constexpr util::SimTime kFar = std::numeric_limits<util::SimTime>::max() / 4;

  AvailabilityProfile(util::SimTime now, std::int32_t free_now) {
    steps_.push_back({now, free_now});
  }

  /// Reinitialize in place (keeps the step storage — no allocation).
  void reset(util::SimTime now, std::int32_t free_now) {
    steps_.clear();
    steps_.push_back({now, free_now});
  }

  /// Copy another profile's steps into this one's storage (no allocation
  /// once capacity has warmed up) — the per-pass scratch copy that
  /// reservations are applied to, leaving the base profile untouched.
  void assign(const AvailabilityProfile& other) { steps_ = other.steps_; }

  /// `nodes` become free at time t (a running job's limit-based release).
  void add_release(util::SimTime t, std::int32_t nodes) { adjust(t, kFar, nodes); }

  /// A job starts now: free drops by `nodes` over [now, now+limit) and the
  /// limit-based release appears at now+limit. Identical to reserve().
  void occupy(util::SimTime now, util::SimTime limit, std::int32_t nodes) {
    reserve(now, limit, nodes);
  }

  /// A job leaves (finish) before its limit: the nodes scheduled to return
  /// at `release_time` return at `now` instead. No-op when the job runs to
  /// its limit exactly (the release step is already due).
  void release_early(util::SimTime now, util::SimTime release_time, std::int32_t nodes) {
    if (release_time <= now) return;
    adjust(now, release_time, nodes);
  }

  /// Advance the head to `now`: steps at or before `now` collapse into the
  /// head (whose free count the caller supplies from the cluster model),
  /// and redundant steps left by early releases are compacted, restoring
  /// the canonical strictly-increasing form.
  void advance_to(util::SimTime now, std::int32_t free_now) {
    std::size_t keep = 0;
    while (keep < steps_.size() && steps_[keep].time <= now) ++keep;
    assert(keep > 0 && "profile head can never be in the future");
    assert(steps_[keep - 1].free == free_now &&
           "incremental profile free count diverged from the cluster model");
    steps_.erase(steps_.begin(), steps_.begin() + static_cast<std::ptrdiff_t>(keep - 1));
    steps_.front() = {now, free_now};
    compact();
  }

  /// Earliest start >= `from` such that free >= req over [start, start+len).
  ///
  /// Single forward sweep, O(steps) amortized: a candidate start is `from`
  /// or a step time; when the window starting at a candidate hits a step
  /// with free < req, every candidate up to and including that violating
  /// step provably fails too (its window still covers the violation, or
  /// starts on it), so the scan jumps straight past it. Visits the same
  /// candidates the quadratic candidate-times-window scan did and returns
  /// the identical earliest fit.
  util::SimTime earliest_fit(util::SimTime from, std::int32_t req, util::SimTime len) const {
    const std::size_t n = steps_.size();
    std::size_t i = 0;  // step containing the current candidate
    while (i + 1 < n && steps_[i + 1].time <= from) ++i;
    util::SimTime candidate = std::max(from, steps_[i].time);
    while (true) {
      if (steps_[i].free >= req) {
        const util::SimTime end = (len >= kFar) ? kFar : candidate + len;
        std::size_t v = i + 1;
        while (v < n && steps_[v].time < end && steps_[v].free >= req) ++v;
        if (v >= n || steps_[v].time >= end) return candidate;
        if (v + 1 >= n) return kFar;  // violation extends to infinity
        i = v + 1;  // first candidate past the violating step
      } else {
        if (i + 1 >= n) return kFar;  // unreachable within cluster capacity
        ++i;
      }
      candidate = steps_[i].time;
    }
  }

  /// Subtract req nodes over [start, start+len) (a reservation or a start).
  void reserve(util::SimTime start, util::SimTime len, std::int32_t req) {
    adjust(start, len >= kFar ? kFar : start + len, -req);
  }

  std::size_t step_count() const { return steps_.size(); }
  void reserve_steps(std::size_t n) { steps_.reserve(n); }

  friend bool operator==(const AvailabilityProfile& a, const AvailabilityProfile& b) {
    if (a.steps_.size() != b.steps_.size()) return false;
    for (std::size_t i = 0; i < a.steps_.size(); ++i) {
      if (a.steps_[i].time != b.steps_[i].time || a.steps_[i].free != b.steps_[i].free) {
        return false;
      }
    }
    return true;
  }

 private:
  struct Step {
    util::SimTime time;
    std::int32_t free;
  };

  void adjust(util::SimTime from, util::SimTime to, std::int32_t delta) {
    ensure_step(from);
    if (to < kFar) ensure_step(to);
    for (auto& s : steps_) {
      if (s.time >= from && s.time < to) s.free += delta;
    }
  }

  void ensure_step(util::SimTime t) {
    for (std::size_t i = 0; i < steps_.size(); ++i) {
      if (steps_[i].time == t) return;
      if (steps_[i].time > t) {
        const std::int32_t inherited = (i == 0) ? steps_[0].free : steps_[i - 1].free;
        steps_.insert(steps_.begin() + static_cast<std::ptrdiff_t>(i), {t, inherited});
        return;
      }
    }
    steps_.push_back({t, steps_.back().free});
  }

  /// Remove steps whose free count equals their predecessor's. The base
  /// profile's free counts are nondecreasing in time, so equal-adjacent
  /// steps carry no information and the compacted form is the canonical
  /// strictly-increasing one the from-scratch construction yields.
  void compact() {
    std::size_t w = 1;
    for (std::size_t i = 1; i < steps_.size(); ++i) {
      if (steps_[i].free != steps_[w - 1].free) steps_[w++] = steps_[i];
    }
    steps_.resize(w);
  }

  std::vector<Step> steps_;
};

}  // namespace mirage::sim

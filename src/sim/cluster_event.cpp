#include "sim/cluster_event.hpp"

#include <sstream>

#include "util/csv.hpp"
#include "util/strconv.hpp"

namespace mirage::sim {

namespace {

bool fail(std::string* error, const std::string& message) {
  if (error) *error = message;
  return false;
}

}  // namespace

const char* cluster_event_name(ClusterEventType t) {
  switch (t) {
    case ClusterEventType::kNodeDown: return "down";
    case ClusterEventType::kDrain: return "drain";
    case ClusterEventType::kNodeRestore: return "restore";
    case ClusterEventType::kPreempt: return "preempt";
    case ClusterEventType::kCorrelatedDown: return "correlated_down";
  }
  return "?";
}

bool parse_cluster_event_type(const std::string& name, ClusterEventType& out,
                              std::string* error) {
  if (name == "down") {
    out = ClusterEventType::kNodeDown;
  } else if (name == "drain") {
    out = ClusterEventType::kDrain;
  } else if (name == "restore") {
    out = ClusterEventType::kNodeRestore;
  } else if (name == "preempt") {
    out = ClusterEventType::kPreempt;
  } else if (name == "correlated_down") {
    out = ClusterEventType::kCorrelatedDown;
  } else {
    return fail(error, "unknown cluster event type: '" + name +
                           "' (expected down|drain|restore|preempt|correlated_down)");
  }
  return true;
}

std::string to_string(const ClusterEvent& ev) {
  std::ostringstream out;
  out << cluster_event_name(ev.type) << ',' << ev.time << ',' << ev.nodes;
  if (!ev.partition.empty()) out << ",partition=" << ev.partition;
  if (ev.requeue_delay > 0) out << ",requeue_delay=" << ev.requeue_delay;
  if (ev.rack_size > 0) out << ",rack_size=" << ev.rack_size;
  if (ev.seed != 0) out << ",seed=" << ev.seed;
  return out.str();
}

bool parse_cluster_event(const std::string& text, ClusterEvent& out, std::string* error) {
  const auto fields = util::parse_csv_line(text);
  if (fields.size() < 3) {
    return fail(error, "cluster event needs at least type,time,nodes: " + text);
  }
  ClusterEvent ev;
  if (!parse_cluster_event_type(fields[0], ev.type, error)) return false;
  std::int64_t time = 0;
  std::int32_t nodes = 0;
  if (!util::parse_i64(fields[1], time) || time < 0) {
    return fail(error, "bad cluster event time: " + text);
  }
  if (!util::parse_i32(fields[2], nodes) || nodes <= 0) {
    return fail(error, "bad cluster event nodes: " + text);
  }
  ev.time = time;
  ev.nodes = nodes;
  for (std::size_t i = 3; i < fields.size(); ++i) {
    const auto eq = fields[i].find('=');
    if (eq == std::string::npos) {
      return fail(error, "cluster event field needs key=value: " + fields[i]);
    }
    const std::string key = fields[i].substr(0, eq);
    const std::string val = fields[i].substr(eq + 1);
    bool handled = false;
    if (!parse_shared_event_keyword(key, val, ev, handled, text, error)) return false;
    if (!handled) return fail(error, "unknown cluster event keyword: " + key);
  }
  out = ev;
  return true;
}

}  // namespace mirage::sim

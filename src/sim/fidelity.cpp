#include "sim/fidelity.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/stats.hpp"

namespace mirage::sim {

FidelityReport compare_schedules(const trace::Trace& a, const trace::Trace& b) {
  FidelityReport rep;
  const auto makespan = [](const trace::Trace& t) {
    return static_cast<double>(trace::trace_end(t) - trace::trace_begin(t));
  };
  rep.makespan_a = makespan(a);
  rep.makespan_b = makespan(b);
  const double mmax = std::max(rep.makespan_a, rep.makespan_b);
  rep.makespan_rel_diff = mmax > 0 ? std::abs(rep.makespan_a - rep.makespan_b) / mmax : 0.0;

  // JCT = end - submit. Ratio folded to >= 1 so over- and under-estimates
  // cannot cancel in the geometric mean.
  std::vector<double> ratios;
  const std::size_t n = std::min(a.size(), b.size());
  ratios.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (!a[i].scheduled() || !b[i].scheduled()) continue;
    const double jct_a = static_cast<double>(a[i].end_time - a[i].submit_time);
    const double jct_b = static_cast<double>(b[i].end_time - b[i].submit_time);
    if (jct_a <= 0 || jct_b <= 0) continue;
    const double r = jct_a / jct_b;
    ratios.push_back(std::max(r, 1.0 / r));
  }
  rep.compared_jobs = ratios.size();
  rep.jct_geomean_ratio = ratios.empty() ? 1.0 : util::geometric_mean(ratios);
  return rep;
}

}  // namespace mirage::sim

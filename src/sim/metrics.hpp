// Schedule-level cluster metrics: utilization, throughput, wait statistics.
// Used by the trace analysis benches and the capacity ablations; the
// paper's load-level definitions (§6) are wait-based, and these metrics
// connect them back to offered utilization.
#pragma once

#include <cstdint>
#include <vector>

#include "trace/job.hpp"

namespace mirage::sim {

struct ScheduleMetrics {
  double makespan_hours = 0.0;
  /// Busy node-hours / (total nodes * makespan).
  double average_utilization = 0.0;
  double jobs_per_day = 0.0;
  double mean_wait_hours = 0.0;
  double p95_wait_hours = 0.0;
  double max_wait_hours = 0.0;
  std::size_t scheduled_jobs = 0;
};

/// Compute metrics over a scheduled trace (unscheduled rows are skipped).
ScheduleMetrics compute_schedule_metrics(const trace::Trace& schedule,
                                         std::int32_t total_nodes);

/// Per-month average utilization (busy node-seconds within each 30-day
/// month / capacity). Months are indexed from the first submit time.
std::vector<double> monthly_utilization(const trace::Trace& schedule, std::int32_t total_nodes);

}  // namespace mirage::sim

#include "sim/reference_simulator.hpp"

#include <algorithm>
#include <cassert>
#include <limits>
#include <queue>
#include <stdexcept>
#include <vector>

#include "sim/availability_profile.hpp"
#include "util/time_utils.hpp"

namespace mirage::sim {

namespace {

using trace::JobRecord;
using trace::Trace;
using util::SimTime;

constexpr SimTime kFar = AvailabilityProfile::kFar;

struct RefJob {
  JobRecord record;
  bool running = false;
  bool done = false;
  SimTime duration() const { return std::min(record.actual_runtime, record.time_limit); }
};

enum class EvKind : std::uint8_t { kArrival, kFinish, kCluster };

struct Event {
  SimTime time;
  std::uint64_t seq;
  EvKind kind;
  std::size_t index;  ///< job index, or cluster-event index for kCluster
  bool operator>(const Event& o) const {
    if (time != o.time) return time > o.time;
    return seq > o.seq;
  }
};

}  // namespace

Trace reference_replay(const Trace& workload, std::int32_t total_nodes, SchedulerConfig config,
                       std::uint64_t* scheduler_passes) {
  return reference_replay(workload, total_nodes, {}, config, scheduler_passes, nullptr);
}

Trace reference_replay(const Trace& workload, std::int32_t total_nodes,
                       const std::vector<ClusterEvent>& events, SchedulerConfig config,
                       std::uint64_t* scheduler_passes, std::size_t* killed_jobs) {
  std::vector<RefJob> jobs;
  jobs.reserve(workload.size());
  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> queue;
  std::uint64_t seq = 0;
  for (const auto& r : workload) {
    if (r.num_nodes > total_nodes) {
      throw std::invalid_argument("job requests more nodes than the cluster has");
    }
    queue.push(Event{r.submit_time, seq++, EvKind::kArrival, jobs.size()});
    jobs.push_back(RefJob{r, false, false});
  }
  for (std::size_t i = 0; i < events.size(); ++i) {
    queue.push(Event{std::max<SimTime>(events[i].time, 0), seq++, EvKind::kCluster, i});
  }

  std::vector<std::size_t> pending;
  std::vector<std::size_t> running;
  std::int32_t cur_total = total_nodes;
  std::int32_t free_nodes = total_nodes;
  std::int32_t drain_debt = 0;
  std::size_t killed = 0;
  std::uint64_t passes = 0;

  const auto priority = [&](const RefJob& j, SimTime now) {
    const SimTime age = std::min(now - j.record.submit_time, config.age_cap);
    return config.age_weight * static_cast<double>(age) / static_cast<double>(config.age_cap) +
           config.size_weight * static_cast<double>(j.record.num_nodes) /
               static_cast<double>(std::max(cur_total, 1));
  };

  // Withhold free nodes against the outstanding drain debt (same semantics
  // as Simulator::absorb_drain).
  const auto absorb_drain = [&] {
    const std::int32_t take = std::min(free_nodes, drain_debt);
    cur_total -= take;
    free_nodes -= take;
    drain_debt -= take;
  };

  const auto apply_cluster_event = [&](const ClusterEvent& ev, SimTime now) {
    switch (ev.type) {
      case ClusterEventType::kNodeDown: {
        std::int32_t deficit = std::min(ev.nodes, cur_total);
        const std::int32_t from_free = std::min(free_nodes, deficit);
        cur_total -= from_free;
        free_nodes -= from_free;
        deficit -= from_free;
        while (deficit > 0 && !running.empty()) {
          // Deterministic LIFO victim: latest start, then highest index.
          const auto it = std::max_element(
              running.begin(), running.end(), [&](std::size_t a, std::size_t b) {
                if (jobs[a].record.start_time != jobs[b].record.start_time) {
                  return jobs[a].record.start_time < jobs[b].record.start_time;
                }
                return a < b;
              });
          const std::size_t id = *it;
          auto& j = jobs[id];
          j.running = false;
          j.done = true;
          j.record.end_time = now;
          free_nodes += j.record.num_nodes;
          running.erase(it);
          ++killed;
          const std::int32_t take = std::min(free_nodes, deficit);
          cur_total -= take;
          free_nodes -= take;
          deficit -= take;
        }
        if (deficit > 0) {
          const std::int32_t take = std::min(free_nodes, deficit);
          cur_total -= take;
          free_nodes -= take;
        }
        break;
      }
      case ClusterEventType::kDrain:
        drain_debt += std::clamp(cur_total - drain_debt, 0, ev.nodes);
        absorb_drain();
        break;
      case ClusterEventType::kNodeRestore:
        cur_total += ev.nodes;
        free_nodes += ev.nodes;
        absorb_drain();
        break;
    }
  };

  while (!queue.empty()) {
    const SimTime now = queue.top().time;
    while (!queue.empty() && queue.top().time == now) {
      const Event e = queue.top();
      queue.pop();
      switch (e.kind) {
        case EvKind::kArrival:
          pending.push_back(e.index);
          break;
        case EvKind::kFinish: {
          auto& j = jobs[e.index];
          if (!j.running) break;  // stale finish for a killed job
          j.running = false;
          j.done = true;
          free_nodes += j.record.num_nodes;
          running.erase(std::find(running.begin(), running.end(), e.index));
          absorb_drain();
          break;
        }
        case EvKind::kCluster:
          apply_cluster_event(events[e.index], now);
          break;
      }
    }

    // Conservative-backfill pass: reserve every queued job in priority
    // order on the availability profile; start those whose reservation is
    // "now".
    ++passes;
    std::sort(pending.begin(), pending.end(), [&](std::size_t a, std::size_t b) {
      const double pa = priority(jobs[a], now), pb = priority(jobs[b], now);
      if (pa != pb) return pa > pb;
      if (jobs[a].record.submit_time != jobs[b].record.submit_time) {
        return jobs[a].record.submit_time < jobs[b].record.submit_time;
      }
      return a < b;
    });

    AvailabilityProfile profile(now, free_nodes);
    for (std::size_t rid : running) {
      const auto& rj = jobs[rid];
      profile.add_release(rj.record.start_time + rj.record.time_limit, rj.record.num_nodes);
    }

    std::vector<std::size_t> still_pending;
    still_pending.reserve(pending.size());
    for (std::size_t id : pending) {
      auto& j = jobs[id];
      const SimTime start = profile.earliest_fit(now, j.record.num_nodes, j.record.time_limit);
      profile.reserve(start, j.record.time_limit, j.record.num_nodes);
      if (start == now) {
        j.running = true;
        j.record.start_time = now;
        free_nodes -= j.record.num_nodes;
        running.push_back(id);
        queue.push(Event{now + j.duration(), seq++, EvKind::kFinish, id});
        jobs[id].record.end_time = now + j.duration();
      } else {
        still_pending.push_back(id);
      }
    }
    pending = std::move(still_pending);
  }

  if (scheduler_passes) *scheduler_passes = passes;
  if (killed_jobs) *killed_jobs = killed;

  Trace out;
  out.reserve(jobs.size());
  for (const auto& j : jobs) out.push_back(j.record);
  return out;
}

}  // namespace mirage::sim

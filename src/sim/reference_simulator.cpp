#include "sim/reference_simulator.hpp"

#include <algorithm>
#include <cassert>
#include <limits>
#include <queue>
#include <stdexcept>
#include <vector>

#include "sim/availability_profile.hpp"
#include "util/time_utils.hpp"

namespace mirage::sim {

namespace {

using trace::JobRecord;
using trace::Trace;
using util::SimTime;

constexpr SimTime kFar = AvailabilityProfile::kFar;

struct RefJob {
  JobRecord record;
  bool started = false;
  bool done = false;
  SimTime duration() const { return std::min(record.actual_runtime, record.time_limit); }
};

struct Event {
  SimTime time;
  std::uint64_t seq;
  bool is_finish;  // false = arrival
  std::size_t job;
  bool operator>(const Event& o) const {
    if (time != o.time) return time > o.time;
    return seq > o.seq;
  }
};

}  // namespace

Trace reference_replay(const Trace& workload, std::int32_t total_nodes, SchedulerConfig config,
                       std::uint64_t* scheduler_passes) {
  std::vector<RefJob> jobs;
  jobs.reserve(workload.size());
  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> events;
  std::uint64_t seq = 0;
  for (const auto& r : workload) {
    if (r.num_nodes > total_nodes) {
      throw std::invalid_argument("job requests more nodes than the cluster has");
    }
    events.push(Event{r.submit_time, seq++, false, jobs.size()});
    jobs.push_back(RefJob{r, false, false});
  }

  std::vector<std::size_t> pending;
  std::vector<std::size_t> running;
  std::int32_t free_nodes = total_nodes;
  std::uint64_t passes = 0;

  const auto priority = [&](const RefJob& j, SimTime now) {
    const SimTime age = std::min(now - j.record.submit_time, config.age_cap);
    return config.age_weight * static_cast<double>(age) / static_cast<double>(config.age_cap) +
           config.size_weight * static_cast<double>(j.record.num_nodes) /
               static_cast<double>(total_nodes);
  };

  while (!events.empty()) {
    const SimTime now = events.top().time;
    while (!events.empty() && events.top().time == now) {
      const Event e = events.top();
      events.pop();
      auto& j = jobs[e.job];
      if (e.is_finish) {
        j.done = true;
        free_nodes += j.record.num_nodes;
        running.erase(std::find(running.begin(), running.end(), e.job));
      } else {
        pending.push_back(e.job);
      }
    }

    // Conservative-backfill pass: reserve every queued job in priority
    // order on the availability profile; start those whose reservation is
    // "now".
    ++passes;
    std::sort(pending.begin(), pending.end(), [&](std::size_t a, std::size_t b) {
      const double pa = priority(jobs[a], now), pb = priority(jobs[b], now);
      if (pa != pb) return pa > pb;
      if (jobs[a].record.submit_time != jobs[b].record.submit_time) {
        return jobs[a].record.submit_time < jobs[b].record.submit_time;
      }
      return a < b;
    });

    AvailabilityProfile profile(now, free_nodes);
    for (std::size_t rid : running) {
      const auto& rj = jobs[rid];
      profile.add_release(rj.record.start_time + rj.record.time_limit, rj.record.num_nodes);
    }

    std::vector<std::size_t> still_pending;
    still_pending.reserve(pending.size());
    for (std::size_t id : pending) {
      auto& j = jobs[id];
      const SimTime start = profile.earliest_fit(now, j.record.num_nodes, j.record.time_limit);
      profile.reserve(start, j.record.time_limit, j.record.num_nodes);
      if (start == now) {
        j.started = true;
        j.record.start_time = now;
        free_nodes -= j.record.num_nodes;
        running.push_back(id);
        events.push(Event{now + j.duration(), seq++, true, id});
        jobs[id].record.end_time = now + j.duration();
      } else {
        still_pending.push_back(id);
      }
    }
    pending = std::move(still_pending);
  }

  if (scheduler_passes) *scheduler_passes = passes;

  Trace out;
  out.reserve(jobs.size());
  for (const auto& j : jobs) out.push_back(j.record);
  return out;
}

}  // namespace mirage::sim

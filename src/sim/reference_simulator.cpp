#include "sim/reference_simulator.hpp"

#include <algorithm>
#include <cassert>
#include <limits>
#include <queue>
#include <stdexcept>
#include <vector>

#include "sim/availability_profile.hpp"
#include "sim/event_kernel.hpp"
#include "util/time_utils.hpp"

namespace mirage::sim {

namespace {

using trace::JobRecord;
using trace::Trace;
using util::SimTime;

struct RefJob {
  JobRecord record;
  bool running = false;
  bool done = false;
  PartitionId constraint = kAnyPartition;
  PartitionId placed = 0;
  SimTime duration() const { return std::min(record.actual_runtime, record.time_limit); }
};

enum class EvKind : std::uint8_t { kArrival, kFinish, kCluster, kRequeue };

struct Event {
  SimTime time;
  std::uint64_t seq;
  EvKind kind;
  std::size_t index;  ///< job index, or cluster-event index for kCluster
  bool operator>(const Event& o) const {
    if (time != o.time) return time > o.time;
    return seq > o.seq;
  }
};

/// EventKernel victim bookkeeping over the reference job table: identical
/// LIFO selection to the fast simulator (latest start, then highest id).
struct RefHost final : EventKernel::Host {
  std::vector<RefJob>& jobs;
  std::vector<std::size_t>& running;
  std::priority_queue<Event, std::vector<Event>, std::greater<Event>>& queue;
  EventKernel& kernel;
  std::uint64_t& seq;
  SimTime now = 0;

  RefHost(std::vector<RefJob>& jobs_in, std::vector<std::size_t>& running_in,
          std::priority_queue<Event, std::vector<Event>, std::greater<Event>>& queue_in,
          EventKernel& kernel_in, std::uint64_t& seq_in)
      : jobs(jobs_in), running(running_in), queue(queue_in), kernel(kernel_in), seq(seq_in) {}

  std::vector<std::size_t>::iterator pick_victim(PartitionId p) {
    auto victim = running.end();
    for (auto it = running.begin(); it != running.end(); ++it) {
      if (jobs[*it].placed != p) continue;
      if (victim == running.end()) {
        victim = it;
        continue;
      }
      const auto& jv = jobs[*victim];
      const auto& jc = jobs[*it];
      if (jc.record.start_time > jv.record.start_time ||
          (jc.record.start_time == jv.record.start_time && *it > *victim)) {
        victim = it;
      }
    }
    return victim;
  }

  std::int32_t kill_one(PartitionId p) override {
    const auto it = pick_victim(p);
    if (it == running.end()) return 0;
    auto& j = jobs[*it];
    j.running = false;
    j.done = true;
    j.record.end_time = now;
    kernel.cluster().release(j.placed, j.record.num_nodes);
    running.erase(it);
    return j.record.num_nodes;
  }

  std::int32_t preempt_one(PartitionId p, SimTime requeue_delay) override {
    const auto it = pick_victim(p);
    if (it == running.end()) return 0;
    const std::size_t id = *it;
    auto& j = jobs[id];
    j.record.actual_runtime =
        std::max<SimTime>(0, j.duration() - (now - j.record.start_time));
    j.running = false;
    j.record.start_time = trace::kUnsetTime;
    j.record.end_time = trace::kUnsetTime;
    kernel.cluster().release(j.placed, j.record.num_nodes);
    running.erase(it);
    queue.push(Event{now + std::max<SimTime>(0, requeue_delay), seq++, EvKind::kRequeue, id});
    return j.record.num_nodes;
  }
};

}  // namespace

Trace reference_replay(const Trace& workload, ClusterModel cluster, SchedulerConfig config,
                       std::uint64_t* scheduler_passes) {
  return reference_replay(workload, std::move(cluster), {}, config, scheduler_passes, nullptr,
                          nullptr);
}

Trace reference_replay(const Trace& workload, ClusterModel cluster,
                       const std::vector<ClusterEvent>& events, SchedulerConfig config,
                       std::uint64_t* scheduler_passes, std::size_t* killed_jobs,
                       std::size_t* preempted_jobs, std::vector<std::size_t>* killed_by_partition,
                       std::vector<std::size_t>* preempted_by_partition) {
  EventKernel kernel(std::move(cluster));
  const auto& model = kernel.cluster();
  const std::int32_t nparts = model.partition_count();

  std::vector<RefJob> jobs;
  jobs.reserve(workload.size());
  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> queue;
  std::uint64_t seq = 0;
  for (const auto& r : workload) {
    RefJob j{r, false, false, kAnyPartition, 0};
    if (!r.partition.empty()) {
      j.constraint = model.index_of(r.partition);
      if (j.constraint == kAnyPartition) {
        throw std::invalid_argument("job requests unknown partition: " + r.partition);
      }
    }
    const std::int32_t ceiling = j.constraint == kAnyPartition
                                     ? model.max_partition_nominal()
                                     : model.nominal_nodes(j.constraint);
    if (r.num_nodes > ceiling) {
      throw std::invalid_argument("job requests more nodes than its partition has");
    }
    queue.push(Event{r.submit_time, seq++, EvKind::kArrival, jobs.size()});
    jobs.push_back(std::move(j));
  }
  for (std::size_t i = 0; i < events.size(); ++i) {
    std::string error;
    if (!kernel.validate(events[i], &error)) throw std::invalid_argument(error);
    queue.push(Event{std::max<SimTime>(events[i].time, 0), seq++, EvKind::kCluster, i});
  }

  std::vector<std::size_t> pending;
  std::vector<std::size_t> running;
  std::uint64_t passes = 0;
  RefHost host(jobs, running, queue, kernel, seq);

  const auto priority = [&](const RefJob& j, SimTime now, double total_denom) {
    const SimTime age = std::min(now - j.record.submit_time, config.age_cap);
    return config.age_weight * static_cast<double>(age) / static_cast<double>(config.age_cap) +
           config.size_weight * static_cast<double>(j.record.num_nodes) / total_denom;
  };

  while (!queue.empty()) {
    const SimTime now = queue.top().time;
    host.now = now;
    while (!queue.empty() && queue.top().time == now) {
      const Event e = queue.top();
      queue.pop();
      switch (e.kind) {
        case EvKind::kArrival:
        case EvKind::kRequeue:
          pending.push_back(e.index);
          break;
        case EvKind::kFinish: {
          auto& j = jobs[e.index];
          if (!j.running) break;  // stale finish for a killed/preempted job
          // Only the finish matching the current run's end may complete a
          // preempted-and-restarted job.
          if (now != j.record.start_time + j.duration()) break;
          j.running = false;
          j.done = true;
          kernel.cluster().release(j.placed, j.record.num_nodes);
          running.erase(std::find(running.begin(), running.end(), e.index));
          kernel.absorb_drain(j.placed);
          break;
        }
        case EvKind::kCluster:
          kernel.apply(events[e.index], host);
          break;
      }
    }

    // Conservative-backfill pass: reserve every queued job in priority
    // order on its partition's availability profile (roaming jobs pick the
    // partition with the earliest fit); start those whose reservation is
    // "now".
    ++passes;
    const double total_denom = static_cast<double>(std::max(model.total_nodes(), 1));
    std::sort(pending.begin(), pending.end(), [&](std::size_t a, std::size_t b) {
      const double pa = priority(jobs[a], now, total_denom),
                   pb = priority(jobs[b], now, total_denom);
      if (pa != pb) return pa > pb;
      if (jobs[a].record.submit_time != jobs[b].record.submit_time) {
        return jobs[a].record.submit_time < jobs[b].record.submit_time;
      }
      return a < b;
    });

    std::vector<AvailabilityProfile> profiles;
    profiles.reserve(static_cast<std::size_t>(nparts));
    for (PartitionId p = 0; p < nparts; ++p) {
      profiles.emplace_back(now, model.free_nodes(p));
    }
    for (std::size_t rid : running) {
      const auto& rj = jobs[rid];
      profiles[static_cast<std::size_t>(rj.placed)].add_release(
          rj.record.start_time + rj.record.time_limit, rj.record.num_nodes);
    }

    std::vector<std::size_t> still_pending;
    still_pending.reserve(pending.size());
    for (std::size_t id : pending) {
      auto& j = jobs[id];
      PartitionId best = j.constraint != kAnyPartition ? j.constraint : 0;
      SimTime start = profiles[static_cast<std::size_t>(best)].earliest_fit(
          now, j.record.num_nodes, j.record.time_limit);
      if (j.constraint == kAnyPartition) {
        for (PartitionId p = 1; p < nparts; ++p) {
          const SimTime s = profiles[static_cast<std::size_t>(p)].earliest_fit(
              now, j.record.num_nodes, j.record.time_limit);
          if (s < start) {
            start = s;
            best = p;
          }
        }
      }
      profiles[static_cast<std::size_t>(best)].reserve(start, j.record.time_limit,
                                                       j.record.num_nodes);
      if (start == now) {
        j.running = true;
        j.placed = best;
        j.record.start_time = now;
        kernel.cluster().allocate(best, j.record.num_nodes);
        running.push_back(id);
        queue.push(Event{now + j.duration(), seq++, EvKind::kFinish, id});
        j.record.end_time = now + j.duration();
      } else {
        still_pending.push_back(id);
      }
    }
    pending = std::move(still_pending);
  }

  if (scheduler_passes) *scheduler_passes = passes;
  if (killed_jobs) *killed_jobs = kernel.killed_jobs();
  if (preempted_jobs) *preempted_jobs = kernel.preempted_jobs();
  if (killed_by_partition) *killed_by_partition = kernel.killed_by_partition();
  if (preempted_by_partition) *preempted_by_partition = kernel.preempted_by_partition();

  Trace out;
  out.reserve(jobs.size());
  for (const auto& j : jobs) out.push_back(j.record);
  return out;
}

}  // namespace mirage::sim

#include "sim/event_kernel.hpp"

#include <algorithm>

#include "util/rng.hpp"

namespace mirage::sim {

bool EventKernel::validate(const ClusterEvent& ev, std::string* error) const {
  if (!ev.partition.empty() && model_.index_of(ev.partition) == kAnyPartition) {
    if (error) {
      *error = "cluster event targets unknown partition '" + ev.partition + "'";
    }
    return false;
  }
  return true;
}

void EventKernel::absorb_drain(PartitionId p) {
  auto& debt = drain_debt_[static_cast<std::size_t>(p)];
  const std::int32_t take = std::min(model_.free_nodes(p), debt);
  if (take > 0) {
    model_.remove_capacity(p, take);
    debt -= take;
  }
}

std::int32_t EventKernel::take_down(PartitionId p, std::int32_t deficit, Host& host,
                                    bool preempt, util::SimTime requeue_delay) {
  std::int32_t removed = 0;
  const std::int32_t from_free = std::min(model_.free_nodes(p), deficit);
  model_.remove_capacity(p, from_free);
  removed += from_free;
  deficit -= from_free;
  while (deficit > 0) {
    const std::int32_t freed =
        preempt ? host.preempt_one(p, requeue_delay) : host.kill_one(p);
    if (freed <= 0) break;  // nothing left running in this partition
    if (preempt) {
      ++preempted_;
      ++preempted_by_partition_[static_cast<std::size_t>(p)];
    } else {
      ++killed_;
      ++killed_by_partition_[static_cast<std::size_t>(p)];
    }
    const std::int32_t take = std::min(model_.free_nodes(p), deficit);
    model_.remove_capacity(p, take);
    removed += take;
    deficit -= take;
  }
  // No victims left: clamp to whatever free capacity remains.
  if (deficit > 0) {
    const std::int32_t take = std::min(model_.free_nodes(p), deficit);
    model_.remove_capacity(p, take);
    removed += take;
  }
  return removed;
}

void EventKernel::apply_down(const ClusterEvent& ev, Host& host, bool preempt) {
  const PartitionId target = ev.partition.empty() ? kAnyPartition
                                                  : model_.index_of(ev.partition);
  if (target != kAnyPartition) {
    const std::int32_t deficit = std::min(ev.nodes, model_.total_nodes(target));
    take_down(target, deficit, host, preempt, ev.requeue_delay);
    return;
  }
  // Cluster-wide: walk partitions in index order carrying the remaining
  // deficit (single-partition clusters reduce to the scalar behavior).
  std::int32_t remaining = std::min(ev.nodes, model_.total_nodes());
  for (PartitionId p = 0; p < model_.partition_count() && remaining > 0; ++p) {
    remaining -= take_down(p, remaining, host, preempt, ev.requeue_delay);
  }
}

void EventKernel::apply_correlated(const ClusterEvent& ev, Host& host) {
  const PartitionId target = ev.partition.empty() ? kAnyPartition
                                                  : model_.index_of(ev.partition);
  const std::int32_t rack =
      ev.rack_size > 0 ? std::min(ev.rack_size, ev.nodes) : ev.nodes;
  const std::int32_t max_racks = std::max(1, ev.nodes / std::max(1, rack));
  // One draw decides the whole burst: low bits pick the rack count, high
  // bits the starting partition — same expansion in both simulators.
  std::uint64_t state = ev.seed;
  const std::uint64_t r = util::splitmix64(state);
  const std::int32_t racks =
      1 + static_cast<std::int32_t>(r % static_cast<std::uint64_t>(max_racks));
  const std::int32_t nparts = model_.partition_count();
  const PartitionId start = static_cast<PartitionId>(
      (r >> 32) % static_cast<std::uint64_t>(nparts));
  for (std::int32_t i = 0; i < racks; ++i) {
    const PartitionId p = target != kAnyPartition ? target : (start + i) % nparts;
    const std::int32_t deficit = std::min(rack, model_.total_nodes(p));
    take_down(p, deficit, host, /*preempt=*/false, 0);
  }
}

void EventKernel::apply(const ClusterEvent& ev, Host& host) {
  const PartitionId target = ev.partition.empty() ? kAnyPartition
                                                  : model_.index_of(ev.partition);
  switch (ev.type) {
    case ClusterEventType::kNodeDown:
      apply_down(ev, host, /*preempt=*/false);
      break;
    case ClusterEventType::kPreempt:
      apply_down(ev, host, /*preempt=*/true);
      break;
    case ClusterEventType::kCorrelatedDown:
      apply_correlated(ev, host);
      break;
    case ClusterEventType::kDrain: {
      if (target != kAnyPartition) {
        auto& debt = drain_debt_[static_cast<std::size_t>(target)];
        debt += std::clamp(model_.total_nodes(target) - debt, 0, ev.nodes);
        absorb_drain(target);
        break;
      }
      std::int32_t remaining = ev.nodes;
      for (PartitionId p = 0; p < model_.partition_count(); ++p) {
        auto& debt = drain_debt_[static_cast<std::size_t>(p)];
        const std::int32_t add = std::clamp(model_.total_nodes(p) - debt, 0, remaining);
        debt += add;
        remaining -= add;
        absorb_drain(p);
      }
      break;
    }
    case ClusterEventType::kNodeRestore: {
      if (target != kAnyPartition) {
        model_.add_capacity(target, ev.nodes);
        absorb_drain(target);  // outstanding drains absorb restored nodes first
        break;
      }
      // Cluster-wide: returned nodes refill partitions that are below their
      // nominal capacity in index order (they are the ones that lost nodes),
      // then any surplus expands partition 0. Splitting the add around the
      // drain absorption is arithmetically identical to one add+absorb on a
      // single-partition cluster.
      std::int32_t remaining = ev.nodes;
      for (PartitionId p = 0; p < model_.partition_count() && remaining > 0; ++p) {
        const std::int32_t deficit =
            std::max(0, model_.nominal_nodes(p) - model_.total_nodes(p));
        const std::int32_t add = std::min(remaining, deficit);
        if (add > 0) {
          model_.add_capacity(p, add);
          absorb_drain(p);
          remaining -= add;
        }
      }
      if (remaining > 0) {
        model_.add_capacity(0, remaining);
        absorb_drain(0);
      }
      break;
    }
  }
}

}  // namespace mirage::sim

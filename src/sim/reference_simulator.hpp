// Reference Slurm simulator used to validate the fast simulator's fidelity
// (paper §5.2 compares against the "standard" Slurm simulator [3,44]).
//
// Same event engine semantics, but an intentionally different — and more
// expensive — scheduling algorithm: *conservative* backfill. Every queued
// job gets a reservation on a time/node availability profile in priority
// order, and a job starts now only when its earliest reservation is the
// current instant. This is the textbook-exact policy; the fast simulator's
// EASY backfill (single reservation) approximates it at a fraction of the
// cost, which is precisely the trade-off the paper's fidelity study
// quantifies.
//
// Timed cluster events (outage / drain / restore) are supported with the
// exact same semantics as the fast simulator so scenario fidelity checks
// can compare event-bearing schedules too.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/cluster_event.hpp"
#include "sim/scheduler_config.hpp"
#include "trace/job.hpp"

namespace mirage::sim {

/// Replay a workload under conservative backfill; returns the trace with
/// start/end times assigned. `scheduler_passes` (optional out) counts
/// scheduling passes for overhead accounting.
trace::Trace reference_replay(const trace::Trace& workload, std::int32_t total_nodes,
                              SchedulerConfig config = {},
                              std::uint64_t* scheduler_passes = nullptr);

/// As above, with timed cluster capacity events (same down/drain/restore
/// semantics as Simulator::schedule_cluster_event). `killed_jobs`
/// (optional out) counts jobs killed by kNodeDown events.
trace::Trace reference_replay(const trace::Trace& workload, std::int32_t total_nodes,
                              const std::vector<ClusterEvent>& events, SchedulerConfig config = {},
                              std::uint64_t* scheduler_passes = nullptr,
                              std::size_t* killed_jobs = nullptr);

}  // namespace mirage::sim

// Reference Slurm simulator used to validate the fast simulator's fidelity
// (paper §5.2 compares against the "standard" Slurm simulator [3,44]).
//
// Same event engine semantics, but an intentionally different — and more
// expensive — scheduling algorithm: *conservative* backfill. Every queued
// job gets a reservation on a time/node availability profile in priority
// order, and a job starts now only when its earliest reservation is the
// current instant. This is the textbook-exact policy; the fast simulator's
// EASY backfill (single reservation) approximates it at a fraction of the
// cost, which is precisely the trade-off the paper's fidelity study
// quantifies.
#pragma once

#include <cstdint>

#include "sim/scheduler_config.hpp"
#include "trace/job.hpp"

namespace mirage::sim {

/// Replay a workload under conservative backfill; returns the trace with
/// start/end times assigned. `scheduler_passes` (optional out) counts
/// scheduling passes for overhead accounting.
trace::Trace reference_replay(const trace::Trace& workload, std::int32_t total_nodes,
                              SchedulerConfig config = {},
                              std::uint64_t* scheduler_passes = nullptr);

}  // namespace mirage::sim

// Reference Slurm simulator used to validate the fast simulator's fidelity
// (paper §5.2 compares against the "standard" Slurm simulator [3,44]).
//
// Same event engine semantics — by construction: cluster capacity events
// (outage / preemption / drain / restore / correlated failure) run through
// the exact same sim::EventKernel the fast simulator drives, so the two
// can only differ in scheduling policy. That policy is intentionally
// different — and more expensive — here: *conservative* backfill. Every
// queued job gets a reservation on a per-partition time/node availability
// profile in priority order, and a job starts now only when its earliest
// reservation is the current instant. This is the textbook-exact policy;
// the fast simulator's EASY backfill (capped reservations) approximates it
// at a fraction of the cost, which is precisely the trade-off the paper's
// fidelity study quantifies.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/cluster.hpp"
#include "sim/cluster_event.hpp"
#include "sim/scheduler_config.hpp"
#include "trace/job.hpp"

namespace mirage::sim {

/// Replay a workload under conservative backfill; returns the trace with
/// start/end times assigned. `scheduler_passes` (optional out) counts
/// scheduling passes for overhead accounting. `cluster` is implicitly
/// constructible from a plain node count.
trace::Trace reference_replay(const trace::Trace& workload, ClusterModel cluster,
                              SchedulerConfig config = {},
                              std::uint64_t* scheduler_passes = nullptr);

/// As above, with timed cluster capacity events (EventKernel semantics,
/// identical to Simulator::schedule_cluster_event). `killed_jobs` /
/// `preempted_jobs` (optional outs) count event victims;
/// `killed_by_partition` / `preempted_by_partition` (optional outs) are
/// assigned the per-partition split, indexed by PartitionId.
trace::Trace reference_replay(const trace::Trace& workload, ClusterModel cluster,
                              const std::vector<ClusterEvent>& events, SchedulerConfig config = {},
                              std::uint64_t* scheduler_passes = nullptr,
                              std::size_t* killed_jobs = nullptr,
                              std::size_t* preempted_jobs = nullptr,
                              std::vector<std::size_t>* killed_by_partition = nullptr,
                              std::vector<std::size_t>* preempted_by_partition = nullptr);

}  // namespace mirage::sim

// Timed cluster capacity events, shared by the fast and reference
// simulators (through the EventKernel) and the scenario engine. Events
// model the operational incidents the paper's production clusters see:
//
//   kNodeDown        abrupt outage — nodes leave *now*; if not enough nodes
//                    are free, the most recently started jobs in the target
//                    partition are killed (LIFO, deterministic) until the
//                    capacity target is met.
//   kDrain           maintenance drain — nodes leave as they free up;
//                    running jobs finish, but freed nodes are withheld from
//                    the scheduler until the drain debt is paid.
//   kNodeRestore     nodes return to service (and may exceed the original
//                    capacity, modeling cluster expansion).
//   kPreempt         like kNodeDown, but victims are checkpointed and
//                    requeued instead of killed: each victim re-enters the
//                    queue `requeue_delay` seconds later with its remaining
//                    runtime (progress is preserved).
//   kCorrelatedDown  rack-sized failure burst: one RNG draw (SplitMix64 of
//                    `seed`) deterministically expands into 1..nodes/rack
//                    racks of `rack_size` nodes, spread round-robin across
//                    partitions (or confined to the target partition).
//
// `partition` names the target partition; empty means cluster-wide: the
// kernel walks partitions in index order (down/drain take capacity from
// each in turn; restores refill partitions below nominal first, surplus
// expands partition 0). Submit bursts (flash crowds) are deliberately *not* a
// simulator event: the scenario engine lowers them onto ordinary arrival
// events so both simulators handle them through the same scheduling path.
#pragma once

#include <cstdint>
#include <string>

#include "util/strconv.hpp"
#include "util/time_utils.hpp"

namespace mirage::sim {

enum class ClusterEventType : std::uint8_t {
  kNodeDown,
  kDrain,
  kNodeRestore,
  kPreempt,
  kCorrelatedDown,
};

struct ClusterEvent {
  util::SimTime time = 0;
  ClusterEventType type = ClusterEventType::kNodeDown;
  std::int32_t nodes = 0;           ///< how many nodes the event affects
  std::string partition;            ///< target partition name; empty = cluster-wide
  util::SimTime requeue_delay = 0;  ///< kPreempt: victims resubmitted after this
  std::int32_t rack_size = 0;       ///< kCorrelatedDown: burst granularity (0 = nodes)
  std::uint64_t seed = 0;           ///< kCorrelatedDown: expansion RNG seed

  ClusterEvent() = default;
  ClusterEvent(util::SimTime t, ClusterEventType ty, std::int32_t n,
               std::string target_partition = {}, util::SimTime requeue = 0,
               std::int32_t rack = 0, std::uint64_t expansion_seed = 0)
      : time(t), type(ty), nodes(n), partition(std::move(target_partition)),
        requeue_delay(requeue), rack_size(rack), seed(expansion_seed) {}
};

const char* cluster_event_name(ClusterEventType t);

/// Reverse of cluster_event_name. Returns false (with a diagnostic in
/// *error when provided) for unknown names — never silently defaults.
bool parse_cluster_event_type(const std::string& name, ClusterEventType& out,
                              std::string* error = nullptr);

/// Round-trippable one-line form: "type,time,nodes" plus keyword fields
/// (partition=, requeue_delay=, rack_size=, seed=) for non-default values.
std::string to_string(const ClusterEvent& ev);

/// Parse the to_string() form (never throws); false + diagnostic on junk,
/// unknown event names, or unknown keywords.
bool parse_cluster_event(const std::string& text, ClusterEvent& out,
                         std::string* error = nullptr);

/// Parse one shared keyword field (partition= / requeue_delay= /
/// rack_size= / seed=) into any event type carrying those members — the
/// ONE definition of the shared event-keyword grammar, used by both the
/// simulator's event strings and the scenario engine's event CSV rows so
/// the two can never drift. Sets `handled` when `key` is one of the four
/// shared keywords; the return value is meaningful only then (`context`
/// is echoed into the diagnostic).
template <typename Event>
bool parse_shared_event_keyword(const std::string& key, const std::string& val, Event& ev,
                                bool& handled, const std::string& context,
                                std::string* error = nullptr) {
  const auto fail = [&](const std::string& message) {
    if (error) *error = message;
    return false;
  };
  handled = true;
  if (key == "partition") {
    if (val.empty()) return fail("empty partition name: " + context);
    ev.partition = val;
  } else if (key == "requeue_delay") {
    std::int64_t delay = 0;
    if (!util::parse_i64(val, delay) || delay < 0) {
      return fail("bad requeue_delay: " + context);
    }
    ev.requeue_delay = delay;
  } else if (key == "rack_size") {
    std::int32_t rack = 0;
    if (!util::parse_i32(val, rack) || rack <= 0) {
      return fail("bad rack_size: " + context);
    }
    ev.rack_size = rack;
  } else if (key == "seed") {
    std::uint64_t seed = 0;
    if (!util::parse_u64(val, seed)) return fail("bad event seed: " + context);
    ev.seed = seed;
  } else {
    handled = false;
  }
  return true;
}

}  // namespace mirage::sim

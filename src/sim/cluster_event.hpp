// Timed cluster capacity events, shared by the fast and reference
// simulators and the scenario engine. Events model the operational
// incidents the paper's production clusters actually see:
//
//   kNodeDown    abrupt outage — nodes leave *now*; if not enough nodes are
//                free, the most recently started jobs are killed (LIFO,
//                deterministic) until the capacity target is met.
//   kDrain       maintenance drain — nodes leave as they free up; running
//                jobs finish, but freed nodes are withheld from the
//                scheduler until the drain debt is paid.
//   kNodeRestore nodes return to service (and may exceed the original
//                capacity, modeling cluster expansion).
//
// Submit bursts (flash crowds) are deliberately *not* a simulator event:
// the scenario engine lowers them onto ordinary arrival events so both
// simulators handle them through the same scheduling path.
#pragma once

#include <cstdint>
#include <string>

#include "util/time_utils.hpp"

namespace mirage::sim {

enum class ClusterEventType : std::uint8_t { kNodeDown, kDrain, kNodeRestore };

struct ClusterEvent {
  util::SimTime time = 0;
  ClusterEventType type = ClusterEventType::kNodeDown;
  std::int32_t nodes = 0;  ///< how many nodes the event affects
};

inline const char* cluster_event_name(ClusterEventType t) {
  switch (t) {
    case ClusterEventType::kNodeDown: return "down";
    case ClusterEventType::kDrain: return "drain";
    case ClusterEventType::kNodeRestore: return "restore";
  }
  return "?";
}

}  // namespace mirage::sim

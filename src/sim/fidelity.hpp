// Fidelity metrics comparing two schedules of the same workload
// (paper §5.2: makespan difference < 2.5%, JCT geometric-mean difference
// < 15%, 3-26x overhead reduction).
#pragma once

#include <cstddef>

#include "trace/job.hpp"

namespace mirage::sim {

struct FidelityReport {
  double makespan_a = 0.0;          ///< seconds (first submit -> last end)
  double makespan_b = 0.0;
  double makespan_rel_diff = 0.0;   ///< |a-b| / max(a,b)
  double jct_geomean_ratio = 0.0;   ///< geomean over jobs of max(r,1/r), r = JCT_a/JCT_b
  std::size_t compared_jobs = 0;
};

/// Compare schedules a and b (same workload, same job order). Jobs
/// unscheduled in either are skipped.
FidelityReport compare_schedules(const trace::Trace& a, const trace::Trace& b);

}  // namespace mirage::sim

// Scheduler policy knobs for both the fast and the reference simulator.
// Mirrors the Slurm multifactor-priority + backfill configuration the
// paper's clusters run (§5.2).
#pragma once

#include <cstdint>

#include "util/time_utils.hpp"

namespace mirage::sim {

struct SchedulerConfig {
  /// Priority contribution of queue age: weight * min(age, age_cap)/age_cap.
  double age_weight = 1000.0;
  util::SimTime age_cap = 7 * util::kDay;

  /// Priority contribution of job size: weight * nodes / cluster_nodes.
  /// Positive favors large jobs (Slurm's default jobsize behavior).
  double size_weight = 100.0;

  /// Backfill on/off (the reference simulator uses full conservative
  /// backfill regardless; this flag only affects the fast simulator).
  bool backfill = true;

  /// How many blocked jobs get forward reservations per pass. 1 is classic
  /// EASY backfill; larger values approach conservative backfill, like
  /// Slurm's bf_max_job_test. The fast simulator's default trades a little
  /// per-pass work for fidelity to the reference.
  std::int32_t reservation_depth = 8;

  /// Cap on how many queued jobs one backfill pass examines past the first
  /// blocked job; keeps overloaded-month passes cheap.
  std::int32_t max_backfill_candidates = 128;

  /// Cross-check the incrementally maintained availability profiles
  /// against a from-scratch rebuild on every scheduler pass and throw on
  /// any divergence. Always on in assert-enabled (debug) builds; this flag
  /// lets release-built tests (the property storms) run the same check.
  bool validate_profiles = false;
};

}  // namespace mirage::sim

#include "serve/inference_engine.hpp"

#include <stdexcept>
#include <string>

#include "nn/parallel.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "obs/trace.hpp"
#include "util/thread_pool.hpp"
#include "util/time_utils.hpp"

namespace mirage::serve {

/// Process-wide backpressure counter (also surfaced per-engine via
/// EngineStats::rejected); registered once, bumped lock-free.
obs::Counter& engine_rejected_counter() {
  static obs::Counter* c = obs::registry().counter(
      "mirage_serve_engine_rejected_total",
      "engine submissions rejected by bounded-queue backpressure");
  return *c;
}

obs::Counter& engine_served_counter() {
  static obs::Counter* c = obs::registry().counter(
      "mirage_serve_engine_served_total",
      "decisions successfully served by the batched engine");
  return *c;
}

obs::Histogram& decision_latency_histogram() {
  static obs::Histogram* h = obs::registry().histogram(
      "mirage_serve_decision_latency_seconds",
      "enqueue-to-served decision latency (buckets carry request-id exemplars)");
  return *h;
}

namespace {
/// Journey breadcrumb: request `id` landed in engine ring slot `slot`.
void record_enqueue_event(std::uint64_t id, std::size_t slot, double enqueue_seconds) {
  obs::TraceEvent ev;
  ev.kind = obs::TraceEventKind::kRequestEnqueue;
  ev.ts = static_cast<std::int64_t>(enqueue_seconds * 1e6);
  ev.arg0 = static_cast<std::int64_t>(id);
  ev.arg1 = static_cast<std::int64_t>(slot);
  ev.tid = static_cast<std::uint32_t>(obs::detail::thread_shard());
  obs::global_trace().record(ev);
}
}  // namespace

// ------------------------------------------------ TokenPool / AsyncDecision

namespace detail {

TokenPool::~TokenPool() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (CompletionToken* token : free_) delete token;
  free_.clear();
}

CompletionToken* TokenPool::acquire() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!free_.empty()) {
      CompletionToken* token = free_.back();
      free_.pop_back();
      return token;
    }
    ++created_;
  }
  return new CompletionToken();  // cold start only; recycled forever after
}

void TokenPool::release(CompletionToken* token) {
  token->done = false;
  token->error = nullptr;
  token->on_complete = nullptr;
  token->ctx_a = nullptr;
  token->ctx_b = nullptr;
  token->ctx_c = nullptr;
  token->ctx_id = 0;
  token->keepalive.reset();
  std::lock_guard<std::mutex> lock(mutex_);
  free_.push_back(token);
}

std::size_t TokenPool::created() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return created_;
}

}  // namespace detail

AsyncDecision::AsyncDecision(AsyncDecision&& other) noexcept
    : token_(other.token_), pool_(other.pool_) {
  other.token_ = nullptr;
  other.pool_ = nullptr;
}

AsyncDecision& AsyncDecision::operator=(AsyncDecision&& other) noexcept {
  if (this != &other) {
    abandon();
    token_ = other.token_;
    pool_ = other.pool_;
    other.token_ = nullptr;
    other.pool_ = nullptr;
  }
  return *this;
}

AsyncDecision::~AsyncDecision() { abandon(); }

void AsyncDecision::abandon() {
  if (token_ == nullptr) return;
  {
    // The engine thread may still be about to touch the token; wait for
    // completion before recycling it.
    std::unique_lock<std::mutex> lock(token_->mutex);
    token_->cv.wait(lock, [this] { return token_->done; });
  }
  pool_->release(token_);
  token_ = nullptr;
}

Decision AsyncDecision::get() {
  if (token_ == nullptr) {
    throw std::runtime_error("AsyncDecision: no pending decision (moved-from or already got)");
  }
  Decision decision;
  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lock(token_->mutex);
    token_->cv.wait(lock, [this] { return token_->done; });
    error = token_->error;
    decision = token_->decision;
  }
  detail::CompletionToken* token = token_;
  token_ = nullptr;
  pool_->release(token);
  if (error) std::rethrow_exception(error);
  return decision;
}

BatchedInferenceEngine::BatchedInferenceEngine(ModelResolver resolver, EngineConfig config)
    : resolver_(std::move(resolver)), config_(config) {
  if (config_.max_batch == 0) config_.max_batch = 1;
  if (config_.max_queue == 0) config_.max_queue = 1;
  ring_.resize(config_.max_queue);
  batch_.resize(config_.max_batch);
  observations_.reserve(config_.max_batch);
  row_pool_.reserve(config_.max_batch);
  decisions_.reserve(config_.max_batch);
}

BatchedInferenceEngine::BatchedInferenceEngine(const ModelRegistry& registry, ModelKey key,
                                               EngineConfig config)
    : BatchedInferenceEngine([&registry, key = std::move(key)] { return registry.lookup(key); },
                             config) {}

BatchedInferenceEngine::~BatchedInferenceEngine() { drain(); }

void BatchedInferenceEngine::start() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (started_ || draining_) return;
  started_ = true;
  worker_ = std::thread([this] { run(); });
}

BatchedInferenceEngine::Request* BatchedInferenceEngine::reserve_slot_locked() {
  if (queued_ == ring_.size()) return nullptr;
  Request& slot = ring_[(head_ + queued_) % ring_.size()];
  ++queued_;
  return &slot;
}

std::future<Decision> BatchedInferenceEngine::submit(
    std::vector<float> observation, std::function<void(const Decision&)> on_complete,
    std::uint64_t request_id) {
  std::promise<Decision> promise;
  auto fut = promise.get_future();
  std::size_t slot_index = 0;
  double enqueue_seconds = 0.0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (draining_) {
      promise.set_exception(std::make_exception_ptr(
          std::runtime_error("BatchedInferenceEngine: draining, request rejected")));
      return fut;
    }
    Request* slot = reserve_slot_locked();
    if (!slot) {
      rejected_.fetch_add(1, std::memory_order_relaxed);
      engine_rejected_counter().add();
      promise.set_exception(std::make_exception_ptr(BackpressureRejected()));
      return fut;
    }
    slot->observation = std::move(observation);
    slot->promise.emplace(std::move(promise));
    slot->on_complete = std::move(on_complete);
    slot->waiter = nullptr;
    slot->token = nullptr;
    slot->enqueue_seconds = enqueue_seconds = util::wall_seconds();
    slot->request_id = request_id;
    slot_index = static_cast<std::size_t>(slot - ring_.data());
  }
  cv_.notify_one();
  if (request_id != 0 && obs::enabled()) {
    record_enqueue_event(request_id, slot_index, enqueue_seconds);
  }
  return fut;
}

BatchedInferenceEngine::SubmitResult BatchedInferenceEngine::try_decide_blocking(
    std::vector<float>& observation, Decision& out, std::uint64_t request_id) {
  thread_local detail::BlockingWaiter waiter;
  waiter.done = false;
  waiter.error = nullptr;
  std::size_t slot_index = 0;
  double enqueue_seconds = 0.0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (draining_) return SubmitResult::kDraining;
    Request* slot = reserve_slot_locked();
    if (!slot) {
      rejected_.fetch_add(1, std::memory_order_relaxed);
      engine_rejected_counter().add();
      return SubmitResult::kRejectedBackpressure;
    }
    slot->observation.swap(observation);  // capacities circulate, no alloc
    slot->promise.reset();
    slot->on_complete = nullptr;
    slot->waiter = &waiter;
    slot->token = nullptr;
    slot->enqueue_seconds = enqueue_seconds = util::wall_seconds();
    slot->request_id = request_id;
    slot_index = static_cast<std::size_t>(slot - ring_.data());
  }
  cv_.notify_one();
  if (request_id != 0 && obs::enabled()) {
    record_enqueue_event(request_id, slot_index, enqueue_seconds);
  }
  std::unique_lock<std::mutex> lk(waiter.mutex);
  waiter.cv.wait(lk, [&] { return waiter.done; });
  if (waiter.error) std::rethrow_exception(waiter.error);
  out = waiter.decision;
  return SubmitResult::kOk;
}

BatchedInferenceEngine::SubmitResult BatchedInferenceEngine::submit_pooled(
    std::vector<float>& observation, AsyncDecision& out, PooledCompletion completion,
    std::uint64_t request_id) {
  detail::CompletionToken* token = token_pool_.acquire();
  token->on_complete = completion.fn;
  token->ctx_a = completion.ctx_a;
  token->ctx_b = completion.ctx_b;
  token->ctx_c = completion.ctx_c;
  token->ctx_id = completion.ctx_id;
  token->keepalive = std::move(completion.keepalive);
  std::size_t slot_index = 0;
  double enqueue_seconds = 0.0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (draining_) {
      token_pool_.release(token);
      return SubmitResult::kDraining;
    }
    Request* slot = reserve_slot_locked();
    if (!slot) {
      rejected_.fetch_add(1, std::memory_order_relaxed);
      engine_rejected_counter().add();
      token_pool_.release(token);
      return SubmitResult::kRejectedBackpressure;
    }
    slot->observation.swap(observation);  // capacities circulate, no alloc
    slot->promise.reset();
    slot->on_complete = nullptr;
    slot->waiter = nullptr;
    slot->token = token;
    slot->enqueue_seconds = enqueue_seconds = util::wall_seconds();
    slot->request_id = request_id;
    slot_index = static_cast<std::size_t>(slot - ring_.data());
  }
  cv_.notify_one();
  if (request_id != 0 && obs::enabled()) {
    record_enqueue_event(request_id, slot_index, enqueue_seconds);
  }
  out = AsyncDecision(token, &token_pool_);
  return SubmitResult::kOk;
}

Decision BatchedInferenceEngine::decide_blocking(std::vector<float>& observation,
                                                 std::uint64_t request_id) {
  Decision out;
  switch (try_decide_blocking(observation, out, request_id)) {
    case SubmitResult::kOk:
      return out;
    case SubmitResult::kRejectedBackpressure:
      throw BackpressureRejected();
    case SubmitResult::kDraining:
      break;
  }
  throw std::runtime_error("BatchedInferenceEngine: draining, request rejected");
}

void BatchedInferenceEngine::drain() {
  std::thread worker;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (draining_ && !worker_.joinable()) return;
    draining_ = true;
    worker = std::move(worker_);
  }
  cv_.notify_all();
  if (worker.joinable()) worker.join();
  // Never-started engines (or races with start) may still hold requests.
  const auto stopped = std::make_exception_ptr(
      std::runtime_error("BatchedInferenceEngine: stopped before serving"));
  for (;;) {
    Request leftover;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (queued_ == 0) break;
      Request& slot = ring_[head_];
      leftover.promise = std::move(slot.promise);
      slot.promise.reset();
      leftover.waiter = slot.waiter;
      slot.waiter = nullptr;
      leftover.token = slot.token;
      slot.token = nullptr;
      slot.on_complete = nullptr;
      head_ = (head_ + 1) % ring_.size();
      --queued_;
    }
    fulfill(leftover, nullptr, stopped);
  }
}

bool BatchedInferenceEngine::accepting() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return !draining_;
}

std::size_t BatchedInferenceEngine::queue_depth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queued_;
}

EngineStats BatchedInferenceEngine::stats() const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  EngineStats s;
  s.requests = requests_;
  s.ticks = ticks_;
  s.rejected = rejected_.load(std::memory_order_relaxed);
  s.mean_batch = ticks_ ? static_cast<double>(batch_sum_) / static_cast<double>(ticks_) : 0.0;
  s.max_batch = batch_max_;
  s.busy_seconds = busy_seconds_;
  s.latency = latency_.snapshot();
  return s;
}

void BatchedInferenceEngine::run() {
  for (;;) {
    std::size_t take = 0;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return draining_ || queued_ > 0; });
      if (queued_ == 0) return;  // draining with nothing left
      if (!draining_ && queued_ < config_.max_batch && config_.coalesce_wait.count() > 0) {
        cv_.wait_for(lock, config_.coalesce_wait,
                     [this] { return draining_ || queued_ >= config_.max_batch; });
      }
      take = std::min(queued_, config_.max_batch);
      // Move requests out of the ring into the tick scratch. Observation
      // buffers SWAP between ring slots and the reusable rows, so their
      // capacities circulate instead of being reallocated every tick.
      while (observations_.size() < take) {
        if (!row_pool_.empty()) {
          observations_.push_back(std::move(row_pool_.back()));
          row_pool_.pop_back();
        } else {
          observations_.emplace_back();
        }
      }
      while (observations_.size() > take) {
        row_pool_.push_back(std::move(observations_.back()));
        observations_.pop_back();
      }
      for (std::size_t i = 0; i < take; ++i) {
        Request& slot = ring_[head_];
        observations_[i].swap(slot.observation);
        batch_[i].promise = std::move(slot.promise);
        slot.promise.reset();
        batch_[i].on_complete = std::move(slot.on_complete);
        slot.on_complete = nullptr;
        batch_[i].waiter = slot.waiter;
        slot.waiter = nullptr;
        batch_[i].token = slot.token;
        slot.token = nullptr;
        batch_[i].enqueue_seconds = slot.enqueue_seconds;
        batch_[i].request_id = slot.request_id;
        slot.request_id = 0;
        head_ = (head_ + 1) % ring_.size();
        --queued_;
      }
    }
    serve_batch(take);
  }
}

void BatchedInferenceEngine::fulfill(Request& req, const Decision* decision,
                                     const std::exception_ptr& failure) {
  std::exception_ptr resolve_error = failure;
  if (!resolve_error && req.on_complete) {
    try {
      req.on_complete(*decision);
    } catch (...) {
      // A throwing callback must not take down the engine thread or
      // starve the rest of the batch — it fails only its own request.
      resolve_error = std::current_exception();
    }
  }
  if (req.token && !resolve_error && req.token->on_complete) {
    try {
      req.token->on_complete(req.token->ctx_a, req.token->ctx_b, req.token->ctx_c,
                             req.token->ctx_id, *decision);
    } catch (...) {
      resolve_error = std::current_exception();
    }
  }
  if (req.waiter) {
    detail::BlockingWaiter* w = req.waiter;
    {
      std::lock_guard<std::mutex> lock(w->mutex);
      if (resolve_error) {
        w->error = resolve_error;
      } else {
        w->decision = *decision;
      }
      w->done = true;
      // Notify INSIDE the lock: the waiter is a caller thread_local, and
      // once it observes done it may exit and destroy the cv. Holding the
      // mutex across the notify means the waiter cannot get past its wait
      // (it must reacquire the mutex) until this touch of the cv is over.
      w->cv.notify_one();
    }
    req.waiter = nullptr;
  } else if (req.token) {
    detail::CompletionToken* t = req.token;
    {
      std::lock_guard<std::mutex> lock(t->mutex);
      if (resolve_error) {
        t->error = resolve_error;
      } else {
        t->decision = *decision;
      }
      t->done = true;
      // Same done-inside-the-lock discipline as the waiter: once done is
      // observable the AsyncDecision may release the token to the pool,
      // where another submit can immediately reset it.
      t->cv.notify_one();
    }
    req.token = nullptr;
  } else if (req.promise.has_value()) {
    if (resolve_error) {
      req.promise->set_exception(resolve_error);
    } else {
      req.promise->set_value(*decision);
    }
    req.promise.reset();  // release the shared state promptly
  }
  req.on_complete = nullptr;
}

void BatchedInferenceEngine::serve_batch(std::size_t take) {
  OBS_SPAN("serve_batch");
  const std::uint64_t tick_id = ++tick_seq_;
  if (obs::enabled()) {
    obs::TraceEvent ev;
    ev.kind = obs::TraceEventKind::kBatchFormed;
    ev.ts = static_cast<std::int64_t>(util::wall_seconds() * 1e6);
    ev.arg0 = static_cast<std::int64_t>(take);
    ev.arg1 = static_cast<std::int64_t>(tick_id);
    ev.tid = static_cast<std::uint32_t>(obs::detail::thread_shard());
    obs::global_trace().record(ev);
  }
  ModelSnapshot model = resolver_ ? resolver_() : nullptr;
  std::exception_ptr failure;
  const double t0 = util::wall_seconds();
  if (!model) {
    failure = std::make_exception_ptr(
        std::runtime_error("BatchedInferenceEngine: no model resolved for tick"));
  } else {
    try {
      if (config_.use_thread_pool) {
        // One batched forward per tick on the shared compute pool; the
        // engine thread just awaits it. The GEMM thread override is scoped
        // INSIDE the submitted task — nn::ScopedNumThreads is thread-local,
        // so it must wrap the thread that actually runs the forward.
        util::ThreadPool::global()
            .submit([&] {
              nn::ScopedNumThreads gemm_threads(config_.nn_threads);
              model->infer_into(observations_, decisions_);
            })
            .get();
      } else {
        nn::ScopedNumThreads gemm_threads(config_.nn_threads);
        model->infer_into(observations_, decisions_);
      }
      // A model returning the wrong number of decisions (e.g. a
      // hot-reloaded implementation whose infer truncates) must fail the
      // whole batch loudly, never index out of bounds.
      if (decisions_.size() != take) {
        failure = std::make_exception_ptr(std::runtime_error(
            "BatchedInferenceEngine: model returned " + std::to_string(decisions_.size()) +
            " decisions for a batch of " + std::to_string(take) +
            " — refusing to serve a truncated batch"));
      }
    } catch (...) {
      failure = std::current_exception();
    }
  }
  const double t1 = util::wall_seconds();

  const bool tracing = obs::enabled();
  for (std::size_t i = 0; i < take; ++i) {
    const double enqueue_seconds = batch_[i].enqueue_seconds;
    const std::uint64_t request_id = batch_[i].request_id;
    fulfill(batch_[i], failure ? nullptr : &decisions_[i], failure);
    // Latency reflects SERVED decisions only: a failed batch must not
    // drag the latency quantiles the soak gate asserts on.
    if (!failure) {
      const double latency_seconds = t1 - enqueue_seconds;
      latency_.record_seconds(latency_seconds);
      engine_served_counter().add();
      // Journey epilogue: the decision-latency bucket is stamped with the
      // request id (exemplar), and the [enqueue, served] slice lands in
      // the wall ring tagged with the tick that carried it.
      if (request_id != 0) {
        decision_latency_histogram().record(latency_seconds, request_id);
        if (tracing) {
          obs::TraceEvent ev;
          ev.kind = obs::TraceEventKind::kRequestComplete;
          ev.ts = static_cast<std::int64_t>(enqueue_seconds * 1e6);
          ev.dur = static_cast<std::int64_t>(latency_seconds * 1e6);
          ev.arg0 = static_cast<std::int64_t>(request_id);
          ev.arg1 = static_cast<std::int64_t>(tick_id);
          ev.tid = static_cast<std::uint32_t>(obs::detail::thread_shard());
          obs::global_trace().record(ev);
        }
      } else {
        decision_latency_histogram().record(latency_seconds);
      }
    }
  }

  std::lock_guard<std::mutex> lock(stats_mutex_);
  requests_ += take;
  ++ticks_;
  batch_sum_ += take;
  batch_max_ = std::max(batch_max_, take);
  busy_seconds_ += t1 - t0;
}

}  // namespace mirage::serve

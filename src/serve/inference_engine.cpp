#include "serve/inference_engine.hpp"

#include <stdexcept>

#include "obs/span.hpp"
#include "util/thread_pool.hpp"
#include "util/time_utils.hpp"

namespace mirage::serve {

BatchedInferenceEngine::BatchedInferenceEngine(ModelResolver resolver, EngineConfig config)
    : resolver_(std::move(resolver)), config_(config) {
  if (config_.max_batch == 0) config_.max_batch = 1;
}

BatchedInferenceEngine::BatchedInferenceEngine(const ModelRegistry& registry, ModelKey key,
                                               EngineConfig config)
    : BatchedInferenceEngine([&registry, key = std::move(key)] { return registry.lookup(key); },
                             config) {}

BatchedInferenceEngine::~BatchedInferenceEngine() { drain(); }

void BatchedInferenceEngine::start() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (started_ || draining_) return;
  started_ = true;
  worker_ = std::thread([this] { run(); });
}

std::future<Decision> BatchedInferenceEngine::submit(
    std::vector<float> observation, std::function<void(const Decision&)> on_complete) {
  Request req;
  req.observation = std::move(observation);
  req.on_complete = std::move(on_complete);
  req.enqueue_seconds = util::wall_seconds();
  auto fut = req.promise.get_future();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (draining_) {
      req.promise.set_exception(std::make_exception_ptr(
          std::runtime_error("BatchedInferenceEngine: draining, request rejected")));
      return fut;
    }
    queue_.push_back(std::move(req));
  }
  cv_.notify_one();
  return fut;
}

void BatchedInferenceEngine::drain() {
  std::thread worker;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (draining_ && !worker_.joinable()) return;
    draining_ = true;
    worker = std::move(worker_);
  }
  cv_.notify_all();
  if (worker.joinable()) worker.join();
  // Never-started engines (or races with start) may still hold requests.
  std::deque<Request> leftover;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    leftover.swap(queue_);
  }
  for (auto& req : leftover) {
    req.promise.set_exception(std::make_exception_ptr(
        std::runtime_error("BatchedInferenceEngine: stopped before serving")));
  }
}

bool BatchedInferenceEngine::accepting() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return !draining_;
}

EngineStats BatchedInferenceEngine::stats() const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  EngineStats s;
  s.requests = requests_;
  s.ticks = ticks_;
  s.mean_batch = ticks_ ? static_cast<double>(batch_sum_) / static_cast<double>(ticks_) : 0.0;
  s.max_batch = batch_max_;
  s.busy_seconds = busy_seconds_;
  s.latency = latency_.snapshot();
  return s;
}

void BatchedInferenceEngine::run() {
  for (;;) {
    std::vector<Request> batch;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return draining_ || !queue_.empty(); });
      if (queue_.empty()) return;  // draining with nothing left
      if (!draining_ && queue_.size() < config_.max_batch &&
          config_.coalesce_wait.count() > 0) {
        cv_.wait_for(lock, config_.coalesce_wait,
                     [this] { return draining_ || queue_.size() >= config_.max_batch; });
      }
      const std::size_t take = std::min(queue_.size(), config_.max_batch);
      batch.reserve(take);
      for (std::size_t i = 0; i < take; ++i) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
    }
    serve_batch(batch);
  }
}

void BatchedInferenceEngine::serve_batch(std::vector<Request>& batch) {
  OBS_SPAN("serve_batch");
  if (obs::enabled()) {
    obs::TraceEvent ev;
    ev.kind = obs::TraceEventKind::kBatchFormed;
    ev.ts = static_cast<std::int64_t>(util::wall_seconds() * 1e6);
    ev.arg0 = static_cast<std::int64_t>(batch.size());
    ev.tid = static_cast<std::uint32_t>(obs::detail::thread_shard());
    obs::global_trace().record(ev);
  }
  ModelSnapshot model = resolver_ ? resolver_() : nullptr;
  std::vector<Decision> decisions;
  std::exception_ptr failure;
  const double t0 = util::wall_seconds();
  if (!model) {
    failure = std::make_exception_ptr(
        std::runtime_error("BatchedInferenceEngine: no model resolved for tick"));
  } else {
    std::vector<std::vector<float>> observations;
    observations.reserve(batch.size());
    for (auto& req : batch) observations.push_back(std::move(req.observation));
    try {
      if (config_.use_thread_pool) {
        // One batched forward per tick on the shared compute pool; the
        // engine thread just awaits it.
        util::ThreadPool::global()
            .submit([&] { decisions = model->infer(observations); })
            .get();
      } else {
        decisions = model->infer(observations);
      }
    } catch (...) {
      failure = std::current_exception();
    }
  }
  const double t1 = util::wall_seconds();

  for (std::size_t i = 0; i < batch.size(); ++i) {
    if (failure) {
      batch[i].promise.set_exception(failure);
    } else {
      try {
        if (batch[i].on_complete) batch[i].on_complete(decisions[i]);
        batch[i].promise.set_value(decisions[i]);
      } catch (...) {
        // A throwing callback must not take down the engine thread or
        // starve the rest of the batch — it fails only its own request.
        batch[i].promise.set_exception(std::current_exception());
      }
    }
    latency_.record_seconds(t1 - batch[i].enqueue_seconds);
  }

  std::lock_guard<std::mutex> lock(stats_mutex_);
  requests_ += batch.size();
  ++ticks_;
  batch_sum_ += batch.size();
  batch_max_ = std::max(batch_max_, batch.size());
  busy_seconds_ += t1 - t0;
}

}  // namespace mirage::serve

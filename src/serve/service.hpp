// Concurrent provisioning service: the online face of a trained agent.
// Clients open one session per predecessor/successor pair, stream
// sim::StateSample snapshots into the session's k-frame history ring
// (rl::StateEncoder — the same encoder training used, so serving and
// training see identical inputs), and ask for submit/wait decisions.
// Decisions from all sessions funnel through one BatchedInferenceEngine,
// so a thousand concurrent sessions cost a handful of batched forwards
// per decision interval instead of a thousand B=1 passes.
//
// Shutdown is a graceful drain: new decisions are rejected, everything
// in flight completes, then the engine thread stops.
#pragma once

#include <atomic>
#include <map>
#include <memory>
#include <shared_mutex>

#include "rl/state_encoder.hpp"
#include "serve/inference_engine.hpp"

namespace mirage::serve {

using SessionId = std::uint64_t;

struct ServiceConfig {
  /// Frames per session history ring; must match the served checkpoint's
  /// history_len (a mismatch fails every decide() with
  /// std::invalid_argument rather than silently mis-serving).
  std::size_t history_len = 24;
  /// Partition count of the cluster the sessions observe; must match the
  /// served checkpoint's frame width (rl::frame_dim(partition_count)).
  /// 1 = classic single-pool frames (exactly rl::kFrameDim wide).
  std::size_t partition_count = 1;
  EngineConfig engine;
};

struct ServiceReport {
  std::size_t open_sessions = 0;
  std::uint64_t total_sessions = 0;
  std::uint64_t decisions = 0;
  std::uint64_t submits = 0;       ///< decisions that said "submit now"
  EngineStats engine;
  double uptime_seconds = 0.0;
  double decisions_per_second = 0.0;
};

class ProvisioningService {
 public:
  ProvisioningService(const ModelRegistry& registry, ModelKey key, ServiceConfig config = {});
  /// Serve a fixed snapshot (tests/benches without a registry).
  ProvisioningService(ModelSnapshot model, ServiceConfig config = {});
  ~ProvisioningService();

  ProvisioningService(const ProvisioningService&) = delete;
  ProvisioningService& operator=(const ProvisioningService&) = delete;

  void start();
  /// Graceful drain: stop admitting decisions, complete in-flight ones,
  /// stop the engine (idempotent).
  void drain_and_stop();

  SessionId open_session();
  void close_session(SessionId id);

  /// Append one state frame to the session's history ring.
  void observe(SessionId id, const sim::StateSample& sample, const rl::JobPairContext& ctx);

  /// Batched async decision on the session's current history.
  std::future<Decision> decide_async(SessionId id);
  /// Blocking convenience wrapper.
  Decision decide(SessionId id);

  /// The session's flattened history (action channel zeroed) — the exact
  /// tensor row the next decision would see. Test/debug hook.
  std::vector<float> session_history(SessionId id) const;
  std::size_t session_frames_seen(SessionId id) const;

  std::size_t session_count() const;
  ServiceReport report() const;

  /// Prometheus text exposition: service counters/gauges, engine batch and
  /// latency stats (latency quantiles as a summary block), followed by the
  /// process-wide obs registry dump (span histograms, scenario counters).
  /// This is the scrape endpoint body for an HTTP layer above the service.
  std::string metrics_text() const;

 private:
  struct Session {
    Session(std::size_t k, std::size_t partition_count) : encoder(k, partition_count) {}
    mutable std::mutex mutex;
    rl::StateEncoder encoder;
    std::uint64_t decisions = 0;
  };

  std::shared_ptr<Session> find_session(SessionId id) const;

  ServiceConfig config_;
  BatchedInferenceEngine engine_;
  std::atomic<double> started_seconds_{0.0};

  mutable std::shared_mutex sessions_mutex_;
  std::map<SessionId, std::shared_ptr<Session>> sessions_;
  SessionId next_session_ = 1;
  std::uint64_t total_sessions_ = 0;

  mutable std::mutex counters_mutex_;
  std::uint64_t decisions_ = 0;
  std::uint64_t submits_ = 0;
};

}  // namespace mirage::serve

// Concurrent provisioning service: the online face of a trained agent.
// Clients open one session per predecessor/successor pair, stream
// sim::StateSample snapshots into the session's k-frame history ring
// (rl::StateEncoder — the same encoder training used, so serving and
// training see identical inputs), and ask for submit/wait decisions.
// Decisions from all sessions funnel through one BatchedInferenceEngine,
// so a thousand concurrent sessions cost a handful of batched forwards
// per decision interval instead of a thousand B=1 passes.
//
// Million-session scaling: the session table is SHARDED. Each of the N
// shards (default hardware_concurrency; session_id % N) owns its mutex,
// session map and served/submit/eviction counters, so open/observe/decide
// on different sessions never contend on one lock and completed decisions
// never funnel through a global counters mutex — report()/metrics_text()
// aggregate the shards at read time. shards=1 reproduces the original
// single-map service exactly.
//
// Idle sessions are evicted by TTL (session_ttl_seconds > 0): lazily on
// access — a lookup that finds an expired session erases it and throws
// std::out_of_range, exactly like a closed session — plus an amortized
// background sweep that scans ONE shard per tick (the lazy + background
// expiry split of snkv's ttl-support design), so a million abandoned
// sessions cost one shard-sized scan per sweep interval, not a stall.
//
// Backpressure: the engine queue is bounded (EngineConfig::max_queue);
// when the engine saturates, decide paths fail fast with
// BackpressureRejected (counted in EngineStats::rejected) instead of
// growing an unbounded backlog.
//
// Shutdown is a graceful drain: new decisions are rejected, everything
// in flight completes, then the engine thread and TTL sweeper stop.
#pragma once

#include <atomic>
#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/slo.hpp"
#include "rl/state_encoder.hpp"
#include "serve/inference_engine.hpp"
#include "util/wal.hpp"

namespace mirage::serve {

using SessionId = std::uint64_t;

/// Session-state journaling (ISSUE 10): when `dir` is set the service
/// appends every session-visible mutation (open, frame, decision, close,
/// eviction) to a WAL segment store, and a restarted service replays the
/// journal before serving — restored sessions carry their full k-frame
/// history rings, so the first post-restart decision is bitwise identical
/// to the decision an uninterrupted service would have made.
struct ServiceWalConfig {
  /// Journal directory; empty disables journaling entirely.
  std::string dir;
  /// Durability knobs. Default sync level is kNone — the serve hot path
  /// trades crash-durability of the last buffer for zero fsyncs; group
  /// commit on the sweeper tick bounds the exposure window. Use kOnCommit
  /// for per-record durability (every decide/observe fsyncs).
  util::wal::WalOptions wal{util::wal::SyncLevel::kNone};
  /// Replay the existing journal at construction (warm restart). false
  /// starts journaling into `dir` without replaying — fresh-start use
  /// only; stale records left in `dir` will confuse a later restore.
  bool restore = true;
};

/// What a warm restart recovered from the session journal.
struct WalRestoreInfo {
  bool replayed = false;          ///< a journal replay ran at construction
  std::size_t sessions = 0;       ///< live sessions restored (open at crash)
  std::uint64_t sessions_opened = 0;  ///< kOpen records replayed
  std::uint64_t frames = 0;       ///< kFrame records replayed
  std::uint64_t decisions = 0;    ///< kDecision records replayed
  std::uint64_t submits = 0;      ///< replayed decisions that said submit
  std::uint64_t evictions = 0;    ///< kEvict records replayed
  std::uint64_t closes = 0;       ///< kClose records replayed
  std::uint64_t records = 0;      ///< total WAL records scanned
  std::uint64_t truncated_bytes = 0;  ///< torn bytes discarded by recovery
  bool torn_tail = false;         ///< recovery truncated a torn tail
};

/// Declarative serving SLOs (ISSUE 8): when enabled, start() registers a
/// latency-quantile objective over the process-wide decision-latency
/// histogram and a reject-rate objective over the served/rejected
/// counters, and the sweeper thread ticks the burn-rate evaluator every
/// sweep interval. health_text() renders the verdicts.
struct ServiceSloConfig {
  bool enabled = false;
  /// "p<latency_quantile> of decisions under latency_target_seconds".
  double latency_target_seconds = 0.25;
  double latency_quantile = 99.0;
  /// Tolerated backpressure-reject fraction of all submissions.
  double reject_budget = 0.01;
  double short_window_seconds = 2.0;
  double long_window_seconds = 10.0;
  double burn_threshold = 1.0;
  double pending_seconds = 0.0;  ///< `for` duration before firing
  double resolve_seconds = 2.0;  ///< clear hold-down before resolved
  /// Dump a flight-recorder bundle when an SLO transitions to firing.
  bool dump_on_fire = true;
};

struct ServiceConfig {
  /// Frames per session history ring; must match the served checkpoint's
  /// history_len (a mismatch fails every decide() with
  /// std::invalid_argument rather than silently mis-serving).
  std::size_t history_len = 24;
  /// Partition count of the cluster the sessions observe; must match the
  /// served checkpoint's frame width (rl::frame_dim(partition_count)).
  /// 1 = classic single-pool frames (exactly rl::kFrameDim wide).
  std::size_t partition_count = 1;
  /// Session shards (0 = hardware_concurrency). Shard = session_id % N.
  /// 1 gives the original single-map behavior.
  std::size_t shards = 0;
  /// Evict sessions idle (no open/observe/decide/history access) longer
  /// than this; 0 disables eviction. Expired sessions behave exactly like
  /// closed ones: any access throws std::out_of_range.
  double session_ttl_seconds = 0.0;
  /// Background sweep cadence; each tick scans one shard round-robin.
  double sweep_interval_seconds = 0.1;
  /// Idle-aware sweep cadence (ISSUE 8): a shard whose session count is
  /// unchanged since its last full scan, at or below this threshold, and
  /// whose earliest possible expiry (tracked per scan) is still in the
  /// future is SKIPPED — quiet tables cost a size check per tick, not a
  /// scan. Skips and wakeups are counted in the report and the registry.
  std::size_t sweep_idle_threshold = 1024;
  /// Quiet-table wakeup backoff: when a full round-robin rotation of
  /// shards skips its scan via the min-expiry hint, the sweeper doubles
  /// its wakeup interval, up to sweep_interval_seconds * this factor;
  /// any non-skipped scan snaps it back to the base cadence. <= 1
  /// disables stretching. Only active in pure-TTL configurations — with
  /// SLOs configured the sweeper doubles as the SLO evaluator and must
  /// hold its base cadence.
  double sweep_backoff_max_factor = 8.0;
  EngineConfig engine;
  ServiceSloConfig slo;
  ServiceWalConfig wal;
};

struct ServiceReport {
  std::size_t open_sessions = 0;
  std::size_t shards = 0;
  std::uint64_t total_sessions = 0;
  std::uint64_t decisions = 0;
  std::uint64_t submits = 0;       ///< decisions that said "submit now"
  std::uint64_t evictions = 0;     ///< sessions reaped by the idle TTL
  std::uint64_t sweep_wakeups = 0; ///< background sweeper ticks
  std::uint64_t sweep_skipped = 0; ///< ticks skipped by idle-aware cadence
  std::uint64_t sweep_stretches = 0; ///< quiet-streak wakeup-interval doublings
  EngineStats engine;
  double uptime_seconds = 0.0;
  double decisions_per_second = 0.0;
};

class ProvisioningService {
 public:
  ProvisioningService(const ModelRegistry& registry, ModelKey key, ServiceConfig config = {});
  /// Serve a fixed snapshot (tests/benches without a registry).
  ProvisioningService(ModelSnapshot model, ServiceConfig config = {});
  ~ProvisioningService();

  ProvisioningService(const ProvisioningService&) = delete;
  ProvisioningService& operator=(const ProvisioningService&) = delete;

  void start();
  /// Graceful drain: stop admitting decisions, complete in-flight ones,
  /// stop the engine and the TTL sweeper (idempotent).
  void drain_and_stop();

  SessionId open_session();
  void close_session(SessionId id);

  /// Append one state frame to the session's history ring. Zero
  /// steady-state heap allocations.
  void observe(SessionId id, const sim::StateSample& sample, const rl::JobPairContext& ctx);

  /// Batched async decision on the session's current history (allocates
  /// the future's shared state; use decide()/try_decide() on paths that
  /// must not touch the heap).
  std::future<Decision> decide_async(SessionId id);
  /// Blocking decision via the engine's pooled path: zero steady-state
  /// heap allocations per call (audited by bench_serve_soak). Throws
  /// BackpressureRejected when the engine queue is full.
  Decision decide(SessionId id);
  /// Non-throwing blocking variant for load-shedding callers (the soak
  /// bench's hot loop): kOk fills `out`; rejection/drain report status
  /// without exception traffic. Unknown/expired sessions still throw
  /// std::out_of_range, and a failed batch rethrows its error.
  BatchedInferenceEngine::SubmitResult try_decide(SessionId id, Decision& out);

  /// Pooled async decision: like decide_async but on the engine's
  /// recycled-completion-token path, so pipelined async decides perform
  /// zero steady-state heap allocations (audited by bench_serve_soak).
  /// kOk arms `out`; rejection/drain leave it invalid. Served-decision
  /// accounting (and journaling) runs in the engine's completion hook,
  /// exactly like decide_async.
  BatchedInferenceEngine::SubmitResult try_decide_async(SessionId id, AsyncDecision& out);
  /// Throwing convenience over try_decide_async (BackpressureRejected on
  /// a full queue, std::runtime_error when draining).
  AsyncDecision decide_async_pooled(SessionId id);

  /// The session's flattened history (action channel zeroed) — the exact
  /// tensor row the next decision would see. Test/debug hook.
  std::vector<float> session_history(SessionId id) const;
  std::size_t session_frames_seen(SessionId id) const;

  std::size_t session_count() const;
  /// Sweep every shard now, evicting expired sessions; returns the number
  /// evicted. Test hook — production relies on the lazy check plus the
  /// background one-shard-per-tick sweeper.
  std::size_t evict_expired();
  ServiceReport report() const;

  /// Prometheus text exposition: service counters/gauges, engine batch and
  /// latency stats (latency quantiles as a summary block), followed by the
  /// process-wide obs registry dump (span histograms, scenario counters).
  /// This is the scrape endpoint body for an HTTP layer above the service.
  std::string metrics_text() const;

  /// Plain-text health verdict (the SLO engine's burn rates + alert
  /// states, prefixed with service vitals). With SLOs disabled the body
  /// reports "status: unconfigured". This is the health endpoint the
  /// future lab canary daemon polls.
  std::string health_text() const;

  /// Machine-readable alert states (empty when SLOs are disabled).
  std::vector<obs::SloStatus> slo_statuses() const;

  /// What the constructor's journal replay restored (all-zero / replayed
  /// == false when journaling is off or `restore` was false).
  const WalRestoreInfo& wal_restore_info() const { return wal_restore_; }
  /// True once any journal append/commit has failed since construction.
  /// Journal failures never fail the decision path — durability degrades,
  /// serving does not — but they must be observable.
  bool wal_failed() const { return wal_failed_.load(std::memory_order_relaxed); }

 private:
  struct Session {
    Session(SessionId sid, std::size_t k, std::size_t partition_count)
        : id(sid), encoder(k, partition_count) {}
    const SessionId id;  ///< immutable; lets completion hooks journal by id
    mutable std::mutex mutex;
    rl::StateEncoder encoder;
    std::atomic<std::uint64_t> decisions{0};
    std::atomic<double> last_access_seconds{0.0};
  };

  /// One shard: its own lock, session map and counters. The counters are
  /// relaxed atomics so the engine-thread completion callback and the
  /// blocking decide path never serialize on a shard (or global) mutex.
  struct Shard {
    mutable std::mutex mutex;
    std::map<SessionId, std::shared_ptr<Session>> sessions;
    std::uint64_t total_sessions = 0;  ///< guarded by mutex
    std::atomic<std::uint64_t> decisions{0};
    std::atomic<std::uint64_t> submits{0};
    std::atomic<std::uint64_t> evictions{0};
    // Idle-aware sweep hint (guarded by mutex): the table size after the
    // last full scan and the earliest instant any session seen then could
    // expire. Sessions opened or touched later expire strictly later, so
    // "now < next_expiry_hint" proves a skipped scan would evict nothing.
    bool sweep_hint_valid = false;
    std::size_t last_sweep_size = 0;
    double next_expiry_hint = 0.0;
  };

  Shard& shard_of(SessionId id) const { return shards_[id % shards_.size()]; }
  /// Locate a live session; refresh its TTL clock. Expired sessions are
  /// erased here (lazy expiry) and reported exactly like closed ones.
  std::shared_ptr<Session> find_session(SessionId id) const;
  std::size_t sweep_shard(Shard& shard) const;
  /// One background tick's sweep of `shard`: consult the idle hint, skip
  /// or full-scan, refresh the hint. Returns evictions (0 on skip);
  /// `skipped`, when non-null, reports whether the hint declined the scan
  /// (the sweeper's quiet-streak backoff input).
  std::size_t sweep_shard_idle_aware(Shard& shard, bool* skipped = nullptr) const;
  void sweeper_loop();
  void record_served(Shard& shard, Session& session, const Decision& d) const;
  /// Engine-thread completion hook for the pooled async path: ctx_a is
  /// the service, ctx_b the owning shard, ctx_c the session (pinned by
  /// the token's keepalive).
  static void pooled_served_trampoline(void* ctx_a, void* ctx_b, void* ctx_c,
                                       std::uint64_t request_id, const Decision& d);
  // --- Session journaling (no-ops when ServiceWalConfig::dir is empty).
  // Lock order: session/shard mutex -> wal_mutex_; the WAL never takes a
  // session or shard lock. Appends are allocation-free in steady state
  // (stack headers into the writer's preallocated buffer); failures set
  // wal_failed_ instead of throwing — serving outlives its journal.
  void init_wal();
  void replay_wal();
  void journal_append(const util::wal::Chunk* chunks, std::size_t count) const;
  void journal_open(SessionId id) const;
  void journal_close(SessionId id) const;
  void journal_frame(SessionId id, const float* frame, std::size_t size) const;
  void journal_decision(SessionId id, int action) const;
  void journal_evict(SessionId id) const;
  /// Group commit (sweeper tick / drain): flush + segment-roll + fsync per
  /// the configured sync level.
  void journal_commit() const;
  /// Mint a journey id and record kRequestBegin (0 when tracing is off).
  std::uint64_t begin_request_trace(SessionId id) const;
  /// Push live operational gauges (queue depth, per-shard sessions,
  /// reject rate) into the obs registry. Sweeper-tick cadence; also run
  /// by metrics_text() so scrapes are current without a sweeper.
  void refresh_gauges() const;
  void configure_slos();
  void init_gauges();

  ServiceConfig config_;
  BatchedInferenceEngine engine_;
  std::atomic<double> started_seconds_{0.0};

  mutable std::vector<Shard> shards_;  ///< fixed size after construction
  std::atomic<SessionId> next_session_{1};
  mutable std::atomic<std::uint64_t> next_request_id_{1};

  obs::SloEngine slos_;
  std::atomic<bool> slos_configured_{false};
  bool providers_registered_ = false;  ///< guarded by sweeper_mutex_

  std::atomic<std::uint64_t> sweep_wakeups_{0};
  mutable std::atomic<std::uint64_t> sweep_skipped_{0};  ///< bumped in const sweeps
  std::atomic<std::uint64_t> sweep_stretches_{0};  ///< backoff doublings
  // Live operational gauges (registered once at construction; refreshed
  // on sweeper ticks and by metrics_text()).
  obs::Gauge* queue_depth_gauge_ = nullptr;
  obs::Gauge* reject_rate_gauge_ = nullptr;
  std::vector<obs::Gauge*> shard_session_gauges_;
  // Reject-rate sampling state (relaxed: a racing refresh only smears one
  // diagnostic reading).
  mutable std::atomic<std::uint64_t> last_rejected_{0};
  mutable std::atomic<double> last_reject_sample_seconds_{0.0};

  std::thread sweeper_;
  std::mutex sweeper_mutex_;
  std::condition_variable sweeper_cv_;
  bool sweeper_stop_ = false;
  std::size_t sweep_cursor_ = 0;  ///< next shard the background sweep scans

  // Session journal (ISSUE 10). wal_on_ is set once in the constructor
  // and never changes; the writer itself is guarded by wal_mutex_ (and
  // closed on drain). Mutable: journaling happens on const paths too
  // (record_served, sweeps).
  bool wal_on_ = false;
  mutable std::mutex wal_mutex_;
  mutable util::wal::Writer wal_;
  WalRestoreInfo wal_restore_;
  mutable std::atomic<bool> wal_failed_{false};
};

}  // namespace mirage::serve

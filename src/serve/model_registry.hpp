// Durable model store for online serving. A registry scans a directory of
// agent checkpoints (core::save_agent format), validates each header via
// core::read_checkpoint_info, reconstructs the agent behind it, and hands
// out immutable snapshots keyed by (cluster, method, foundation).
//
// Hot reload is atomic: loading a newer checkpoint for an existing key
// swaps the shared_ptr under the registry lock, so in-flight requests keep
// serving from the snapshot they already hold and new requests pick up the
// new version — no drop, no torn state. This generalizes the checkpoint
// layer's fail-loudly contract ("models are cluster-specific", paper §1)
// to a multi-model, multi-tenant setting.
#pragma once

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#include "core/checkpoint.hpp"
#include "rl/dqn.hpp"
#include "rl/policy_gradient.hpp"
#include "util/wal.hpp"

namespace mirage::serve {

/// Identity of a servable model. `method` is the checkpoint kind ("dqn" |
/// "pg"); `foundation` is "transformer" | "moe"; `cluster` comes from the
/// checkpoint filename (everything before the first "__", e.g.
/// "v100__moe_dqn.ckpt" -> "v100").
struct ModelKey {
  std::string cluster;
  std::string method;
  std::string foundation;

  bool operator<(const ModelKey& o) const {
    if (cluster != o.cluster) return cluster < o.cluster;
    if (method != o.method) return method < o.method;
    return foundation < o.foundation;
  }
  bool operator==(const ModelKey& o) const {
    return cluster == o.cluster && method == o.method && foundation == o.foundation;
  }
  std::string to_string() const { return cluster + "/" + method + "/" + foundation; }
};

/// One decision for one session: submit now (1) or wait (0). Scores are
/// Q-values for DQN models and action probabilities for PG models.
struct Decision {
  int action = 0;
  float score_wait = 0.0f;
  float score_submit = 0.0f;
  std::uint64_t model_version = 0;
};

/// A loaded agent plus its provenance. Inference serializes on an internal
/// mutex (the dual-head model caches activations), so a snapshot is safe
/// to share across threads; the batched engine amortizes that lock over
/// whole batches. The inference entry points are virtual so harnesses
/// (e.g. the serve soak bench) can substitute an allocation-free stub and
/// audit the service layer in isolation from the NN forward.
class ServableModel {
 public:
  ServableModel(ModelKey key, core::CheckpointInfo info, std::string path, std::uint64_t version,
                std::unique_ptr<rl::DqnAgent> dqn, std::unique_ptr<rl::PgAgent> pg)
      : key_(std::move(key)),
        info_(std::move(info)),
        path_(std::move(path)),
        version_(version),
        dqn_(std::move(dqn)),
        pg_(std::move(pg)) {}
  virtual ~ServableModel() = default;

  const ModelKey& key() const { return key_; }
  const core::CheckpointInfo& info() const { return info_; }
  const std::string& path() const { return path_; }
  std::uint64_t version() const { return version_; }
  bool is_dqn() const { return dqn_ != nullptr; }
  std::size_t observation_dim() const { return info_.history_len * info_.state_dim; }

  /// Batched decision pass: one forward over all observations. Each
  /// observation is the flattened [k * state_dim] model input; the action
  /// channel is overwritten per model kind (±1 rows for the DQN Q-head,
  /// 0 for the PG P-head). Per-row results are bitwise identical to a
  /// B=1 pass over the same observation.
  virtual std::vector<Decision> infer(
      const std::vector<std::vector<float>>& observations) const;

  /// Same pass writing into a caller-owned buffer (resized to match); the
  /// batched engine reuses one buffer across ticks so the decision vector
  /// itself never churns the heap. The default NN-backed implementation
  /// still allocates tensors inside the forward; an override (soak-bench
  /// stub) can be fully allocation-free.
  virtual void infer_into(const std::vector<std::vector<float>>& observations,
                          std::vector<Decision>& out) const;

 private:
  ModelKey key_;
  core::CheckpointInfo info_;
  std::string path_;
  std::uint64_t version_;
  std::unique_ptr<rl::DqnAgent> dqn_;
  std::unique_ptr<rl::PgAgent> pg_;
  mutable std::mutex infer_mutex_;  ///< forward caches are not reentrant
};

using ModelSnapshot = std::shared_ptr<const ServableModel>;

struct RegistryConfig {
  /// Architecture knobs that are not part of the checkpoint header
  /// (num_heads, num_layers, ffn_hidden, moe_top1). Header fields
  /// (history_len, state_dim, d_model, moe_experts) always come from the
  /// checkpoint itself; a parameter-shape mismatch against these defaults
  /// is rejected at load time by nn::deserialize_params.
  nn::FoundationConfig net_defaults;
  /// Reject checkpoints whose per-frame width differs from the serving
  /// state encoder (rl::kFrameDim unless a caller overrides it).
  std::size_t expected_state_dim;

  RegistryConfig();
};

class ModelRegistry {
 public:
  explicit ModelRegistry(RegistryConfig config = {});

  struct LoadResult {
    bool ok = false;
    ModelKey key;
    std::uint64_t version = 0;
    std::string error;
  };

  /// Load (or hot-reload) one checkpoint file under the given cluster
  /// name. On success the (cluster, kind, foundation) entry atomically
  /// points at the new model; on failure the registry is untouched.
  LoadResult load_file(const std::string& path, const std::string& cluster);

  /// Load every "*.ckpt" file in `dir` (cluster parsed from the filename);
  /// returns the number successfully loaded. Invalid checkpoints are
  /// skipped (collect errors via the optional out-param).
  std::size_t scan_directory(const std::string& dir, std::vector<LoadResult>* results = nullptr);

  /// Current snapshot for a key; nullptr when absent. The snapshot stays
  /// valid (and servable) even if the entry is reloaded or erased.
  ModelSnapshot lookup(const ModelKey& key) const;
  /// First snapshot matching (cluster, method) over any foundation.
  ModelSnapshot find(const std::string& cluster, const std::string& method) const;

  std::vector<ModelKey> keys() const;
  std::size_t size() const;
  bool erase(const ModelKey& key);

  const RegistryConfig& config() const { return config_; }

  /// Attach a WAL promotion log: every subsequent successful load_file is
  /// journaled (cluster + checkpoint path), so a restarted service can
  /// recover_promotions() and reload the last promoted checkpoint per key
  /// instead of starting empty. false + diagnostic if the log directory
  /// cannot be opened.
  bool attach_promotion_log(const std::string& dir, const util::wal::WalOptions& options = {},
                            std::string* error = nullptr);

  /// Replay a promotion log into this registry: for each (cluster, path)
  /// pair the LAST promotion wins and is re-loaded via load_file (skipping
  /// earlier superseded entries). Checkpoints that vanished from disk are
  /// reported as failed LoadResults, not fatal errors — recovery restores
  /// what it can. Re-loads are not re-journaled. Returns the number of
  /// models successfully restored.
  std::size_t recover_promotions(const std::string& dir,
                                 std::vector<LoadResult>* results = nullptr,
                                 std::string* error = nullptr);

 private:
  bool journal_promotion(const std::string& cluster, const std::string& path);

  RegistryConfig config_;
  mutable std::shared_mutex mutex_;
  std::map<ModelKey, ModelSnapshot> models_;
  std::atomic<std::uint64_t> next_version_{1};
  std::mutex promotion_mutex_;
  util::wal::Writer promotion_log_;
  bool replaying_ = false;  ///< suppress re-journaling during recovery
};

/// "v100__moe_dqn.ckpt" -> "v100"; no "__" -> whole stem.
std::string cluster_from_filename(const std::string& path);

}  // namespace mirage::serve

#include "serve/model_registry.hpp"

#include <algorithm>
#include <filesystem>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "rl/replay_buffer.hpp"
#include "rl/state_encoder.hpp"
#include "util/time_utils.hpp"

namespace mirage::serve {

namespace {
constexpr float kSubmitOrdinal = 1.0f;
constexpr float kNoSubmitOrdinal = -1.0f;
}  // namespace

// ----------------------------------------------------------- ServableModel

std::vector<Decision> ServableModel::infer(
    const std::vector<std::vector<float>>& observations) const {
  std::vector<Decision> out;
  infer_into(observations, out);
  return out;
}

void ServableModel::infer_into(const std::vector<std::vector<float>>& observations,
                               std::vector<Decision>& out) const {
  out.clear();
  out.resize(observations.size());
  if (observations.empty()) return;
  const std::size_t dim = observation_dim();
  const std::size_t k = info_.history_len;
  const std::size_t batch = observations.size();

  for (const auto& o : observations) {
    if (o.size() != dim) {
      throw std::invalid_argument("ServableModel::infer: observation dim " +
                                  std::to_string(o.size()) + " != model input dim " +
                                  std::to_string(dim) + " (history_len/state_dim mismatch)");
    }
  }
  std::lock_guard<std::mutex> lock(infer_mutex_);
  if (is_dqn()) {
    // One [2B, dim] Q-pass: row 2i is "wait", row 2i+1 is "submit".
    nn::Tensor x(2 * batch, dim);
    std::vector<float> obs;
    for (std::size_t i = 0; i < batch; ++i) {
      obs = observations[i];
      rl::set_action_channel(obs, k, kNoSubmitOrdinal);
      std::copy(obs.begin(), obs.end(), x.row(2 * i));
      rl::set_action_channel(obs, k, kSubmitOrdinal);
      std::copy(obs.begin(), obs.end(), x.row(2 * i + 1));
    }
    nn::Tensor q = dqn_->model().infer_q(x);
    for (std::size_t i = 0; i < batch; ++i) {
      out[i].score_wait = q.at(2 * i, 0);
      out[i].score_submit = q.at(2 * i + 1, 0);
      out[i].action = out[i].score_submit > out[i].score_wait ? 1 : 0;
      out[i].model_version = version_;
    }
  } else {
    // One [B, dim] policy pass with the action channel zeroed.
    nn::Tensor x(batch, dim);
    std::vector<float> obs;
    for (std::size_t i = 0; i < batch; ++i) {
      obs = observations[i];
      rl::set_action_channel(obs, k, 0.0f);
      std::copy(obs.begin(), obs.end(), x.row(i));
    }
    nn::Tensor probs = pg_->model().infer_policy(x);
    for (std::size_t i = 0; i < batch; ++i) {
      out[i].score_wait = probs.at(i, 0);
      out[i].score_submit = probs.at(i, 1);
      // Same rule as PgAgent::act_greedy — rounded softmax rows need not
      // sum to exactly 1, so p_submit > p_wait could flip a near-tie.
      out[i].action = out[i].score_submit > 0.5f ? 1 : 0;
      out[i].model_version = version_;
    }
  }
}

// ----------------------------------------------------------- ModelRegistry

RegistryConfig::RegistryConfig() : expected_state_dim(rl::kFrameDim) {}

ModelRegistry::ModelRegistry(RegistryConfig config) : config_(std::move(config)) {}

std::string cluster_from_filename(const std::string& path) {
  const std::string stem = std::filesystem::path(path).stem().string();
  const auto sep = stem.find("__");
  return sep == std::string::npos ? stem : stem.substr(0, sep);
}

ModelRegistry::LoadResult ModelRegistry::load_file(const std::string& path,
                                                   const std::string& cluster) {
  LoadResult res;
  const auto info = core::read_checkpoint_info(path);
  if (!info) {
    res.error = path + ": unreadable or not a Mirage checkpoint";
    return res;
  }
  res.key = ModelKey{cluster, info->kind, info->foundation};
  if (info->kind != "dqn" && info->kind != "pg") {
    res.error = path + ": unknown agent kind '" + info->kind + "'";
    return res;
  }
  nn::FoundationType type;
  if (info->foundation == "transformer") {
    type = nn::FoundationType::kTransformer;
  } else if (info->foundation == "moe") {
    type = nn::FoundationType::kMoE;
  } else {
    res.error = path + ": unknown foundation '" + info->foundation + "'";
    return res;
  }
  if (info->state_dim != config_.expected_state_dim) {
    res.error = path + ": state_dim " + std::to_string(info->state_dim) +
                " != serving frame width " + std::to_string(config_.expected_state_dim);
    return res;
  }
  if (info->history_len == 0 || info->d_model == 0 ||
      (type == nn::FoundationType::kMoE && info->moe_experts == 0)) {
    res.error = path + ": degenerate architecture header";
    return res;
  }

  // Header fields come from the checkpoint; depth/width knobs not covered
  // by the header come from the registry defaults. Any disagreement with
  // the actual parameter shapes is caught by load_agent below.
  nn::FoundationConfig net = config_.net_defaults;
  net.history_len = info->history_len;
  net.state_dim = info->state_dim;
  net.d_model = info->d_model;
  net.moe_experts = info->moe_experts;
  net.moe_top1 = info->moe_top1;  // select-vs-blend gate semantics

  std::unique_ptr<rl::DqnAgent> dqn;
  std::unique_ptr<rl::PgAgent> pg;
  bool loaded = false;
  if (info->kind == "dqn") {
    rl::DqnConfig cfg;
    cfg.foundation = type;
    cfg.net = net;
    dqn = std::make_unique<rl::DqnAgent>(cfg, /*seed=*/0);
    loaded = core::load_agent(*dqn, path);
  } else {
    rl::PgConfig cfg;
    cfg.foundation = type;
    cfg.net = net;
    pg = std::make_unique<rl::PgAgent>(cfg, /*seed=*/0);
    loaded = core::load_agent(*pg, path);
  }
  if (!loaded) {
    res.error = path + ": architecture mismatch (header or parameter shapes "
                       "disagree with registry defaults)";
    return res;
  }

  const std::uint64_t version = next_version_.fetch_add(1, std::memory_order_relaxed);
  auto model = std::make_shared<const ServableModel>(res.key, *info, path, version,
                                                     std::move(dqn), std::move(pg));
  {
    std::unique_lock lock(mutex_);
    models_[res.key] = std::move(model);  // atomic swap for hot reload
  }
  res.ok = true;
  res.version = version;
  if (!journal_promotion(cluster, path)) {
    // The promotion happened (the registry swap is done); a failed log
    // append must not un-promote, but it must be loud — a silent gap here
    // would break the restart-reloads-last-promotion contract.
    res.error = path + ": promoted, but promotion log append failed";
  }
  if (obs::enabled()) {
    static obs::Counter* reloads = obs::registry().counter(
        "mirage_serve_checkpoint_reloads_total", "model checkpoints loaded or hot-swapped");
    reloads->add(1);
    obs::TraceEvent ev;
    ev.kind = obs::TraceEventKind::kCheckpointReload;
    ev.ts = static_cast<std::int64_t>(util::wall_seconds() * 1e6);
    ev.arg1 = static_cast<std::int64_t>(version);
    ev.tid = static_cast<std::uint32_t>(obs::detail::thread_shard());
    obs::global_trace().record(ev);
  }
  return res;
}

namespace {
// Promotion-log record: u8 type | u32 cluster_len | bytes | u32 path_len |
// bytes. RecordReader bounds-checks replay, so foreign bytes are skipped.
constexpr std::uint8_t kRecPromotion = 1;
}  // namespace

bool ModelRegistry::journal_promotion(const std::string& cluster, const std::string& path) {
  std::lock_guard<std::mutex> lock(promotion_mutex_);
  if (!promotion_log_.is_open() || replaying_) return true;
  std::uint8_t head[5], mid[4];
  head[0] = kRecPromotion;
  util::wal::store_u32_le(head + 1, static_cast<std::uint32_t>(cluster.size()));
  util::wal::store_u32_le(mid, static_cast<std::uint32_t>(path.size()));
  const util::wal::Chunk chunks[] = {
      {head, sizeof(head)},
      {cluster.data(), cluster.size()},
      {mid, sizeof(mid)},
      {path.data(), path.size()},
  };
  return promotion_log_.append(chunks, 4) && promotion_log_.commit();
}

bool ModelRegistry::attach_promotion_log(const std::string& dir,
                                         const util::wal::WalOptions& options,
                                         std::string* error) {
  std::lock_guard<std::mutex> lock(promotion_mutex_);
  return promotion_log_.open(dir, options, error);
}

std::size_t ModelRegistry::recover_promotions(const std::string& dir,
                                              std::vector<LoadResult>* results,
                                              std::string* error) {
  std::vector<std::pair<std::string, std::string>> promotions;  // (cluster, path), log order
  const auto replay = [&promotions](const void* data, std::size_t size) {
    util::wal::RecordReader r(data, size);
    if (r.u8() != kRecPromotion) return;
    std::string cluster = r.str(r.u32());
    std::string path = r.str(r.u32());
    if (r.ok) promotions.emplace_back(std::move(cluster), std::move(path));
  };
  if (!util::wal::recover(dir, replay, nullptr, error)) return 0;

  std::size_t restored = 0;
  for (std::size_t i = 0; i < promotions.size(); ++i) {
    // Last promotion of a (cluster, path) pair wins; earlier ones are
    // superseded history and skipping them avoids redundant loads.
    bool superseded = false;
    for (std::size_t j = i + 1; j < promotions.size() && !superseded; ++j) {
      superseded = promotions[j] == promotions[i];
    }
    if (superseded) continue;
    {
      std::lock_guard<std::mutex> lock(promotion_mutex_);
      replaying_ = true;
    }
    auto res = load_file(promotions[i].second, promotions[i].first);
    {
      std::lock_guard<std::mutex> lock(promotion_mutex_);
      replaying_ = false;
    }
    restored += res.ok;
    if (results) results->push_back(std::move(res));
  }
  return restored;
}

std::size_t ModelRegistry::scan_directory(const std::string& dir,
                                          std::vector<LoadResult>* results) {
  std::error_code ec;
  std::vector<std::string> paths;
  std::filesystem::directory_iterator it(dir, ec);
  if (ec) {
    // A mistyped directory must not look like an empty one.
    if (results) {
      LoadResult res;
      res.error = dir + ": " + ec.message();
      results->push_back(std::move(res));
    }
    return 0;
  }
  for (const auto& entry : it) {
    if (entry.is_regular_file() && entry.path().extension() == ".ckpt") {
      paths.push_back(entry.path().string());
    }
  }
  std::sort(paths.begin(), paths.end());  // deterministic load order
  std::size_t ok = 0;
  for (const auto& p : paths) {
    auto res = load_file(p, cluster_from_filename(p));
    ok += res.ok;
    if (results) results->push_back(std::move(res));
  }
  return ok;
}

ModelSnapshot ModelRegistry::lookup(const ModelKey& key) const {
  std::shared_lock lock(mutex_);
  const auto it = models_.find(key);
  return it == models_.end() ? nullptr : it->second;
}

ModelSnapshot ModelRegistry::find(const std::string& cluster, const std::string& method) const {
  std::shared_lock lock(mutex_);
  for (const auto& [key, model] : models_) {
    if (key.cluster == cluster && key.method == method) return model;
  }
  return nullptr;
}

std::vector<ModelKey> ModelRegistry::keys() const {
  std::shared_lock lock(mutex_);
  std::vector<ModelKey> out;
  out.reserve(models_.size());
  for (const auto& [key, model] : models_) out.push_back(key);
  return out;
}

std::size_t ModelRegistry::size() const {
  std::shared_lock lock(mutex_);
  return models_.size();
}

bool ModelRegistry::erase(const ModelKey& key) {
  std::unique_lock lock(mutex_);
  return models_.erase(key) > 0;
}

}  // namespace mirage::serve

#include "serve/metrics.hpp"

#include <algorithm>

#include "util/stats.hpp"

namespace mirage::serve {

LatencyRecorder::LatencyRecorder(std::size_t capacity) : capacity_(capacity) {
  samples_ms_.reserve(capacity_ < 4096 ? capacity_ : 4096);
}

void LatencyRecorder::record_seconds(double seconds) {
  const double ms = seconds * 1e3;
  std::lock_guard<std::mutex> lock(mutex_);
  ++count_;
  sum_ms_ += ms;
  if (ms > max_ms_) max_ms_ = ms;
  if (samples_ms_.size() < capacity_) {
    samples_ms_.push_back(ms);
    return;
  }
  // Reservoir: keep each of the `count_` samples with probability
  // capacity/count. splitmix64 keeps this allocation-free and lock-local.
  rng_state_ += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = rng_state_;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  z ^= z >> 31;
  const std::uint64_t slot = z % count_;
  if (slot < samples_ms_.size()) samples_ms_[slot] = ms;
}

LatencySnapshot LatencyRecorder::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  LatencySnapshot s;
  s.count = count_;
  if (count_ == 0) return s;
  s.mean_ms = sum_ms_ / static_cast<double>(count_);
  s.max_ms = max_ms_;
  std::vector<double> sorted = samples_ms_;
  std::sort(sorted.begin(), sorted.end());
  s.p50_ms = util::percentile_sorted(sorted, 50.0);
  s.p95_ms = util::percentile_sorted(sorted, 95.0);
  s.p99_ms = util::percentile_sorted(sorted, 99.0);
  return s;
}

void LatencyRecorder::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  count_ = 0;
  sum_ms_ = 0.0;
  max_ms_ = 0.0;
  samples_ms_.clear();
}

}  // namespace mirage::serve

#include "serve/service.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/time_utils.hpp"

namespace mirage::serve {

ProvisioningService::ProvisioningService(const ModelRegistry& registry, ModelKey key,
                                         ServiceConfig config)
    : config_(config), engine_(registry, std::move(key), config.engine) {}

ProvisioningService::ProvisioningService(ModelSnapshot model, ServiceConfig config)
    : config_(config), engine_([model = std::move(model)] { return model; }, config.engine) {}

ProvisioningService::~ProvisioningService() { drain_and_stop(); }

void ProvisioningService::start() {
  double expected = 0.0;
  started_seconds_.compare_exchange_strong(expected, util::wall_seconds());
  engine_.start();
}

void ProvisioningService::drain_and_stop() { engine_.drain(); }

SessionId ProvisioningService::open_session() {
  std::unique_lock lock(sessions_mutex_);
  const SessionId id = next_session_++;
  sessions_.emplace(id, std::make_shared<Session>(config_.history_len,
                                                  std::max<std::size_t>(1, config_.partition_count)));
  ++total_sessions_;
  return id;
}

void ProvisioningService::close_session(SessionId id) {
  std::unique_lock lock(sessions_mutex_);
  sessions_.erase(id);
}

std::shared_ptr<ProvisioningService::Session> ProvisioningService::find_session(
    SessionId id) const {
  std::shared_lock lock(sessions_mutex_);
  const auto it = sessions_.find(id);
  if (it == sessions_.end()) {
    throw std::out_of_range("ProvisioningService: unknown session " + std::to_string(id));
  }
  return it->second;
}

void ProvisioningService::observe(SessionId id, const sim::StateSample& sample,
                                  const rl::JobPairContext& ctx) {
  const auto session = find_session(id);
  std::lock_guard<std::mutex> lock(session->mutex);
  session->encoder.push(sample, ctx);
}

std::future<Decision> ProvisioningService::decide_async(SessionId id) {
  const auto session = find_session(id);
  std::vector<float> observation;
  {
    std::lock_guard<std::mutex> lock(session->mutex);
    observation = session->encoder.flatten(0.0f);
    ++session->decisions;
  }
  return engine_.submit(std::move(observation), [this](const Decision& d) {
    std::lock_guard<std::mutex> lock(counters_mutex_);
    ++decisions_;
    submits_ += (d.action == 1);
  });
}

Decision ProvisioningService::decide(SessionId id) { return decide_async(id).get(); }

std::vector<float> ProvisioningService::session_history(SessionId id) const {
  const auto session = find_session(id);
  std::lock_guard<std::mutex> lock(session->mutex);
  return session->encoder.flatten(0.0f);
}

std::size_t ProvisioningService::session_frames_seen(SessionId id) const {
  const auto session = find_session(id);
  std::lock_guard<std::mutex> lock(session->mutex);
  return session->encoder.frames_seen();
}

std::size_t ProvisioningService::session_count() const {
  std::shared_lock lock(sessions_mutex_);
  return sessions_.size();
}

ServiceReport ProvisioningService::report() const {
  ServiceReport r;
  {
    std::shared_lock lock(sessions_mutex_);
    r.open_sessions = sessions_.size();
    r.total_sessions = total_sessions_;
  }
  {
    std::lock_guard<std::mutex> lock(counters_mutex_);
    r.decisions = decisions_;
    r.submits = submits_;
  }
  r.engine = engine_.stats();
  const double started = started_seconds_.load();
  if (started > 0.0) {
    r.uptime_seconds = util::wall_seconds() - started;
    if (r.uptime_seconds > 0.0) {
      r.decisions_per_second = static_cast<double>(r.decisions) / r.uptime_seconds;
    }
  }
  return r;
}

}  // namespace mirage::serve

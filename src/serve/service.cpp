#include "serve/service.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <limits>
#include <stdexcept>

#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/time_utils.hpp"

namespace mirage::serve {

namespace {

std::size_t resolve_shards(std::size_t configured) {
  if (configured > 0) return configured;
  return std::max<std::size_t>(1, std::thread::hardware_concurrency());
}

[[noreturn]] void throw_unknown_session(SessionId id) {
  throw std::out_of_range("ProvisioningService: unknown session " + std::to_string(id));
}

obs::Counter& sweeper_wakeups_counter() {
  static obs::Counter* c = obs::registry().counter(
      "mirage_serve_sweeper_wakeups_total", "background sweeper ticks");
  return *c;
}

obs::Counter& sweeper_skipped_counter() {
  static obs::Counter* c = obs::registry().counter(
      "mirage_serve_sweeper_skipped_total",
      "sweep scans skipped by the idle-aware cadence");
  return *c;
}

obs::Counter& sweeper_stretches_counter() {
  static obs::Counter* c = obs::registry().counter(
      "mirage_serve_sweeper_stretches_total",
      "sweeper wakeup-interval doublings on quiet tables");
  return *c;
}

// Session-journal record encodings (all little-endian; RecordReader
// bounds-checks replay so a foreign or truncated payload is skipped, not
// trusted).
constexpr std::uint8_t kRecOpen = 1;      ///< u64 id | u32 k | u32 partitions
constexpr std::uint8_t kRecClose = 2;     ///< u64 id
constexpr std::uint8_t kRecFrame = 3;     ///< u64 id | u32 n | n float32
constexpr std::uint8_t kRecDecision = 4;  ///< u64 id | u8 action
constexpr std::uint8_t kRecEvict = 5;     ///< u64 id

}  // namespace

ProvisioningService::ProvisioningService(const ModelRegistry& registry, ModelKey key,
                                         ServiceConfig config)
    : config_(config),
      engine_(registry, std::move(key), config.engine),
      shards_(resolve_shards(config.shards)) {
  init_gauges();
  init_wal();
}

ProvisioningService::ProvisioningService(ModelSnapshot model, ServiceConfig config)
    : config_(config),
      engine_([model = std::move(model)] { return model; }, config.engine),
      shards_(resolve_shards(config.shards)) {
  init_gauges();
  init_wal();
}

ProvisioningService::~ProvisioningService() { drain_and_stop(); }

void ProvisioningService::init_gauges() {
  auto& reg = obs::registry();
  queue_depth_gauge_ = reg.gauge("mirage_serve_engine_queue_depth",
                                 "live engine ring occupancy");
  reject_rate_gauge_ = reg.gauge("mirage_serve_reject_rate",
                                 "backpressure rejections per second (last interval)");
  shard_session_gauges_.reserve(shards_.size());
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    shard_session_gauges_.push_back(
        reg.gauge("mirage_serve_shard_sessions_" + std::to_string(i),
                  "live sessions owned by shard " + std::to_string(i)));
  }
}

void ProvisioningService::configure_slos() {
  if (slos_configured_.load(std::memory_order_relaxed) || !config_.slo.enabled) return;
  const ServiceSloConfig& c = config_.slo;

  obs::SloSpec latency;
  latency.name = "serve_latency";
  latency.kind = obs::SloKind::kLatencyQuantile;
  latency.latency = &decision_latency_histogram();
  latency.quantile = c.latency_quantile;
  latency.target_seconds = c.latency_target_seconds;
  latency.short_window_seconds = c.short_window_seconds;
  latency.long_window_seconds = c.long_window_seconds;
  latency.burn_threshold = c.burn_threshold;
  latency.pending_seconds = c.pending_seconds;
  latency.resolve_seconds = c.resolve_seconds;
  slos_.add(std::move(latency));

  obs::SloSpec reject;
  reject.name = "serve_reject";
  reject.kind = obs::SloKind::kErrorRate;
  reject.bad = &engine_rejected_counter();
  reject.good = &engine_served_counter();
  reject.budget = c.reject_budget;
  reject.short_window_seconds = c.short_window_seconds;
  reject.long_window_seconds = c.long_window_seconds;
  reject.burn_threshold = c.burn_threshold;
  reject.pending_seconds = c.pending_seconds;
  reject.resolve_seconds = c.resolve_seconds;
  slos_.add(std::move(reject));

  if (c.dump_on_fire) {
    // Runs on the sweeper thread AFTER the SLO engine releases its lock,
    // so the dump's health provider can re-enter health_text() safely.
    slos_.on_fire([](const obs::SloStatus& status) {
      obs::flight_recorder().dump("slo_" + status.name);
    });
  }
  slos_configured_.store(true, std::memory_order_release);
}

void ProvisioningService::start() {
  double expected = 0.0;
  started_seconds_.compare_exchange_strong(expected, util::wall_seconds());
  engine_.start();
  std::lock_guard<std::mutex> lock(sweeper_mutex_);
  configure_slos();
  if (!providers_registered_) {
    providers_registered_ = true;
    // Flight-recorder documents: dumps triggered anywhere in the process
    // (SLO fire, fatal signal, operator request) capture this service's
    // verdicts and scrape body. Unregistered on drain (they capture
    // `this`).
    obs::flight_recorder().register_provider("health.txt",
                                             [this] { return health_text(); });
    obs::flight_recorder().register_provider("serve_metrics.prom",
                                             [this] { return metrics_text(); });
  }
  // With journaling at a group-commit sync level the sweeper doubles as
  // the commit tick: it flushes the WAL buffer (and rolls segments) every
  // interval, bounding the un-flushed crash-exposure window.
  const bool need_sweeper = config_.session_ttl_seconds > 0.0 ||
                            slos_configured_.load(std::memory_order_relaxed) ||
                            (wal_on_ && config_.wal.wal.sync != util::wal::SyncLevel::kOnCommit);
  if (need_sweeper && !sweeper_.joinable() && !sweeper_stop_) {
    sweeper_ = std::thread([this] { sweeper_loop(); });
  }
}

void ProvisioningService::drain_and_stop() {
  engine_.drain();
  std::thread sweeper;
  bool unregister = false;
  {
    std::lock_guard<std::mutex> lock(sweeper_mutex_);
    sweeper_stop_ = true;
    sweeper = std::move(sweeper_);
    unregister = providers_registered_;
    providers_registered_ = false;
  }
  sweeper_cv_.notify_all();
  if (sweeper.joinable()) sweeper.join();
  if (unregister) {
    obs::flight_recorder().unregister_provider("health.txt");
    obs::flight_recorder().unregister_provider("serve_metrics.prom");
  }
  if (wal_on_) {
    // Engine and sweeper are stopped, so no journal appends race this
    // final flush; close() commits buffered records before releasing fds.
    std::lock_guard<std::mutex> lock(wal_mutex_);
    if (wal_.is_open()) {
      if (!wal_.commit()) wal_failed_.store(true, std::memory_order_relaxed);
      wal_.close();
    }
  }
}

SessionId ProvisioningService::open_session() {
  const SessionId id = next_session_.fetch_add(1, std::memory_order_relaxed);
  auto session = std::make_shared<Session>(id, config_.history_len,
                                           std::max<std::size_t>(1, config_.partition_count));
  session->last_access_seconds.store(util::wall_seconds(), std::memory_order_relaxed);
  // Journal BEFORE the map insert: nothing (not even the sweeper) can
  // touch the id until it is in the table, so the open record is
  // guaranteed to precede every other record for this session.
  journal_open(id);
  Shard& shard = shard_of(id);
  std::lock_guard<std::mutex> lock(shard.mutex);
  shard.sessions.emplace(id, std::move(session));
  ++shard.total_sessions;
  return id;
}

void ProvisioningService::close_session(SessionId id) {
  Shard& shard = shard_of(id);
  bool erased = false;
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    erased = shard.sessions.erase(id) > 0;
  }
  if (erased) journal_close(id);
}

std::shared_ptr<ProvisioningService::Session> ProvisioningService::find_session(
    SessionId id) const {
  Shard& shard = shard_of(id);
  const bool ttl_on = config_.session_ttl_seconds > 0.0;
  const double now = ttl_on ? util::wall_seconds() : 0.0;
  std::lock_guard<std::mutex> lock(shard.mutex);
  const auto it = shard.sessions.find(id);
  if (it == shard.sessions.end()) throw_unknown_session(id);
  if (ttl_on) {
    const double last = it->second->last_access_seconds.load(std::memory_order_relaxed);
    if (now - last > config_.session_ttl_seconds) {
      // Lazy expiry: reap on touch, then report it exactly like a closed
      // session so a late observe/decide fails loudly instead of serving
      // a zombie ring.
      shard.sessions.erase(it);
      shard.evictions.fetch_add(1, std::memory_order_relaxed);
      journal_evict(id);
      throw_unknown_session(id);
    }
    it->second->last_access_seconds.store(now, std::memory_order_relaxed);
  }
  return it->second;
}

std::size_t ProvisioningService::sweep_shard(Shard& shard) const {
  if (config_.session_ttl_seconds <= 0.0) return 0;
  const double now = util::wall_seconds();
  std::size_t evicted = 0;
  std::lock_guard<std::mutex> lock(shard.mutex);
  double earliest_last = std::numeric_limits<double>::infinity();
  for (auto it = shard.sessions.begin(); it != shard.sessions.end();) {
    const double last = it->second->last_access_seconds.load(std::memory_order_relaxed);
    if (now - last > config_.session_ttl_seconds) {
      journal_evict(it->first);
      it = shard.sessions.erase(it);
      ++evicted;
    } else {
      earliest_last = std::min(earliest_last, last);
      ++it;
    }
  }
  // Refresh the idle hint: nothing surviving this scan can expire before
  // earliest_last + ttl, sessions opened later expire later still, and a
  // touch only pushes expiry out — so skipping until then is safe.
  shard.sweep_hint_valid = true;
  shard.last_sweep_size = shard.sessions.size();
  shard.next_expiry_hint = shard.sessions.empty()
                               ? std::numeric_limits<double>::infinity()
                               : earliest_last + config_.session_ttl_seconds;
  if (evicted) shard.evictions.fetch_add(evicted, std::memory_order_relaxed);
  return evicted;
}

std::size_t ProvisioningService::sweep_shard_idle_aware(Shard& shard, bool* skipped) const {
  if (skipped) *skipped = false;
  if (config_.session_ttl_seconds <= 0.0) return 0;
  const double now = util::wall_seconds();
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    // Quiet-table fast path: unchanged size at or below the idle
    // threshold, and the earliest possible expiry still ahead — a scan
    // would provably evict nothing, so the tick costs a size check.
    if (shard.sweep_hint_valid && shard.sessions.size() == shard.last_sweep_size &&
        shard.sessions.size() <= config_.sweep_idle_threshold &&
        now < shard.next_expiry_hint) {
      sweep_skipped_.fetch_add(1, std::memory_order_relaxed);
      sweeper_skipped_counter().add();
      if (skipped) *skipped = true;
      return 0;
    }
  }
  return sweep_shard(shard);
}

void ProvisioningService::sweeper_loop() {
  const double base_seconds = std::max(1e-4, config_.sweep_interval_seconds);
  const bool ttl_on = config_.session_ttl_seconds > 0.0;
  const double max_factor = std::max(1.0, config_.sweep_backoff_max_factor);
  double backoff = 1.0;        ///< current interval multiplier
  std::size_t quiet_streak = 0;  ///< consecutive hint-skipped ticks
  std::unique_lock<std::mutex> lock(sweeper_mutex_);
  while (!sweeper_stop_) {
    const auto interval = std::chrono::duration<double>(base_seconds * backoff);
    if (sweeper_cv_.wait_for(lock, interval, [this] { return sweeper_stop_; })) break;
    // Amortized background expiry: one shard per tick, round-robin, so
    // sweep cost stays O(sessions / shards) per wakeup no matter how
    // large the table grows (lazy expiry covers touched sessions).
    std::size_t cursor = 0;
    if (ttl_on) {
      cursor = sweep_cursor_;
      sweep_cursor_ = (sweep_cursor_ + 1) % shards_.size();
    }
    lock.unlock();
    sweep_wakeups_.fetch_add(1, std::memory_order_relaxed);
    sweeper_wakeups_counter().add();
    bool skipped = false;
    if (ttl_on) sweep_shard_idle_aware(shards_[cursor], &skipped);
    // The sweeper doubles as the SLO evaluator and gauge-refresh tick —
    // both allocation-free in steady state, so the thread can run inside
    // the soak bench's zero-allocation audit window.
    const bool slos_on = slos_configured_.load(std::memory_order_acquire);
    if (slos_on) slos_.evaluate(util::wall_seconds());
    refresh_gauges();
    // Group commit: at sync levels below kOnCommit the sweeper tick is
    // the journal's flush point (and segment-roll point), so a crash
    // loses at most one tick's worth of buffered records.
    if (wal_on_ && config_.wal.wal.sync != util::wal::SyncLevel::kOnCommit) {
      journal_commit();
    }
    // Quiet-table backoff, pure-TTL configurations only: with SLOs
    // configured the evaluator needs its steady base cadence. Once every
    // shard in a full rotation has declined its scan via the min-expiry
    // hint, the table is provably quiet until the earliest hint, so the
    // wakeup interval doubles (bounded); the first real scan — any
    // activity invalidates a hint — snaps it back to base.
    if (ttl_on && !slos_on && max_factor > 1.0) {
      if (skipped) {
        ++quiet_streak;
        if (quiet_streak % shards_.size() == 0 && backoff < max_factor) {
          backoff = std::min(max_factor, backoff * 2.0);
          sweep_stretches_.fetch_add(1, std::memory_order_relaxed);
          sweeper_stretches_counter().add();
        }
      } else {
        quiet_streak = 0;
        backoff = 1.0;
      }
    }
    lock.lock();
  }
}

void ProvisioningService::refresh_gauges() const {
  queue_depth_gauge_->set(static_cast<double>(engine_.queue_depth()));
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    std::size_t count = 0;
    {
      std::lock_guard<std::mutex> lock(shards_[i].mutex);
      count = shards_[i].sessions.size();
    }
    shard_session_gauges_[i]->set(static_cast<double>(count));
  }
  const double now = util::wall_seconds();
  const std::uint64_t rejected = engine_rejected_counter().value();
  const double prev_t = last_reject_sample_seconds_.exchange(now, std::memory_order_relaxed);
  const std::uint64_t prev_r = last_rejected_.exchange(rejected, std::memory_order_relaxed);
  if (prev_t > 0.0 && now > prev_t && rejected >= prev_r) {
    reject_rate_gauge_->set(static_cast<double>(rejected - prev_r) / (now - prev_t));
  }
}

std::size_t ProvisioningService::evict_expired() {
  std::size_t evicted = 0;
  for (auto& shard : shards_) evicted += sweep_shard(shard);
  return evicted;
}

void ProvisioningService::observe(SessionId id, const sim::StateSample& sample,
                                  const rl::JobPairContext& ctx) {
  const auto session = find_session(id);
  std::lock_guard<std::mutex> lock(session->mutex);
  session->encoder.push(sample, ctx);
  // Journaled under the session mutex so the record order matches the
  // ring order exactly — replay reproduces the ring bit for bit.
  if (wal_on_) {
    const std::vector<float>& frame = session->encoder.last_frame();
    journal_frame(id, frame.data(), frame.size());
  }
}

void ProvisioningService::record_served(Shard& shard, Session& session,
                                        const Decision& d) const {
  session.decisions.fetch_add(1, std::memory_order_relaxed);
  shard.decisions.fetch_add(1, std::memory_order_relaxed);
  if (d.action == 1) shard.submits.fetch_add(1, std::memory_order_relaxed);
  journal_decision(session.id, d.action);
}

std::uint64_t ProvisioningService::begin_request_trace(SessionId id) const {
  if (!obs::enabled()) return 0;
  const std::uint64_t request_id =
      next_request_id_.fetch_add(1, std::memory_order_relaxed);
  // Journey prologue: the id minted here is threaded through the engine
  // ring (kRequestEnqueue), the batch (kRequestComplete) and the latency
  // histogram's exemplars — tid is the owning session shard.
  obs::TraceEvent ev;
  ev.kind = obs::TraceEventKind::kRequestBegin;
  ev.ts = static_cast<std::int64_t>(util::wall_seconds() * 1e6);
  ev.arg0 = static_cast<std::int64_t>(request_id);
  ev.arg1 = static_cast<std::int64_t>(id);
  ev.tid = static_cast<std::uint32_t>(id % shards_.size());
  obs::global_trace().record(ev);
  return request_id;
}

std::future<Decision> ProvisioningService::decide_async(SessionId id) {
  const auto session = find_session(id);
  std::vector<float> observation;
  {
    std::lock_guard<std::mutex> lock(session->mutex);
    observation = session->encoder.flatten(0.0f);
  }
  // Served-decision accounting happens in the engine's completion hook,
  // which runs only when the request actually produced a decision — a
  // drained, rejected or failed request never inflates the counters.
  Shard* shard = &shard_of(id);
  return engine_.submit(std::move(observation),
                        [this, shard, session](const Decision& d) {
                          record_served(*shard, *session, d);
                        },
                        begin_request_trace(id));
}

Decision ProvisioningService::decide(SessionId id) {
  Decision out;
  switch (try_decide(id, out)) {
    case BatchedInferenceEngine::SubmitResult::kOk:
      return out;
    case BatchedInferenceEngine::SubmitResult::kRejectedBackpressure:
      throw BackpressureRejected();
    case BatchedInferenceEngine::SubmitResult::kDraining:
      break;
  }
  throw std::runtime_error("ProvisioningService: draining, decision rejected");
}

BatchedInferenceEngine::SubmitResult ProvisioningService::try_decide(SessionId id,
                                                                     Decision& out) {
  const auto session = find_session(id);
  // Reused per calling thread: flatten_into + the engine's slot swap keep
  // the steady-state decide path free of heap allocations.
  thread_local std::vector<float> observation;
  {
    std::lock_guard<std::mutex> lock(session->mutex);
    session->encoder.flatten_into(observation, 0.0f);
  }
  const auto result = engine_.try_decide_blocking(observation, out, begin_request_trace(id));
  if (result == BatchedInferenceEngine::SubmitResult::kOk) {
    record_served(shard_of(id), *session, out);
  }
  return result;
}

void ProvisioningService::pooled_served_trampoline(void* ctx_a, void* ctx_b, void* ctx_c,
                                                   std::uint64_t /*request_id*/,
                                                   const Decision& d) {
  auto* self = static_cast<ProvisioningService*>(ctx_a);
  auto* shard = static_cast<Shard*>(ctx_b);
  auto* session = static_cast<Session*>(ctx_c);
  self->record_served(*shard, *session, d);
}

BatchedInferenceEngine::SubmitResult ProvisioningService::try_decide_async(SessionId id,
                                                                           AsyncDecision& out) {
  const auto session = find_session(id);
  // Same reused flatten buffer as try_decide: the engine swaps it into a
  // ring slot, so the pooled async path never touches the heap in steady
  // state (the keepalive copy below is a refcount bump, not an alloc).
  thread_local std::vector<float> observation;
  {
    std::lock_guard<std::mutex> lock(session->mutex);
    session->encoder.flatten_into(observation, 0.0f);
  }
  BatchedInferenceEngine::PooledCompletion completion;
  completion.fn = &pooled_served_trampoline;
  completion.ctx_a = this;
  completion.ctx_b = &shard_of(id);
  completion.ctx_c = session.get();
  completion.keepalive = session;  // pins the session until the batch runs
  return engine_.submit_pooled(observation, out, std::move(completion),
                               begin_request_trace(id));
}

AsyncDecision ProvisioningService::decide_async_pooled(SessionId id) {
  AsyncDecision out;
  switch (try_decide_async(id, out)) {
    case BatchedInferenceEngine::SubmitResult::kOk:
      return out;
    case BatchedInferenceEngine::SubmitResult::kRejectedBackpressure:
      throw BackpressureRejected();
    case BatchedInferenceEngine::SubmitResult::kDraining:
      break;
  }
  throw std::runtime_error("ProvisioningService: draining, decision rejected");
}

// ------------------------------------------------------ session journaling

void ProvisioningService::init_wal() {
  if (config_.wal.dir.empty()) return;
  wal_on_ = true;
  if (config_.wal.restore) replay_wal();
  std::string error;
  std::lock_guard<std::mutex> lock(wal_mutex_);
  if (!wal_.open(config_.wal.dir, config_.wal.wal, &error)) {
    throw std::runtime_error("ProvisioningService: cannot open session journal: " + error);
  }
}

void ProvisioningService::replay_wal() {
  namespace wal = util::wal;
  const std::size_t partitions = std::max<std::size_t>(1, config_.partition_count);
  const std::size_t width = rl::frame_vars(partitions);
  std::map<SessionId, std::shared_ptr<Session>> live;
  std::vector<float> frame(width);
  SessionId max_id = 0;
  std::string mismatch;  // deferred: throwing through recover would leak its FILE*
  WalRestoreInfo& info = wal_restore_;

  const auto replay = [&](const void* data, std::size_t size) {
    wal::RecordReader r(data, size);
    switch (r.u8()) {
      case kRecOpen: {
        const SessionId id = r.u64();
        const std::uint32_t k = r.u32();
        const std::uint32_t parts = r.u32();
        if (!r.ok) return;
        if (k != config_.history_len || parts != partitions) {
          if (mismatch.empty()) {
            mismatch = "journaled session " + std::to_string(id) + " has k=" +
                       std::to_string(k) + "/partitions=" + std::to_string(parts) +
                       ", service configured k=" + std::to_string(config_.history_len) +
                       "/partitions=" + std::to_string(partitions);
          }
          return;
        }
        auto session = std::make_shared<Session>(id, config_.history_len, partitions);
        Shard& shard = shard_of(id);
        ++shard.total_sessions;  // single-threaded: constructor, pre-start
        live[id] = std::move(session);
        max_id = std::max(max_id, id);
        ++info.sessions_opened;
        break;
      }
      case kRecClose: {
        const SessionId id = r.u64();
        if (!r.ok) return;
        live.erase(id);
        ++info.closes;
        break;
      }
      case kRecFrame: {
        const SessionId id = r.u64();
        const std::uint32_t n = r.u32();
        if (!r.ok || n != width) return;
        if (!r.take(frame.data(), static_cast<std::size_t>(n) * sizeof(float))) return;
        const auto it = live.find(id);
        // Frames for closed/evicted sessions are legal history (a late
        // observe can race a close in the live service) — count, skip.
        if (it != live.end()) it->second->encoder.push_encoded(frame.data(), width);
        ++info.frames;
        break;
      }
      case kRecDecision: {
        const SessionId id = r.u64();
        const std::uint8_t action = r.u8();
        if (!r.ok) return;
        Shard& shard = shard_of(id);
        shard.decisions.fetch_add(1, std::memory_order_relaxed);
        if (action == 1) {
          shard.submits.fetch_add(1, std::memory_order_relaxed);
          ++info.submits;
        }
        const auto it = live.find(id);
        if (it != live.end()) it->second->decisions.fetch_add(1, std::memory_order_relaxed);
        ++info.decisions;
        break;
      }
      case kRecEvict: {
        const SessionId id = r.u64();
        if (!r.ok) return;
        live.erase(id);
        shard_of(id).evictions.fetch_add(1, std::memory_order_relaxed);
        ++info.evictions;
        break;
      }
      default:
        break;  // future record kinds: skip, don't trust
    }
  };

  wal::RecoveryInfo rinfo;
  std::string error;
  if (!wal::recover(config_.wal.dir, replay, &rinfo, &error)) {
    throw std::runtime_error("ProvisioningService: session journal replay failed: " + error);
  }
  if (!mismatch.empty()) {
    throw std::runtime_error("ProvisioningService: session journal mismatch: " + mismatch);
  }
  const double now = util::wall_seconds();
  for (auto& [id, session] : live) {
    session->last_access_seconds.store(now, std::memory_order_relaxed);
    shard_of(id).sessions.emplace(id, std::move(session));
  }
  info.replayed = true;
  info.sessions = live.size();
  info.records = rinfo.records;
  info.truncated_bytes = rinfo.truncated_bytes;
  info.torn_tail = rinfo.torn_tail;
  if (max_id >= next_session_.load(std::memory_order_relaxed)) {
    next_session_.store(max_id + 1, std::memory_order_relaxed);
  }
}

void ProvisioningService::journal_append(const util::wal::Chunk* chunks,
                                         std::size_t count) const {
  std::lock_guard<std::mutex> lock(wal_mutex_);
  if (!wal_.is_open()) return;  // drained: durability is over, serving isn't
  bool ok = wal_.append(chunks, count);
  if (ok && config_.wal.wal.sync == util::wal::SyncLevel::kOnCommit) ok = wal_.commit();
  if (!ok) wal_failed_.store(true, std::memory_order_relaxed);
}

void ProvisioningService::journal_open(SessionId id) const {
  if (!wal_on_) return;
  std::uint8_t head[17];
  head[0] = kRecOpen;
  util::wal::store_u64_le(head + 1, id);
  util::wal::store_u32_le(head + 9, static_cast<std::uint32_t>(config_.history_len));
  util::wal::store_u32_le(head + 13, static_cast<std::uint32_t>(std::max<std::size_t>(
                                         1, config_.partition_count)));
  const util::wal::Chunk chunk{head, sizeof(head)};
  journal_append(&chunk, 1);
}

void ProvisioningService::journal_close(SessionId id) const {
  if (!wal_on_) return;
  std::uint8_t head[9];
  head[0] = kRecClose;
  util::wal::store_u64_le(head + 1, id);
  const util::wal::Chunk chunk{head, sizeof(head)};
  journal_append(&chunk, 1);
}

void ProvisioningService::journal_frame(SessionId id, const float* frame,
                                        std::size_t size) const {
  if (!wal_on_) return;
  std::uint8_t head[13];
  head[0] = kRecFrame;
  util::wal::store_u64_le(head + 1, id);
  util::wal::store_u32_le(head + 9, static_cast<std::uint32_t>(size));
  const util::wal::Chunk chunks[] = {
      {head, sizeof(head)},
      {frame, size * sizeof(float)},
  };
  journal_append(chunks, 2);
}

void ProvisioningService::journal_decision(SessionId id, int action) const {
  if (!wal_on_) return;
  std::uint8_t head[10];
  head[0] = kRecDecision;
  util::wal::store_u64_le(head + 1, id);
  head[9] = static_cast<std::uint8_t>(action == 1 ? 1 : 0);
  const util::wal::Chunk chunk{head, sizeof(head)};
  journal_append(&chunk, 1);
}

void ProvisioningService::journal_evict(SessionId id) const {
  if (!wal_on_) return;
  std::uint8_t head[9];
  head[0] = kRecEvict;
  util::wal::store_u64_le(head + 1, id);
  const util::wal::Chunk chunk{head, sizeof(head)};
  journal_append(&chunk, 1);
}

void ProvisioningService::journal_commit() const {
  std::lock_guard<std::mutex> lock(wal_mutex_);
  if (!wal_.is_open()) return;
  if (!wal_.commit()) wal_failed_.store(true, std::memory_order_relaxed);
}

std::vector<float> ProvisioningService::session_history(SessionId id) const {
  const auto session = find_session(id);
  std::lock_guard<std::mutex> lock(session->mutex);
  return session->encoder.flatten(0.0f);
}

std::size_t ProvisioningService::session_frames_seen(SessionId id) const {
  const auto session = find_session(id);
  std::lock_guard<std::mutex> lock(session->mutex);
  return session->encoder.frames_seen();
}

std::size_t ProvisioningService::session_count() const {
  std::size_t count = 0;
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    count += shard.sessions.size();
  }
  return count;
}

ServiceReport ProvisioningService::report() const {
  ServiceReport r;
  r.shards = shards_.size();
  for (auto& shard : shards_) {
    {
      std::lock_guard<std::mutex> lock(shard.mutex);
      r.open_sessions += shard.sessions.size();
      r.total_sessions += shard.total_sessions;
    }
    r.decisions += shard.decisions.load(std::memory_order_relaxed);
    r.submits += shard.submits.load(std::memory_order_relaxed);
    r.evictions += shard.evictions.load(std::memory_order_relaxed);
  }
  r.sweep_wakeups = sweep_wakeups_.load(std::memory_order_relaxed);
  r.sweep_skipped = sweep_skipped_.load(std::memory_order_relaxed);
  r.sweep_stretches = sweep_stretches_.load(std::memory_order_relaxed);
  r.engine = engine_.stats();
  const double started = started_seconds_.load();
  if (started > 0.0) {
    r.uptime_seconds = util::wall_seconds() - started;
    if (r.uptime_seconds > 0.0) {
      r.decisions_per_second = static_cast<double>(r.decisions) / r.uptime_seconds;
    }
  }
  return r;
}

std::string ProvisioningService::metrics_text() const {
  // Live gauges (queue depth, shard sessions, reject rate) refresh on the
  // sweeper tick; refreshing here too keeps sweeper-less configurations
  // current. They are emitted by the registry dump below, NOT by the
  // explicit block — each family must carry exactly one TYPE line.
  refresh_gauges();
  const ServiceReport r = report();
  std::string out;
  out.reserve(1 << 12);
  char line[160];
  const auto emit = [&](const char* name, const char* help, const char* type, double value) {
    out += "# HELP ";
    out += name;
    out += ' ';
    out += help;
    out += "\n# TYPE ";
    out += name;
    out += ' ';
    out += type;
    out += '\n';
    std::snprintf(line, sizeof(line), "%s %.17g\n", name, value);
    out += line;
  };
  emit("mirage_serve_open_sessions", "currently open sessions", "gauge",
       static_cast<double>(r.open_sessions));
  emit("mirage_serve_session_shards", "session table shard count", "gauge",
       static_cast<double>(r.shards));
  emit("mirage_serve_sessions_total", "sessions opened since start", "counter",
       static_cast<double>(r.total_sessions));
  emit("mirage_serve_decisions_total", "decisions served", "counter",
       static_cast<double>(r.decisions));
  emit("mirage_serve_submits_total", "decisions that said submit", "counter",
       static_cast<double>(r.submits));
  emit("mirage_serve_evictions_total", "sessions evicted by the idle TTL", "counter",
       static_cast<double>(r.evictions));
  emit("mirage_serve_rejected_backpressure_total",
       "decision requests rejected by engine backpressure", "counter",
       static_cast<double>(r.engine.rejected));
  emit("mirage_serve_requests_total", "engine requests served", "counter",
       static_cast<double>(r.engine.requests));
  emit("mirage_serve_ticks_total", "engine batch ticks", "counter",
       static_cast<double>(r.engine.ticks));
  emit("mirage_serve_mean_batch", "mean batch size", "gauge", r.engine.mean_batch);
  emit("mirage_serve_busy_seconds", "engine busy time", "counter", r.engine.busy_seconds);
  emit("mirage_serve_uptime_seconds", "seconds since start()", "gauge", r.uptime_seconds);
  // Latency as a Prometheus summary (exact reservoir quantiles, seconds).
  out += "# HELP mirage_serve_latency_seconds request latency (reservoir quantiles)\n";
  out += "# TYPE mirage_serve_latency_seconds summary\n";
  const auto quantile = [&](const char* q, double ms) {
    std::snprintf(line, sizeof(line), "mirage_serve_latency_seconds{quantile=\"%s\"} %.17g\n", q,
                  ms * 1e-3);
    out += line;
  };
  quantile("0.5", r.engine.latency.p50_ms);
  quantile("0.95", r.engine.latency.p95_ms);
  quantile("0.99", r.engine.latency.p99_ms);
  quantile("0.999", r.engine.latency.p999_ms);
  std::snprintf(line, sizeof(line), "mirage_serve_latency_seconds_sum %.17g\n",
                r.engine.latency.mean_ms * 1e-3 * static_cast<double>(r.engine.latency.count));
  out += line;
  // The count is size_t-typed today but printed via a fixed-width cast:
  // %zu would silently mismatch if the counter ever widens to uint64_t on
  // an ILP32 target, and PRIu64 keeps the format portable either way.
  std::snprintf(line, sizeof(line), "mirage_serve_latency_seconds_count %" PRIu64 "\n",
                static_cast<std::uint64_t>(r.engine.latency.count));
  out += line;
  // Process-wide instruments (span histograms, scenario/serve counters).
  out += obs::registry().to_prometheus();
  return out;
}

std::string ProvisioningService::health_text() const {
  std::string out;
  out.reserve(512);
  out += "# mirage serve health\n";
  if (!slos_configured_.load(std::memory_order_acquire)) {
    out += "status: unconfigured\n";
  } else {
    out += slos_.health_text();
  }
  const ServiceReport r = report();
  char line[128];
  std::snprintf(line, sizeof(line), "uptime_seconds: %.3f\n", r.uptime_seconds);
  out += line;
  std::snprintf(line, sizeof(line), "open_sessions: %llu\n",
                static_cast<unsigned long long>(r.open_sessions));
  out += line;
  std::snprintf(line, sizeof(line), "queue_depth: %llu\n",
                static_cast<unsigned long long>(engine_.queue_depth()));
  out += line;
  std::snprintf(line, sizeof(line), "rejected_total: %llu\n",
                static_cast<unsigned long long>(r.engine.rejected));
  out += line;
  return out;
}

std::vector<obs::SloStatus> ProvisioningService::slo_statuses() const {
  if (!slos_configured_.load(std::memory_order_acquire)) return {};
  return slos_.statuses();
}

}  // namespace mirage::serve

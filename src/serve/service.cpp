#include "serve/service.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "util/time_utils.hpp"

namespace mirage::serve {

ProvisioningService::ProvisioningService(const ModelRegistry& registry, ModelKey key,
                                         ServiceConfig config)
    : config_(config), engine_(registry, std::move(key), config.engine) {}

ProvisioningService::ProvisioningService(ModelSnapshot model, ServiceConfig config)
    : config_(config), engine_([model = std::move(model)] { return model; }, config.engine) {}

ProvisioningService::~ProvisioningService() { drain_and_stop(); }

void ProvisioningService::start() {
  double expected = 0.0;
  started_seconds_.compare_exchange_strong(expected, util::wall_seconds());
  engine_.start();
}

void ProvisioningService::drain_and_stop() { engine_.drain(); }

SessionId ProvisioningService::open_session() {
  std::unique_lock lock(sessions_mutex_);
  const SessionId id = next_session_++;
  sessions_.emplace(id, std::make_shared<Session>(config_.history_len,
                                                  std::max<std::size_t>(1, config_.partition_count)));
  ++total_sessions_;
  return id;
}

void ProvisioningService::close_session(SessionId id) {
  std::unique_lock lock(sessions_mutex_);
  sessions_.erase(id);
}

std::shared_ptr<ProvisioningService::Session> ProvisioningService::find_session(
    SessionId id) const {
  std::shared_lock lock(sessions_mutex_);
  const auto it = sessions_.find(id);
  if (it == sessions_.end()) {
    throw std::out_of_range("ProvisioningService: unknown session " + std::to_string(id));
  }
  return it->second;
}

void ProvisioningService::observe(SessionId id, const sim::StateSample& sample,
                                  const rl::JobPairContext& ctx) {
  const auto session = find_session(id);
  std::lock_guard<std::mutex> lock(session->mutex);
  session->encoder.push(sample, ctx);
}

std::future<Decision> ProvisioningService::decide_async(SessionId id) {
  const auto session = find_session(id);
  std::vector<float> observation;
  {
    std::lock_guard<std::mutex> lock(session->mutex);
    observation = session->encoder.flatten(0.0f);
    ++session->decisions;
  }
  return engine_.submit(std::move(observation), [this](const Decision& d) {
    std::lock_guard<std::mutex> lock(counters_mutex_);
    ++decisions_;
    submits_ += (d.action == 1);
  });
}

Decision ProvisioningService::decide(SessionId id) { return decide_async(id).get(); }

std::vector<float> ProvisioningService::session_history(SessionId id) const {
  const auto session = find_session(id);
  std::lock_guard<std::mutex> lock(session->mutex);
  return session->encoder.flatten(0.0f);
}

std::size_t ProvisioningService::session_frames_seen(SessionId id) const {
  const auto session = find_session(id);
  std::lock_guard<std::mutex> lock(session->mutex);
  return session->encoder.frames_seen();
}

std::size_t ProvisioningService::session_count() const {
  std::shared_lock lock(sessions_mutex_);
  return sessions_.size();
}

ServiceReport ProvisioningService::report() const {
  ServiceReport r;
  {
    std::shared_lock lock(sessions_mutex_);
    r.open_sessions = sessions_.size();
    r.total_sessions = total_sessions_;
  }
  {
    std::lock_guard<std::mutex> lock(counters_mutex_);
    r.decisions = decisions_;
    r.submits = submits_;
  }
  r.engine = engine_.stats();
  const double started = started_seconds_.load();
  if (started > 0.0) {
    r.uptime_seconds = util::wall_seconds() - started;
    if (r.uptime_seconds > 0.0) {
      r.decisions_per_second = static_cast<double>(r.decisions) / r.uptime_seconds;
    }
  }
  return r;
}

std::string ProvisioningService::metrics_text() const {
  const ServiceReport r = report();
  std::string out;
  out.reserve(1 << 12);
  char line[160];
  const auto emit = [&](const char* name, const char* help, const char* type, double value) {
    out += "# HELP ";
    out += name;
    out += ' ';
    out += help;
    out += "\n# TYPE ";
    out += name;
    out += ' ';
    out += type;
    out += '\n';
    std::snprintf(line, sizeof(line), "%s %.17g\n", name, value);
    out += line;
  };
  emit("mirage_serve_open_sessions", "currently open sessions", "gauge",
       static_cast<double>(r.open_sessions));
  emit("mirage_serve_sessions_total", "sessions opened since start", "counter",
       static_cast<double>(r.total_sessions));
  emit("mirage_serve_decisions_total", "decisions served", "counter",
       static_cast<double>(r.decisions));
  emit("mirage_serve_submits_total", "decisions that said submit", "counter",
       static_cast<double>(r.submits));
  emit("mirage_serve_requests_total", "engine requests served", "counter",
       static_cast<double>(r.engine.requests));
  emit("mirage_serve_ticks_total", "engine batch ticks", "counter",
       static_cast<double>(r.engine.ticks));
  emit("mirage_serve_mean_batch", "mean batch size", "gauge", r.engine.mean_batch);
  emit("mirage_serve_busy_seconds", "engine busy time", "counter", r.engine.busy_seconds);
  emit("mirage_serve_uptime_seconds", "seconds since start()", "gauge", r.uptime_seconds);
  // Latency as a Prometheus summary (exact reservoir quantiles, seconds).
  out += "# HELP mirage_serve_latency_seconds request latency (reservoir quantiles)\n";
  out += "# TYPE mirage_serve_latency_seconds summary\n";
  const auto quantile = [&](const char* q, double ms) {
    std::snprintf(line, sizeof(line), "mirage_serve_latency_seconds{quantile=\"%s\"} %.17g\n", q,
                  ms * 1e-3);
    out += line;
  };
  quantile("0.5", r.engine.latency.p50_ms);
  quantile("0.95", r.engine.latency.p95_ms);
  quantile("0.99", r.engine.latency.p99_ms);
  std::snprintf(line, sizeof(line), "mirage_serve_latency_seconds_sum %.17g\n",
                r.engine.latency.mean_ms * 1e-3 * static_cast<double>(r.engine.latency.count));
  out += line;
  std::snprintf(line, sizeof(line), "mirage_serve_latency_seconds_count %zu\n",
                r.engine.latency.count);
  out += line;
  // Process-wide instruments (span histograms, scenario/serve counters).
  out += obs::registry().to_prometheus();
  return out;
}

}  // namespace mirage::serve

// Batched decision engine: coalesces per-session "submit now or wait?"
// requests into one [B, k*(m+1)] tensor and runs a single batched
// Foundation forward per tick. Every current offline caller serves at
// B=1 (two rows per Q-pair); amortizing layer temporaries, GEMM setup and
// the model lock over whole batches is the headline throughput win
// (measured by bench_serve_throughput).
//
// The request queue is a BOUNDED preallocated ring (EngineConfig::
// max_queue): when the inference engine saturates, new submissions are
// rejected with BackpressureRejected and counted in EngineStats::rejected
// instead of growing the heap without limit — admission control, not an
// allocation storm. Two submission paths share the ring:
//
//   submit()          future-based async path (allocates the promise's
//                     shared state per request — the price of a future);
//   decide_blocking() pooled synchronous path: the observation buffer is
//                     swapped into a ring slot and the caller parks on a
//                     thread_local waiter, so a steady-state decision
//                     performs ZERO heap allocations end to end (audited
//                     by bench_serve_soak with a stub model);
//   submit_pooled()   pooled ASYNC path: instead of a promise/future pair
//                     the request borrows a recycled CompletionToken from
//                     the engine's token pool and hands back an
//                     AsyncDecision that waits on it — so pipelined async
//                     decides are also zero-allocation in steady state
//                     (audited by bench_serve_soak alongside the blocking
//                     path).
//
// The tick's forward executes on util::ThreadPool::global() so serving
// shares the process-wide compute pool with training/evaluation work; the
// engine's own thread only coalesces, dispatches and fulfills requests.
#pragma once

#include <chrono>
#include <condition_variable>
#include <functional>
#include <future>
#include <optional>
#include <thread>

#include "serve/metrics.hpp"
#include "serve/model_registry.hpp"
#include "util/stats.hpp"

namespace mirage::obs {
class Counter;
class Histogram;
}  // namespace mirage::obs

namespace mirage::serve {

/// Thrown (or carried by the future) when the bounded request queue is
/// full — the backpressure signal callers retry or shed load on.
struct BackpressureRejected : std::runtime_error {
  BackpressureRejected()
      : std::runtime_error("BatchedInferenceEngine: queue full, request rejected "
                           "(backpressure)") {}
};

struct EngineConfig {
  std::size_t max_batch = 64;
  /// After the first queued request, wait up to this long for more to
  /// coalesce before running the tick (0 = serve whatever is queued).
  std::chrono::microseconds coalesce_wait{200};
  /// Run each tick's forward on util::ThreadPool::global() (otherwise on
  /// the engine thread itself; useful under sanitizers or in benchmarks
  /// that want isolated timing).
  bool use_thread_pool = true;
  /// Bounded request queue: submissions past this depth are rejected with
  /// BackpressureRejected (admission control when the engine saturates).
  /// The ring is preallocated, so queueing never allocates. Clamped >= 1.
  std::size_t max_queue = 8192;
  /// GEMM threads for the tick's batched forward (nn::ScopedNumThreads
  /// around infer_into). 0 = inherit the process-wide nn::set_num_threads
  /// default. Decisions are bitwise identical for every value — the
  /// parallel-GEMM determinism contract — so this trades latency against
  /// interference with co-resident training work, never results.
  std::size_t nn_threads = 0;
};

struct EngineStats {
  std::uint64_t requests = 0;      ///< fulfilled (including failed) requests
  std::uint64_t ticks = 0;         ///< batched forwards executed
  std::uint64_t rejected = 0;      ///< submissions refused by backpressure
  double mean_batch = 0.0;
  std::size_t max_batch = 0;
  double busy_seconds = 0.0;       ///< wall time spent inside forwards
  LatencySnapshot latency;         ///< submit() -> fulfilled (served only)
};

namespace detail {
/// Parking slot for one blocking decision; thread_local in the caller, so
/// it is reused forever and never allocated per request. The caller is
/// parked inside decide_blocking() for the slot's whole in-flight life,
/// which is what makes the thread_local lifetime safe.
struct BlockingWaiter {
  std::mutex mutex;
  std::condition_variable cv;
  bool done = false;
  Decision decision;
  std::exception_ptr error;
};

/// Recycled completion state for the pooled async path: plays the role of
/// a promise/future shared state, but lives in the engine's TokenPool and
/// circulates instead of being heap-allocated per call. The completion
/// callback is a raw function pointer plus context slots — assigning a
/// std::function here could allocate, which is exactly what this path
/// exists to avoid.
struct CompletionToken {
  std::mutex mutex;
  std::condition_variable cv;
  bool done = false;
  Decision decision;
  std::exception_ptr error;
  void (*on_complete)(void*, void*, void*, std::uint64_t, const Decision&) = nullptr;
  void* ctx_a = nullptr;
  void* ctx_b = nullptr;
  void* ctx_c = nullptr;
  std::uint64_t ctx_id = 0;
  /// Keeps the callback's referents alive while the request is in flight
  /// (a shared_ptr copy is a refcount bump, not an allocation).
  std::shared_ptr<void> keepalive;
};

/// Freelist of CompletionTokens. Tokens are created on demand (cold
/// start) and recycled forever after; `created()` is the audit hook — in
/// a warmed steady state it must stop growing.
class TokenPool {
 public:
  ~TokenPool();
  TokenPool() = default;
  TokenPool(const TokenPool&) = delete;
  TokenPool& operator=(const TokenPool&) = delete;

  CompletionToken* acquire();
  void release(CompletionToken* token);
  std::size_t created() const;

 private:
  mutable std::mutex mutex_;
  std::vector<CompletionToken*> free_;
  std::size_t created_ = 0;
};
}  // namespace detail

/// Move-only handle to one pooled async decision. get() blocks until the
/// batch containing the request runs, rethrows the batch's failure, and
/// returns the token to the pool; an abandoned (destroyed un-got) handle
/// waits for completion first, so a token is never recycled while the
/// engine might still touch it. Must not outlive the engine it came from.
class AsyncDecision {
 public:
  AsyncDecision() = default;
  AsyncDecision(AsyncDecision&& other) noexcept;
  AsyncDecision& operator=(AsyncDecision&& other) noexcept;
  ~AsyncDecision();
  AsyncDecision(const AsyncDecision&) = delete;
  AsyncDecision& operator=(const AsyncDecision&) = delete;

  bool valid() const { return token_ != nullptr; }
  /// Wait, rethrow on failure, release the token. Single-shot.
  Decision get();

 private:
  friend class BatchedInferenceEngine;
  AsyncDecision(detail::CompletionToken* token, detail::TokenPool* pool)
      : token_(token), pool_(pool) {}
  void abandon();

  detail::CompletionToken* token_ = nullptr;
  detail::TokenPool* pool_ = nullptr;
};

class BatchedInferenceEngine {
 public:
  /// Resolve the serving model once per tick — a hot-reloaded registry
  /// entry is picked up at the next tick boundary while in-flight batches
  /// keep their snapshot.
  using ModelResolver = std::function<ModelSnapshot()>;

  BatchedInferenceEngine(ModelResolver resolver, EngineConfig config = {});
  /// Convenience: serve one registry key. The registry must outlive the
  /// engine.
  BatchedInferenceEngine(const ModelRegistry& registry, ModelKey key, EngineConfig config = {});
  ~BatchedInferenceEngine();

  BatchedInferenceEngine(const BatchedInferenceEngine&) = delete;
  BatchedInferenceEngine& operator=(const BatchedInferenceEngine&) = delete;

  /// Launch the engine thread (idempotent).
  void start();

  /// Enqueue one observation (flattened [k*(m+1)], action channel
  /// ignored). The future resolves after the batch containing it runs;
  /// it carries an exception if the engine is draining, the queue is full
  /// (BackpressureRejected) or no model resolves. `on_complete`, when
  /// set, runs on the engine thread right before the promise is fulfilled
  /// (successful decisions only — a drained or failed request is never
  /// counted as served) — the service uses it for per-shard accounting on
  /// the async path. `request_id`, when nonzero, threads the caller's
  /// journey id through the ring: enqueue/complete trace events and the
  /// latency histogram's exemplar carry it (ISSUE 8 request-journey
  /// tracing).
  std::future<Decision> submit(std::vector<float> observation,
                               std::function<void(const Decision&)> on_complete = nullptr,
                               std::uint64_t request_id = 0);

  /// Outcome of a non-throwing blocking decision.
  enum class SubmitResult { kOk, kRejectedBackpressure, kDraining };

  /// Pooled synchronous path: swap `observation` into a ring slot (the
  /// caller gets the displaced buffer back for reuse — capacities
  /// circulate, nothing is freed) and block until the batch containing it
  /// runs. Zero steady-state heap allocations. On kOk, `out` holds the
  /// decision; on rejection/drain the observation is swapped back
  /// untouched. A batch failure (no model, short decision vector, bad
  /// input dim) rethrows the batch's exception. Nonzero `request_id`
  /// threads the journey id exactly as in submit().
  SubmitResult try_decide_blocking(std::vector<float>& observation, Decision& out,
                                   std::uint64_t request_id = 0);

  /// Throwing convenience over try_decide_blocking: BackpressureRejected
  /// on a full queue, std::runtime_error when draining.
  Decision decide_blocking(std::vector<float>& observation, std::uint64_t request_id = 0);

  /// Completion context for submit_pooled. `fn` runs on the engine thread
  /// for successfully served decisions only (same contract as submit()'s
  /// on_complete), with the three context pointers and id passed through;
  /// `keepalive` pins whatever the pointers reference until the request
  /// resolves.
  struct PooledCompletion {
    void (*fn)(void*, void*, void*, std::uint64_t, const Decision&) = nullptr;
    void* ctx_a = nullptr;
    void* ctx_b = nullptr;
    void* ctx_c = nullptr;
    std::uint64_t ctx_id = 0;
    std::shared_ptr<void> keepalive;
  };

  /// Pooled async path: like try_decide_blocking (observation swapped into
  /// a ring slot, zero steady-state allocations) but returns immediately
  /// with `out` waiting on a recycled CompletionToken instead of parking
  /// the caller. On rejection/drain `out` is untouched and the token goes
  /// straight back to the pool.
  SubmitResult submit_pooled(std::vector<float>& observation, AsyncDecision& out,
                             PooledCompletion completion, std::uint64_t request_id = 0);
  SubmitResult submit_pooled(std::vector<float>& observation, AsyncDecision& out) {
    return submit_pooled(observation, out, PooledCompletion());
  }

  /// Completion tokens ever created (the pooled-async allocation audit:
  /// flat in a warmed steady state).
  std::size_t tokens_created() const { return token_pool_.created(); }

  /// Graceful drain: reject new requests, serve everything queued, then
  /// stop the engine thread (idempotent).
  void drain();

  bool accepting() const;
  std::size_t queue_depth() const;
  EngineStats stats() const;

 private:
  /// One ring slot / in-flight request. Exactly one of {promise, waiter,
  /// token} is set: promise for the future path, waiter for the blocking
  /// path, token for the pooled async path.
  struct Request {
    std::vector<float> observation;  ///< buffer owned by the slot, reused
    std::optional<std::promise<Decision>> promise;
    std::function<void(const Decision&)> on_complete;
    detail::BlockingWaiter* waiter = nullptr;
    detail::CompletionToken* token = nullptr;
    double enqueue_seconds = 0.0;
    std::uint64_t request_id = 0;    ///< journey id (0 = untraced caller)
  };

  void run();
  void serve_batch(std::size_t take);
  /// Deliver one fulfilled request (engine thread). Success runs
  /// on_complete then resolves; failure resolves with `failure`.
  void fulfill(Request& req, const Decision* decision, const std::exception_ptr& failure);
  /// Reserve the next ring slot or report why not (caller holds mutex_).
  Request* reserve_slot_locked();

  ModelResolver resolver_;
  EngineConfig config_;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::vector<Request> ring_;      ///< bounded queue, preallocated
  std::size_t head_ = 0;           ///< oldest queued request
  std::size_t queued_ = 0;         ///< live entries in the ring
  bool draining_ = false;
  bool started_ = false;
  std::thread worker_;
  std::atomic<std::uint64_t> rejected_{0};
  detail::TokenPool token_pool_;   ///< recycled completion tokens (async path)

  // Engine-thread tick scratch (no locks needed): extracted requests and
  // the reusable observation/decision buffers for the batched forward.
  std::uint64_t tick_seq_ = 0;                     ///< engine-thread tick id
  std::vector<Request> batch_;                     ///< metadata, <= max_batch
  std::vector<std::vector<float>> observations_;   ///< rows for infer_into
  std::vector<std::vector<float>> row_pool_;       ///< spare row capacities
  std::vector<Decision> decisions_;

  // Stats (guarded by stats_mutex_ so snapshots don't contend with the
  // request path).
  mutable std::mutex stats_mutex_;
  std::uint64_t requests_ = 0;
  std::uint64_t ticks_ = 0;
  std::uint64_t batch_sum_ = 0;
  std::size_t batch_max_ = 0;
  double busy_seconds_ = 0.0;
  LatencyRecorder latency_;
};

/// Process-wide decision-latency histogram
/// ("mirage_serve_decision_latency_seconds"): exponential buckets with
/// EXEMPLARS — each bucket remembers the last request id that landed in
/// it, so a p99.9 reading links back to one concrete journey in the trace
/// ring. Every engine records served decisions here; the serve SLO
/// engine's latency objective reads it.
obs::Histogram& decision_latency_histogram();

/// Process-wide served-decision counter ("mirage_serve_engine_served_total"),
/// the "good" leg of the reject-rate SLO (its "bad" leg is
/// "mirage_serve_engine_rejected_total").
obs::Counter& engine_served_counter();

/// The rejected-submission counter behind "mirage_serve_engine_rejected_total".
obs::Counter& engine_rejected_counter();

}  // namespace mirage::serve

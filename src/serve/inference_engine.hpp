// Batched decision engine: coalesces per-session "submit now or wait?"
// requests into one [B, k*(m+1)] tensor and runs a single batched
// Foundation forward per tick. Every current offline caller serves at
// B=1 (two rows per Q-pair); amortizing layer temporaries, GEMM setup and
// the model lock over whole batches is the headline throughput win
// (measured by bench_serve_throughput).
//
// The tick's forward executes on util::ThreadPool::global() so serving
// shares the process-wide compute pool with training/evaluation work; the
// engine's own thread only coalesces, dispatches and fulfills promises.
#pragma once

#include <chrono>
#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <thread>

#include "serve/metrics.hpp"
#include "serve/model_registry.hpp"
#include "util/stats.hpp"

namespace mirage::serve {

struct EngineConfig {
  std::size_t max_batch = 64;
  /// After the first queued request, wait up to this long for more to
  /// coalesce before running the tick (0 = serve whatever is queued).
  std::chrono::microseconds coalesce_wait{200};
  /// Run each tick's forward on util::ThreadPool::global() (otherwise on
  /// the engine thread itself; useful under sanitizers or in benchmarks
  /// that want isolated timing).
  bool use_thread_pool = true;
};

struct EngineStats {
  std::uint64_t requests = 0;      ///< fulfilled (including failed) requests
  std::uint64_t ticks = 0;         ///< batched forwards executed
  double mean_batch = 0.0;
  std::size_t max_batch = 0;
  double busy_seconds = 0.0;       ///< wall time spent inside forwards
  LatencySnapshot latency;         ///< submit() -> promise fulfilled
};

class BatchedInferenceEngine {
 public:
  /// Resolve the serving model once per tick — a hot-reloaded registry
  /// entry is picked up at the next tick boundary while in-flight batches
  /// keep their snapshot.
  using ModelResolver = std::function<ModelSnapshot()>;

  BatchedInferenceEngine(ModelResolver resolver, EngineConfig config = {});
  /// Convenience: serve one registry key. The registry must outlive the
  /// engine.
  BatchedInferenceEngine(const ModelRegistry& registry, ModelKey key, EngineConfig config = {});
  ~BatchedInferenceEngine();

  BatchedInferenceEngine(const BatchedInferenceEngine&) = delete;
  BatchedInferenceEngine& operator=(const BatchedInferenceEngine&) = delete;

  /// Launch the engine thread (idempotent).
  void start();

  /// Enqueue one observation (flattened [k*(m+1)], action channel
  /// ignored). The future resolves after the batch containing it runs;
  /// it carries an exception if the engine is draining or no model
  /// resolves. `on_complete`, when set, runs on the engine thread right
  /// before the promise is fulfilled (successful decisions only) — the
  /// service uses it for per-session accounting on the async path.
  std::future<Decision> submit(std::vector<float> observation,
                               std::function<void(const Decision&)> on_complete = nullptr);

  /// Graceful drain: reject new requests, serve everything queued, then
  /// stop the engine thread (idempotent).
  void drain();

  bool accepting() const;
  EngineStats stats() const;

 private:
  struct Request {
    std::vector<float> observation;
    std::promise<Decision> promise;
    std::function<void(const Decision&)> on_complete;
    double enqueue_seconds = 0.0;
  };

  void run();
  void serve_batch(std::vector<Request>& batch);

  ModelResolver resolver_;
  EngineConfig config_;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<Request> queue_;
  bool draining_ = false;
  bool started_ = false;
  std::thread worker_;

  // Stats (guarded by stats_mutex_ so snapshots don't contend with the
  // request path).
  mutable std::mutex stats_mutex_;
  std::uint64_t requests_ = 0;
  std::uint64_t ticks_ = 0;
  std::uint64_t batch_sum_ = 0;
  std::size_t batch_max_ = 0;
  double busy_seconds_ = 0.0;
  LatencyRecorder latency_;
};

}  // namespace mirage::serve

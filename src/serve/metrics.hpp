// Serving-side latency/throughput metrics. Latencies are kept in a
// bounded reservoir so a service that answers millions of requests keeps
// O(1) memory while p50/p95/p99 stay representative of the full run.
#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

namespace mirage::serve {

struct LatencySnapshot {
  std::size_t count = 0;  ///< total recorded (not just retained) samples
  double mean_ms = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  double max_ms = 0.0;
};

/// Thread-safe latency accumulator with reservoir sampling past `capacity`.
class LatencyRecorder {
 public:
  explicit LatencyRecorder(std::size_t capacity = 1 << 16);

  void record_seconds(double seconds);
  LatencySnapshot snapshot() const;
  void reset();

 private:
  mutable std::mutex mutex_;
  std::size_t capacity_;
  std::size_t count_ = 0;
  double sum_ms_ = 0.0;
  double max_ms_ = 0.0;
  std::uint64_t rng_state_ = 0x9e3779b97f4a7c15ull;  ///< reservoir replacement
  std::vector<double> samples_ms_;
};

}  // namespace mirage::serve

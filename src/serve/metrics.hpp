// Serving-side latency metrics, backed by the unified observability
// layer: LatencyRecorder is a millisecond-unit view over
// obs::ReservoirHistogram (bounded reservoir, exact p50/p95/p99 over the
// retained sample, O(1) memory for unbounded request streams). The
// snapshot shape predates src/obs/ and is kept for the serving API;
// the accumulator itself lives in obs so serve, bench and tests share
// one implementation.
#pragma once

#include <cstddef>

#include "obs/metrics.hpp"

namespace mirage::serve {

struct LatencySnapshot {
  std::size_t count = 0;  ///< total recorded (not just retained) samples
  double mean_ms = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  double p999_ms = 0.0;
  double max_ms = 0.0;
};

/// Thread-safe latency accumulator with reservoir sampling past `capacity`.
class LatencyRecorder {
 public:
  explicit LatencyRecorder(std::size_t capacity = 1 << 16) : reservoir_(capacity) {}

  void record_seconds(double seconds) { reservoir_.record(seconds * 1e3); }

  LatencySnapshot snapshot() const {
    const obs::ReservoirSnapshot s = reservoir_.snapshot();
    LatencySnapshot out;
    out.count = s.count;
    out.mean_ms = s.mean;
    out.p50_ms = s.p50;
    out.p95_ms = s.p95;
    out.p99_ms = s.p99;
    out.p999_ms = s.p999;
    out.max_ms = s.max;
    return out;
  }

  void reset() { reservoir_.reset(); }

 private:
  obs::ReservoirHistogram reservoir_;  ///< samples in milliseconds
};

}  // namespace mirage::serve

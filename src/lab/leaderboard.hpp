// Cross-cell result aggregation for the lab. A JobResult is the scored
// outcome of one (cell, method) job — provisioning interruption/overlap
// from the evaluator plus method-independent cell context (queue wait,
// utilization, load class) from the scenario simulator. A Leaderboard
// groups rows per method into standings: mean/worst-case wait, overlap,
// zero-interruption fraction, and the robustness-under-events spread
// (eventful-cell mean minus calm-cell mean).
//
// Every field is double-exact: rows recovered from artifact manifests are
// bitwise equal to freshly computed ones, so a resumed run's leaderboard
// compares == against an uninterrupted run's.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace mirage::lab {

struct JobResult {
  std::size_t cell_index = 0;
  std::string cell;                ///< expanded cell name
  std::string cluster;             ///< preset name (promotion target key)
  std::uint64_t seed = 0;          ///< the cell's pre-assigned seed
  std::string method;              ///< display name (core::method_name)
  bool eventful = false;           ///< cell carries scenario events
  std::size_t episodes = 0;        ///< validation anchors evaluated

  // Provisioning quality on the cell's validation range.
  double mean_interruption_h = 0.0;
  double max_interruption_h = 0.0;
  double mean_overlap_h = 0.0;
  double zero_fraction = 0.0;      ///< episodes with zero interruption

  // Method-independent cell context (reactive background schedule).
  double cell_mean_wait_h = 0.0;
  double cell_p95_wait_h = 0.0;
  double cell_utilization = 0.0;
  std::string cell_load;           ///< heavy | medium | light
  std::size_t cell_killed = 0;     ///< jobs killed by outage events
  std::size_t cell_preempted = 0;  ///< jobs checkpointed/requeued
  /// Per-partition "name:killed:preempted" split, ';'-joined (the
  /// ScenarioResult::partition_counts_text encoding) — lets the
  /// leaderboard agree with per-partition traces on multi-pool cells.
  std::string cell_partition_counts;

  std::string checkpoint;          ///< artifact-relative ckpt name ("" = none)
  bool resumed = false;            ///< loaded from an artifact, not computed

  /// Bitwise value equality; `resumed` (provenance, not value) excluded.
  bool operator==(const JobResult& o) const;
};

struct MethodStanding {
  std::string method;
  std::size_t cells = 0;
  std::size_t episodes = 0;
  double mean_wait_h = 0.0;        ///< mean over cells of mean interruption
  double worst_wait_h = 0.0;       ///< worst per-cell mean interruption
  double mean_overlap_h = 0.0;
  double zero_fraction = 0.0;      ///< episode-weighted
  double eventful_wait_h = 0.0;    ///< mean over event-bearing cells
  double calm_wait_h = 0.0;        ///< mean over event-free cells
  double robustness_spread_h = 0.0;  ///< eventful - calm (0 if one side empty)
  bool has_checkpoint = false;     ///< at least one row persisted an agent

  bool operator==(const MethodStanding& o) const = default;
};

struct Leaderboard {
  std::vector<JobResult> rows;            ///< job order (cell-major)
  std::vector<MethodStanding> standings;  ///< sorted best (lowest wait) first

  /// Aggregate rows into standings (rows are stored as given).
  static Leaderboard build(std::vector<JobResult> rows);

  /// Best standing; with require_checkpoint, best method that persisted at
  /// least one agent artifact (the promotion candidate). nullptr if none.
  const MethodStanding* best(bool require_checkpoint = false) const;

  /// Per-job rows as CSV (names escaped via util::csv).
  std::string to_csv() const;
  /// Per-method standings as CSV.
  std::string standings_csv() const;
  /// Human-readable report: rows then standings.
  std::string format_table() const;

  bool operator==(const Leaderboard& o) const;
};

}  // namespace mirage::lab

#include "lab/artifact_store.hpp"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>

#include "util/strconv.hpp"

namespace mirage::lab {

namespace fs = std::filesystem;

namespace {

using util::format_double_exact;
using util::parse_f64;
using util::parse_u64;

std::string hash_hex(std::uint64_t h) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(h));
  return buf;
}

bool fail(std::string* error, const std::string& message) {
  if (error) *error = message;
  return false;
}

/// Minimal manifest parser: first-'=' split, full-line '#' comments only —
/// values (cell names) may legally contain '#' or '='.
std::map<std::string, std::string> parse_manifest(std::istream& in) {
  std::map<std::string, std::string> kv;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    const auto eq = line.find('=');
    if (eq == std::string::npos) continue;
    kv[line.substr(0, eq)] = line.substr(eq + 1);
  }
  return kv;
}

// ---- run journal records --------------------------------------------------
// Binary WAL records; RecordReader bounds-checks every field on replay, so
// a foreign or truncated record is rejected, never mis-parsed.
constexpr std::uint8_t kRecJobComplete = 1;  ///< u32 manifest_len|bytes|u32 ckpt_len|bytes
constexpr std::uint8_t kRecLeaderboard = 2;  ///< u32 csv_len|bytes

const char* kJournalDirName = "journal";

}  // namespace

fs::path ArtifactStore::dir_for(const ExperimentPlan& plan, std::uint64_t plan_hash) const {
  return fs::path(root_) / (plan.name + "__" + hash_hex(plan_hash));
}

std::string ArtifactStore::run_dir(const ExperimentPlan& plan) const {
  return dir_for(plan, plan.hash()).string();
}

bool ArtifactStore::init_run(const ExperimentPlan& plan, std::string* error) {
  // parse_plan rejects these; guard programmatically-built plans too — a
  // name with a separator or ".." would write artifacts outside the root.
  if (plan.name.empty() || plan.name.find('/') != std::string::npos ||
      plan.name.find('\\') != std::string::npos || plan.name.find("..") != std::string::npos) {
    return fail(error, "plan name must be a plain path component: '" + plan.name + "'");
  }
  std::error_code ec;
  const fs::path dir = run_dir(plan);
  fs::create_directories(dir, ec);
  if (ec) return fail(error, "cannot create run dir " + dir.string() + ": " + ec.message());
  const fs::path plan_file = dir / "plan.txt";
  if (!fs::exists(plan_file)) {
    std::ofstream out(plan_file);
    if (!out || !(out << plan.to_text())) {
      return fail(error, "cannot write " + plan_file.string());
    }
  }
  if (options_.journal && !recover_run(dir, error)) return false;
  return true;
}

bool ArtifactStore::recover_run(const fs::path& dir, std::string* error) {
  recovery_ = RunRecovery{};
  const fs::path journal_dir = dir / kJournalDirName;

  util::wal::RecoveryInfo info;
  const auto replay = [this](const void* data, std::size_t size) {
    util::wal::RecordReader r(data, size);
    switch (r.u8()) {
      case kRecJobComplete: {
        r.str(r.u32());  // manifest name
        r.str(r.u32());  // checkpoint name ("" for non-checkpointable)
        if (r.ok) ++recovery_.journaled_jobs;
        break;
      }
      case kRecLeaderboard: {
        std::string csv = r.str(r.u32());
        if (r.ok) {
          ++recovery_.leaderboard_snapshots;
          recovery_.last_leaderboard_csv = std::move(csv);
        }
        break;
      }
      default:
        break;  // unknown record type: skip (forward compatibility)
    }
  };
  std::string wal_error;
  if (!util::wal::recover(journal_dir.string(), replay, &info, &wal_error)) {
    return fail(error, "run journal recovery failed: " + wal_error);
  }
  recovery_.torn_tail = info.torn_tail;

  // Purge stranded partial artifacts: a kill -9 can leave a *.tmp mid-write
  // or a committed checkpoint whose manifest never landed (run_cell renames
  // the checkpoint BEFORE the manifest commit). Both would otherwise sit in
  // the run dir forever; neither is resumable. Manifested checkpoints are
  // the ones to keep — the manifest is the commit point.
  std::set<std::string> referenced;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    if (name.size() < 9 || name.substr(name.size() - 9) != ".manifest") continue;
    std::ifstream in(entry.path());
    if (!in) continue;
    const auto kv = parse_manifest(in);
    const auto status = kv.find("status");
    const auto ckpt = kv.find("checkpoint");
    if (status != kv.end() && status->second == "complete" && ckpt != kv.end() &&
        !ckpt->second.empty()) {
      referenced.insert(ckpt->second);
    }
  }
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    const bool stranded_tmp = name.size() > 4 && name.substr(name.size() - 4) == ".tmp";
    const bool orphan_ckpt = name.size() > 5 && name.substr(name.size() - 5) == ".ckpt" &&
                             referenced.find(name) == referenced.end();
    if (stranded_tmp || orphan_ckpt) {
      std::error_code rm_ec;
      fs::remove(entry.path(), rm_ec);
      if (!rm_ec) ++recovery_.stranded_removed;
    }
  }

  std::lock_guard<std::mutex> lock(journal_mutex_);
  if (!journal_.open(journal_dir.string(), options_.wal, &wal_error)) {
    return fail(error, "cannot open run journal: " + wal_error);
  }
  return true;
}

bool ArtifactStore::journal_record(const fs::path& run_dir, const util::wal::Chunk* chunks,
                                   std::size_t count, std::string* error) {
  const fs::path journal_dir = run_dir / kJournalDirName;
  std::lock_guard<std::mutex> lock(journal_mutex_);
  // One store can serve several plans; reopen if a different run's journal
  // is current (rare — init_run normally opened the right one already).
  if (!journal_.is_open() || journal_.dir() != journal_dir.string()) {
    std::string wal_error;
    if (!journal_.open(journal_dir.string(), options_.wal, &wal_error)) {
      return fail(error, "cannot open run journal: " + wal_error);
    }
  }
  std::string wal_error;
  if (!journal_.append(chunks, count, &wal_error) || !journal_.commit(&wal_error)) {
    return fail(error, "run journal append failed: " + wal_error);
  }
  return true;
}

std::string ArtifactStore::manifest_path(const ExperimentPlan& plan, const LabJob& job) const {
  return (fs::path(run_dir(plan)) / (job.id() + ".manifest")).string();
}

std::string ArtifactStore::checkpoint_path(const ExperimentPlan& plan, const LabJob& job) const {
  return (fs::path(run_dir(plan)) / (job.id() + ".ckpt")).string();
}

std::optional<JobResult> ArtifactStore::load(const ExperimentPlan& plan, const LabJob& job,
                                             std::optional<std::uint64_t> plan_hash_hint) const {
  const std::uint64_t plan_hash = plan_hash_hint ? *plan_hash_hint : plan.hash();
  const fs::path dir = dir_for(plan, plan_hash);
  std::ifstream in(dir / (job.id() + ".manifest"));
  if (!in) return std::nullopt;
  const auto kv = parse_manifest(in);
  const auto get = [&kv](const char* key) -> std::string {
    const auto it = kv.find(key);
    return it == kv.end() ? std::string() : it->second;
  };

  // Identity checks: any mismatch means the artifact belongs to another
  // plan revision (or a different cell landed on this id) — recompute.
  if (get("status") != "complete") return std::nullopt;
  if (get("plan_hash") != hash_hex(plan_hash)) return std::nullopt;
  if (get("job") != job.id()) return std::nullopt;
  if (get("cell") != job.cell.name) return std::nullopt;
  if (get("method") != core::method_name(job.method)) return std::nullopt;
  std::uint64_t seed = 0;
  if (!parse_u64(get("seed"), seed) || seed != job.cell.seed) return std::nullopt;

  JobResult r;
  r.cell_index = job.cell_index;
  r.cell = job.cell.name;
  r.cluster = get("cluster");
  r.seed = seed;
  r.method = get("method");
  r.eventful = get("eventful") == "1";
  std::uint64_t episodes = 0;
  if (!parse_u64(get("episodes"), episodes)) return std::nullopt;
  r.episodes = episodes;
  if (!parse_f64(get("mean_interruption_h"), r.mean_interruption_h)) return std::nullopt;
  if (!parse_f64(get("max_interruption_h"), r.max_interruption_h)) return std::nullopt;
  if (!parse_f64(get("mean_overlap_h"), r.mean_overlap_h)) return std::nullopt;
  if (!parse_f64(get("zero_fraction"), r.zero_fraction)) return std::nullopt;
  if (!parse_f64(get("cell_mean_wait_h"), r.cell_mean_wait_h)) return std::nullopt;
  if (!parse_f64(get("cell_p95_wait_h"), r.cell_p95_wait_h)) return std::nullopt;
  if (!parse_f64(get("cell_utilization"), r.cell_utilization)) return std::nullopt;
  r.cell_load = get("cell_load");
  // Strict parse of the per-partition victim counts (added with src/obs/):
  // manifests written before these keys existed fail here and recompute —
  // a silent zero would disagree with the cell's traces.
  std::uint64_t cell_killed = 0;
  std::uint64_t cell_preempted = 0;
  if (!parse_u64(get("cell_killed"), cell_killed)) return std::nullopt;
  if (!parse_u64(get("cell_preempted"), cell_preempted)) return std::nullopt;
  r.cell_killed = cell_killed;
  r.cell_preempted = cell_preempted;
  if (kv.find("cell_partition_counts") == kv.end()) return std::nullopt;
  r.cell_partition_counts = get("cell_partition_counts");
  r.checkpoint = get("checkpoint");
  r.resumed = true;

  // A manifest that promises a checkpoint the filesystem lost is not
  // resumable — the promotion path would dangle.
  if (!r.checkpoint.empty()) {
    std::error_code ec;
    if (!fs::exists(dir / r.checkpoint, ec)) return std::nullopt;
  }
  return r;
}

bool ArtifactStore::save(const ExperimentPlan& plan, const LabJob& job, const JobResult& result,
                         std::string* error, std::optional<std::uint64_t> plan_hash_hint) {
  const std::uint64_t plan_hash = plan_hash_hint ? *plan_hash_hint : plan.hash();
  const fs::path manifest = dir_for(plan, plan_hash) / (job.id() + ".manifest");
  const fs::path tmp = manifest.string() + ".tmp";
  {
    std::ofstream out(tmp);
    if (!out) return fail(error, "cannot write " + tmp.string());
    out << "# mirage lab manifest\n";
    out << "plan_hash=" << hash_hex(plan_hash) << '\n';
    out << "job=" << job.id() << '\n';
    out << "cell=" << result.cell << '\n';
    out << "cluster=" << result.cluster << '\n';
    out << "seed=" << result.seed << '\n';
    out << "method=" << result.method << '\n';
    out << "eventful=" << (result.eventful ? 1 : 0) << '\n';
    out << "episodes=" << result.episodes << '\n';
    out << "mean_interruption_h=" << format_double_exact(result.mean_interruption_h) << '\n';
    out << "max_interruption_h=" << format_double_exact(result.max_interruption_h) << '\n';
    out << "mean_overlap_h=" << format_double_exact(result.mean_overlap_h) << '\n';
    out << "zero_fraction=" << format_double_exact(result.zero_fraction) << '\n';
    out << "cell_mean_wait_h=" << format_double_exact(result.cell_mean_wait_h) << '\n';
    out << "cell_p95_wait_h=" << format_double_exact(result.cell_p95_wait_h) << '\n';
    out << "cell_utilization=" << format_double_exact(result.cell_utilization) << '\n';
    out << "cell_load=" << result.cell_load << '\n';
    out << "cell_killed=" << result.cell_killed << '\n';
    out << "cell_preempted=" << result.cell_preempted << '\n';
    out << "cell_partition_counts=" << result.cell_partition_counts << '\n';
    out << "checkpoint=" << result.checkpoint << '\n';
    out << "status=complete\n";
    if (!out) return fail(error, "cannot write " + tmp.string());
  }
  // Harden the commit: fsync the temp file so its bytes are durable before
  // the rename publishes them, then fsync the directory so the rename
  // itself survives power loss — not merely process death.
  std::string io_error;
  if (!util::wal::fsync_path(tmp.string(), &io_error)) return fail(error, io_error);
  if (!util::wal::rename_durable(tmp.string(), manifest.string(), &io_error)) {
    return fail(error, "cannot commit " + manifest.string() + ": " + io_error);
  }

  if (options_.journal) {
    const std::string manifest_name = manifest.filename().string();
    std::uint8_t head[5], mid[4];
    head[0] = kRecJobComplete;
    util::wal::store_u32_le(head + 1, static_cast<std::uint32_t>(manifest_name.size()));
    util::wal::store_u32_le(mid, static_cast<std::uint32_t>(result.checkpoint.size()));
    const util::wal::Chunk chunks[] = {
        {head, sizeof(head)},
        {manifest_name.data(), manifest_name.size()},
        {mid, sizeof(mid)},
        {result.checkpoint.data(), result.checkpoint.size()},
    };
    if (!journal_record(manifest.parent_path(), chunks, 4, error)) return false;
  }
  return true;
}

bool ArtifactStore::snapshot_leaderboard(const ExperimentPlan& plan, const Leaderboard& leaderboard,
                                         std::string* error) {
  if (!options_.journal) return true;
  const std::string csv = leaderboard.to_csv();
  std::uint8_t head[5];
  head[0] = kRecLeaderboard;
  util::wal::store_u32_le(head + 1, static_cast<std::uint32_t>(csv.size()));
  const util::wal::Chunk chunks[] = {{head, sizeof(head)}, {csv.data(), csv.size()}};
  return journal_record(run_dir(plan), chunks, 2, error);
}

std::size_t ArtifactStore::count_complete(const ExperimentPlan& plan) const {
  std::size_t n = 0;
  for (const auto& job : expand_jobs(plan)) {
    if (load(plan, job)) ++n;
  }
  return n;
}

}  // namespace mirage::lab

#include "lab/artifact_store.hpp"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>

#include "util/strconv.hpp"

namespace mirage::lab {

namespace fs = std::filesystem;

namespace {

using util::format_double_exact;
using util::parse_f64;
using util::parse_u64;

std::string hash_hex(std::uint64_t h) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(h));
  return buf;
}

bool fail(std::string* error, const std::string& message) {
  if (error) *error = message;
  return false;
}

/// Minimal manifest parser: first-'=' split, full-line '#' comments only —
/// values (cell names) may legally contain '#' or '='.
std::map<std::string, std::string> parse_manifest(std::istream& in) {
  std::map<std::string, std::string> kv;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    const auto eq = line.find('=');
    if (eq == std::string::npos) continue;
    kv[line.substr(0, eq)] = line.substr(eq + 1);
  }
  return kv;
}

}  // namespace

fs::path ArtifactStore::dir_for(const ExperimentPlan& plan, std::uint64_t plan_hash) const {
  return fs::path(root_) / (plan.name + "__" + hash_hex(plan_hash));
}

std::string ArtifactStore::run_dir(const ExperimentPlan& plan) const {
  return dir_for(plan, plan.hash()).string();
}

bool ArtifactStore::init_run(const ExperimentPlan& plan, std::string* error) {
  // parse_plan rejects these; guard programmatically-built plans too — a
  // name with a separator or ".." would write artifacts outside the root.
  if (plan.name.empty() || plan.name.find('/') != std::string::npos ||
      plan.name.find('\\') != std::string::npos || plan.name.find("..") != std::string::npos) {
    return fail(error, "plan name must be a plain path component: '" + plan.name + "'");
  }
  std::error_code ec;
  const fs::path dir = run_dir(plan);
  fs::create_directories(dir, ec);
  if (ec) return fail(error, "cannot create run dir " + dir.string() + ": " + ec.message());
  const fs::path plan_file = dir / "plan.txt";
  if (!fs::exists(plan_file)) {
    std::ofstream out(plan_file);
    if (!out || !(out << plan.to_text())) {
      return fail(error, "cannot write " + plan_file.string());
    }
  }
  return true;
}

std::string ArtifactStore::manifest_path(const ExperimentPlan& plan, const LabJob& job) const {
  return (fs::path(run_dir(plan)) / (job.id() + ".manifest")).string();
}

std::string ArtifactStore::checkpoint_path(const ExperimentPlan& plan, const LabJob& job) const {
  return (fs::path(run_dir(plan)) / (job.id() + ".ckpt")).string();
}

std::optional<JobResult> ArtifactStore::load(const ExperimentPlan& plan, const LabJob& job,
                                             std::optional<std::uint64_t> plan_hash_hint) const {
  const std::uint64_t plan_hash = plan_hash_hint ? *plan_hash_hint : plan.hash();
  const fs::path dir = dir_for(plan, plan_hash);
  std::ifstream in(dir / (job.id() + ".manifest"));
  if (!in) return std::nullopt;
  const auto kv = parse_manifest(in);
  const auto get = [&kv](const char* key) -> std::string {
    const auto it = kv.find(key);
    return it == kv.end() ? std::string() : it->second;
  };

  // Identity checks: any mismatch means the artifact belongs to another
  // plan revision (or a different cell landed on this id) — recompute.
  if (get("status") != "complete") return std::nullopt;
  if (get("plan_hash") != hash_hex(plan_hash)) return std::nullopt;
  if (get("job") != job.id()) return std::nullopt;
  if (get("cell") != job.cell.name) return std::nullopt;
  if (get("method") != core::method_name(job.method)) return std::nullopt;
  std::uint64_t seed = 0;
  if (!parse_u64(get("seed"), seed) || seed != job.cell.seed) return std::nullopt;

  JobResult r;
  r.cell_index = job.cell_index;
  r.cell = job.cell.name;
  r.cluster = get("cluster");
  r.seed = seed;
  r.method = get("method");
  r.eventful = get("eventful") == "1";
  std::uint64_t episodes = 0;
  if (!parse_u64(get("episodes"), episodes)) return std::nullopt;
  r.episodes = episodes;
  if (!parse_f64(get("mean_interruption_h"), r.mean_interruption_h)) return std::nullopt;
  if (!parse_f64(get("max_interruption_h"), r.max_interruption_h)) return std::nullopt;
  if (!parse_f64(get("mean_overlap_h"), r.mean_overlap_h)) return std::nullopt;
  if (!parse_f64(get("zero_fraction"), r.zero_fraction)) return std::nullopt;
  if (!parse_f64(get("cell_mean_wait_h"), r.cell_mean_wait_h)) return std::nullopt;
  if (!parse_f64(get("cell_p95_wait_h"), r.cell_p95_wait_h)) return std::nullopt;
  if (!parse_f64(get("cell_utilization"), r.cell_utilization)) return std::nullopt;
  r.cell_load = get("cell_load");
  // Strict parse of the per-partition victim counts (added with src/obs/):
  // manifests written before these keys existed fail here and recompute —
  // a silent zero would disagree with the cell's traces.
  std::uint64_t cell_killed = 0;
  std::uint64_t cell_preempted = 0;
  if (!parse_u64(get("cell_killed"), cell_killed)) return std::nullopt;
  if (!parse_u64(get("cell_preempted"), cell_preempted)) return std::nullopt;
  r.cell_killed = cell_killed;
  r.cell_preempted = cell_preempted;
  if (kv.find("cell_partition_counts") == kv.end()) return std::nullopt;
  r.cell_partition_counts = get("cell_partition_counts");
  r.checkpoint = get("checkpoint");
  r.resumed = true;

  // A manifest that promises a checkpoint the filesystem lost is not
  // resumable — the promotion path would dangle.
  if (!r.checkpoint.empty()) {
    std::error_code ec;
    if (!fs::exists(dir / r.checkpoint, ec)) return std::nullopt;
  }
  return r;
}

bool ArtifactStore::save(const ExperimentPlan& plan, const LabJob& job, const JobResult& result,
                         std::string* error, std::optional<std::uint64_t> plan_hash_hint) {
  const std::uint64_t plan_hash = plan_hash_hint ? *plan_hash_hint : plan.hash();
  const fs::path manifest = dir_for(plan, plan_hash) / (job.id() + ".manifest");
  const fs::path tmp = manifest.string() + ".tmp";
  {
    std::ofstream out(tmp);
    if (!out) return fail(error, "cannot write " + tmp.string());
    out << "# mirage lab manifest\n";
    out << "plan_hash=" << hash_hex(plan_hash) << '\n';
    out << "job=" << job.id() << '\n';
    out << "cell=" << result.cell << '\n';
    out << "cluster=" << result.cluster << '\n';
    out << "seed=" << result.seed << '\n';
    out << "method=" << result.method << '\n';
    out << "eventful=" << (result.eventful ? 1 : 0) << '\n';
    out << "episodes=" << result.episodes << '\n';
    out << "mean_interruption_h=" << format_double_exact(result.mean_interruption_h) << '\n';
    out << "max_interruption_h=" << format_double_exact(result.max_interruption_h) << '\n';
    out << "mean_overlap_h=" << format_double_exact(result.mean_overlap_h) << '\n';
    out << "zero_fraction=" << format_double_exact(result.zero_fraction) << '\n';
    out << "cell_mean_wait_h=" << format_double_exact(result.cell_mean_wait_h) << '\n';
    out << "cell_p95_wait_h=" << format_double_exact(result.cell_p95_wait_h) << '\n';
    out << "cell_utilization=" << format_double_exact(result.cell_utilization) << '\n';
    out << "cell_load=" << result.cell_load << '\n';
    out << "cell_killed=" << result.cell_killed << '\n';
    out << "cell_preempted=" << result.cell_preempted << '\n';
    out << "cell_partition_counts=" << result.cell_partition_counts << '\n';
    out << "checkpoint=" << result.checkpoint << '\n';
    out << "status=complete\n";
    if (!out) return fail(error, "cannot write " + tmp.string());
  }
  std::error_code ec;
  fs::rename(tmp, manifest, ec);
  if (ec) return fail(error, "cannot commit " + manifest.string() + ": " + ec.message());
  return true;
}

std::size_t ArtifactStore::count_complete(const ExperimentPlan& plan) const {
  std::size_t n = 0;
  for (const auto& job : expand_jobs(plan)) {
    if (load(plan, job)) ++n;
  }
  return n;
}

}  // namespace mirage::lab

// Experiment lab (ROADMAP: "sweep-driven training"): an ExperimentPlan
// crosses a scenario::SweepMatrix with a set of core::Methods into concrete
// train/evaluate jobs. Plans round-trip through a key=value text format
// (scenario axes, event profiles, method list, training-scale knobs), and
// hash() fingerprints the full plan text so artifacts from a stale plan are
// never silently reused on resume.
//
// The job list is a pure function of the plan: cells come from
// SweepMatrix::expand() (per-cell seeds pre-assigned in expansion order)
// and methods are crossed in plan order, so job identity — and therefore
// artifact identity — is independent of how jobs later execute.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/methods.hpp"
#include "core/pipeline.hpp"
#include "scenario/sweep.hpp"

namespace mirage::lab {

/// Training-scale knobs applied on top of core::PipelineConfig::compact.
/// Defaults are sized for sweep-scale runs (many cells per minute), not
/// paper-scale fidelity; raise them for real experiments.
struct TrainBudget {
  std::int32_t job_nodes = 1;           ///< predecessor/successor job size
  std::size_t collector_anchors = 12;   ///< offline dataset anchors
  std::size_t pretrain_epochs = 4;
  std::size_t online_episodes = 16;
  std::size_t eval_episodes = 12;       ///< validation anchors per cell
  util::SimTime warmup = 12 * util::kHour;
  util::SimTime max_horizon = 3 * util::kDay;
  util::SimTime job_runtime = 24 * util::kHour;
  /// GEMM threads per cell forward/backward (nn::ScopedNumThreads). 0 =
  /// pick per run mode: serial runs use every core inside each cell,
  /// parallel cell sweeps pin cells to 1 GEMM thread (the sweep already
  /// saturates the machine). Results are bitwise identical either way —
  /// the parallel-GEMM determinism contract keeps leaderboards stable
  /// across this knob.
  std::size_t nn_threads = 0;

  bool operator==(const TrainBudget& o) const = default;
};

struct ExperimentPlan {
  std::string name = "lab";
  scenario::SweepMatrix matrix;
  std::vector<core::Method> methods;
  TrainBudget budget;

  /// Serialize to the plan text format (fixed key order — the byte stream
  /// hash() fingerprints).
  std::string to_text() const;
  /// FNV-1a over to_text(); recorded in every artifact manifest.
  std::uint64_t hash() const;

  std::size_t cell_count() const { return matrix.cell_count(); }
  std::size_t job_count() const { return cell_count() * methods.size(); }
};

/// One (cell, method) unit of work. `cell` is the fully-expanded spec
/// (its seed already assigned by SweepMatrix::expand()).
struct LabJob {
  std::size_t cell_index = 0;
  scenario::ScenarioSpec cell;
  core::Method method = core::Method::kReactive;

  /// Stable artifact stem, e.g. "c003__moe_dqn".
  std::string id() const;
};

/// Expand the plan into jobs, cell-major then plan method order.
std::vector<LabJob> expand_jobs(const ExperimentPlan& plan);

/// Parse a plan from text. Returns nullopt (never throws) on malformed
/// input — unknown keys or methods, bad numbers, malformed event profiles,
/// an invalid embedded base scenario — with a diagnostic in *error.
std::optional<ExperimentPlan> parse_plan(const std::string& text, std::string* error = nullptr);

/// Load and parse a plan file; nullopt (with diagnostic) when the file is
/// unreadable or malformed.
std::optional<ExperimentPlan> load_plan_file(const std::string& path,
                                             std::string* error = nullptr);

/// Write plan.to_text() to a file; false when it cannot be written.
bool save_plan_file(const ExperimentPlan& plan, const std::string& path);

/// Pipeline configuration for one cell: scenario::to_pipeline_config with
/// the plan's TrainBudget applied. Every job of a cell shares this config.
core::PipelineConfig cell_pipeline_config(const ExperimentPlan& plan,
                                          const scenario::ScenarioSpec& cell);

}  // namespace mirage::lab

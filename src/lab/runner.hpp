// Sweep-driven training/evaluation orchestrator. A LabRunner executes an
// ExperimentPlan's jobs on a util::ThreadPool under the same determinism
// contract the scenario sweep harness established: every cell's work is a
// pure function of its pre-assigned spec (seeds drawn at expansion time),
// results land in pre-sized slots, and cross-job aggregation happens in
// job order on the caller's thread — so a parallel run's leaderboard is
// bitwise identical to a serial run's, and a resumed run's to an
// uninterrupted one's.
//
// The unit of parallelism is the *cell*, not the job: all methods of a
// cell share one MiragePipeline (one workload build + one offline
// collection), which is both faster and exactly how the per-method
// evaluator isolates methods (per-method results are independent of which
// other methods train alongside — that independence is what makes
// per-method resume sound).
#pragma once

#include <cstddef>

#include "lab/artifact_store.hpp"
#include "lab/experiment.hpp"
#include "lab/leaderboard.hpp"

namespace mirage::lab {

struct LabRunReport {
  Leaderboard leaderboard;
  std::size_t jobs_total = 0;
  std::size_t jobs_run = 0;      ///< trained/evaluated this run
  std::size_t jobs_resumed = 0;  ///< skipped via completed artifacts
};

class LabRunner {
 public:
  /// threads == 0 means hardware concurrency. The runner uses its own
  /// pool; per-cell pipelines additionally fan out internally on
  /// ThreadPool::global() (safe: distinct pools cannot deadlock).
  explicit LabRunner(std::size_t threads = 0) : threads_(threads) {}

  /// Execute the plan, skipping jobs with valid artifacts in the store.
  /// Throws std::runtime_error when the store cannot be initialized or an
  /// artifact cannot be written (losing work silently is worse).
  LabRunReport run(const ExperimentPlan& plan, ArtifactStore& store) const;

  /// Single-threaded reference run (same per-cell computation).
  static LabRunReport run_serial(const ExperimentPlan& plan, ArtifactStore& store);

 private:
  std::size_t threads_;
};

}  // namespace mirage::lab

#include "lab/promote.hpp"

#include <filesystem>

#include "util/logging.hpp"

namespace mirage::lab {

serve::RegistryConfig registry_config(const ExperimentPlan& plan) {
  serve::RegistryConfig cfg;
  cfg.net_defaults = cell_pipeline_config(plan, plan.matrix.base).net;
  cfg.expected_state_dim = cfg.net_defaults.state_dim;
  return cfg;
}

std::size_t serving_history_len(const ExperimentPlan& plan) {
  return cell_pipeline_config(plan, plan.matrix.base).episode.history_len;
}

PromotionResult promote_best(const Leaderboard& leaderboard, const ExperimentPlan& plan,
                             const ArtifactStore& store, serve::ModelRegistry& registry,
                             const std::string& cluster) {
  PromotionResult result;
  const MethodStanding* standing = leaderboard.best(/*require_checkpoint=*/true);
  if (!standing) {
    result.error = "no method on the leaderboard persisted a checkpoint";
    return result;
  }
  result.method = standing->method;

  const JobResult* winner = nullptr;
  for (const auto& row : leaderboard.rows) {
    if (row.method != standing->method || row.checkpoint.empty()) continue;
    if (!winner || row.mean_interruption_h < winner->mean_interruption_h ||
        (row.mean_interruption_h == winner->mean_interruption_h &&
         row.cell_index < winner->cell_index)) {
      winner = &row;
    }
  }
  if (!winner) {
    result.error = "standing claims a checkpoint but no row carries one";
    return result;
  }
  result.cell = winner->cell;

  const auto path = std::filesystem::path(store.run_dir(plan)) / winner->checkpoint;
  result.checkpoint_path = path.string();
  const std::string key_cluster = cluster.empty() ? winner->cluster : cluster;
  const auto load = registry.load_file(result.checkpoint_path, key_cluster);
  if (!load.ok) {
    result.error = "registry rejected " + result.checkpoint_path + ": " + load.error;
    return result;
  }
  result.ok = true;
  result.key = load.key;
  result.version = load.version;
  util::log_info("lab: promoted ", result.method, " (cell ", result.cell, ") as ",
                 result.key.to_string(), " v", result.version);
  return result;
}

}  // namespace mirage::lab

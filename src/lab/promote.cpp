#include "lab/promote.hpp"

#include <filesystem>

#include "util/logging.hpp"

namespace mirage::lab {

namespace {

/// The first cell's spec shape without expanding the whole matrix: only
/// the axes that change the model/frame shape are applied. A
/// partition-layout axis widens the state frames (one free-capacity
/// feature per partition) and the base spec does not carry the axis, so
/// serving must be sized from it. Mixed-width plans can only serve cells
/// matching the first layout's width — the registry rejects the others
/// loudly at load time.
scenario::ScenarioSpec first_cell_shape(const ExperimentPlan& plan) {
  scenario::ScenarioSpec shape = plan.matrix.base;
  if (!plan.matrix.clusters.empty()) shape.cluster = plan.matrix.clusters.front();
  if (!plan.matrix.partition_layouts.empty()) {
    shape.partitions = plan.matrix.partition_layouts.front().partitions;
  }
  return shape;
}

}  // namespace

serve::RegistryConfig registry_config(const ExperimentPlan& plan) {
  serve::RegistryConfig cfg;
  cfg.net_defaults = cell_pipeline_config(plan, first_cell_shape(plan)).net;
  cfg.expected_state_dim = cfg.net_defaults.state_dim;
  return cfg;
}

std::size_t serving_history_len(const ExperimentPlan& plan) {
  return cell_pipeline_config(plan, first_cell_shape(plan)).episode.history_len;
}

std::size_t serving_partition_count(const ExperimentPlan& plan) {
  const auto partitions =
      cell_pipeline_config(plan, first_cell_shape(plan)).episode.partitions;
  return partitions.empty() ? 1 : partitions.size();
}

PromotionResult promote_best(const Leaderboard& leaderboard, const ExperimentPlan& plan,
                             const ArtifactStore& store, serve::ModelRegistry& registry,
                             const std::string& cluster) {
  PromotionResult result;
  const MethodStanding* standing = leaderboard.best(/*require_checkpoint=*/true);
  if (!standing) {
    result.error = "no method on the leaderboard persisted a checkpoint";
    return result;
  }
  result.method = standing->method;

  const JobResult* winner = nullptr;
  for (const auto& row : leaderboard.rows) {
    if (row.method != standing->method || row.checkpoint.empty()) continue;
    if (!winner || row.mean_interruption_h < winner->mean_interruption_h ||
        (row.mean_interruption_h == winner->mean_interruption_h &&
         row.cell_index < winner->cell_index)) {
      winner = &row;
    }
  }
  if (!winner) {
    result.error = "standing claims a checkpoint but no row carries one";
    return result;
  }
  result.cell = winner->cell;

  const auto path = std::filesystem::path(store.run_dir(plan)) / winner->checkpoint;
  result.checkpoint_path = path.string();
  const std::string key_cluster = cluster.empty() ? winner->cluster : cluster;
  const auto load = registry.load_file(result.checkpoint_path, key_cluster);
  if (!load.ok) {
    result.error = "registry rejected " + result.checkpoint_path + ": " + load.error;
    return result;
  }
  result.ok = true;
  result.key = load.key;
  result.version = load.version;
  util::log_info("lab: promoted ", result.method, " (cell ", result.cell, ") as ",
                 result.key.to_string(), " v", result.version);
  return result;
}

}  // namespace mirage::lab

#include "lab/leaderboard.hpp"

#include <algorithm>
#include <cstdio>
#include <map>
#include <sstream>

#include "util/csv.hpp"

namespace mirage::lab {

bool JobResult::operator==(const JobResult& o) const {
  return cell_index == o.cell_index && cell == o.cell && cluster == o.cluster && seed == o.seed &&
         method == o.method && eventful == o.eventful && episodes == o.episodes &&
         mean_interruption_h == o.mean_interruption_h &&
         max_interruption_h == o.max_interruption_h && mean_overlap_h == o.mean_overlap_h &&
         zero_fraction == o.zero_fraction && cell_mean_wait_h == o.cell_mean_wait_h &&
         cell_p95_wait_h == o.cell_p95_wait_h && cell_utilization == o.cell_utilization &&
         cell_load == o.cell_load && cell_killed == o.cell_killed &&
         cell_preempted == o.cell_preempted &&
         cell_partition_counts == o.cell_partition_counts && checkpoint == o.checkpoint;
}

Leaderboard Leaderboard::build(std::vector<JobResult> rows) {
  Leaderboard board;
  board.rows = std::move(rows);

  struct Accum {
    std::size_t order = 0;  ///< first-row position, for a stable tiebreak
    MethodStanding standing;
    double wait_sum = 0.0;
    double overlap_sum = 0.0;
    double zero_sum = 0.0;       ///< zero_fraction * episodes
    double eventful_sum = 0.0;
    std::size_t eventful_cells = 0;
    double calm_sum = 0.0;
    std::size_t calm_cells = 0;
  };
  std::map<std::string, Accum> by_method;
  std::size_t next_order = 0;
  for (const auto& row : board.rows) {
    auto [it, inserted] = by_method.try_emplace(row.method);
    Accum& a = it->second;
    if (inserted) {
      a.order = next_order++;
      a.standing.method = row.method;
    }
    ++a.standing.cells;
    a.standing.episodes += row.episodes;
    a.wait_sum += row.mean_interruption_h;
    a.standing.worst_wait_h = std::max(a.standing.worst_wait_h, row.mean_interruption_h);
    a.overlap_sum += row.mean_overlap_h;
    a.zero_sum += row.zero_fraction * static_cast<double>(row.episodes);
    if (row.eventful) {
      a.eventful_sum += row.mean_interruption_h;
      ++a.eventful_cells;
    } else {
      a.calm_sum += row.mean_interruption_h;
      ++a.calm_cells;
    }
    a.standing.has_checkpoint = a.standing.has_checkpoint || !row.checkpoint.empty();
  }

  std::vector<Accum> accums;
  accums.reserve(by_method.size());
  for (auto& [name, a] : by_method) accums.push_back(std::move(a));
  for (auto& a : accums) {
    auto& s = a.standing;
    const auto cells = static_cast<double>(s.cells);
    s.mean_wait_h = a.wait_sum / cells;
    s.mean_overlap_h = a.overlap_sum / cells;
    s.zero_fraction = s.episodes ? a.zero_sum / static_cast<double>(s.episodes) : 0.0;
    s.eventful_wait_h = a.eventful_cells ? a.eventful_sum / static_cast<double>(a.eventful_cells)
                                         : 0.0;
    s.calm_wait_h = a.calm_cells ? a.calm_sum / static_cast<double>(a.calm_cells) : 0.0;
    s.robustness_spread_h =
        (a.eventful_cells && a.calm_cells) ? s.eventful_wait_h - s.calm_wait_h : 0.0;
  }
  std::sort(accums.begin(), accums.end(), [](const Accum& x, const Accum& y) {
    if (x.standing.mean_wait_h != y.standing.mean_wait_h) {
      return x.standing.mean_wait_h < y.standing.mean_wait_h;
    }
    return x.order < y.order;  // deterministic tiebreak: first appearance
  });
  board.standings.reserve(accums.size());
  for (auto& a : accums) board.standings.push_back(std::move(a.standing));
  return board;
}

const MethodStanding* Leaderboard::best(bool require_checkpoint) const {
  for (const auto& s : standings) {
    if (!require_checkpoint || s.has_checkpoint) return &s;
  }
  return nullptr;
}

namespace {
std::string fmt6(double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.6f", v);
  return buf;
}
}  // namespace

std::string Leaderboard::to_csv() const {
  std::ostringstream out;
  util::CsvWriter writer(out);
  writer.write_row({"cell_index", "cell", "cluster", "seed", "method", "eventful", "episodes",
                    "mean_interruption_h", "max_interruption_h", "mean_overlap_h",
                    "zero_fraction", "cell_mean_wait_h", "cell_p95_wait_h", "cell_utilization",
                    "cell_load", "cell_killed", "cell_preempted", "cell_partition_counts",
                    "checkpoint"});
  for (const auto& r : rows) {
    writer.write_row({std::to_string(r.cell_index), r.cell, r.cluster, std::to_string(r.seed),
                      r.method, r.eventful ? "1" : "0", std::to_string(r.episodes),
                      fmt6(r.mean_interruption_h), fmt6(r.max_interruption_h),
                      fmt6(r.mean_overlap_h), fmt6(r.zero_fraction), fmt6(r.cell_mean_wait_h),
                      fmt6(r.cell_p95_wait_h), fmt6(r.cell_utilization), r.cell_load,
                      std::to_string(r.cell_killed), std::to_string(r.cell_preempted),
                      r.cell_partition_counts, r.checkpoint});
  }
  return out.str();
}

std::string Leaderboard::standings_csv() const {
  std::ostringstream out;
  util::CsvWriter writer(out);
  writer.write_row({"rank", "method", "cells", "episodes", "mean_wait_h", "worst_wait_h",
                    "mean_overlap_h", "zero_fraction", "eventful_wait_h", "calm_wait_h",
                    "robustness_spread_h", "has_checkpoint"});
  for (std::size_t i = 0; i < standings.size(); ++i) {
    const auto& s = standings[i];
    writer.write_row({std::to_string(i + 1), s.method, std::to_string(s.cells),
                      std::to_string(s.episodes), fmt6(s.mean_wait_h), fmt6(s.worst_wait_h),
                      fmt6(s.mean_overlap_h), fmt6(s.zero_fraction), fmt6(s.eventful_wait_h),
                      fmt6(s.calm_wait_h), fmt6(s.robustness_spread_h),
                      s.has_checkpoint ? "1" : "0"});
  }
  return out.str();
}

std::string Leaderboard::format_table() const {
  std::ostringstream out;
  char line[320];
  std::snprintf(line, sizeof(line), "%-30s %-16s %4s %9s %9s %8s %6s  %-6s %5s\n", "cell",
                "method", "ep", "int_w(h)", "max_w(h)", "ovl(h)", "zero%", "load", "ckpt");
  out << line;
  for (const auto& r : rows) {
    std::snprintf(line, sizeof(line), "%-30s %-16s %4zu %9.3f %9.3f %8.3f %5.1f%%  %-6s %5s\n",
                  r.cell.c_str(), r.method.c_str(), r.episodes, r.mean_interruption_h,
                  r.max_interruption_h, r.mean_overlap_h, 100.0 * r.zero_fraction,
                  r.cell_load.c_str(), r.checkpoint.empty() ? "-" : "yes");
    out << line;
  }
  out << '\n';
  std::snprintf(line, sizeof(line), "%4s %-16s %5s %9s %9s %8s %6s %10s\n", "rank", "method",
                "cells", "mean_w(h)", "worst(h)", "ovl(h)", "zero%", "spread(h)");
  out << line;
  for (std::size_t i = 0; i < standings.size(); ++i) {
    const auto& s = standings[i];
    std::snprintf(line, sizeof(line), "%4zu %-16s %5zu %9.3f %9.3f %8.3f %5.1f%% %10.3f\n",
                  i + 1, s.method.c_str(), s.cells, s.mean_wait_h, s.worst_wait_h,
                  s.mean_overlap_h, 100.0 * s.zero_fraction, s.robustness_spread_h);
    out << line;
  }
  return out.str();
}

bool Leaderboard::operator==(const Leaderboard& o) const {
  return rows == o.rows && standings == o.standings;
}

}  // namespace mirage::lab

// Durable artifact store for lab runs. Each plan gets one run directory
// (root/<name>__<hash16>/) holding the serialized plan plus, per completed
// job, a manifest (plan hash, cell spec identity, seed, metrics, status)
// and — for checkpointable methods — the trained agent in core::checkpoint
// format.
//
// The manifest is the commit point and is written tmp-then-rename, so a
// killed run never leaves a complete-looking artifact. Resume semantics:
// a job is skipped iff its manifest parses, says status=complete, and its
// (plan hash, job id, cell name, cell seed, method) all match the live
// plan — anything else (including artifacts from a stale plan revision)
// recomputes. Doubles round-trip through "%.17g", so resumed rows are
// bitwise equal to freshly computed ones.
#pragma once

#include <cstdint>
#include <filesystem>
#include <optional>
#include <string>

#include "lab/experiment.hpp"
#include "lab/leaderboard.hpp"

namespace mirage::lab {

class ArtifactStore {
 public:
  explicit ArtifactStore(std::string root) : root_(std::move(root)) {}

  const std::string& root() const { return root_; }

  /// Run directory for a plan (not created until init_run).
  std::string run_dir(const ExperimentPlan& plan) const;
  /// Create the run directory and persist plan.txt; false + diagnostic on
  /// IO failure or a plan name that is not a plain path component.
  bool init_run(const ExperimentPlan& plan, std::string* error = nullptr);

  /// Absolute path of a job's manifest / checkpoint artifact.
  std::string manifest_path(const ExperimentPlan& plan, const LabJob& job) const;
  std::string checkpoint_path(const ExperimentPlan& plan, const LabJob& job) const;

  /// Load a completed job's result; nullopt when the artifact is missing,
  /// incomplete, or belongs to a different plan/cell/seed. For jobs that
  /// recorded a checkpoint, the checkpoint file must still exist.
  ///
  /// Serializing + hashing a plan is not free, so the hot orchestration
  /// path computes plan.hash() once and passes it to load/save; when
  /// `plan_hash` is provided it MUST equal plan.hash().
  std::optional<JobResult> load(const ExperimentPlan& plan, const LabJob& job,
                                std::optional<std::uint64_t> plan_hash = std::nullopt) const;

  /// Persist a completed job (manifest written atomically, last).
  bool save(const ExperimentPlan& plan, const LabJob& job, const JobResult& result,
            std::string* error = nullptr,
            std::optional<std::uint64_t> plan_hash = std::nullopt);

  /// Completed-artifact count for a plan (cheap resume preview).
  std::size_t count_complete(const ExperimentPlan& plan) const;

 private:
  std::filesystem::path dir_for(const ExperimentPlan& plan, std::uint64_t plan_hash) const;

  std::string root_;
};

}  // namespace mirage::lab

// Durable artifact store for lab runs. Each plan gets one run directory
// (root/<name>__<hash16>/) holding the serialized plan plus, per completed
// job, a manifest (plan hash, cell spec identity, seed, metrics, status)
// and — for checkpointable methods — the trained agent in core::checkpoint
// format.
//
// The manifest is the commit point and is written tmp-then-rename with the
// temp file fsynced before the rename and the parent directory after it,
// so a committed manifest survives power loss, not just process death, and
// a killed run never leaves a complete-looking artifact. Resume semantics:
// a job is skipped iff its manifest parses, says status=complete, and its
// (plan hash, job id, cell name, cell seed, method) all match the live
// plan — anything else (including artifacts from a stale plan revision)
// recomputes. Doubles round-trip through "%.17g", so resumed rows are
// bitwise equal to freshly computed ones.
//
// With StoreOptions::journal on, each run directory additionally carries a
// WAL journal (<run_dir>/journal/) of checkpoint-set membership and
// leaderboard snapshots. init_run() then runs crash recovery first:
// replay the journal (truncating any torn tail), and purge stranded
// partial artifacts — leftover *.tmp files and *.ckpt files no complete
// manifest references — so a resume after kill -9 sees only complete
// artifact sets and stays bitwise-identical to an uninterrupted run.
#pragma once

#include <cstdint>
#include <filesystem>
#include <mutex>
#include <optional>
#include <string>

#include "lab/experiment.hpp"
#include "lab/leaderboard.hpp"
#include "util/wal.hpp"

namespace mirage::lab {

struct StoreOptions {
  /// Journal checkpoint-set membership + leaderboard snapshots per run.
  bool journal = false;
  /// Sync/segment configuration of the run journal. Lab saves are rare
  /// (one per trained job), so the default on-commit fsync costs nothing
  /// measurable and makes every journaled commit power-loss durable.
  util::wal::WalOptions wal;
};

/// What init_run's crash recovery found for the current run directory.
struct RunRecovery {
  std::uint64_t journaled_jobs = 0;           ///< job-complete records replayed
  std::uint64_t leaderboard_snapshots = 0;    ///< snapshot records replayed
  std::uint64_t stranded_removed = 0;         ///< *.tmp / orphaned *.ckpt purged
  bool torn_tail = false;                     ///< journal had a torn tail truncated
  std::string last_leaderboard_csv;           ///< newest journaled snapshot ("" if none)
};

class ArtifactStore {
 public:
  explicit ArtifactStore(std::string root, StoreOptions options = {})
      : root_(std::move(root)), options_(options) {}

  const std::string& root() const { return root_; }
  const StoreOptions& options() const { return options_; }

  /// Run directory for a plan (not created until init_run).
  std::string run_dir(const ExperimentPlan& plan) const;
  /// Create the run directory and persist plan.txt; false + diagnostic on
  /// IO failure or a plan name that is not a plain path component. With
  /// journaling on this also recovers the run journal and purges stranded
  /// partial artifacts (see last_recovery()).
  bool init_run(const ExperimentPlan& plan, std::string* error = nullptr);

  /// Absolute path of a job's manifest / checkpoint artifact.
  std::string manifest_path(const ExperimentPlan& plan, const LabJob& job) const;
  std::string checkpoint_path(const ExperimentPlan& plan, const LabJob& job) const;

  /// Load a completed job's result; nullopt when the artifact is missing,
  /// incomplete, or belongs to a different plan/cell/seed. For jobs that
  /// recorded a checkpoint, the checkpoint file must still exist.
  ///
  /// Serializing + hashing a plan is not free, so the hot orchestration
  /// path computes plan.hash() once and passes it to load/save; when
  /// `plan_hash` is provided it MUST equal plan.hash().
  std::optional<JobResult> load(const ExperimentPlan& plan, const LabJob& job,
                                std::optional<std::uint64_t> plan_hash = std::nullopt) const;

  /// Persist a completed job (manifest written atomically, last; temp file
  /// and directory entry fsynced around the rename).
  bool save(const ExperimentPlan& plan, const LabJob& job, const JobResult& result,
            std::string* error = nullptr,
            std::optional<std::uint64_t> plan_hash = std::nullopt);

  /// Journal a leaderboard snapshot for the run (no-op with journaling
  /// off). The runner calls this once per completed run.
  bool snapshot_leaderboard(const ExperimentPlan& plan, const Leaderboard& leaderboard,
                            std::string* error = nullptr);

  /// Completed-artifact count for a plan (cheap resume preview).
  std::size_t count_complete(const ExperimentPlan& plan) const;

  /// Recovery report from the most recent init_run (journaling only).
  const RunRecovery& last_recovery() const { return recovery_; }

 private:
  std::filesystem::path dir_for(const ExperimentPlan& plan, std::uint64_t plan_hash) const;
  bool recover_run(const std::filesystem::path& dir, std::string* error);
  bool journal_record(const std::filesystem::path& run_dir, const util::wal::Chunk* chunks,
                      std::size_t count, std::string* error);

  std::string root_;
  StoreOptions options_;
  RunRecovery recovery_;
  // save() runs concurrently from sweep worker threads; the journal writer
  // is shared per run.
  std::mutex journal_mutex_;
  util::wal::Writer journal_;
};

}  // namespace mirage::lab

// Closing the train -> evaluate -> deploy loop: promote the leaderboard
// winner's checkpoint into a serve::ModelRegistry. The registry swap is
// atomic (shared_ptr under the registry lock), so a live
// serve::ProvisioningService keyed on the promoted model hot-reloads it
// without dropping in-flight decisions.
#pragma once

#include <string>

#include "lab/artifact_store.hpp"
#include "lab/experiment.hpp"
#include "lab/leaderboard.hpp"
#include "serve/model_registry.hpp"

namespace mirage::lab {

struct PromotionResult {
  bool ok = false;
  std::string error;
  std::string method;          ///< winning method (display name)
  std::string cell;            ///< cell whose checkpoint was promoted
  std::string checkpoint_path; ///< absolute artifact path
  serve::ModelKey key;         ///< registry key now serving the model
  std::uint64_t version = 0;   ///< registry version of the promoted model
};

/// Promote the best checkpointable method: pick the top standing that
/// persisted an agent, then that method's best row (lowest mean
/// interruption, lowest cell index on ties), and hot-load its checkpoint
/// into the registry. `cluster` overrides the registry key's cluster name;
/// empty uses the winning cell's cluster preset. Never throws — inspect
/// `ok` / `error`.
PromotionResult promote_best(const Leaderboard& leaderboard, const ExperimentPlan& plan,
                             const ArtifactStore& store, serve::ModelRegistry& registry,
                             const std::string& cluster = "");

/// RegistryConfig whose non-header architecture knobs match the agents the
/// plan trains — required for the registry to reconstruct lab checkpoints.
serve::RegistryConfig registry_config(const ExperimentPlan& plan);

/// Frames per session ring for serving a lab-trained model (must match the
/// checkpoint's history_len).
std::size_t serving_history_len(const ExperimentPlan& plan);

/// Partition count sessions must encode with to feed a lab-trained model
/// (ServiceConfig::partition_count; 1 for single-pool plans). Sized from
/// the plan's first partition layout, like registry_config.
std::size_t serving_partition_count(const ExperimentPlan& plan);

}  // namespace mirage::lab

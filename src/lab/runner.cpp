#include "lab/runner.hpp"

#include <filesystem>
#include <stdexcept>
#include <vector>

#include "core/evaluator.hpp"
#include "nn/parallel.hpp"
#include "obs/span.hpp"
#include "scenario/scenario.hpp"
#include "util/logging.hpp"
#include "util/thread_pool.hpp"
#include "util/wal.hpp"

namespace mirage::lab {

namespace {

/// Evaluator aggregate -> leaderboard row. The overall aggregate (not a
/// single load class) is the cross-cell comparison currency: cells differ
/// in load precisely because the plan sweeps load.
JobResult make_result(const LabJob& job, const core::MethodEval& eval,
                      const scenario::ScenarioResult& cell_ctx) {
  JobResult r;
  r.cell_index = job.cell_index;
  r.cell = job.cell.name;
  r.cluster = job.cell.cluster;
  r.seed = job.cell.seed;
  r.method = core::method_name(job.method);
  r.eventful = job.cell.has_events();
  r.episodes = eval.overall.episodes;
  r.mean_interruption_h = eval.overall.interruption_hours.mean();
  r.max_interruption_h = eval.overall.interruption_hours.max();
  r.mean_overlap_h = eval.overall.overlap_hours.mean();
  r.zero_fraction = eval.overall.zero_interruption_fraction();
  r.cell_mean_wait_h = cell_ctx.metrics.mean_wait_hours;
  r.cell_p95_wait_h = cell_ctx.metrics.p95_wait_hours;
  r.cell_utilization = cell_ctx.metrics.average_utilization;
  r.cell_load = core::load_class_name(cell_ctx.load);
  r.cell_killed = cell_ctx.killed_jobs;
  r.cell_preempted = cell_ctx.preempted_jobs;
  r.cell_partition_counts = cell_ctx.partition_counts_text();
  return r;
}

struct CellOutcome {
  std::vector<JobResult> rows;  ///< plan method order
  std::size_t resumed = 0;
  std::string error;            ///< non-empty on artifact IO failure
};

/// Run (or resume) every method of one cell. Pure function of (plan, cell,
/// artifacts on disk) — the runner's determinism contract. `plan_hash` is
/// plan.hash(), computed once per run and shared by every cell.
CellOutcome run_cell(const ExperimentPlan& plan, std::uint64_t plan_hash, ArtifactStore& store,
                     std::size_t cell_index, const scenario::ScenarioSpec& cell) {
  CellOutcome outcome;
  const std::size_t n_methods = plan.methods.size();
  std::vector<LabJob> jobs;
  std::vector<std::optional<JobResult>> cached;
  jobs.reserve(n_methods);
  cached.reserve(n_methods);
  std::vector<core::Method> missing;
  for (const core::Method m : plan.methods) {
    jobs.push_back(LabJob{cell_index, cell, m});
    cached.push_back(store.load(plan, jobs.back(), plan_hash));
    if (!cached.back()) missing.push_back(m);
  }
  outcome.resumed = n_methods - missing.size();

  std::vector<JobResult> fresh;
  if (!missing.empty()) {
    // Method-independent cell context: the reactive background schedule.
    const auto cell_ctx = scenario::run_scenario(cell);

    core::MiragePipeline pipeline(cell_pipeline_config(plan, cell));
    pipeline.prepare(scenario::build_workload(cell));
    bool need_offline = false;
    for (const core::Method m : missing) {
      need_offline = need_offline || core::is_rl_method(m) || core::is_statistical_method(m);
    }
    if (need_offline) pipeline.collect_offline();
    {
      OBS_SPAN("lab_train_job");
      for (const core::Method m : missing) pipeline.train(m);
    }
    const auto evals = [&] {
      OBS_SPAN("lab_eval_job");
      return pipeline.evaluate(missing);
    }();

    fresh.reserve(missing.size());
    for (std::size_t i = 0; i < missing.size(); ++i) {
      const LabJob job{cell_index, cell, missing[i]};
      JobResult row = make_result(job, evals[i], cell_ctx);
      if (core::is_checkpointable_method(missing[i])) {
        const std::string path = store.checkpoint_path(plan, job);
        const std::string tmp = path + ".tmp";
        if (!pipeline.save_checkpoint(missing[i], tmp)) {
          outcome.error = "cannot write checkpoint " + tmp;
          return outcome;
        }
        // Same durable commit the manifests use: bytes fsynced before the
        // rename publishes them, directory entry fsynced after.
        std::string io_error;
        if (!util::wal::fsync_path(tmp, &io_error) ||
            !util::wal::rename_durable(tmp, path, &io_error)) {
          outcome.error = "cannot commit checkpoint " + path + ": " + io_error;
          return outcome;
        }
        row.checkpoint = std::filesystem::path(path).filename().string();
      }
      std::string save_error;
      if (!store.save(plan, job, row, &save_error, plan_hash)) {
        outcome.error = save_error;
        return outcome;
      }
      fresh.push_back(std::move(row));
    }
  }

  outcome.rows.reserve(n_methods);
  std::size_t next_fresh = 0;
  for (std::size_t i = 0; i < n_methods; ++i) {
    outcome.rows.push_back(cached[i] ? std::move(*cached[i]) : std::move(fresh[next_fresh++]));
  }
  return outcome;
}

LabRunReport run_impl(const ExperimentPlan& plan, ArtifactStore& store, std::size_t threads,
                      bool serial) {
  if (plan.methods.empty()) throw std::invalid_argument("plan has no methods");
  for (std::size_t a = 0; a < plan.methods.size(); ++a) {
    for (std::size_t b = a + 1; b < plan.methods.size(); ++b) {
      if (plan.methods[a] == plan.methods[b]) {
        throw std::invalid_argument("duplicate method in plan: " +
                                    core::method_name(plan.methods[a]));
      }
    }
  }
  std::string error;
  if (!store.init_run(plan, &error)) throw std::runtime_error(error);

  const std::uint64_t plan_hash = plan.hash();
  const auto cells = plan.matrix.expand();
  std::vector<CellOutcome> outcomes(cells.size());
  // GEMM threads per cell: the plan's explicit value wins; otherwise serial
  // runs fan each forward across the machine while parallel sweeps pin
  // cells to 1 GEMM thread (the cells themselves already saturate the
  // cores). Either way results are bitwise identical — the GEMM tile
  // partition is thread-count-invariant — which is exactly why run() and
  // run_serial() can keep producing identical leaderboards.
  const std::size_t gemm_threads =
      plan.budget.nn_threads != 0 ? plan.budget.nn_threads : (serial ? 0 : 1);
  const auto run_one = [&](std::size_t i) {
    nn::ScopedNumThreads nn_scope(gemm_threads);
    outcomes[i] = run_cell(plan, plan_hash, store, i, cells[i]);
  };
  if (serial) {
    for (std::size_t i = 0; i < cells.size(); ++i) run_one(i);
  } else {
    util::ThreadPool pool(threads);
    pool.parallel_for(cells.size(), run_one);
  }

  LabRunReport report;
  report.jobs_total = cells.size() * plan.methods.size();
  std::vector<JobResult> rows;
  rows.reserve(report.jobs_total);
  for (auto& outcome : outcomes) {
    if (!outcome.error.empty()) throw std::runtime_error(outcome.error);
    report.jobs_resumed += outcome.resumed;
    for (auto& row : outcome.rows) rows.push_back(std::move(row));
  }
  report.jobs_run = report.jobs_total - report.jobs_resumed;
  report.leaderboard = Leaderboard::build(std::move(rows));
  // Journaled stores snapshot the final standings; a crash-recovered
  // resume can then diff its rebuilt leaderboard against the last one the
  // journal saw (no-op when journaling is off).
  std::string snapshot_error;
  if (!store.snapshot_leaderboard(plan, report.leaderboard, &snapshot_error)) {
    throw std::runtime_error(snapshot_error);
  }
  util::log_info("lab[", plan.name, "]: ", report.jobs_total, " jobs (", report.jobs_run,
                 " run, ", report.jobs_resumed, " resumed) across ", cells.size(), " cells");
  return report;
}

}  // namespace

LabRunReport LabRunner::run(const ExperimentPlan& plan, ArtifactStore& store) const {
  return run_impl(plan, store, threads_, /*serial=*/false);
}

LabRunReport LabRunner::run_serial(const ExperimentPlan& plan, ArtifactStore& store) {
  return run_impl(plan, store, /*threads=*/1, /*serial=*/true);
}

}  // namespace mirage::lab

#include "lab/experiment.hpp"

#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>

#include "util/config.hpp"
#include "util/csv.hpp"
#include "util/rng.hpp"
#include "util/strconv.hpp"

namespace mirage::lab {

namespace {

using util::format_double_exact;
using util::parse_f64;
using util::parse_i32;
using util::parse_i64;

bool fail(std::string* error, const std::string& message) {
  if (error) *error = message;
  return false;
}

template <typename T>
std::string join_csv(const std::vector<T>& values, std::string (*fmt)(T)) {
  std::string out;
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i) out += ',';
    out += fmt(values[i]);
  }
  return out;
}

}  // namespace

std::string LabJob::id() const {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "c%03zu__%s", cell_index,
                core::method_file_name(method).c_str());
  return buf;
}

std::vector<LabJob> expand_jobs(const ExperimentPlan& plan) {
  const auto cells = plan.matrix.expand();
  std::vector<LabJob> jobs;
  jobs.reserve(cells.size() * plan.methods.size());
  for (std::size_t i = 0; i < cells.size(); ++i) {
    for (const core::Method m : plan.methods) {
      jobs.push_back(LabJob{i, cells[i], m});
    }
  }
  return jobs;
}

std::string ExperimentPlan::to_text() const {
  std::ostringstream out;
  out << "# mirage experiment plan\n";
  out << "name=" << name << '\n';
  out << "methods="
      << join_csv<core::Method>(methods, +[](core::Method m) { return core::method_file_name(m); })
      << '\n';
  out << "job_nodes=" << budget.job_nodes << '\n';
  out << "collector_anchors=" << budget.collector_anchors << '\n';
  out << "pretrain_epochs=" << budget.pretrain_epochs << '\n';
  out << "online_episodes=" << budget.online_episodes << '\n';
  out << "eval_episodes=" << budget.eval_episodes << '\n';
  out << "warmup=" << budget.warmup << '\n';
  out << "max_horizon=" << budget.max_horizon << '\n';
  out << "job_runtime=" << budget.job_runtime << '\n';
  // Emitted only when set: nn_threads never changes results (bitwise
  // determinism contract), and keeping it out of default plan text keeps
  // pre-existing plan hashes — and their resumable artifacts — valid.
  if (budget.nn_threads != 0) out << "nn_threads=" << budget.nn_threads << '\n';
  if (!matrix.clusters.empty()) {
    out << "clusters="
        << join_csv<std::string>(matrix.clusters, +[](std::string s) { return s; }) << '\n';
  }
  if (!matrix.utilization_scales.empty()) {
    out << "utilization_scales="
        << join_csv<double>(matrix.utilization_scales, +[](double v) { return format_double_exact(v); })
        << '\n';
  }
  if (!matrix.reservation_depths.empty()) {
    out << "reservation_depths="
        << join_csv<std::int32_t>(matrix.reservation_depths,
                                  +[](std::int32_t v) { return std::to_string(v); })
        << '\n';
  }
  for (std::size_t i = 0; i < matrix.event_profiles.size(); ++i) {
    const auto& profile = matrix.event_profiles[i];
    out << "profile." << i << ".name=" << profile.name << '\n';
    for (std::size_t j = 0; j < profile.events.size(); ++j) {
      out << "profile." << i << ".event." << j << '='
          << scenario::event_to_csv(profile.events[j]) << '\n';
    }
  }
  for (std::size_t i = 0; i < matrix.partition_layouts.size(); ++i) {
    const auto& layout = matrix.partition_layouts[i];
    out << "layout." << i << ".name=" << layout.name << '\n';
    for (std::size_t j = 0; j < layout.partitions.size(); ++j) {
      out << "layout." << i << ".partition." << j << '=' << layout.partitions[j].name << ','
          << layout.partitions[j].node_count << '\n';
    }
  }
  // Embed the base scenario with a "base." prefix, reusing its own
  // serialization line-for-line (comment lines dropped).
  std::istringstream base(matrix.base.to_text());
  std::string line;
  while (std::getline(base, line)) {
    if (line.empty() || line[0] == '#') continue;
    out << "base." << line << '\n';
  }
  return out.str();
}

std::uint64_t ExperimentPlan::hash() const {
  const std::string text = to_text();
  std::uint64_t h = util::kFnv1a64Basis;
  for (const char c : text) h = util::fnv1a64(h, static_cast<std::uint8_t>(c));
  return h;
}

std::optional<ExperimentPlan> parse_plan(const std::string& text, std::string* error) {
  // Structural scan: every non-comment, non-blank line must be key=value.
  if (const auto bad = util::first_malformed_line(text)) {
    fail(error, "malformed line (expected key=value): " + *bad);
    return std::nullopt;
  }

  const auto cfg = util::Config::from_text(text);
  ExperimentPlan plan;
  std::ostringstream base_text;
  // profile index -> (name, event index -> csv). Ordered maps keep the
  // numeric keys sorted so expansion order matches file order. Partition
  // layouts (the partition axis) use the same two-level key scheme.
  std::map<std::int64_t, std::string> profile_names;
  std::map<std::int64_t, std::map<std::int64_t, std::string>> profile_events;
  std::map<std::int64_t, std::string> layout_names;
  std::map<std::int64_t, std::map<std::int64_t, trace::ClusterPartition>> layout_partitions;

  for (const auto& key : cfg.keys()) {
    const std::string value = cfg.get_string(key, "");
    std::int64_t i = 0;
    double d = 0;
    bool ok = true;
    if (key == "name") {
      plan.name = value;
    } else if (key == "methods") {
      for (const auto& token : util::parse_csv_line(value)) {
        const auto m = core::method_from_name(token);
        if (!m) {
          fail(error, "unknown method: " + token);
          return std::nullopt;
        }
        plan.methods.push_back(*m);
      }
    } else if (key == "job_nodes") {
      std::int32_t i32 = 0;
      ok = parse_i32(value, i32) && i32 > 0;
      plan.budget.job_nodes = i32;
    } else if (key == "collector_anchors") {
      ok = parse_i64(value, i) && i > 0;
      plan.budget.collector_anchors = static_cast<std::size_t>(i);
    } else if (key == "pretrain_epochs") {
      ok = parse_i64(value, i) && i >= 0;
      plan.budget.pretrain_epochs = static_cast<std::size_t>(i);
    } else if (key == "online_episodes") {
      ok = parse_i64(value, i) && i >= 0;
      plan.budget.online_episodes = static_cast<std::size_t>(i);
    } else if (key == "eval_episodes") {
      ok = parse_i64(value, i) && i > 0;
      plan.budget.eval_episodes = static_cast<std::size_t>(i);
    } else if (key == "warmup") {
      ok = parse_i64(value, i) && i >= 0;
      plan.budget.warmup = i;
    } else if (key == "max_horizon") {
      ok = parse_i64(value, i) && i > 0;
      plan.budget.max_horizon = i;
    } else if (key == "job_runtime") {
      ok = parse_i64(value, i) && i > 0;
      plan.budget.job_runtime = i;
    } else if (key == "nn_threads") {
      ok = parse_i64(value, i) && i >= 0;
      plan.budget.nn_threads = static_cast<std::size_t>(i);
    } else if (key == "clusters") {
      plan.matrix.clusters = util::parse_csv_line(value);
    } else if (key == "utilization_scales") {
      for (const auto& token : util::parse_csv_line(value)) {
        if (!parse_f64(token, d) || d <= 0) {
          fail(error, "bad utilization scale: " + token);
          return std::nullopt;
        }
        plan.matrix.utilization_scales.push_back(d);
      }
    } else if (key == "reservation_depths") {
      for (const auto& token : util::parse_csv_line(value)) {
        std::int32_t depth = 0;
        if (!parse_i32(token, depth) || depth < 0) {
          fail(error, "bad reservation depth: " + token);
          return std::nullopt;
        }
        plan.matrix.reservation_depths.push_back(depth);
      }
    } else if (key.rfind("profile.", 0) == 0) {
      const std::string rest = key.substr(8);
      const auto dot = rest.find('.');
      std::int64_t index = 0;
      if (dot == std::string::npos || !parse_i64(rest.substr(0, dot), index) || index < 0) {
        fail(error, "bad profile key: " + key);
        return std::nullopt;
      }
      const std::string field = rest.substr(dot + 1);
      if (field == "name") {
        profile_names[index] = value;
      } else if (field.rfind("event.", 0) == 0) {
        std::int64_t ev_index = 0;
        if (!parse_i64(field.substr(6), ev_index) || ev_index < 0) {
          fail(error, "bad profile event key: " + key);
          return std::nullopt;
        }
        profile_events[index][ev_index] = value;
      } else {
        fail(error, "unknown profile field: " + key);
        return std::nullopt;
      }
    } else if (key.rfind("layout.", 0) == 0) {
      const std::string rest = key.substr(7);
      const auto dot = rest.find('.');
      std::int64_t index = 0;
      if (dot == std::string::npos || !parse_i64(rest.substr(0, dot), index) || index < 0) {
        fail(error, "bad layout key: " + key);
        return std::nullopt;
      }
      const std::string field = rest.substr(dot + 1);
      if (field == "name") {
        layout_names[index] = value;
      } else if (field.rfind("partition.", 0) == 0) {
        std::int64_t part_index = 0;
        if (!parse_i64(field.substr(10), part_index) || part_index < 0) {
          fail(error, "bad layout partition key: " + key);
          return std::nullopt;
        }
        trace::ClusterPartition part;
        std::string part_error;
        if (!scenario::parse_partition_csv(value, part, &part_error)) {
          fail(error, "layout " + part_error);
          return std::nullopt;
        }
        layout_partitions[index][part_index] = part;
      } else {
        fail(error, "unknown layout field: " + key);
        return std::nullopt;
      }
    } else if (key.rfind("base.", 0) == 0) {
      base_text << key.substr(5) << '=' << value << '\n';
    } else {
      fail(error, "unknown key: " + key);
      return std::nullopt;
    }
    if (!ok) {
      fail(error, "bad value for " + key + ": " + value);
      return std::nullopt;
    }
  }

  if (plan.methods.empty()) {
    fail(error, "plan needs a methods= list");
    return std::nullopt;
  }
  for (std::size_t a = 0; a < plan.methods.size(); ++a) {
    for (std::size_t b = a + 1; b < plan.methods.size(); ++b) {
      if (plan.methods[a] == plan.methods[b]) {
        fail(error, "duplicate method: " + core::method_name(plan.methods[a]));
        return std::nullopt;
      }
    }
  }
  // The name becomes a single path component of the artifact run dir; a
  // separator or ".." would escape the store root.
  if (plan.name.empty() || plan.name.find('/') != std::string::npos ||
      plan.name.find('\\') != std::string::npos || plan.name.find("..") != std::string::npos) {
    fail(error, "plan name must be a plain path component: '" + plan.name + "'");
    return std::nullopt;
  }

  std::string base_error;
  const auto base = scenario::parse_scenario(base_text.str(), &base_error);
  if (!base) {
    fail(error, "bad base scenario: " + base_error);
    return std::nullopt;
  }
  plan.matrix.base = *base;

  for (const auto& [index, name] : profile_names) {
    scenario::EventProfile profile;
    profile.name = name;
    if (const auto evs = profile_events.find(index); evs != profile_events.end()) {
      for (const auto& [ev_index, csv] : evs->second) {
        scenario::ScenarioEvent ev;
        std::string ev_error;
        if (!scenario::parse_event_csv(csv, ev, &ev_error)) {
          fail(error, "bad profile event: " + ev_error);
          return std::nullopt;
        }
        profile.events.push_back(ev);
      }
    }
    plan.matrix.event_profiles.push_back(std::move(profile));
  }
  for (const auto& [index, evs] : profile_events) {
    if (!profile_names.count(index)) {
      fail(error, "profile." + std::to_string(index) + " has events but no name");
      return std::nullopt;
    }
  }

  for (const auto& [index, name] : layout_names) {
    scenario::PartitionLayout layout;
    layout.name = name;
    if (const auto parts = layout_partitions.find(index); parts != layout_partitions.end()) {
      for (const auto& [part_index, part] : parts->second) layout.partitions.push_back(part);
    }
    plan.matrix.partition_layouts.push_back(std::move(layout));
  }
  for (const auto& [index, parts] : layout_partitions) {
    if (!layout_names.count(index)) {
      fail(error, "layout." + std::to_string(index) + " has partitions but no name");
      return std::nullopt;
    }
  }

  // Semantic validation of the matrix axes: every (cluster, profile)
  // combination the expansion will produce must be a valid scenario —
  // unknown cluster names, oversize bursts, and recurring calendars past
  // the horizon fail here with a diagnostic instead of throwing (or
  // silently no-op'ing) mid-run from a worker thread.
  const std::vector<std::string> clusters = plan.matrix.clusters.empty()
                                                ? std::vector<std::string>{plan.matrix.base.cluster}
                                                : plan.matrix.clusters;
  std::vector<scenario::EventProfile> profiles = plan.matrix.event_profiles;
  if (profiles.empty()) profiles.push_back({"base", plan.matrix.base.events});
  std::vector<scenario::PartitionLayout> layouts = plan.matrix.partition_layouts;
  if (layouts.empty()) layouts.push_back({"base", plan.matrix.base.partitions});
  for (const auto& cluster : clusters) {
    scenario::ScenarioSpec probe = plan.matrix.base;
    probe.cluster = cluster;
    for (const auto& profile : profiles) {
      probe.events = profile.events;
      for (const auto& layout : layouts) {
        probe.partitions = layout.partitions;
        std::string probe_error;
        if (!scenario::validate_spec(probe, &probe_error)) {
          fail(error, "invalid cell (cluster " + cluster + ", profile " + profile.name +
                          ", layout " + layout.name + "): " + probe_error);
          return std::nullopt;
        }
      }
    }
  }
  return plan;
}

std::optional<ExperimentPlan> load_plan_file(const std::string& path, std::string* error) {
  std::ifstream in(path);
  if (!in) {
    fail(error, "cannot open plan file: " + path);
    return std::nullopt;
  }
  std::ostringstream text;
  text << in.rdbuf();
  return parse_plan(text.str(), error);
}

bool save_plan_file(const ExperimentPlan& plan, const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  out << plan.to_text();
  return static_cast<bool>(out);
}

core::PipelineConfig cell_pipeline_config(const ExperimentPlan& plan,
                                          const scenario::ScenarioSpec& cell) {
  auto cfg = scenario::to_pipeline_config(cell, plan.budget.job_nodes);
  cfg.collector.anchors = plan.budget.collector_anchors;
  cfg.pretrain.epochs = plan.budget.pretrain_epochs;
  cfg.online.episodes = plan.budget.online_episodes;
  cfg.eval.episodes = plan.budget.eval_episodes;
  cfg.episode.warmup = plan.budget.warmup;
  cfg.episode.max_horizon = plan.budget.max_horizon;
  cfg.episode.job_runtime = plan.budget.job_runtime;
  cfg.episode.job_limit = plan.budget.job_runtime;
  // Capacity events reach the training/evaluation episodes themselves (a
  // PR 3 follow-on): every episode simulator of the cell replays the
  // cell's outages/drains/preemptions, not just the background metrics.
  cfg.episode.cluster_events = scenario::capacity_events(cell);
  return cfg;
}

}  // namespace mirage::lab

#include "nn/tensor.hpp"

#include <algorithm>
#include <cmath>

#include "nn/parallel.hpp"
#include "obs/span.hpp"
#include "util/thread_pool.hpp"

namespace mirage::nn {

Tensor Tensor::row_vector(std::span<const float> values) {
  Tensor t(1, values.size());
  std::copy(values.begin(), values.end(), t.data());
  return t;
}

Tensor& Tensor::add(const Tensor& other) {
  assert(size() == other.size());
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Tensor& Tensor::add_scaled(const Tensor& other, float s) {
  assert(size() == other.size());
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += s * other.data_[i];
  return *this;
}

Tensor& Tensor::mul(const Tensor& other) {
  assert(size() == other.size());
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] *= other.data_[i];
  return *this;
}

Tensor& Tensor::scale(float s) {
  for (auto& v : data_) v *= s;
  return *this;
}

float Tensor::squared_norm() const {
  float acc = 0.0f;
  for (float v : data_) acc += v * v;
  return acc;
}

// --------------------------------------------------------------------------
// Parallel deterministic GEMM.
//
// All three variants run through ONE scheme: the output matrix is cut into
// a fixed 2-D tile grid (kTileM x kTileN, a function of the output shape
// only — never of the thread count), tiles are assigned to worker slots
// round-robin by ascending tile index, and every slot computes its tiles
// with the SAME kernel the serial path uses on the single whole-matrix
// tile. Slots own disjoint regions of `out` (no partial k-sums are ever
// merged — each slot owns an element's full k reduction), and within a
// kernel every element accumulates its k-products in strictly ascending k
// order. The value of out[i][j] therefore depends only on (a, b, i, j),
// not on the tile boundaries or the thread count: parallel(T) == serial
// BITWISE for every T, which is what lets the lab's parallel-cell sweeps
// run GEMM at 1 thread while serial runs fan out across the machine and
// still produce bitwise-identical leaderboards.
//
// Small matrices (work < kParallelMinWork) take the serial whole-matrix
// path outright so per-layer forwards of tiny models never pay dispatch
// overhead (futures + wakeups cost microseconds; a 64^3 GEMM is one).
namespace {

constexpr std::size_t kBlockK = 128;  // ~n*512 B of B per block: L1/L2-resident
constexpr std::size_t kTileM = 16;    // multiple of the 4-row register block
constexpr std::size_t kTileN = 256;   // long contiguous j runs for the vectorizer
/// Parallelize only above this m*k*n volume (~a 64^3 GEMM).
constexpr std::size_t kParallelMinWork = 64 * 64 * 64;

/// ikj-order tile kernel for out[i0:i1, j0:j1] += A * B (A MxK, B KxN).
/// The k loop is cache-blocked so one block of B rows stays hot across
/// every row of the tile, and rows are register-blocked 4 at a time: one
/// sweep of a B row feeds four independent output-row accumulation
/// streams (4x fewer B loads, 4 independent FMA chains for the
/// vectorizer). For each output element the products still accumulate in
/// strictly ascending k order (blocks ascend, k ascends within a block,
/// and a row's update at k happens iff a[i][k] != 0 exactly as in the
/// single-row form), so results are bitwise identical to the unblocked
/// serial kernel regardless of tiling.
void gemm_nn_tile(const float* __restrict a, const float* __restrict b,
                  float* __restrict out, std::size_t k, std::size_t n, std::size_t i0,
                  std::size_t i1, std::size_t j0, std::size_t j1, bool accumulate) {
  if (!accumulate) {
    for (std::size_t i = i0; i < i1; ++i) std::fill(out + i * n + j0, out + i * n + j1, 0.0f);
  }
  for (std::size_t p0 = 0; p0 < k; p0 += kBlockK) {
    const std::size_t p1 = std::min(k, p0 + kBlockK);
    std::size_t i = i0;
    for (; i + 4 <= i1; i += 4) {
      const float* __restrict a0 = a + (i + 0) * k;
      const float* __restrict a1 = a + (i + 1) * k;
      const float* __restrict a2 = a + (i + 2) * k;
      const float* __restrict a3 = a + (i + 3) * k;
      float* __restrict o0 = out + (i + 0) * n;
      float* __restrict o1 = out + (i + 1) * n;
      float* __restrict o2 = out + (i + 2) * n;
      float* __restrict o3 = out + (i + 3) * n;
      for (std::size_t p = p0; p < p1; ++p) {
        const float av0 = a0[p], av1 = a1[p], av2 = a2[p], av3 = a3[p];
        const float* __restrict brow = b + p * n;
        if (av0 != 0.0f && av1 != 0.0f && av2 != 0.0f && av3 != 0.0f) {
          for (std::size_t j = j0; j < j1; ++j) {
            const float bv = brow[j];
            o0[j] += av0 * bv;
            o1[j] += av1 * bv;
            o2[j] += av2 * bv;
            o3[j] += av3 * bv;
          }
        } else {
          // Per-row zero skip, exactly as the single-row form takes it:
          // a row updates at this k iff its a-value is nonzero.
          if (av0 != 0.0f) {
            for (std::size_t j = j0; j < j1; ++j) o0[j] += av0 * brow[j];
          }
          if (av1 != 0.0f) {
            for (std::size_t j = j0; j < j1; ++j) o1[j] += av1 * brow[j];
          }
          if (av2 != 0.0f) {
            for (std::size_t j = j0; j < j1; ++j) o2[j] += av2 * brow[j];
          }
          if (av3 != 0.0f) {
            for (std::size_t j = j0; j < j1; ++j) o3[j] += av3 * brow[j];
          }
        }
      }
    }
    for (; i < i1; ++i) {
      const float* __restrict arow = a + i * k;
      float* __restrict orow = out + i * n;
      for (std::size_t p = p0; p < p1; ++p) {
        const float av = arow[p];
        if (av == 0.0f) continue;
        const float* __restrict brow = b + p * n;
        for (std::size_t j = j0; j < j1; ++j) orow[j] += av * brow[j];
      }
    }
  }
}

/// Tile kernel for out[i0:i1, j0:j1] += A * B^T (A MxK, B NxK). The j loop
/// is register-blocked: kBlockJ rows of B are dotted against one A row in
/// the same sweep (kBlockJ independent accumulation chains, one pass over
/// the A row per block). Each (i, j) element accumulates its k products in
/// ascending order into its own private scalar before the single += into
/// out, so results are bitwise independent of tiling and blocking.
void gemm_nt_tile(const float* __restrict a, const float* __restrict b,
                  float* __restrict out, std::size_t k, std::size_t n, std::size_t i0,
                  std::size_t i1, std::size_t j0, std::size_t j1, bool accumulate) {
  constexpr std::size_t kBlockJ = 8;
  for (std::size_t i = i0; i < i1; ++i) {
    const float* __restrict arow = a + i * k;
    float* __restrict orow = out + i * n;
    if (!accumulate) std::fill(orow + j0, orow + j1, 0.0f);
    std::size_t j = j0;
    for (; j + kBlockJ <= j1; j += kBlockJ) {
      const float* __restrict brows[kBlockJ];
      float acc[kBlockJ];
      for (std::size_t jj = 0; jj < kBlockJ; ++jj) {
        brows[jj] = b + (j + jj) * k;
        acc[jj] = 0.0f;
      }
      for (std::size_t p = 0; p < k; ++p) {
        const float av = arow[p];
        for (std::size_t jj = 0; jj < kBlockJ; ++jj) acc[jj] += av * brows[jj][p];
      }
      for (std::size_t jj = 0; jj < kBlockJ; ++jj) orow[j + jj] += acc[jj];
    }
    for (; j < j1; ++j) {
      const float* __restrict brow = b + j * k;
      float acc = 0.0f;
      for (std::size_t p = 0; p < k; ++p) acc += arow[p] * brow[p];
      orow[j] += acc;
    }
  }
}

/// Tile kernel for out[i0:i1, j0:j1] += A^T * B (A KxM, B KxN). k stays the
/// OUTER loop (one pass over A and B rows feeds every tile row), so each
/// element accumulates ascending-k directly into out — the same order the
/// whole-matrix serial sweep uses.
void gemm_tn_tile(const float* __restrict a, const float* __restrict b,
                  float* __restrict out, std::size_t m, std::size_t k, std::size_t n,
                  std::size_t i0, std::size_t i1, std::size_t j0, std::size_t j1,
                  bool accumulate) {
  if (!accumulate) {
    for (std::size_t i = i0; i < i1; ++i) std::fill(out + i * n + j0, out + i * n + j1, 0.0f);
  }
  for (std::size_t p = 0; p < k; ++p) {
    const float* __restrict arow = a + p * m;
    const float* __restrict brow = b + p * n;
    for (std::size_t i = i0; i < i1; ++i) {
      const float av = arow[i];
      if (av == 0.0f) continue;
      float* __restrict orow = out + i * n;
      for (std::size_t j = j0; j < j1; ++j) orow[j] += av * brow[j];
    }
  }
}

/// Dispatch one GEMM over the fixed output-tile grid. `kernel(i0,i1,j0,j1)`
/// must fully compute that output region (including its zero-fill when not
/// accumulating). `work` = m*k*n decides the serial fast path.
template <typename Kernel>
void dispatch_tiles(std::size_t m, std::size_t n, std::size_t work, Kernel&& kernel) {
  const std::size_t threads = num_threads();
  if (threads <= 1 || work < kParallelMinWork || m == 0 || n == 0) {
    kernel(std::size_t{0}, m, std::size_t{0}, n);
    return;
  }
  const std::size_t tiles_m = (m + kTileM - 1) / kTileM;
  const std::size_t tiles_n = (n + kTileN - 1) / kTileN;
  const std::size_t tiles = tiles_m * tiles_n;
  if (tiles <= 1) {
    kernel(std::size_t{0}, m, std::size_t{0}, n);
    return;
  }
  // Static schedule: slot w owns tiles {w, w+T, w+2T, ...} in ascending
  // order. Which OS thread runs a slot is irrelevant to results — slots
  // write disjoint tiles and every element's k reduction lives entirely
  // inside one slot.
  const std::size_t T = std::min(threads, tiles);
  detail::gemm_pool().run_static(T, [&](std::size_t w) {
    for (std::size_t t = w; t < tiles; t += T) {
      const std::size_t ti = t / tiles_n;
      const std::size_t tj = t % tiles_n;
      const std::size_t i0 = ti * kTileM;
      const std::size_t j0 = tj * kTileN;
      kernel(i0, std::min(m, i0 + kTileM), j0, std::min(n, j0 + kTileN));
    }
  });
}

}  // namespace

void matmul(const Tensor& a, const Tensor& b, Tensor& out, bool accumulate) {
  OBS_SPAN_SAMPLED("nn_gemm", 4);
  assert(a.cols() == b.rows());
  if (out.rows() != a.rows() || out.cols() != b.cols()) {
    assert(!accumulate);
    out = Tensor(a.rows(), b.cols());
  }
  const std::size_t m = a.rows(), k = a.cols(), n = b.cols();
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out.data();
  dispatch_tiles(m, n, m * k * n,
                 [=](std::size_t i0, std::size_t i1, std::size_t j0, std::size_t j1) {
                   gemm_nn_tile(pa, pb, po, k, n, i0, i1, j0, j1, accumulate);
                 });
}

void matmul_tn(const Tensor& a, const Tensor& b, Tensor& out, bool accumulate) {
  // out[MxN] = A^T * B where A is [KxM], B is [KxN].
  OBS_SPAN_SAMPLED("nn_gemm", 4);
  assert(a.rows() == b.rows());
  const std::size_t m = a.cols(), k = a.rows(), n = b.cols();
  if (out.rows() != m || out.cols() != n) {
    assert(!accumulate);
    out = Tensor(m, n);
  }
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out.data();
  dispatch_tiles(m, n, m * k * n,
                 [=](std::size_t i0, std::size_t i1, std::size_t j0, std::size_t j1) {
                   gemm_tn_tile(pa, pb, po, m, k, n, i0, i1, j0, j1, accumulate);
                 });
}

void matmul_nt(const Tensor& a, const Tensor& b, Tensor& out, bool accumulate) {
  // out[MxN] = A * B^T where A is [MxK], B is [NxK].
  OBS_SPAN_SAMPLED("nn_gemm", 4);
  assert(a.cols() == b.cols());
  const std::size_t m = a.rows(), k = a.cols(), n = b.rows();
  if (out.rows() != m || out.cols() != n) {
    assert(!accumulate);
    out = Tensor(m, n);
  }
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out.data();
  dispatch_tiles(m, n, m * k * n,
                 [=](std::size_t i0, std::size_t i1, std::size_t j0, std::size_t j1) {
                   gemm_nt_tile(pa, pb, po, k, n, i0, i1, j0, j1, accumulate);
                 });
}

void add_bias_rows(Tensor& x, const Tensor& bias) {
  assert(bias.rows() == 1 && bias.cols() == x.cols());
  for (std::size_t r = 0; r < x.rows(); ++r) {
    float* row = x.row(r);
    const float* b = bias.data();
    for (std::size_t c = 0; c < x.cols(); ++c) row[c] += b[c];
  }
}

void softmax_rows(Tensor& x) {
  for (std::size_t r = 0; r < x.rows(); ++r) {
    float* row = x.row(r);
    float mx = row[0];
    for (std::size_t c = 1; c < x.cols(); ++c) mx = std::max(mx, row[c]);
    float sum = 0.0f;
    for (std::size_t c = 0; c < x.cols(); ++c) {
      row[c] = std::exp(row[c] - mx);
      sum += row[c];
    }
    const float inv = 1.0f / sum;
    for (std::size_t c = 0; c < x.cols(); ++c) row[c] *= inv;
  }
}

}  // namespace mirage::nn

#include "nn/tensor.hpp"

#include <algorithm>
#include <cmath>

#include "obs/span.hpp"

namespace mirage::nn {

Tensor Tensor::row_vector(std::span<const float> values) {
  Tensor t(1, values.size());
  std::copy(values.begin(), values.end(), t.data());
  return t;
}

Tensor& Tensor::add(const Tensor& other) {
  assert(size() == other.size());
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Tensor& Tensor::add_scaled(const Tensor& other, float s) {
  assert(size() == other.size());
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += s * other.data_[i];
  return *this;
}

Tensor& Tensor::mul(const Tensor& other) {
  assert(size() == other.size());
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] *= other.data_[i];
  return *this;
}

Tensor& Tensor::scale(float s) {
  for (auto& v : data_) v *= s;
  return *this;
}

float Tensor::squared_norm() const {
  float acc = 0.0f;
  for (float v : data_) acc += v * v;
  return acc;
}

namespace {
/// ikj-order GEMM: streams B rows, vectorizes the inner j loop. The k loop
/// is cache-blocked so one block of B rows stays hot across every row of
/// A instead of re-streaming all of B per row. For each output element the
/// products still accumulate in strictly ascending k order (blocks ascend,
/// k ascends within a block), so results are bitwise identical to the
/// unblocked form.
void gemm_ikj(const float* __restrict a, const float* __restrict b, float* __restrict out,
              std::size_t m, std::size_t k, std::size_t n, bool accumulate) {
  if (!accumulate) std::fill(out, out + m * n, 0.0f);
  constexpr std::size_t kBlockK = 128;  // ~n*512 B of B per block: L1/L2-resident
  for (std::size_t p0 = 0; p0 < k; p0 += kBlockK) {
    const std::size_t p1 = std::min(k, p0 + kBlockK);
    for (std::size_t i = 0; i < m; ++i) {
      const float* __restrict arow = a + i * k;
      float* __restrict orow = out + i * n;
      for (std::size_t p = p0; p < p1; ++p) {
        const float av = arow[p];
        if (av == 0.0f) continue;
        const float* __restrict brow = b + p * n;
        for (std::size_t j = 0; j < n; ++j) orow[j] += av * brow[j];
      }
    }
  }
}
}  // namespace

void matmul(const Tensor& a, const Tensor& b, Tensor& out, bool accumulate) {
  OBS_SPAN_SAMPLED("nn_gemm", 4);
  assert(a.cols() == b.rows());
  if (out.rows() != a.rows() || out.cols() != b.cols()) {
    assert(!accumulate);
    out = Tensor(a.rows(), b.cols());
  }
  gemm_ikj(a.data(), b.data(), out.data(), a.rows(), a.cols(), b.cols(), accumulate);
}

void matmul_tn(const Tensor& a, const Tensor& b, Tensor& out, bool accumulate) {
  // out[MxN] = A^T * B where A is [KxM], B is [KxN].
  assert(a.rows() == b.rows());
  const std::size_t m = a.cols(), k = a.rows(), n = b.cols();
  if (out.rows() != m || out.cols() != n) {
    assert(!accumulate);
    out = Tensor(m, n);
  }
  if (!accumulate) out.zero();
  for (std::size_t p = 0; p < k; ++p) {
    const float* arow = a.row(p);
    const float* brow = b.row(p);
    for (std::size_t i = 0; i < m; ++i) {
      const float av = arow[i];
      if (av == 0.0f) continue;
      float* orow = out.row(i);
      for (std::size_t j = 0; j < n; ++j) orow[j] += av * brow[j];
    }
  }
}

void matmul_nt(const Tensor& a, const Tensor& b, Tensor& out, bool accumulate) {
  // out[MxN] = A * B^T where A is [MxK], B is [NxK]. The j loop is
  // register-blocked: kBlockJ rows of B are dotted against one A row in
  // the same sweep, giving kBlockJ independent accumulation chains (ILP)
  // and one pass over the A row per block instead of per column. Each
  // (i, j) element still accumulates its k products in ascending order
  // into its own scalar before the single += into out, so results are
  // bitwise identical to the plain dot-per-column form.
  OBS_SPAN_SAMPLED("nn_gemm", 4);
  assert(a.cols() == b.cols());
  const std::size_t m = a.rows(), k = a.cols(), n = b.rows();
  if (out.rows() != m || out.cols() != n) {
    assert(!accumulate);
    out = Tensor(m, n);
  }
  if (!accumulate) out.zero();
  constexpr std::size_t kBlockJ = 8;
  for (std::size_t i = 0; i < m; ++i) {
    const float* __restrict arow = a.row(i);
    float* __restrict orow = out.row(i);
    std::size_t j = 0;
    for (; j + kBlockJ <= n; j += kBlockJ) {
      const float* __restrict brows[kBlockJ];
      float acc[kBlockJ];
      for (std::size_t jj = 0; jj < kBlockJ; ++jj) {
        brows[jj] = b.row(j + jj);
        acc[jj] = 0.0f;
      }
      for (std::size_t p = 0; p < k; ++p) {
        const float av = arow[p];
        for (std::size_t jj = 0; jj < kBlockJ; ++jj) acc[jj] += av * brows[jj][p];
      }
      for (std::size_t jj = 0; jj < kBlockJ; ++jj) orow[j + jj] += acc[jj];
    }
    for (; j < n; ++j) {
      const float* __restrict brow = b.row(j);
      float acc = 0.0f;
      for (std::size_t p = 0; p < k; ++p) acc += arow[p] * brow[p];
      orow[j] += acc;
    }
  }
}

void add_bias_rows(Tensor& x, const Tensor& bias) {
  assert(bias.rows() == 1 && bias.cols() == x.cols());
  for (std::size_t r = 0; r < x.rows(); ++r) {
    float* row = x.row(r);
    const float* b = bias.data();
    for (std::size_t c = 0; c < x.cols(); ++c) row[c] += b[c];
  }
}

void softmax_rows(Tensor& x) {
  for (std::size_t r = 0; r < x.rows(); ++r) {
    float* row = x.row(r);
    float mx = row[0];
    for (std::size_t c = 1; c < x.cols(); ++c) mx = std::max(mx, row[c]);
    float sum = 0.0f;
    for (std::size_t c = 0; c < x.cols(); ++c) {
      row[c] = std::exp(row[c] - mx);
      sum += row[c];
    }
    const float inv = 1.0f / sum;
    for (std::size_t c = 0; c < x.cols(); ++c) row[c] *= inv;
  }
}

}  // namespace mirage::nn

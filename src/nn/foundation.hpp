// Foundation models (paper §4.6-4.7): a transformer encoder over the k-step
// state history, and an MoE ensemble of such encoders with a softmax gate.
//
// Input convention (paper §4.3): a batch of flattened state matrices,
// [B, k*(m+1)] where each of the k frames is the m=40 state variables plus
// the ordinal action variable (+1 submit / -1 no-submit for the Q-head,
// always 0 for the P-head). The foundation embeds each frame, adds
// sinusoidal positions, runs encoder layers and mean-pools to [B, d_model].
#pragma once

#include <memory>
#include <vector>

#include "nn/attention.hpp"
#include "nn/layers.hpp"

namespace mirage::nn {

struct FoundationConfig {
  std::size_t history_len = 24;  ///< k; paper default 144 (10-min x 24 h)
  std::size_t state_dim = 41;    ///< m+1 (40 state vars + action ordinal)
  std::size_t d_model = 32;
  std::size_t num_heads = 2;
  std::size_t num_layers = 2;
  std::size_t ffn_hidden = 64;
  float dropout = 0.0f;
  // MoE-only knobs.
  std::size_t moe_experts = 4;   ///< paper default 10
  bool moe_top1 = false;         ///< Top-1 sparse gate vs dense weighted average

  std::size_t input_dim() const { return history_len * state_dim; }
};

/// Abstract foundation: [B, k*(m+1)] -> pooled [B, d_model].
class Foundation : public Module {
 public:
  virtual const FoundationConfig& config() const = 0;
  /// Deep copy (independent parameters and caches).
  virtual std::unique_ptr<Foundation> clone() const = 0;
  /// Inference-only forward: bitwise-identical outputs to
  /// forward(x, false), but free to skip backward bookkeeping and exploit
  /// inference-only structure (see MoEFoundation's sparse Top-1 routing).
  virtual Tensor infer(const Tensor& x) { return forward(x, /*train=*/false); }
};

/// Pre-LN transformer encoder layer: x += MHSA(LN(x)); x += FFN(LN(x)).
class TransformerEncoderLayer : public Module {
 public:
  TransformerEncoderLayer(std::size_t seq_len, std::size_t d_model, std::size_t num_heads,
                          std::size_t ffn_hidden, float dropout, util::Rng& rng,
                          const std::string& name);

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  void collect_params(std::vector<Parameter*>& out) override;

 private:
  LayerNorm ln1_, ln2_;
  MultiHeadSelfAttention attn_;
  Linear ffn1_, ffn2_;
  GELU gelu_;
  Dropout drop1_, drop2_;
};

class TransformerFoundation : public Foundation {
 public:
  TransformerFoundation(FoundationConfig config, std::uint64_t seed,
                        const std::string& name = "tf");
  TransformerFoundation(const TransformerFoundation& other);
  TransformerFoundation& operator=(const TransformerFoundation&) = delete;

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  void collect_params(std::vector<Parameter*>& out) override;
  const FoundationConfig& config() const override { return config_; }
  std::unique_ptr<Foundation> clone() const override;

 private:
  FoundationConfig config_;
  std::string name_;
  std::uint64_t seed_;
  Linear embed_;
  Tensor positional_;  ///< [k, d_model] sinusoidal table (not trained)
  std::vector<std::unique_ptr<TransformerEncoderLayer>> layers_;
  LayerNorm final_ln_;
  std::size_t batch_ = 0;
};

/// Mixture of transformer experts with a softmax gate over the mean frame
/// (paper Eq. 7 / Fig 6). Dense mode combines all experts with the gate
/// weights; Top-1 mode routes each sample to its argmax expert (selection
/// semantics; experts are still evaluated densely on CPU — the sparse
/// compute saving is an optimization the paper also found unnecessary).
class MoEFoundation : public Foundation {
 public:
  MoEFoundation(FoundationConfig config, std::uint64_t seed, const std::string& name = "moe");
  MoEFoundation(const MoEFoundation& other);
  MoEFoundation& operator=(const MoEFoundation&) = delete;

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  void collect_params(std::vector<Parameter*>& out) override;
  const FoundationConfig& config() const override { return config_; }
  std::unique_ptr<Foundation> clone() const override;

  /// Top-1 serving evaluates ONLY each row's argmax expert: rows are
  /// routed by the gate, gathered into per-expert sub-batches, and each
  /// expert runs once over its rows — an ~E-fold compute saving over the
  /// dense evaluate-then-select forward, with bitwise-identical outputs
  /// (selection multiplies the winning expert by exactly 1.0). Dense-gate
  /// configs fall back to forward(x, false). This is the optimization the
  /// paper left on the table for training; batched online serving is
  /// where it pays off (per-expert sub-batches stay large).
  Tensor infer(const Tensor& x) override;

  std::size_t num_experts() const { return experts_.size(); }

 private:
  /// Mean frame per item: [B, state_dim] (the gate's input).
  Tensor mean_frames(const Tensor& x) const;

  FoundationConfig config_;
  std::string name_;
  Linear gate_;
  std::vector<std::unique_ptr<TransformerFoundation>> experts_;
  // Caches.
  Tensor gate_probs_;               ///< [B, E] (post-softmax or one-hot)
  Tensor gate_soft_;                ///< [B, E] softmax (for top-1 backward)
  std::vector<Tensor> expert_out_;  ///< per expert: [B, d_model]
  Tensor cached_mean_frames_;
  std::size_t cached_k_ = 0;
};

enum class FoundationType { kTransformer, kMoE };

std::unique_ptr<Foundation> make_foundation(FoundationType type, const FoundationConfig& config,
                                            std::uint64_t seed);

}  // namespace mirage::nn

#include "nn/serialize.hpp"

#include <cstdint>
#include <cstring>
#include <fstream>

namespace mirage::nn {

namespace {
constexpr char kMagic[4] = {'M', 'I', 'R', 'G'};
constexpr std::uint32_t kVersion = 1;

template <typename T>
void append(std::vector<char>& buf, const T& v) {
  const char* p = reinterpret_cast<const char*>(&v);
  buf.insert(buf.end(), p, p + sizeof(T));
}

template <typename T>
bool read(const std::vector<char>& buf, std::size_t& pos, T& out) {
  if (pos + sizeof(T) > buf.size()) return false;
  std::memcpy(&out, buf.data() + pos, sizeof(T));
  pos += sizeof(T);
  return true;
}
}  // namespace

std::vector<char> serialize_params(const std::vector<Parameter*>& params) {
  std::vector<char> buf;
  buf.insert(buf.end(), kMagic, kMagic + 4);
  append(buf, kVersion);
  append(buf, static_cast<std::uint64_t>(params.size()));
  for (const auto* p : params) {
    append(buf, static_cast<std::uint32_t>(p->name.size()));
    buf.insert(buf.end(), p->name.begin(), p->name.end());
    append(buf, static_cast<std::uint64_t>(p->value.rows()));
    append(buf, static_cast<std::uint64_t>(p->value.cols()));
    const char* data = reinterpret_cast<const char*>(p->value.data());
    buf.insert(buf.end(), data, data + p->value.size() * sizeof(float));
  }
  return buf;
}

bool deserialize_params(const std::vector<char>& bytes, const std::vector<Parameter*>& params) {
  std::size_t pos = 0;
  if (bytes.size() < 4 || std::memcmp(bytes.data(), kMagic, 4) != 0) return false;
  pos = 4;
  std::uint32_t version = 0;
  std::uint64_t count = 0;
  if (!read(bytes, pos, version) || version != kVersion) return false;
  if (!read(bytes, pos, count) || count != params.size()) return false;

  // Validate everything first, collecting value offsets.
  std::vector<std::size_t> offsets(params.size());
  for (std::size_t i = 0; i < params.size(); ++i) {
    std::uint32_t name_len = 0;
    if (!read(bytes, pos, name_len)) return false;
    if (pos + name_len > bytes.size()) return false;
    const std::string name(bytes.data() + pos, name_len);
    pos += name_len;
    std::uint64_t rows = 0, cols = 0;
    if (!read(bytes, pos, rows) || !read(bytes, pos, cols)) return false;
    const auto* p = params[i];
    if (name != p->name || rows != p->value.rows() || cols != p->value.cols()) return false;
    offsets[i] = pos;
    const std::size_t nbytes = static_cast<std::size_t>(rows * cols) * sizeof(float);
    if (pos + nbytes > bytes.size()) return false;
    pos += nbytes;
  }
  // Then apply.
  for (std::size_t i = 0; i < params.size(); ++i) {
    auto* p = params[i];
    std::memcpy(p->value.data(), bytes.data() + offsets[i], p->value.size() * sizeof(float));
  }
  return true;
}

bool save_params(const std::vector<Parameter*>& params, const std::string& path) {
  const auto buf = serialize_params(params);
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  out.write(buf.data(), static_cast<std::streamsize>(buf.size()));
  return static_cast<bool>(out);
}

bool load_params(const std::vector<Parameter*>& params, const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) return false;
  const auto size = static_cast<std::size_t>(in.tellg());
  in.seekg(0);
  std::vector<char> buf(size);
  in.read(buf.data(), static_cast<std::streamsize>(size));
  if (!in) return false;
  return deserialize_params(buf, params);
}

}  // namespace mirage::nn

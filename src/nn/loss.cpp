#include "nn/loss.hpp"

#include <cassert>
#include <cmath>

namespace mirage::nn {

std::pair<float, Tensor> mse_loss(const Tensor& pred, const Tensor& target) {
  assert(pred.size() == target.size());
  Tensor grad(pred.rows(), pred.cols());
  const float inv_n = 1.0f / static_cast<float>(pred.size());
  float loss = 0.0f;
  const auto p = pred.flat();
  const auto t = target.flat();
  auto g = grad.flat();
  for (std::size_t i = 0; i < p.size(); ++i) {
    const float d = p[i] - t[i];
    loss += d * d;
    g[i] = 2.0f * d * inv_n;
  }
  return {loss * inv_n, std::move(grad)};
}

std::pair<float, Tensor> huber_loss(const Tensor& pred, const Tensor& target, float delta) {
  assert(pred.size() == target.size());
  Tensor grad(pred.rows(), pred.cols());
  const float inv_n = 1.0f / static_cast<float>(pred.size());
  float loss = 0.0f;
  const auto p = pred.flat();
  const auto t = target.flat();
  auto g = grad.flat();
  for (std::size_t i = 0; i < p.size(); ++i) {
    const float d = p[i] - t[i];
    if (std::abs(d) <= delta) {
      loss += 0.5f * d * d;
      g[i] = d * inv_n;
    } else {
      loss += delta * (std::abs(d) - 0.5f * delta);
      g[i] = (d > 0 ? delta : -delta) * inv_n;
    }
  }
  return {loss * inv_n, std::move(grad)};
}

std::pair<float, Tensor> cross_entropy_from_probs(const Tensor& probs,
                                                  const std::vector<int>& labels,
                                                  const std::vector<float>& sample_weights) {
  assert(probs.rows() == labels.size());
  Tensor grad(probs.rows(), probs.cols());
  const float inv_b = 1.0f / static_cast<float>(probs.rows());
  float loss = 0.0f;
  for (std::size_t b = 0; b < probs.rows(); ++b) {
    const float w = sample_weights.empty() ? 1.0f : sample_weights[b];
    const auto label = static_cast<std::size_t>(labels[b]);
    const float p = std::max(probs.at(b, label), 1e-12f);
    loss += -w * std::log(p);
    float* g = grad.row(b);
    for (std::size_t c = 0; c < probs.cols(); ++c) {
      g[c] = w * (probs.at(b, c) - (c == label ? 1.0f : 0.0f)) * inv_b;
    }
  }
  return {loss * inv_b, std::move(grad)};
}

std::pair<float, Tensor> policy_gradient_loss(const Tensor& probs, const std::vector<int>& actions,
                                              const std::vector<float>& advantages) {
  assert(actions.size() == advantages.size());
  return cross_entropy_from_probs(probs, actions, advantages);
}

}  // namespace mirage::nn

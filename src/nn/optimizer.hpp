// First-order optimizers. Both operate on a fixed parameter list captured
// at construction (pointer stability is the caller's responsibility).
#pragma once

#include <vector>

#include "nn/module.hpp"

namespace mirage::nn {

class Optimizer {
 public:
  explicit Optimizer(std::vector<Parameter*> params) : params_(std::move(params)) {}
  virtual ~Optimizer() = default;

  virtual void step() = 0;
  void zero_grad() { zero_grads(params_); }
  const std::vector<Parameter*>& params() const { return params_; }

 protected:
  std::vector<Parameter*> params_;
};

/// SGD with optional momentum and L2 weight decay.
class SGD : public Optimizer {
 public:
  SGD(std::vector<Parameter*> params, float lr, float momentum = 0.0f, float weight_decay = 0.0f);
  void step() override;

  float lr = 0.01f;

 private:
  float momentum_, weight_decay_;
  std::vector<Tensor> velocity_;
};

/// Adam (paper §4.9 uses Adam for foundation pre-training).
class Adam : public Optimizer {
 public:
  Adam(std::vector<Parameter*> params, float lr, float beta1 = 0.9f, float beta2 = 0.999f,
       float eps = 1e-8f, float weight_decay = 0.0f);
  void step() override;

  float lr = 1e-3f;

 private:
  float beta1_, beta2_, eps_, weight_decay_;
  std::int64_t t_ = 0;
  std::vector<Tensor> m_, v_;
};

}  // namespace mirage::nn

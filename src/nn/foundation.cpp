#include "nn/foundation.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace mirage::nn {

// ------------------------------------------------- TransformerEncoderLayer

TransformerEncoderLayer::TransformerEncoderLayer(std::size_t seq_len, std::size_t d_model,
                                                 std::size_t num_heads, std::size_t ffn_hidden,
                                                 float dropout, util::Rng& rng,
                                                 const std::string& name)
    : ln1_(d_model, name + ".ln1"),
      ln2_(d_model, name + ".ln2"),
      attn_(seq_len, d_model, num_heads, rng, name + ".attn"),
      ffn1_(d_model, ffn_hidden, rng, name + ".ffn1"),
      ffn2_(ffn_hidden, d_model, rng, name + ".ffn2"),
      drop1_(dropout, rng.split()),
      drop2_(dropout, rng.split()) {}

Tensor TransformerEncoderLayer::forward(const Tensor& x, bool train) {
  // Pre-LN residual blocks keep gradients stable for shallow-but-trained-
  // from-scratch encoders.
  Tensor h = x;
  h.add(drop1_.forward(attn_.forward(ln1_.forward(x, train), train), train));
  Tensor out = h;
  out.add(drop2_.forward(ffn2_.forward(gelu_.forward(ffn1_.forward(ln2_.forward(h, train), train), train), train), train));
  return out;
}

Tensor TransformerEncoderLayer::backward(const Tensor& grad_out) {
  // FFN block: out = h + Drop(FFN(LN2(h)))
  Tensor d_h = grad_out;
  {
    Tensor d = drop2_.backward(grad_out);
    d = ffn2_.backward(d);
    d = gelu_.backward(d);
    d = ffn1_.backward(d);
    d = ln2_.backward(d);
    d_h.add(d);
  }
  // Attention block: h = x + Drop(Attn(LN1(x)))
  Tensor d_x = d_h;
  {
    Tensor d = drop1_.backward(d_h);
    d = attn_.backward(d);
    d = ln1_.backward(d);
    d_x.add(d);
  }
  return d_x;
}

void TransformerEncoderLayer::collect_params(std::vector<Parameter*>& out) {
  ln1_.collect_params(out);
  attn_.collect_params(out);
  ln2_.collect_params(out);
  ffn1_.collect_params(out);
  ffn2_.collect_params(out);
}

// ---------------------------------------------------- TransformerFoundation

namespace {
Tensor make_positional_table(std::size_t seq_len, std::size_t d_model) {
  Tensor pe(seq_len, d_model);
  for (std::size_t pos = 0; pos < seq_len; ++pos) {
    for (std::size_t i = 0; i < d_model; ++i) {
      const double angle =
          static_cast<double>(pos) /
          std::pow(10000.0, 2.0 * static_cast<double>(i / 2) / static_cast<double>(d_model));
      pe.at(pos, i) = static_cast<float>((i % 2 == 0) ? std::sin(angle) : std::cos(angle));
    }
  }
  return pe;
}

util::Rng seeded_rng(std::uint64_t seed) { return util::Rng(seed); }
}  // namespace

TransformerFoundation::TransformerFoundation(FoundationConfig config, std::uint64_t seed,
                                             const std::string& name)
    : config_(config),
      name_(name),
      seed_(seed),
      embed_([&] {
        util::Rng rng = seeded_rng(seed);
        return Linear(config.state_dim, config.d_model, rng, name + ".embed");
      }()),
      positional_(make_positional_table(config.history_len, config.d_model)),
      final_ln_(config.d_model, name + ".final_ln") {
  util::Rng rng = seeded_rng(seed ^ 0xabcdef12345ull);
  // Re-init the embedding with the layer rng so the lambda trick above only
  // sets shapes deterministically.
  init_xavier_uniform(embed_.weight().value, config.state_dim, config.d_model, rng);
  layers_.reserve(config.num_layers);
  for (std::size_t l = 0; l < config.num_layers; ++l) {
    layers_.push_back(std::make_unique<TransformerEncoderLayer>(
        config.history_len, config.d_model, config.num_heads, config.ffn_hidden, config.dropout,
        rng, name + ".layer" + std::to_string(l)));
  }
}

TransformerFoundation::TransformerFoundation(const TransformerFoundation& other)
    : TransformerFoundation(other.config_, other.seed_, other.name_) {
  // Copy trained parameter values (layer construction re-randomizes).
  std::vector<Parameter*> dst, src;
  collect_params(dst);
  const_cast<TransformerFoundation&>(other).collect_params(src);
  assert(dst.size() == src.size());
  for (std::size_t i = 0; i < dst.size(); ++i) dst[i]->value = src[i]->value;
}

std::unique_ptr<Foundation> TransformerFoundation::clone() const {
  return std::make_unique<TransformerFoundation>(*this);
}

Tensor TransformerFoundation::forward(const Tensor& x, bool train) {
  const std::size_t k = config_.history_len;
  const std::size_t m = config_.state_dim;
  assert(x.cols() == k * m);
  batch_ = x.rows();

  // Unfold [B, k*m] into frames [B*k, m].
  Tensor frames(batch_ * k, m);
  for (std::size_t b = 0; b < batch_; ++b) {
    const float* src = x.row(b);
    for (std::size_t s = 0; s < k; ++s) {
      float* dst = frames.row(b * k + s);
      for (std::size_t c = 0; c < m; ++c) dst[c] = src[s * m + c];
    }
  }

  Tensor h = embed_.forward(frames, train);
  // Add positional encoding per frame index.
  for (std::size_t b = 0; b < batch_; ++b) {
    for (std::size_t s = 0; s < k; ++s) {
      float* row = h.row(b * k + s);
      const float* pe = positional_.row(s);
      for (std::size_t c = 0; c < config_.d_model; ++c) row[c] += pe[c];
    }
  }

  for (auto& layer : layers_) h = layer->forward(h, train);
  h = final_ln_.forward(h, train);

  // Mean-pool each item's k frames -> [B, d_model].
  Tensor pooled(batch_, config_.d_model);
  const float inv_k = 1.0f / static_cast<float>(k);
  for (std::size_t b = 0; b < batch_; ++b) {
    float* out = pooled.row(b);
    for (std::size_t s = 0; s < k; ++s) {
      const float* row = h.row(b * k + s);
      for (std::size_t c = 0; c < config_.d_model; ++c) out[c] += row[c] * inv_k;
    }
  }
  return pooled;
}

Tensor TransformerFoundation::backward(const Tensor& grad_out) {
  const std::size_t k = config_.history_len;
  const std::size_t m = config_.state_dim;
  assert(grad_out.rows() == batch_ && grad_out.cols() == config_.d_model);

  // Un-pool: every frame of item b receives grad/k.
  Tensor d_h(batch_ * k, config_.d_model);
  const float inv_k = 1.0f / static_cast<float>(k);
  for (std::size_t b = 0; b < batch_; ++b) {
    const float* g = grad_out.row(b);
    for (std::size_t s = 0; s < k; ++s) {
      float* row = d_h.row(b * k + s);
      for (std::size_t c = 0; c < config_.d_model; ++c) row[c] = g[c] * inv_k;
    }
  }

  d_h = final_ln_.backward(d_h);
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) d_h = (*it)->backward(d_h);
  // Positional table is constant: gradient passes through unchanged.
  Tensor d_frames = embed_.backward(d_h);

  // Fold frame grads back to [B, k*m].
  Tensor dx(batch_, k * m);
  for (std::size_t b = 0; b < batch_; ++b) {
    float* dst = dx.row(b);
    for (std::size_t s = 0; s < k; ++s) {
      const float* src = d_frames.row(b * k + s);
      for (std::size_t c = 0; c < m; ++c) dst[s * m + c] = src[c];
    }
  }
  return dx;
}

void TransformerFoundation::collect_params(std::vector<Parameter*>& out) {
  embed_.collect_params(out);
  for (auto& l : layers_) l->collect_params(out);
  final_ln_.collect_params(out);
}

// ------------------------------------------------------------ MoEFoundation

MoEFoundation::MoEFoundation(FoundationConfig config, std::uint64_t seed, const std::string& name)
    : config_(config), name_(name), gate_([&] {
        util::Rng rng = seeded_rng(seed ^ 0x6a7e);
        return Linear(config.state_dim, config.moe_experts, rng, name + ".gate");
      }()) {
  experts_.reserve(config.moe_experts);
  for (std::size_t e = 0; e < config.moe_experts; ++e) {
    experts_.push_back(std::make_unique<TransformerFoundation>(
        config, seed + 0x1000 * (e + 1), name + ".expert" + std::to_string(e)));
  }
}

MoEFoundation::MoEFoundation(const MoEFoundation& other)
    : config_(other.config_), name_(other.name_), gate_(other.gate_) {
  experts_.reserve(other.experts_.size());
  for (const auto& e : other.experts_) {
    experts_.push_back(std::make_unique<TransformerFoundation>(*e));
  }
}

std::unique_ptr<Foundation> MoEFoundation::clone() const {
  return std::make_unique<MoEFoundation>(*this);
}

Tensor MoEFoundation::mean_frames(const Tensor& x) const {
  const std::size_t k = config_.history_len;
  const std::size_t m = config_.state_dim;
  Tensor mean(x.rows(), m);
  const float inv_k = 1.0f / static_cast<float>(k);
  for (std::size_t b = 0; b < x.rows(); ++b) {
    const float* src = x.row(b);
    float* dst = mean.row(b);
    for (std::size_t s = 0; s < k; ++s) {
      for (std::size_t c = 0; c < m; ++c) dst[c] += src[s * m + c] * inv_k;
    }
  }
  return mean;
}

Tensor MoEFoundation::forward(const Tensor& x, bool train) {
  cached_k_ = config_.history_len * config_.state_dim;
  cached_mean_frames_ = mean_frames(x);
  Tensor logits = gate_.forward(cached_mean_frames_, train);
  softmax_rows(logits);
  gate_soft_ = logits;
  gate_probs_ = logits;
  if (config_.moe_top1) {
    // One-hot on the argmax expert (selection semantics of Top-1 routing).
    for (std::size_t b = 0; b < gate_probs_.rows(); ++b) {
      float* row = gate_probs_.row(b);
      std::size_t best = 0;
      for (std::size_t e = 1; e < experts_.size(); ++e) {
        if (row[e] > row[best]) best = e;
      }
      for (std::size_t e = 0; e < experts_.size(); ++e) row[e] = (e == best) ? 1.0f : 0.0f;
    }
  }

  expert_out_.resize(experts_.size());
  Tensor out(x.rows(), config_.d_model);
  for (std::size_t e = 0; e < experts_.size(); ++e) {
    expert_out_[e] = experts_[e]->forward(x, train);
    for (std::size_t b = 0; b < out.rows(); ++b) {
      const float g = gate_probs_.at(b, e);
      if (g == 0.0f) continue;
      float* o = out.row(b);
      const float* eo = expert_out_[e].row(b);
      for (std::size_t c = 0; c < config_.d_model; ++c) o[c] += g * eo[c];
    }
  }
  return out;
}

Tensor MoEFoundation::infer(const Tensor& x) {
  if (!config_.moe_top1) return forward(x, /*train=*/false);

  // Route: argmax of the gate softmax, with forward()'s first-max
  // tie-break, so routing matches the dense path exactly.
  Tensor mean = mean_frames(x);
  Tensor logits = gate_.forward(mean, /*train=*/false);
  softmax_rows(logits);
  const std::size_t batch = x.rows();
  const std::size_t ne = experts_.size();
  std::vector<std::size_t> route(batch);
  std::vector<std::size_t> per_expert(ne, 0);
  for (std::size_t b = 0; b < batch; ++b) {
    const float* row = logits.row(b);
    std::size_t best = 0;
    for (std::size_t e = 1; e < ne; ++e) {
      if (row[e] > row[best]) best = e;
    }
    route[b] = best;
    ++per_expert[best];
  }

  // Gather each expert's rows, run the expert once on its sub-batch, and
  // scatter the pooled outputs back. Sub-batch rows are computed by the
  // same per-row kernels as a full-batch forward, so outputs are bitwise
  // equal to dense-evaluate-then-select.
  Tensor out(batch, config_.d_model);
  std::vector<std::size_t> rows;
  for (std::size_t e = 0; e < ne; ++e) {
    if (per_expert[e] == 0) continue;
    rows.clear();
    rows.reserve(per_expert[e]);
    for (std::size_t b = 0; b < batch; ++b) {
      if (route[b] == e) rows.push_back(b);
    }
    Tensor sub(rows.size(), x.cols());
    for (std::size_t i = 0; i < rows.size(); ++i) {
      std::copy(x.row(rows[i]), x.row(rows[i]) + x.cols(), sub.row(i));
    }
    const Tensor sub_out = experts_[e]->forward(sub, /*train=*/false);
    for (std::size_t i = 0; i < rows.size(); ++i) {
      std::copy(sub_out.row(i), sub_out.row(i) + config_.d_model, out.row(rows[i]));
    }
  }
  return out;
}

Tensor MoEFoundation::backward(const Tensor& grad_out) {
  const std::size_t batch = grad_out.rows();
  const std::size_t ne = experts_.size();

  // d gate_probs[b,e] = <expert_out_e[b], grad_out[b]>.
  Tensor d_gate_probs(batch, ne);
  for (std::size_t e = 0; e < ne; ++e) {
    for (std::size_t b = 0; b < batch; ++b) {
      const float* eo = expert_out_[e].row(b);
      const float* g = grad_out.row(b);
      float acc = 0.0f;
      for (std::size_t c = 0; c < config_.d_model; ++c) acc += eo[c] * g[c];
      d_gate_probs.at(b, e) = acc;
    }
  }

  // Softmax backward into gate logits. In Top-1 mode, gradient flows
  // through the soft probabilities (straight-through on the selection).
  Tensor d_logits(batch, ne);
  for (std::size_t b = 0; b < batch; ++b) {
    const float* p = gate_soft_.row(b);
    const float* dp = d_gate_probs.row(b);
    float dot = 0.0f;
    for (std::size_t e = 0; e < ne; ++e) dot += p[e] * dp[e];
    float* dl = d_logits.row(b);
    for (std::size_t e = 0; e < ne; ++e) dl[e] = p[e] * (dp[e] - dot);
  }
  Tensor d_mean = gate_.backward(d_logits);

  // Experts: each receives g_e-scaled output grad.
  Tensor dx(batch, cached_k_);
  for (std::size_t e = 0; e < ne; ++e) {
    Tensor d_out_e(batch, config_.d_model);
    bool any = false;
    for (std::size_t b = 0; b < batch; ++b) {
      const float g = gate_probs_.at(b, e);
      if (g == 0.0f) continue;
      any = true;
      const float* go = grad_out.row(b);
      float* d = d_out_e.row(b);
      for (std::size_t c = 0; c < config_.d_model; ++c) d[c] = g * go[c];
    }
    if (!any) continue;
    dx.add(experts_[e]->backward(d_out_e));
  }

  // Gate input is the frame mean: spread d_mean/k over every frame slot.
  const std::size_t k = config_.history_len;
  const std::size_t m = config_.state_dim;
  const float inv_k = 1.0f / static_cast<float>(k);
  for (std::size_t b = 0; b < batch; ++b) {
    float* d = dx.row(b);
    const float* dm = d_mean.row(b);
    for (std::size_t s = 0; s < k; ++s) {
      for (std::size_t c = 0; c < m; ++c) d[s * m + c] += dm[c] * inv_k;
    }
  }
  return dx;
}

void MoEFoundation::collect_params(std::vector<Parameter*>& out) {
  gate_.collect_params(out);
  for (auto& e : experts_) e->collect_params(out);
}

std::unique_ptr<Foundation> make_foundation(FoundationType type, const FoundationConfig& config,
                                            std::uint64_t seed) {
  switch (type) {
    case FoundationType::kTransformer:
      return std::make_unique<TransformerFoundation>(config, seed);
    case FoundationType::kMoE:
      return std::make_unique<MoEFoundation>(config, seed);
  }
  return nullptr;
}

}  // namespace mirage::nn

#include "nn/module.hpp"

#include <cmath>

namespace mirage::nn {

float clip_grad_norm(const std::vector<Parameter*>& params, float max_norm) {
  float total = 0.0f;
  for (auto* p : params) total += p->grad.squared_norm();
  const float norm = std::sqrt(total);
  if (norm > max_norm && norm > 0.0f) {
    const float s = max_norm / norm;
    for (auto* p : params) p->grad.scale(s);
  }
  return norm;
}

void init_xavier_uniform(Tensor& w, std::size_t fan_in, std::size_t fan_out, util::Rng& rng) {
  const float limit = std::sqrt(6.0f / static_cast<float>(fan_in + fan_out));
  for (float& v : w.flat()) v = static_cast<float>(rng.uniform(-limit, limit));
}

void init_he_uniform(Tensor& w, std::size_t fan_in, util::Rng& rng) {
  const float limit = std::sqrt(6.0f / static_cast<float>(fan_in));
  for (float& v : w.flat()) v = static_cast<float>(rng.uniform(-limit, limit));
}

}  // namespace mirage::nn

#include "nn/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <thread>

#include "util/thread_pool.hpp"

namespace mirage::nn {

namespace {
std::atomic<std::size_t> g_num_threads{0};  // 0 = hardware_concurrency
thread_local std::size_t t_override = 0;
}  // namespace

void set_num_threads(std::size_t n) {
  g_num_threads.store(n, std::memory_order_relaxed);
}

std::size_t num_threads() {
  std::size_t n = t_override != 0 ? t_override : g_num_threads.load(std::memory_order_relaxed);
  if (n == 0) n = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  return n;
}

ScopedNumThreads::ScopedNumThreads(std::size_t n) : prev_(t_override) { t_override = n; }

ScopedNumThreads::~ScopedNumThreads() { t_override = prev_; }

namespace detail {

util::ThreadPool& gemm_pool() {
  static util::ThreadPool pool;  // hardware-sized, persistent workers
  return pool;
}

}  // namespace detail

}  // namespace mirage::nn

// Multi-head self-attention over fixed-length sequences.
//
// Activation convention inside the encoder: a batch of B sequences of
// length S with model width D is stored as a [B*S, D] tensor (row r
// belongs to item r/S, position r%S). Attention is the only layer that
// needs to know S; everything else is row-wise.
#pragma once

#include <vector>

#include "nn/layers.hpp"

namespace mirage::nn {

class MultiHeadSelfAttention : public Module {
 public:
  MultiHeadSelfAttention(std::size_t seq_len, std::size_t d_model, std::size_t num_heads,
                         util::Rng& rng, const std::string& name = "mhsa");

  /// x: [B*S, D] -> [B*S, D].
  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  void collect_params(std::vector<Parameter*>& out) override;

  std::size_t seq_len() const { return seq_; }
  std::size_t num_heads() const { return heads_; }

 private:
  std::size_t seq_, d_model_, heads_, d_head_;
  Linear wq_, wk_, wv_, wo_;
  // Caches for backward.
  Tensor q_, k_, v_;                 ///< [B*S, D]
  std::vector<Tensor> attn_;         ///< per (item, head): [S, S] softmax weights
  std::vector<float> d_attn_;        ///< backward per-row scratch (reused)
  std::size_t batch_ = 0;
};

}  // namespace mirage::nn

#include "nn/dual_head.hpp"

#include <cassert>

namespace mirage::nn {

namespace {
Linear make_head(std::size_t in, std::size_t out, std::uint64_t seed, const std::string& name) {
  util::Rng rng(seed);
  return Linear(in, out, rng, name);
}
}  // namespace

DualHeadModel::DualHeadModel(FoundationType type, FoundationConfig config, std::uint64_t seed)
    : type_(type),
      foundation_(make_foundation(type, config, seed)),
      v_head_(make_head(config.d_model, 1, seed ^ 0x5ead1, "v_head")),
      p_head_(make_head(config.d_model, 2, seed ^ 0x5ead2, "p_head")) {}

DualHeadModel::DualHeadModel(const DualHeadModel& other)
    : type_(other.type_),
      foundation_(other.foundation_->clone()),
      v_head_(other.v_head_),
      p_head_(other.p_head_) {}

Tensor DualHeadModel::forward_q(const Tensor& x, bool train) {
  Tensor pooled = foundation_->forward(x, train);
  return v_head_.forward(pooled, train);
}

void DualHeadModel::backward_q(const Tensor& grad) {
  Tensor d = v_head_.backward(grad);
  foundation_->backward(d);
}

Tensor DualHeadModel::infer_q(const Tensor& x) {
  Tensor pooled = foundation_->infer(x);
  return v_head_.forward(pooled, /*train=*/false);
}

Tensor DualHeadModel::infer_policy(const Tensor& x) {
  Tensor pooled = foundation_->infer(x);
  Tensor logits = p_head_.forward(pooled, /*train=*/false);
  softmax_rows(logits);
  return logits;
}

Tensor DualHeadModel::forward_policy(const Tensor& x, bool train) {
  Tensor pooled = foundation_->forward(x, train);
  Tensor logits = p_head_.forward(pooled, train);
  softmax_rows(logits);
  cached_probs_ = logits;
  return logits;
}

void DualHeadModel::backward_policy_logits(const Tensor& grad) {
  Tensor d = p_head_.backward(grad);
  foundation_->backward(d);
}

std::vector<Parameter*> DualHeadModel::parameters() {
  std::vector<Parameter*> out;
  foundation_->collect_params(out);
  v_head_.collect_params(out);
  p_head_.collect_params(out);
  return out;
}

std::vector<Parameter*> DualHeadModel::q_parameters() {
  std::vector<Parameter*> out;
  foundation_->collect_params(out);
  v_head_.collect_params(out);
  return out;
}

std::vector<Parameter*> DualHeadModel::policy_parameters() {
  std::vector<Parameter*> out;
  foundation_->collect_params(out);
  p_head_.collect_params(out);
  return out;
}

void DualHeadModel::copy_params_from(const DualHeadModel& other) {
  std::vector<Parameter*> dst = parameters();
  std::vector<Parameter*> src = const_cast<DualHeadModel&>(other).parameters();
  assert(dst.size() == src.size());
  for (std::size_t i = 0; i < dst.size(); ++i) {
    assert(dst[i]->value.size() == src[i]->value.size());
    dst[i]->value = src[i]->value;
  }
}

std::size_t DualHeadModel::parameter_count() { return param_count(parameters()); }

}  // namespace mirage::nn

#include "nn/optimizer.hpp"

#include <cmath>

namespace mirage::nn {

SGD::SGD(std::vector<Parameter*> params, float lr_in, float momentum, float weight_decay)
    : Optimizer(std::move(params)), momentum_(momentum), weight_decay_(weight_decay) {
  lr = lr_in;
  if (momentum_ > 0.0f) {
    velocity_.reserve(params_.size());
    for (auto* p : params_) velocity_.emplace_back(p->value.rows(), p->value.cols());
  }
}

void SGD::step() {
  for (std::size_t i = 0; i < params_.size(); ++i) {
    auto* p = params_[i];
    auto val = p->value.flat();
    auto g = p->grad.flat();
    if (momentum_ > 0.0f) {
      auto vel = velocity_[i].flat();
      for (std::size_t j = 0; j < val.size(); ++j) {
        const float grad = g[j] + weight_decay_ * val[j];
        vel[j] = momentum_ * vel[j] + grad;
        val[j] -= lr * vel[j];
      }
    } else {
      for (std::size_t j = 0; j < val.size(); ++j) {
        val[j] -= lr * (g[j] + weight_decay_ * val[j]);
      }
    }
  }
}

Adam::Adam(std::vector<Parameter*> params, float lr_in, float beta1, float beta2, float eps,
           float weight_decay)
    : Optimizer(std::move(params)),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps),
      weight_decay_(weight_decay) {
  lr = lr_in;
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (auto* p : params_) {
    m_.emplace_back(p->value.rows(), p->value.cols());
    v_.emplace_back(p->value.rows(), p->value.cols());
  }
}

void Adam::step() {
  ++t_;
  const float bc1 = 1.0f - std::pow(beta1_, static_cast<float>(t_));
  const float bc2 = 1.0f - std::pow(beta2_, static_cast<float>(t_));
  for (std::size_t i = 0; i < params_.size(); ++i) {
    auto* p = params_[i];
    auto val = p->value.flat();
    auto g = p->grad.flat();
    auto m = m_[i].flat();
    auto v = v_[i].flat();
    for (std::size_t j = 0; j < val.size(); ++j) {
      const float grad = g[j] + weight_decay_ * val[j];
      m[j] = beta1_ * m[j] + (1.0f - beta1_) * grad;
      v[j] = beta2_ * v[j] + (1.0f - beta2_) * grad * grad;
      const float mhat = m[j] / bc1;
      const float vhat = v[j] / bc2;
      val[j] -= lr * mhat / (std::sqrt(vhat) + eps_);
    }
  }
}

}  // namespace mirage::nn

// Loss functions returning (scalar loss, gradient w.r.t. prediction).
#pragma once

#include <utility>
#include <vector>

#include "nn/tensor.hpp"

namespace mirage::nn {

/// Mean squared error over all elements; grad is 2*(pred-target)/N.
std::pair<float, Tensor> mse_loss(const Tensor& pred, const Tensor& target);

/// Huber (smooth-L1) loss with threshold delta — standard for DQN targets
/// whose magnitudes are heavy-tailed.
std::pair<float, Tensor> huber_loss(const Tensor& pred, const Tensor& target, float delta = 1.0f);

/// Cross-entropy on probabilities `probs` [B, C] (already softmaxed) versus
/// integer labels, weighted per sample. Returns (mean loss, grad w.r.t. the
/// *logits*, using the softmax-CE shortcut grad = probs - onehot).
std::pair<float, Tensor> cross_entropy_from_probs(const Tensor& probs,
                                                  const std::vector<int>& labels,
                                                  const std::vector<float>& sample_weights = {});

/// REINFORCE surrogate: loss = -mean_b( advantage_b * log probs[b, action_b] ).
/// Returns (loss, grad w.r.t. logits) — identical shortcut with the
/// advantage folded into the sample weight.
std::pair<float, Tensor> policy_gradient_loss(const Tensor& probs, const std::vector<int>& actions,
                                              const std::vector<float>& advantages);

}  // namespace mirage::nn

#include "nn/layers.hpp"

#include <cmath>

namespace mirage::nn {

// ---------------------------------------------------------------- Linear

Linear::Linear(std::size_t in_features, std::size_t out_features, util::Rng& rng,
               const std::string& name)
    : in_(in_features),
      out_(out_features),
      w_(name + ".w", out_features, in_features),
      b_(name + ".b", 1, out_features) {
  init_xavier_uniform(w_.value, in_, out_, rng);
}

Tensor Linear::forward(const Tensor& x, bool /*train*/) {
  cached_input_ = x;
  Tensor y;
  matmul_nt(x, w_.value, y);  // [B,in] * [out,in]^T
  add_bias_rows(y, b_.value);
  return y;
}

Tensor Linear::backward(const Tensor& grad_out) {
  // dW += grad^T * x ; db += column sums of grad ; dx = grad * W.
  matmul_tn(grad_out, cached_input_, w_.grad, /*accumulate=*/true);
  for (std::size_t r = 0; r < grad_out.rows(); ++r) {
    const float* g = grad_out.row(r);
    float* db = b_.grad.data();
    for (std::size_t c = 0; c < out_; ++c) db[c] += g[c];
  }
  Tensor dx;
  matmul(grad_out, w_.value, dx);  // [B,out] * [out,in]
  return dx;
}

void Linear::collect_params(std::vector<Parameter*>& out) {
  out.push_back(&w_);
  out.push_back(&b_);
}

// ------------------------------------------------------------------ ReLU

Tensor ReLU::forward(const Tensor& x, bool /*train*/) {
  cached_input_ = x;
  Tensor y = x;
  for (float& v : y.flat()) v = v > 0.0f ? v : 0.0f;
  return y;
}

Tensor ReLU::backward(const Tensor& grad_out) {
  Tensor dx = grad_out;
  const auto in = cached_input_.flat();
  auto d = dx.flat();
  for (std::size_t i = 0; i < d.size(); ++i) {
    if (in[i] <= 0.0f) d[i] = 0.0f;
  }
  return dx;
}

// ------------------------------------------------------------------ GELU

namespace {
constexpr float kGeluC = 0.7978845608f;  // sqrt(2/pi)

inline float gelu(float x) {
  const float inner = kGeluC * (x + 0.044715f * x * x * x);
  return 0.5f * x * (1.0f + std::tanh(inner));
}

inline float gelu_grad(float x) {
  const float x3 = x * x * x;
  const float inner = kGeluC * (x + 0.044715f * x3);
  const float t = std::tanh(inner);
  const float sech2 = 1.0f - t * t;
  return 0.5f * (1.0f + t) + 0.5f * x * sech2 * kGeluC * (1.0f + 3.0f * 0.044715f * x * x);
}
}  // namespace

Tensor GELU::forward(const Tensor& x, bool /*train*/) {
  cached_input_ = x;
  Tensor y = x;
  for (float& v : y.flat()) v = gelu(v);
  return y;
}

Tensor GELU::backward(const Tensor& grad_out) {
  Tensor dx = grad_out;
  const auto in = cached_input_.flat();
  auto d = dx.flat();
  for (std::size_t i = 0; i < d.size(); ++i) d[i] *= gelu_grad(in[i]);
  return dx;
}

// ------------------------------------------------------------------ Tanh

Tensor Tanh::forward(const Tensor& x, bool /*train*/) {
  Tensor y = x;
  for (float& v : y.flat()) v = std::tanh(v);
  cached_output_ = y;
  return y;
}

Tensor Tanh::backward(const Tensor& grad_out) {
  Tensor dx = grad_out;
  const auto y = cached_output_.flat();
  auto d = dx.flat();
  for (std::size_t i = 0; i < d.size(); ++i) d[i] *= (1.0f - y[i] * y[i]);
  return dx;
}

// -------------------------------------------------------------- LayerNorm

LayerNorm::LayerNorm(std::size_t dim, const std::string& name, float eps)
    : dim_(dim), eps_(eps), gamma_(name + ".g", 1, dim), beta_(name + ".b", 1, dim) {
  gamma_.value.fill(1.0f);
}

Tensor LayerNorm::forward(const Tensor& x, bool /*train*/) {
  Tensor y(x.rows(), x.cols());
  cached_norm_ = Tensor(x.rows(), x.cols());
  cached_inv_std_ = Tensor(x.rows(), 1);
  for (std::size_t r = 0; r < x.rows(); ++r) {
    const float* xr = x.row(r);
    float mean = 0.0f;
    for (std::size_t c = 0; c < dim_; ++c) mean += xr[c];
    mean /= static_cast<float>(dim_);
    float var = 0.0f;
    for (std::size_t c = 0; c < dim_; ++c) {
      const float d = xr[c] - mean;
      var += d * d;
    }
    var /= static_cast<float>(dim_);
    const float inv_std = 1.0f / std::sqrt(var + eps_);
    cached_inv_std_.at(r, 0) = inv_std;
    float* nr = cached_norm_.row(r);
    float* yr = y.row(r);
    const float* g = gamma_.value.data();
    const float* b = beta_.value.data();
    for (std::size_t c = 0; c < dim_; ++c) {
      nr[c] = (xr[c] - mean) * inv_std;
      yr[c] = nr[c] * g[c] + b[c];
    }
  }
  return y;
}

Tensor LayerNorm::backward(const Tensor& grad_out) {
  Tensor dx(grad_out.rows(), grad_out.cols());
  const float* g = gamma_.value.data();
  const float n = static_cast<float>(dim_);
  for (std::size_t r = 0; r < grad_out.rows(); ++r) {
    const float* go = grad_out.row(r);
    const float* nr = cached_norm_.row(r);
    const float inv_std = cached_inv_std_.at(r, 0);
    // Accumulate parameter grads.
    float* dg = gamma_.grad.data();
    float* db = beta_.grad.data();
    float sum_gh = 0.0f;   // sum of gamma*grad
    float sum_ghn = 0.0f;  // sum of gamma*grad*norm
    for (std::size_t c = 0; c < dim_; ++c) {
      dg[c] += go[c] * nr[c];
      db[c] += go[c];
      const float gh = go[c] * g[c];
      sum_gh += gh;
      sum_ghn += gh * nr[c];
    }
    float* dxr = dx.row(r);
    for (std::size_t c = 0; c < dim_; ++c) {
      const float gh = go[c] * g[c];
      dxr[c] = inv_std * (gh - sum_gh / n - nr[c] * sum_ghn / n);
    }
  }
  return dx;
}

void LayerNorm::collect_params(std::vector<Parameter*>& out) {
  out.push_back(&gamma_);
  out.push_back(&beta_);
}

// ---------------------------------------------------------------- Dropout

Dropout::Dropout(float p, util::Rng rng) : p_(p), rng_(rng) {}

Tensor Dropout::forward(const Tensor& x, bool train) {
  active_ = train && p_ > 0.0f;
  if (!active_) return x;
  mask_ = Tensor(x.rows(), x.cols());
  Tensor y = x;
  const float keep = 1.0f - p_;
  const float scale = 1.0f / keep;
  auto m = mask_.flat();
  auto yv = y.flat();
  for (std::size_t i = 0; i < m.size(); ++i) {
    m[i] = rng_.bernoulli(keep) ? scale : 0.0f;
    yv[i] *= m[i];
  }
  return y;
}

Tensor Dropout::backward(const Tensor& grad_out) {
  if (!active_) return grad_out;
  Tensor dx = grad_out;
  dx.mul(mask_);
  return dx;
}

// ------------------------------------------------------------- Sequential

Tensor Sequential::forward(const Tensor& x, bool train) {
  Tensor cur = x;
  for (auto& m : children_) cur = m->forward(cur, train);
  return cur;
}

Tensor Sequential::backward(const Tensor& grad_out) {
  Tensor cur = grad_out;
  for (auto it = children_.rbegin(); it != children_.rend(); ++it) {
    cur = (*it)->backward(cur);
  }
  return cur;
}

void Sequential::collect_params(std::vector<Parameter*>& out) {
  for (auto& m : children_) m->collect_params(out);
}

}  // namespace mirage::nn

#include "nn/attention.hpp"

#include <cassert>
#include <cmath>

namespace mirage::nn {

MultiHeadSelfAttention::MultiHeadSelfAttention(std::size_t seq_len, std::size_t d_model,
                                               std::size_t num_heads, util::Rng& rng,
                                               const std::string& name)
    : seq_(seq_len),
      d_model_(d_model),
      heads_(num_heads),
      d_head_(d_model / num_heads),
      wq_(d_model, d_model, rng, name + ".wq"),
      wk_(d_model, d_model, rng, name + ".wk"),
      wv_(d_model, d_model, rng, name + ".wv"),
      wo_(d_model, d_model, rng, name + ".wo") {
  assert(d_model % num_heads == 0);
}

Tensor MultiHeadSelfAttention::forward(const Tensor& x, bool train) {
  assert(x.cols() == d_model_ && x.rows() % seq_ == 0);
  batch_ = x.rows() / seq_;
  q_ = wq_.forward(x, train);
  k_ = wk_.forward(x, train);
  v_ = wv_.forward(x, train);

  const float inv_sqrt = 1.0f / std::sqrt(static_cast<float>(d_head_));
  attn_.assign(batch_ * heads_, Tensor());
  Tensor concat(x.rows(), d_model_);

  for (std::size_t b = 0; b < batch_; ++b) {
    const std::size_t base = b * seq_;
    for (std::size_t h = 0; h < heads_; ++h) {
      const std::size_t off = h * d_head_;
      // scores[s,t] = <Q[s], K[t]> / sqrt(d_head)
      Tensor scores(seq_, seq_);
      for (std::size_t s = 0; s < seq_; ++s) {
        const float* qr = q_.row(base + s) + off;
        float* sr = scores.row(s);
        for (std::size_t t = 0; t < seq_; ++t) {
          const float* kr = k_.row(base + t) + off;
          float acc = 0.0f;
          for (std::size_t d = 0; d < d_head_; ++d) acc += qr[d] * kr[d];
          sr[t] = acc * inv_sqrt;
        }
      }
      softmax_rows(scores);
      // out[s] = sum_t attn[s,t] * V[t]
      for (std::size_t s = 0; s < seq_; ++s) {
        float* out = concat.row(base + s) + off;
        const float* ar = scores.row(s);
        for (std::size_t d = 0; d < d_head_; ++d) out[d] = 0.0f;
        for (std::size_t t = 0; t < seq_; ++t) {
          const float a = ar[t];
          if (a == 0.0f) continue;
          const float* vr = v_.row(base + t) + off;
          for (std::size_t d = 0; d < d_head_; ++d) out[d] += a * vr[d];
        }
      }
      attn_[b * heads_ + h] = std::move(scores);
    }
  }
  return wo_.forward(concat, train);
}

Tensor MultiHeadSelfAttention::backward(const Tensor& grad_out) {
  // Through the output projection first.
  Tensor d_concat = wo_.backward(grad_out);

  const float inv_sqrt = 1.0f / std::sqrt(static_cast<float>(d_head_));
  Tensor dq(q_.rows(), d_model_), dk(k_.rows(), d_model_), dv(v_.rows(), d_model_);

  for (std::size_t b = 0; b < batch_; ++b) {
    const std::size_t base = b * seq_;
    for (std::size_t h = 0; h < heads_; ++h) {
      const std::size_t off = h * d_head_;
      const Tensor& attn = attn_[b * heads_ + h];

      // dV[t] += sum_s attn[s,t] * d_out[s]
      for (std::size_t s = 0; s < seq_; ++s) {
        const float* go = d_concat.row(base + s) + off;
        const float* ar = attn.row(s);
        for (std::size_t t = 0; t < seq_; ++t) {
          const float a = ar[t];
          if (a == 0.0f) continue;
          float* dvr = dv.row(base + t) + off;
          for (std::size_t d = 0; d < d_head_; ++d) dvr[d] += a * go[d];
        }
      }

      // d_attn[s,t] = <d_out[s], V[t]>; softmax backward row-wise;
      // dQ[s] += dscores[s,t] * K[t] * inv_sqrt; dK[t] += dscores[s,t] * Q[s] * inv_sqrt.
      for (std::size_t s = 0; s < seq_; ++s) {
        const float* go = d_concat.row(base + s) + off;
        const float* ar = attn.row(s);
        d_attn_.assign(seq_, 0.0f);  // reused scratch: no per-row allocation
        float* d_attn = d_attn_.data();
        // Same 4-row blocking as the forward scores: independent chains
        // per (s,t) dot, bitwise-identical sums.
        std::size_t tb = 0;
        for (; tb + 4 <= seq_; tb += 4) {
          const float* v0 = v_.row(base + tb) + off;
          const float* v1 = v_.row(base + tb + 1) + off;
          const float* v2 = v_.row(base + tb + 2) + off;
          const float* v3 = v_.row(base + tb + 3) + off;
          float a0 = 0.0f, a1 = 0.0f, a2 = 0.0f, a3 = 0.0f;
          for (std::size_t d = 0; d < d_head_; ++d) {
            const float gv = go[d];
            a0 += gv * v0[d];
            a1 += gv * v1[d];
            a2 += gv * v2[d];
            a3 += gv * v3[d];
          }
          d_attn[tb] = a0;
          d_attn[tb + 1] = a1;
          d_attn[tb + 2] = a2;
          d_attn[tb + 3] = a3;
        }
        for (; tb < seq_; ++tb) {
          const float* vr = v_.row(base + tb) + off;
          float acc = 0.0f;
          for (std::size_t d = 0; d < d_head_; ++d) acc += go[d] * vr[d];
          d_attn[tb] = acc;
        }
        float dot = 0.0f;
        for (std::size_t t = 0; t < seq_; ++t) dot += d_attn[t] * ar[t];
        float* dqr = dq.row(base + s) + off;
        const float* qr = q_.row(base + s) + off;
        for (std::size_t t = 0; t < seq_; ++t) {
          const float ds = ar[t] * (d_attn[t] - dot) * inv_sqrt;
          if (ds == 0.0f) continue;
          const float* kr = k_.row(base + t) + off;
          float* dkr = dk.row(base + t) + off;
          for (std::size_t d = 0; d < d_head_; ++d) {
            dqr[d] += ds * kr[d];
            dkr[d] += ds * qr[d];
          }
        }
      }
    }
  }

  Tensor dx = wq_.backward(dq);
  dx.add(wk_.backward(dk));
  dx.add(wv_.backward(dv));
  return dx;
}

void MultiHeadSelfAttention::collect_params(std::vector<Parameter*>& out) {
  wq_.collect_params(out);
  wk_.collect_params(out);
  wv_.collect_params(out);
  wo_.collect_params(out);
}

}  // namespace mirage::nn

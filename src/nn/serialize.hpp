// Binary (de)serialization of a parameter set. Format:
//   magic "MIRG" | u32 version | u64 param_count |
//   per param: u32 name_len | name bytes | u64 rows | u64 cols | f32 data
// Loading validates names and shapes against the destination model, so a
// checkpoint can only be restored into the architecture that produced it.
#pragma once

#include <string>
#include <vector>

#include "nn/module.hpp"

namespace mirage::nn {

/// Serialize parameter values to a byte buffer.
std::vector<char> serialize_params(const std::vector<Parameter*>& params);

/// Restore values in place; returns false on any mismatch (nothing is
/// partially applied on failure).
bool deserialize_params(const std::vector<char>& bytes, const std::vector<Parameter*>& params);

bool save_params(const std::vector<Parameter*>& params, const std::string& path);
bool load_params(const std::vector<Parameter*>& params, const std::string& path);

}  // namespace mirage::nn

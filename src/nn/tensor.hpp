// Dense row-major float32 matrix — the only tensor shape the Mirage models
// need (vectors are 1×n or n×1). Sized for CPU training of small
// transformers: contiguous storage, blocked GEMM, no allocation in the
// inner loops when the caller reuses outputs.
#pragma once

#include <cassert>
#include <cstddef>
#include <span>
#include <vector>

namespace mirage::nn {

class Tensor {
 public:
  Tensor() = default;
  Tensor(std::size_t rows, std::size_t cols, float fill = 0.0f)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}
  static Tensor row_vector(std::span<const float> values);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  float& at(std::size_t r, std::size_t c) {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  float at(std::size_t r, std::size_t c) const {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  float* row(std::size_t r) { return data_.data() + r * cols_; }
  const float* row(std::size_t r) const { return data_.data() + r * cols_; }
  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  std::span<float> flat() { return {data_.data(), data_.size()}; }
  std::span<const float> flat() const { return {data_.data(), data_.size()}; }

  void fill(float v) { std::fill(data_.begin(), data_.end(), v); }
  void zero() { fill(0.0f); }
  /// Reshape in place; total size must match.
  void reshape(std::size_t rows, std::size_t cols) {
    assert(rows * cols == data_.size());
    rows_ = rows;
    cols_ = cols;
  }

  // Elementwise in-place helpers.
  Tensor& add(const Tensor& other);          ///< this += other
  Tensor& add_scaled(const Tensor& other, float s);  ///< this += s*other
  Tensor& mul(const Tensor& other);          ///< this *= other (Hadamard)
  Tensor& scale(float s);                    ///< this *= s

  /// Squared Frobenius norm.
  float squared_norm() const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<float> data_;
};

// GEMM variants: out = A op B (+ accumulate when beta=1). All assert shape
// compatibility; `out` is resized as needed.
//   matmul      : out[MxN] = A[MxK] * B[KxN]
//   matmul_tn   : out[MxN] = A^T[KxM]^T... i.e. A[KxM] treated transposed
//   matmul_nt   : out[MxN] = A[MxK] * B^T (B is [NxK])
void matmul(const Tensor& a, const Tensor& b, Tensor& out, bool accumulate = false);
void matmul_tn(const Tensor& a, const Tensor& b, Tensor& out, bool accumulate = false);
void matmul_nt(const Tensor& a, const Tensor& b, Tensor& out, bool accumulate = false);

/// Add a 1×C bias row to every row of x (in place).
void add_bias_rows(Tensor& x, const Tensor& bias);

/// Row-wise softmax in place (numerically stable).
void softmax_rows(Tensor& x);

}  // namespace mirage::nn

// Core layers: Linear, activations, LayerNorm, Dropout, Sequential.
#pragma once

#include <memory>

#include "nn/module.hpp"

namespace mirage::nn {

/// y = x W^T + b, x: [batch, in], W: [out, in], b: [1, out].
class Linear : public Module {
 public:
  Linear(std::size_t in_features, std::size_t out_features, util::Rng& rng,
         const std::string& name = "linear");

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  void collect_params(std::vector<Parameter*>& out) override;

  std::size_t in_features() const { return in_; }
  std::size_t out_features() const { return out_; }
  Parameter& weight() { return w_; }
  Parameter& bias() { return b_; }

 private:
  std::size_t in_, out_;
  Parameter w_, b_;
  Tensor cached_input_;
};

class ReLU : public Module {
 public:
  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;

 private:
  Tensor cached_input_;
};

/// GELU with the tanh approximation (as in BERT/GPT).
class GELU : public Module {
 public:
  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;

 private:
  Tensor cached_input_;
};

class Tanh : public Module {
 public:
  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;

 private:
  Tensor cached_output_;
};

/// Per-row layer normalization with learned gain/bias.
class LayerNorm : public Module {
 public:
  explicit LayerNorm(std::size_t dim, const std::string& name = "ln", float eps = 1e-5f);

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  void collect_params(std::vector<Parameter*>& out) override;

 private:
  std::size_t dim_;
  float eps_;
  Parameter gamma_, beta_;
  Tensor cached_norm_;     ///< normalized input (pre gain/bias)
  Tensor cached_inv_std_;  ///< 1/sigma per row
};

/// Inverted dropout; identity in eval mode. Deterministic given its RNG.
class Dropout : public Module {
 public:
  Dropout(float p, util::Rng rng);

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;

 private:
  float p_;
  util::Rng rng_;
  Tensor mask_;
  bool active_ = false;
};

/// Runs children in order; owns them.
class Sequential : public Module {
 public:
  Sequential() = default;

  void add(std::unique_ptr<Module> m) { children_.push_back(std::move(m)); }
  std::size_t size() const { return children_.size(); }

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  void collect_params(std::vector<Parameter*>& out) override;

 private:
  std::vector<std::unique_ptr<Module>> children_;
};

}  // namespace mirage::nn

// Thread-count knob for the NN tier's parallel GEMM (nn/tensor.cpp).
//
// The GEMM kernels partition the OUTPUT matrix into a fixed 2-D tile grid
// (grid depends only on the matrix shape, never on the thread count) and
// assign tiles to worker slots round-robin by tile index. Each slot owns
// disjoint tiles and accumulates every element's k-products in the same
// strictly-ascending order as the serial kernel, so results are bitwise
// identical for EVERY thread count — the repo-wide parallel == serial
// determinism contract, extended down to tensors (gated by the
// ParallelGemm suite in tests/nn_test.cpp and by bench_nn_micro).
//
// Resolution order for the effective count: the calling thread's
// ScopedNumThreads override (when nonzero), else the process-wide
// set_num_threads() default, else hardware_concurrency. Components that
// own their threading context scope an override instead of mutating the
// global: the serve engine pins its batched forward via
// EngineConfig::nn_threads, and the lab runner gives parallel cell sweeps
// 1 GEMM thread each (the cells already saturate the cores) while serial
// runs fan each forward out across the machine.
#pragma once

#include <cstddef>

namespace mirage::util {
class ThreadPool;
}

namespace mirage::nn {

/// Process-wide default GEMM thread count. 0 = hardware_concurrency.
void set_num_threads(std::size_t n);

/// Effective GEMM thread count for the CALLING thread (>= 1): the active
/// ScopedNumThreads override when set, else the process-wide default.
std::size_t num_threads();

/// RAII thread-local override of the GEMM thread count; 0 restores
/// "defer to the process-wide default". Nests (the previous override is
/// reinstated on destruction). Cheap enough for per-batch scoping.
class ScopedNumThreads {
 public:
  explicit ScopedNumThreads(std::size_t n);
  ~ScopedNumThreads();
  ScopedNumThreads(const ScopedNumThreads&) = delete;
  ScopedNumThreads& operator=(const ScopedNumThreads&) = delete;

 private:
  std::size_t prev_;
};

namespace detail {
/// Persistent hardware-sized worker pool dedicated to GEMM tiles. A pool
/// of its own (not util::ThreadPool::global()) so a GEMM issued FROM a
/// global-pool worker — lab cells, the serve engine's tick forward — can
/// never deadlock waiting for slots behind its own caller.
util::ThreadPool& gemm_pool();
}  // namespace detail

}  // namespace mirage::nn

// Dual-head architecture (paper §4, Fig 5): one shared foundation model
// with a V-head (Q-value regression, state-action input) and a P-head
// (action-probability output, state-only input). The two heads are trained
// independently (§4.9); only one head participates in any given
// forward/backward pair.
#pragma once

#include <memory>

#include "nn/foundation.hpp"

namespace mirage::nn {

class DualHeadModel {
 public:
  DualHeadModel(FoundationType type, FoundationConfig config, std::uint64_t seed);
  DualHeadModel(const DualHeadModel& other);
  DualHeadModel& operator=(const DualHeadModel&) = delete;

  const FoundationConfig& config() const { return foundation_->config(); }
  FoundationType type() const { return type_; }

  /// Q-head: x is [B, k*(m+1)] with the action ordinal baked into the
  /// frames; returns [B, 1] Q-values.
  Tensor forward_q(const Tensor& x, bool train = false);
  /// Backward for the last forward_q; grad is dL/dQ [B,1].
  void backward_q(const Tensor& grad);

  /// P-head: x is [B, k*(m+1)] with the action channel zeroed; returns
  /// [B, 2] action probabilities (softmax over {no-submit, submit}).
  Tensor forward_policy(const Tensor& x, bool train = false);
  /// Backward for the last forward_policy; grad is dL/d(logits) [B,2].
  void backward_policy_logits(const Tensor& grad);

  /// Serving-only forwards: bitwise-identical to forward_q /
  /// forward_policy with train=false, but routed through
  /// Foundation::infer so Top-1 MoE models skip non-selected experts
  /// (the batched-serving fast path). No backward may follow.
  Tensor infer_q(const Tensor& x);
  Tensor infer_policy(const Tensor& x);

  /// All trainable parameters: foundation + both heads.
  std::vector<Parameter*> parameters();
  /// Parameters touched by Q-head training (foundation + V-head).
  std::vector<Parameter*> q_parameters();
  /// Parameters touched by P-head training (foundation + P-head).
  std::vector<Parameter*> policy_parameters();

  /// Copy parameter values from a same-architecture model (target network
  /// sync, rollout-worker snapshots).
  void copy_params_from(const DualHeadModel& other);

  /// Direct access to the policy head (e.g. to bias its initial logits: a
  /// freshly initialized head submits ~50% of the time, which ends every
  /// rollout immediately and starves REINFORCE of contrast).
  Linear& policy_head() { return p_head_; }

  std::size_t parameter_count();

 private:
  FoundationType type_;
  std::unique_ptr<Foundation> foundation_;
  Linear v_head_;
  Linear p_head_;
  Tensor cached_probs_;  ///< softmax output of the last forward_policy
};

}  // namespace mirage::nn

// Layer-graph module framework: each module owns its parameters and caches
// whatever activations its backward pass needs. This is sufficient for the
// static architectures in Mirage (transformer / MoE encoders with MLP
// heads) and avoids the complexity of a full autograd tape.
//
// All modules are value types (deep copy = clone), so parallel rollout
// workers can hold independent snapshots of a policy.
#pragma once

#include <string>
#include <vector>

#include "nn/tensor.hpp"
#include "util/rng.hpp"

namespace mirage::nn {

/// A trainable tensor plus its gradient accumulator.
struct Parameter {
  std::string name;
  Tensor value;
  Tensor grad;

  Parameter() = default;
  Parameter(std::string n, std::size_t rows, std::size_t cols)
      : name(std::move(n)), value(rows, cols), grad(rows, cols) {}

  void zero_grad() { grad.zero(); }
};

/// Abstract layer. forward() must be called before backward(); backward()
/// consumes dL/d(output) and returns dL/d(input), accumulating parameter
/// gradients (+=) so multiple micro-batches can share one optimizer step.
class Module {
 public:
  virtual ~Module() = default;

  virtual Tensor forward(const Tensor& x, bool train) = 0;
  virtual Tensor backward(const Tensor& grad_out) = 0;

  /// Append raw pointers to this module's parameters (stable across calls;
  /// invalidated by copying/moving the module).
  virtual void collect_params(std::vector<Parameter*>& out) { (void)out; }
};

/// Zero the gradients of a parameter set.
inline void zero_grads(const std::vector<Parameter*>& params) {
  for (auto* p : params) p->zero_grad();
}

/// Total parameter count of a parameter set.
inline std::size_t param_count(const std::vector<Parameter*>& params) {
  std::size_t n = 0;
  for (auto* p : params) n += p->value.size();
  return n;
}

/// Global gradient-norm clipping; returns the pre-clip norm.
float clip_grad_norm(const std::vector<Parameter*>& params, float max_norm);

// Weight initialization (Glorot/He uniform).
void init_xavier_uniform(Tensor& w, std::size_t fan_in, std::size_t fan_out, util::Rng& rng);
void init_he_uniform(Tensor& w, std::size_t fan_in, util::Rng& rng);

}  // namespace mirage::nn

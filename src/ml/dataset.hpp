// Flat dataset container shared by the tree-based learners.
#pragma once

#include <cassert>
#include <cstddef>
#include <span>
#include <vector>

namespace mirage::ml {

/// Row-major feature matrix with a regression target per row.
class Dataset {
 public:
  Dataset() = default;
  explicit Dataset(std::size_t num_features) : num_features_(num_features) {}

  void add_row(std::span<const float> features, float target) {
    assert(features.size() == num_features_);
    x_.insert(x_.end(), features.begin(), features.end());
    y_.push_back(target);
  }

  std::size_t size() const { return y_.size(); }
  std::size_t num_features() const { return num_features_; }
  const float* row(std::size_t i) const { return x_.data() + i * num_features_; }
  float target(std::size_t i) const { return y_[i]; }
  float& mutable_target(std::size_t i) { return y_[i]; }
  const std::vector<float>& targets() const { return y_; }

 private:
  std::size_t num_features_ = 0;
  std::vector<float> x_;
  std::vector<float> y_;
};

}  // namespace mirage::ml

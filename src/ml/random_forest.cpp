#include "ml/random_forest.hpp"

#include <cmath>

#include "util/thread_pool.hpp"

namespace mirage::ml {

void RandomForest::fit(const Dataset& data, const ForestParams& params) {
  trees_.assign(params.num_trees, DecisionTree{});
  if (data.size() == 0) return;

  TreeParams tp = params.tree;
  if (tp.max_features == 0) {
    tp.max_features = std::max<std::size_t>(
        1, static_cast<std::size_t>(std::sqrt(static_cast<double>(data.num_features()))));
  }
  const auto n_sample =
      std::max<std::size_t>(1, static_cast<std::size_t>(params.subsample *
                                                        static_cast<double>(data.size())));

  auto train_one = [&](std::size_t t) {
    util::Rng rng(params.seed + 0x9e37 * (t + 1));
    std::vector<std::size_t> boot(n_sample);
    for (auto& i : boot) {
      i = static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(data.size()) - 1));
    }
    trees_[t].fit(data, tp, rng, boot);
  };

  if (params.parallel) {
    util::ThreadPool::global().parallel_for(params.num_trees, train_one);
  } else {
    for (std::size_t t = 0; t < params.num_trees; ++t) train_one(t);
  }
}

std::vector<double> RandomForest::feature_importance(std::size_t num_features) const {
  std::vector<double> importance(num_features, 0.0);
  for (const auto& t : trees_) t.accumulate_importance(importance);
  double total = 0.0;
  for (double v : importance) total += v;
  if (total > 0) {
    for (double& v : importance) v /= total;
  }
  return importance;
}

float RandomForest::predict(std::span<const float> features) const {
  if (trees_.empty()) return 0.0f;
  double sum = 0.0;
  for (const auto& t : trees_) sum += t.predict(features);
  return static_cast<float>(sum / static_cast<double>(trees_.size()));
}

}  // namespace mirage::ml

// Bagged random-forest regressor (Breiman 2001), one of the paper's two
// ensemble baselines. Trees train in parallel on bootstrap resamples with
// sqrt-feature subsampling.
#pragma once

#include <vector>

#include "ml/decision_tree.hpp"

namespace mirage::ml {

struct ForestParams {
  std::size_t num_trees = 64;
  TreeParams tree;
  /// Bootstrap sample fraction of the training set.
  double subsample = 1.0;
  std::uint64_t seed = 1234;
  /// Train trees on the shared thread pool.
  bool parallel = true;
};

class RandomForest {
 public:
  void fit(const Dataset& data, const ForestParams& params);
  float predict(std::span<const float> features) const;
  std::size_t tree_count() const { return trees_.size(); }
  bool trained() const { return !trees_.empty(); }

  /// Gain-based feature importance, normalized to sum to 1 (all-zero when
  /// no split used a feature).
  std::vector<double> feature_importance(std::size_t num_features) const;

 private:
  std::vector<DecisionTree> trees_;
};

}  // namespace mirage::ml

// XGBoost-style gradient-boosted regression trees (Chen & Guestrin 2016):
// second-order Newton boosting with L2 leaf regularization (lambda),
// minimum-gain pruning (gamma), shrinkage and row subsampling. Squared
// error objective (g = pred - y, h = 1), which is what the paper's wait-
// time regression baseline needs.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "ml/dataset.hpp"
#include "util/rng.hpp"

namespace mirage::ml {

struct GbdtParams {
  std::size_t num_rounds = 100;
  std::int32_t max_depth = 5;
  double learning_rate = 0.1;
  double lambda = 1.0;          ///< L2 on leaf weights
  double gamma = 0.0;           ///< min split gain
  double subsample = 0.8;       ///< row sampling per round
  std::size_t min_child_weight = 5;  ///< min hessian sum (== samples for L2 loss)
  std::uint64_t seed = 4321;
};

class Gbdt {
 public:
  void fit(const Dataset& data, const GbdtParams& params);
  float predict(std::span<const float> features) const;
  std::size_t round_count() const { return trees_.size(); }
  bool trained() const { return !trees_.empty() || base_score_ != 0.0f; }
  /// Gain-based feature importance, normalized to sum to 1.
  std::vector<double> feature_importance(std::size_t num_features) const;

  /// Training loss (RMSE) after each round — exposed so tests can assert
  /// monotone-ish convergence.
  const std::vector<double>& train_rmse_history() const { return rmse_history_; }

 private:
  struct Node {
    std::int32_t feature = -1;
    float threshold = 0.0f;
    float weight = 0.0f;  ///< leaf output
    float gain = 0.0f;    ///< split gain (0 for leaves)
    std::int32_t left = -1;
    std::int32_t right = -1;
  };
  using Tree = std::vector<Node>;

  std::int32_t build(Tree& tree, const Dataset& data, const GbdtParams& params,
                     std::vector<std::size_t>& indices, std::size_t begin, std::size_t end,
                     std::span<const double> grad, std::span<const double> hess,
                     std::int32_t depth);
  static float predict_tree(const Tree& tree, std::span<const float> features);

  float base_score_ = 0.0f;
  std::vector<Tree> trees_;
  double learning_rate_ = 0.1;
  std::vector<double> rmse_history_;
};

}  // namespace mirage::ml

#include "ml/decision_tree.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace mirage::ml {

namespace {
/// Weighted mean of targets over an index range.
double weighted_mean(const Dataset& data, std::span<const std::size_t> idx,
                     std::span<const float> w) {
  double sum = 0.0, wsum = 0.0;
  for (std::size_t i : idx) {
    const double wi = w.empty() ? 1.0 : w[i];
    sum += wi * data.target(i);
    wsum += wi;
  }
  return wsum > 0 ? sum / wsum : 0.0;
}
}  // namespace

void DecisionTree::fit(const Dataset& data, const TreeParams& params, util::Rng& rng,
                       std::span<const std::size_t> indices, std::span<const float> sample_weight) {
  nodes_.clear();
  std::vector<std::size_t> idx;
  if (indices.empty()) {
    idx.resize(data.size());
    std::iota(idx.begin(), idx.end(), 0);
  } else {
    idx.assign(indices.begin(), indices.end());
  }
  if (idx.empty()) {
    nodes_.push_back(Node{});
    return;
  }
  build(data, params, rng, idx, 0, idx.size(), sample_weight, 0);
}

std::int32_t DecisionTree::build(const Dataset& data, const TreeParams& params, util::Rng& rng,
                                 std::vector<std::size_t>& indices, std::size_t begin,
                                 std::size_t end, std::span<const float> w, std::int32_t depth) {
  const std::int32_t id = static_cast<std::int32_t>(nodes_.size());
  nodes_.push_back(Node{});
  const std::span<const std::size_t> range(indices.data() + begin, end - begin);
  nodes_[static_cast<std::size_t>(id)].value = static_cast<float>(weighted_mean(data, range, w));

  if (depth >= params.max_depth || range.size() < 2 * params.min_samples_leaf) return id;

  const SplitResult split = best_split(data, params, rng, range, w);
  if (split.feature < 0 || split.gain <= 1e-12) return id;

  // Partition [begin,end) in place around the threshold.
  const auto mid_it = std::partition(
      indices.begin() + static_cast<std::ptrdiff_t>(begin),
      indices.begin() + static_cast<std::ptrdiff_t>(end), [&](std::size_t i) {
        return data.row(i)[static_cast<std::size_t>(split.feature)] <= split.threshold;
      });
  const auto mid = static_cast<std::size_t>(mid_it - indices.begin());
  if (mid - begin < params.min_samples_leaf || end - mid < params.min_samples_leaf) return id;

  nodes_[static_cast<std::size_t>(id)].feature = split.feature;
  nodes_[static_cast<std::size_t>(id)].threshold = split.threshold;
  nodes_[static_cast<std::size_t>(id)].gain = static_cast<float>(split.gain);
  const std::int32_t left = build(data, params, rng, indices, begin, mid, w, depth + 1);
  const std::int32_t right = build(data, params, rng, indices, mid, end, w, depth + 1);
  nodes_[static_cast<std::size_t>(id)].left = left;
  nodes_[static_cast<std::size_t>(id)].right = right;
  return id;
}

DecisionTree::SplitResult DecisionTree::best_split(const Dataset& data, const TreeParams& params,
                                                   util::Rng& rng,
                                                   std::span<const std::size_t> indices,
                                                   std::span<const float> w) const {
  const std::size_t nf = data.num_features();
  std::vector<std::size_t> features(nf);
  std::iota(features.begin(), features.end(), 0);
  std::size_t to_try = params.max_features == 0 ? nf : std::min(params.max_features, nf);
  if (to_try < nf) rng.shuffle(features);

  SplitResult best;
  // Scratch: (feature value, weighted target, weight) sorted per feature.
  struct Entry {
    float x;
    double wy;
    double wt;
  };
  std::vector<Entry> entries(indices.size());

  for (std::size_t f_i = 0; f_i < to_try; ++f_i) {
    const std::size_t f = features[f_i];
    for (std::size_t j = 0; j < indices.size(); ++j) {
      const std::size_t i = indices[j];
      const double wi = w.empty() ? 1.0 : w[i];
      entries[j] = {data.row(i)[f], wi * data.target(i), wi};
    }
    std::sort(entries.begin(), entries.end(), [](const Entry& a, const Entry& b) { return a.x < b.x; });

    double total_wy = 0.0, total_w = 0.0;
    for (const auto& e : entries) {
      total_wy += e.wy;
      total_w += e.wt;
    }
    if (total_w <= 0) continue;

    // Variance reduction == maximizing sum of (S^2/W) over children.
    double left_wy = 0.0, left_w = 0.0;
    for (std::size_t j = 0; j + 1 < entries.size(); ++j) {
      left_wy += entries[j].wy;
      left_w += entries[j].wt;
      if (entries[j].x == entries[j + 1].x) continue;  // no valid threshold here
      if (j + 1 < params.min_samples_leaf || entries.size() - j - 1 < params.min_samples_leaf) {
        continue;
      }
      const double right_wy = total_wy - left_wy;
      const double right_w = total_w - left_w;
      if (left_w <= 0 || right_w <= 0) continue;
      const double gain = left_wy * left_wy / left_w + right_wy * right_wy / right_w -
                          total_wy * total_wy / total_w;
      if (gain > best.gain) {
        best.gain = gain;
        best.feature = static_cast<std::int32_t>(f);
        best.threshold = 0.5f * (entries[j].x + entries[j + 1].x);
      }
    }
  }
  return best;
}

float DecisionTree::predict(std::span<const float> features) const {
  if (nodes_.empty()) return 0.0f;
  std::int32_t cur = 0;
  for (;;) {
    const Node& n = nodes_[static_cast<std::size_t>(cur)];
    if (n.feature < 0 || n.left < 0) return n.value;
    cur = features[static_cast<std::size_t>(n.feature)] <= n.threshold ? n.left : n.right;
  }
}

void DecisionTree::accumulate_importance(std::vector<double>& importance) const {
  for (const auto& n : nodes_) {
    if (n.feature >= 0 && n.left >= 0) {
      importance[static_cast<std::size_t>(n.feature)] += n.gain;
    }
  }
}

std::int32_t DecisionTree::depth() const {
  // Iterative depth computation over the implicit tree.
  if (nodes_.empty()) return 0;
  std::int32_t max_depth = 0;
  std::vector<std::pair<std::int32_t, std::int32_t>> stack{{0, 1}};
  while (!stack.empty()) {
    const auto [id, d] = stack.back();
    stack.pop_back();
    max_depth = std::max(max_depth, d);
    const Node& n = nodes_[static_cast<std::size_t>(id)];
    if (n.left >= 0) stack.push_back({n.left, d + 1});
    if (n.right >= 0) stack.push_back({n.right, d + 1});
  }
  return max_depth;
}

}  // namespace mirage::ml

// CART regression tree with variance-reduction splits. Building block for
// both the Random Forest and the gradient-boosting baselines (paper §6
// compares Mirage's RL agents against Random Forest and XGBoost).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "ml/dataset.hpp"
#include "util/rng.hpp"

namespace mirage::ml {

struct TreeParams {
  std::int32_t max_depth = 8;
  std::size_t min_samples_leaf = 5;
  /// Features examined per split; 0 = all (forest uses sqrt subsampling).
  std::size_t max_features = 0;
};

class DecisionTree {
 public:
  /// Fit on the rows of `data` selected by `indices` (all rows when empty).
  /// `sample_weight` (optional, aligned with data rows) supports boosting.
  void fit(const Dataset& data, const TreeParams& params, util::Rng& rng,
           std::span<const std::size_t> indices = {},
           std::span<const float> sample_weight = {});

  float predict(std::span<const float> features) const;
  bool trained() const { return !nodes_.empty(); }
  std::size_t node_count() const { return nodes_.size(); }
  std::int32_t depth() const;

  /// Add each split's variance-reduction gain to `importance[feature]`
  /// (vector must be sized to the feature count).
  void accumulate_importance(std::vector<double>& importance) const;

 private:
  struct Node {
    // Leaf when feature < 0.
    std::int32_t feature = -1;
    float threshold = 0.0f;
    float value = 0.0f;        ///< leaf prediction
    float gain = 0.0f;         ///< split gain (0 for leaves)
    std::int32_t left = -1;    ///< index into nodes_
    std::int32_t right = -1;
  };

  struct SplitResult {
    std::int32_t feature = -1;
    float threshold = 0.0f;
    double gain = 0.0;
  };

  std::int32_t build(const Dataset& data, const TreeParams& params, util::Rng& rng,
                     std::vector<std::size_t>& indices, std::size_t begin, std::size_t end,
                     std::span<const float> w, std::int32_t depth);
  SplitResult best_split(const Dataset& data, const TreeParams& params, util::Rng& rng,
                         std::span<const std::size_t> indices, std::span<const float> w) const;

  std::vector<Node> nodes_;
};

}  // namespace mirage::ml

#include "ml/gbdt.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace mirage::ml {

namespace {
struct SplitResult {
  std::int32_t feature = -1;
  float threshold = 0.0f;
  double gain = 0.0;
};

double leaf_weight(double g, double h, double lambda) { return -g / (h + lambda); }

double score(double g, double h, double lambda) { return g * g / (h + lambda); }
}  // namespace

void Gbdt::fit(const Dataset& data, const GbdtParams& params) {
  trees_.clear();
  rmse_history_.clear();
  learning_rate_ = params.learning_rate;
  if (data.size() == 0) {
    base_score_ = 0.0f;
    return;
  }

  // Base score: target mean (one Newton step from 0 with L2 off).
  double mean = 0.0;
  for (std::size_t i = 0; i < data.size(); ++i) mean += data.target(i);
  mean /= static_cast<double>(data.size());
  base_score_ = static_cast<float>(mean);

  std::vector<double> pred(data.size(), mean);
  std::vector<double> grad(data.size()), hess(data.size(), 1.0);
  util::Rng rng(params.seed);

  for (std::size_t round = 0; round < params.num_rounds; ++round) {
    double se = 0.0;
    for (std::size_t i = 0; i < data.size(); ++i) {
      const double r = pred[i] - data.target(i);
      grad[i] = r;  // d/dpred 0.5*(pred-y)^2
      se += r * r;
    }
    rmse_history_.push_back(std::sqrt(se / static_cast<double>(data.size())));

    // Row subsample for this round.
    std::vector<std::size_t> idx;
    idx.reserve(data.size());
    for (std::size_t i = 0; i < data.size(); ++i) {
      if (params.subsample >= 1.0 || rng.bernoulli(params.subsample)) idx.push_back(i);
    }
    if (idx.empty()) continue;

    Tree tree;
    build(tree, data, params, idx, 0, idx.size(), grad, hess, 0);
    // Update predictions on all rows with shrinkage.
    for (std::size_t i = 0; i < data.size(); ++i) {
      pred[i] += params.learning_rate * predict_tree(tree, {data.row(i), data.num_features()});
    }
    trees_.push_back(std::move(tree));
  }
}

std::int32_t Gbdt::build(Tree& tree, const Dataset& data, const GbdtParams& params,
                         std::vector<std::size_t>& indices, std::size_t begin, std::size_t end,
                         std::span<const double> grad, std::span<const double> hess,
                         std::int32_t depth) {
  const auto id = static_cast<std::int32_t>(tree.size());
  tree.push_back(Node{});

  double g_sum = 0.0, h_sum = 0.0;
  for (std::size_t j = begin; j < end; ++j) {
    g_sum += grad[indices[j]];
    h_sum += hess[indices[j]];
  }
  tree[static_cast<std::size_t>(id)].weight =
      static_cast<float>(leaf_weight(g_sum, h_sum, params.lambda));

  if (depth >= params.max_depth ||
      end - begin < 2 * params.min_child_weight) {
    return id;
  }

  // Exact greedy split search over all features.
  SplitResult best;
  struct Entry {
    float x;
    double g;
    double h;
  };
  std::vector<Entry> entries(end - begin);
  for (std::size_t f = 0; f < data.num_features(); ++f) {
    for (std::size_t j = begin; j < end; ++j) {
      const std::size_t i = indices[j];
      entries[j - begin] = {data.row(i)[f], grad[i], hess[i]};
    }
    std::sort(entries.begin(), entries.end(),
              [](const Entry& a, const Entry& b) { return a.x < b.x; });
    double gl = 0.0, hl = 0.0;
    for (std::size_t j = 0; j + 1 < entries.size(); ++j) {
      gl += entries[j].g;
      hl += entries[j].h;
      if (entries[j].x == entries[j + 1].x) continue;
      const double hr = h_sum - hl;
      if (hl < static_cast<double>(params.min_child_weight) ||
          hr < static_cast<double>(params.min_child_weight)) {
        continue;
      }
      const double gr = g_sum - gl;
      const double gain = 0.5 * (score(gl, hl, params.lambda) + score(gr, hr, params.lambda) -
                                 score(g_sum, h_sum, params.lambda)) -
                          params.gamma;
      if (gain > best.gain) {
        best = {static_cast<std::int32_t>(f), 0.5f * (entries[j].x + entries[j + 1].x), gain};
      }
    }
  }
  if (best.feature < 0 || best.gain <= 0.0) return id;

  const auto mid_it =
      std::partition(indices.begin() + static_cast<std::ptrdiff_t>(begin),
                     indices.begin() + static_cast<std::ptrdiff_t>(end), [&](std::size_t i) {
                       return data.row(i)[static_cast<std::size_t>(best.feature)] <=
                              best.threshold;
                     });
  const auto mid = static_cast<std::size_t>(mid_it - indices.begin());
  if (mid == begin || mid == end) return id;

  tree[static_cast<std::size_t>(id)].feature = best.feature;
  tree[static_cast<std::size_t>(id)].threshold = best.threshold;
  tree[static_cast<std::size_t>(id)].gain = static_cast<float>(best.gain);
  const std::int32_t left = build(tree, data, params, indices, begin, mid, grad, hess, depth + 1);
  const std::int32_t right = build(tree, data, params, indices, mid, end, grad, hess, depth + 1);
  tree[static_cast<std::size_t>(id)].left = left;
  tree[static_cast<std::size_t>(id)].right = right;
  return id;
}

float Gbdt::predict_tree(const Tree& tree, std::span<const float> features) {
  if (tree.empty()) return 0.0f;
  std::int32_t cur = 0;
  for (;;) {
    const Node& n = tree[static_cast<std::size_t>(cur)];
    if (n.feature < 0 || n.left < 0) return n.weight;
    cur = features[static_cast<std::size_t>(n.feature)] <= n.threshold ? n.left : n.right;
  }
}

std::vector<double> Gbdt::feature_importance(std::size_t num_features) const {
  std::vector<double> importance(num_features, 0.0);
  for (const auto& tree : trees_) {
    for (const auto& n : tree) {
      if (n.feature >= 0 && n.left >= 0) {
        importance[static_cast<std::size_t>(n.feature)] += n.gain;
      }
    }
  }
  double total = 0.0;
  for (double v : importance) total += v;
  if (total > 0) {
    for (double& v : importance) v /= total;
  }
  return importance;
}

float Gbdt::predict(std::span<const float> features) const {
  double out = base_score_;
  for (const auto& t : trees_) out += learning_rate_ * predict_tree(t, features);
  return static_cast<float>(out);
}

}  // namespace mirage::ml

#include "obs/slo.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

namespace mirage::obs {

const char* alert_state_name(AlertState s) {
  switch (s) {
    case AlertState::kInactive: return "inactive";
    case AlertState::kPending: return "pending";
    case AlertState::kFiring: return "firing";
    case AlertState::kResolved: return "resolved";
  }
  return "?";
}

std::string sanitize_metric_name(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out += ok ? c : '_';
  }
  if (out.empty()) out = "unnamed";
  return out;
}

void SloEngine::add(SloSpec spec) {
  if (spec.kind == SloKind::kLatencyQuantile) {
    if (!spec.latency) throw std::invalid_argument("SloEngine: latency SLO without a histogram");
    if (!(spec.quantile > 0.0 && spec.quantile < 100.0)) {
      throw std::invalid_argument("SloEngine: latency quantile must be in (0, 100)");
    }
  } else {
    if (!spec.bad || !spec.good) {
      throw std::invalid_argument("SloEngine: error-rate SLO needs bad and good counters");
    }
    if (!(spec.budget > 0.0 && spec.budget <= 1.0)) {
      throw std::invalid_argument("SloEngine: error budget must be in (0, 1]");
    }
  }
  if (!(spec.short_window_seconds > 0.0) || !(spec.long_window_seconds > 0.0)) {
    throw std::invalid_argument("SloEngine: windows must be positive");
  }

  Slo slo;
  slo.spec = std::move(spec);
  slo.spec.name = sanitize_metric_name(slo.spec.name);
  if (slo.spec.kind == SloKind::kLatencyQuantile) {
    slo.effective_budget = (100.0 - slo.spec.quantile) / 100.0;
    // Buckets whose upper bound still fits under the target are good; the
    // straddling bucket (and everything above) counts as bad — a
    // conservative rounding that can only fire EARLIER than the exact
    // sample split, never later.
    slo.first_bad_bucket = Histogram::kBuckets - 1;
    for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
      if (Histogram::bucket_upper_seconds(i) > slo.spec.target_seconds) {
        slo.first_bad_bucket = i;
        break;
      }
    }
  } else {
    slo.effective_budget = slo.spec.budget;
  }
  slo.ring.resize(kRingCapacity);  // preallocated: evaluate() never grows it

  const std::string base = "mirage_slo_" + slo.spec.name;
  auto& reg = registry();
  slo.state_gauge = reg.gauge(base + "_state",
                              "alert state: 0=inactive 1=pending 2=firing 3=resolved");
  slo.burn_short_gauge = reg.gauge(base + "_burn_short", "short-window error-budget burn rate");
  slo.burn_long_gauge = reg.gauge(base + "_burn_long", "long-window error-budget burn rate");
  slo.fires_counter = reg.counter(base + "_fires_total", "pending->firing transitions");

  std::lock_guard<std::mutex> lock(mutex_);
  slos_.push_back(std::move(slo));
  fired_scratch_.reserve(slos_.size());
}

void SloEngine::on_fire(FireCallback cb) {
  std::lock_guard<std::mutex> lock(mutex_);
  fire_callbacks_.push_back(std::move(cb));
}

void SloEngine::read_sources(const Slo& slo, double* bad, double* total) const {
  if (slo.spec.kind == SloKind::kLatencyQuantile) {
    double bad_n = 0.0;
    for (std::size_t i = slo.first_bad_bucket; i < Histogram::kBuckets; ++i) {
      bad_n += static_cast<double>(slo.spec.latency->bucket(i));
    }
    *bad = bad_n;
    *total = static_cast<double>(slo.spec.latency->count());
  } else {
    *bad = static_cast<double>(slo.spec.bad->value());
    *total = *bad + static_cast<double>(slo.spec.good->value());
  }
}

double SloEngine::burn_over_window(const Slo& slo, const Sample& now, double window) const {
  // Baseline = the newest sample at least `window` old; a younger-than-
  // window ring falls back to its oldest sample (burn over what we have).
  const Sample* baseline = nullptr;
  for (std::size_t i = 0; i < slo.ring_size; ++i) {
    const Sample& s = slo.ring[(slo.ring_head + i) % kRingCapacity];
    if (now.ts - s.ts >= window) {
      baseline = &s;
    } else {
      break;  // ring is time-ordered; everything later is too young
    }
  }
  if (!baseline && slo.ring_size > 0) baseline = &slo.ring[slo.ring_head];
  const double base_bad = baseline ? baseline->bad : 0.0;
  const double base_total = baseline ? baseline->total : 0.0;
  const double d_bad = std::max(0.0, now.bad - base_bad);
  const double d_total = std::max(0.0, now.total - base_total);
  if (d_total <= 0.0) return 0.0;  // no traffic in the window -> no burn
  return (d_bad / d_total) / slo.effective_budget;
}

std::size_t SloEngine::evaluate(double now_seconds) {
  std::size_t newly_firing = 0;
  std::unique_lock<std::mutex> lock(mutex_);
  fired_scratch_.clear();
  for (std::size_t idx = 0; idx < slos_.size(); ++idx) {
    Slo& slo = slos_[idx];
    Sample now;
    now.ts = now_seconds;
    read_sources(slo, &now.bad, &now.total);

    slo.burn_short = burn_over_window(slo, now, slo.spec.short_window_seconds);
    slo.burn_long = burn_over_window(slo, now, slo.spec.long_window_seconds);

    // Append the snapshot (overwrite-oldest past capacity; no allocation).
    const std::size_t slot = (slo.ring_head + slo.ring_size) % kRingCapacity;
    slo.ring[slot] = now;
    if (slo.ring_size < kRingCapacity) {
      ++slo.ring_size;
    } else {
      slo.ring_head = (slo.ring_head + 1) % kRingCapacity;
    }

    const bool condition = slo.burn_short >= slo.spec.burn_threshold &&
                           slo.burn_long >= slo.spec.burn_threshold;
    switch (slo.state) {
      case AlertState::kInactive:
      case AlertState::kResolved:
        if (condition) {
          slo.condition_since = now_seconds;
          if (slo.spec.pending_seconds <= 0.0) {
            slo.state = AlertState::kFiring;
            slo.state_since = now_seconds;
            ++slo.fires;
            slo.fires_counter->add();
            fired_scratch_.push_back(idx);
            ++newly_firing;
          } else {
            slo.state = AlertState::kPending;
            slo.state_since = now_seconds;
          }
        } else if (slo.state == AlertState::kResolved) {
          slo.state = AlertState::kInactive;
          slo.state_since = now_seconds;
        }
        break;
      case AlertState::kPending:
        if (!condition) {
          slo.state = AlertState::kInactive;
          slo.state_since = now_seconds;
        } else if (now_seconds - slo.condition_since >= slo.spec.pending_seconds) {
          slo.state = AlertState::kFiring;
          slo.state_since = now_seconds;
          ++slo.fires;
          slo.fires_counter->add();
          fired_scratch_.push_back(idx);
          ++newly_firing;
        }
        break;
      case AlertState::kFiring:
        if (condition) {
          slo.clear_since = 0.0;
        } else {
          if (slo.clear_since <= 0.0) slo.clear_since = now_seconds;
          if (now_seconds - slo.clear_since >= slo.spec.resolve_seconds) {
            slo.state = AlertState::kResolved;
            slo.state_since = now_seconds;
            slo.clear_since = 0.0;
          }
        }
        break;
    }

    slo.state_gauge->set(static_cast<double>(static_cast<int>(slo.state)));
    slo.burn_short_gauge->set(slo.burn_short);
    slo.burn_long_gauge->set(slo.burn_long);
  }

  if (fired_scratch_.empty() || fire_callbacks_.empty()) return newly_firing;
  // Copy what the callbacks need, then release the lock so a callback can
  // re-enter statuses()/health_text() (the flight-recorder dump path).
  std::vector<SloStatus> fired;
  fired.reserve(fired_scratch_.size());
  for (const std::size_t idx : fired_scratch_) fired.push_back(status_of_locked(slos_[idx]));
  std::vector<FireCallback> callbacks = fire_callbacks_;
  lock.unlock();
  for (const auto& status : fired) {
    for (const auto& cb : callbacks) cb(status);
  }
  return newly_firing;
}

SloStatus SloEngine::status_of_locked(const Slo& slo) const {
  SloStatus s;
  s.name = slo.spec.name;
  s.kind = slo.spec.kind;
  s.state = slo.state;
  s.burn_short = slo.burn_short;
  s.burn_long = slo.burn_long;
  s.budget = slo.effective_budget;
  s.fires = slo.fires;
  s.since_seconds = slo.state_since;
  return s;
}

std::vector<SloStatus> SloEngine::statuses() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<SloStatus> out;
  out.reserve(slos_.size());
  for (const auto& slo : slos_) out.push_back(status_of_locked(slo));
  return out;
}

std::string SloEngine::health_text() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out;
  out.reserve(256);
  out += "# mirage health v1\n";
  bool any_firing = false, any_pending = false;
  for (const auto& slo : slos_) {
    any_firing = any_firing || slo.state == AlertState::kFiring;
    any_pending = any_pending || slo.state == AlertState::kPending;
  }
  out += "status: ";
  out += any_firing ? "firing" : (any_pending ? "pending" : "ok");
  out += '\n';
  char line[256];
  for (const auto& slo : slos_) {
    std::snprintf(line, sizeof(line),
                  "slo %s kind=%s state=%s burn_short=%.6g burn_long=%.6g budget=%.6g "
                  "windows=%.6gs/%.6gs fires=%llu\n",
                  slo.spec.name.c_str(),
                  slo.spec.kind == SloKind::kLatencyQuantile ? "latency" : "error_rate",
                  alert_state_name(slo.state), slo.burn_short, slo.burn_long,
                  slo.effective_budget, slo.spec.short_window_seconds,
                  slo.spec.long_window_seconds,
                  static_cast<unsigned long long>(slo.fires));
    out += line;
  }
  return out;
}

std::size_t SloEngine::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return slos_.size();
}

}  // namespace mirage::obs

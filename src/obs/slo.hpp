// SLO engine (ISSUE 8 tentpole): the judgement layer over the raw
// signals in obs/metrics. Declarative objectives — a latency-quantile
// target over a Histogram, or an error/reject-rate budget over a pair of
// Counters — are evaluated over sliding windows with MULTI-WINDOW
// BURN-RATE alerting (the SRE workbook recipe): an alert condition holds
// only while BOTH the short and the long window burn faster than the
// threshold, so a brief spike (short hot, long cold) and a stale incident
// (long hot, short cold) both stay quiet.
//
// Burn rate is unified across SLO kinds by reducing each to a bad/total
// event ratio against an error budget:
//
//   error-rate SLO    bad = the bad counter's delta over the window,
//                     total = bad + good; budget = SloSpec::budget.
//   latency SLO       bad = samples that landed in histogram buckets
//                     above the target (the straddling bucket counts as
//                     bad — conservative by design), total = all samples;
//                     budget = (100 - quantile) / 100, i.e. "p99 < 250ms"
//                     tolerates 1% of samples over 250ms.
//
//   burn(window) = (bad / total) / budget      (0 when the window is empty)
//
// Alert state machine (Prometheus-style `for` + resolve hold-down):
//
//   inactive --condition--> pending --held pending_seconds--> firing
//   pending --clear--> inactive
//   firing --clear held resolve_seconds--> resolved --> inactive
//   resolved --condition--> pending
//
// evaluate(now) is what ticks the machine — the serve tier calls it from
// the TTL sweeper thread. The evaluation path is ALLOCATION-FREE in
// steady state (preallocated snapshot rings, no transitions): it runs
// inside the soak bench's zero-allocation audit window. Transitions may
// allocate (status copies for fire callbacks) — they are incidents, not
// steady state. Fire callbacks are invoked AFTER the engine mutex is
// released, so a callback may call back into health_text()/statuses()
// (the flight-recorder dump path does exactly that).
//
// Every SLO registers live instruments in obs::registry():
//   mirage_slo_<name>_state        gauge   0=inactive 1=pending 2=firing 3=resolved
//   mirage_slo_<name>_burn_short   gauge
//   mirage_slo_<name>_burn_long    gauge
//   mirage_slo_<name>_fires_total  counter
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace mirage::obs {

enum class SloKind : std::uint8_t {
  kLatencyQuantile,  ///< "p<quantile> of `latency` stays under target_seconds"
  kErrorRate,        ///< "bad/(bad+good) stays under budget"
};

enum class AlertState : std::uint8_t { kInactive, kPending, kFiring, kResolved };

const char* alert_state_name(AlertState s);

/// One declarative objective. Fill the block matching `kind`; windows and
/// the state-machine timings apply to both kinds.
struct SloSpec {
  std::string name;  ///< prom-safe ([a-z0-9_]) — sanitized on registration
  SloKind kind = SloKind::kLatencyQuantile;

  // --- kLatencyQuantile sources (must outlive the engine)
  const Histogram* latency = nullptr;
  double quantile = 99.0;          ///< percent, e.g. 99.9
  double target_seconds = 0.25;

  // --- kErrorRate sources (must outlive the engine)
  const Counter* bad = nullptr;
  const Counter* good = nullptr;   ///< total = bad + good
  double budget = 0.01;            ///< tolerated bad fraction

  // --- windows + alerting
  double short_window_seconds = 60.0;
  double long_window_seconds = 300.0;
  double burn_threshold = 1.0;     ///< fire when BOTH windows burn >= this
  double pending_seconds = 0.0;    ///< `for`: condition must hold this long
  double resolve_seconds = 60.0;   ///< clear hold-down before resolved
};

/// Point-in-time verdict for one SLO (what health_text() renders and fire
/// callbacks receive).
struct SloStatus {
  std::string name;
  SloKind kind = SloKind::kLatencyQuantile;
  AlertState state = AlertState::kInactive;
  double burn_short = 0.0;
  double burn_long = 0.0;
  double budget = 0.0;             ///< effective budget (derived for latency)
  std::uint64_t fires = 0;         ///< lifetime pending->firing transitions
  double since_seconds = 0.0;      ///< evaluate-time the current state began
};

class SloEngine {
 public:
  using FireCallback = std::function<void(const SloStatus&)>;

  SloEngine() = default;
  SloEngine(const SloEngine&) = delete;
  SloEngine& operator=(const SloEngine&) = delete;

  /// Register an objective (validates the spec's sources; throws
  /// std::invalid_argument on a spec missing its kind's source or with
  /// non-positive windows). Registration allocates; do it at startup.
  void add(SloSpec spec);

  /// Invoked (outside the engine lock) for every pending->firing
  /// transition observed by evaluate().
  void on_fire(FireCallback cb);

  /// Tick every SLO's sliding windows and state machine at `now_seconds`
  /// (wall or test-controlled). Allocation-free when no state transitions
  /// occur. Returns the number of SLOs that TRANSITIONED to firing during
  /// this call.
  std::size_t evaluate(double now_seconds);

  std::vector<SloStatus> statuses() const;

  /// Deterministic plain-text health verdict: one `status:` header line
  /// (ok | pending | firing — the worst state over all SLOs) followed by
  /// one `slo ...` line per objective. This is the body of the serve
  /// tier's health endpoint.
  std::string health_text() const;

  std::size_t size() const;

 private:
  /// Cumulative source snapshot at one evaluate() tick.
  struct Sample {
    double ts = 0.0;
    double bad = 0.0;    ///< cumulative bad events
    double total = 0.0;  ///< cumulative total events
  };

  struct Slo {
    SloSpec spec;
    double effective_budget = 0.01;
    std::size_t first_bad_bucket = 0;  ///< latency: buckets >= this are bad
    // Preallocated snapshot ring (overwrites oldest past kRingCapacity).
    std::vector<Sample> ring;
    std::size_t ring_head = 0;   ///< oldest live sample
    std::size_t ring_size = 0;
    // State machine.
    AlertState state = AlertState::kInactive;
    double state_since = 0.0;
    double condition_since = 0.0;  ///< first tick of the current streak
    double clear_since = 0.0;      ///< first clear tick while firing
    std::uint64_t fires = 0;
    double burn_short = 0.0;
    double burn_long = 0.0;
    // Registry instruments (process-wide, shared across engines by name).
    Gauge* state_gauge = nullptr;
    Gauge* burn_short_gauge = nullptr;
    Gauge* burn_long_gauge = nullptr;
    Counter* fires_counter = nullptr;
  };

  static constexpr std::size_t kRingCapacity = 512;

  void read_sources(const Slo& slo, double* bad, double* total) const;
  double burn_over_window(const Slo& slo, const Sample& now, double window) const;
  SloStatus status_of_locked(const Slo& slo) const;

  mutable std::mutex mutex_;
  std::vector<Slo> slos_;
  std::vector<FireCallback> fire_callbacks_;
  std::vector<std::size_t> fired_scratch_;  ///< reserve()d in add()
};

/// Sanitize an SLO/metric name fragment to [a-zA-Z0-9_].
std::string sanitize_metric_name(const std::string& name);

}  // namespace mirage::obs

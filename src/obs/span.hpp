// Profiling scopes (ISSUE 6 tentpole): OBS_SPAN("phase") times the
// enclosing scope on the wall clock and aggregates the duration into a
// per-phase obs::Histogram ("obs_span_seconds_<phase>") in the global
// registry, plus a kSpan slice in the wall-clock profiling ring.
//
// Cost model: the phase handle is resolved once per call site (function-
// local static — the only allocation, at first hit). Each pass through an
// *enabled* scope is two clock_gettime calls plus two relaxed atomic adds;
// a *disabled* scope (obs::set_enabled(false)) is one relaxed load and a
// branch.
//
// Scopes on µs-scale hot paths (the simulator's scheduling pass) use
// OBS_SPAN_SAMPLED(phase, shift): a per-call-site thread_local tick times
// only every 2^shift-th entry, so a skipped pass costs one increment and a
// branch. Sampled histograms stay statistically representative of the
// latency distribution but their counts are hits/2^shift — coarse phases
// (cells, lab jobs) use plain OBS_SPAN, which records every entry. This
// split is what keeps the scheduling pass inside the <3% tracing-overhead
// budget bench_scenario_sweep enforces without starving rare phases.
//
// Wall-clock only: spans never touch sim-domain time, so enabling them
// cannot perturb simulation results (the bitwise on==off sweep contract).
#pragma once

#include <cstdint>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace mirage::obs {

/// Immutable per-call-site handle: the phase name (static string) and its
/// registry histogram. Resolve once via span_site(), reuse forever.
struct SpanSite {
  const char* name;
  Histogram* histogram;
};

/// Register (or look up) the histogram for a phase. `name` must be a
/// string literal / static string — the handle and trace events keep the
/// pointer.
SpanSite* span_site(const char* name);

double span_clock_seconds();

class Span {
 public:
  explicit Span(const SpanSite* site, bool sampled = true)
      : site_(site), t0_(sampled && enabled() ? span_clock_seconds() : -1.0) {}
  ~Span() {
    if (t0_ < 0.0) return;
    const double dt = span_clock_seconds() - t0_;
    site_->histogram->record(dt);
    TraceEvent ev;
    ev.kind = TraceEventKind::kSpan;
    ev.name = site_->name;
    ev.ts = static_cast<std::int64_t>(t0_ * 1e6);
    ev.dur = static_cast<std::int64_t>(dt * 1e6);
    ev.tid = static_cast<std::uint32_t>(detail::thread_shard());
    global_trace().record(ev);
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  const SpanSite* site_;
  double t0_;
};

}  // namespace mirage::obs

#define MIRAGE_OBS_CONCAT_(a, b) a##b
#define MIRAGE_OBS_CONCAT(a, b) MIRAGE_OBS_CONCAT_(a, b)

/// Time the enclosing scope under `phase` (a string literal). Every entry
/// is recorded — use on coarse phases (cells, batches, train/eval jobs).
#define OBS_SPAN(phase)                                                           \
  static ::mirage::obs::SpanSite* MIRAGE_OBS_CONCAT(obs_span_site_, __LINE__) =   \
      ::mirage::obs::span_site(phase);                                            \
  ::mirage::obs::Span MIRAGE_OBS_CONCAT(obs_span_, __LINE__)(                     \
      MIRAGE_OBS_CONCAT(obs_span_site_, __LINE__))

/// Time every 2^shift-th entry of the enclosing scope (per thread). For
/// µs-scale hot paths where timing every pass would blow the overhead
/// budget; the histogram's count is hits/2^shift.
#define OBS_SPAN_SAMPLED(phase, shift)                                            \
  static ::mirage::obs::SpanSite* MIRAGE_OBS_CONCAT(obs_span_site_, __LINE__) =   \
      ::mirage::obs::span_site(phase);                                            \
  thread_local std::uint32_t MIRAGE_OBS_CONCAT(obs_span_tick_, __LINE__) = 0;     \
  ::mirage::obs::Span MIRAGE_OBS_CONCAT(obs_span_, __LINE__)(                     \
      MIRAGE_OBS_CONCAT(obs_span_site_, __LINE__),                                \
      (MIRAGE_OBS_CONCAT(obs_span_tick_, __LINE__)++ &                            \
       ((1u << (shift)) - 1u)) == 0u)

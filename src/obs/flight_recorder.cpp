#include "obs/flight_recorder.hpp"

#include <algorithm>
#include <csignal>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/time_utils.hpp"

namespace mirage::obs {

namespace fs = std::filesystem;

namespace {

std::string sanitize_path_fragment(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '-';
    out += ok ? c : '_';
  }
  if (out.empty()) out = "manual";
  return out;
}

bool write_file(const fs::path& path, const std::string& contents) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out << contents;
  return static_cast<bool>(out);
}

bool read_file(const fs::path& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  *out = buf.str();
  return true;
}

std::string build_info_text() {
  std::string out;
  out += "project: mirage\n";
#if defined(__VERSION__)
  out += "compiler: ";
  out += __VERSION__;
  out += '\n';
#endif
  out += "compiled: " __DATE__ " " __TIME__ "\n";
#if defined(NDEBUG)
  out += "build: release\n";
#else
  out += "build: debug\n";
#endif
#if defined(__linux__)
  out += "platform: linux\n";
#elif defined(__APPLE__)
  out += "platform: darwin\n";
#else
  out += "platform: other\n";
#endif
  out += "pointer_bits: " + std::to_string(sizeof(void*) * 8) + "\n";
  return out;
}

void fatal_signal_trampoline(int sig) {
  detail::dump_on_fatal_signal(sig);
  std::signal(sig, SIG_DFL);
  std::raise(sig);
}

}  // namespace

void FlightRecorder::configure(FlightRecorderConfig config) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (config.max_events == 0) config.max_events = 1;
  if (config.max_bundles == 0) config.max_bundles = 1;
  config_ = std::move(config);
}

FlightRecorderConfig FlightRecorder::config() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return config_;
}

void FlightRecorder::register_provider(const std::string& filename, Provider provider) {
  std::lock_guard<std::mutex> lock(mutex_);
  providers_[filename] = std::move(provider);
}

void FlightRecorder::unregister_provider(const std::string& filename) {
  std::lock_guard<std::mutex> lock(mutex_);
  providers_.erase(filename);
}

std::uint64_t FlightRecorder::dumps() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return dumps_;
}

std::string FlightRecorder::dump(const std::string& reason) {
  std::lock_guard<std::mutex> lock(mutex_);
  char seq_buf[32];
  std::snprintf(seq_buf, sizeof(seq_buf), "bundle_%08llu_",
                static_cast<unsigned long long>(++seq_));
  const fs::path bundle_dir =
      fs::path(config_.directory) / (seq_buf + sanitize_path_fragment(reason));
  std::error_code ec;
  fs::create_directories(bundle_dir, ec);
  if (ec) return "";

  // Snapshot the global trace with recording paused: the gate stops new
  // events racing the copy (fully quiescent rings additionally need the
  // workload stopped — snapshot()'s standing caveat).
  TraceRing& ring = global_trace();
  const bool was_recording = ring.recording();
  ring.set_recording(false);
  std::vector<TraceEvent> events = ring.snapshot();
  ring.set_recording(was_recording);
  if (events.size() > config_.max_events) {
    events.erase(events.begin(),
                 events.end() - static_cast<std::ptrdiff_t>(config_.max_events));
  }
  TraceRing last_n(events.empty() ? 1 : events.size());
  for (const auto& ev : events) last_n.record(ev);
  const std::string trace_json = to_chrome_json({{"flight", 0, &last_n}});

  std::vector<std::string> files;
  bool ok = true;
  const auto emit = [&](const char* name, const std::string& contents) {
    ok = write_file(bundle_dir / name, contents) && ok;
    files.emplace_back(name);
  };
  emit("trace.json", trace_json);
  emit("metrics.prom", registry().to_prometheus());
  emit("build.txt", build_info_text());
  for (const auto& [name, provider] : providers_) {
    std::string contents;
    try {
      contents = provider();
    } catch (const std::exception& e) {
      contents = std::string("provider error: ") + e.what() + "\n";
    } catch (...) {
      contents = "provider error: unknown\n";
    }
    emit(name.c_str(), contents);
  }

  std::string manifest;
  manifest += "reason: " + reason + "\n";
  manifest += "seq: " + std::to_string(seq_) + "\n";
  char ts[64];
  std::snprintf(ts, sizeof(ts), "wall_seconds: %.6f\n", util::wall_seconds());
  manifest += ts;
  manifest += "trace_events: " + std::to_string(events.size()) + "\n";
  manifest += "files:\n";
  for (const auto& f : files) manifest += "  - " + f + "\n";
  ok = write_file(bundle_dir / "MANIFEST.txt", manifest) && ok;

  if (!ok) return "";
  ++dumps_;
  prune_locked();
  return bundle_dir.string();
}

void FlightRecorder::prune_locked() {
  std::error_code ec;
  std::vector<fs::path> bundles;
  for (const auto& entry : fs::directory_iterator(config_.directory, ec)) {
    if (entry.is_directory(ec) &&
        entry.path().filename().string().rfind("bundle_", 0) == 0) {
      bundles.push_back(entry.path());
    }
  }
  if (bundles.size() <= config_.max_bundles) return;
  // Zero-padded sequence numbers make lexicographic order dump order.
  std::sort(bundles.begin(), bundles.end());
  const std::size_t excess = bundles.size() - config_.max_bundles;
  for (std::size_t i = 0; i < excess; ++i) fs::remove_all(bundles[i], ec);
}

bool FlightRecorder::validate_bundle(const std::string& bundle_dir, std::string* error) {
  const auto fail = [&](const std::string& why) {
    if (error) *error = bundle_dir + ": " + why;
    return false;
  };
  std::string contents;
  if (!read_file(fs::path(bundle_dir) / "MANIFEST.txt", &contents) || contents.empty()) {
    return fail("missing MANIFEST.txt");
  }
  if (contents.find("reason: ") == std::string::npos) {
    return fail("MANIFEST.txt missing reason");
  }
  if (!read_file(fs::path(bundle_dir) / "build.txt", &contents) || contents.empty()) {
    return fail("missing build.txt");
  }
  if (!read_file(fs::path(bundle_dir) / "trace.json", &contents)) {
    return fail("missing trace.json");
  }
  std::string why;
  if (!validate_chrome_trace(contents, &why)) return fail("trace.json invalid: " + why);
  if (!read_file(fs::path(bundle_dir) / "metrics.prom", &contents)) {
    return fail("missing metrics.prom");
  }
  if (!lint_prometheus_exposition(contents, &why)) {
    return fail("metrics.prom invalid: " + why);
  }
  return true;
}

void FlightRecorder::install_signal_handlers() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (signals_installed_) return;
  signals_installed_ = true;
  for (const int sig : {SIGSEGV, SIGBUS, SIGABRT, SIGFPE, SIGILL}) {
    std::signal(sig, fatal_signal_trampoline);
  }
}

FlightRecorder& flight_recorder() {
  static FlightRecorder instance;
  return instance;
}

namespace detail {
void dump_on_fatal_signal(int sig) {
  // Best-effort crash dump: stop the trace gate first so the bundle is a
  // frozen picture of the moments before the fault.
  global_trace().set_recording(false);
  flight_recorder().dump("signal_" + std::to_string(sig));
}
}  // namespace detail

}  // namespace mirage::obs

// Structured event tracing (ISSUE 6 tentpole): ring-buffered trace events
// with Chrome trace-event (chrome://tracing / Perfetto) and CSV exporters.
//
// Two timestamp domains, never mixed in one ring:
//
//   sim-time    TraceRing attached to one Simulator (one per sweep cell).
//               Timestamps are deterministic simulated seconds, so the
//               exported trace is a pure function of the scenario spec —
//               bitwise identical across thread counts, and recording it
//               cannot perturb results (the ring is write-only).
//   wall-clock  the process-wide profiling ring (global_trace()) fed by
//               OBS_SPAN scopes and serve-side events (batch formation,
//               checkpoint hot-reload).
//
// Rings are fixed-capacity and overwrite the oldest events when full (the
// recorded total keeps counting, so exporters report drops). record() is a
// relaxed atomic slot claim plus a struct store — no locks, no heap, so
// instrumented steady-state loops stay allocation-free.
//
// Event names are `const char*` and must point at static storage
// (literals); the ring stores the pointer, not a copy.
//
// Chrome JSON mapping: one sim second (or wall microsecond) maps to one
// viewer microsecond — a month-long scenario renders as a ~2.6s timeline.
// `pid` is the track group (sweep cell index), `tid` the track (partition
// id, or thread slot for wall rings). Jobs export as complete "X" slices
// [start, end]; point events (kills, preemptions, cluster events) as
// instants "i".
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace mirage::obs {

enum class TraceEventKind : std::uint8_t {
  kJobRun,            ///< one scheduled run of a job: slice [ts, ts+dur]
  kJobKill,           ///< instant: job killed by an outage
  kJobPreempt,        ///< instant: job checkpointed/requeued
  kJobRequeue,        ///< instant: preempted job re-entered the queue
  kClusterEvent,      ///< instant: capacity event applied (arg0 = type)
  kCellStart,         ///< sweep-cell lifecycle begin
  kCellFinish,        ///< sweep-cell lifecycle end (dur = wall us)
  kBatchFormed,       ///< serve: one engine tick (arg0 = batch size, arg1 = tick id)
  kCheckpointReload,  ///< serve: registry loaded/hot-swapped a model
  kSpan,              ///< OBS_SPAN profiling scope: slice [ts, ts+dur]
  kRequestBegin,      ///< serve: request minted (arg0 = request id, arg1 = session id)
  kRequestEnqueue,    ///< serve: request entered the engine ring (arg0 = id, arg1 = slot)
  kRequestComplete,   ///< serve: journey slice [enqueue, served] (arg0 = id, arg1 = tick id)
};

const char* trace_event_kind_name(TraceEventKind k);

struct TraceEvent {
  std::int64_t ts = 0;    ///< sim seconds or wall microseconds
  std::int64_t dur = 0;   ///< slice duration (same unit); 0 for instants
  std::int64_t arg0 = 0;  ///< kind-specific (job id, batch size, ...)
  std::int64_t arg1 = 0;  ///< kind-specific (nodes, version, ...)
  const char* name = "";  ///< static string (slice label)
  std::uint32_t tid = 0;  ///< track: partition id / thread slot
  TraceEventKind kind = TraceEventKind::kSpan;

  bool is_slice() const {
    return kind == TraceEventKind::kJobRun || kind == TraceEventKind::kSpan ||
           kind == TraceEventKind::kCellStart || kind == TraceEventKind::kCellFinish ||
           kind == TraceEventKind::kRequestComplete;
  }
};

/// Fixed-capacity multi-writer ring. record() never allocates; the buffer
/// is sized at construction (or attach time) and old events are
/// overwritten once `capacity` is exceeded.
class TraceRing {
 public:
  explicit TraceRing(std::size_t capacity = 1 << 14);

  /// Drop-in recording gate: rings can be individually disabled (a
  /// disabled ring records nothing; hooks stay wired).
  void set_recording(bool on) { recording_.store(on, std::memory_order_relaxed); }
  bool recording() const { return recording_.load(std::memory_order_relaxed); }

  void record(const TraceEvent& ev) {
    if (!recording()) return;
    const std::uint64_t slot = cursor_.fetch_add(1, std::memory_order_relaxed);
    events_[static_cast<std::size_t>(slot % events_.size())] = ev;
  }

  std::size_t capacity() const { return events_.size(); }
  /// Total events recorded since the last clear (may exceed capacity).
  std::uint64_t recorded() const { return cursor_.load(std::memory_order_relaxed); }
  std::uint64_t dropped() const {
    const std::uint64_t n = recorded();
    return n > events_.size() ? n - events_.size() : 0;
  }

  /// Events in recording order (oldest surviving first). Not safe against
  /// concurrent record(); snapshot after the workload quiesces.
  std::vector<TraceEvent> snapshot() const;

  void clear() { cursor_.store(0, std::memory_order_relaxed); }

 private:
  std::vector<TraceEvent> events_;
  std::atomic<std::uint64_t> cursor_{0};
  std::atomic<bool> recording_{true};
};

/// Process-wide wall-clock profiling ring (OBS_SPAN + serve events).
/// Recording obeys obs::enabled() at the hook sites.
TraceRing& global_trace();

/// One named export track: a ring plus the label and pid its events render
/// under ("cell 3: a100/u0.95/d8/outage" with pid=3).
struct TraceTrack {
  std::string label;
  std::uint32_t pid = 0;
  const TraceRing* ring = nullptr;
};

/// Chrome trace-event JSON ({"traceEvents":[...],"displayTimeUnit":"ms"}).
/// Deterministic: output depends only on ring contents and track order.
std::string to_chrome_json(const std::vector<TraceTrack>& tracks);

/// Flat CSV (track,pid,tid,kind,name,ts,dur,arg0,arg1), same ordering.
std::string to_trace_csv(const std::vector<TraceTrack>& tracks);

/// Minimal structural validation of an exported Chrome trace: JSON parses
/// (objects/arrays/strings/numbers/bools/null), top level is an object
/// with a "traceEvents" array, and every event object carries the
/// required "name"/"ph"/"ts"/"pid"/"tid" keys. False + diagnostic
/// otherwise. Used by tests and the --trace smoke in CI.
bool validate_chrome_trace(const std::string& json, std::string* error = nullptr);

}  // namespace mirage::obs

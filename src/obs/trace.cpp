#include "obs/trace.hpp"

#include <cctype>
#include <cstdio>
#include <cstring>
#include <sstream>

namespace mirage::obs {

const char* trace_event_kind_name(TraceEventKind k) {
  switch (k) {
    case TraceEventKind::kJobRun: return "job_run";
    case TraceEventKind::kJobKill: return "job_kill";
    case TraceEventKind::kJobPreempt: return "job_preempt";
    case TraceEventKind::kJobRequeue: return "job_requeue";
    case TraceEventKind::kClusterEvent: return "cluster_event";
    case TraceEventKind::kCellStart: return "cell_start";
    case TraceEventKind::kCellFinish: return "cell_finish";
    case TraceEventKind::kBatchFormed: return "batch_formed";
    case TraceEventKind::kCheckpointReload: return "checkpoint_reload";
    case TraceEventKind::kSpan: return "span";
    case TraceEventKind::kRequestBegin: return "request_begin";
    case TraceEventKind::kRequestEnqueue: return "request_enqueue";
    case TraceEventKind::kRequestComplete: return "request_complete";
  }
  return "?";
}

TraceRing::TraceRing(std::size_t capacity) : events_(capacity ? capacity : 1) {}

std::vector<TraceEvent> TraceRing::snapshot() const {
  const std::uint64_t n = recorded();
  const std::size_t cap = events_.size();
  std::vector<TraceEvent> out;
  if (n == 0) return out;
  const std::size_t kept = n < cap ? static_cast<std::size_t>(n) : cap;
  out.reserve(kept);
  const std::uint64_t first = n < cap ? 0 : n - cap;
  for (std::uint64_t i = first; i < n; ++i) {
    out.push_back(events_[static_cast<std::size_t>(i % cap)]);
  }
  return out;
}

TraceRing& global_trace() {
  static TraceRing ring(1 << 15);
  return ring;
}

namespace {

void append_json_escaped(std::string& out, const char* s) {
  for (; *s; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", static_cast<unsigned>(c));
      out += buf;
    } else {
      out += c;
    }
  }
}

void append_event_json(std::string& out, const TraceEvent& ev, std::uint32_t pid) {
  out += "{\"name\":\"";
  append_json_escaped(out, ev.name[0] ? ev.name : trace_event_kind_name(ev.kind));
  out += "\",\"cat\":\"";
  out += trace_event_kind_name(ev.kind);
  if (ev.is_slice()) {
    out += "\",\"ph\":\"X\",\"ts\":";
    out += std::to_string(ev.ts);
    out += ",\"dur\":";
    out += std::to_string(ev.dur);
  } else {
    out += "\",\"ph\":\"i\",\"s\":\"t\",\"ts\":";
    out += std::to_string(ev.ts);
  }
  out += ",\"pid\":";
  out += std::to_string(pid);
  out += ",\"tid\":";
  out += std::to_string(ev.tid);
  out += ",\"args\":{\"arg0\":";
  out += std::to_string(ev.arg0);
  out += ",\"arg1\":";
  out += std::to_string(ev.arg1);
  out += "}}";
}

}  // namespace

std::string to_chrome_json(const std::vector<TraceTrack>& tracks) {
  std::string out;
  out.reserve(1 << 16);
  out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const auto& track : tracks) {
    // Process-name metadata labels the track group in the viewer.
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":";
    out += std::to_string(track.pid);
    out += ",\"tid\":0,\"args\":{\"name\":\"";
    append_json_escaped(out, track.label.c_str());
    out += "\"}}";
    if (!track.ring) continue;
    for (const auto& ev : track.ring->snapshot()) {
      out += ',';
      append_event_json(out, ev, track.pid);
    }
    if (const std::uint64_t drops = track.ring->dropped()) {
      out += ",{\"name\":\"dropped_events\",\"cat\":\"meta\",\"ph\":\"i\",\"s\":\"t\","
             "\"ts\":0,\"pid\":";
      out += std::to_string(track.pid);
      out += ",\"tid\":0,\"args\":{\"arg0\":";
      out += std::to_string(drops);
      out += ",\"arg1\":0}}";
    }
  }
  out += "]}\n";
  return out;
}

std::string to_trace_csv(const std::vector<TraceTrack>& tracks) {
  std::ostringstream out;
  out << "track,pid,tid,kind,name,ts,dur,arg0,arg1\n";
  for (const auto& track : tracks) {
    if (!track.ring) continue;
    for (const auto& ev : track.ring->snapshot()) {
      // Track labels and event names never contain commas or quotes (cell
      // names are slash-separated, event names are identifiers).
      out << track.label << ',' << track.pid << ',' << ev.tid << ','
          << trace_event_kind_name(ev.kind) << ','
          << (ev.name[0] ? ev.name : trace_event_kind_name(ev.kind)) << ',' << ev.ts << ','
          << ev.dur << ',' << ev.arg0 << ',' << ev.arg1 << '\n';
    }
  }
  return out.str();
}

// ------------------------------------------------------- trace validation

namespace {

/// Minimal recursive-descent JSON reader used only for validation. Tracks
/// whether each traceEvents element carries the required keys.
class JsonValidator {
 public:
  explicit JsonValidator(const std::string& text) : s_(text) {}

  bool run(std::string* error) {
    skip_ws();
    if (peek() != '{') return fail(error, "top level must be an object");
    if (!parse_object(/*top_level=*/true, error)) return false;
    skip_ws();
    if (pos_ != s_.size()) return fail(error, "trailing junk after top-level object");
    if (!saw_trace_events_) return fail(error, "missing \"traceEvents\" array");
    return true;
  }

  std::size_t events_checked() const { return events_checked_; }

 private:
  bool fail(std::string* error, const std::string& message) {
    if (error) *error = message + " (offset " + std::to_string(pos_) + ")";
    return false;
  }

  char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  char take() { return pos_ < s_.size() ? s_[pos_++] : '\0'; }
  void skip_ws() {
    while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_]))) ++pos_;
  }

  bool parse_string(std::string* out, std::string* error) {
    if (take() != '"') return fail(error, "expected string");
    std::string value;
    for (;;) {
      if (pos_ >= s_.size()) return fail(error, "unterminated string");
      const char c = take();
      if (c == '"') break;
      if (c == '\\') {
        const char esc = take();
        if (esc == 'u') {
          for (int i = 0; i < 4; ++i) {
            if (!std::isxdigit(static_cast<unsigned char>(take()))) {
              return fail(error, "bad \\u escape");
            }
          }
        } else if (!std::strchr("\"\\/bfnrt", esc)) {
          return fail(error, "bad escape");
        }
        value += '?';  // escaped content is irrelevant to the schema check
        continue;
      }
      value += c;
    }
    if (out) *out = value;
    return true;
  }

  bool parse_number(std::string* error) {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    if (peek() == '.') {
      ++pos_;
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    if (pos_ == start || (pos_ == start + 1 && s_[start] == '-')) {
      return fail(error, "bad number");
    }
    return true;
  }

  bool parse_literal(const char* word, std::string* error) {
    for (const char* p = word; *p; ++p) {
      if (take() != *p) return fail(error, std::string("bad literal, expected ") + word);
    }
    return true;
  }

  bool parse_value(std::string* error, bool event_element = false) {
    skip_ws();
    switch (peek()) {
      case '{': return parse_object(false, error, event_element);
      case '[': return parse_array(error, /*events_array=*/false);
      case '"': return parse_string(nullptr, error);
      case 't': return parse_literal("true", error);
      case 'f': return parse_literal("false", error);
      case 'n': return parse_literal("null", error);
      default: return parse_number(error);
    }
  }

  bool parse_array(std::string* error, bool events_array) {
    take();  // '['
    skip_ws();
    if (peek() == ']') {
      take();
      return true;
    }
    for (;;) {
      if (events_array) {
        skip_ws();
        if (peek() != '{') return fail(error, "traceEvents element must be an object");
      }
      if (!parse_value(error, events_array)) return false;
      skip_ws();
      const char c = take();
      if (c == ']') return true;
      if (c != ',') return fail(error, "expected ',' or ']' in array");
    }
  }

  bool parse_object(bool top_level, std::string* error, bool event_element = false) {
    take();  // '{'
    bool has_name = false, has_ph = false, has_ts = false, has_pid = false, has_tid = false;
    skip_ws();
    if (peek() == '}') {
      take();
      if (event_element) return fail(error, "trace event missing required keys");
      return true;
    }
    for (;;) {
      skip_ws();
      std::string key;
      if (!parse_string(&key, error)) return false;
      skip_ws();
      if (take() != ':') return fail(error, "expected ':' after key");
      skip_ws();
      if (top_level && key == "traceEvents") {
        if (peek() != '[') return fail(error, "\"traceEvents\" must be an array");
        if (!parse_array(error, /*events_array=*/true)) return false;
        saw_trace_events_ = true;
      } else {
        if (!parse_value(error)) return false;
      }
      if (event_element) {
        has_name = has_name || key == "name";
        has_ph = has_ph || key == "ph";
        has_ts = has_ts || key == "ts";
        has_pid = has_pid || key == "pid";
        has_tid = has_tid || key == "tid";
      }
      skip_ws();
      const char c = take();
      if (c == '}') break;
      if (c != ',') return fail(error, "expected ',' or '}' in object");
    }
    if (event_element) {
      ++events_checked_;
      // Metadata events ("ph":"M") still carry name/ph/pid; ts is allowed
      // to be absent on them, but this exporter always writes ts for
      // non-metadata events — require the common core.
      if (!has_name || !has_ph || !has_pid || !has_tid) {
        return fail(error, "trace event missing name/ph/pid/tid");
      }
      (void)has_ts;
    }
    return true;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
  bool saw_trace_events_ = false;
  std::size_t events_checked_ = 0;
};

}  // namespace

bool validate_chrome_trace(const std::string& json, std::string* error) {
  JsonValidator v(json);
  if (!v.run(error)) return false;
  if (v.events_checked() == 0) {
    if (error) *error = "traceEvents array is empty";
    return false;
  }
  return true;
}

}  // namespace mirage::obs

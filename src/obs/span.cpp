#include "obs/span.hpp"

#include <deque>
#include <mutex>
#include <string>

#include "util/time_utils.hpp"

namespace mirage::obs {

double span_clock_seconds() { return util::wall_seconds(); }

SpanSite* span_site(const char* name) {
  // Sites are few (one per instrumented phase) and resolved once per call
  // site; a linear scan under a mutex is plenty and keeps handles stable.
  static std::mutex mutex;
  static std::deque<SpanSite> sites;
  std::lock_guard<std::mutex> lock(mutex);
  for (auto& site : sites) {
    if (std::string(site.name) == name) return &site;
  }
  sites.push_back(SpanSite{
      name, registry().histogram(std::string("obs_span_seconds_") + name,
                                 "wall-clock seconds per pass of this profiling scope")});
  return &sites.back();
}

}  // namespace mirage::obs

// Flight recorder (ISSUE 8 tentpole): dumps a postmortem diagnostic
// bundle — the last-N wall-clock trace events as validated Chrome JSON,
// the full metrics snapshot, and any registered provider documents
// (health verdicts, serve metrics) — to a directory, on demand, when an
// SLO starts firing, or on a fatal signal.
//
// Bundle layout (one directory per dump, pruned to max_bundles):
//
//   <directory>/bundle_<seq>_<reason>/
//     MANIFEST.txt     reason, sequence, wall time, file list
//     trace.json       last max_events of obs::global_trace(), Chrome
//                      trace-event format (passes validate_chrome_trace)
//     metrics.prom     obs::registry().to_prometheus() snapshot
//     build.txt        compiler / platform / build-mode provenance
//     <provider files> e.g. health.txt, serve_metrics.prom
//
// Concurrency: dump() is serialized by a mutex and PAUSES the global
// trace ring's recording while it snapshots (set_recording(false) gates
// new events; callers who need a fully quiescent ring under TSan should
// also stop traffic first — snapshot() documents the same caveat).
//
// Signal path: install_signal_handlers() hooks SIGSEGV/SIGBUS/SIGABRT/
// SIGFPE/SIGILL to dump a "signal_<n>" bundle and then re-raise with the
// default disposition so the crash still crashes. Dumping from a signal
// handler is NOT async-signal-safe — it is a deliberate best-effort
// last gasp on a path that was about to die anyway. Tests exercise the
// dump body directly via detail::dump_on_fatal_signal() without raising.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>

namespace mirage::obs {

struct FlightRecorderConfig {
  std::string directory = "flight";  ///< bundles land under this directory
  std::size_t max_events = 4096;     ///< last-N trace events per bundle
  std::size_t max_bundles = 8;       ///< oldest bundles pruned past this
};

class FlightRecorder {
 public:
  /// Produces one bundle file's contents on demand at dump() time.
  using Provider = std::function<std::string()>;

  FlightRecorder() = default;
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  void configure(FlightRecorderConfig config);
  FlightRecorderConfig config() const;

  /// Attach/detach a named document source (e.g. the serve tier registers
  /// "health.txt" -> health_text()). A provider that throws contributes
  /// an error note instead of killing the dump.
  void register_provider(const std::string& filename, Provider provider);
  void unregister_provider(const std::string& filename);

  /// Write one bundle now; returns its directory path ("" when the
  /// filesystem refused). `reason` is sanitized into the directory name.
  std::string dump(const std::string& reason);

  std::uint64_t dumps() const;

  /// Validate a dumped bundle: MANIFEST.txt present, trace.json passes
  /// validate_chrome_trace, metrics.prom passes
  /// lint_prometheus_exposition, build.txt non-empty.
  static bool validate_bundle(const std::string& bundle_dir, std::string* error = nullptr);

  /// Hook fatal signals to dump a bundle and re-raise (idempotent).
  void install_signal_handlers();

 private:
  void prune_locked();

  mutable std::mutex mutex_;
  FlightRecorderConfig config_;
  std::map<std::string, Provider> providers_;
  std::uint64_t seq_ = 0;
  std::uint64_t dumps_ = 0;
  bool signals_installed_ = false;
};

/// Process-wide recorder (the SLO fire hook and signal handlers use it).
FlightRecorder& flight_recorder();

namespace detail {
/// Body of the fatal-signal hook: pause tracing, dump "signal_<n>".
/// Exposed so tests can exercise the crash dump without crashing.
void dump_on_fatal_signal(int sig);
}  // namespace detail

}  // namespace mirage::obs

// Unified observability: process-wide metrics registry (ISSUE 6 tentpole).
//
// Three instrument kinds, all allocation-free and lock-free on the update
// path so instrumented hot loops (the simulator's zero-steady-state-alloc
// contract, the serve tick) keep their guarantees with metrics ON:
//
//   Counter    monotonically increasing u64; updates are relaxed atomic
//              adds into one of kShards cache-line-separated slots picked
//              by a per-thread id, so concurrent writers do not bounce one
//              line. value() sums the shards.
//   Gauge      last-written double (free nodes, queue depth, sessions).
//   Histogram  fixed exponential buckets (power-of-2 in microseconds up to
//              ~1 hour) plus sharded count/sum; bucket index is computed
//              from the exponent bits, so record() is a handful of integer
//              ops and two relaxed adds. percentile() interpolates within
//              the bucket — coarse but monotone, good enough for per-phase
//              profiling. For exact tail percentiles (serve latency) use
//              ReservoirHistogram below.
//   ReservoirHistogram
//              bounded reservoir with exact percentiles over the retained
//              sample (mutex-guarded; the engine behind
//              serve::LatencyRecorder). The reservoir is fully reserved at
//              construction, so record() never allocates — O(1) memory and
//              allocation-free forever (the serve soak gate depends on it).
//
// Registration (registry().counter("name") etc.) allocates and takes a
// mutex — do it once at startup or via a function-local static, never per
// update. Handles are stable for the registry's lifetime (deque storage).
//
// Instrumentation is runtime-toggleable: obs::set_enabled(false) turns
// every OBS_SPAN and trace hook into a relaxed load + branch. Metrics
// never feed back into simulation results — the registry is write-only
// from the domain's point of view, which is what keeps parallel==serial
// sweep results bitwise identical with metrics on or off.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

namespace mirage::obs {

/// Global instrumentation switch (spans + trace hooks). Metrics handles
/// stay usable either way; the flag gates the hooks sprinkled through hot
/// paths. Relaxed: toggling mid-flight is best-effort by design.
bool enabled();
void set_enabled(bool on);

namespace detail {
inline constexpr std::size_t kShards = 16;
/// Dense per-thread slot in [0, kShards) — stable for the thread's life.
std::size_t thread_shard();

struct alignas(64) PaddedCount {
  std::atomic<std::uint64_t> v{0};
};
}  // namespace detail

class Counter {
 public:
  void add(std::uint64_t n = 1) {
    shards_[detail::thread_shard()].v.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    std::uint64_t sum = 0;
    for (const auto& s : shards_) sum += s.v.load(std::memory_order_relaxed);
    return sum;
  }
  void reset() {
    for (auto& s : shards_) s.v.store(0, std::memory_order_relaxed);
  }

 private:
  detail::PaddedCount shards_[detail::kShards];
};

class Gauge {
 public:
  void set(double v) { bits_.store(to_bits(v), std::memory_order_relaxed); }
  double value() const { return from_bits(bits_.load(std::memory_order_relaxed)); }

 private:
  static std::uint64_t to_bits(double v);
  static double from_bits(std::uint64_t b);
  std::atomic<std::uint64_t> bits_{0};
};

/// Fixed exponential buckets over seconds: bucket i holds samples in
/// [2^(i-1), 2^i) microseconds; bucket 0 is < 1us, the last is overflow
/// (>= ~1.2 hours). 33 buckets cover the whole range with one clz.
///
/// Buckets can carry EXEMPLARS: record(seconds, exemplar_id) stamps the
/// sample's bucket with the id (a trace/request id), last-writer-wins.
/// That is the link from an aggregate percentile back to one concrete
/// request journey in the trace ring: exemplar_for_percentile(99.9)
/// returns the id of a real request that landed in (or nearest to) the
/// p99.9 bucket. Exemplar stores are relaxed and deliberately unsharded —
/// a torn id/value pair under contention is acceptable for a diagnostic
/// pointer and keeps record() allocation-free.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 33;

  struct Exemplar {
    std::uint64_t id = 0;      ///< trace/request id stamped by record()
    double seconds = 0.0;      ///< the exemplar sample's value
    bool valid = false;
  };

  void record(double seconds);
  /// Record and stamp the sample's bucket with `exemplar_id`.
  void record(double seconds, std::uint64_t exemplar_id);
  std::uint64_t count() const;
  double sum() const;
  double mean() const {
    const auto n = count();
    return n ? sum() / static_cast<double>(n) : 0.0;
  }
  std::uint64_t bucket(std::size_t i) const;
  /// Upper bound of bucket i in seconds (+inf for the overflow bucket).
  static double bucket_upper_seconds(std::size_t i);
  /// Monotone bucket-interpolated percentile estimate, q in [0,100].
  double percentile(double q) const;
  /// Exemplar stamped on bucket i (valid=false when none recorded).
  Exemplar exemplar(std::size_t i) const;
  /// Exemplar of the bucket holding the q-th percentile rank, falling back
  /// to the nearest stamped bucket (below first, then above). The returned
  /// id is a concrete trace/request id behind that latency region.
  Exemplar exemplar_for_percentile(double q) const;
  void reset();

 private:
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> counts[kBuckets] = {};
    std::atomic<std::uint64_t> n{0};
    std::atomic<std::uint64_t> sum_us{0};
  };
  /// One slot per bucket, unsharded: stamp > 0 marks a recorded exemplar.
  struct ExemplarSlot {
    std::atomic<std::uint64_t> id{0};
    std::atomic<std::uint64_t> value_bits{0};  ///< double bit pattern
    std::atomic<std::uint64_t> stamp{0};
  };
  std::size_t percentile_bucket(double q) const;
  Shard shards_[detail::kShards];
  ExemplarSlot exemplars_[kBuckets];
};

struct ReservoirSnapshot {
  std::size_t count = 0;  ///< total recorded (not just retained) samples
  double mean = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  double p999 = 0.0;  ///< tail the serve soak gate watches
  double max = 0.0;
};

/// Thread-safe accumulator with reservoir sampling past `capacity`: exact
/// percentiles over a uniformly drawn retained sample, O(1) memory for
/// unbounded streams. This is the engine behind serve::LatencyRecorder.
class ReservoirHistogram {
 public:
  explicit ReservoirHistogram(std::size_t capacity = 1 << 16);

  void record(double value);
  ReservoirSnapshot snapshot() const;
  void reset();

 private:
  mutable std::mutex mutex_;
  std::size_t capacity_;
  std::size_t count_ = 0;
  double sum_ = 0.0;
  double max_ = 0.0;
  std::uint64_t rng_state_ = 0x9e3779b97f4a7c15ull;  ///< reservoir replacement
  std::vector<double> samples_;
};

/// Named metric directory. register-once / update-forever: handles are
/// stable pointers into deque storage. Lookup by name takes the registry
/// mutex — cache the handle (e.g. in a function-local static).
class MetricsRegistry {
 public:
  Counter* counter(const std::string& name, const std::string& help = "");
  Gauge* gauge(const std::string& name, const std::string& help = "");
  Histogram* histogram(const std::string& name, const std::string& help = "");

  /// Prometheus text exposition (counters, gauges, histogram buckets with
  /// cumulative "le" semantics + _count/_sum). Deterministic order
  /// (registration order).
  std::string to_prometheus() const;

  /// Reset every instrument to zero (tests and bench phases).
  void reset_all();

  std::size_t size() const;

 private:
  enum class Kind : std::uint8_t { kCounter, kGauge, kHistogram };
  struct Entry {
    std::string name;
    std::string help;
    Kind kind;
    Counter* counter = nullptr;
    Gauge* gauge = nullptr;
    Histogram* histogram = nullptr;
  };

  mutable std::mutex mutex_;
  std::deque<Counter> counters_;
  std::deque<Gauge> gauges_;
  std::deque<Histogram> histograms_;
  std::vector<Entry> entries_;
};

/// Process-wide registry (sim passes, serve ticks, lab jobs all land here).
MetricsRegistry& registry();

/// Line-level validity check over a Prometheus text exposition (the output
/// of to_prometheus() / serve's metrics_text()). Enforced rules:
///   - every sample line parses: name{labels} value, labels properly
///     quoted with only \\ \" \n escapes inside quoted values;
///   - at most one # TYPE and one # HELP per metric family, TYPE naming a
///     known type, both preceding the family's first sample;
///   - every sample belongs to a TYPE-declared family (histogram samples
///     match <family>_bucket/_count/_sum, summaries <family>{quantile=}/
///     _count/_sum);
///   - histogram bucket series are cumulative (non-decreasing in le order,
///     ending at le="+Inf") and bucket{+Inf} == _count;
///   - summary quantile values are non-decreasing in the quantile;
///   - OpenMetrics-style exemplars (" # {key=\"v\"} value" after a bucket
///     sample) are accepted and their payload validated.
/// Returns false with a line-numbered diagnostic in *error on violation.
/// This is the scrape-format gate the obs tests and the future lab canary
/// daemon run over health/metrics endpoints.
bool lint_prometheus_exposition(const std::string& text, std::string* error = nullptr);

}  // namespace mirage::obs

#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <sstream>

#include "util/strconv.hpp"

namespace mirage::obs {

namespace {
std::atomic<bool> g_enabled{true};
std::atomic<std::size_t> g_next_shard{0};
}  // namespace

bool enabled() { return g_enabled.load(std::memory_order_relaxed); }
void set_enabled(bool on) { g_enabled.store(on, std::memory_order_relaxed); }

namespace detail {
std::size_t thread_shard() {
  thread_local const std::size_t slot =
      g_next_shard.fetch_add(1, std::memory_order_relaxed) % kShards;
  return slot;
}
}  // namespace detail

std::uint64_t Gauge::to_bits(double v) {
  std::uint64_t b;
  std::memcpy(&b, &v, sizeof(b));
  return b;
}

double Gauge::from_bits(std::uint64_t b) {
  double v;
  std::memcpy(&v, &b, sizeof(v));
  return v;
}

namespace {

/// Exponential bucket index for a duration in seconds: bucket 0 is < 1us,
/// bucket i in [2^(i-1), 2^i) us, last bucket overflow. Pure integer math
/// after the seconds->us conversion.
std::size_t bucket_index(double seconds) {
  if (!(seconds > 0.0)) return 0;
  const double us = seconds * 1e6;
  if (us < 1.0) return 0;
  const auto n = static_cast<std::uint64_t>(us);
  const std::size_t log2 = 63 - static_cast<std::size_t>(__builtin_clzll(n | 1));
  return std::min(log2 + 1, Histogram::kBuckets - 1);
}

}  // namespace

void Histogram::record(double seconds) {
  auto& shard = shards_[detail::thread_shard()];
  shard.counts[bucket_index(seconds)].fetch_add(1, std::memory_order_relaxed);
  shard.n.fetch_add(1, std::memory_order_relaxed);
  const double us = seconds > 0.0 ? seconds * 1e6 : 0.0;
  shard.sum_us.fetch_add(static_cast<std::uint64_t>(us), std::memory_order_relaxed);
}

std::uint64_t Histogram::count() const {
  std::uint64_t n = 0;
  for (const auto& s : shards_) n += s.n.load(std::memory_order_relaxed);
  return n;
}

double Histogram::sum() const {
  std::uint64_t us = 0;
  for (const auto& s : shards_) us += s.sum_us.load(std::memory_order_relaxed);
  return static_cast<double>(us) * 1e-6;
}

std::uint64_t Histogram::bucket(std::size_t i) const {
  std::uint64_t n = 0;
  for (const auto& s : shards_) n += s.counts[i].load(std::memory_order_relaxed);
  return n;
}

double Histogram::bucket_upper_seconds(std::size_t i) {
  if (i + 1 >= kBuckets) return std::numeric_limits<double>::infinity();
  return static_cast<double>(1ull << i) * 1e-6;  // bucket i upper bound: 2^i us
}

double Histogram::percentile(double q) const {
  const std::uint64_t n = count();
  if (n == 0) return 0.0;
  const auto rank = static_cast<std::uint64_t>(
      std::ceil(std::clamp(q, 0.0, 100.0) / 100.0 * static_cast<double>(n)));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    const std::uint64_t c = bucket(i);
    if (seen + c >= std::max<std::uint64_t>(rank, 1)) {
      // Interpolate within the bucket [lower, upper).
      const double lower = i == 0 ? 0.0 : bucket_upper_seconds(i - 1);
      const double upper = i + 1 >= kBuckets ? lower * 2.0 : bucket_upper_seconds(i);
      const double frac =
          c ? (static_cast<double>(rank - seen)) / static_cast<double>(c) : 1.0;
      return lower + (upper - lower) * frac;
    }
    seen += c;
  }
  return bucket_upper_seconds(kBuckets - 2);
}

void Histogram::reset() {
  for (auto& s : shards_) {
    for (auto& c : s.counts) c.store(0, std::memory_order_relaxed);
    s.n.store(0, std::memory_order_relaxed);
    s.sum_us.store(0, std::memory_order_relaxed);
  }
}

// ------------------------------------------------------------- reservoir

ReservoirHistogram::ReservoirHistogram(std::size_t capacity) : capacity_(capacity) {
  // Full reservation up front: record() must never allocate, because the
  // serve engine records a latency sample inside the zero-allocation
  // steady-state window the soak bench audits.
  samples_.reserve(capacity_);
}

void ReservoirHistogram::record(double value) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++count_;
  sum_ += value;
  if (value > max_) max_ = value;
  if (samples_.size() < capacity_) {
    samples_.push_back(value);
    return;
  }
  // Reservoir: keep each of the `count_` samples with probability
  // capacity/count. splitmix64 keeps this allocation-free and lock-local.
  rng_state_ += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = rng_state_;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  z ^= z >> 31;
  const std::uint64_t slot = z % count_;
  if (slot < samples_.size()) samples_[slot] = value;
}

namespace {
double percentile_of_sorted(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const double pos = q / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}
}  // namespace

ReservoirSnapshot ReservoirHistogram::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  ReservoirSnapshot s;
  s.count = count_;
  if (count_ == 0) return s;
  s.mean = sum_ / static_cast<double>(count_);
  s.max = max_;
  std::vector<double> sorted = samples_;
  std::sort(sorted.begin(), sorted.end());
  s.p50 = percentile_of_sorted(sorted, 50.0);
  s.p95 = percentile_of_sorted(sorted, 95.0);
  s.p99 = percentile_of_sorted(sorted, 99.0);
  s.p999 = percentile_of_sorted(sorted, 99.9);
  return s;
}

void ReservoirHistogram::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  count_ = 0;
  sum_ = 0.0;
  max_ = 0.0;
  samples_.clear();
}

// -------------------------------------------------------------- registry

Counter* MetricsRegistry::counter(const std::string& name, const std::string& help) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& e : entries_) {
    if (e.name == name && e.kind == Kind::kCounter) return e.counter;
  }
  counters_.emplace_back();
  entries_.push_back(Entry{name, help, Kind::kCounter, &counters_.back(), nullptr, nullptr});
  return &counters_.back();
}

Gauge* MetricsRegistry::gauge(const std::string& name, const std::string& help) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& e : entries_) {
    if (e.name == name && e.kind == Kind::kGauge) return e.gauge;
  }
  gauges_.emplace_back();
  entries_.push_back(Entry{name, help, Kind::kGauge, nullptr, &gauges_.back(), nullptr});
  return &gauges_.back();
}

Histogram* MetricsRegistry::histogram(const std::string& name, const std::string& help) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& e : entries_) {
    if (e.name == name && e.kind == Kind::kHistogram) return e.histogram;
  }
  histograms_.emplace_back();
  entries_.push_back(Entry{name, help, Kind::kHistogram, nullptr, nullptr, &histograms_.back()});
  return &histograms_.back();
}

std::string MetricsRegistry::to_prometheus() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream out;
  for (const auto& e : entries_) {
    if (!e.help.empty()) out << "# HELP " << e.name << ' ' << e.help << '\n';
    switch (e.kind) {
      case Kind::kCounter:
        out << "# TYPE " << e.name << " counter\n";
        out << e.name << ' ' << e.counter->value() << '\n';
        break;
      case Kind::kGauge:
        out << "# TYPE " << e.name << " gauge\n";
        out << e.name << ' ' << util::format_double_exact(e.gauge->value()) << '\n';
        break;
      case Kind::kHistogram: {
        out << "# TYPE " << e.name << " histogram\n";
        std::uint64_t cumulative = 0;
        for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
          cumulative += e.histogram->bucket(i);
          const double upper = Histogram::bucket_upper_seconds(i);
          out << e.name << "_bucket{le=\"";
          if (std::isinf(upper)) {
            out << "+Inf";
          } else {
            out << util::format_double_exact(upper);
          }
          out << "\"} " << cumulative << '\n';
        }
        out << e.name << "_count " << e.histogram->count() << '\n';
        out << e.name << "_sum " << util::format_double_exact(e.histogram->sum()) << '\n';
        break;
      }
    }
  }
  return out.str();
}

void MetricsRegistry::reset_all() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& c : counters_) c.reset();
  for (auto& g : gauges_) g.set(0.0);
  for (auto& h : histograms_) h.reset();
}

std::size_t MetricsRegistry::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

MetricsRegistry& registry() {
  static MetricsRegistry instance;
  return instance;
}

}  // namespace mirage::obs

#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <map>
#include <set>
#include <sstream>

#include "util/strconv.hpp"

namespace mirage::obs {

namespace {
std::atomic<bool> g_enabled{true};
std::atomic<std::size_t> g_next_shard{0};
}  // namespace

bool enabled() { return g_enabled.load(std::memory_order_relaxed); }
void set_enabled(bool on) { g_enabled.store(on, std::memory_order_relaxed); }

namespace detail {
std::size_t thread_shard() {
  thread_local const std::size_t slot =
      g_next_shard.fetch_add(1, std::memory_order_relaxed) % kShards;
  return slot;
}
}  // namespace detail

std::uint64_t Gauge::to_bits(double v) {
  std::uint64_t b;
  std::memcpy(&b, &v, sizeof(b));
  return b;
}

double Gauge::from_bits(std::uint64_t b) {
  double v;
  std::memcpy(&v, &b, sizeof(v));
  return v;
}

namespace {

/// Exponential bucket index for a duration in seconds: bucket 0 is < 1us,
/// bucket i in [2^(i-1), 2^i) us, last bucket overflow. Pure integer math
/// after the seconds->us conversion.
std::size_t bucket_index(double seconds) {
  if (!(seconds > 0.0)) return 0;
  const double us = seconds * 1e6;
  if (us < 1.0) return 0;
  const auto n = static_cast<std::uint64_t>(us);
  const std::size_t log2 = 63 - static_cast<std::size_t>(__builtin_clzll(n | 1));
  return std::min(log2 + 1, Histogram::kBuckets - 1);
}

}  // namespace

void Histogram::record(double seconds) {
  auto& shard = shards_[detail::thread_shard()];
  shard.counts[bucket_index(seconds)].fetch_add(1, std::memory_order_relaxed);
  shard.n.fetch_add(1, std::memory_order_relaxed);
  const double us = seconds > 0.0 ? seconds * 1e6 : 0.0;
  shard.sum_us.fetch_add(static_cast<std::uint64_t>(us), std::memory_order_relaxed);
}

void Histogram::record(double seconds, std::uint64_t exemplar_id) {
  record(seconds);
  // Last-writer-wins, relaxed, unsharded: the three stores are not atomic
  // as a group, so a concurrent reader can see a torn (id, value) pair —
  // fine for a diagnostic pointer, and it keeps this path allocation-free
  // and contention-cheap inside the serve decide loop.
  auto& slot = exemplars_[bucket_index(seconds)];
  std::uint64_t bits;
  std::memcpy(&bits, &seconds, sizeof(bits));
  slot.id.store(exemplar_id, std::memory_order_relaxed);
  slot.value_bits.store(bits, std::memory_order_relaxed);
  slot.stamp.store(1, std::memory_order_relaxed);
}

Histogram::Exemplar Histogram::exemplar(std::size_t i) const {
  Exemplar e;
  if (i >= kBuckets) return e;
  const auto& slot = exemplars_[i];
  if (slot.stamp.load(std::memory_order_relaxed) == 0) return e;
  e.id = slot.id.load(std::memory_order_relaxed);
  const std::uint64_t bits = slot.value_bits.load(std::memory_order_relaxed);
  std::memcpy(&e.seconds, &bits, sizeof(e.seconds));
  e.valid = true;
  return e;
}

Histogram::Exemplar Histogram::exemplar_for_percentile(double q) const {
  const std::size_t target = percentile_bucket(q);
  // Exact bucket first, then nearest stamped bucket below (a slightly
  // faster real request), then above (a slightly slower one).
  Exemplar e = exemplar(target);
  if (e.valid) return e;
  for (std::size_t i = target; i-- > 0;) {
    e = exemplar(i);
    if (e.valid) return e;
  }
  for (std::size_t i = target + 1; i < kBuckets; ++i) {
    e = exemplar(i);
    if (e.valid) return e;
  }
  return e;
}

std::uint64_t Histogram::count() const {
  std::uint64_t n = 0;
  for (const auto& s : shards_) n += s.n.load(std::memory_order_relaxed);
  return n;
}

double Histogram::sum() const {
  std::uint64_t us = 0;
  for (const auto& s : shards_) us += s.sum_us.load(std::memory_order_relaxed);
  return static_cast<double>(us) * 1e-6;
}

std::uint64_t Histogram::bucket(std::size_t i) const {
  std::uint64_t n = 0;
  for (const auto& s : shards_) n += s.counts[i].load(std::memory_order_relaxed);
  return n;
}

double Histogram::bucket_upper_seconds(std::size_t i) {
  if (i + 1 >= kBuckets) return std::numeric_limits<double>::infinity();
  return static_cast<double>(1ull << i) * 1e-6;  // bucket i upper bound: 2^i us
}

double Histogram::percentile(double q) const {
  const std::uint64_t n = count();
  if (n == 0) return 0.0;
  const auto rank = static_cast<std::uint64_t>(
      std::ceil(std::clamp(q, 0.0, 100.0) / 100.0 * static_cast<double>(n)));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    const std::uint64_t c = bucket(i);
    if (seen + c >= std::max<std::uint64_t>(rank, 1)) {
      // Interpolate within the bucket [lower, upper).
      const double lower = i == 0 ? 0.0 : bucket_upper_seconds(i - 1);
      const double upper = i + 1 >= kBuckets ? lower * 2.0 : bucket_upper_seconds(i);
      const double frac =
          c ? (static_cast<double>(rank - seen)) / static_cast<double>(c) : 1.0;
      return lower + (upper - lower) * frac;
    }
    seen += c;
  }
  return bucket_upper_seconds(kBuckets - 2);
}

std::size_t Histogram::percentile_bucket(double q) const {
  const std::uint64_t n = count();
  if (n == 0) return 0;
  const auto rank = static_cast<std::uint64_t>(
      std::ceil(std::clamp(q, 0.0, 100.0) / 100.0 * static_cast<double>(n)));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    const std::uint64_t c = bucket(i);
    if (seen + c >= std::max<std::uint64_t>(rank, 1)) return i;
    seen += c;
  }
  return kBuckets - 1;
}

void Histogram::reset() {
  for (auto& s : shards_) {
    for (auto& c : s.counts) c.store(0, std::memory_order_relaxed);
    s.n.store(0, std::memory_order_relaxed);
    s.sum_us.store(0, std::memory_order_relaxed);
  }
  for (auto& e : exemplars_) {
    e.stamp.store(0, std::memory_order_relaxed);
    e.id.store(0, std::memory_order_relaxed);
    e.value_bits.store(0, std::memory_order_relaxed);
  }
}

// ------------------------------------------------------------- reservoir

ReservoirHistogram::ReservoirHistogram(std::size_t capacity) : capacity_(capacity) {
  // Full reservation up front: record() must never allocate, because the
  // serve engine records a latency sample inside the zero-allocation
  // steady-state window the soak bench audits.
  samples_.reserve(capacity_);
}

void ReservoirHistogram::record(double value) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++count_;
  sum_ += value;
  if (value > max_) max_ = value;
  if (samples_.size() < capacity_) {
    samples_.push_back(value);
    return;
  }
  // Reservoir: keep each of the `count_` samples with probability
  // capacity/count. splitmix64 keeps this allocation-free and lock-local.
  rng_state_ += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = rng_state_;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  z ^= z >> 31;
  const std::uint64_t slot = z % count_;
  if (slot < samples_.size()) samples_[slot] = value;
}

namespace {
double percentile_of_sorted(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const double pos = q / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}
}  // namespace

ReservoirSnapshot ReservoirHistogram::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  ReservoirSnapshot s;
  s.count = count_;
  if (count_ == 0) return s;
  s.mean = sum_ / static_cast<double>(count_);
  s.max = max_;
  std::vector<double> sorted = samples_;
  std::sort(sorted.begin(), sorted.end());
  s.p50 = percentile_of_sorted(sorted, 50.0);
  s.p95 = percentile_of_sorted(sorted, 95.0);
  s.p99 = percentile_of_sorted(sorted, 99.0);
  s.p999 = percentile_of_sorted(sorted, 99.9);
  return s;
}

void ReservoirHistogram::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  count_ = 0;
  sum_ = 0.0;
  max_ = 0.0;
  samples_.clear();
}

// -------------------------------------------------------------- registry

Counter* MetricsRegistry::counter(const std::string& name, const std::string& help) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& e : entries_) {
    if (e.name == name && e.kind == Kind::kCounter) return e.counter;
  }
  counters_.emplace_back();
  entries_.push_back(Entry{name, help, Kind::kCounter, &counters_.back(), nullptr, nullptr});
  return &counters_.back();
}

Gauge* MetricsRegistry::gauge(const std::string& name, const std::string& help) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& e : entries_) {
    if (e.name == name && e.kind == Kind::kGauge) return e.gauge;
  }
  gauges_.emplace_back();
  entries_.push_back(Entry{name, help, Kind::kGauge, nullptr, &gauges_.back(), nullptr});
  return &gauges_.back();
}

Histogram* MetricsRegistry::histogram(const std::string& name, const std::string& help) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& e : entries_) {
    if (e.name == name && e.kind == Kind::kHistogram) return e.histogram;
  }
  histograms_.emplace_back();
  entries_.push_back(Entry{name, help, Kind::kHistogram, nullptr, nullptr, &histograms_.back()});
  return &histograms_.back();
}

std::string MetricsRegistry::to_prometheus() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream out;
  for (const auto& e : entries_) {
    if (!e.help.empty()) out << "# HELP " << e.name << ' ' << e.help << '\n';
    switch (e.kind) {
      case Kind::kCounter:
        out << "# TYPE " << e.name << " counter\n";
        out << e.name << ' ' << e.counter->value() << '\n';
        break;
      case Kind::kGauge:
        out << "# TYPE " << e.name << " gauge\n";
        out << e.name << ' ' << util::format_double_exact(e.gauge->value()) << '\n';
        break;
      case Kind::kHistogram: {
        out << "# TYPE " << e.name << " histogram\n";
        std::uint64_t cumulative = 0;
        for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
          cumulative += e.histogram->bucket(i);
          const double upper = Histogram::bucket_upper_seconds(i);
          out << e.name << "_bucket{le=\"";
          if (std::isinf(upper)) {
            out << "+Inf";
          } else {
            out << util::format_double_exact(upper);
          }
          out << "\"} " << cumulative;
          // OpenMetrics-style exemplar: ties this latency bucket back to
          // one concrete trace/request id recorded via record(s, id).
          const auto ex = e.histogram->exemplar(i);
          if (ex.valid) {
            out << " # {trace_id=\"" << ex.id << "\"} "
                << util::format_double_exact(ex.seconds);
          }
          out << '\n';
        }
        out << e.name << "_count " << e.histogram->count() << '\n';
        out << e.name << "_sum " << util::format_double_exact(e.histogram->sum()) << '\n';
        break;
      }
    }
  }
  return out.str();
}

void MetricsRegistry::reset_all() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& c : counters_) c.reset();
  for (auto& g : gauges_) g.set(0.0);
  for (auto& h : histograms_) h.reset();
}

std::size_t MetricsRegistry::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

MetricsRegistry& registry() {
  static MetricsRegistry instance;
  return instance;
}

// ------------------------------------------------- exposition lint

namespace {

/// One parsed sample line: name, flattened label string, labels of
/// interest (le / quantile), and the value.
struct PromSample {
  std::string name;
  std::string labels;   // canonical "k=v,k=v" for duplicate detection
  double le = 0.0;
  bool has_le = false;
  bool le_inf = false;
  double quantile = 0.0;
  bool has_quantile = false;
  double value = 0.0;
};

bool prom_name_ok(const std::string& s) {
  if (s.empty()) return false;
  for (std::size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    const bool alpha = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' || c == ':';
    if (!(alpha || (i > 0 && c >= '0' && c <= '9'))) return false;
  }
  return true;
}

/// Parses `{k="v",...}` starting at s[pos] == '{'; advances pos past '}'.
bool parse_prom_labels(const std::string& s, std::size_t& pos, PromSample* out,
                       std::string* why) {
  ++pos;  // '{'
  bool first = true;
  for (;;) {
    if (pos >= s.size()) { *why = "unterminated label set"; return false; }
    if (s[pos] == '}') { ++pos; return true; }
    if (!first) {
      if (s[pos] != ',') { *why = "expected ',' between labels"; return false; }
      ++pos;
    }
    first = false;
    std::size_t name_start = pos;
    while (pos < s.size() && s[pos] != '=') ++pos;
    const std::string label = s.substr(name_start, pos - name_start);
    if (!prom_name_ok(label)) { *why = "bad label name '" + label + "'"; return false; }
    if (pos >= s.size() || s[pos] != '=') { *why = "expected '=' after label name"; return false; }
    ++pos;
    if (pos >= s.size() || s[pos] != '"') { *why = "label value must be quoted"; return false; }
    ++pos;
    std::string value;
    for (;;) {
      if (pos >= s.size()) { *why = "unterminated label value"; return false; }
      const char c = s[pos++];
      if (c == '"') break;
      if (c == '\n') { *why = "raw newline in label value"; return false; }
      if (c == '\\') {
        if (pos >= s.size() || (s[pos] != '\\' && s[pos] != '"' && s[pos] != 'n')) {
          *why = "bad escape in label value (only \\\\ \\\" \\n allowed)";
          return false;
        }
        value += s[pos++];
        continue;
      }
      value += c;
    }
    if (out) {
      if (!out->labels.empty()) out->labels += ',';
      out->labels += label + "=" + value;
      if (label == "le") {
        out->has_le = true;
        if (value == "+Inf") {
          out->le_inf = true;
        } else {
          char* end = nullptr;
          out->le = std::strtod(value.c_str(), &end);
          if (!end || *end != '\0') { *why = "le=\"" + value + "\" is not a number"; return false; }
        }
      } else if (label == "quantile") {
        out->has_quantile = true;
        char* end = nullptr;
        out->quantile = std::strtod(value.c_str(), &end);
        if (!end || *end != '\0' || out->quantile < 0.0 || out->quantile > 1.0) {
          *why = "quantile=\"" + value + "\" is not in [0,1]";
          return false;
        }
      }
    }
  }
}

bool parse_prom_value(const std::string& s, std::size_t& pos, double* out, std::string* why) {
  while (pos < s.size() && (s[pos] == ' ' || s[pos] == '\t')) ++pos;
  const std::size_t start = pos;
  while (pos < s.size() && s[pos] != ' ' && s[pos] != '\t') ++pos;
  const std::string token = s.substr(start, pos - start);
  if (token.empty()) { *why = "missing value"; return false; }
  if (token == "+Inf" || token == "Inf") { *out = std::numeric_limits<double>::infinity(); return true; }
  if (token == "-Inf") { *out = -std::numeric_limits<double>::infinity(); return true; }
  if (token == "NaN") { *out = std::numeric_limits<double>::quiet_NaN(); return true; }
  char* end = nullptr;
  *out = std::strtod(token.c_str(), &end);
  if (!end || *end != '\0') { *why = "bad value '" + token + "'"; return false; }
  return true;
}

/// Per-family accumulated lint state.
struct PromFamily {
  std::string type;
  bool has_help = false;
  bool has_samples = false;
  // histogram state
  bool saw_inf_bucket = false;
  bool saw_count = false, saw_sum = false;
  double last_le = -std::numeric_limits<double>::infinity();
  double last_bucket_value = 0.0;
  double inf_bucket_value = 0.0;
  double count_value = 0.0;
  // summary state
  double last_quantile = -1.0;
  double last_quantile_value = -std::numeric_limits<double>::infinity();
};

}  // namespace

bool lint_prometheus_exposition(const std::string& text, std::string* error) {
  std::map<std::string, PromFamily> families;
  std::set<std::string> seen_series;
  std::size_t line_no = 0;
  std::size_t samples = 0;
  const auto fail = [&](const std::string& why) {
    if (error) *error = "line " + std::to_string(line_no) + ": " + why;
    return false;
  };

  // Resolve the declared family a sample name belongs to, honoring the
  // histogram/summary child-series suffixes.
  const auto family_of = [&](const PromSample& s) -> std::pair<std::string, PromFamily*> {
    const auto direct = families.find(s.name);
    if (direct != families.end()) return {s.name, &direct->second};
    for (const char* suffix : {"_bucket", "_count", "_sum"}) {
      const std::size_t n = std::strlen(suffix);
      if (s.name.size() > n && s.name.compare(s.name.size() - n, n, suffix) == 0) {
        const std::string base = s.name.substr(0, s.name.size() - n);
        const auto it = families.find(base);
        if (it != families.end() &&
            (it->second.type == "histogram" || it->second.type == "summary")) {
          return {base, &it->second};
        }
      }
    }
    return {"", nullptr};
  };

  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t eol = std::min(text.find('\n', pos), text.size());
    const std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    ++line_no;
    if (line.empty()) {
      if (pos > text.size()) break;
      continue;
    }
    if (line[0] == '#') {
      std::istringstream in(line);
      std::string hash, keyword, name;
      in >> hash >> keyword >> name;
      if (keyword == "TYPE") {
        std::string type;
        in >> type;
        if (!prom_name_ok(name)) return fail("TYPE with bad metric name '" + name + "'");
        if (type != "counter" && type != "gauge" && type != "histogram" && type != "summary" &&
            type != "untyped") {
          return fail("unknown TYPE '" + type + "' for " + name);
        }
        auto& fam = families[name];
        if (!fam.type.empty()) return fail("duplicate TYPE for " + name);
        if (fam.has_samples) return fail("TYPE for " + name + " after its samples");
        fam.type = type;
      } else if (keyword == "HELP") {
        if (!prom_name_ok(name)) return fail("HELP with bad metric name '" + name + "'");
        auto& fam = families[name];
        if (fam.has_help) return fail("duplicate HELP for " + name);
        if (fam.has_samples) return fail("HELP for " + name + " after its samples");
        fam.has_help = true;
      }
      // Other comments pass through.
      continue;
    }

    // ---- sample line: name[{labels}] value [# {exemplar-labels} value]
    PromSample sample;
    std::size_t col = 0;
    while (col < line.size() && line[col] != '{' && line[col] != ' ' && line[col] != '\t') ++col;
    sample.name = line.substr(0, col);
    if (!prom_name_ok(sample.name)) return fail("bad metric name '" + sample.name + "'");
    std::string why;
    if (col < line.size() && line[col] == '{') {
      if (!parse_prom_labels(line, col, &sample, &why)) return fail(why);
    }
    if (!parse_prom_value(line, col, &sample.value, &why)) return fail(why);
    while (col < line.size() && (line[col] == ' ' || line[col] == '\t')) ++col;
    if (col < line.size()) {
      // Only an OpenMetrics exemplar may trail the value.
      if (line[col] != '#') return fail("trailing junk after value");
      ++col;
      while (col < line.size() && (line[col] == ' ' || line[col] == '\t')) ++col;
      if (col >= line.size() || line[col] != '{') return fail("exemplar must carry a label set");
      PromSample exemplar;
      if (!parse_prom_labels(line, col, &exemplar, &why)) return fail("exemplar: " + why);
      double exemplar_value = 0.0;
      if (!parse_prom_value(line, col, &exemplar_value, &why)) return fail("exemplar: " + why);
      while (col < line.size() && (line[col] == ' ' || line[col] == '\t')) ++col;
      if (col < line.size()) return fail("trailing junk after exemplar");
    }

    const auto [family_name, fam] = family_of(sample);
    if (!fam || fam->type.empty()) {
      return fail("sample '" + sample.name + "' has no preceding TYPE declaration");
    }
    fam->has_samples = true;
    ++samples;
    if (!seen_series.insert(sample.name + "{" + sample.labels + "}").second) {
      return fail("duplicate series " + sample.name + "{" + sample.labels + "}");
    }

    const bool is_bucket = sample.name == family_name + "_bucket";
    const bool is_count = sample.name == family_name + "_count";
    const bool is_sum = sample.name == family_name + "_sum";
    if (fam->type == "counter") {
      if (sample.name != family_name) return fail("counter sample name must match family");
      if (!(sample.value >= 0.0)) return fail("counter " + sample.name + " is negative");
    } else if (fam->type == "histogram") {
      if (is_bucket) {
        if (!sample.has_le) return fail("histogram bucket without le label");
        const double le = sample.le_inf ? std::numeric_limits<double>::infinity() : sample.le;
        if (le <= fam->last_le) return fail("bucket le not increasing in " + family_name);
        if (sample.value < fam->last_bucket_value) {
          return fail("bucket counts not cumulative in " + family_name);
        }
        fam->last_le = le;
        fam->last_bucket_value = sample.value;
        if (sample.le_inf) {
          fam->saw_inf_bucket = true;
          fam->inf_bucket_value = sample.value;
        }
      } else if (is_count) {
        fam->saw_count = true;
        fam->count_value = sample.value;
      } else if (is_sum) {
        fam->saw_sum = true;
      } else {
        return fail("histogram family " + family_name + " sample must be _bucket/_count/_sum");
      }
    } else if (fam->type == "summary") {
      if (sample.name == family_name) {
        if (!sample.has_quantile) return fail("summary sample without quantile label");
        if (sample.quantile <= fam->last_quantile) {
          return fail("summary quantiles not increasing in " + family_name);
        }
        if (sample.value < fam->last_quantile_value) {
          return fail("summary quantile values not monotone in " + family_name);
        }
        fam->last_quantile = sample.quantile;
        fam->last_quantile_value = sample.value;
      } else if (!is_count && !is_sum) {
        return fail("summary family " + family_name + " sample must be quantile/_count/_sum");
      }
    }
    if (pos > text.size()) break;
  }

  line_no = 0;  // family-level diagnostics are not line-anchored
  for (const auto& [name, fam] : families) {
    if (!fam.has_samples) {
      if (error) *error = "family " + name + " declared but has no samples";
      return false;
    }
    if (fam.type == "histogram") {
      if (!fam.saw_inf_bucket || !fam.saw_count || !fam.saw_sum) {
        if (error) *error = "histogram " + name + " missing +Inf bucket, _count or _sum";
        return false;
      }
      if (fam.inf_bucket_value != fam.count_value) {
        if (error) *error = "histogram " + name + " +Inf bucket != _count";
        return false;
      }
    }
  }
  if (samples == 0) {
    if (error) *error = "exposition has no samples";
    return false;
  }
  return true;
}

}  // namespace mirage::obs

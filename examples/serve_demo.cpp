// End-to-end tour of the online provisioning service (src/serve):
//
//   1. train a compact Mirage agent (MoE + DQN, Top-1 routing) on a
//      synthetic cluster trace, exactly like the offline pipeline;
//   2. save it as a registry checkpoint and boot a ModelRegistry +
//      ProvisioningService on top of it;
//   3. drive hundreds of concurrent provisioning sessions with live
//      simulator state — every decision flows through the batched
//      inference engine;
//   4. hot-reload a new checkpoint version mid-traffic, then drain
//      gracefully and print the serving metrics.
//
//   ./serve_demo [cluster=v100] [sessions=200] [rounds=12] [seed=42]
//               [shards=0] [ttl=0] [max_queue=8192] [slo=1]
//               [force_breach=0] [flight_dir=flight_demo] [wal_dir=]
//
// shards=0 picks hardware_concurrency session shards; ttl>0 turns on idle
// session eviction (lazy on access + background sweep); max_queue bounds
// the engine queue (overflow is rejected with BackpressureRejected).
//
// wal_dir=<dir> appends a crash-recovery act (step 5): a forked child
// serves a few journaled sessions at sync=on_commit and kill -9s itself
// mid-traffic; the parent warm-restarts a service over the surviving
// journal, prints what the replay recovered, and proves the restored
// session rings are bit-exact by comparing post-restart decisions against
// an uninterrupted control service fed the same stream (non-zero exit on
// any mismatch — the CI smoke gate).
//
// slo=1 (default) turns on the serving SLOs (p99 latency + reject-rate
// burn alerts) and prints health_text() after the drain. force_breach=1
// swaps in an unmeetable latency target so the alert must transition to
// firing mid-traffic and auto-dump a flight-recorder bundle under
// flight_dir; the demo then schema-validates the bundle and exits
// non-zero if the breach did not fire or the bundle is invalid (the CI
// smoke gate).
#include <sys/wait.h>
#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <filesystem>
#include <future>
#include <set>

#include "core/checkpoint.hpp"
#include "core/pipeline.hpp"
#include "obs/flight_recorder.hpp"
#include "serve/service.hpp"
#include "sim/simulator.hpp"
#include "util/config.hpp"

int main(int argc, char** argv) {
  using namespace mirage;
  const auto cli = util::Config::from_args(argc, argv);
  const auto preset = trace::preset_by_name(cli.get_string("cluster", "v100"));
  const auto sessions = static_cast<std::size_t>(cli.get_int("sessions", 200));
  const auto rounds = static_cast<std::size_t>(cli.get_int("rounds", 12));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 42));

  // ---- 1. train ----------------------------------------------------------
  std::printf("=== train: compact MoE+DQN agent on %s ===\n", preset.name.c_str());
  auto cfg = core::PipelineConfig::compact(preset, /*job_nodes=*/1, seed);
  cfg.net.moe_top1 = true;  // Top-1 routing: the serving-efficient gate mode
  core::MiragePipeline pipeline(cfg);
  pipeline.prepare();
  pipeline.collect_offline();
  pipeline.train(core::Method::kMoeDqn);

  // ---- 2. register -------------------------------------------------------
  const auto model_dir = std::filesystem::temp_directory_path() / "mirage_serve_demo";
  std::filesystem::create_directories(model_dir);
  const std::string ckpt =
      (model_dir / (preset.name + "__moe_dqn.ckpt")).string();
  auto* agent = const_cast<rl::DqnAgent*>(pipeline.dqn_agent(core::Method::kMoeDqn));
  if (!core::save_agent(*agent, ckpt)) {
    std::fprintf(stderr, "failed to save checkpoint %s\n", ckpt.c_str());
    return 1;
  }

  serve::RegistryConfig reg_cfg;
  reg_cfg.net_defaults = cfg.net;
  serve::ModelRegistry registry(reg_cfg);
  std::vector<serve::ModelRegistry::LoadResult> loads;
  registry.scan_directory(model_dir.string(), &loads);
  for (const auto& l : loads) {
    std::printf("registry: %s -> %s (v%llu)\n", l.key.to_string().c_str(),
                l.ok ? "loaded" : l.error.c_str(),
                static_cast<unsigned long long>(l.version));
  }
  const serve::ModelKey key{preset.name, "dqn", "moe"};
  if (!registry.lookup(key)) {
    std::fprintf(stderr, "model not in registry\n");
    return 1;
  }

  // ---- 3. serve ----------------------------------------------------------
  serve::ServiceConfig svc_cfg;
  svc_cfg.history_len = cfg.net.history_len;
  svc_cfg.shards = static_cast<std::size_t>(cli.get_int("shards", 0));
  svc_cfg.session_ttl_seconds = cli.get_double("ttl", 0.0);
  svc_cfg.engine.max_batch = 64;
  svc_cfg.engine.max_queue = static_cast<std::size_t>(cli.get_int("max_queue", 8192));
  const bool force_breach = cli.get_int("force_breach", 0) != 0;
  const std::string flight_dir = cli.get_string("flight_dir", "flight_demo");
  if (cli.get_int("slo", 1) != 0) {
    svc_cfg.slo.enabled = true;
    svc_cfg.sweep_interval_seconds = 0.02;
    if (force_breach) {
      // Unmeetable latency objective: every decision is "bad", both burn
      // windows saturate, the alert must fire mid-traffic and the fire
      // hook dumps a flight-recorder bundle under flight_dir.
      svc_cfg.slo.latency_target_seconds = 1e-9;
      svc_cfg.slo.latency_quantile = 50.0;
      svc_cfg.slo.short_window_seconds = 0.1;
      svc_cfg.slo.long_window_seconds = 0.3;
      svc_cfg.slo.resolve_seconds = 60.0;
      obs::FlightRecorderConfig frc;
      frc.directory = flight_dir;
      obs::flight_recorder().configure(frc);
    }
  }
  serve::ProvisioningService service(registry, key, svc_cfg);
  service.start();

  // Live cluster feed: replay the pipeline's workload into a simulator and
  // let every session watch the queue evolve from the validation range on.
  sim::Simulator sim(preset.node_count);
  sim.load_workload(pipeline.workload());
  sim.run_until(pipeline.train_end());

  std::vector<serve::SessionId> ids;
  ids.reserve(sessions);
  for (std::size_t s = 0; s < sessions; ++s) ids.push_back(service.open_session());
  std::printf("\n=== serve: %zu concurrent sessions x %zu decision rounds ===\n",
              sessions, rounds);

  std::size_t submits = 0;
  std::set<std::uint64_t> versions_seen;
  for (std::size_t r = 0; r < rounds; ++r) {
    sim.step(cfg.episode.decision_interval);
    const auto sample = sim.sample();

    // Each session provisions its own successor job (varied shape/age).
    std::vector<std::future<serve::Decision>> futures;
    futures.reserve(sessions);
    for (std::size_t s = 0; s < sessions; ++s) {
      rl::JobPairContext ctx;
      ctx.pred_nodes = 1 + static_cast<std::int32_t>(s % 4);
      ctx.pred_elapsed = static_cast<util::SimTime>((s * 3 + r) % 40) * util::kHour;
      ctx.succ_nodes = ctx.pred_nodes;
      service.observe(ids[s], sample, ctx);
      futures.push_back(service.decide_async(ids[s]));
    }
    std::size_t round_submits = 0;
    for (auto& f : futures) {
      const auto d = f.get();
      round_submits += (d.action == 1);
      versions_seen.insert(d.model_version);
    }
    submits += round_submits;
    std::printf("round %2zu: queue=%3zu running=%3zu free=%2d  submit %3zu/%zu\n", r,
                sample.queue_length(), sample.running_count(), sample.free_nodes,
                round_submits, sessions);

    // ---- 4a. hot reload mid-traffic -----------------------------------
    if (r == rounds / 2) {
      if (!core::save_agent(*agent, ckpt)) return 1;
      const auto res = registry.load_file(ckpt, preset.name);
      std::printf("  -> hot reload: %s now v%llu (in-flight requests kept their snapshot)\n",
                  key.to_string().c_str(), static_cast<unsigned long long>(res.version));
    }
  }

  // ---- 4b. graceful drain + metrics --------------------------------------
  service.drain_and_stop();
  const auto report = service.report();
  std::printf("\n=== metrics ===\n");
  std::printf("sessions            %zu open / %llu total across %zu shards\n",
              report.open_sessions, static_cast<unsigned long long>(report.total_sessions),
              report.shards);
  std::printf("admission           %llu evicted by TTL, %llu rejected by backpressure\n",
              static_cast<unsigned long long>(report.evictions),
              static_cast<unsigned long long>(report.engine.rejected));
  std::printf("decisions           %llu (%.1f%% submit), %llu model versions served\n",
              static_cast<unsigned long long>(report.decisions),
              report.decisions ? 100.0 * static_cast<double>(submits) /
                                     static_cast<double>(report.decisions)
                               : 0.0,
              static_cast<unsigned long long>(versions_seen.size()));
  std::printf("throughput          %.0f decisions/s sustained, %llu ticks, mean batch %.1f\n",
              report.decisions_per_second,
              static_cast<unsigned long long>(report.engine.ticks), report.engine.mean_batch);
  std::printf("request latency     p50 %.2f ms  p95 %.2f ms  p99 %.2f ms  p99.9 %.2f ms  max %.2f ms\n",
              report.engine.latency.p50_ms, report.engine.latency.p95_ms,
              report.engine.latency.p99_ms, report.engine.latency.p999_ms,
              report.engine.latency.max_ms);

  if (svc_cfg.slo.enabled) {
    std::printf("\n=== health ===\n%s", service.health_text().c_str());
  }

  // ---- 4c. forced-breach smoke gate (CI) ---------------------------------
  if (force_breach) {
    std::uint64_t fires = 0;
    for (const auto& st : service.slo_statuses()) fires += st.fires;
    std::string newest;
    std::error_code ec;
    for (const auto& entry : std::filesystem::directory_iterator(flight_dir, ec)) {
      const auto name = entry.path().filename().string();
      if (entry.is_directory() && name.rfind("bundle_", 0) == 0 && name > newest)
        newest = name;
    }
    if (fires == 0) {
      std::fprintf(stderr, "force_breach: SLO never fired (fires=0)\n");
      return 2;
    }
    if (newest.empty()) {
      std::fprintf(stderr, "force_breach: no flight bundle under %s\n", flight_dir.c_str());
      return 2;
    }
    std::string err;
    const auto bundle = (std::filesystem::path(flight_dir) / newest).string();
    if (!obs::FlightRecorder::validate_bundle(bundle, &err)) {
      std::fprintf(stderr, "force_breach: invalid bundle %s: %s\n", bundle.c_str(),
                   err.c_str());
      return 2;
    }
    std::printf("\nforce_breach: %llu SLO fire(s); valid flight bundle at %s\n",
                static_cast<unsigned long long>(fires), bundle.c_str());
  }

  std::printf("\ngraceful drain complete; all in-flight decisions answered.\n");

  // ---- 5. crash-recovery act (wal_dir=<dir>) ------------------------------
  // A forked child serves journaled sessions and dies by kill -9 after its
  // decisions committed; the parent restarts over the surviving journal
  // and must serve the exact decisions an uninterrupted service would.
  const std::string wal_dir = cli.get_string("wal_dir", "");
  if (!wal_dir.empty()) {
    constexpr std::size_t kDurSessions = 4;
    constexpr std::size_t kDurFrames = 6;
    std::printf("\n=== durability: kill -9 mid-traffic, warm restart from %s ===\n",
                wal_dir.c_str());
    std::filesystem::remove_all(wal_dir);

    // Pre-compute the deterministic feed BEFORE forking so the child, the
    // control and the survivor all see identical streams.
    std::vector<sim::StateSample> feed;
    for (std::size_t f = 0; f <= kDurFrames; ++f) {
      sim.step(cfg.episode.decision_interval);
      feed.push_back(sim.sample());
    }
    const auto dur_ctx = [](std::size_t s) {
      rl::JobPairContext c;
      c.pred_nodes = 1 + static_cast<std::int32_t>(s % 4);
      c.pred_elapsed = static_cast<util::SimTime>(s * 5) * util::kHour;
      c.succ_nodes = c.pred_nodes;
      return c;
    };
    serve::ServiceConfig dur_cfg = svc_cfg;
    dur_cfg.slo.enabled = false;
    dur_cfg.wal.dir = wal_dir;
    dur_cfg.wal.wal.sync = util::wal::SyncLevel::kOnCommit;

    const pid_t pid = fork();
    if (pid == 0) {
      // Child: journal a little traffic, then die without any shutdown.
      serve::ProvisioningService victim(registry, key, dur_cfg);
      victim.start();
      std::vector<serve::SessionId> vids;
      for (std::size_t s = 0; s < kDurSessions; ++s) vids.push_back(victim.open_session());
      for (std::size_t f = 0; f < kDurFrames; ++f) {
        for (std::size_t s = 0; s < kDurSessions; ++s) {
          victim.observe(vids[s], feed[f], dur_ctx(s));
        }
      }
      serve::Decision d;
      for (std::size_t s = 0; s < kDurSessions; ++s) victim.try_decide(vids[s], d);
      std::raise(SIGKILL);  // decide() returned => those records are fsynced
      _exit(9);
    }
    int wstatus = 0;
    waitpid(pid, &wstatus, 0);
    if (!WIFSIGNALED(wstatus) || WTERMSIG(wstatus) != SIGKILL) {
      std::fprintf(stderr, "durability: child did not die by SIGKILL (status %d)\n", wstatus);
      return 2;
    }
    std::printf("child served %zu sessions x %zu frames + 1 decision each, then kill -9\n",
                kDurSessions, kDurFrames);

    // Control: the same stream without interruption (and no journal).
    serve::ServiceConfig ctrl_cfg = dur_cfg;
    ctrl_cfg.wal.dir.clear();
    serve::ProvisioningService control(registry, key, ctrl_cfg);
    control.start();
    std::vector<serve::SessionId> cids;
    for (std::size_t s = 0; s < kDurSessions; ++s) cids.push_back(control.open_session());
    for (std::size_t f = 0; f < kDurFrames; ++f) {
      for (std::size_t s = 0; s < kDurSessions; ++s) {
        control.observe(cids[s], feed[f], dur_ctx(s));
      }
    }
    serve::Decision cd;
    for (std::size_t s = 0; s < kDurSessions; ++s) control.try_decide(cids[s], cd);

    // Survivor: warm restart over the journal the dead child left behind.
    serve::ProvisioningService survivor(registry, key, dur_cfg);
    const auto& restore = survivor.wal_restore_info();
    std::printf(
        "warm restart: replayed %llu records -> %zu live sessions, %llu frames, "
        "%llu decisions%s\n",
        static_cast<unsigned long long>(restore.records), restore.sessions,
        static_cast<unsigned long long>(restore.frames),
        static_cast<unsigned long long>(restore.decisions),
        restore.torn_tail ? " (torn tail truncated)" : "");
    if (restore.sessions != kDurSessions) {
      std::fprintf(stderr, "durability: expected %zu restored sessions, got %zu\n",
                   kDurSessions, restore.sessions);
      return 2;
    }
    survivor.start();

    // One more frame + decision on every session pair: the restored rings
    // must produce bitwise-identical decisions to the uninterrupted run.
    std::size_t matched = 0;
    for (std::size_t s = 0; s < kDurSessions; ++s) {
      survivor.observe(static_cast<serve::SessionId>(s + 1), feed[kDurFrames], dur_ctx(s));
      control.observe(cids[s], feed[kDurFrames], dur_ctx(s));
      const auto mine = survivor.decide(static_cast<serve::SessionId>(s + 1));
      const auto theirs = control.decide(cids[s]);
      const bool same = mine.action == theirs.action &&
                        mine.score_submit == theirs.score_submit &&
                        mine.score_wait == theirs.score_wait;
      matched += same;
      if (!same) {
        std::fprintf(stderr,
                     "durability: session %zu diverged after restart "
                     "(action %d vs %d, submit %.6f vs %.6f)\n",
                     s, mine.action, theirs.action, mine.score_submit, theirs.score_submit);
      }
    }
    survivor.drain_and_stop();
    control.drain_and_stop();
    if (matched != kDurSessions) return 2;
    std::printf("post-restart decisions bitwise-identical to the uninterrupted control "
                "(%zu/%zu sessions)\n",
                matched, kDurSessions);
  }
  return 0;
}

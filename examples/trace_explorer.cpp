// Trace tooling walkthrough: generate a cluster workload, clean it (§3.2),
// replay it through the Slurm simulator, print the §3 analysis (Table 1,
// Figures 1-4 data) and round-trip the trace through the CSV format.
//
//   ./trace_explorer [cluster=rtx] [seed=42] [save=trace.csv]
#include <cstdio>

#include "sim/simulator.hpp"
#include "trace/analysis.hpp"
#include "trace/cleaning.hpp"
#include "trace/generator.hpp"
#include "trace/trace_io.hpp"
#include "util/config.hpp"

int main(int argc, char** argv) {
  using namespace mirage;
  const auto cli = util::Config::from_args(argc, argv);
  const auto preset = trace::preset_by_name(cli.get_string("cluster", "rtx"));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 42));

  // Generate with cleanable rows so the §3.2 pipeline has work to do.
  trace::GeneratorOptions opt;
  opt.seed = seed;
  opt.inject_cleanable_rows = true;
  trace::SyntheticTraceGenerator gen(preset, opt);
  const auto raw = gen.generate();

  trace::CleaningReport report;
  const auto cleaned = trace::clean_trace(raw, preset.node_count, &report);
  std::printf("%s: %zu raw rows -> %zu jobs (%zu oversize dropped, %zu sub-jobs merged)\n\n",
              preset.name.c_str(), report.input_jobs, report.output_jobs,
              report.oversize_dropped, report.subjobs_merged);

  const auto sched = sim::replay_trace(cleaned, preset.node_count);
  const auto stats = trace::compute_stats(sched, preset.name, preset.node_count);
  std::printf("jobs:              %zu\n", stats.job_count);
  std::printf("jobs/month:        %.0f ± %.0f\n", stats.jobs_per_month_mean,
              stats.jobs_per_month_std);
  std::printf("mean nodes/job:    %.2f\n", stats.mean_nodes_per_job);
  std::printf("short jobs (<30s): %zu\n", stats.short_job_count);
  std::printf("multi-node share:  %.1f%% of jobs, %.1f%% of node-hours\n\n",
              100.0 * stats.multi_node_job_fraction,
              100.0 * stats.multi_node_node_hour_fraction);

  std::printf("monthly average queue wait (h):");
  for (double w : trace::monthly_average_wait_hours(sched)) std::printf(" %.1f", w);
  std::printf("\n\nwait distribution per month (%s):\n",
              "cols: <2h 2-12h 12-24h 24-36h >36h");
  const auto dist = trace::wait_distribution(sched);
  for (std::size_t m = 0; m < dist.monthly_fractions.size(); ++m) {
    std::printf("  m%02zu:", m);
    for (double f : dist.monthly_fractions[m]) std::printf(" %5.1f%%", 100.0 * f);
    std::printf("\n");
  }

  const auto path = cli.get_string("save", "");
  if (!path.empty()) {
    if (trace::save_csv(sched, path)) {
      const auto reloaded = trace::load_csv(path);
      std::printf("\nsaved %zu jobs to %s (reload check: %s)\n", sched.size(), path.c_str(),
                  reloaded && reloaded->size() == sched.size() ? "ok" : "MISMATCH");
    } else {
      std::printf("\nfailed to save %s\n", path.c_str());
    }
  }
  return 0;
}

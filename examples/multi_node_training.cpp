// Scenario: multi-week distributed training (think GPT-NeoX-style
// pre-training, paper §1) as a pair of 8-node 48-hour sub-jobs. Compares
// all eight provisioning methods on the same validation anchors — the
// multi-node counterpart of the quickstart.
//
//   ./multi_node_training [cluster=v100] [nodes=8] [seed=42]
#include <cstdio>

#include "core/pipeline.hpp"
#include "util/config.hpp"

int main(int argc, char** argv) {
  using namespace mirage;
  const auto cli = util::Config::from_args(argc, argv);
  const auto preset = trace::preset_by_name(cli.get_string("cluster", "v100"));
  const auto nodes = static_cast<std::int32_t>(cli.get_int("nodes", 8));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 42));

  std::printf("Multi-node DL training on %s: pairs of %d-node 48 h sub-jobs, all methods\n\n",
              preset.name.c_str(), nodes);

  auto cfg = core::PipelineConfig::compact(preset, nodes, seed);
  cfg.eval.episodes = static_cast<std::size_t>(cli.get_int("episodes", 32));
  core::MiragePipeline pipeline(cfg);
  pipeline.prepare();
  pipeline.collect_offline();
  pipeline.train_all(core::all_methods());

  const auto evals = pipeline.evaluate(core::all_methods());
  std::printf("\n%s\n", core::format_eval_table(evals).c_str());

  // Highlight the trade-off the paper closes §6 with.
  for (const auto& e : evals) {
    if (e.method == "MoE+DQN" || e.method == "transformer+PG") {
      std::printf("%-16s overall: interruption %.2f h, overlap %.2f h, zero-interruption %.0f%%\n",
                  e.method.c_str(), e.overall.interruption_hours.mean(),
                  e.overall.overlap_hours.mean(),
                  100.0 * e.overall.zero_interruption_fraction());
    }
  }
  std::printf("\nMirage defaults to MoE+DQN for balance; transformer+PG is the aggressive option "
              "for heavily loaded machines (§6.3)\n");
  return 0;
}

// Experiment-lab quickstart: build a small sweep-driven training plan
// (2 utilization scales x {calm, recurring-maintenance} event profiles),
// run it through the LabRunner with artifacts under dir=, print the
// leaderboard, write leaderboard.csv / standings.csv next to the
// artifacts, promote the winning checkpoint into a serve::ModelRegistry,
// and serve a few decisions from it. A second run of the same plan resumes
// entirely from artifacts (0 jobs trained) and must reproduce the
// leaderboard bitwise — the lab's resume contract.
//
//   ./lab_quickstart [dir=lab_artifacts] [cluster=a100] [nodes=20]
//                    [months=1] [scale=0.45] [threads=2]
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "lab/artifact_store.hpp"
#include "lab/experiment.hpp"
#include "lab/promote.hpp"
#include "lab/runner.hpp"
#include "serve/service.hpp"
#include "util/config.hpp"
#include "util/rng.hpp"
#include "util/time_utils.hpp"

using namespace mirage;

namespace {

lab::ExperimentPlan build_plan(const util::Config& cli) {
  using scenario::ScenarioEvent;
  using scenario::ScenarioEventKind;

  lab::ExperimentPlan plan;
  plan.name = "quickstart";
  plan.methods = {core::Method::kAvg, core::Method::kMoeDqn};

  auto& base = plan.matrix.base;
  base.cluster = cli.get_string("cluster", "a100");
  // Shrink the cluster instead of the workload: a 20-node partition with a
  // quarter of the trace keeps the queue under real pressure (heavy/medium
  // anchors) while each cell still trains in seconds.
  base.nodes_override = static_cast<std::int32_t>(cli.get_int("nodes", 20));
  base.months_begin = 0;
  base.months_end = static_cast<std::int32_t>(cli.get_int("months", 1));
  base.seed = static_cast<std::uint64_t>(cli.get_int("seed", 42));
  base.job_count_scale = cli.get_double("scale", 0.45);

  const std::int32_t quarter = base.resolved_preset().node_count / 4;
  plan.matrix.utilization_scales = {cli.get_double("u_lo", 1.0), cli.get_double("u_hi", 1.25)};
  // Both profiles use the recurring-event expansion (weekly, 4 occurrences
  // from day 5 — the last lands inside the validation range). Maintenance
  // drains reshape the cell's background capacity; the flash crowd lowers
  // onto real workload jobs, so training and evaluation feel it directly.
  scenario::EventProfile maintenance;
  maintenance.name = "maintenance";
  maintenance.events = {
      {ScenarioEventKind::kDrain, 5 * util::kDay, quarter, 0, 0, 0, 600, util::kWeek, 4},
      {ScenarioEventKind::kNodeRestore, 5 * util::kDay + 6 * util::kHour, quarter, 0, 0, 0, 600,
       util::kWeek, 4},
  };
  scenario::EventProfile flash_crowd;
  flash_crowd.name = "flash-crowd";
  flash_crowd.events = {
      {ScenarioEventKind::kBurst, 5 * util::kDay, 2, 30, 2 * util::kHour, 4 * util::kHour,
       util::kHour, util::kWeek, 4},
  };
  plan.matrix.event_profiles = {{"none", {}}, maintenance, flash_crowd};
  return plan;
}

sim::StateSample demo_sample(std::uint64_t step) {
  util::Rng rng(step * 7919ull + 17);
  sim::StateSample s;
  s.now = static_cast<util::SimTime>(step) * 600;
  s.total_nodes = 64;
  s.free_nodes = static_cast<std::int32_t>(rng.uniform_int(0, 64));
  for (int i = 0; i < 4; ++i) {
    s.queued_sizes.push_back(static_cast<double>(rng.uniform_int(1, 8)));
    s.queued_ages.push_back(rng.uniform(0.0, 86400.0));
    s.queued_limits.push_back(rng.uniform(3600.0, 172800.0));
  }
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  const auto cli = util::Config::from_args(argc, argv);
  const auto plan = build_plan(cli);
  lab::ArtifactStore store(cli.get_string("dir", "lab_artifacts"));
  const auto threads = static_cast<std::size_t>(cli.get_int("threads", 2));

  std::printf("lab quickstart: plan '%s' (%zu cells x %zu methods = %zu jobs), hash %016llx\n",
              plan.name.c_str(), plan.cell_count(), plan.methods.size(), plan.job_count(),
              static_cast<unsigned long long>(plan.hash()));

  const double t0 = util::wall_seconds();
  const auto report = lab::LabRunner(threads).run(plan, store);
  std::printf("\n%s\n", report.leaderboard.format_table().c_str());
  std::printf("run: %zu jobs (%zu trained, %zu resumed) in %.1fs; artifacts in %s\n",
              report.jobs_total, report.jobs_run, report.jobs_resumed,
              util::wall_seconds() - t0, store.run_dir(plan).c_str());

  // Persist the reports the CI uploads as build artifacts.
  const auto dir = std::filesystem::path(store.run_dir(plan));
  std::ofstream(dir / "leaderboard.csv") << report.leaderboard.to_csv();
  std::ofstream(dir / "standings.csv") << report.leaderboard.standings_csv();

  // Promote the winner into a registry and serve a few decisions from it.
  serve::ModelRegistry registry(lab::registry_config(plan));
  const auto promotion = lab::promote_best(report.leaderboard, plan, store, registry);
  if (!promotion.ok) {
    std::printf("ERROR: promotion failed: %s\n", promotion.error.c_str());
    return 1;
  }
  std::printf("promoted %s (cell %s) -> %s v%llu\n", promotion.method.c_str(),
              promotion.cell.c_str(), promotion.key.to_string().c_str(),
              static_cast<unsigned long long>(promotion.version));

  serve::ServiceConfig service_cfg;
  service_cfg.history_len = lab::serving_history_len(plan);
  serve::ProvisioningService service(registry, promotion.key, service_cfg);
  service.start();
  const auto session = service.open_session();
  rl::JobPairContext ctx;
  ctx.pred_nodes = 1;
  int submits = 0;
  for (std::uint64_t step = 0; step < 8; ++step) {
    service.observe(session, demo_sample(step), ctx);
    submits += service.decide(session).action;
  }
  service.drain_and_stop();
  std::printf("served 8 decisions from the promoted model (%d submit)\n", submits);

  // Resume demo: re-running the identical plan trains nothing and must
  // reproduce the leaderboard bitwise from the artifact manifests.
  const double t1 = util::wall_seconds();
  const auto resumed = lab::LabRunner(threads).run(plan, store);
  const bool identical = resumed.leaderboard == report.leaderboard;
  std::printf("resume: %zu trained, %zu resumed in %.2fs; leaderboard bitwise identical: %s\n",
              resumed.jobs_run, resumed.jobs_resumed, util::wall_seconds() - t1,
              identical ? "yes" : "NO");
  if (!identical || resumed.jobs_run != 0) {
    std::printf("ERROR: resume contract violated\n");
    return 1;
  }
  return 0;
}
